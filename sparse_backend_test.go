package profam_test

import (
	"errors"
	"fmt"
	"testing"

	"profam"
	"profam/internal/metrics"
	"profam/internal/seq"
	"profam/internal/workload"
)

// TestSparseBackendMatchesGST is the backend determinism contract: the
// sparse-matrix pair backend must produce byte-identical families, keep
// masks and components to the GST and ESA backends on the integration
// corpus, across rank and thread counts. The candidate pair *sets* are
// identical across backends and every downstream result is an
// order-invariant closure of per-pair verdicts, so nothing may differ.
func TestSparseBackendMatchesGST(t *testing.T) {
	set, _ := integrationSet()
	base := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3, Lockstep: true}
	ref, _, err := profam.RunSet(set, 1, true, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4} {
		for _, threads := range []int{1, 4} {
			t.Run(fmt.Sprintf("ranks=%d/threads=%d", p, threads), func(t *testing.T) {
				results := map[profam.PairBackend]*profam.Result{}
				for _, b := range []profam.PairBackend{profam.PairsGST, profam.PairsESA, profam.PairsSparse} {
					cfg := base
					cfg.Pairs = b
					cfg.ThreadsPerRank = threads
					res, _, err := profam.RunSet(set, p, true, cfg)
					if err != nil {
						t.Fatalf("%s: %v", b, err)
					}
					results[b] = res
					if fmt.Sprint(res.Families) != fmt.Sprint(ref.Families) {
						t.Fatalf("%s backend changed the families", b)
					}
					if fmt.Sprint(res.Keep) != fmt.Sprint(ref.Keep) {
						t.Fatalf("%s backend changed the keep mask", b)
					}
					if fmt.Sprint(res.Components) != fmt.Sprint(ref.Components) {
						t.Fatalf("%s backend changed the components", b)
					}
				}
				// The sparse run must export its per-backend index
				// footprint and the phase-boundary heap probe.
				sp := results[profam.PairsSparse].Metrics
				if sp.GaugeValue("pace_index_bytes{backend=sparse,phase=rr}") <= 0 {
					t.Error("sparse run exported no pace_index_bytes for rr")
				}
				if sp.CounterValue("pace_pairs_raw{backend=sparse,phase=rr}") <= 0 {
					t.Error("sparse run exported no backend-labeled raw pair counter")
				}
				if sp.GaugeValue(metrics.HeapPeakGauge) <= 0 {
					t.Error("no pipeline_heap_peak_bytes probe recorded")
				}
				if sp.Canonical().GaugeValue(metrics.HeapPeakGauge) != 0 {
					t.Error("canonical report kept the machine-derived heap gauge")
				}
			})
		}
	}
}

// TestBackendEquivalenceProperty sweeps planted and datagen-style
// corpora × backends × p∈{1,2} × threads∈{1,4}, asserting byte-identical
// families and keep masks against the GST reference on each corpus.
func TestBackendEquivalenceProperty(t *testing.T) {
	corpora := []struct {
		name string
		set  *seq.Set
	}{
		{"planted", plantedSet(t)},
		{"datagen", func() *seq.Set {
			// The ci.sh e2e corpus parameters.
			s, _ := workload.Generate(workload.Params{
				Families: 6, MeanFamilySize: 10, MeanLength: 110,
				ContainedFrac: 0.2, Singletons: 4, Seed: 7,
			})
			return s
		}()},
	}
	base := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3}
	for _, corpus := range corpora {
		ref, _, err := profam.RunSet(corpus.set, 1, true, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range []profam.PairBackend{profam.PairsESA, profam.PairsSparse} {
			for _, p := range []int{1, 2} {
				for _, threads := range []int{1, 4} {
					t.Run(fmt.Sprintf("%s/%s/ranks=%d/threads=%d", corpus.name, b, p, threads), func(t *testing.T) {
						cfg := base
						cfg.Pairs = b
						cfg.ThreadsPerRank = threads
						res, _, err := profam.RunSet(corpus.set, p, true, cfg)
						if err != nil {
							t.Fatal(err)
						}
						if fmt.Sprint(res.Families) != fmt.Sprint(ref.Families) {
							t.Fatal("families differ from the GST reference")
						}
						if fmt.Sprint(res.Keep) != fmt.Sprint(ref.Keep) {
							t.Fatal("keep mask differs from the GST reference")
						}
					})
				}
			}
		}
	}
}

// plantedSet hand-plants two families of near-duplicates plus contained
// fragments and noise — deliberately unlike the workload generator's
// statistics, so the property test covers a second corpus shape.
func plantedSet(t *testing.T) *seq.Set {
	t.Helper()
	set := seq.NewSet()
	famA := "MKVLWAALLVTFLAGCQAKVEQAVETEPEPELRQQTEWQSGQRWELALGRFWDYLRWVQT"
	famB := "GHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWYACDEF"
	mutate := func(s string, at int, r byte) string {
		b := []byte(s)
		b[at%len(b)] = r
		return string(b)
	}
	for i := 0; i < 8; i++ {
		set.MustAdd("", mutate(famA, 3+5*i, "ACDEFGHK"[i]))
		set.MustAdd("", mutate(famB, 7+4*i, "LMNPQRST"[i]))
	}
	// Contained fragments of family A members (RR fodder).
	set.MustAdd("", famA[5:45])
	set.MustAdd("", famA[10:58])
	// Unrelated singletons.
	set.MustAdd("", "WWYYAACCDDEEFFGGHHKKWWYYAACCDDEE")
	set.MustAdd("", "PPQQRRSSTTVVWWYYPPQQRRSSTTVVWWYY")
	return set
}

// TestEpochBackendDriftRejected: an incremental epoch may not switch
// pair backends mid-service — the fingerprint guard must reject it.
func TestEpochBackendDriftRejected(t *testing.T) {
	set := plantedSet(t)
	var names, seqs []string
	for _, s := range set.Seqs {
		names = append(names, s.Name)
		seqs = append(seqs, string(s.Res))
	}
	cfg := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3, Pairs: profam.PairsSparse}
	_, st, err := profam.RunEpoch(nil, names[:10], seqs[:10], 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	drift := cfg
	drift.Pairs = profam.PairsGST
	_, _, err = profam.RunEpoch(st, names[10:], seqs[10:], 1, drift)
	if !errors.Is(err, profam.ErrConfigChanged) {
		t.Fatalf("backend drift accepted: err=%v", err)
	}
	// Staying on the same backend must still commit.
	if _, _, err := profam.RunEpoch(st, names[10:], seqs[10:], 1, cfg); err != nil {
		t.Fatal(err)
	}
}
