// Benchmarks regenerating the paper's tables and figures (one benchmark
// per experiment; see DESIGN.md §4 for the index). They run the same
// code as cmd/benchtab at a reduced workload scale so `go test -bench=.`
// stays tractable; cmd/benchtab prints the full tables.
//
// Custom metrics attached to the relevant benchmarks report the paper's
// headline quantities (work reduction, speedup, precision) so the shape
// of each result is visible straight from the benchmark output.
package profam_test

import (
	"fmt"
	"testing"

	"profam"
	"profam/internal/experiments"
	"profam/internal/gos"
	"profam/internal/mpi"
	"profam/internal/pace"
	"profam/internal/quality"
	"profam/internal/workload"
)

const benchScale = 0.25

// BenchmarkTableI regenerates Table I (qualitative summary) on scaled
// 160K-like and 22K-like data sets.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rows[0].DenseSub), "denseSubgraphs")
			b.ReportMetric(100*rows[0].MeanDensity, "density%")
		}
	}
}

// BenchmarkQuality regenerates the PR/SE/OQ/CC comparison (paper:
// 95.75 / 56.89 / 55.49 / 73.04 on the 160K set).
func BenchmarkQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		q, err := experiments.Quality(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*q.VsTruth.Precision(), "PR%")
			b.ReportMetric(100*q.VsTruth.Sensitivity(), "SE%")
		}
	}
}

// BenchmarkTableII regenerates Table II (RR/CCD virtual run-times at
// p = 32..512 on the 80K-like input).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].RR+rows[0].CCD, "simSec@p32")
			b.ReportMetric(rows[len(rows)-1].RR+rows[len(rows)-1].CCD, "simSec@p512")
		}
	}
}

// BenchmarkFig5 regenerates the dense-subgraph size histogram.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bounds, _, err := experiments.Fig5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(bounds)), "sizeBuckets")
		}
	}
}

// BenchmarkFig6Sweep regenerates the n × p scaling matrix behind
// Figures 6a, 6b and 7a.
func BenchmarkFig6Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Fig6(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(cells) >= 4 {
			last := cells[len(cells)-1] // largest n, p=512
			first := cells[len(cells)-4]
			if last.RR+last.CCD > 0 {
				b.ReportMetric((first.RR+first.CCD)/(last.RR+last.CCD), "speedup32to512")
			}
		}
	}
}

// BenchmarkFig7b regenerates the serial DSD time vs (n, c) matrix.
func BenchmarkFig7b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7b(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkReduction regenerates the promising-pairs work-reduction
// measurement (paper: 99 % vs all-pairs on the 40K input).
func BenchmarkWorkReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.WorkReduction(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*r.VsAllPairs, "redVsAllPairs%")
		}
	}
}

// --- ablations of the design choices DESIGN.md calls out ------------------

// BenchmarkCCDClosureFilter measures connected-component detection with
// and without the transitive-closure pair elimination (the paper's main
// work-reduction heuristic).
func BenchmarkCCDClosureFilter(b *testing.B) {
	set, _ := experiments.SetOfSize(300, 9)
	for _, disabled := range []bool{false, true} {
		name := "on"
		if disabled {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var aligned int64
			for i := 0; i < b.N; i++ {
				_, err := mpi.RunSim(1, mpi.CostModel{}, func(c *mpi.Comm) {
					_, st, err := pace.ConnectedComponents(c, set, nil, pace.Config{Psi: 7, DisableClosureFilter: disabled})
					if err != nil {
						panic(err)
					}
					aligned = st.PairsAligned
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(aligned), "alignments")
		})
	}
}

// BenchmarkPairOrdering compares decreasing-match-length task ordering
// against FIFO (the ablation of the paper's on-demand ordering).
func BenchmarkPairOrdering(b *testing.B) {
	set, _ := experiments.SetOfSize(300, 11)
	for _, fifo := range []bool{false, true} {
		name := "descending"
		if fifo {
			name = "fifo"
		}
		b.Run(name, func(b *testing.B) {
			var aligned int64
			for i := 0; i < b.N; i++ {
				_, err := mpi.RunSim(1, mpi.CostModel{}, func(c *mpi.Comm) {
					_, st, err := pace.ConnectedComponents(c, set, nil, pace.Config{Psi: 7, RandomPairOrder: fifo})
					if err != nil {
						panic(err)
					}
					aligned = st.PairsAligned
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(aligned), "alignments")
		})
	}
}

// BenchmarkPsi sweeps the maximal-match filter length ψ: smaller ψ
// admits more promising pairs (more alignments, higher sensitivity).
func BenchmarkPsi(b *testing.B) {
	set, _ := experiments.SetOfSize(300, 13)
	for _, psi := range []int{6, 8, 10, 12} {
		b.Run(fmt.Sprintf("psi=%02d", psi), func(b *testing.B) {
			var gen int64
			for i := 0; i < b.N; i++ {
				_, err := mpi.RunSim(1, mpi.CostModel{}, func(c *mpi.Comm) {
					_, st, err := pace.ConnectedComponents(c, set, nil, pace.Config{Psi: psi})
					if err != nil {
						panic(err)
					}
					gen = st.PairsGenerated
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(gen), "pairsGenerated")
		})
	}
}

// BenchmarkIndexKind compares the pair-generation backends (generalized
// suffix tree, enhanced suffix array, streamed sparse multiply) driving
// the same CCD phase.
func BenchmarkIndexKind(b *testing.B) {
	set, _ := experiments.SetOfSize(300, 15)
	for _, kind := range []pace.IndexKind{pace.IndexGST, pace.IndexESA, pace.IndexSparse} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := mpi.RunSim(1, mpi.CostModel{}, func(c *mpi.Comm) {
					if _, _, err := pace.ConnectedComponents(c, set, nil, pace.Config{Psi: 7, Index: kind}); err != nil {
						panic(err)
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineVsBaseline contrasts the suffix-tree-filtered
// pipeline against the Θ(n²) GOS-style baseline on identical input.
func BenchmarkPipelineVsBaseline(b *testing.B) {
	set, _ := workload.Generate(workload.Params{
		Families: 4, MeanFamilySize: 25, MeanLength: 110,
		Divergence: 0.08, ContainedFrac: 0.1, Singletons: 4, Seed: 17,
	})
	cfg := experiments.PipelineConfig()
	b.Run("pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, _, err := profam.RunSet(set, 1, false, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(res.RR.PairsAligned+res.CCD.PairsAligned), "alignments")
			}
		}
	})
	b.Run("gos-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := gos.Run(set, gos.Config{})
			if i == 0 {
				b.ReportMetric(float64(res.Alignments), "alignments")
			}
		}
	})
}

// BenchmarkEndToEnd runs the complete pipeline at three input sizes.
func BenchmarkEndToEnd(b *testing.B) {
	for _, n := range []int{150, 300, 600} {
		set, _ := experiments.SetOfSize(n, int64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := experiments.PipelineConfig()
			for i := 0; i < b.N; i++ {
				if _, _, err := profam.RunSet(set, 1, false, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- hybrid rank×thread execution ----------------------------------------

// BenchmarkAlignBatchParallel measures the worker-side batch-alignment
// kernel (pooled goroutines + recycled aligners) at 1, 2, 4 and NumCPU
// threads per rank. The cells metric is a work checksum: identical
// across thread counts by construction.
func BenchmarkAlignBatchParallel(b *testing.B) {
	set, _ := experiments.SetOfSize(120, 31)
	pairs := experiments.BenchPairs(set, 2048)
	for _, th := range experiments.ThreadCounts() {
		b.Run(fmt.Sprintf("threads=%d", th), func(b *testing.B) {
			var cells int64
			for i := 0; i < b.N; i++ {
				cells = experiments.AlignBatchKernel(set, pairs, th)
			}
			b.ReportMetric(float64(cells), "cells")
		})
	}
}

// BenchmarkAlignCascade measures the seed-anchored cascade over the
// same promising-pair shape the workers see, sweeping the thread ladder.
// cells is the DP work actually done; cells_ratio is the factor of
// full-matrix cells the cascade eliminated (both are work checksums,
// identical across thread counts).
func BenchmarkAlignCascade(b *testing.B) {
	set, _ := experiments.SetOfSize(120, 31)
	pairs, err := experiments.BenchSeedPairs(set, 6, 2048)
	if err != nil {
		b.Fatal(err)
	}
	for _, th := range experiments.ThreadCounts() {
		b.Run(fmt.Sprintf("threads=%d", th), func(b *testing.B) {
			var cells, full int64
			for i := 0; i < b.N; i++ {
				cells, full = experiments.AlignCascadeKernel(set, pairs, th)
			}
			b.ReportMetric(float64(cells), "cells")
			b.ReportMetric(float64(full)/float64(cells), "cells_ratio")
		})
	}
}

// BenchmarkAlignKernels isolates the word-parallel kernel layer on the
// batch-alignment pair corpus: the striped int16 local kernel against
// its int32 scalar reference (same pairs, same scores), the bit-parallel
// fit-edit-distance bound, and the full containment cascade with kernels
// on vs -kernels=scalar.
func BenchmarkAlignKernels(b *testing.B) {
	set, _ := experiments.SetOfSize(120, 31)
	pairs := experiments.BenchPairs(set, 2048)
	seedPairs, err := experiments.BenchSeedPairs(set, 6, 2048)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("local-striped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.AlignStripedKernel(set, pairs, 1)
		}
	})
	b.Run("local-scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.AlignLocalScalarKernel(set, pairs, 1)
		}
	})
	b.Run("fit-bitparallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.AlignBitParallelKernel(set, pairs, 1)
		}
	})
	b.Run("cascade-auto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.AlignCascadeKernelMode(set, seedPairs, 1, false)
		}
	})
	b.Run("cascade-scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.AlignCascadeKernelMode(set, seedPairs, 1, true)
		}
	})
}

// BenchmarkPipelineThreads runs the full wall-clock pipeline on two
// in-process ranks while sweeping ThreadsPerRank, checking that the
// family list is invariant and reporting the family count.
func BenchmarkPipelineThreads(b *testing.B) {
	set, _ := experiments.SetOfSize(300, 47)
	var base string
	for _, th := range experiments.ThreadCounts() {
		b.Run(fmt.Sprintf("threads=%d", th), func(b *testing.B) {
			cfg := experiments.PipelineConfig()
			cfg.ThreadsPerRank = th
			var fams int
			for i := 0; i < b.N; i++ {
				res, _, err := profam.RunSet(set, 2, false, cfg)
				if err != nil {
					b.Fatal(err)
				}
				fams = len(res.Families)
				if i == 0 {
					if s := fmt.Sprint(res.Families); base == "" {
						base = s
					} else if s != base {
						b.Fatal("families differ across thread counts")
					}
				}
			}
			b.ReportMetric(float64(fams), "families")
		})
	}
}

// BenchmarkQualityMetrics measures the pairwise confusion computation on
// large labelings (pure counting cost).
func BenchmarkQualityMetrics(b *testing.B) {
	n := 100000
	test := make([]int, n)
	bench := make([]int, n)
	for i := range test {
		test[i] = i % 1000
		bench[i] = i % 800
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := quality.Compare(test, bench); err != nil {
			b.Fatal(err)
		}
	}
}
