package profam_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"profam"
	"profam/internal/workload"
)

// TestMetricsDeterministicAcrossThreads: under the simulator, the merged
// metrics report must be identical for ThreadsPerRank=1 and =4 once the
// clock-derived fields are stripped (Canonical). Counters, gauges and
// histograms are work-derived, and the hybrid model never changes the
// work — only its wall time.
func TestMetricsDeterministicAcrossThreads(t *testing.T) {
	set, _ := workload.Generate(workload.Params{
		Families: 4, MeanFamilySize: 10, MeanLength: 100,
		Divergence: 0.08, ContainedFrac: 0.15, Singletons: 4, Seed: 777,
	})
	cfg := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3,
		BatchPairs: 256, BatchTasks: 64}

	var want []byte
	for _, threads := range []int{1, 4} {
		c := cfg
		c.ThreadsPerRank = threads
		res, _, err := profam.RunSet(set, 2, true, c)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if res.Metrics == nil {
			t.Fatalf("threads=%d: Result.Metrics is nil", threads)
		}
		got, err := json.Marshal(res.Metrics.Canonical())
		if err != nil {
			t.Fatal(err)
		}
		if threads == 1 {
			want = got

			// Spot-check the report's load-bearing contents once.
			rep := res.Metrics
			if rep.NumRanks != 2 {
				t.Errorf("NumRanks = %d, want 2", rep.NumRanks)
			}
			gen := rep.CounterValue("pace_pairs_generated{phase=rr}")
			if gen != res.RR.PairsGenerated || gen == 0 {
				t.Errorf("rr generated counter = %d, Stats say %d", gen, res.RR.PairsGenerated)
			}
			al := rep.CounterValue("pace_pairs_aligned{phase=ccd}")
			if al != res.CCD.PairsAligned {
				t.Errorf("ccd aligned counter = %d, Stats say %d", al, res.CCD.PairsAligned)
			}
			if fams := rep.CounterValue("pipeline_families_emitted"); fams != int64(len(res.Families)) {
				t.Errorf("families counter = %d, result has %d", fams, len(res.Families))
			}
			wr := rep.GaugeValue("work_elimination_ratio{phase=ccd}")
			if wr != res.CCD.WorkReduction() {
				t.Errorf("work-elimination gauge = %v, Stats say %v", wr, res.CCD.WorkReduction())
			}
			phases := map[string]bool{}
			for _, ph := range rep.Phases {
				phases[ph.Name] = true
				if ph.MaxSeconds <= 0 {
					t.Errorf("phase %s has no time", ph.Name)
				}
			}
			for _, name := range []string{"rr", "ccd", "bgg", "dsd"} {
				if !phases[name] {
					t.Errorf("phase %q missing from report (have %v)", name, phases)
				}
			}
			if rep.CounterValue("mpi_msgs_sent{transport=sim}") == 0 {
				t.Error("no transport traffic recorded")
			}
			if _, ok := rep.Histograms["pipeline_component_size"]; !ok {
				t.Error("component-size histogram missing")
			}
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("canonical metrics differ between ThreadsPerRank=1 and =%d", threads)
		}
	}
}

// TestMetricsOnWallClockTransports: the inproc path must also produce a
// merged report, with the work counters matching the simulator exactly
// (the byte-identical-results contract extends to work-derived metrics).
func TestMetricsOnWallClockTransports(t *testing.T) {
	set, _ := workload.Generate(workload.Params{
		Families: 3, MeanFamilySize: 9, MeanLength: 90,
		Divergence: 0.07, ContainedFrac: 0.2, Singletons: 3, Seed: 515,
	})
	cfg := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3,
		ThreadsPerRank: 2}

	wall, _, err := profam.RunSet(set, 2, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim, _, err := profam.RunSet(set, 2, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wall.Metrics == nil || sim.Metrics == nil {
		t.Fatal("missing metrics report")
	}
	for _, name := range []string{
		"pace_pairs_generated{phase=rr}",
		"pace_pairs_aligned{phase=ccd}",
		"pace_pairs_closure{phase=ccd}",
		"pipeline_families_emitted",
	} {
		if w, s := wall.Metrics.CounterValue(name), sim.Metrics.CounterValue(name); w != s {
			t.Errorf("%s: inproc=%d sim=%d", name, w, s)
		}
	}
	// Transport labels must reflect the actual transport.
	if wall.Metrics.CounterValue("mpi_msgs_sent{transport=inproc}") == 0 {
		t.Error("no inproc traffic recorded")
	}
	if wall.Metrics.CounterValue("mpi_msgs_sent{transport=sim}") != 0 {
		t.Error("sim traffic recorded on a wall-clock run")
	}
}
