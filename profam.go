// Package profam identifies protein families in large collections of
// amino-acid (ORF) sequences, reproducing the parallel approach of
// Wu & Kalyanaraman, "An Efficient Parallel Approach for Identifying
// Protein Families in Large-scale Metagenomic Data Sets" (SC 2008).
//
// The pipeline has four phases:
//
//  1. Redundancy removal — sequences ≥95 % contained in another sequence
//     are dropped, using a generalized-suffix-tree maximal-match filter
//     so that only promising pairs are ever aligned.
//  2. Connected-component detection — PaCE-style master–worker
//     clustering with union–find transitive-closure work elimination.
//  3. Bipartite graph generation — each component is reduced to a
//     bipartite graph, either by vertex duplication (global-similarity
//     families) or via shared fixed-length words (domain families).
//  4. Dense-subgraph detection — the two-pass Shingle algorithm (Gibson
//     et al., VLDB 2005) with min-wise independent permutations extracts
//     arbitrarily-sized dense subgraphs: the protein families.
//
// Entry points: Run (serial), RunParallel (goroutine ranks over in-memory
// message passing), and RunSimulated (deterministic virtual-time
// simulation of a distributed-memory machine, for scaling studies on a
// single host).
package profam

import (
	"fmt"
	"io"
	"log/slog"
	"sort"

	"profam/internal/align"
	"profam/internal/bipartite"
	"profam/internal/metrics"
	"profam/internal/mpi"
	"profam/internal/pace"
	"profam/internal/pool"
	"profam/internal/seq"
	"profam/internal/shingle"
	"profam/internal/trace"
)

// Reduction selects the bipartite-graph reduction of phase 3.
type Reduction int

const (
	// GlobalSimilarity is the paper's B_d reduction: families are sets
	// of sequences with strong full-length pairwise similarity.
	GlobalSimilarity Reduction = iota
	// DomainBased is the paper's B_m reduction: families share
	// substantial numbers of exact fixed-length words (domains).
	DomainBased
)

func (r Reduction) String() string {
	if r == GlobalSimilarity {
		return "global-similarity"
	}
	return "domain-based"
}

// PairBackend selects how phases 1 and 2 enumerate promising pairs.
// All three backends yield byte-identical families; they differ in
// build cost and peak index memory (see DESIGN.md §7e).
type PairBackend int

const (
	// PairsGST indexes with the generalized suffix tree — the paper's
	// structure and the default.
	PairsGST PairBackend = iota
	// PairsESA indexes with the enhanced suffix array: the same pair
	// set from flat sorted arrays instead of pointered tree nodes.
	PairsESA
	// PairsSparse streams candidate pairs from a blocked sparse
	// k-mer × sequence matrix multiply (A·Aᵀ), holding only one
	// bucket's CSR block in memory at a time.
	PairsSparse
)

func (b PairBackend) String() string {
	switch b {
	case PairsESA:
		return "esa"
	case PairsSparse:
		return "sparse"
	}
	return "gst"
}

// ParsePairBackend maps the -pairs flag values onto the backend enum.
func ParsePairBackend(s string) (PairBackend, error) {
	switch s {
	case "", "gst":
		return PairsGST, nil
	case "esa":
		return PairsESA, nil
	case "sparse":
		return PairsSparse, nil
	}
	return PairsGST, fmt.Errorf("profam: unknown pair backend %q (want gst, esa or sparse)", s)
}

// Config holds every user-visible knob, with the paper's defaults.
// The zero value is ready to use.
type Config struct {
	// Psi (ψ) is the minimum maximal exact-match length that makes a
	// sequence pair "promising" (default 8).
	Psi int

	// Redundancy removal (Definition 1) thresholds.
	ContainIdentity float64 // default 0.95
	ContainCoverage float64 // default 0.95

	// Overlap (Definition 2) thresholds for component detection.
	OverlapSimilarity float64 // default 0.30
	OverlapCoverage   float64 // default 0.80

	// EdgeSimilarity is the similarity cutoff for bipartite-graph edges
	// (defaults to OverlapSimilarity).
	EdgeSimilarity float64

	// Reduction selects B_d (GlobalSimilarity) or B_m (DomainBased).
	Reduction Reduction
	// W is the word length for the domain-based reduction (default 10).
	W int

	// Shingle parameters (defaults (5,300) and (5,100), per the paper's
	// fine-tuned setting).
	S1, C1, S2, C2 int
	// Tau is the |A∩B|/|A∪B| post-test for global-similarity families
	// (default 0.5).
	Tau float64

	// MinComponentSize skips smaller connected components (paper
	// reports components of 5+; default 5).
	MinComponentSize int
	// MinFamilySize drops smaller dense subgraphs (default 5).
	MinFamilySize int

	// Seed drives the min-wise permutation family (default fixed).
	Seed int64

	// Shards > 1 enables LSH similarity sharding: a MinHash signature
	// phase assigns every sequence a primary shard, the communicator is
	// split into rank groups that each run their own master–worker RR and
	// CCD over one shard's sequences (N masters concurrently instead of
	// one), and a masterless boundary pass aligns cross-shard promising
	// pairs before the verdicts are merged globally (see DESIGN.md §7f).
	// 1 (and 0, the default) is the single-master pipeline, unchanged.
	Shards int
	// ShardBands and ShardRows shape the LSH banding of the signature
	// phase: ShardBands·ShardRows MinHash rows, folded into ShardBands
	// band buckets. Sequences colliding in any band cluster together
	// (transitively), and whole clusters are placed largest-first onto
	// the least-loaded shard (defaults 8 and 2).
	ShardBands, ShardRows int
	// ShardSeed seeds the splitmix64-derived permutation family behind
	// shard assignment (minhash.NewFamilyFixed — fingerprint-stable by
	// construction, independent of math/rand; default 20081117).
	ShardSeed int64

	// BatchPairs/BatchTasks tune the master–worker exchange granularity.
	BatchPairs, BatchTasks int

	// ThreadsPerRank bounds the goroutine pool each rank fans its
	// embarrassingly-parallel work out over (alignment batches, index
	// construction, per-component phase 3+4 jobs) — the hybrid
	// rank×thread execution model. 0 means auto: the wall-clock entry
	// points (Run, RunFASTA, RunParallel, RunSet) resolve it to
	// max(1, NumCPU/ranks), while RunSimulated keeps the paper's
	// single-threaded nodes so virtual curves stay host-independent.
	// RunPipelineOn treats 0 as 1; distributed callers choose their own
	// budget. Results are byte-identical for every value; only execution
	// time changes.
	ThreadsPerRank int

	// Pairs selects the promising-pair generation backend: PairsGST
	// (the paper's generalized suffix tree), PairsESA (enhanced suffix
	// array — same pair set, flatter memory profile) or PairsSparse
	// (streamed sparse k-mer matrix multiply — same candidate set,
	// peak index memory bounded by one bucket instead of the full
	// assignment). Families are byte-identical across backends.
	Pairs PairBackend

	// Lockstep reverts the master–worker phases to the synchronous
	// round-robin protocol (master serves ranks 1..p-1 in a fixed cycle,
	// workers block on each reply before aligning). The default is the
	// overlapped protocol: arrival-order service, worker prefetch and an
	// adaptive task quota. Lockstep is the reference arm for the
	// order-invariance tests and the baseline for measuring the overlap
	// win; at p > 2 it is also the only protocol whose service order is
	// content-deterministic, which some metric-identity tests rely on.
	Lockstep bool

	// ExactAlign disables the seed-anchored alignment cascade everywhere
	// (RR, CCD and B_d edge discovery), running every promising pair
	// through the full-matrix DP predicates. Families and canonical
	// metrics are identical either way — the cascade only takes
	// certified shortcuts — so this is purely an escape hatch and the
	// reference arm for the determinism tests.
	ExactAlign bool

	// ScalarKernels disables the word-parallel alignment kernels (the
	// bit-parallel and striped-int16 cascade stages and the batch-level
	// profile reuse) everywhere the cascade runs, keeping it on the int32
	// scalar kernels. Families and canonical metrics are identical either
	// way; this is the reference arm for the kernel determinism tests and
	// the -kernels benchmark comparisons.
	ScalarKernels bool

	// TraceCapacity enables event-level tracing: each rank records up to
	// this many protocol and communication events into a bounded ring
	// buffer (oldest overwritten beyond capacity, drops counted under
	// trace_dropped). At job end the per-rank buffers are merged into
	// Result.Trace. 0 (the default) disables tracing entirely.
	TraceCapacity int

	// Logger receives structured progress records from the pipeline
	// (rank-0 phase milestones at info level, per-round master detail at
	// debug level), stamped with the rank clock — virtual seconds under
	// RunSimulated. nil discards.
	Logger *slog.Logger

	// Abort, when non-nil, lets the caller cancel a running job: the
	// pipeline polls it at phase boundaries (after RR, CCD, and BGG/DSD)
	// and returns ErrAborted once it is closed. The decision is taken on
	// rank 0 and broadcast, so every rank exits the same phase and the
	// error-path observability (metrics/trace stashing) still runs
	// collectively. nil (the default) disables the checks entirely and
	// leaves the message pattern of existing jobs untouched.
	Abort <-chan struct{}
}

func (c Config) withDefaults() Config {
	if c.Psi == 0 {
		c.Psi = 8
	}
	if c.ContainIdentity == 0 {
		c.ContainIdentity = 0.95
	}
	if c.ContainCoverage == 0 {
		c.ContainCoverage = 0.95
	}
	if c.OverlapSimilarity == 0 {
		c.OverlapSimilarity = 0.30
	}
	if c.OverlapCoverage == 0 {
		c.OverlapCoverage = 0.80
	}
	if c.EdgeSimilarity == 0 {
		c.EdgeSimilarity = c.OverlapSimilarity
	}
	if c.W == 0 {
		c.W = 10
	}
	if c.S1 == 0 {
		c.S1 = 5
	}
	if c.C1 == 0 {
		c.C1 = 300
	}
	if c.S2 == 0 {
		c.S2 = 5
	}
	if c.C2 == 0 {
		c.C2 = 100
	}
	if c.Tau == 0 {
		c.Tau = 0.5
	}
	if c.MinComponentSize == 0 {
		c.MinComponentSize = 5
	}
	if c.MinFamilySize == 0 {
		c.MinFamilySize = 5
	}
	if c.Seed == 0 {
		c.Seed = 20081117
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.ShardBands == 0 {
		c.ShardBands = 8
	}
	if c.ShardRows == 0 {
		c.ShardRows = 2
	}
	if c.ShardSeed == 0 {
		c.ShardSeed = 20081117
	}
	return c
}

// epochFingerprint canonicalizes every knob that influences family
// output, plus the pair backend. Incremental epochs refuse to extend
// state built under a different fingerprint: the determinism contract
// (incremental == byte-identical to cold) only holds when all epochs
// agree on these. Execution-shape knobs (threads, batching, protocol,
// kernels) are deliberately excluded — families are certified identical
// across them. The pair backend is family-identical too, but it is
// included anyway: a service that drifts backends mid-stream would mix
// per-backend metric series and memory behavior across epochs, so the
// drift is rejected up front instead.
func (c Config) epochFingerprint() string {
	d := c.withDefaults()
	return fmt.Sprintf("psi=%d ci=%g cc=%g os=%g oc=%g es=%g red=%d w=%d s1=%d c1=%d s2=%d c2=%d tau=%g mc=%d mf=%d seed=%d pairs=%s shards=%d sb=%d sr=%d ss=%d",
		d.Psi, d.ContainIdentity, d.ContainCoverage, d.OverlapSimilarity, d.OverlapCoverage,
		d.EdgeSimilarity, d.Reduction, d.W, d.S1, d.C1, d.S2, d.C2, d.Tau,
		d.MinComponentSize, d.MinFamilySize, d.Seed, d.Pairs,
		d.Shards, d.ShardBands, d.ShardRows, d.ShardSeed)
}

// Fingerprint exposes the epoch fingerprint for provenance records: two
// configs with equal fingerprints are guaranteed to produce identical
// families over the same corpus, so a ledger that stores it can certify
// which runs are comparable.
func (c Config) Fingerprint() string { return c.epochFingerprint() }

func (c Config) paceConfig() pace.Config {
	var idx pace.IndexKind
	switch c.Pairs {
	case PairsESA:
		idx = pace.IndexESA
	case PairsSparse:
		idx = pace.IndexSparse
	default:
		idx = pace.IndexGST
	}
	return pace.Config{
		Psi:           c.Psi,
		Index:         idx,
		BatchPairs:    c.BatchPairs,
		BatchTasks:    c.BatchTasks,
		Threads:       c.ThreadsPerRank,
		Contain:       align.ContainParams{MinIdentity: c.ContainIdentity, MinCoverage: c.ContainCoverage},
		Overlap:       align.OverlapParams{MinSimilarity: c.OverlapSimilarity, MinLongCoverage: c.OverlapCoverage},
		ExactAlign:    c.ExactAlign,
		ScalarKernels: c.ScalarKernels,
		Lockstep:      c.Lockstep,
	}
}

func (c Config) bipartiteConfig() bipartite.Config {
	return bipartite.Config{
		Psi:           c.Psi,
		Edge:          align.OverlapParams{MinSimilarity: c.EdgeSimilarity, MinLongCoverage: c.OverlapCoverage},
		W:             c.W,
		ExactAlign:    c.ExactAlign,
		ScalarKernels: c.ScalarKernels,
	}
}

// withAutoThreads resolves ThreadsPerRank = 0 (auto) to the hybrid
// default for a wall-clock job of p in-process ranks sharing this host:
// max(1, NumCPU/p).
func (c Config) withAutoThreads(p int) Config {
	if c.ThreadsPerRank == 0 {
		c.ThreadsPerRank = pool.DefaultThreads(p)
	}
	return c
}

func (c Config) shingleParams() shingle.Params {
	return shingle.Params{
		S1: c.S1, C1: c.C1, S2: c.S2, C2: c.C2,
		Tau: c.Tau, MinSize: c.MinFamilySize, Seed: c.Seed,
	}
}

// Family is one detected protein family.
type Family struct {
	// Members are sequence indices into the input, sorted ascending.
	Members []int
	// MeanDegree and Density describe the similarity subgraph induced by
	// the family (global-similarity reduction only): Density is the
	// paper's mean-degree/(size-1) measure.
	MeanDegree float64
	Density    float64
}

// Size returns the number of member sequences.
func (f Family) Size() int { return len(f.Members) }

// PhaseStats mirrors the master–worker phase counters.
type PhaseStats struct {
	PairsRaw       int64
	PairsGenerated int64
	PairsDuplicate int64
	PairsClosure   int64
	PairsAligned   int64
	PairsPositive  int64
	Cells          int64
	Time           float64 // seconds (virtual under RunSimulated)
}

// WorkReduction is the fraction of generated promising pairs that never
// required an alignment.
func (s PhaseStats) WorkReduction() float64 {
	if s.PairsGenerated == 0 {
		return 0
	}
	return 1 - float64(s.PairsAligned)/float64(s.PairsGenerated)
}

func fromPace(st pace.Stats) PhaseStats {
	return PhaseStats{
		PairsRaw:       st.PairsRaw,
		PairsGenerated: st.PairsGenerated,
		PairsDuplicate: st.PairsDuplicate,
		PairsClosure:   st.PairsClosure,
		PairsAligned:   st.PairsAligned,
		PairsPositive:  st.PairsPositive,
		Cells:          st.Cells,
		Time:           st.PhaseTime,
	}
}

// Result is the pipeline's complete output.
type Result struct {
	// Input and non-redundant sequence counts.
	NumInput, NumNonRedundant int
	// Keep[i] reports whether input sequence i survived redundancy
	// removal.
	Keep []bool
	// Components lists the connected components of size ≥
	// MinComponentSize, largest first.
	Components [][]int
	// Families are the dense subgraphs, largest first.
	Families []Family

	RR  PhaseStats // redundancy removal
	CCD PhaseStats // connected-component detection
	// BGGTime and DSDTime are the bipartite-generation and
	// dense-subgraph phase times in seconds.
	BGGTime, DSDTime float64

	// Metrics is the job-wide observability report: every counter, gauge,
	// histogram and phase span from all ranks, merged (counters summed,
	// gauges maxed, histograms merged, spans folded per phase). Identical
	// on every rank. Times are virtual seconds under RunSimulated and
	// wall-clock seconds otherwise; Metrics.Canonical() strips the
	// clock-derived fields, leaving the thread-count-independent part.
	Metrics *metrics.Report

	// Trace is the job-wide event timeline, present only when
	// Config.TraceCapacity > 0: every rank's protocol and comm events,
	// merged in rank order and identical on every rank. Export with
	// trace.WriteChromeJSON, analyze with trace.Analyze;
	// Trace.Canonical() is the thread-count-independent form.
	Trace *trace.Timeline
}

// SeqsInFamilies returns the number of sequences covered by families.
func (r *Result) SeqsInFamilies() int {
	n := 0
	for _, f := range r.Families {
		n += len(f.Members)
	}
	return n
}

// MeanFamilyDegree averages MeanDegree over families (Table I's "mean
// degree" column).
func (r *Result) MeanFamilyDegree() float64 {
	if len(r.Families) == 0 {
		return 0
	}
	var s float64
	for _, f := range r.Families {
		s += f.MeanDegree
	}
	return s / float64(len(r.Families))
}

// MeanFamilyDensity averages Density over families.
func (r *Result) MeanFamilyDensity() float64 {
	if len(r.Families) == 0 {
		return 0
	}
	var s float64
	for _, f := range r.Families {
		s += f.Density
	}
	return s / float64(len(r.Families))
}

// LargestFamily returns the size of the largest family (0 if none).
func (r *Result) LargestFamily() int {
	if len(r.Families) == 0 {
		return 0
	}
	return len(r.Families[0].Members)
}

// Summary renders the Table I row for this result.
func (r *Result) Summary() string {
	return fmt.Sprintf("#input=%d #NR=%d #CC=%d #DS=%d #seqInDS=%d meanDeg=%.0f meanDensity=%.0f%% largestDS=%d",
		r.NumInput, r.NumNonRedundant, len(r.Components), len(r.Families),
		r.SeqsInFamilies(), r.MeanFamilyDegree(), 100*r.MeanFamilyDensity(), r.LargestFamily())
}

// FamilyLabels returns a per-sequence family label (-1 when the sequence
// is in no family), for quality comparisons.
func (r *Result) FamilyLabels() []int {
	labels := make([]int, r.NumInput)
	for i := range labels {
		labels[i] = -1
	}
	for fi, f := range r.Families {
		for _, id := range f.Members {
			labels[id] = fi
		}
	}
	return labels
}

// --- input helpers ------------------------------------------------------

func setFromStrings(names, seqs []string) (*seq.Set, error) {
	if len(names) != len(seqs) {
		return nil, fmt.Errorf("profam: %d names but %d sequences", len(names), len(seqs))
	}
	set := seq.NewSet()
	for i := range seqs {
		name := names[i]
		if name == "" {
			name = fmt.Sprintf("seq%d", i)
		}
		if _, err := set.Add(name, seqs[i]); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// --- entry points ---------------------------------------------------------

// Run executes the whole pipeline serially on the given sequences.
// names may be nil (sequences are then named seq0, seq1, …).
func Run(names, seqs []string, cfg Config) (*Result, error) {
	if names == nil {
		names = make([]string, len(seqs))
	}
	set, err := setFromStrings(names, seqs)
	if err != nil {
		return nil, err
	}
	return runSet(set, cfg)
}

// RunFASTA executes the pipeline serially on FASTA input.
func RunFASTA(r io.Reader, cfg Config) (*Result, error) {
	set, err := seq.ReadFASTA(r)
	if err != nil {
		return nil, err
	}
	return runSet(set, cfg)
}

func runSet(set *seq.Set, cfg Config) (*Result, error) {
	cfg = cfg.withAutoThreads(1)
	var res *Result
	var rerr error
	err := mpi.Run(1, func(c *mpi.Comm) {
		res, rerr = runPipeline(c, set, cfg)
	})
	if err != nil {
		return nil, err
	}
	return res, rerr
}

// RunParallel executes the pipeline on p concurrent ranks (goroutines
// exchanging in-memory messages). Results are identical to Run up to the
// documented ordering effects of dynamic work distribution.
func RunParallel(p int, names, seqs []string, cfg Config) (*Result, error) {
	if names == nil {
		names = make([]string, len(seqs))
	}
	set, err := setFromStrings(names, seqs)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withAutoThreads(p)
	var res *Result
	var rerr error
	err = mpi.Run(p, func(c *mpi.Comm) {
		r, e := runPipeline(c, set, cfg)
		if c.Rank() == 0 {
			res, rerr = r, e
		}
	})
	if err != nil {
		return nil, err
	}
	return res, rerr
}

// RunSimulated executes the pipeline on p simulated ranks of a
// distributed-memory machine with BlueGene/L-like communication costs and
// returns the result together with the virtual makespan in seconds. This
// is the engine behind the scaling experiments.
func RunSimulated(p int, names, seqs []string, cfg Config) (*Result, float64, error) {
	if names == nil {
		names = make([]string, len(seqs))
	}
	set, err := setFromStrings(names, seqs)
	if err != nil {
		return nil, 0, err
	}
	return simulateSet(set, p, cfg)
}

func simulateSet(set *seq.Set, p int, cfg Config) (*Result, float64, error) {
	if cfg.ThreadsPerRank == 0 {
		// Simulated ranks model the paper's single-threaded nodes unless
		// the caller explicitly opts into hybrid rank×thread modeling;
		// this keeps the reproduced scaling curves host-independent.
		cfg.ThreadsPerRank = 1
	}
	var res *Result
	var rerr error
	makespan, err := mpi.RunSim(p, mpi.BlueGeneLike(), func(c *mpi.Comm) {
		r, e := runPipeline(c, set, cfg)
		if c.Rank() == 0 {
			res, rerr = r, e
		}
	})
	if err != nil {
		return nil, 0, err
	}
	return res, makespan, rerr
}

// sortFamilies orders families largest-first with deterministic ties:
// equal-size families compare lexicographically on their (ascending)
// member lists, so the order is a pure function of the family set and
// independent of discovery order — required for the incremental ==
// cold byte-identity contract, where cached and recomputed families
// arrive interleaved.
func sortFamilies(fams []Family) {
	sort.Slice(fams, func(i, j int) bool {
		mi, mj := fams[i].Members, fams[j].Members
		if len(mi) != len(mj) {
			return len(mi) > len(mj)
		}
		for k := range mi {
			if mi[k] != mj[k] {
				return mi[k] < mj[k]
			}
		}
		return false
	})
}
