package profam_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"profam"
	"profam/internal/trace"
	"profam/internal/workload"
)

func traceWorkload() (*workload.Params, profam.Config) {
	p := &workload.Params{
		Families: 4, MeanFamilySize: 10, MeanLength: 100,
		Divergence: 0.08, ContainedFrac: 0.15, Singletons: 4, Seed: 777,
	}
	cfg := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3,
		BatchPairs: 256, BatchTasks: 64}
	return p, cfg
}

// TestTraceDeterministicAcrossThreads: under the simulator, the merged
// event timeline must be identical for ThreadsPerRank=1 and =4 once
// timestamps and comm payload values are stripped (Canonical). Protocol
// events are emitted from single-goroutine rank code in program order
// with work-derived values, so the canonical stream is a determinism
// invariant exactly like the canonical metrics report.
func TestTraceDeterministicAcrossThreads(t *testing.T) {
	params, cfg := traceWorkload()
	set, _ := workload.Generate(*params)
	cfg.TraceCapacity = 1 << 16

	var want []byte
	for _, threads := range []int{1, 4} {
		c := cfg
		c.ThreadsPerRank = threads
		res, _, err := profam.RunSet(set, 2, true, c)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if res.Trace == nil {
			t.Fatalf("threads=%d: Result.Trace is nil", threads)
		}
		if res.Trace.Dropped != 0 {
			t.Fatalf("threads=%d: ring overflowed (%d dropped); raise TraceCapacity in the test", threads, res.Trace.Dropped)
		}
		got, err := json.Marshal(res.Trace.Canonical())
		if err != nil {
			t.Fatal(err)
		}
		if threads == 1 {
			want = got

			// Spot-check the timeline's load-bearing contents once.
			tl := res.Trace
			if tl.NumRanks != 2 {
				t.Errorf("NumRanks = %d, want 2", tl.NumRanks)
			}
			if tl.NumEvents() == 0 {
				t.Fatal("timeline has no events")
			}
			markers := map[string]bool{}
			cats := map[string]bool{}
			for _, rt := range tl.Ranks {
				for _, ev := range rt.Events {
					cats[ev.Cat] = true
					if ev.Cat == trace.CatPipeline {
						markers[ev.Name] = true
					}
				}
			}
			for _, m := range []string{"phase:rr", "phase:ccd", "phase:bgg", "phase:dsd"} {
				if !markers[m] {
					t.Errorf("pipeline marker %q missing (have %v)", m, markers)
				}
			}
			for _, cat := range []string{trace.CatPhase, trace.CatComm, trace.CatMaster, trace.CatWorker} {
				if !cats[cat] {
					t.Errorf("no %q events in the timeline", cat)
				}
			}
			if res.Metrics.CounterValue("trace_dropped") != 0 {
				t.Errorf("trace_dropped = %d, want 0", res.Metrics.CounterValue("trace_dropped"))
			}
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("canonical timeline differs between ThreadsPerRank=1 and =%d", threads)
		}
	}
}

// TestTraceRingOverflow: a tiny ring must keep the job alive, cap the
// per-rank event count, and surface the loss in both the timeline and
// the trace_dropped counter.
func TestTraceRingOverflow(t *testing.T) {
	params, cfg := traceWorkload()
	set, _ := workload.Generate(*params)
	// Small batches force many master–worker rounds; a 16-event ring is
	// guaranteed to overflow on every rank.
	cfg.BatchPairs, cfg.BatchTasks = 32, 8
	cfg.TraceCapacity = 16

	res, _, err := profam.RunSet(set, 2, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Result.Trace is nil")
	}
	for _, rt := range res.Trace.Ranks {
		if len(rt.Events) > 16 {
			t.Errorf("rank %d kept %d events, ring capacity is 16", rt.Rank, len(rt.Events))
		}
	}
	if res.Trace.Dropped == 0 {
		t.Error("no drops recorded despite a 16-event ring")
	}
	counted := res.Metrics.CounterValue("trace_dropped")
	if counted == 0 {
		t.Error("trace_dropped counter is zero despite overflow")
	}
	// The metrics snapshot is gathered before the trace snapshot, so the
	// timeline can only have seen additional drops since the counter was
	// frozen — never fewer.
	if res.Trace.Dropped < counted {
		t.Errorf("timeline drops (%d) < trace_dropped counter (%d)", res.Trace.Dropped, counted)
	}
}

// TestTraceAnalyzerAgreesWithReport: every phase span is mirrored into
// the tracer through the span sink, so the straggler analysis and the
// metrics report must attribute identical per-phase critical-path times.
func TestTraceAnalyzerAgreesWithReport(t *testing.T) {
	params, cfg := traceWorkload()
	set, _ := workload.Generate(*params)
	cfg.TraceCapacity = 1 << 16

	res, _, err := profam.RunSet(set, 2, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Metrics == nil {
		t.Fatal("missing trace or metrics")
	}
	if res.Trace.Dropped != 0 {
		t.Fatalf("ring overflowed (%d dropped); the comparison needs the full timeline", res.Trace.Dropped)
	}
	an := trace.Analyze(res.Trace)
	if len(res.Metrics.Phases) == 0 {
		t.Fatal("metrics report has no phases")
	}
	for _, ph := range res.Metrics.Phases {
		got := an.PhaseMax(ph.Name)
		want := ph.MaxSeconds
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("phase %s: analyzer max %.12g, report max %.12g", ph.Name, got, want)
		}
	}
	if an.Makespan <= 0 {
		t.Errorf("makespan = %v, want > 0", an.Makespan)
	}
	if an.CriticalPath <= 0 {
		t.Errorf("critical path = %v, want > 0", an.CriticalPath)
	}
	for _, rb := range an.Ranks {
		if rb.Busy <= 0 {
			t.Errorf("rank %d: busy = %v, want > 0", rb.Rank, rb.Busy)
		}
		if rb.Idle < 0 {
			t.Errorf("rank %d: idle = %v, want >= 0", rb.Rank, rb.Idle)
		}
	}
}

// TestTraceOnWallClock: tracing must also work on the concurrent inproc
// transport (this is the -race hammer for the tracer wiring), and the
// work-derived protocol events must match the simulator's canonically.
func TestTraceOnWallClock(t *testing.T) {
	params, cfg := traceWorkload()
	set, _ := workload.Generate(*params)
	cfg.TraceCapacity = 1 << 16
	cfg.ThreadsPerRank = 2

	wall, _, err := profam.RunSet(set, 2, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wall.Trace == nil {
		t.Fatal("Result.Trace is nil on the inproc transport")
	}
	if wall.Trace.NumRanks != 2 || wall.Trace.NumEvents() == 0 {
		t.Fatalf("timeline: ranks=%d events=%d", wall.Trace.NumRanks, wall.Trace.NumEvents())
	}
	sim, _, err := profam.RunSet(set, 2, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(wall.Trace.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	s, err := json.Marshal(sim.Trace.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w, s) {
		t.Error("canonical timeline differs between inproc and simulated transports")
	}
}
