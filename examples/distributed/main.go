// Distributed execution: the same pipeline code on three transports.
//
//  1. A deterministic virtual-time simulation of a BlueGene/L-like
//     machine sweeps 32..512 ranks and prints the speedup curve of the
//     redundancy-removal + clustering phases (the paper's Figure 7a).
//
//  2. An in-process TCP mesh (gob-encoded messages over real sockets —
//     the "custom RPC" substrate) runs the full pipeline end to end.
//
//     go run ./examples/distributed [-n 500] [-tcp-port 42800]
package main

import (
	"flag"
	"fmt"
	"log"

	"profam"
	"profam/internal/mpi"
	"profam/internal/pace"
	"profam/internal/workload"
)

func main() {
	n := flag.Int("n", 500, "approximate number of sequences")
	port := flag.Int("tcp-port", 42800, "base port for the TCP mesh demo")
	flag.Parse()

	set, _ := workload.Generate(workload.Params{
		Families:       *n / 80,
		MeanFamilySize: 60,
		MeanLength:     120,
		Divergence:     0.10,
		ContainedFrac:  0.12,
		Singletons:     *n / 50,
		Seed:           3,
	})
	fmt.Printf("data set: %d sequences\n\n", set.Len())

	// --- virtual-time scaling sweep --------------------------------
	fmt.Println("simulated BlueGene/L sweep (RR+CCD virtual seconds):")
	ps := []int{32, 64, 128, 256, 512}
	cfg := pace.Config{Psi: 7}
	times := make([]float64, len(ps))
	for i, p := range ps {
		mk, err := mpi.RunSim(p, mpi.BlueGeneLike(), func(c *mpi.Comm) {
			keep, _, err := pace.RedundancyRemoval(c, set, cfg)
			if err != nil {
				panic(err)
			}
			if _, _, err := pace.ConnectedComponents(c, set, keep, cfg); err != nil {
				panic(err)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		times[i] = mk
	}
	fmt.Printf("%8s %12s %10s\n", "ranks", "time (s)", "speedup")
	for i, p := range ps {
		fmt.Printf("%8d %12.2f %9.1fx\n", p, times[i], times[0]/times[i])
	}

	// --- real sockets ------------------------------------------------
	fmt.Println("\nfull pipeline over a 4-rank TCP mesh (loopback):")
	profam.RegisterWireTypes()
	pcfg := profam.Config{Psi: 7, EdgeSimilarity: 0.7}
	var famCount, seqInFam int
	err := mpi.RunTCP(4, *port, func(c *mpi.Comm) {
		res, err := profam.RunPipelineOn(c, set, pcfg)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			famCount = len(res.Families)
			seqInFam = res.SeqsInFamilies()
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TCP run: %d families covering %d sequences\n", famCount, seqInFam)
}
