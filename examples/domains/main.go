// Domain families: the paper's second (B_m) reduction. Sequences that
// share conserved domain blocks embedded in otherwise unrelated
// backbones have little full-length similarity, so the global-similarity
// route misses them; the domain-based bipartite graph — w-length exact
// words on the left, sequences on the right — recovers them.
//
// The example runs BOTH reductions on the same data and contrasts what
// they find.
//
//	go run ./examples/domains
package main

import (
	"fmt"
	"log"
	"strings"

	"profam"
	"profam/internal/seq"
	"profam/internal/workload"
)

func main() {
	set, truth := workload.Generate(workload.Params{
		Families:       2, // two global-similarity families
		MeanFamilySize: 10,
		MeanLength:     120,
		Divergence:     0.08,
		DomainFamilies: 3, // three families sharing only domain blocks
		DomainSize:     10,
		ContainedFrac:  0.01,
		Singletons:     5,
		Seed:           99,
	})
	fmt.Printf("generated %d sequences: 2 global families + 3 domain families + singletons\n\n", set.Len())

	base := profam.Config{
		Psi: 6,
		// Domain-family members overlap only across short conserved
		// blocks, so the component-detection overlap rule is relaxed.
		OverlapSimilarity: 0.25,
		OverlapCoverage:   0.25,
		MinComponentSize:  4,
		MinFamilySize:     4,
	}

	for _, reduction := range []profam.Reduction{profam.GlobalSimilarity, profam.DomainBased} {
		cfg := base
		cfg.Reduction = reduction
		res, _, err := profam.RunSet(set, 1, false, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s reduction: %d families ===\n", reduction, len(res.Families))
		for fi, f := range res.Families {
			fmt.Printf("family %d (%d members): %s\n", fi, f.Size(), describe(set, truth, f.Members))
		}
		fmt.Println()
	}
}

// describe summarises which planted groups a family draws from.
func describe(set *seq.Set, truth *workload.Truth, members []int) string {
	counts := map[string]int{}
	for _, id := range members {
		name := set.Get(id).Name
		group := name[:strings.IndexByte(name, '_')]
		counts[group]++
	}
	parts := make([]string, 0, len(counts))
	for g, c := range counts {
		parts = append(parts, fmt.Sprintf("%s×%d", g, c))
	}
	return strings.Join(parts, " ")
}
