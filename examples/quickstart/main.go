// Quickstart: identify protein families in a handful of sequences with
// the one-call public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"profam"
)

func main() {
	// Two tiny families plus one unrelated sequence. Members of each
	// family differ by a few substitutions; the fragment of kinase-1 is
	// redundant (95 % contained) and will be removed before clustering.
	names := []string{
		"kinase-1", "kinase-2", "kinase-3", "kinase-1-fragment",
		"transporter-1", "transporter-2", "transporter-3",
		"orphan",
	}
	seqs := []string{
		"MKLVINGKTLKGEITVEAPKSGWHHHQELVKWAKEGAELTSGGSNRWTQDYLLK",
		"MKLVINGKTLKGEITVRAPKSGWHAHQELVRWAKEGAELTSGGANRWTQDYLIK",
		"MKLVINGKSLKGEITVEAPRSGWHHHQELIKWAKEGAELTSGGSNKWTQDYLLK",
		"MKLVINGKTLKGEITVEAPKSGWHHHQELVKWAKEGAELTSG",
		"GWEIRDTHKSEIAHRFNDLGEEHFKGLVLVAFSQYLQQCPFDEHVKLAKEVTEF",
		"GWEIRDTHRSEIAHRFNDLGEEHYKGLVLVAFSQYLQQCPFDEHVRLVKEVSEF",
		"GWEVRDTHKSEIAHRYNDLGEEHFKGLVLVAYSQYLQECPFDEHIKLAKEVTEF",
		"PPGFSPEEAYVIKSGARICNLDNAWDAGEGQNTIPGMKKYWPLLL",
	}

	res, err := profam.Run(names, seqs, profam.Config{
		Psi:              6, // tiny inputs: loosen the match filter
		MinComponentSize: 2,
		MinFamilySize:    2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("input: %d sequences, %d after redundancy removal\n",
		res.NumInput, res.NumNonRedundant)
	fmt.Printf("connected components: %d, families: %d\n\n",
		len(res.Components), len(res.Families))
	for fi, fam := range res.Families {
		fmt.Printf("family %d (density %.0f%%):\n", fi, 100*fam.Density)
		for _, id := range fam.Members {
			fmt.Printf("  %s\n", names[id])
		}
	}
	fmt.Printf("\nredundancy removal aligned %d of %d promising pairs (%.0f%% work reduction)\n",
		res.RR.PairsAligned, res.RR.PairsGenerated, 100*res.RR.WorkReduction())
}
