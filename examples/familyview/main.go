// Family view: run the pipeline, then render a detected family as a
// multiple sequence alignment with conservation markers — the kind of
// aligned block the paper's Figure 1 (CRAL/TRIO domain family) shows.
//
//	go run ./examples/familyview
package main

import (
	"fmt"
	"log"

	"profam"
	"profam/internal/msa"
	"profam/internal/workload"
)

func main() {
	set, _ := workload.Generate(workload.Params{
		Families:       3,
		MeanFamilySize: 8,
		MeanLength:     90,
		Divergence:     0.10,
		IndelRate:      0.01,
		ContainedFrac:  0.05,
		Singletons:     3,
		Seed:           61,
	})

	res, _, err := profam.RunSet(set, 1, false, profam.Config{
		Psi: 6, MinComponentSize: 3, MinFamilySize: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Families) == 0 {
		log.Fatal("no families detected")
	}

	fmt.Printf("detected %d families; aligning the largest (%d members)\n\n",
		len(res.Families), res.Families[0].Size())

	fam := res.Families[0]
	members := fam.Members
	if len(members) > 8 {
		members = members[:8] // Figure 1 shows a partial alignment too
	}
	aln, err := msa.Star(set, members, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(aln.Format(72))

	cons := aln.Conservation()
	perfect := 0
	for _, c := range cons {
		if c == 1 {
			perfect++
		}
	}
	fmt.Printf("%d/%d columns fully conserved; family density %.0f%%\n",
		perfect, aln.Width(), 100*fam.Density)
}
