// Metagenome survey: the paper's primary scenario. A synthetic
// environmental ORF collection (planted families, contained fragments,
// singletons) is pushed through the full four-phase pipeline on several
// concurrent ranks, and the result is evaluated against the planted
// ground truth with the paper's quality measures.
//
//	go run ./examples/metagenome [-n 1200] [-p 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"profam"
	"profam/internal/quality"
	"profam/internal/workload"
)

func main() {
	n := flag.Int("n", 1200, "approximate number of sequences")
	p := flag.Int("p", 4, "number of ranks")
	flag.Parse()

	fams := *n / 60
	set, truth := workload.Generate(workload.Params{
		Families:       fams,
		MeanFamilySize: 45,
		MeanLength:     140,
		Divergence:     0.10,
		IndelRate:      0.005,
		Subfamilies:    3,
		ContainedFrac:  0.15,
		Singletons:     *n / 40,
		Seed:           7,
	})
	fmt.Printf("generated %d ORFs: %d planted families, mean length %.0f\n",
		set.Len(), truth.NumFamilies, set.MeanLength())

	cfg := profam.Config{
		Psi:            7,
		EdgeSimilarity: 0.70,
	}
	res, span, err := profam.RunSet(set, *p, false, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\npipeline on %d ranks finished in %.1fs\n", *p, span)
	fmt.Printf("  RR : removed %d redundant of %d; %d/%d promising pairs aligned (%.0f%% work reduction)\n",
		res.NumInput-res.NumNonRedundant, res.NumInput,
		res.RR.PairsAligned, res.RR.PairsGenerated, 100*res.RR.WorkReduction())
	fmt.Printf("  CCD: %d components of size >= 5; %d pairs skipped by transitive closure\n",
		len(res.Components), res.CCD.PairsClosure)
	fmt.Printf("  DSD: %d dense subgraphs covering %d sequences; largest %d; mean density %.0f%%\n",
		len(res.Families), res.SeqsInFamilies(), res.LargestFamily(), 100*res.MeanFamilyDensity())

	conf, err := quality.Compare(res.FamilyLabels(), truth.Label)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nagreement with planted families (Equations 1-4):\n  %s\n", conf)

	fmt.Println("\nten largest families:")
	for i, f := range res.Families {
		if i == 10 {
			break
		}
		fmt.Printf("  #%d: %d members, density %.0f%%, e.g. %s\n",
			i, f.Size(), 100*f.Density, set.Get(f.Members[0]).Name)
	}
}
