package profam

import (
	"profam/internal/bipartite"
	"profam/internal/mpi"
	"profam/internal/pace"
	"profam/internal/pool"
	"profam/internal/seq"
	"profam/internal/shingle"
)

// secPerShingleOp is the virtual cost of one min-hash evaluation in the
// dense-subgraph phase (same calibration family as pace.CostParams).
const secPerShingleOp = 2.0e-8

// wireFamily is the gob-friendly family representation exchanged between
// ranks.
type wireFamily struct {
	Members    []int32
	MeanDegree float64
	Density    float64
}

// WireSize implements mpi.Sized for the simtime cost model.
func (w wireFamily) WireSize() int { return 24 + 4*len(w.Members) }

type familyBatch struct{ Families []wireFamily }

func (b familyBatch) WireSize() int {
	n := 16
	for _, f := range b.Families {
		n += f.WireSize()
	}
	return n
}

// RegisterWireTypes registers all pipeline payloads with the TCP
// transport. Callers using DialMesh/RunTCP across processes must invoke
// it on every rank; the in-process and simulated transports don't need
// it.
func RegisterWireTypes() {
	pace.RegisterWireTypes()
	mpi.RegisterType(familyBatch{})
}

// runPipeline executes all four phases collectively on c. Every rank
// returns the same *Result.
func runPipeline(c *mpi.Comm, set *seq.Set, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	pcfg := cfg.paceConfig()

	res := &Result{NumInput: set.Len()}

	// Phase 1: redundancy removal.
	keep, rrStats, err := pace.RedundancyRemoval(c, set, pcfg)
	if err != nil {
		return nil, err
	}
	res.Keep = keep
	res.RR = fromPace(rrStats)
	for _, k := range keep {
		if k {
			res.NumNonRedundant++
		}
	}

	// Phase 2: connected components over the non-redundant set.
	comp, ccStats, err := pace.ConnectedComponents(c, set, keep, pcfg)
	if err != nil {
		return nil, err
	}
	res.CCD = fromPace(ccStats)
	res.Components = pace.ComponentsBySize(comp, cfg.MinComponentSize)

	// Phases 3+4: per component, build the bipartite reduction and run
	// the Shingle algorithm. Components are distributed across all ranks
	// (batched by estimated cost), processed independently — no
	// communication until the final gather, exactly as the paper argues
	// dense subgraphs cannot span components.
	own := bipartite.DistributeComponents(res.Components, c.Size())
	bcfg := cfg.bipartiteConfig()
	sp := cfg.shingleParams()
	mine := own[c.Rank()]
	threads := max(1, cfg.ThreadsPerRank)

	// Each owned component is an independent job: build its bipartite
	// reduction, run the Shingle detector, and record the modeled work
	// units. Jobs run on the rank's goroutine pool; results land in a
	// slice indexed by component position, so the flattened family list
	// is identical for every thread count.
	type compJob struct {
		fams  []wireFamily
		cells int64 // B_d DP cells
		pairs int64 // B_d pairs aligned
		chars int64 // B_m word-extraction characters
		ops   int64 // shingle min-hash operations
		err   error
	}
	jobs := make([]compJob, len(mine))
	costs := pace.DefaultCostParams()
	t0 := c.Time()
	pool.Run(threads, len(mine), func(i int) {
		j := &jobs[i]
		members := res.Components[mine[i]]
		var g *bipartite.Graph
		switch cfg.Reduction {
		case DomainBased:
			g, j.err = bipartite.BuildBm(set, members, bcfg)
			if j.err != nil {
				return
			}
			// Word extraction scans each member sequence once.
			for _, id := range members {
				j.chars += int64(set.Get(id).Len())
			}
		default:
			var st bipartite.BuildStats
			g, st, j.err = bipartite.BuildBd(set, members, bcfg)
			if j.err != nil {
				return
			}
			j.cells, j.pairs = st.Cells, st.PairsAligned
		}
		subs, st := shingle.Detect(g, sp)
		j.ops = st.WorkOps
		for _, d := range subs {
			j.fams = append(j.fams, wireFamily{
				Members:    d.Members,
				MeanDegree: d.MeanDegree,
				Density:    d.Density,
			})
		}
	})
	t1 := c.Time()

	// Charge the virtual clock ceil(work/threads) per work class — the
	// perfect-intra-rank-speedup model — keeping simulated curves
	// deterministic for a given thread count. On wall-clock transports
	// Advance is a no-op and the elapsed time of the parallel section
	// (t1-t0) is apportioned between the phases by modeled work.
	var local []wireFamily
	var cells, pairs, chars, ops int64
	for i := range jobs {
		j := &jobs[i]
		if j.err != nil {
			return nil, j.err
		}
		cells += j.cells
		pairs += j.pairs
		chars += j.chars
		ops += j.ops
		local = append(local, j.fams...)
	}
	bggAdv := float64(pool.CeilDiv(cells, threads))*costs.SecPerCell +
		float64(pool.CeilDiv(pairs, threads))*costs.SecPerPairGen +
		float64(pool.CeilDiv(chars, threads))*costs.SecPerTreeChar
	dsdAdv := float64(pool.CeilDiv(ops, threads)) * secPerShingleOp
	c.Advance(bggAdv)
	t2 := c.Time()
	c.Advance(dsdAdv)
	t3 := c.Time()
	bggShare := 1.0
	if bggAdv+dsdAdv > 0 {
		bggShare = bggAdv / (bggAdv + dsdAdv)
	}
	wall := t1 - t0
	bggTime := (t2 - t1) + wall*bggShare
	dsdTime := (t3 - t2) + wall*(1-bggShare)

	// Gather families at rank 0, then share the final list.
	gathered := c.Gather(0, familyBatch{Families: local})
	var all []wireFamily
	if c.Rank() == 0 {
		for _, g := range gathered {
			all = append(all, g.(familyBatch).Families...)
		}
	}
	all = c.Bcast(0, familyBatch{Families: all}).(familyBatch).Families

	res.Families = make([]Family, 0, len(all))
	for _, w := range all {
		f := Family{
			Members:    make([]int, len(w.Members)),
			MeanDegree: w.MeanDegree,
			Density:    w.Density,
		}
		for i, id := range w.Members {
			f.Members[i] = int(id)
		}
		res.Families = append(res.Families, f)
	}
	sortFamilies(res.Families)

	res.BGGTime = c.MaxFloat64(bggTime)
	res.DSDTime = c.MaxFloat64(dsdTime)
	return res, nil
}

// RunPipelineOn executes the pipeline collectively on an existing
// communicator — for callers managing their own transports, such as a
// TCP mesh spanning several processes (see mpi.DialMesh). Every rank
// must call it with the same sequence set and configuration; every rank
// returns the same result.
func RunPipelineOn(c *mpi.Comm, set *seq.Set, cfg Config) (*Result, error) {
	return runPipeline(c, set, cfg)
}

// RunSet is the entry point for in-module tools and benchmarks that
// already hold a seq.Set: it runs the pipeline on p simulated ranks when
// simulate is true, or on p concurrent ranks otherwise (p = 1 means
// serial), returning the rank-0 result and the makespan in seconds
// (virtual when simulated, wall-clock otherwise).
func RunSet(set *seq.Set, p int, simulate bool, cfg Config) (*Result, float64, error) {
	if simulate {
		return simulateSet(set, p, cfg)
	}
	cfg = cfg.withAutoThreads(p)
	var res *Result
	var rerr error
	var span float64
	err := mpi.Run(p, func(c *mpi.Comm) {
		r, e := runPipeline(c, set, cfg)
		t := c.MaxFloat64(c.Time())
		if c.Rank() == 0 {
			res, rerr, span = r, e, t
		}
	})
	if err != nil {
		return nil, 0, err
	}
	return res, span, rerr
}
