package profam

import (
	"runtime"

	"profam/internal/bipartite"
	"profam/internal/metrics"
	"profam/internal/mpi"
	"profam/internal/pace"
	"profam/internal/pool"
	"profam/internal/seq"
	"profam/internal/shingle"
	"profam/internal/trace"
	"profam/internal/unionfind"
)

// secPerShingleOp is the virtual cost of one min-hash evaluation in the
// dense-subgraph phase (same calibration family as pace.CostParams).
const secPerShingleOp = 2.0e-8

// wireFamily is the gob-friendly family representation exchanged between
// ranks. Comp is the index of the component the family came from (into
// the epoch's Components slice) so rank 0 can attribute gathered
// families to components when building the next epoch's family cache.
type wireFamily struct {
	Comp       int32
	Members    []int32
	MeanDegree float64
	Density    float64
}

// WireSize implements mpi.Sized for the simtime cost model.
func (w wireFamily) WireSize() int { return 28 + 4*len(w.Members) }

type familyBatch struct{ Families []wireFamily }

func (b familyBatch) WireSize() int {
	n := 16
	for _, f := range b.Families {
		n += f.WireSize()
	}
	return n
}

// RegisterWireTypes registers all pipeline payloads with the TCP
// transport. Callers using DialMesh/RunTCP across processes must invoke
// it on every rank; the in-process and simulated transports don't need
// it.
func RegisterWireTypes() {
	pace.RegisterWireTypes()
	mpi.RegisterType(familyBatch{})
	mpi.RegisterType(metrics.Snapshot{})
	mpi.RegisterType(metrics.Report{})
	mpi.RegisterType(trace.RankTrace{})
	mpi.RegisterType(trace.Timeline{})
	mpi.RegisterType(false) // abort-decision broadcast
	registerShardWireTypes()
}

// famEntry is one family-cache record: the exact member list of a
// component from the prior epoch (collision guard for the hash key) and
// the families phases 3+4 produced for it.
type famEntry struct {
	members []int
	fams    []Family
}

// epochPrior carries the committed state of the previous epoch into an
// incremental run. All fields describe the sequence-ID prefix
// [0, newFrom) of the current set; IDs at or beyond newFrom are the
// epoch's new arrivals.
type epochPrior struct {
	newFrom   int           // first new sequence ID
	redundant []bool        // prior RR verdicts, len == newFrom
	uf        *unionfind.UF // prior union–find over the kept prior subset (sub-ID space)
	famCache  map[uint64]famEntry
}

// epochPost is the state a successful epoch hands forward, populated on
// rank 0 only (nil elsewhere).
type epochPost struct {
	redundant []bool
	uf        *unionfind.UF
	famCache  map[uint64]famEntry
}

// hashMembers is FNV-1a over a component's member IDs — the family-cache
// key. Collisions are harmless: lookups verify the full member list.
func hashMembers(members []int) uint64 {
	h := uint64(14695981039346656037)
	for _, m := range members {
		v := uint64(m)
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// runPipeline executes all four phases collectively on c. Every rank
// returns the same *Result.
func runPipeline(c *mpi.Comm, set *seq.Set, cfg Config) (*Result, error) {
	res, _, err := runEpochPipeline(c, set, cfg, nil)
	return res, err
}

// runEpochPipeline is the epoch-aware pipeline core. With prior == nil it
// is a cold run, behaviorally identical to the original runPipeline (the
// incremental machinery — pair filtering, union–find seeding, the family
// cache, abort broadcasts — is entirely inert, so metrics and traces of
// existing callers are unchanged). With a prior it reuses last epoch's
// verdicts: RR aligns only pairs touching a new sequence on top of the
// prior redundancy mask, CCD merges epoch-crossing pairs into a clone of
// the prior union–find, and components whose membership is unchanged skip
// phases 3+4 via the family cache. Every rank returns the same *Result;
// rank 0 additionally returns the epochPost to commit (nil elsewhere).
func runEpochPipeline(c *mpi.Comm, set *seq.Set, cfg Config, prior *epochPrior) (res *Result, post *epochPost, err error) {
	cfg = cfg.withDefaults()

	// Every rank owns one metrics registry, clocked by its communicator:
	// virtual seconds under the simulator (deterministic traces),
	// wall-clock seconds otherwise. The registry is the single reporting
	// path — phase Stats, transport volume and component counters all
	// accumulate here and are merged into Result.Metrics at the end.
	reg := metrics.New(c.Rank(), c.Time)
	c.AttachMetrics(reg)

	// The tracer shares the registry's clock and rank. Every phase span is
	// mirrored into it through the span sink, so the trace analyzer and
	// the metrics report fold the exact same intervals. Comm events hook
	// in at the transport wrapper; protocol events via pcfg.Trace.
	var tracer *trace.Tracer
	if cfg.TraceCapacity > 0 {
		tracer = trace.New(c.Rank(), cfg.TraceCapacity, c.Time, reg.Counter("trace_dropped"))
		reg.SetSpanSink(func(sp metrics.SpanRecord) {
			tracer.Span(trace.CatPhase, sp.Name, sp.Start, sp.End, "", 0, "", 0)
		})
		c.AttachTracer(tracer)
	}

	log := cfg.Logger
	if log == nil {
		log = trace.NopLogger()
	}
	log = log.With("rank", c.Rank())

	// Register with the live sets so external observers (the CLI's
	// /metrics endpoint and progress ticker) can watch the run in flight.
	// On the way out — error and panic paths included — unregister, and
	// stash the final snapshots of failed runs so callers can still flush
	// an observability report when they get no Result.
	metrics.RegisterLive(reg)
	trace.RegisterLive(tracer)
	stash := func() {
		metrics.StashFailed([]metrics.Snapshot{reg.Snapshot()})
		if tracer != nil {
			trace.StashFailed([]trace.RankTrace{tracer.Snapshot()})
		}
	}
	defer func() {
		metrics.UnregisterLive(reg)
		trace.UnregisterLive(tracer)
		if p := recover(); p != nil {
			// Transport failures surface as panics in rank code; keep that
			// contract (the mpi harness converts them to errors) but save
			// the partial observability state first.
			stash()
			panic(p)
		}
		if err != nil {
			stash()
		}
	}()

	pcfg := cfg.paceConfig()
	pcfg.Metrics = reg
	pcfg.Trace = tracer
	pcfg.Log = log

	res = &Result{NumInput: set.Len()}

	// checkAbort is the phase-boundary cancellation point: rank 0 polls
	// the channel and broadcasts the verdict so every rank leaves the
	// collective at the same place. With Abort nil it is a no-op — no
	// extra messages — so existing jobs keep their exact comm pattern.
	checkAbort := func() error {
		if cfg.Abort == nil {
			return nil
		}
		aborted := false
		if c.Rank() == 0 {
			select {
			case <-cfg.Abort:
				aborted = true
			default:
			}
		}
		if c.Bcast(0, aborted).(bool) {
			return ErrAborted
		}
		return nil
	}
	if err = checkAbort(); err != nil {
		return nil, nil, err
	}

	if cfg.Shards > 1 {
		// Sharded epochs run cold over the union corpus (DESIGN.md §7f):
		// the shard partition is recomputed from scratch each epoch and is
		// not a refinement of the prior epoch's, so incremental RR/CCD
		// state does not transfer. Dropping prior here makes every later
		// stage (family cache, epoch accounting) see a cold run, which is
		// exactly the determinism contract the ledger certifies.
		prior = nil
	}
	var priorRedundant []bool
	newFrom := 0
	if prior != nil {
		priorRedundant = prior.redundant
		newFrom = prior.newFrom
	}

	// Phases 1+2. The start instant carries the corpus shape so an
	// epoch's timeline is self-describing (both counts are rank-identical,
	// so the canonical trace stays thread-invariant). With Shards > 1 both
	// phases run as per-shard sub-problems in rank groups plus a
	// cross-shard boundary pass (shard.go); otherwise a single master
	// drives each phase over the whole corpus.
	tracer.Instant(trace.CatPipeline, "phase:start", "corpus", int64(set.Len()), "new", int64(set.Len()-newFrom))
	var keep []bool
	var comp []int32
	var ccUF *unionfind.UF
	var rrStats, ccStats pace.Stats
	if cfg.Shards > 1 {
		keep, comp, ccUF, rrStats, ccStats, err = runShardedPhases(c, set, cfg, pcfg, reg, tracer, log)
		if err != nil {
			return nil, nil, err
		}
		probeHeapPeak(c, reg)
		res.Keep = keep
		res.RR = fromPace(rrStats)
		for _, k := range keep {
			if k {
				res.NumNonRedundant++
			}
		}
		res.CCD = fromPace(ccStats)
		res.Components = pace.ComponentsBySize(comp, cfg.MinComponentSize)
		if c.Rank() == 0 {
			log.Info("sharded phases 1+2 done",
				"kept", res.NumNonRedundant, "of", res.NumInput,
				"components", len(res.Components), "t", c.Time())
		}
		if err = checkAbort(); err != nil {
			return nil, nil, err
		}
	} else {
		// Phase 1: redundancy removal.
		tracer.Instant(trace.CatPipeline, "phase:rr", "", 0, "", 0)
		rrSpan := reg.StartSpan("rr")
		keep, rrStats, err = pace.RedundancyRemovalFrom(c, set, priorRedundant, newFrom, pcfg)
		rrSpan.End()
		if err != nil {
			return nil, nil, err
		}
		probeHeapPeak(c, reg)
		res.Keep = keep
		res.RR = fromPace(rrStats)
		for _, k := range keep {
			if k {
				res.NumNonRedundant++
			}
		}
		if c.Rank() == 0 {
			log.Info("redundancy removal done",
				"kept", res.NumNonRedundant, "of", res.NumInput,
				"aligned", rrStats.PairsAligned, "t", c.Time())
		}

		if err = checkAbort(); err != nil {
			return nil, nil, err
		}

		// Incremental CCD is sound only while every previously-kept
		// sequence stays kept: union–find can merge but never split. If a
		// new arrival demoted an old sequence (contains it), fall back to a
		// cold CCD for this epoch. The scan runs on every rank over the
		// broadcast keep mask, so the fallback decision is collective for
		// free.
		ccPrior, ccNewFrom := (*unionfind.UF)(nil), 0
		if prior != nil {
			demoted := false
			for i := 0; i < prior.newFrom; i++ {
				if !prior.redundant[i] && !keep[i] {
					demoted = true
					break
				}
			}
			if demoted {
				if c.Rank() == 0 {
					reg.Counter("pipeline_epoch_demotions").Add(1)
					log.Info("prior sequence demoted by new arrival; cold CCD rebuild", "t", c.Time())
				}
			} else {
				ccPrior, ccNewFrom = prior.uf, prior.newFrom
			}
		}

		// Phase 2: connected components over the non-redundant set.
		tracer.Instant(trace.CatPipeline, "phase:ccd", "", 0, "", 0)
		ccdSpan := reg.StartSpan("ccd")
		comp, ccUF, ccStats, err = pace.ConnectedComponentsFrom(c, set, keep, ccPrior, ccNewFrom, pcfg)
		ccdSpan.End()
		if err != nil {
			return nil, nil, err
		}
		probeHeapPeak(c, reg)
		res.CCD = fromPace(ccStats)
		res.Components = pace.ComponentsBySize(comp, cfg.MinComponentSize)
		if c.Rank() == 0 {
			log.Info("connected components done",
				"components", len(res.Components),
				"aligned", ccStats.PairsAligned, "t", c.Time())
		}

		if err = checkAbort(); err != nil {
			return nil, nil, err
		}
	}

	// Family cache: a component whose membership is unchanged from the
	// prior epoch must produce byte-identical families (phases 3+4 are a
	// pure function of the members and the config, and incremental runs
	// are fingerprint-guarded), so its cached result is reused and only
	// the remaining components are recomputed. Rank 0 owns the cache and
	// broadcasts the hit mask; component indices below are into
	// res.Components throughout.
	hit := make([]bool, len(res.Components))
	var cachedFams [][]Family // rank 0 only, indexed like res.Components
	if prior != nil && prior.famCache != nil {
		if c.Rank() == 0 {
			cachedFams = make([][]Family, len(res.Components))
			hits := int64(0)
			for i, members := range res.Components {
				e, ok := prior.famCache[hashMembers(members)]
				if ok && equalMembers(e.members, members) {
					hit[i] = true
					cachedFams[i] = e.fams
					hits++
				}
			}
			if hits > 0 {
				reg.Counter("pipeline_components_cached").Add(hits)
			}
		}
		hit = c.Bcast(0, hit).([]bool)
	}
	missIdx := make([]int, 0, len(res.Components))
	missComps := make([][]int, 0, len(res.Components))
	for i, members := range res.Components {
		if !hit[i] {
			missIdx = append(missIdx, i)
			missComps = append(missComps, members)
		}
	}

	// Phases 3+4: per component, build the bipartite reduction and run
	// the Shingle algorithm. Components are distributed across all ranks
	// (batched by estimated cost), processed independently — no
	// communication until the final gather, exactly as the paper argues
	// dense subgraphs cannot span components.
	tracer.Instant(trace.CatPipeline, "phase:bgg", "", 0, "", 0)
	own := bipartite.DistributeComponents(missComps, c.Size())
	bcfg := cfg.bipartiteConfig()
	sp := cfg.shingleParams()
	mine := own[c.Rank()]
	threads := max(1, cfg.ThreadsPerRank)

	// Each owned component is an independent job: build its bipartite
	// reduction, run the Shingle detector, and record the modeled work
	// units. Jobs run on the rank's goroutine pool; results land in a
	// slice indexed by component position, so the flattened family list
	// is identical for every thread count.
	type compJob struct {
		fams  []wireFamily
		cells int64 // B_d DP cells
		pairs int64 // B_d pairs aligned
		chars int64 // B_m word-extraction characters
		words int64 // B_m shared words (left vertices)
		sh    shingle.Stats
		err   error
	}
	jobs := make([]compJob, len(mine))
	costs := pace.DefaultCostParams()
	compObs := func(queued, threads int) {
		reg.Histogram(metrics.Name("pool_queue_depth", "phase", "bgg", "site", "components")).
			Observe(int64(queued))
	}
	t0 := c.Time()
	pool.RunObserved(threads, len(mine), compObs, func(i int) {
		j := &jobs[i]
		members := missComps[mine[i]]
		reg.Histogram("pipeline_component_size").Observe(int64(len(members)))
		var g *bipartite.Graph
		switch cfg.Reduction {
		case DomainBased:
			var st bipartite.BuildStats
			g, st, j.err = bipartite.BuildBm(set, members, bcfg)
			if j.err != nil {
				return
			}
			j.chars, j.words = st.Chars, st.Words
		default:
			var st bipartite.BuildStats
			g, st, j.err = bipartite.BuildBd(set, members, bcfg)
			if j.err != nil {
				return
			}
			j.cells, j.pairs = st.Cells, st.PairsAligned
		}
		subs, st := shingle.Detect(g, sp)
		j.sh = st
		for _, d := range subs {
			reg.Histogram("pipeline_family_size").Observe(int64(len(d.Members)))
			j.fams = append(j.fams, wireFamily{
				Comp:       int32(missIdx[mine[i]]),
				Members:    d.Members,
				MeanDegree: d.MeanDegree,
				Density:    d.Density,
			})
		}
	})
	t1 := c.Time()

	// Charge the virtual clock ceil(work/threads) per work class — the
	// perfect-intra-rank-speedup model — keeping simulated curves
	// deterministic for a given thread count. On wall-clock transports
	// Advance is a no-op and the elapsed time of the parallel section
	// (t1-t0) is apportioned between the phases by modeled work.
	var local []wireFamily
	var cells, pairs, chars, words, ops int64
	var sh shingle.Stats
	for i := range jobs {
		j := &jobs[i]
		if j.err != nil {
			return nil, nil, j.err
		}
		cells += j.cells
		pairs += j.pairs
		chars += j.chars
		words += j.words
		ops += j.sh.WorkOps
		sh.ShinglesPass1 += j.sh.ShinglesPass1
		sh.ShinglesPass2 += j.sh.ShinglesPass2
		sh.Candidates += j.sh.Candidates
		sh.Reported += j.sh.Reported
		local = append(local, j.fams...)
	}
	// Fold the phase 3+4 work of this rank's components into the
	// registry; sums over ranks give the job totals since components are
	// owned by exactly one rank.
	reg.Counter("pipeline_components_owned").Add(int64(len(mine)))
	reg.Counter(metrics.Name("bgg_pairs_aligned", "reduction", cfg.Reduction.String())).Add(pairs)
	reg.Counter(metrics.Name("bgg_align_cells", "reduction", cfg.Reduction.String())).Add(cells)
	reg.Counter(metrics.Name("bgg_word_chars", "reduction", cfg.Reduction.String())).Add(chars)
	reg.Counter(metrics.Name("bgg_words", "reduction", cfg.Reduction.String())).Add(words)
	reg.Counter("dsd_shingles_pass1").Add(int64(sh.ShinglesPass1))
	reg.Counter("dsd_shingles_pass2").Add(int64(sh.ShinglesPass2))
	reg.Counter("dsd_candidates").Add(int64(sh.Candidates))
	reg.Counter("dsd_work_ops").Add(ops)
	reg.Counter("pipeline_families_emitted").Add(int64(len(local)))
	bggAdv := float64(pool.CeilDiv(cells, threads))*costs.SecPerCell +
		float64(pool.CeilDiv(pairs, threads))*costs.SecPerPairGen +
		float64(pool.CeilDiv(chars, threads))*costs.SecPerTreeChar
	dsdAdv := float64(pool.CeilDiv(ops, threads)) * secPerShingleOp
	c.Advance(bggAdv)
	t2 := c.Time()
	c.Advance(dsdAdv)
	t3 := c.Time()
	bggShare := 1.0
	if bggAdv+dsdAdv > 0 {
		bggShare = bggAdv / (bggAdv + dsdAdv)
	}
	wall := t1 - t0
	bggTime := (t2 - t1) + wall*bggShare
	dsdTime := (t3 - t2) + wall*(1-bggShare)
	// Phases 3+4 interleave inside the per-component jobs, so their
	// spans are recorded from the modeled apportionment rather than
	// bracketed directly.
	reg.RecordSpan("bgg", t0, t0+bggTime)
	tracer.Instant(trace.CatPipeline, "phase:dsd", "", 0, "", 0)
	reg.RecordSpan("dsd", t0+bggTime, t0+bggTime+dsdTime)
	probeHeapPeak(c, reg)

	// Gather families at rank 0, then share the final list. Cached
	// families join on rank 0 before the broadcast; sortFamilies below is
	// a pure function of the family set, so the cached/recomputed
	// interleaving cannot perturb the output order.
	gathered := c.Gather(0, familyBatch{Families: local})
	var all []wireFamily
	if c.Rank() == 0 {
		for _, g := range gathered {
			all = append(all, g.(familyBatch).Families...)
		}
		for ci, fams := range cachedFams {
			for _, f := range fams {
				w := wireFamily{
					Comp:       int32(ci),
					Members:    make([]int32, len(f.Members)),
					MeanDegree: f.MeanDegree,
					Density:    f.Density,
				}
				for i, id := range f.Members {
					w.Members[i] = int32(id)
				}
				all = append(all, w)
			}
		}
	}
	all = c.Bcast(0, familyBatch{Families: all}).(familyBatch).Families

	res.Families = make([]Family, 0, len(all))
	perComp := map[int][]Family{} // rank 0: component index → its families
	for _, w := range all {
		f := Family{
			Members:    make([]int, len(w.Members)),
			MeanDegree: w.MeanDegree,
			Density:    w.Density,
		}
		for i, id := range w.Members {
			f.Members[i] = int(id)
		}
		res.Families = append(res.Families, f)
		if c.Rank() == 0 {
			perComp[int(w.Comp)] = append(perComp[int(w.Comp)], f)
		}
	}
	sortFamilies(res.Families)

	// Commit state for the next epoch on rank 0: the full redundancy
	// verdict, the kept-subset union–find, and a family cache entry per
	// component (including family-less ones — their absence of families
	// is itself a reusable result).
	if c.Rank() == 0 {
		redundant := make([]bool, len(keep))
		for i, k := range keep {
			redundant[i] = !k
		}
		famCache := make(map[uint64]famEntry, len(res.Components))
		for i, members := range res.Components {
			fams := perComp[i]
			sortFamilies(fams)
			famCache[hashMembers(members)] = famEntry{members: members, fams: fams}
		}
		post = &epochPost{redundant: redundant, uf: ccUF, famCache: famCache}
	}

	res.BGGTime = c.MaxFloat64(bggTime)
	res.DSDTime = c.MaxFloat64(dsdTime)

	// Work-elimination ratios (the paper's headline heuristic-efficiency
	// numbers) as gauges. Rank 0 holds the merged phase Stats, so it alone
	// records them; gauge merge takes the max, making the value global.
	if c.Rank() == 0 {
		reg.Gauge(metrics.Name("work_elimination_ratio", "phase", "rr")).Set(res.RR.WorkReduction())
		reg.Gauge(metrics.Name("work_elimination_ratio", "phase", "ccd")).Set(res.CCD.WorkReduction())
	}

	// Fold the per-rank registries into one job-wide report that every
	// rank returns. The snapshot is taken after the last data collective so
	// the transport counters cover the family exchange; the metrics
	// gather/broadcast itself is necessarily outside its own accounting.
	gathered = c.Gather(0, reg.Snapshot())
	var rep *metrics.Report
	if c.Rank() == 0 {
		snaps := make([]metrics.Snapshot, len(gathered))
		for i, s := range gathered {
			snaps[i] = s.(metrics.Snapshot)
		}
		rep = metrics.Merge(snaps)
	} else {
		rep = &metrics.Report{}
	}
	rep2 := c.Bcast(0, *rep).(metrics.Report)
	res.Metrics = &rep2

	// Gather traces strictly after the metrics exchange so the comm
	// events of the metrics gather are themselves traced; each rank
	// snapshots right before sending, so the trace exchange's own
	// messages are excluded on every rank — deterministically.
	if tracer != nil {
		gt := c.Gather(0, tracer.Snapshot())
		var tl *trace.Timeline
		if c.Rank() == 0 {
			rts := make([]trace.RankTrace, len(gt))
			for i, s := range gt {
				rts[i] = s.(trace.RankTrace)
			}
			tl = trace.Merge(rts)
		} else {
			tl = &trace.Timeline{}
		}
		tl2 := c.Bcast(0, *tl).(trace.Timeline)
		res.Trace = &tl2
		if c.Rank() == 0 {
			log.Info("pipeline done",
				"families", len(res.Families),
				"trace_events", tl2.NumEvents(), "trace_dropped", tl2.Dropped,
				"t", c.Time())
		}
	} else if c.Rank() == 0 {
		log.Info("pipeline done", "families", len(res.Families), "t", c.Time())
	}
	return res, post, nil
}

// equalMembers reports whether two sorted member lists are identical.
func equalMembers(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunPipelineOn executes the pipeline collectively on an existing
// communicator — for callers managing their own transports, such as a
// TCP mesh spanning several processes (see mpi.DialMesh). Every rank
// must call it with the same sequence set and configuration; every rank
// returns the same result.
func RunPipelineOn(c *mpi.Comm, set *seq.Set, cfg Config) (*Result, error) {
	return runPipeline(c, set, cfg)
}

// RunSet is the entry point for in-module tools and benchmarks that
// already hold a seq.Set: it runs the pipeline on p simulated ranks when
// simulate is true, or on p concurrent ranks otherwise (p = 1 means
// serial), returning the rank-0 result and the makespan in seconds
// (virtual when simulated, wall-clock otherwise).
func RunSet(set *seq.Set, p int, simulate bool, cfg Config) (*Result, float64, error) {
	if simulate {
		return simulateSet(set, p, cfg)
	}
	cfg = cfg.withAutoThreads(p)
	var res *Result
	var rerr error
	var span float64
	err := mpi.Run(p, func(c *mpi.Comm) {
		r, e := runPipeline(c, set, cfg)
		t := c.MaxFloat64(c.Time())
		if c.Rank() == 0 {
			res, rerr, span = r, e, t
		}
	})
	if err != nil {
		return nil, 0, err
	}
	return res, span, rerr
}

// probeHeapPeak samples the process heap at a phase boundary into the
// pipeline_heap_peak_bytes max-gauge — the coarse machine-derived
// companion to the work-derived pace_index_bytes series. Rank 0 only:
// in-process ranks share one heap, so one sampler suffices. The value
// depends on GC timing, not on work done, so metrics.Report.Canonical
// strips this gauge; determinism contracts are unaffected.
func probeHeapPeak(c *mpi.Comm, reg *metrics.Registry) {
	if c.Rank() != 0 {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge(metrics.HeapPeakGauge).SetMax(float64(ms.HeapAlloc))
}
