package profam

import (
	"profam/internal/bipartite"
	"profam/internal/mpi"
	"profam/internal/pace"
	"profam/internal/seq"
	"profam/internal/shingle"
)

// secPerShingleOp is the virtual cost of one min-hash evaluation in the
// dense-subgraph phase (same calibration family as pace.CostParams).
const secPerShingleOp = 2.0e-8

// wireFamily is the gob-friendly family representation exchanged between
// ranks.
type wireFamily struct {
	Members    []int32
	MeanDegree float64
	Density    float64
}

// WireSize implements mpi.Sized for the simtime cost model.
func (w wireFamily) WireSize() int { return 24 + 4*len(w.Members) }

type familyBatch struct{ Families []wireFamily }

func (b familyBatch) WireSize() int {
	n := 16
	for _, f := range b.Families {
		n += f.WireSize()
	}
	return n
}

// RegisterWireTypes registers all pipeline payloads with the TCP
// transport. Callers using DialMesh/RunTCP across processes must invoke
// it on every rank; the in-process and simulated transports don't need
// it.
func RegisterWireTypes() {
	pace.RegisterWireTypes()
	mpi.RegisterType(familyBatch{})
}

// runPipeline executes all four phases collectively on c. Every rank
// returns the same *Result.
func runPipeline(c *mpi.Comm, set *seq.Set, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	pcfg := cfg.paceConfig()

	res := &Result{NumInput: set.Len()}

	// Phase 1: redundancy removal.
	keep, rrStats, err := pace.RedundancyRemoval(c, set, pcfg)
	if err != nil {
		return nil, err
	}
	res.Keep = keep
	res.RR = fromPace(rrStats)
	for _, k := range keep {
		if k {
			res.NumNonRedundant++
		}
	}

	// Phase 2: connected components over the non-redundant set.
	comp, ccStats, err := pace.ConnectedComponents(c, set, keep, pcfg)
	if err != nil {
		return nil, err
	}
	res.CCD = fromPace(ccStats)
	res.Components = pace.ComponentsBySize(comp, cfg.MinComponentSize)

	// Phases 3+4: per component, build the bipartite reduction and run
	// the Shingle algorithm. Components are distributed across all ranks
	// (batched by estimated cost), processed independently — no
	// communication until the final gather, exactly as the paper argues
	// dense subgraphs cannot span components.
	own := bipartite.DistributeComponents(res.Components, c.Size())
	bcfg := cfg.bipartiteConfig()
	sp := cfg.shingleParams()

	var local []wireFamily
	var bggTime, dsdTime float64
	for _, ci := range own[c.Rank()] {
		members := res.Components[ci]
		t0 := c.Time()
		var g *bipartite.Graph
		switch cfg.Reduction {
		case DomainBased:
			var err error
			g, err = bipartite.BuildBm(set, members, bcfg)
			if err != nil {
				return nil, err
			}
			// Word extraction scans each member sequence once.
			var chars int64
			for _, id := range members {
				chars += int64(set.Get(id).Len())
			}
			c.Advance(float64(chars) * pace.DefaultCostParams().SecPerTreeChar)
		default:
			var st bipartite.BuildStats
			var err error
			g, st, err = bipartite.BuildBd(set, members, bcfg)
			if err != nil {
				return nil, err
			}
			costs := pace.DefaultCostParams()
			c.Advance(float64(st.Cells)*costs.SecPerCell + float64(st.PairsAligned)*costs.SecPerPairGen)
		}
		t1 := c.Time()

		subs, st := shingle.Detect(g, sp)
		c.Advance(float64(st.WorkOps) * secPerShingleOp)
		t2 := c.Time()
		bggTime += t1 - t0
		dsdTime += t2 - t1

		for _, d := range subs {
			local = append(local, wireFamily{
				Members:    d.Members,
				MeanDegree: d.MeanDegree,
				Density:    d.Density,
			})
		}
	}

	// Gather families at rank 0, then share the final list.
	gathered := c.Gather(0, familyBatch{Families: local})
	var all []wireFamily
	if c.Rank() == 0 {
		for _, g := range gathered {
			all = append(all, g.(familyBatch).Families...)
		}
	}
	all = c.Bcast(0, familyBatch{Families: all}).(familyBatch).Families

	res.Families = make([]Family, 0, len(all))
	for _, w := range all {
		f := Family{
			Members:    make([]int, len(w.Members)),
			MeanDegree: w.MeanDegree,
			Density:    w.Density,
		}
		for i, id := range w.Members {
			f.Members[i] = int(id)
		}
		res.Families = append(res.Families, f)
	}
	sortFamilies(res.Families)

	res.BGGTime = c.MaxFloat64(bggTime)
	res.DSDTime = c.MaxFloat64(dsdTime)
	return res, nil
}

// RunPipelineOn executes the pipeline collectively on an existing
// communicator — for callers managing their own transports, such as a
// TCP mesh spanning several processes (see mpi.DialMesh). Every rank
// must call it with the same sequence set and configuration; every rank
// returns the same result.
func RunPipelineOn(c *mpi.Comm, set *seq.Set, cfg Config) (*Result, error) {
	return runPipeline(c, set, cfg)
}

// RunSet is the entry point for in-module tools and benchmarks that
// already hold a seq.Set: it runs the pipeline on p simulated ranks when
// simulate is true, or on p concurrent ranks otherwise (p = 1 means
// serial), returning the rank-0 result and the makespan in seconds
// (virtual when simulated, wall-clock otherwise).
func RunSet(set *seq.Set, p int, simulate bool, cfg Config) (*Result, float64, error) {
	if simulate {
		return simulateSet(set, p, cfg)
	}
	var res *Result
	var rerr error
	var span float64
	err := mpi.Run(p, func(c *mpi.Comm) {
		r, e := runPipeline(c, set, cfg)
		t := c.MaxFloat64(c.Time())
		if c.Rank() == 0 {
			res, rerr, span = r, e, t
		}
	})
	if err != nil {
		return nil, 0, err
	}
	return res, span, rerr
}
