package profam_test

import (
	"fmt"
	"testing"

	"profam"
	"profam/internal/mpi"
	"profam/internal/workload"
)

// TestThreadsPerRankDeterminism: the same set and config must yield a
// byte-identical sorted family list for ThreadsPerRank ∈ {1, 4}, on
// both the simulated and the concurrent transports. Intra-rank
// parallelism may only change execution time, never results.
func TestThreadsPerRankDeterminism(t *testing.T) {
	set, _ := workload.Generate(workload.Params{
		Families: 4, MeanFamilySize: 10, MeanLength: 100,
		Divergence: 0.08, ContainedFrac: 0.15, Singletons: 4, Seed: 777,
	})
	cfg := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3,
		BatchPairs: 256, BatchTasks: 64}

	for _, sim := range []bool{false, true} {
		mode := "concurrent"
		if sim {
			mode = "simulated"
		}
		var want string
		for _, threads := range []int{1, 4} {
			c := cfg
			c.ThreadsPerRank = threads
			res, _, err := profam.RunSet(set, 2, sim, c)
			if err != nil {
				t.Fatalf("%s threads=%d: %v", mode, threads, err)
			}
			got := fmt.Sprint(res.Families)
			if threads == 1 {
				want = got
				if len(res.Families) == 0 {
					t.Fatalf("%s: no families detected; test set too weak", mode)
				}
				continue
			}
			if got != want {
				t.Errorf("%s: families differ between ThreadsPerRank=1 and =%d", mode, threads)
			}
		}
	}
}

// TestThreadsSerialRankMatchesSeed: the single-rank wall-clock path with
// intra-rank threading enabled must match the serial reference exactly.
func TestThreadsSerialRankMatchesSeed(t *testing.T) {
	set, _ := workload.Generate(workload.Params{
		Families: 3, MeanFamilySize: 9, MeanLength: 90,
		Divergence: 0.07, ContainedFrac: 0.2, Singletons: 3, Seed: 515,
	})
	cfg := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3}
	cfg.ThreadsPerRank = 1
	want, _, err := profam.RunSet(set, 1, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ThreadsPerRank = 4
	got, _, err := profam.RunSet(set, 1, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Families) != fmt.Sprint(want.Families) {
		t.Error("single-rank run with 4 threads differs from 1 thread")
	}
	if got.NumNonRedundant != want.NumNonRedundant {
		t.Errorf("NR differs: %d vs %d", got.NumNonRedundant, want.NumNonRedundant)
	}
}

// TestThreadsTCPTransport runs the hybrid model over real sockets: 3
// ranks × 4 goroutines each. Under -race this is the required proof
// that intra-rank parallelism is clean on the TCP transport; the result
// must still match the serial reference.
func TestThreadsTCPTransport(t *testing.T) {
	profam.RegisterWireTypes()
	set, _ := workload.Generate(workload.Params{
		Families: 4, MeanFamilySize: 10, MeanLength: 100,
		Divergence: 0.08, ContainedFrac: 0.15, Singletons: 4, Seed: 777,
	})
	cfg := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3,
		ThreadsPerRank: 4}
	want, _, err := profam.RunSet(set, 1, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got *profam.Result
	err = mpi.RunTCP(3, 43300, func(c *mpi.Comm) {
		res, err := profam.RunPipelineOn(c, set, cfg)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			got = res
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Families) != fmt.Sprint(want.Families) {
		t.Error("TCP hybrid run differs from serial reference")
	}
}

// TestThreadsVirtualSpeedup: under the simulated transport, explicit
// ThreadsPerRank must shrink the virtual makespan (the ceil(work/t)
// perfect-speedup model) while producing the identical family list.
func TestThreadsVirtualSpeedup(t *testing.T) {
	set, _ := workload.Generate(workload.Params{
		Families: 4, MeanFamilySize: 10, MeanLength: 100,
		Divergence: 0.08, ContainedFrac: 0.15, Singletons: 4, Seed: 999,
	})
	cfg := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3,
		BatchPairs: 256, BatchTasks: 64}

	cfg.ThreadsPerRank = 1
	res1, span1, err := profam.RunSet(set, 2, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ThreadsPerRank = 4
	res4, span4, err := profam.RunSet(set, 2, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res1.Families) != fmt.Sprint(res4.Families) {
		t.Error("virtual hybrid run changed the family list")
	}
	if span4 >= span1 {
		t.Errorf("4 virtual threads did not beat 1: %.3fs vs %.3fs", span4, span1)
	}
	t.Logf("virtual makespan: threads=1 %.3fs, threads=4 %.3fs (%.2fx)", span1, span4, span1/span4)
}
