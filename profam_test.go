package profam

import (
	"strings"
	"testing"

	"profam/internal/quality"
	"profam/internal/workload"
)

func testSet(t *testing.T) ([]string, []string, *workload.Truth) {
	t.Helper()
	set, truth := workload.Generate(workload.Params{
		Families: 4, MeanFamilySize: 10, MeanLength: 110,
		Divergence: 0.08, IndelRate: 0.004, ContainedFrac: 0.2,
		Singletons: 4, Seed: 55,
	})
	names := make([]string, set.Len())
	seqs := make([]string, set.Len())
	for i, s := range set.Seqs {
		names[i] = s.Name
		seqs[i] = string(s.Res)
	}
	return names, seqs, truth
}

func TestRunEndToEnd(t *testing.T) {
	names, seqs, truth := testSet(t)
	cfg := Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3}
	res, err := Run(names, seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumInput != len(seqs) {
		t.Errorf("NumInput = %d, want %d", res.NumInput, len(seqs))
	}
	if res.NumNonRedundant >= res.NumInput {
		t.Error("redundancy removal removed nothing (fragments planted)")
	}
	if len(res.Components) == 0 || len(res.Families) == 0 {
		t.Fatalf("pipeline found %d components, %d families", len(res.Components), len(res.Families))
	}
	// Families must be disjoint, sorted largest-first, with sane stats.
	seen := map[int]bool{}
	last := 1 << 30
	for _, f := range res.Families {
		if f.Size() > last {
			t.Error("families not sorted by size")
		}
		last = f.Size()
		if f.Size() < 3 {
			t.Errorf("family below MinFamilySize: %d", f.Size())
		}
		if f.Density < 0 || f.Density > 1.0001 {
			t.Errorf("density out of range: %v", f.Density)
		}
		for _, id := range f.Members {
			if seen[id] {
				t.Fatalf("sequence %d in two families", id)
			}
			seen[id] = true
			if !res.Keep[id] {
				t.Errorf("redundant sequence %d in a family", id)
			}
		}
	}
	// Quality against planted truth: precision should be high.
	conf, err := quality.Compare(res.FamilyLabels(), truth.Label)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Precision() < 0.9 {
		t.Errorf("precision %.2f too low (%s)", conf.Precision(), conf)
	}
	if conf.Sensitivity() < 0.3 {
		t.Errorf("sensitivity %.2f too low (%s)", conf.Sensitivity(), conf)
	}
	if res.RR.PairsGenerated == 0 || res.CCD.PairsGenerated == 0 {
		t.Error("phase stats empty")
	}
	if !strings.Contains(res.Summary(), "#input=") {
		t.Errorf("summary malformed: %s", res.Summary())
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	names, seqs, _ := testSet(t)
	cfg := Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3, BatchPairs: 256, BatchTasks: 64}
	serial, err := Run(names, seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(4, names, seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.NumNonRedundant != par.NumNonRedundant {
		t.Errorf("NR differs: %d vs %d", serial.NumNonRedundant, par.NumNonRedundant)
	}
	if len(serial.Components) != len(par.Components) {
		t.Errorf("component count differs: %d vs %d", len(serial.Components), len(par.Components))
	}
	if len(serial.Families) != len(par.Families) {
		t.Fatalf("family count differs: %d vs %d", len(serial.Families), len(par.Families))
	}
	for i := range serial.Families {
		a, b := serial.Families[i], par.Families[i]
		if a.Size() != b.Size() {
			t.Errorf("family %d size differs: %d vs %d", i, a.Size(), b.Size())
			continue
		}
		for j := range a.Members {
			if a.Members[j] != b.Members[j] {
				t.Errorf("family %d member %d differs", i, j)
				break
			}
		}
	}
}

func TestRunSimulatedScales(t *testing.T) {
	names, seqs, _ := testSet(t)
	cfg := Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3, BatchPairs: 512, BatchTasks: 64}
	res4, t4, err := RunSimulated(4, names, seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res16, t16, err := RunSimulated(16, names, seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if t16 >= t4 {
		t.Errorf("no simulated speedup: T(4)=%.2f T(16)=%.2f", t4, t16)
	}
	if len(res4.Families) != len(res16.Families) {
		t.Errorf("family count changed with rank count: %d vs %d", len(res4.Families), len(res16.Families))
	}
	if res4.RR.Time <= 0 || res4.CCD.Time <= 0 {
		t.Errorf("phase times not recorded: %+v %+v", res4.RR, res4.CCD)
	}
}

func TestRunFASTA(t *testing.T) {
	fasta := ">a\nMKWVTFISLLFLFSSAYSRGVFRR\n>b\nMKWVTFISLLFLFSSAYSRGVFRR\n>c\nPPPPGGGGYYYYHHHHKKKK\n"
	res, err := RunFASTA(strings.NewReader(fasta), Config{Psi: 6, MinComponentSize: 2, MinFamilySize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumInput != 3 {
		t.Errorf("NumInput = %d", res.NumInput)
	}
	// b is identical to a: redundancy removal should drop one.
	if res.NumNonRedundant != 2 {
		t.Errorf("NumNonRedundant = %d, want 2", res.NumNonRedundant)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run([]string{"a"}, []string{"SEQ", "SEQ2"}, Config{}); err == nil {
		t.Error("mismatched names/seqs accepted")
	}
	if _, err := Run(nil, []string{"NOT VALID!"}, Config{}); err == nil {
		t.Error("invalid residues accepted")
	}
}

func TestDomainBasedReduction(t *testing.T) {
	set, truth := workload.Generate(workload.Params{
		Families: 1, MeanFamilySize: 4, DomainFamilies: 2, DomainSize: 8,
		Singletons: 2, Seed: 71,
	})
	names := make([]string, set.Len())
	seqs := make([]string, set.Len())
	for i, s := range set.Seqs {
		names[i], seqs[i] = s.Name, string(s.Res)
	}
	// Domain members share words but little global similarity, so use a
	// generous overlap for CCD and the domain reduction for families.
	cfg := Config{
		Psi: 6, Reduction: DomainBased, W: 10,
		OverlapSimilarity: 0.2, OverlapCoverage: 0.2,
		MinComponentSize: 3, MinFamilySize: 3,
	}
	res, err := Run(names, seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Families) == 0 {
		t.Fatal("domain-based reduction found no families")
	}
	// Each family should be dominated by one planted domain family.
	for _, f := range res.Families {
		counts := map[int]int{}
		for _, id := range f.Members {
			counts[truth.Label[id]]++
		}
		best, total := 0, 0
		for _, c := range counts {
			total += c
			if c > best {
				best = c
			}
		}
		if best*10 < total*7 {
			t.Errorf("mixed domain family: %v", counts)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Psi != 8 || c.ContainIdentity != 0.95 || c.OverlapSimilarity != 0.30 ||
		c.S1 != 5 || c.C1 != 300 || c.Tau != 0.5 || c.MinFamilySize != 5 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if c.EdgeSimilarity != c.OverlapSimilarity {
		t.Error("EdgeSimilarity should default to OverlapSimilarity")
	}
}

func TestReductionString(t *testing.T) {
	if GlobalSimilarity.String() != "global-similarity" || DomainBased.String() != "domain-based" {
		t.Error("Reduction.String broken")
	}
}
