package profam_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"profam"
	"profam/internal/metrics"
	"profam/internal/report"
	"profam/internal/seq"
	"profam/internal/workload"
)

// setStrings flattens a workload set into the parallel name/residue
// slices RunEpoch takes.
func setStrings(set *seq.Set) (names, seqs []string) {
	for _, s := range set.Seqs {
		names = append(names, s.Name)
		seqs = append(seqs, string(s.Res))
	}
	return
}

// familiesText is the canonical byte-level rendering the determinism
// contract is stated over.
func familiesText(t *testing.T, set *seq.Set, res *profam.Result) string {
	t.Helper()
	var b strings.Builder
	if err := report.Families(&b, set, res); err != nil {
		t.Fatalf("render families: %v", err)
	}
	return b.String()
}

// splitWaves cuts the corpus into n contiguous ingest waves.
func splitWaves(names, seqs []string, n int) [][2][]string {
	per := (len(seqs) + n - 1) / n
	var waves [][2][]string
	for i := 0; i < len(seqs); i += per {
		end := min(i+per, len(seqs))
		waves = append(waves, [2][]string{names[i:end], seqs[i:end]})
	}
	return waves
}

// TestIncrementalMatchesCold is the determinism contract behind profamd:
// ingesting a corpus in waves of incremental epochs yields byte-identical
// families to one cold run over the union, across rank and thread counts
// and regardless of how many waves the corpus arrives in.
func TestIncrementalMatchesCold(t *testing.T) {
	corpora := []struct {
		name  string
		p     workload.Params
		waves int
	}{
		{"basic", workload.Params{
			Families: 4, MeanFamilySize: 10, MeanLength: 100,
			Divergence: 0.08, ContainedFrac: 0.15, Singletons: 4, Seed: 4242,
		}, 3},
		{"contained", workload.Params{
			Families: 3, MeanFamilySize: 8, MeanLength: 90,
			Divergence: 0.06, IndelRate: 0.004, ContainedFrac: 0.35, Singletons: 2, Seed: 99,
		}, 2},
		{"subfamilies", workload.Params{
			Families: 2, MeanFamilySize: 12, MeanLength: 110,
			Divergence: 0.09, Subfamilies: 2, ContainedFrac: 0.1, Singletons: 5, Seed: 7,
		}, 4},
	}
	for _, tc := range corpora {
		set, _ := workload.Generate(tc.p)
		names, seqs := setStrings(set)
		for _, p := range []int{1, 2} {
			for _, threads := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/p=%d/threads=%d", tc.name, p, threads), func(t *testing.T) {
					cfg := profam.Config{ThreadsPerRank: threads}

					cold, err := profam.RunParallel(p, names, seqs, cfg)
					if err != nil {
						t.Fatalf("cold run: %v", err)
					}
					want := familiesText(t, set, cold)

					st := profam.NewEpochState()
					var res *profam.Result
					for wi, w := range splitWaves(names, seqs, tc.waves) {
						res, st, err = profam.RunEpoch(st, w[0], w[1], p, cfg)
						if err != nil {
							t.Fatalf("wave %d: %v", wi, err)
						}
					}
					if st.NumSequences() != set.Len() {
						t.Fatalf("state holds %d sequences, want %d", st.NumSequences(), set.Len())
					}
					got := familiesText(t, st.Set(), res)
					if got != want {
						t.Errorf("incremental families differ from cold rebuild:\n--- cold ---\n%s--- incremental ---\n%s", want, got)
					}
				})
			}
		}
	}
}

// TestIncrementalDemotionFallback arrives fragments before the sequences
// that contain them: the containing full-length sequences land in a later
// wave and demote previously-kept fragments, forcing the cold-CCD
// fallback path. The contract must hold regardless.
func TestIncrementalDemotionFallback(t *testing.T) {
	set, truth := workload.Generate(workload.Params{
		Families: 3, MeanFamilySize: 8, MeanLength: 100,
		Divergence: 0.07, ContainedFrac: 0.4, Singletons: 2, Seed: 1234,
	})
	// Arrival order: every contained fragment first, then everything
	// else. Wave 1 keeps the fragments (their containers are absent);
	// wave 2 introduces the containers, demoting the fragments.
	var rn, rs []string
	for _, red := range []bool{true, false} {
		for id := 0; id < set.Len(); id++ {
			if truth.Redundant[id] == red {
				rn = append(rn, set.Get(id).Name)
				rs = append(rs, string(set.Get(id).Res))
			}
		}
	}
	nFrag := 0
	for _, red := range truth.Redundant {
		if red {
			nFrag++
		}
	}
	if nFrag == 0 {
		t.Fatal("corpus generated no contained fragments")
	}

	cold, err := profam.Run(rn, rs, profam.Config{})
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	coldSet := seq.NewSet()
	for i := range rn {
		coldSet.MustAdd(rn[i], rs[i])
	}
	want := familiesText(t, coldSet, cold)

	st := profam.NewEpochState()
	var res *profam.Result
	var demotions int64
	waves := [][2][]string{{rn[:nFrag], rs[:nFrag]}, {rn[nFrag:], rs[nFrag:]}}
	for wi, w := range waves {
		res, st, err = profam.RunEpoch(st, w[0], w[1], 1, profam.Config{})
		if err != nil {
			t.Fatalf("wave %d: %v", wi, err)
		}
		demotions += metricValue(res.Metrics, "pipeline_epoch_demotions")
	}
	got := familiesText(t, st.Set(), res)
	if got != want {
		t.Errorf("incremental families differ from cold rebuild under demotion:\n--- cold ---\n%s--- incremental ---\n%s", want, got)
	}
	if demotions == 0 {
		t.Error("no demotion recorded in any wave; the fallback path was not exercised")
	}
}

// TestEpochFamilyCacheHits checks that a wave touching none of the
// existing components reuses their cached families rather than
// recomputing phases 3+4.
func TestEpochFamilyCacheHits(t *testing.T) {
	set, _ := workload.Generate(workload.Params{
		Families: 4, MeanFamilySize: 10, MeanLength: 100,
		Divergence: 0.08, Singletons: 2, Seed: 31,
	})
	names, seqs := setStrings(set)
	_, st, err := profam.RunEpoch(nil, names, seqs, 1, profam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A second wave of unrelated singletons (random-ish distinct
	// residues) cannot join any existing component.
	res, _, err := profam.RunEpoch(st, nil, []string{
		"MKVLWAALLGAGARQWEDD", "GHIKNNPQRSTVWYACDEF", "WWYYAACCDDEEFFGGHHKK",
	}, 1, profam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cached := metricValue(res.Metrics, "pipeline_components_cached")
	if cached == 0 {
		t.Error("second epoch recomputed every component; expected family-cache hits")
	}
	if cached > int64(len(res.Components)) {
		t.Errorf("cache hits %d exceed component count %d", cached, len(res.Components))
	}
}

// metricValue reads a merged counter from the report (0 when absent).
func metricValue(rep *metrics.Report, name string) int64 {
	return rep.Counters[name]
}

// TestEpochAbort closes the abort channel before the run: the pipeline
// must return profam.ErrAborted, stash its observability state, and leave the
// prior epoch state untouched.
func TestEpochAbort(t *testing.T) {
	set, _ := workload.Generate(workload.Params{
		Families: 2, MeanFamilySize: 6, MeanLength: 80, Seed: 5,
	})
	names, seqs := setStrings(set)
	_, st, err := profam.RunEpoch(nil, names[:4], seqs[:4], 1, profam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	metrics.TakeFailed() // drain older stashes

	abort := make(chan struct{})
	close(abort)
	res, next, err := profam.RunEpoch(st, names[4:], seqs[4:], 2, profam.Config{Abort: abort})
	if !errors.Is(err, profam.ErrAborted) {
		t.Fatalf("err = %v, want profam.ErrAborted", err)
	}
	if res != nil {
		t.Error("aborted epoch returned a result")
	}
	if next != st {
		t.Error("aborted epoch did not return the prior state unchanged")
	}
	if snaps := metrics.TakeFailed(); len(snaps) == 0 {
		t.Error("aborted epoch stashed no failed-run metrics snapshots")
	}
}

// TestEpochConfigChange rejects extending committed state under a
// different family-affecting config.
func TestEpochConfigChange(t *testing.T) {
	_, st, err := profam.RunEpoch(nil, nil, []string{"MKVLWAALLGAGARQWEDD", "GHIKNNPQRSTVWYACDEF"}, 1, profam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, next, err := profam.RunEpoch(st, nil, []string{"WWYYAACCDDEEFFGGHHKK"}, 1, profam.Config{MinFamilySize: 3})
	if !errors.Is(err, profam.ErrConfigChanged) {
		t.Fatalf("err = %v, want profam.ErrConfigChanged", err)
	}
	if next != st {
		t.Error("rejected epoch did not return the prior state unchanged")
	}
}
