module profam

go 1.22
