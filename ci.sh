#!/bin/sh
# ci.sh — the repo's verification gate.
#
#   ./ci.sh          vet + build + tests + race-detector pass
#   ./ci.sh bench    additionally regenerate BENCH_results.json
#
# The race pass matters: the hybrid rank×thread execution model runs
# alignment batches, index construction and phase 3+4 component jobs on
# goroutine pools inside every rank, across the inproc and TCP
# transports (see TestThreadsPerRankDeterminism / TestThreadsTCPTransport).
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

if [ "${1:-}" = "bench" ]; then
	echo "== benchmarks -> BENCH_results.json =="
	go run ./cmd/benchjson -out BENCH_results.json
fi

echo "ci.sh: all checks passed"
