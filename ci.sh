#!/bin/sh
# ci.sh — the repo's verification gate.
#
#   ./ci.sh             gofmt + vet + build + tests + race-detector pass
#   ./ci.sh bench       additionally regenerate BENCH_results.json
#   ./ci.sh benchcheck  bench-regression gate: compare against the checked-in
#                       BENCH_results.json, failing on >20% kernel slowdown
#                       or >5% event-tracing overhead on the threads=1
#                       pipeline kernel (both skipped automatically when
#                       the host is too noisy)
#
# The race pass matters: the hybrid rank×thread execution model runs
# alignment batches, index construction and phase 3+4 component jobs on
# goroutine pools inside every rank, across the inproc and TCP
# transports (see TestThreadsPerRankDeterminism / TestThreadsTCPTransport),
# and every rank hammers its metrics registry from those pools.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$badfmt" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

if [ "${1:-}" = "bench" ]; then
	echo "== benchmarks -> BENCH_results.json =="
	go run ./cmd/benchjson -out BENCH_results.json
fi

if [ "${1:-}" = "benchcheck" ]; then
	echo "== bench regression gate vs BENCH_results.json =="
	go run ./cmd/benchjson -compare BENCH_results.json -tolerance 0.20 \
		-trace-tolerance 0.05 -benchtime 200ms -timeout 10m
fi

echo "ci.sh: all checks passed"
