#!/bin/sh
# ci.sh — the repo's verification gate.
#
#   ./ci.sh             gofmt + vet + build + tests + race-detector pass
#   ./ci.sh bench       additionally regenerate BENCH_results.json
#   ./ci.sh benchcheck  bench-regression gate: compare against the checked-in
#                       BENCH_results.json, failing on >20% kernel slowdown,
#                       >5% event-tracing overhead on the threads=1
#                       pipeline kernel, or >5% HTTP-telemetry overhead on
#                       the service status handler (all skipped
#                       automatically when the host is too noisy)
#   ./ci.sh lint        staticcheck + govulncheck (skipped with a notice
#                       when the binaries are not installed)
#   ./ci.sh e2e         service gate: boot profamd, ingest a datagen corpus
#                       over HTTP in waves, diff the served families
#                       against a cold profam run on the union corpus, and
#                       validate the epoch provenance ledger (record count,
#                       schema round-trip, families digest vs the cold run)
#                       plus the per-epoch traces and telemetry series;
#                       then repeat the waves through a sparse-backend
#                       daemon and a 4-shard multi-master daemon, diffing
#                       both against the single-master serve and their own
#                       cold runs (shard-balance metrics land as an
#                       artifact); artifacts land in e2e_artifacts/
#
# The race pass matters: the hybrid rank×thread execution model runs
# alignment batches, index construction and phase 3+4 component jobs on
# goroutine pools inside every rank, across the inproc and TCP
# transports (see TestThreadsPerRankDeterminism / TestThreadsTCPTransport),
# and every rank hammers its metrics registry from those pools.
set -eu

cd "$(dirname "$0")"

if [ "${1:-}" = "lint" ]; then
	status=0
	if command -v staticcheck >/dev/null 2>&1; then
		echo "== staticcheck =="
		staticcheck ./... || status=1
	else
		echo "== staticcheck not installed; skipping =="
	fi
	if command -v govulncheck >/dev/null 2>&1; then
		echo "== govulncheck =="
		govulncheck ./... || status=1
	else
		echo "== govulncheck not installed; skipping =="
	fi
	[ "$status" -eq 0 ] && echo "ci.sh: lint passed"
	exit "$status"
fi

if [ "${1:-}" = "e2e" ]; then
	echo "== service e2e: profamd vs cold profam =="
	tmp=$(mktemp -d)
	artifacts="e2e_artifacts"
	rm -rf "$artifacts"
	mkdir -p "$artifacts"
	daemon_pid=""
	cleanup() {
		[ -n "$daemon_pid" ] && kill -KILL "$daemon_pid" 2>/dev/null || true
		rm -rf "$tmp"
	}
	trap cleanup EXIT INT TERM

	echo "-- build binaries"
	go build -o "$tmp/profamd" ./cmd/profamd
	go build -o "$tmp/profam" ./cmd/profam
	go build -o "$tmp/datagen" ./cmd/datagen
	go build -o "$tmp/ledgercheck" ./cmd/ledgercheck

	echo "-- generate corpus"
	"$tmp/datagen" -families 6 -mean-size 10 -mean-length 110 \
		-contained 0.2 -singletons 4 -seed 7 -out "$tmp/orfs.fasta"

	# Split into 3 contiguous waves: arrival order over the waves equals
	# the FASTA order, which is what makes the cold run byte-comparable.
	total=$(grep -c '^>' "$tmp/orfs.fasta")
	per=$(( (total + 2) / 3 ))
	awk -v per="$per" -v dir="$tmp" \
		'/^>/{n++} {print > (dir "/wave" int((n-1)/per) ".fasta")}' "$tmp/orfs.fasta"

	echo "-- start profamd"
	"$tmp/profamd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -p 2 \
		-batch-wait 100ms -metrics-out "$artifacts/metrics_final.json" \
		-ledger "$artifacts/ledger.jsonl" -trace-dir "$artifacts/traces" \
		>"$artifacts/profamd.stdout" 2>"$artifacts/profamd.log" &
	daemon_pid=$!

	i=0
	while [ ! -s "$tmp/addr" ]; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "profamd never wrote its address" >&2; exit 1; }
		kill -0 "$daemon_pid" 2>/dev/null || { echo "profamd died during startup" >&2; cat "$artifacts/profamd.log" >&2; exit 1; }
		sleep 0.1
	done
	base="http://$(cat "$tmp/addr")"
	i=0
	while ! curl -sf "$base/readyz" >/dev/null; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "profamd never became ready" >&2; exit 1; }
		sleep 0.1
	done

	echo "-- ingest $total sequences in 3 waves"
	for w in 0 1 2; do
		[ -f "$tmp/wave$w.fasta" ] || continue
		# Submit in the background, then show that queries keep answering
		# from the previous snapshot while the new epoch builds.
		curl -sf --data-binary "@$tmp/wave$w.fasta" "$base/v1/sequences" \
			>"$tmp/submit$w.json" &
		submit_pid=$!
		curl -sf "$base/v1/status" >/dev/null
		curl -s "$base/v1/families" >/dev/null
		wait "$submit_pid" || { echo "wave $w submission failed" >&2; cat "$artifacts/profamd.log" >&2; exit 1; }
		cat "$tmp/submit$w.json"
		echo
	done

	echo "-- compare served families against a cold run"
	curl -sf "$base/v1/families?format=text" >"$artifacts/served_families.txt"
	curl -sf "$base/metrics" >"$artifacts/metrics_scrape.txt"
	"$tmp/profam" -in "$tmp/orfs.fasta" -p 2 -out "$artifacts/cold_families.txt" \
		2>/dev/null
	if ! diff -u "$artifacts/cold_families.txt" "$artifacts/served_families.txt"; then
		echo "ci.sh e2e: served families differ from the cold run" >&2
		exit 1
	fi

	echo "-- epoch provenance and telemetry endpoints"
	epochs=$(curl -sf "$base/v1/epochs")
	echo "$epochs" | grep -q '"count":3' \
		|| { echo "ci.sh e2e: /v1/epochs does not list 3 committed epochs: $epochs" >&2; exit 1; }
	curl -sf "$base/v1/epochs/3" | grep -q '"status":"committed"' \
		|| { echo "ci.sh e2e: /v1/epochs/3 missing or not committed" >&2; exit 1; }
	curl -sf "$base/debug/epochs/3/trace" >"$artifacts/epoch3_trace.json"
	grep -q '"traceEvents"' "$artifacts/epoch3_trace.json" \
		|| { echo "ci.sh e2e: epoch trace is not Chrome JSON" >&2; exit 1; }
	grep -q '"otherData":{"epoch":"3"}' "$artifacts/epoch3_trace.json" \
		|| { echo "ci.sh e2e: epoch trace missing epoch metadata" >&2; exit 1; }
	for series in server_http_latency_us server_http_requests runtime_goroutines runtime_heap_inuse_bytes; do
		grep -q "$series" "$artifacts/metrics_scrape.txt" \
			|| { echo "ci.sh e2e: /metrics missing $series" >&2; exit 1; }
	done

	echo "-- graceful shutdown"
	kill -TERM "$daemon_pid"
	i=0
	while kill -0 "$daemon_pid" 2>/dev/null; do
		i=$((i + 1))
		[ "$i" -gt 300 ] && { echo "profamd did not exit after SIGTERM" >&2; exit 1; }
		sleep 0.1
	done
	wait "$daemon_pid" 2>/dev/null && rc=0 || rc=$?
	daemon_pid=""
	[ "$rc" -eq 0 ] || { echo "profamd exited with status $rc" >&2; cat "$artifacts/profamd.log" >&2; exit 1; }
	grep -q '^# ' "$artifacts/served_families.txt"
	[ -s "$artifacts/metrics_final.json" ] || { echo "no final metrics flush" >&2; exit 1; }

	echo "-- validate the epoch ledger against the cold run"
	"$tmp/ledgercheck" -ledger "$artifacts/ledger.jsonl" \
		-expect-committed 3 -expect-families "$artifacts/cold_families.txt"
	for w in 1 2 3; do
		[ -s "$artifacts/traces/epoch_000$w.trace.json" ] \
			|| { echo "ci.sh e2e: missing persisted trace for epoch $w" >&2; exit 1; }
	done

	echo "-- sparse backend leg: profamd -pairs sparse over the same waves"
	"$tmp/profamd" -addr 127.0.0.1:0 -addr-file "$tmp/addr_sparse" -p 2 \
		-pairs sparse -batch-wait 100ms \
		>"$artifacts/profamd_sparse.stdout" 2>"$artifacts/profamd_sparse.log" &
	daemon_pid=$!
	i=0
	while [ ! -s "$tmp/addr_sparse" ]; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "sparse profamd never wrote its address" >&2; exit 1; }
		kill -0 "$daemon_pid" 2>/dev/null || { echo "sparse profamd died during startup" >&2; cat "$artifacts/profamd_sparse.log" >&2; exit 1; }
		sleep 0.1
	done
	base="http://$(cat "$tmp/addr_sparse")"
	i=0
	while ! curl -sf "$base/readyz" >/dev/null; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "sparse profamd never became ready" >&2; exit 1; }
		sleep 0.1
	done
	for w in 0 1 2; do
		[ -f "$tmp/wave$w.fasta" ] || continue
		curl -sf --data-binary "@$tmp/wave$w.fasta" "$base/v1/sequences" >/dev/null \
			|| { echo "sparse wave $w submission failed" >&2; cat "$artifacts/profamd_sparse.log" >&2; exit 1; }
	done
	curl -sf "$base/v1/families?format=text" >"$artifacts/served_families_sparse.txt"
	kill -TERM "$daemon_pid"
	i=0
	while kill -0 "$daemon_pid" 2>/dev/null; do
		i=$((i + 1))
		[ "$i" -gt 300 ] && { echo "sparse profamd did not exit after SIGTERM" >&2; exit 1; }
		sleep 0.1
	done
	wait "$daemon_pid" 2>/dev/null && rc=0 || rc=$?
	daemon_pid=""
	[ "$rc" -eq 0 ] || { echo "sparse profamd exited with status $rc" >&2; cat "$artifacts/profamd_sparse.log" >&2; exit 1; }

	# The sparse service must serve the same families as the GST service
	# and as a cold sparse run: backends are interchangeable end to end.
	if ! diff -u "$artifacts/served_families.txt" "$artifacts/served_families_sparse.txt"; then
		echo "ci.sh e2e: sparse-served families differ from the gst-served run" >&2
		exit 1
	fi
	"$tmp/profam" -in "$tmp/orfs.fasta" -p 2 -pairs sparse \
		-out "$artifacts/cold_families_sparse.txt" 2>/dev/null
	if ! diff -u "$artifacts/cold_families_sparse.txt" "$artifacts/served_families_sparse.txt"; then
		echo "ci.sh e2e: sparse-served families differ from the cold sparse run" >&2
		exit 1
	fi

	echo "-- sharded leg: profamd -shards 4 over the same waves"
	"$tmp/profamd" -addr 127.0.0.1:0 -addr-file "$tmp/addr_sharded" -p 4 \
		-shards 4 -batch-wait 100ms \
		-metrics-out "$artifacts/metrics_sharded.json" \
		-ledger "$artifacts/ledger_sharded.jsonl" \
		>"$artifacts/profamd_sharded.stdout" 2>"$artifacts/profamd_sharded.log" &
	daemon_pid=$!
	i=0
	while [ ! -s "$tmp/addr_sharded" ]; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "sharded profamd never wrote its address" >&2; exit 1; }
		kill -0 "$daemon_pid" 2>/dev/null || { echo "sharded profamd died during startup" >&2; cat "$artifacts/profamd_sharded.log" >&2; exit 1; }
		sleep 0.1
	done
	base="http://$(cat "$tmp/addr_sharded")"
	i=0
	while ! curl -sf "$base/readyz" >/dev/null; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "sharded profamd never became ready" >&2; exit 1; }
		sleep 0.1
	done
	for w in 0 1 2; do
		[ -f "$tmp/wave$w.fasta" ] || continue
		curl -sf --data-binary "@$tmp/wave$w.fasta" "$base/v1/sequences" >/dev/null \
			|| { echo "sharded wave $w submission failed" >&2; cat "$artifacts/profamd_sharded.log" >&2; exit 1; }
	done
	curl -sf "$base/v1/families?format=text" >"$artifacts/served_families_sharded.txt"
	kill -TERM "$daemon_pid"
	i=0
	while kill -0 "$daemon_pid" 2>/dev/null; do
		i=$((i + 1))
		[ "$i" -gt 300 ] && { echo "sharded profamd did not exit after SIGTERM" >&2; exit 1; }
		sleep 0.1
	done
	wait "$daemon_pid" 2>/dev/null && rc=0 || rc=$?
	daemon_pid=""
	[ "$rc" -eq 0 ] || { echo "sharded profamd exited with status $rc" >&2; cat "$artifacts/profamd_sharded.log" >&2; exit 1; }

	# Multi-master sharding must not change the served families: diff
	# against the single-master serve and against a cold sharded run.
	if ! diff -u "$artifacts/served_families.txt" "$artifacts/served_families_sharded.txt"; then
		echo "ci.sh e2e: sharded-served families differ from the single-master serve" >&2
		exit 1
	fi
	# The cold sharded run doubles as the shard-balance artifact: its
	# merged metrics report carries the per-shard placement counters and
	# the imbalance gauge — the CI record of how evenly LSH placement
	# spread the corpus. (profamd's own -metrics-out holds only service
	# telemetry; pipeline registries are per-epoch.)
	"$tmp/profam" -in "$tmp/orfs.fasta" -p 4 -shards 4 \
		-metrics-out "$artifacts/metrics_shard_balance.json" \
		-out "$artifacts/cold_families_sharded.txt" >/dev/null 2>/dev/null
	if ! diff -u "$artifacts/cold_families_sharded.txt" "$artifacts/served_families_sharded.txt"; then
		echo "ci.sh e2e: sharded-served families differ from the cold sharded run" >&2
		exit 1
	fi
	"$tmp/ledgercheck" -ledger "$artifacts/ledger_sharded.jsonl" \
		-expect-committed 3 -expect-families "$artifacts/cold_families_sharded.txt"
	grep -q 'pace_shard_seqs' "$artifacts/metrics_shard_balance.json" \
		|| { echo "ci.sh e2e: shard-balance metrics missing pace_shard_seqs counters" >&2; exit 1; }
	grep -q 'pace_shard_imbalance' "$artifacts/metrics_shard_balance.json" \
		|| { echo "ci.sh e2e: shard-balance metrics missing pace_shard_imbalance gauge" >&2; exit 1; }

	echo "ci.sh: e2e service gate passed ($total sequences, byte-identical families, gst+sparse backends, single- and multi-master, ledgers verified)"
	exit 0
fi

echo "== gofmt =="
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$badfmt" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

if [ "${1:-}" = "bench" ]; then
	echo "== benchmarks -> BENCH_results.json =="
	go run ./cmd/benchjson -out BENCH_results.json
fi

if [ "${1:-}" = "benchcheck" ]; then
	echo "== bench regression gate vs BENCH_results.json =="
	go run ./cmd/benchjson -compare BENCH_results.json -tolerance 0.20 \
		-trace-tolerance 0.05 -obs-tolerance 0.05 -benchtime 200ms -timeout 10m
fi

echo "ci.sh: all checks passed"
