package profam_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"profam"
	"profam/internal/metrics"
)

// stripAlignCost removes the DP-cost series that legitimately differ
// between the cascade and the exact-align escape hatch: the cascade
// computes fewer cells (pace_align_cells, bgg_align_cells) and exports
// its own stage counters (pace_cascade_*). Everything else — pair
// counts, verdicts, batch shapes, queue depths — must be byte-identical.
func stripAlignCost(rep *metrics.Report) {
	drop := func(m map[string]int64) {
		for k := range m {
			if strings.HasPrefix(k, "pace_align_cells") ||
				strings.HasPrefix(k, "pace_cascade_") ||
				strings.HasPrefix(k, "pace_kernel_") ||
				strings.HasPrefix(k, "bgg_align_cells") {
				delete(m, k)
			}
		}
	}
	drop(rep.Counters)
	for i := range rep.Ranks {
		drop(rep.Ranks[i].Counters)
	}
}

func canonicalJSON(t *testing.T, rep *metrics.Report) string {
	t.Helper()
	c := rep.Canonical()
	stripAlignCost(c)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestCascadeDeterminism: with the cascade on (default) and off
// (-exact-align), the pipeline must produce byte-identical families and
// canonical metrics — modulo the DP-cost series above — under the
// simulator at 1 and 4 ranks. This is the cascade's contract: it only
// changes how much of each DP matrix is computed, never a verdict.
//
// The metric comparison runs the lockstep protocol: metric identity
// between two runs that charge different virtual compute (cascade vs
// exact DP) requires a content-deterministic master service order,
// and the default arrival-order protocol deliberately lets the order
// follow (virtual) completion times at p > 2. The family/keep/component
// identity is additionally asserted under the default overlapped
// protocol — verdicts must not depend on the protocol either.
func TestCascadeDeterminism(t *testing.T) {
	set, _ := integrationSet()
	base := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3, Lockstep: true}
	for _, p := range []int{1, 4} {
		t.Run(fmt.Sprintf("ranks=%d", p), func(t *testing.T) {
			exact := base
			exact.ExactAlign = true
			resC, _, err := profam.RunSet(set, p, true, base)
			if err != nil {
				t.Fatal(err)
			}
			resE, _, err := profam.RunSet(set, p, true, exact)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(resC.Families) != fmt.Sprint(resE.Families) {
				t.Fatal("cascade changed the families")
			}
			if fmt.Sprint(resC.Keep) != fmt.Sprint(resE.Keep) {
				t.Fatal("cascade changed the redundancy-removal keep mask")
			}
			if fmt.Sprint(resC.Components) != fmt.Sprint(resE.Components) {
				t.Fatal("cascade changed the connected components")
			}
			jc := canonicalJSON(t, resC.Metrics)
			je := canonicalJSON(t, resE.Metrics)
			if jc != je {
				t.Errorf("canonical metrics differ between cascade and exact-align:\ncascade:\n%s\nexact:\n%s", jc, je)
			}

			// Same family-level contract under the overlapped protocol.
			overlapped := base
			overlapped.Lockstep = false
			exactO := exact
			exactO.Lockstep = false
			resCO, _, err := profam.RunSet(set, p, true, overlapped)
			if err != nil {
				t.Fatal(err)
			}
			resEO, _, err := profam.RunSet(set, p, true, exactO)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(resCO.Families) != fmt.Sprint(resEO.Families) {
				t.Fatal("cascade changed the families under the overlapped protocol")
			}
			if fmt.Sprint(resCO.Families) != fmt.Sprint(resC.Families) {
				t.Fatal("overlapped protocol changed the families")
			}
		})
	}
}

// TestCascadeCellsReduction: on the integration corpus the cascade must
// eliminate at least 3× of the alignment DP cells and improve the
// virtual makespan. The numbers logged here are the ones quoted in
// CHANGES.md.
func TestCascadeCellsReduction(t *testing.T) {
	set, _ := integrationSet()
	cfg := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3}
	exact := cfg
	exact.ExactAlign = true
	resC, spanC, err := profam.RunSet(set, 1, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resE, spanE, err := profam.RunSet(set, 1, true, exact)
	if err != nil {
		t.Fatal(err)
	}
	cellsC := resC.RR.Cells + resC.CCD.Cells
	cellsE := resE.RR.Cells + resE.CCD.Cells
	if cellsC == 0 || cellsE == 0 {
		t.Fatalf("no cells recorded: cascade=%d exact=%d", cellsC, cellsE)
	}
	ratio := float64(cellsE) / float64(cellsC)
	t.Logf("pace_align_cells: exact=%d cascade=%d (%.1fx reduction); makespan exact=%.3fs cascade=%.3fs",
		cellsE, cellsC, ratio, spanE, spanC)
	if ratio < 3 {
		t.Errorf("cascade eliminates only %.2fx of DP cells, want >= 3x", ratio)
	}
	if spanC >= spanE {
		t.Errorf("virtual makespan did not improve: cascade %.4fs vs exact %.4fs", spanC, spanE)
	}
}

// TestKernelDeterminism: the word-parallel kernels (-kernels=auto, the
// default) must produce byte-identical families, keep masks, components
// and canonical metrics to -kernels=scalar and to -exact-align, across
// rank counts and thread counts. This is the kernel layer's contract:
// the bit-parallel and striped stages only take certified shortcuts
// inside the cascade, so nothing downstream can tell which kernel ran.
func TestKernelDeterminism(t *testing.T) {
	set, _ := integrationSet()
	base := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3, Lockstep: true}
	for _, p := range []int{1, 2, 4} {
		for _, threads := range []int{1, 4} {
			t.Run(fmt.Sprintf("ranks=%d/threads=%d", p, threads), func(t *testing.T) {
				auto := base
				auto.ThreadsPerRank = threads
				scalar := auto
				scalar.ScalarKernels = true
				exact := auto
				exact.ExactAlign = true

				resA, _, err := profam.RunSet(set, p, true, auto)
				if err != nil {
					t.Fatal(err)
				}
				resS, _, err := profam.RunSet(set, p, true, scalar)
				if err != nil {
					t.Fatal(err)
				}
				resE, _, err := profam.RunSet(set, p, true, exact)
				if err != nil {
					t.Fatal(err)
				}
				for _, ref := range []struct {
					name string
					res  *profam.Result
				}{{"scalar", resS}, {"exact-align", resE}} {
					if fmt.Sprint(resA.Families) != fmt.Sprint(ref.res.Families) {
						t.Fatalf("kernels changed the families vs %s", ref.name)
					}
					if fmt.Sprint(resA.Keep) != fmt.Sprint(ref.res.Keep) {
						t.Fatalf("kernels changed the keep mask vs %s", ref.name)
					}
					if fmt.Sprint(resA.Components) != fmt.Sprint(ref.res.Components) {
						t.Fatalf("kernels changed the components vs %s", ref.name)
					}
				}
				ja := canonicalJSON(t, resA.Metrics)
				js := canonicalJSON(t, resS.Metrics)
				if ja != js {
					t.Errorf("canonical metrics differ between auto and scalar kernels:\nauto:\n%s\nscalar:\n%s", ja, js)
				}
			})
		}
	}
}
