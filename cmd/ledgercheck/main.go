// Command ledgercheck validates a profamd epoch provenance ledger after
// a run: the JSONL schema round-trips byte-identically, record counts
// match expectations, and the final committed families digest matches a
// reference families listing (e.g. the cold-run families the e2e gate
// already produces). Exit status 1 on any violation, so CI can gate on
// it directly.
//
//	ledgercheck -ledger e2e/ledger.jsonl -expect-committed 3 -expect-families cold_families.txt
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"profam/internal/ledger"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ledgercheck: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("ledgercheck", flag.ContinueOnError)
	path := fs.String("ledger", "", "ledger JSONL file to validate (required)")
	expectCommitted := fs.Int("expect-committed", -1, "required number of committed records (-1 skips the check)")
	expectFamilies := fs.String("expect-families", "", "families listing whose digest the last committed record must match")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("-ledger is required")
	}

	// Schema round-trip over the raw lines: every line must decode into
	// ledger.Record and re-encode to the identical bytes, proving the
	// file carries no fields the schema silently drops.
	raw, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer raw.Close()
	sc := bufio.NewScanner(raw)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec ledger.Record
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return fmt.Errorf("line %d: does not decode as a ledger record: %w", lineNo, err)
		}
		re, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("line %d: re-encode: %w", lineNo, err)
		}
		if !bytes.Equal(line, re) {
			return fmt.Errorf("line %d: schema does not round-trip:\n file %s\n re   %s", lineNo, line, re)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	// Replay through the library path (also exercises torn-tail
	// recovery; a validated file must not need it).
	led, err := ledger.Open(*path)
	if err != nil {
		return err
	}
	defer led.Close()
	if led.Recovered() {
		return fmt.Errorf("ledger has a torn trailing line")
	}

	committed := 0
	var last *ledger.Record
	for _, rec := range led.Records() {
		switch rec.Status {
		case ledger.StatusCommitted:
			committed++
			r := rec
			last = &r
		case ledger.StatusFailed, ledger.StatusAborted:
		default:
			return fmt.Errorf("epoch %d: unknown status %q", rec.Epoch, rec.Status)
		}
		if rec.Status == ledger.StatusCommitted {
			if rec.FamiliesDigest == "" || rec.InputDigest == "" || rec.Fingerprint == "" {
				return fmt.Errorf("epoch %d: committed record missing digests or fingerprint", rec.Epoch)
			}
		}
	}
	if *expectCommitted >= 0 && committed != *expectCommitted {
		return fmt.Errorf("committed records = %d, want %d", committed, *expectCommitted)
	}

	if *expectFamilies != "" {
		if last == nil {
			return fmt.Errorf("-expect-families given but no committed record in ledger")
		}
		text, err := os.ReadFile(*expectFamilies)
		if err != nil {
			return err
		}
		digest := ledger.FamiliesTextDigest(text)
		if last.FamiliesDigest != digest {
			return fmt.Errorf("epoch %d families digest %s != reference %s (%s)",
				last.Epoch, last.FamiliesDigest, digest, *expectFamilies)
		}
	}

	fmt.Fprintf(stdout, "ledgercheck: %d records (%d committed) ok\n", led.Len(), committed)
	return nil
}
