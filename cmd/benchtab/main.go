// Command benchtab regenerates the paper's tables and figures on scaled
// synthetic workloads (see DESIGN.md for the experiment index).
//
// Usage:
//
//	benchtab -exp all            # everything (several minutes)
//	benchtab -exp table1         # one experiment
//	benchtab -exp fig6a -scale 0.5
//
// Experiments: table1, quality, table2, fig5, fig6a, fig6b, fig7a,
// fig7b, workred, all.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"profam/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtab: ")
	exp := flag.String("exp", "all", "experiment to run (table1 quality table2 fig5 fig6a fig6b fig7a fig7b sensitivity comm ablate workred all)")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("--- %s done in %.1fs ---\n\n", name, time.Since(start).Seconds())
	}

	// Fig 6a/6b/7a share one sweep; compute it lazily once.
	var fig6Cells []experiments.RRCCDTimes
	fig6 := func() ([]experiments.RRCCDTimes, error) {
		if fig6Cells != nil {
			return fig6Cells, nil
		}
		var err error
		fig6Cells, err = experiments.Fig6(*scale)
		return fig6Cells, err
	}

	run("table1", func() error {
		rows, err := experiments.Table1(*scale)
		if err != nil {
			return err
		}
		experiments.PrintTable1(os.Stdout, rows)
		return nil
	})
	run("quality", func() error {
		q, err := experiments.Quality(*scale)
		if err != nil {
			return err
		}
		experiments.PrintQuality(os.Stdout, q)
		return nil
	})
	run("table2", func() error {
		rows, err := experiments.Table2(*scale)
		if err != nil {
			return err
		}
		experiments.PrintTable2(os.Stdout, rows)
		return nil
	})
	run("fig5", func() error {
		b, c, err := experiments.Fig5(*scale)
		if err != nil {
			return err
		}
		experiments.PrintFig5(os.Stdout, b, c)
		return nil
	})
	run("fig6a", func() error {
		cells, err := fig6()
		if err != nil {
			return err
		}
		experiments.PrintFig6a(os.Stdout, cells)
		return nil
	})
	run("fig6b", func() error {
		cells, err := fig6()
		if err != nil {
			return err
		}
		experiments.PrintFig6b(os.Stdout, cells)
		return nil
	})
	run("fig7a", func() error {
		cells, err := fig6()
		if err != nil {
			return err
		}
		experiments.PrintFig7a(os.Stdout, cells)
		return nil
	})
	run("fig7b", func() error {
		cells, err := experiments.Fig7b(*scale)
		if err != nil {
			return err
		}
		experiments.PrintFig7b(os.Stdout, cells)
		return nil
	})
	run("sensitivity", func() error {
		rows, err := experiments.Sensitivity(*scale)
		if err != nil {
			return err
		}
		experiments.PrintSensitivity(os.Stdout, rows)
		return nil
	})
	run("comm", func() error {
		rows, err := experiments.Comm(*scale)
		if err != nil {
			return err
		}
		experiments.PrintComm(os.Stdout, rows)
		return nil
	})
	run("ablate", func() error {
		rows, err := experiments.Ablate(*scale)
		if err != nil {
			return err
		}
		experiments.PrintAblate(os.Stdout, rows)
		return nil
	})
	run("workred", func() error {
		r, err := experiments.WorkReduction(*scale)
		if err != nil {
			return err
		}
		experiments.PrintWorkRed(os.Stdout, r)
		return nil
	})
}
