// Command datagen generates synthetic metagenomic ORF data sets with
// known ground truth, the stand-in for the CAMERA/GOS environmental
// sequence collections used in the paper.
//
// It writes a FASTA file plus an optional tab-separated truth file
// (sequence name, family label, redundant flag) for quality evaluation.
//
// Example:
//
//	datagen -families 50 -mean-size 30 -out data.fasta -truth data.truth
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"profam/internal/seq"
	"profam/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	var p workload.Params
	flag.IntVar(&p.Families, "families", 20, "number of global-similarity families")
	flag.IntVar(&p.MeanFamilySize, "mean-size", 30, "geometric mean family size")
	flag.IntVar(&p.MeanLength, "mean-length", 160, "mean sequence length (residues)")
	flag.Float64Var(&p.Divergence, "divergence", 0.12, "per-residue substitution rate vs ancestor")
	flag.Float64Var(&p.IndelRate, "indel", 0.01, "per-residue indel initiation rate")
	flag.Float64Var(&p.ContainedFrac, "contained", 0.15, "fraction of members spawning a contained fragment")
	flag.IntVar(&p.Singletons, "singletons", 0, "unrelated sequences (0 = one per family)")
	flag.IntVar(&p.DomainFamilies, "domain-families", 0, "domain-sharing families")
	flag.IntVar(&p.DomainSize, "domain-size", 12, "members per domain family")
	flag.Int64Var(&p.Seed, "seed", 1, "PRNG seed")
	out := flag.String("out", "-", "output FASTA path (- for stdout)")
	truthPath := flag.String("truth", "", "optional truth TSV path")
	flag.Parse()

	set, truth := workload.Generate(p)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := seq.WriteFASTA(w, set, 70); err != nil {
		log.Fatal(err)
	}

	if *truthPath != "" {
		f, err := os.Create(*truthPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := workload.WriteTruth(f, set, truth); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Fprintf(os.Stderr, "datagen: %d sequences, %d families (mean length %.0f)\n",
		set.Len(), truth.NumFamilies, set.MeanLength())
}
