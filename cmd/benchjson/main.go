// Command benchjson runs the hybrid-parallelism benchmarks
// (batch-alignment kernel and full pipeline, at 1..NumCPU threads per
// rank) through testing.Benchmark and writes the ns/op results to a
// JSON file, giving future changes a machine-readable perf trajectory
// to compare against.
//
// Example:
//
//	benchjson -out BENCH_results.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"profam"
	"profam/internal/experiments"
)

// fileFormat is the BENCH_results.json schema.
type fileFormat struct {
	Date       string             `json:"date"`
	GoVersion  string             `json:"go_version"`
	NumCPU     int                `json:"num_cpu"`
	Benchmarks map[string]float64 `json:"benchmarks_ns_per_op"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	testing.Init() // register the test.* flags testing.Benchmark consults
	out := flag.String("out", "BENCH_results.json", "output JSON file")
	benchtime := flag.Duration("benchtime", time.Second, "minimum run time per benchmark")
	flag.Parse()

	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		log.Fatal(err)
	}

	results := map[string]float64{}
	record := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		results[name] = float64(r.NsPerOp())
		log.Printf("%-40s %12d ns/op  (%d iters)", name, r.NsPerOp(), r.N)
	}

	alignSet, _ := experiments.SetOfSize(120, 31)
	pairs := experiments.BenchPairs(alignSet, 2048)
	pipeSet, _ := experiments.SetOfSize(300, 47)

	for _, th := range experiments.ThreadCounts() {
		th := th
		record(fmt.Sprintf("AlignBatchParallel/threads=%d", th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.AlignBatchKernel(alignSet, pairs, th)
			}
		})
		record(fmt.Sprintf("PipelineThreads/threads=%d", th), func(b *testing.B) {
			cfg := experiments.PipelineConfig()
			cfg.ThreadsPerRank = th
			for i := 0; i < b.N; i++ {
				if _, _, err := profam.RunSet(pipeSet, 2, false, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	payload := fileFormat{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Benchmarks: results,
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
