// Command benchjson runs the hybrid-parallelism benchmarks
// (batch-alignment kernel and full pipeline, at 1..NumCPU threads per
// rank) through testing.Benchmark and writes the ns/op results to a
// JSON file, giving future changes a machine-readable perf trajectory
// to compare against.
//
// With -compare it acts as a regression gate instead: results are
// checked against the baseline file and the exit status is non-zero if
// any kernel got more than -tolerance slower. A calibration kernel is
// timed twice first; when the two runs disagree by more than half the
// tolerance the host is considered too noisy to judge and the
// comparison is skipped (exit 0), so shared CI runners don't produce
// false failures.
//
// The run is bounded by -timeout and interruptible with SIGINT/SIGTERM:
// no new benchmark starts once the deadline passes or a signal arrives,
// and a watchdog terminates the process if a benchmark itself wedges.
//
// Example:
//
//	benchjson -out BENCH_results.json
//	benchjson -compare BENCH_results.json -tolerance 0.2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"testing"
	"time"

	"profam"
	"profam/internal/experiments"
	"profam/internal/mpi"
)

// fileFormat is the BENCH_results.json schema.
type fileFormat struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_maxprocs"`
	// CellsEliminatedRatio is full-matrix DP cells / cascade DP cells on
	// the AlignCascade kernel's pair batch (work checksum, not timing).
	CellsEliminatedRatio float64 `json:"cells_eliminated_ratio,omitempty"`
	// TraceOverheadRatio is traced/untraced ns/op on the threads=1
	// pipeline kernel minus one — the fractional cost of event tracing.
	TraceOverheadRatio float64 `json:"trace_overhead_ratio,omitempty"`
	// SimOverlapSpeedup is the deterministic virtual-makespan ratio
	// lockstep/overlapped on the 4-rank straggler-link simulation, and
	// SimTaskWaitShare* are the corresponding worker task-wait shares —
	// the protocol win the overlapped dataflow exists to deliver.
	SimOverlapSpeedup        float64 `json:"sim_overlap_speedup,omitempty"`
	SimTaskWaitShareLockstep float64 `json:"sim_task_wait_share_lockstep,omitempty"`
	SimTaskWaitShareOverlap  float64 `json:"sim_task_wait_share_overlap,omitempty"`
	// TCPWireBytesRatio is gob/binary worker→master bytes on realistic
	// batch traffic over loopback TCP (work checksum, not timing).
	TCPWireBytesRatio float64 `json:"tcp_wire_bytes_ratio,omitempty"`
	// KernelSpeedup is scalar/striped ns/op on the local-score pair batch
	// (AlignLocalScalar vs AlignStriped at threads=1) — the striped int16
	// kernel's isolated win over the int32 scalar DP. CascadeKernelSpeedup
	// is the same ratio on the full containment cascade (AlignCascadeScalar
	// vs AlignCascade at threads=1), where the bit-parallel reject bound
	// and profile reuse also contribute.
	KernelSpeedup        float64 `json:"kernel_speedup,omitempty"`
	CascadeKernelSpeedup float64 `json:"cascade_kernel_speedup,omitempty"`
	// SparsePeakBytesRatio is ESA/sparse peak index bytes on a large
	// corpus (work checksum, not timing) — the memory win the sparse
	// pair backend exists to deliver. The run fails if it is ≤ 1.
	SparsePeakBytesRatio float64 `json:"sparse_peak_bytes_ratio,omitempty"`
	// SimShardSpeedup is the deterministic virtual-makespan ratio
	// single-master/sharded on the 64-rank master-bound corpus
	// (experiments.ShardCorpus at 8 shards) — the multi-master win LSH
	// sharding exists to deliver. The run fails if it is ≤ 1.
	SimShardSpeedup float64 `json:"sim_shard_speedup,omitempty"`
	// ServiceObsOverheadRatio is instrumented/bare ns/op on the profamd
	// status handler — the per-request cost of the HTTP telemetry
	// middleware, gated at -obs-tolerance in -compare mode.
	ServiceObsOverheadRatio float64            `json:"service_obs_overhead_ratio,omitempty"`
	Benchmarks              map[string]float64 `json:"benchmarks_ns_per_op"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	testing.Init() // register the test.* flags testing.Benchmark consults
	out := flag.String("out", "BENCH_results.json", "output JSON file")
	benchtime := flag.Duration("benchtime", time.Second, "minimum run time per benchmark")
	compare := flag.String("compare", "", "baseline JSON file to gate against; exits 1 on any regression beyond -tolerance")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional slowdown per kernel in -compare mode")
	traceTol := flag.Float64("trace-tolerance", 0.05, "allowed fractional tracing overhead on the threads=1 pipeline kernel in -compare mode")
	obsTol := flag.Float64("obs-tolerance", 0.05, "allowed fractional HTTP-telemetry overhead on the service status handler in -compare mode")
	timeout := flag.Duration("timeout", 15*time.Minute, "abort the whole run after this long")
	flag.Parse()

	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()
	go func() {
		// Watchdog: testing.Benchmark cannot be cancelled mid-run, so
		// once the context ends a wedged benchmark would hang CI forever.
		// Give the in-flight benchmark a grace period, then bail hard.
		<-ctx.Done()
		time.Sleep(30 * time.Second)
		log.Print("watchdog: benchmark still running after cancellation; terminating")
		os.Exit(2)
	}()

	results := map[string]float64{}
	record := func(name string, fn func(b *testing.B)) {
		if ctx.Err() != nil {
			return
		}
		r := testing.Benchmark(fn)
		results[name] = float64(r.NsPerOp())
		log.Printf("%-40s %12d ns/op  (%d iters)", name, r.NsPerOp(), r.N)
	}

	if runtime.NumCPU() == 1 {
		log.Print("WARNING: num_cpu=1 — thread-ladder kernels cannot speed up on this host; do not read flat threads=N curves as a missing parallel speedup")
	}

	alignSet, _ := experiments.SetOfSize(120, 31)
	pairs := experiments.BenchPairs(alignSet, 2048)
	seedPairs, err := experiments.BenchSeedPairs(alignSet, 6, 2048)
	if err != nil {
		log.Fatal(err)
	}
	pipeSet, _ := experiments.SetOfSize(300, 47)

	// The cells-eliminated ratio is a work checksum, identical for every
	// thread count; one serial kernel run pins it.
	cascadeCells, fullCells := experiments.AlignCascadeKernel(alignSet, seedPairs, 1)
	var cellsRatio float64
	if cascadeCells > 0 {
		cellsRatio = float64(fullCells) / float64(cascadeCells)
	}
	log.Printf("cascade cells: %d vs %d full-matrix (%.1fx eliminated)", cascadeCells, fullCells, cellsRatio)

	calibrate := func() float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.AlignBatchKernel(alignSet, pairs, 1)
			}
		})
		return float64(r.NsPerOp())
	}

	var noise float64
	if *compare != "" {
		// Measure host noise before anything else: the same serial kernel
		// twice, back to back.
		c1, c2 := calibrate(), calibrate()
		noise = (c1 - c2) / c1
		if noise < 0 {
			noise = -noise
		}
		log.Printf("calibration: %.0f vs %.0f ns/op (%.1f%% spread)", c1, c2, 100*noise)
	}

	for _, th := range experiments.ThreadCounts() {
		th := th
		record(fmt.Sprintf("AlignBatchParallel/threads=%d", th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.AlignBatchKernel(alignSet, pairs, th)
			}
		})
		record(fmt.Sprintf("AlignCascade/threads=%d", th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.AlignCascadeKernel(alignSet, seedPairs, th)
			}
		})
		// PipelineThreads runs with the seed-anchored cascade (the
		// pipeline default); PipelineExact keeps the full-matrix
		// reference visible in the trajectory at one thread count.
		record(fmt.Sprintf("PipelineThreads/threads=%d", th), func(b *testing.B) {
			cfg := experiments.PipelineConfig()
			cfg.ThreadsPerRank = th
			for i := 0; i < b.N; i++ {
				if _, _, err := profam.RunSet(pipeSet, 2, false, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Kernel micro-benchmarks at one thread: the word-parallel kernels
	// against the int32 scalar reference on the same pair batches,
	// isolating the per-kernel win from the thread ladder. The cascade
	// pair keeps the production mix visible (bit-parallel reject bound +
	// striped rescore + profile reuse vs -kernels=scalar).
	record("AlignStriped/threads=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.AlignStripedKernel(alignSet, pairs, 1)
		}
	})
	record("AlignLocalScalar/threads=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.AlignLocalScalarKernel(alignSet, pairs, 1)
		}
	})
	record("AlignBitParallel/threads=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.AlignBitParallelKernel(alignSet, pairs, 1)
		}
	})
	record("AlignCascadeScalar/threads=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.AlignCascadeKernelMode(alignSet, seedPairs, 1, true)
		}
	})
	record("PipelineExact/threads=1", func(b *testing.B) {
		cfg := experiments.PipelineConfig()
		cfg.ThreadsPerRank = 1
		cfg.ExactAlign = true
		for i := 0; i < b.N; i++ {
			if _, _, err := profam.RunSet(pipeSet, 2, false, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	// PipelineSparse mirrors PipelineThreads/threads=1 on the sparse
	// pair backend; its ratio against the untraced GST kernel is the
	// end-to-end cost of the streamed multiply.
	record("PipelineSparse/threads=1", func(b *testing.B) {
		cfg := experiments.PipelineConfig()
		cfg.ThreadsPerRank = 1
		cfg.Pairs = profam.PairsSparse
		for i := 0; i < b.N; i++ {
			if _, _, err := profam.RunSet(pipeSet, 2, false, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	// PipelineSharded mirrors PipelineThreads at 4 ranks, single-master
	// vs 4 LSH shards, keeping the real-time cost of the sharded path
	// (signature phase, split collectives, boundary merge) visible in
	// the trajectory.
	for _, sh := range []int{1, 4} {
		sh := sh
		record(fmt.Sprintf("PipelineSharded/shards=%d", sh), func(b *testing.B) {
			cfg := experiments.PipelineConfig()
			cfg.ThreadsPerRank = 1
			cfg.Shards = sh
			for i := 0; i < b.N; i++ {
				if _, _, err := profam.RunSet(pipeSet, 4, false, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The pair-generation kernels isolate the candidate-pair index+
	// enumeration hot path (no alignment, no transport) on the two
	// non-default backends over the same corpus and ψ.
	record("PairGenESA/threads=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.PairGenESAKernel(pipeSet, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("PairGenSparse/threads=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.PairGenSparseKernel(pipeSet, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
	// PipelineTraced mirrors PipelineThreads/threads=1 with event tracing
	// on; its ratio against the untraced kernel is the tracing overhead.
	record("PipelineTraced/threads=1", func(b *testing.B) {
		cfg := experiments.PipelineConfig()
		cfg.ThreadsPerRank = 1
		cfg.TraceCapacity = 1 << 15
		for i := 0; i < b.N; i++ {
			if _, _, err := profam.RunSet(pipeSet, 2, false, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The service handler pair: identical status requests through the
	// instrumented and bare handler paths of one live server. Their ratio
	// is the per-request price of the telemetry middleware.
	obsSet, _ := experiments.SetOfSize(60, 19)
	instrH, bareH, obsShutdown, err := experiments.ObsHandlers(obsSet)
	if err != nil {
		log.Fatal(err)
	}
	statusBench := func(h http.Handler) func(b *testing.B) {
		return func(b *testing.B) {
			req := httptest.NewRequest(http.MethodGet, "/v1/status", nil)
			for i := 0; i < b.N; i++ {
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, req)
				if rr.Code != http.StatusOK {
					b.Fatalf("status = %d", rr.Code)
				}
			}
		}
	}
	record("ServiceStatusInstrumented", statusBench(instrH))
	record("ServiceStatusBare", statusBench(bareH))
	obsShutdown()

	// The TCP kernels each grab a fresh port block per iteration so
	// lingering TIME_WAIT sockets from the previous mesh can't collide.
	// The window sits below the kernel's ephemeral port range
	// (net.ipv4.ip_local_port_range, 32768+ by default): a prior mesh's
	// *outbound* sockets pick ephemeral source ports, and with an
	// overlapping window one of them can own the exact port the next
	// mesh wants to Listen on, failing the bind and wedging the bench.
	// The window recycles after 45 blocks; listeners rebind closed
	// ports safely (SO_REUSEADDR).
	tcpPort := 23700
	nextTCPPorts := func() int {
		p := tcpPort
		tcpPort += 16
		if tcpPort >= 24420 {
			tcpPort = 23700
		}
		return p
	}
	for _, wf := range []struct {
		name   string
		format mpi.WireFormat
	}{{"gob", mpi.WireGob}, {"binary", mpi.WireBinary}} {
		wf := wf
		record("PipelineTCP/wire="+wf.name, func(b *testing.B) {
			mpi.SetWireFormat(wf.format)
			defer mpi.SetWireFormat(mpi.WireBinary)
			cfg := experiments.PipelineConfig()
			cfg.ThreadsPerRank = 1
			for i := 0; i < b.N; i++ {
				if err := experiments.PipelineTCP(pipeSet, cfg, nextTCPPorts()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	roundBatches := experiments.MasterRoundBatches(64, 256, 9)
	record("MasterRoundLatency", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := experiments.MasterRoundLatency(roundBatches, nextTCPPorts()); err != nil {
				b.Fatal(err)
			}
		}
	})

	if err := ctx.Err(); err != nil {
		log.Fatalf("run aborted: %v (%d benchmarks completed)", err, len(results))
	}

	var traceOverhead float64
	if plain, ok := results["PipelineThreads/threads=1"]; ok && plain > 0 {
		if traced, ok := results["PipelineTraced/threads=1"]; ok {
			traceOverhead = traced/plain - 1
			log.Printf("tracing overhead on threads=1 pipeline: %+.1f%%", 100*traceOverhead)
		}
	}
	var obsRatio float64
	if bare, ok := results["ServiceStatusBare"]; ok && bare > 0 {
		if instr, ok := results["ServiceStatusInstrumented"]; ok {
			obsRatio = instr / bare
			log.Printf("service telemetry overhead on status handler: %.3fx", obsRatio)
		}
	}

	payload := fileFormat{
		CellsEliminatedRatio:    cellsRatio,
		TraceOverheadRatio:      traceOverhead,
		ServiceObsOverheadRatio: obsRatio,
		Benchmarks:              results,
	}
	if striped, ok := results["AlignStriped/threads=1"]; ok && striped > 0 {
		if scalar, ok := results["AlignLocalScalar/threads=1"]; ok {
			payload.KernelSpeedup = scalar / striped
			log.Printf("striped kernel speedup over scalar local DP: %.2fx", payload.KernelSpeedup)
		}
	}
	if auto, ok := results["AlignCascade/threads=1"]; ok && auto > 0 {
		if scalar, ok := results["AlignCascadeScalar/threads=1"]; ok {
			payload.CascadeKernelSpeedup = scalar / auto
			log.Printf("cascade kernel speedup over -kernels=scalar: %.2fx", payload.CascadeKernelSpeedup)
		}
	}
	// Protocol-comparison scalars: deterministic simulation and a byte
	// count, so they need no noise guard.
	ov, err := experiments.OverlapWin(experiments.OverlapCorpus(), experiments.OverlapConfig(), 4, experiments.StragglerLink(4))
	if err != nil {
		log.Fatal(err)
	}
	payload.SimOverlapSpeedup = ov.Speedup()
	payload.SimTaskWaitShareLockstep = ov.TaskWaitShareLockstep
	payload.SimTaskWaitShareOverlap = ov.TaskWaitShareOverlap
	log.Printf("sim overlap win (4 ranks, straggler link): %.2fx makespan, task-wait share %.3f -> %.3f",
		ov.Speedup(), ov.TaskWaitShareLockstep, ov.TaskWaitShareOverlap)
	wireRatio, err := experiments.WireBytesRatio(experiments.MasterRoundBatches(24, 48, 11), nextTCPPorts())
	if err != nil {
		log.Fatal(err)
	}
	payload.TCPWireBytesRatio = wireRatio
	log.Printf("tcp wire bytes gob/binary: %.2fx", wireRatio)
	// Peak index memory, ESA vs sparse, on a corpus large enough that
	// the largest single CSR block sits well below the summed subtrees.
	// Deterministic arithmetic over the bucket list — no noise guard —
	// and a hard gate: the sparse backend's whole reason to exist is
	// peaking lower than the resident-tree backends.
	memSet, _ := experiments.SetOfSize(1500, 53)
	esaBytes, sparseBytes, memRatio, err := experiments.SparsePeakBytesRatio(memSet, 7)
	if err != nil {
		log.Fatal(err)
	}
	payload.SparsePeakBytesRatio = memRatio
	log.Printf("peak index bytes esa/sparse: %d / %d = %.2fx", esaBytes, sparseBytes, memRatio)
	if memRatio <= 1.0 {
		log.Fatalf("sparse peak index bytes (%d) not below ESA (%d); ratio %.2f <= 1.0", sparseBytes, esaBytes, memRatio)
	}
	// Multi-master sharding win: deterministic 64-rank virtual-time
	// makespans, single-master vs 8 LSH shards, on the master-bound
	// corpus. No noise guard (pure simulation) and a hard gate: the
	// sharded path's whole reason to exist is beating one master.
	singleMk, shardedMk, shardSpeedup, err := experiments.ShardSpeedup(
		experiments.ShardCorpus(), experiments.ShardConfig(), 64, 8, mpi.BlueGeneLike())
	if err != nil {
		log.Fatal(err)
	}
	payload.SimShardSpeedup = shardSpeedup
	log.Printf("sim shard win (64 ranks, 8 shards): %.4fs -> %.4fs makespan, %.2fx", singleMk, shardedMk, shardSpeedup)
	if shardSpeedup <= 1.0 {
		log.Fatalf("sharded 64-rank makespan (%.4fs) not below single-master (%.4fs); speedup %.2f <= 1.0", shardedMk, singleMk, shardSpeedup)
	}

	if *compare != "" {
		os.Exit(compareBaseline(*compare, payload, *tolerance, *traceTol, *obsTol, noise, explicitOut(), *out))
	}

	writeResults(*out, payload)
}

// explicitOut reports whether -out was set on the command line (as
// opposed to defaulted), so -compare mode doesn't clobber the baseline
// unless asked.
func explicitOut() bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			set = true
		}
	})
	return set
}

func writeResults(path string, payload fileFormat) {
	payload.Date = time.Now().UTC().Format(time.RFC3339)
	payload.GoVersion = runtime.Version()
	payload.NumCPU = runtime.NumCPU()
	payload.GoMaxProcs = runtime.GOMAXPROCS(0)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", path)
}

// compareBaseline checks the fresh results against the baseline file and
// returns the process exit code: 0 when every shared kernel is within
// tolerance (or the host is too noisy to judge), 1 on regression. The
// tracing-overhead gate needs no baseline — traced and untraced kernels
// ran back to back in this same invocation — but it keeps its own noise
// guard since traceTol is typically much tighter than tolerance.
func compareBaseline(path string, payload fileFormat, tolerance, traceTol, obsTol, noise float64, writeOut bool, outPath string) int {
	results, traceOverhead := payload.Benchmarks, payload.TraceOverheadRatio
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Print(err)
		return 1
	}
	var base fileFormat
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Printf("%s: %v", path, err)
		return 1
	}
	if noise > tolerance/2 {
		log.Printf("host too noisy (%.1f%% calibration spread > %.1f%% threshold); skipping comparison", 100*noise, 100*tolerance/2)
		return 0
	}
	regressed := 0
	for name, old := range base.Benchmarks {
		now, ok := results[name]
		if !ok {
			log.Printf("%-40s missing from this run", name)
			continue
		}
		ratio := now/old - 1
		status := "ok"
		if ratio > tolerance {
			status = "REGRESSED"
			regressed++
		}
		log.Printf("%-40s %12.0f -> %12.0f ns/op  (%+.1f%%)  %s", name, old, now, 100*ratio, status)
	}
	switch {
	case noise > traceTol/2:
		log.Printf("host too noisy (%.1f%% spread) to judge the %.0f%% tracing-overhead gate; skipping it", 100*noise, 100*traceTol)
	case traceOverhead > traceTol:
		log.Printf("tracing overhead %+.1f%% exceeds %.0f%% budget: REGRESSED", 100*traceOverhead, 100*traceTol)
		regressed++
	default:
		log.Printf("tracing overhead %+.1f%% within %.0f%% budget", 100*traceOverhead, 100*traceTol)
	}
	// The service-telemetry gate mirrors the tracing gate: both handler
	// paths ran back to back in this invocation, so no baseline is
	// consulted, only the noise guard.
	switch {
	case payload.ServiceObsOverheadRatio == 0:
		log.Print("service telemetry overhead unavailable; skipping its gate")
	case noise > obsTol/2:
		log.Printf("host too noisy (%.1f%% spread) to judge the %.2fx telemetry-overhead gate; skipping it", 100*noise, 1+obsTol)
	case payload.ServiceObsOverheadRatio > 1+obsTol:
		log.Printf("service telemetry overhead %.3fx exceeds %.2fx budget: REGRESSED", payload.ServiceObsOverheadRatio, 1+obsTol)
		regressed++
	default:
		log.Printf("service telemetry overhead %.3fx within %.2fx budget", payload.ServiceObsOverheadRatio, 1+obsTol)
	}
	if writeOut {
		writeResults(outPath, payload)
	}
	if regressed > 0 {
		log.Printf("%d kernel(s) regressed beyond %.0f%%", regressed, 100*tolerance)
		return 1
	}
	log.Printf("all %d baseline kernels within %.0f%%", len(base.Benchmarks), 100*tolerance)
	return 0
}
