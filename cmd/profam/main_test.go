package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"profam/internal/workload"
)

// writeFASTA materializes a small synthetic workload as a FASTA file and
// returns its path.
func writeFASTA(t *testing.T, dir string, p workload.Params) string {
	t.Helper()
	set, _ := workload.Generate(p)
	var b bytes.Buffer
	for i := 0; i < set.Len(); i++ {
		s := set.Get(i)
		fmt.Fprintf(&b, ">%s\n%s\n", s.Name, string(s.Res))
	}
	path := filepath.Join(dir, "in.fasta")
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

type chromeFile struct {
	TraceEvents []map[string]any `json:"traceEvents"`
}

func readChrome(t *testing.T, path string) chromeFile {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var cf chromeFile
	if err := json.Unmarshal(data, &cf); err != nil {
		t.Fatalf("trace file is not valid chrome JSON: %v", err)
	}
	return cf
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	fa := writeFASTA(t, dir, workload.Params{
		Families: 3, MeanFamilySize: 6, MeanLength: 80,
		Divergence: 0.08, Singletons: 2, Seed: 5,
	})
	famOut := filepath.Join(dir, "fam.json")
	metricsOut := filepath.Join(dir, "metrics.json")
	traceOut := filepath.Join(dir, "trace.json")

	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-in", fa, "-out", famOut, "-json",
		"-sim", "-p", "2",
		"-min-component", "3", "-min-family", "3",
		"-metrics-out", metricsOut,
		"-trace-out", traceOut, "-trace-cap", "4096",
		"-log-json",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}

	var fams jsonReport
	data, err := os.ReadFile(famOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &fams); err != nil {
		t.Fatalf("family output is not valid JSON: %v", err)
	}
	if fams.Input == 0 {
		t.Error("family report has zero input sequences")
	}

	var rep struct {
		Counters map[string]int64 `json:"Counters"`
	}
	data, err = os.ReadFile(metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("metrics output is not valid JSON: %v", err)
	}
	if len(rep.Counters) == 0 {
		t.Error("metrics report has no counters")
	}

	cf := readChrome(t, traceOut)
	if len(cf.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}

	if !strings.Contains(stderr.String(), "phase") {
		t.Error("stderr missing the straggler/metrics tables")
	}
	// -log-json: every stderr log line before the tables is JSON.
	first := strings.SplitN(stderr.String(), "\n", 2)[0]
	var line map[string]any
	if err := json.Unmarshal([]byte(first), &line); err != nil {
		t.Errorf("first stderr line is not a JSON log record: %q", first)
	}
}

// A run that errors partway through the pipeline must still flush the
// metrics and trace artifacts from the per-rank failure stashes.
func TestFlushOnFailure(t *testing.T) {
	dir := t.TempDir()
	fa := writeFASTA(t, dir, workload.Params{
		Families: 2, MeanFamilySize: 4, MeanLength: 60, Singletons: 1, Seed: 9,
	})
	metricsOut := filepath.Join(dir, "metrics.json")
	traceOut := filepath.Join(dir, "trace.json")

	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-in", fa, "-out", filepath.Join(dir, "fam.txt"),
		"-psi=-1", // rejected by the suffix-tree index, mid-pipeline
		"-metrics-out", metricsOut,
		"-trace-out", traceOut,
	}, &stdout, &stderr)
	if err == nil {
		t.Fatal("run succeeded, want a pipeline error")
	}

	var rep struct {
		Counters map[string]int64 `json:"Counters"`
	}
	data, rerr := os.ReadFile(metricsOut)
	if rerr != nil {
		t.Fatalf("metrics not flushed on failure: %v", rerr)
	}
	if jerr := json.Unmarshal(data, &rep); jerr != nil {
		t.Fatalf("flushed metrics are not valid JSON: %v", jerr)
	}
	if _, ok := rep.Counters["trace_dropped"]; !ok {
		t.Error("flushed metrics missing the trace_dropped counter")
	}

	cf := readChrome(t, traceOut)
	if len(cf.TraceEvents) == 0 {
		t.Error("flushed trace has no events")
	}
	var sawPhaseRR bool
	for _, ev := range cf.TraceEvents {
		if name, _ := ev["name"].(string); name == "phase:rr" {
			sawPhaseRR = true
		}
	}
	if !sawPhaseRR {
		t.Error("flushed trace missing the phase:rr marker recorded before the failure")
	}
}

func TestRunFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{}, &stdout, &stderr); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "x.fasta", "-reduction", "nope"}, &stdout, &stderr); err == nil {
		t.Error("bad -reduction accepted")
	}
	if err := run([]string{"-in", "x.fasta", "-log-level", "loud"}, &stdout, &stderr); err == nil {
		t.Error("bad -log-level accepted")
	}
	if err := run([]string{"-in", "x.fasta", "-trace-out", "t.json", "-trace-cap", "0"}, &stdout, &stderr); err == nil {
		t.Error("zero -trace-cap with -trace-out accepted")
	}
}
