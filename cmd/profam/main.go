// Command profam runs the full protein-family identification pipeline on
// a FASTA file of amino-acid sequences.
//
// Example:
//
//	profam -in orfs.fasta -p 8 -out families.txt
//	profam -in orfs.fasta -p 128 -sim            # virtual-time scaling run
//	profam -in orfs.fasta -reduction domain      # B_m domain families
//	profam -in orfs.fasta -p 2 -threads 4        # hybrid: 2 ranks × 4 goroutines
//	profam -in orfs.fasta -p 8 -trace-out trace.json -metrics-out metrics.json
//
// Hybrid execution: -threads bounds the goroutine pool each rank uses
// for alignment batches, index construction and per-component phase 3+4
// jobs. 0 (the default) picks max(1, NumCPU/p) for wall-clock runs and
// keeps simulated ranks single-threaded; the family output is identical
// for every value.
//
// Observability: -trace-out records per-rank protocol and communication
// events into bounded ring buffers (-trace-cap events per rank) and
// exports the merged job timeline as Chrome trace-event JSON — load it
// at https://ui.perfetto.dev — plus a straggler report on stderr.
// -metrics-out writes the merged counter/gauge/histogram report as JSON
// and prints a summary table. -log-level/-log-json control structured
// pipeline logs; -progress emits periodic in-flight summaries; and
// -pprof-addr serves /debug/pprof/ plus a Prometheus /metrics endpoint
// reflecting the live run. All report files are still written when the
// run fails partway, from the last per-rank snapshots.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"profam"
	"profam/internal/metrics"
	"profam/internal/mpi"
	"profam/internal/quality"
	"profam/internal/report"
	"profam/internal/seq"
	"profam/internal/trace"
	"profam/internal/workload"
)

// jsonFamily is the JSON output schema for one family.
type jsonFamily struct {
	Size       int      `json:"size"`
	MeanDegree float64  `json:"mean_degree"`
	Density    float64  `json:"density"`
	Members    []string `json:"members"`
}

type jsonReport struct {
	Input        int          `json:"input_sequences"`
	NonRedundant int          `json:"non_redundant"`
	Components   int          `json:"components"`
	Families     []jsonFamily `json:"families"`
}

func writeFamilyJSON(w io.Writer, set *seq.Set, res *profam.Result) error {
	rep := jsonReport{
		Input:        res.NumInput,
		NonRedundant: res.NumNonRedundant,
		Components:   len(res.Components),
	}
	for _, fam := range res.Families {
		jf := jsonFamily{Size: fam.Size(), MeanDegree: fam.MeanDegree, Density: fam.Density}
		for _, id := range fam.Members {
			jf.Members = append(jf.Members, set.Get(id).Name)
		}
		rep.Families = append(rep.Families, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "profam: %v\n", err)
		os.Exit(1)
	}
}

// run is the whole CLI behind a testable seam: parse args, execute the
// pipeline, write every requested artifact to stdout/stderr or files.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("profam", flag.ContinueOnError)
	fs.SetOutput(stderr)

	in := fs.String("in", "", "input FASTA file (required)")
	out := fs.String("out", "-", "output families file (- for stdout)")
	p := fs.Int("p", 1, "number of ranks")
	sim := fs.Bool("sim", false, "run on the virtual-time simulator instead of goroutine ranks")
	reduction := fs.String("reduction", "global", "bipartite reduction: global (B_d) or domain (B_m)")
	truthPath := fs.String("truth", "", "optional truth TSV (from datagen) to score the clustering against")
	pairs := fs.String("pairs", "gst", "promising-pair backend: gst (generalized suffix tree), esa (enhanced suffix array) or sparse (streamed k-mer matrix multiply); families are identical across backends")
	useESA := fs.Bool("esa", false, "deprecated alias for -pairs=esa")
	jsonOut := fs.Bool("json", false, "write families as JSON instead of text")
	reportPath := fs.String("report", "", "write a full text report (summary, histogram, MSA blocks) to this file")
	metricsOut := fs.String("metrics-out", "", "write the merged metrics report (counters, gauges, histograms, phase spans) as JSON to this file (- for stdout) and print a summary table")
	traceOut := fs.String("trace-out", "", "record per-rank protocol/comm events and write the merged timeline as Chrome trace-event JSON to this file (- for stdout); also prints a straggler report")
	traceCap := fs.Int("trace-cap", 1<<16, "per-rank trace ring-buffer capacity in events (oldest overwritten beyond it; only with -trace-out)")
	logLevel := fs.String("log-level", "info", "structured log level: debug, info, warn or error")
	logJSON := fs.Bool("log-json", false, "emit structured logs as JSON lines instead of text")
	progress := fs.Duration("progress", 0, "emit an in-flight progress line at this interval (e.g. 2s; 0 disables)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof debug endpoints and a Prometheus /metrics endpoint on this address (e.g. localhost:6060); empty disables")

	var cfg profam.Config
	fs.IntVar(&cfg.Psi, "psi", 8, "minimum maximal-match length for promising pairs")
	fs.Float64Var(&cfg.ContainIdentity, "contain-identity", 0.95, "Definition 1 identity cutoff")
	fs.Float64Var(&cfg.ContainCoverage, "contain-coverage", 0.95, "Definition 1 coverage cutoff")
	fs.Float64Var(&cfg.OverlapSimilarity, "overlap-similarity", 0.30, "Definition 2 similarity cutoff")
	fs.Float64Var(&cfg.OverlapCoverage, "overlap-coverage", 0.80, "Definition 2 long-sequence coverage cutoff")
	fs.Float64Var(&cfg.EdgeSimilarity, "edge-similarity", 0, "bipartite edge similarity cutoff (0 = overlap cutoff)")
	fs.IntVar(&cfg.W, "w", 10, "word length for the domain-based reduction")
	fs.IntVar(&cfg.S1, "s1", 5, "shingle size, pass I")
	fs.IntVar(&cfg.C1, "c1", 300, "shingle count, pass I")
	fs.IntVar(&cfg.S2, "s2", 5, "shingle size, pass II")
	fs.IntVar(&cfg.C2, "c2", 100, "shingle count, pass II")
	fs.Float64Var(&cfg.Tau, "tau", 0.5, "A≈B post-test threshold")
	fs.IntVar(&cfg.MinComponentSize, "min-component", 5, "minimum connected component size")
	fs.IntVar(&cfg.MinFamilySize, "min-family", 5, "minimum dense subgraph size")
	fs.Int64Var(&cfg.Seed, "seed", 0, "shingle permutation seed (0 = default)")
	fs.IntVar(&cfg.ThreadsPerRank, "threads", 0,
		"goroutines per rank for alignment/index/component work (0 = auto: max(1, NumCPU/p); simulated runs default to 1)")
	fs.BoolVar(&cfg.ExactAlign, "exact-align", false,
		"disable the seed-anchored alignment cascade and run full-matrix DP on every promising pair (identical output, more work)")
	kernels := fs.String("kernels", "auto",
		"alignment kernel selection: auto (bit-parallel and striped int16 kernels with certified fallthrough) or scalar (int32 reference kernels only; identical output, more work)")
	fs.BoolVar(&cfg.Lockstep, "lockstep", false,
		"revert the master-worker phases to the synchronous round-robin protocol (no arrival-order service, no worker prefetch) — the reference arm for overlap measurements")
	fs.IntVar(&cfg.Shards, "shards", 1,
		"LSH similarity shards: split the ranks into this many rank groups, each running its own master over one shard of the corpus, with a cross-shard boundary pass merging families (1 = single master)")
	wire := fs.String("wire", "binary", "TCP payload encoding for hot master-worker messages: binary (compact delta/varint frames) or gob")

	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	if *in == "" {
		fs.Usage()
		return errors.New("-in is required")
	}
	switch *reduction {
	case "global":
		cfg.Reduction = profam.GlobalSimilarity
	case "domain":
		cfg.Reduction = profam.DomainBased
	default:
		return fmt.Errorf("unknown -reduction %q (want global or domain)", *reduction)
	}
	backend, err := resolvePairBackend(fs, *pairs, *useESA)
	if err != nil {
		return err
	}
	cfg.Pairs = backend
	switch *wire {
	case "binary":
		mpi.SetWireFormat(mpi.WireBinary)
	case "gob":
		mpi.SetWireFormat(mpi.WireGob)
	default:
		return fmt.Errorf("unknown -wire %q (want binary or gob)", *wire)
	}
	switch *kernels {
	case "auto":
	case "scalar":
		cfg.ScalarKernels = true
	default:
		return fmt.Errorf("unknown -kernels %q (want auto or scalar)", *kernels)
	}
	if *traceOut != "" {
		if *traceCap <= 0 {
			return fmt.Errorf("-trace-cap must be positive with -trace-out, got %d", *traceCap)
		}
		cfg.TraceCapacity = *traceCap
	}

	logger, err := buildLogger(stderr, *logLevel, *logJSON)
	if err != nil {
		return err
	}
	cfg.Logger = logger

	if *pprofAddr != "" {
		go serveDebug(*pprofAddr, logger)
		logger.Info("debug server", "pprof", "http://"+*pprofAddr+"/debug/pprof/", "metrics", "http://"+*pprofAddr+"/metrics")
	}

	set, err := seq.ReadFASTAFile(*in)
	if err != nil {
		return err
	}
	logger.Info("read sequences", "n", set.Len(), "mean_length", fmt.Sprintf("%.0f", set.MeanLength()))

	stopProgress := startProgress(*progress, logger)
	res, span, runErr := profam.RunSet(set, *p, *sim, cfg)
	stopProgress()

	// Flush the observability artifacts before acting on the run error:
	// a failed run still exports its last per-rank metrics snapshots and
	// trace buffers, which is exactly when a timeline is most useful.
	if err := flushObservability(*metricsOut, *traceOut, res, stdout, stderr, logger); err != nil {
		if runErr != nil {
			logger.Error("observability flush failed", "err", err)
			return runErr
		}
		return err
	}
	if runErr != nil {
		return runErr
	}

	if err := writeTo(*out, stdout, func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		if *jsonOut {
			if err := writeFamilyJSON(bw, set, res); err != nil {
				return err
			}
		} else if err := report.Families(bw, set, res); err != nil {
			return err
		}
		return bw.Flush()
	}); err != nil {
		return err
	}

	if *reportPath != "" {
		if err := writeTo(*reportPath, stdout, func(w io.Writer) error {
			return report.Text(w, set, res, report.Options{MSA: true})
		}); err != nil {
			return err
		}
		logger.Info("report written", "path", *reportPath)
	}

	if *truthPath != "" {
		truth, err := workload.ReadTruthFile(*truthPath, set)
		if err != nil {
			return err
		}
		conf, err := quality.Compare(res.FamilyLabels(), truth.Label)
		if err != nil {
			return err
		}
		logger.Info("quality vs truth", "confusion", fmt.Sprint(conf))
	}

	mode := "wall-clock"
	if *sim {
		mode = "virtual"
	}
	logger.Info("phase rr", "generated", res.RR.PairsGenerated, "aligned", res.RR.PairsAligned,
		"work_reduction", fmt.Sprintf("%.1f%%", 100*res.RR.WorkReduction()), "seconds", res.RR.Time)
	logger.Info("phase ccd", "generated", res.CCD.PairsGenerated, "aligned", res.CCD.PairsAligned,
		"closure_skipped", res.CCD.PairsClosure, "seconds", res.CCD.Time)
	logger.Info("phase bgg+dsd", "bgg_seconds", res.BGGTime, "dsd_seconds", res.DSDTime)
	logger.Info("pipeline finished",
		"components", len(res.Components), "families", len(res.Families),
		"seqs_in_families", res.SeqsInFamilies(), "mode", mode, "seconds", span, "ranks", *p)
	return nil
}

// buildLogger makes the CLI/pipeline logger writing to w at the named
// level, as logfmt-style text or JSON lines.
func buildLogger(w io.Writer, level string, jsonOut bool) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if jsonOut {
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return slog.New(slog.NewTextHandler(w, opts)), nil
}

// serveDebug runs the debug HTTP server: net/http/pprof (registered on
// the default mux by its import) under /debug/pprof/, plus a Prometheus
// text-exposition /metrics endpoint reflecting the live per-rank
// registries of whatever run is in flight.
func serveDebug(addr string, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		rep := metrics.Merge(metrics.LiveSnapshots())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := rep.WritePrometheus(w); err != nil {
			logger.Error("metrics endpoint", "err", err)
		}
	})
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("debug server", "err", err)
	}
}

// startProgress launches the in-flight progress ticker and returns its
// stop function. Every interval it merges the live per-rank registries
// and logs headline totals; interval 0 disables and returns a no-op.
func startProgress(interval time.Duration, logger *slog.Logger) func() {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				rep := metrics.Merge(metrics.LiveSnapshots())
				if rep.NumRanks == 0 {
					continue
				}
				logger.Info("progress",
					"ranks", rep.NumRanks,
					"pairs_aligned", counterTotal(rep, "pace_pairs_aligned"),
					"msgs_sent", counterTotal(rep, "mpi_msgs_sent"),
					"families", counterTotal(rep, "pipeline_families_emitted"),
					"trace_dropped", counterTotal(rep, "trace_dropped"))
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// counterTotal sums every counter with the given base name across all
// label sets ("name" itself plus any "name{...}" variant).
func counterTotal(rep *metrics.Report, base string) int64 {
	var n int64
	for name, v := range rep.Counters {
		if name == base || strings.HasPrefix(name, base+"{") {
			n += v
		}
	}
	return n
}

// flushObservability writes the metrics and trace artifacts. It prefers
// the merged job-wide report/timeline off a successful Result and falls
// back to the failed-run stashes (the last snapshot each rank saved on
// its way out) so a run that dies partway still leaves evidence behind.
func flushObservability(metricsOut, traceOut string, res *profam.Result, stdout, stderr io.Writer, logger *slog.Logger) error {
	var rep *metrics.Report
	var tl *trace.Timeline
	if res != nil {
		rep, tl = res.Metrics, res.Trace
	}
	if rep == nil {
		if snaps := metrics.TakeFailed(); len(snaps) > 0 {
			rep = metrics.Merge(snaps)
			logger.Warn("exporting metrics from a failed run's partial snapshots", "ranks", len(snaps))
		}
	}
	if tl == nil {
		if rts := trace.TakeFailed(); len(rts) > 0 {
			tl = trace.Merge(rts)
			logger.Warn("exporting trace from a failed run's partial buffers", "ranks", len(rts))
		}
	}

	if metricsOut != "" && rep != nil {
		if err := rep.Table(stderr); err != nil {
			return err
		}
		if err := writeTo(metricsOut, stdout, rep.WriteJSON); err != nil {
			return err
		}
		if metricsOut != "-" {
			logger.Info("metrics written", "path", metricsOut)
		}
	}
	if traceOut != "" && tl != nil {
		if err := writeTo(traceOut, stdout, func(w io.Writer) error {
			return trace.WriteChromeJSON(w, tl)
		}); err != nil {
			return err
		}
		if err := trace.Analyze(tl).WriteText(stderr); err != nil {
			return err
		}
		if traceOut != "-" {
			logger.Info("trace written", "path", traceOut,
				"events", tl.NumEvents(), "dropped", tl.Dropped)
		}
	}
	return nil
}

// writeTo writes through f to stdout when path is "-", else to a freshly
// created file at path.
func writeTo(path string, stdout io.Writer, f func(io.Writer) error) error {
	if path == "-" {
		return f(stdout)
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// resolvePairBackend merges the -pairs selector with the deprecated
// -esa alias: -esa alone maps to -pairs=esa, and combining -esa with a
// conflicting explicit -pairs value is rejected.
func resolvePairBackend(fs *flag.FlagSet, pairs string, useESA bool) (profam.PairBackend, error) {
	b, err := profam.ParsePairBackend(pairs)
	if err != nil {
		return b, err
	}
	if !useESA {
		return b, nil
	}
	explicit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "pairs" {
			explicit = true
		}
	})
	if explicit && b != profam.PairsESA {
		return b, fmt.Errorf("-esa conflicts with -pairs=%s (drop -esa; it is a deprecated alias for -pairs=esa)", b)
	}
	return profam.PairsESA, nil
}
