// Command profam runs the full protein-family identification pipeline on
// a FASTA file of amino-acid sequences.
//
// Example:
//
//	profam -in orfs.fasta -p 8 -out families.txt
//	profam -in orfs.fasta -p 128 -sim            # virtual-time scaling run
//	profam -in orfs.fasta -reduction domain      # B_m domain families
//	profam -in orfs.fasta -p 2 -threads 4        # hybrid: 2 ranks × 4 goroutines
//
// Hybrid execution: -threads bounds the goroutine pool each rank uses
// for alignment batches, index construction and per-component phase 3+4
// jobs. 0 (the default) picks max(1, NumCPU/p) for wall-clock runs and
// keeps simulated ranks single-threaded; the family output is identical
// for every value.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"

	"profam"
	"profam/internal/quality"
	"profam/internal/report"
	"profam/internal/seq"
	"profam/internal/workload"
)

// jsonFamily is the JSON output schema for one family.
type jsonFamily struct {
	Size       int      `json:"size"`
	MeanDegree float64  `json:"mean_degree"`
	Density    float64  `json:"density"`
	Members    []string `json:"members"`
}

type jsonReport struct {
	Input        int          `json:"input_sequences"`
	NonRedundant int          `json:"non_redundant"`
	Components   int          `json:"components"`
	Families     []jsonFamily `json:"families"`
}

func writeJSON(w io.Writer, set *seq.Set, res *profam.Result) error {
	rep := jsonReport{
		Input:        res.NumInput,
		NonRedundant: res.NumNonRedundant,
		Components:   len(res.Components),
	}
	for _, fam := range res.Families {
		jf := jsonFamily{Size: fam.Size(), MeanDegree: fam.MeanDegree, Density: fam.Density}
		for _, id := range fam.Members {
			jf.Members = append(jf.Members, set.Get(id).Name)
		}
		rep.Families = append(rep.Families, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("profam: ")

	in := flag.String("in", "", "input FASTA file (required)")
	out := flag.String("out", "-", "output families file (- for stdout)")
	p := flag.Int("p", 1, "number of ranks")
	sim := flag.Bool("sim", false, "run on the virtual-time simulator instead of goroutine ranks")
	reduction := flag.String("reduction", "global", "bipartite reduction: global (B_d) or domain (B_m)")
	truthPath := flag.String("truth", "", "optional truth TSV (from datagen) to score the clustering against")
	useESA := flag.Bool("esa", false, "index with an enhanced suffix array instead of the suffix tree")
	jsonOut := flag.Bool("json", false, "write families as JSON instead of text")
	reportPath := flag.String("report", "", "write a full text report (summary, histogram, MSA blocks) to this file")
	metricsOut := flag.String("metrics-out", "", "write the merged metrics report (counters, gauges, histograms, phase spans) as JSON to this file (- for stdout) and print a summary table")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof debug endpoints on this address (e.g. localhost:6060); empty disables")

	var cfg profam.Config
	flag.IntVar(&cfg.Psi, "psi", 8, "minimum maximal-match length for promising pairs")
	flag.Float64Var(&cfg.ContainIdentity, "contain-identity", 0.95, "Definition 1 identity cutoff")
	flag.Float64Var(&cfg.ContainCoverage, "contain-coverage", 0.95, "Definition 1 coverage cutoff")
	flag.Float64Var(&cfg.OverlapSimilarity, "overlap-similarity", 0.30, "Definition 2 similarity cutoff")
	flag.Float64Var(&cfg.OverlapCoverage, "overlap-coverage", 0.80, "Definition 2 long-sequence coverage cutoff")
	flag.Float64Var(&cfg.EdgeSimilarity, "edge-similarity", 0, "bipartite edge similarity cutoff (0 = overlap cutoff)")
	flag.IntVar(&cfg.W, "w", 10, "word length for the domain-based reduction")
	flag.IntVar(&cfg.S1, "s1", 5, "shingle size, pass I")
	flag.IntVar(&cfg.C1, "c1", 300, "shingle count, pass I")
	flag.IntVar(&cfg.S2, "s2", 5, "shingle size, pass II")
	flag.IntVar(&cfg.C2, "c2", 100, "shingle count, pass II")
	flag.Float64Var(&cfg.Tau, "tau", 0.5, "A≈B post-test threshold")
	flag.IntVar(&cfg.MinComponentSize, "min-component", 5, "minimum connected component size")
	flag.IntVar(&cfg.MinFamilySize, "min-family", 5, "minimum dense subgraph size")
	flag.Int64Var(&cfg.Seed, "seed", 0, "shingle permutation seed (0 = default)")
	flag.IntVar(&cfg.ThreadsPerRank, "threads", 0,
		"goroutines per rank for alignment/index/component work (0 = auto: max(1, NumCPU/p); simulated runs default to 1)")
	flag.BoolVar(&cfg.ExactAlign, "exact-align", false,
		"disable the seed-anchored alignment cascade and run full-matrix DP on every promising pair (identical output, more work)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	switch *reduction {
	case "global":
		cfg.Reduction = profam.GlobalSimilarity
	case "domain":
		cfg.Reduction = profam.DomainBased
	default:
		log.Fatalf("unknown -reduction %q (want global or domain)", *reduction)
	}

	cfg.UseESA = *useESA

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
		log.Printf("pprof endpoints on http://%s/debug/pprof/", *pprofAddr)
	}

	set, err := seq.ReadFASTAFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("read %d sequences (mean length %.0f)", set.Len(), set.MeanLength())

	res, span, err := profam.RunSet(set, *p, *sim, cfg)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if *jsonOut {
		if err := writeJSON(bw, set, res); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Fprintf(bw, "# %s\n", res.Summary())
		for fi, fam := range res.Families {
			fmt.Fprintf(bw, "family %d\tsize=%d\tmean_degree=%.1f\tdensity=%.2f\n",
				fi, fam.Size(), fam.MeanDegree, fam.Density)
			for _, id := range fam.Members {
				fmt.Fprintf(bw, "\t%s\n", set.Get(id).Name)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}

	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.Text(f, set, res, report.Options{MSA: true}); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *reportPath)
	}

	if *truthPath != "" {
		truth, err := workload.ReadTruthFile(*truthPath, set)
		if err != nil {
			log.Fatal(err)
		}
		conf, err := quality.Compare(res.FamilyLabels(), truth.Label)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("quality vs truth: %s", conf)
	}

	if *metricsOut != "" && res.Metrics != nil {
		if err := res.Metrics.Table(os.Stderr); err != nil {
			log.Fatal(err)
		}
		mw := os.Stdout
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			mw = f
		}
		if err := res.Metrics.WriteJSON(mw); err != nil {
			log.Fatal(err)
		}
		if *metricsOut != "-" {
			log.Printf("metrics written to %s", *metricsOut)
		}
	}

	mode := "wall-clock"
	if *sim {
		mode = "virtual"
	}
	log.Printf("RR:  %d generated, %d aligned (%.1f%% work reduction), %.1fs",
		res.RR.PairsGenerated, res.RR.PairsAligned, 100*res.RR.WorkReduction(), res.RR.Time)
	log.Printf("CCD: %d generated, %d aligned (%d closure-skipped), %.1fs",
		res.CCD.PairsGenerated, res.CCD.PairsAligned, res.CCD.PairsClosure, res.CCD.Time)
	log.Printf("BGG: %.1fs  DSD: %.1fs", res.BGGTime, res.DSDTime)
	log.Printf("%d components, %d families, %d sequences in families; total %s time %.1fs on %d ranks",
		len(res.Components), len(res.Families), res.SeqsInFamilies(), mode, span, *p)
}
