// Command profamd is the resident protein-family clustering service: a
// long-lived HTTP daemon wrapping the profam pipeline with batched
// ingest, incremental epochs, and immutable published snapshots.
//
// Example:
//
//	profamd -addr localhost:8077 -p 2 -batch-size 512 -batch-wait 250ms
//
// Submissions (POST /v1/sequences, FASTA or JSON body) coalesce in a
// batcher and commit as incremental clustering epochs; family queries
// (GET /v1/families, /v1/families/{id}, /v1/sequences/{id}/family)
// answer from the last committed snapshot, so reads never block on a
// building epoch. The served families are byte-identical to a cold
// profam run over the union corpus.
//
// SIGINT/SIGTERM drains gracefully: in-flight batches commit their
// epochs within -drain-timeout, then the HTTP listener closes. A second
// signal — or the timeout — aborts the in-flight epoch; its partial
// metrics are still flushed to -metrics-out via the failed-run stash.
//
// Observability: -ledger appends one provenance record per epoch (served
// at GET /v1/epochs and /v1/epochs/{n}), each epoch's trace timeline is
// retained for GET /debug/epochs/{n}/trace and persisted under
// -trace-dir, and GET /metrics exports per-route HTTP series plus
// runtime health alongside the pipeline metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"profam"
	"profam/internal/ledger"
	"profam/internal/metrics"
	"profam/internal/server"
)

func main() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, sig); err != nil {
		fmt.Fprintf(os.Stderr, "profamd: %v\n", err)
		os.Exit(1)
	}
}

// run is the daemon behind a testable seam: parse flags, serve until a
// signal arrives (or the listener fails), drain, flush observability.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) error {
	fs := flag.NewFlagSet("profamd", flag.ContinueOnError)
	fs.SetOutput(stderr)

	addr := fs.String("addr", "localhost:8077", "listen address (host:port; port 0 picks a free port)")
	addrFile := fs.String("addr-file", "", "write the bound listen address to this file once serving (for scripts using port 0)")
	p := fs.Int("p", 1, "ranks per clustering epoch")
	batchSize := fs.Int("batch-size", 256, "flush an epoch once this many sequences are pending")
	batchWait := fs.Duration("batch-wait", 200*time.Millisecond, "flush a non-empty batch after this long even below -batch-size")
	queueCap := fs.Int("queue-cap", 64, "bounded submission queue; full-queue submissions block (backpressure)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for committing in-flight batches before the epoch is aborted")
	metricsOut := fs.String("metrics-out", "", "write the final merged metrics report as JSON to this file on exit (- for stdout)")
	ledgerPath := fs.String("ledger", "", "append one provenance record per epoch to this JSONL file (crash-safe; replayed on restart). Empty keeps the ledger in memory only")
	traceDir := fs.String("trace-dir", "", "persist each epoch's trace as Chrome JSON (epoch_NNNN.trace.json) under this directory")
	traceCap := fs.Int("trace-cap", 1<<15, "per-rank trace-event ring capacity per epoch (0 disables epoch tracing)")
	epochHistory := fs.Int("epoch-history", 8, "number of recent epoch timelines retained for /debug/epochs/{n}/trace")
	healthInterval := fs.Duration("health-interval", 10*time.Second, "runtime health sampling period (goroutines, heap, GC pauses)")
	logLevel := fs.String("log-level", "info", "structured log level: debug, info, warn or error")
	logJSON := fs.Bool("log-json", false, "emit structured logs as JSON lines instead of text")

	var cfg profam.Config
	fs.IntVar(&cfg.Psi, "psi", 8, "minimum maximal-match length for promising pairs")
	fs.Float64Var(&cfg.ContainIdentity, "contain-identity", 0.95, "Definition 1 identity cutoff")
	fs.Float64Var(&cfg.ContainCoverage, "contain-coverage", 0.95, "Definition 1 coverage cutoff")
	fs.Float64Var(&cfg.OverlapSimilarity, "overlap-similarity", 0.30, "Definition 2 similarity cutoff")
	fs.Float64Var(&cfg.OverlapCoverage, "overlap-coverage", 0.80, "Definition 2 long-sequence coverage cutoff")
	fs.IntVar(&cfg.MinComponentSize, "min-component", 5, "minimum connected component size")
	fs.IntVar(&cfg.MinFamilySize, "min-family", 5, "minimum dense subgraph size")
	fs.IntVar(&cfg.ThreadsPerRank, "threads", 0, "goroutines per rank (0 = auto)")
	fs.IntVar(&cfg.Shards, "shards", 1, "LSH similarity shards per epoch: split the ranks into this many rank groups, each running its own master, with a cross-shard boundary merge (1 = single master; sharded epochs always recluster from scratch)")
	pairs := fs.String("pairs", "gst", "promising-pair backend: gst (generalized suffix tree), esa (enhanced suffix array) or sparse (streamed k-mer matrix multiply); families are identical across backends")
	useESA := fs.Bool("esa", false, "deprecated alias for -pairs=esa")
	reduction := fs.String("reduction", "global", "bipartite reduction: global (B_d) or domain (B_m)")

	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	switch *reduction {
	case "global":
		cfg.Reduction = profam.GlobalSimilarity
	case "domain":
		cfg.Reduction = profam.DomainBased
	default:
		return fmt.Errorf("unknown -reduction %q (want global or domain)", *reduction)
	}
	backend, err := resolvePairBackend(fs, *pairs, *useESA)
	if err != nil {
		return err
	}
	cfg.Pairs = backend
	logger, err := buildLogger(stderr, *logLevel, *logJSON)
	if err != nil {
		return err
	}
	cfg.Logger = logger

	led, err := ledger.Open(*ledgerPath)
	if err != nil {
		return fmt.Errorf("opening ledger: %w", err)
	}
	defer led.Close()
	if led.Recovered() {
		logger.Warn("ledger recovered from torn tail", "path", *ledgerPath, "records", led.Len())
	} else if led.Len() > 0 {
		logger.Info("ledger replayed", "path", *ledgerPath, "records", led.Len())
	}

	srv := server.New(server.Config{
		Pipeline:       cfg,
		Ranks:          *p,
		BatchSize:      *batchSize,
		BatchWait:      *batchWait,
		QueueCap:       *queueCap,
		Ledger:         led,
		TraceCapacity:  *traceCap,
		TraceHistory:   *epochHistory,
		TraceDir:       *traceDir,
		HealthInterval: *healthInterval,
		Logger:         logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Info("profamd serving", "addr", ln.Addr().String(),
		"ranks", *p, "batch_size", *batchSize, "batch_wait", *batchWait)

	var runErr error
	select {
	case s := <-sig:
		logger.Info("signal received; draining", "signal", s, "timeout", *drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		go func() {
			// A second signal forces the abort immediately.
			select {
			case s := <-sig:
				logger.Warn("second signal; aborting in-flight epoch", "signal", s)
				cancel()
			case <-drainCtx.Done():
			}
		}()
		if err := srv.Shutdown(drainCtx); err != nil {
			logger.Warn("drain incomplete; epoch aborted", "err", err)
		}
		cancel()
		httpCtx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := httpSrv.Shutdown(httpCtx); err != nil {
			logger.Warn("http shutdown", "err", err)
		}
		hcancel()
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			runErr = err
		}
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		_ = srv.Shutdown(dctx)
		cancel()
	}

	if err := flushMetrics(*metricsOut, srv, stdout, logger); err != nil && runErr == nil {
		runErr = err
	}
	logger.Info("profamd stopped")
	return runErr
}

// flushMetrics writes the final merged metrics report: the service
// registry plus any failed-run stashes from aborted epochs.
func flushMetrics(path string, srv *server.Server, stdout io.Writer, logger *slog.Logger) error {
	if path == "" {
		return nil
	}
	snaps := append([]metrics.Snapshot{srv.Registry().Snapshot()}, metrics.TakeFailed()...)
	rep := metrics.Merge(snaps)
	w := stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		return err
	}
	if path != "-" {
		logger.Info("metrics written", "path", path)
	}
	return nil
}

func buildLogger(w io.Writer, level string, jsonOut bool) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if jsonOut {
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return slog.New(slog.NewTextHandler(w, opts)), nil
}

// resolvePairBackend merges the -pairs selector with the deprecated
// -esa alias: -esa alone maps to -pairs=esa, and combining -esa with a
// conflicting explicit -pairs value is rejected.
func resolvePairBackend(fs *flag.FlagSet, pairs string, useESA bool) (profam.PairBackend, error) {
	b, err := profam.ParsePairBackend(pairs)
	if err != nil {
		return b, err
	}
	if !useESA {
		return b, nil
	}
	explicit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "pairs" {
			explicit = true
		}
	})
	if explicit && b != profam.PairsESA {
		return b, fmt.Errorf("-esa conflicts with -pairs=%s (drop -esa; it is a deprecated alias for -pairs=esa)", b)
	}
	return profam.PairsESA, nil
}
