package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonLifecycle boots the daemon on a free port, ingests a small
// FASTA payload, queries the result, and shuts down via SIGTERM,
// checking the drain commits and the final metrics flush happens.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	metricsFile := filepath.Join(dir, "metrics.json")
	ledgerFile := filepath.Join(dir, "ledger.jsonl")
	traceDir := filepath.Join(dir, "traces")

	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-batch-wait", "20ms",
			"-min-component", "2", "-min-family", "2",
			"-metrics-out", metricsFile,
			"-ledger", ledgerFile,
			"-trace-dir", traceDir,
			"-log-level", "error",
		}, io.Discard, io.Discard, sig)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("daemon never wrote its address file")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}

	fasta := ">a\nMKVLWAALLGAGARQWEDDAPQRSTKLMNH\n" +
		">b\nMKVLWAALLGAGARQWEDDAPQRSTKLMNH\n" +
		">c\nMKVLWAALLGAGARQWEDDAPQRSTKLMNQ\n"
	resp, err = http.Post(base+"/v1/sequences", "application/x-fasta", strings.NewReader(fasta))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d: %s", resp.StatusCode, body)
	}

	resp, err = http.Get(base + "/v1/sequences/a/family")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/v1/epochs")
	if err != nil {
		t.Fatalf("epochs: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status":"committed"`) {
		t.Fatalf("epochs = %d: %s", resp.StatusCode, summarize(body))
	}
	resp, err = http.Get(base + "/debug/epochs/1/trace")
	if err != nil {
		t.Fatalf("epoch trace: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "traceEvents") {
		t.Fatalf("epoch trace = %d: %s", resp.StatusCode, summarize(body))
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	b, err := os.ReadFile(metricsFile)
	if err != nil {
		t.Fatalf("metrics flush missing: %v", err)
	}
	if !strings.Contains(string(b), "server_epochs") {
		t.Errorf("final metrics report lacks server_epochs: %s", summarize(b))
	}

	// The durable observability artifacts survived the daemon.
	lb, err := os.ReadFile(ledgerFile)
	if err != nil {
		t.Fatalf("ledger missing: %v", err)
	}
	if !strings.Contains(string(lb), `"families_digest"`) {
		t.Errorf("ledger record incomplete: %s", summarize(lb))
	}
	tb, err := os.ReadFile(filepath.Join(traceDir, "epoch_0001.trace.json"))
	if err != nil {
		t.Fatalf("persisted epoch trace missing: %v", err)
	}
	if !strings.Contains(string(tb), "traceEvents") {
		t.Errorf("persisted trace is not Chrome JSON: %s", summarize(tb))
	}
}

func summarize(b []byte) string {
	if len(b) > 200 {
		return string(b[:200]) + "..."
	}
	return string(b)
}

// TestDaemonFlagErrors checks flag validation fails fast.
func TestDaemonFlagErrors(t *testing.T) {
	sig := make(chan os.Signal)
	if err := run([]string{"-reduction", "nope"}, io.Discard, io.Discard, sig); err == nil {
		t.Error("bad -reduction accepted")
	}
	if err := run([]string{"-log-level", "nope"}, io.Discard, io.Discard, sig); err == nil {
		t.Error("bad -log-level accepted")
	}
}

// TestDaemonAddrInUse surfaces listener errors instead of hanging.
func TestDaemonAddrInUse(t *testing.T) {
	sig := make(chan os.Signal)
	err := run([]string{"-addr", "256.0.0.1:0"}, io.Discard, io.Discard, sig)
	if err == nil {
		t.Error("bad listen address accepted")
	}
	_ = fmt.Sprint(err)
}
