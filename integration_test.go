package profam_test

import (
	"bytes"
	"fmt"
	"testing"

	"profam"
	"profam/internal/mpi"
	"profam/internal/seq"
	"profam/internal/workload"
)

// integrationSet builds a moderate data set with known structure.
func integrationSet() (*seq.Set, *workload.Truth) {
	return workload.Generate(workload.Params{
		Families: 5, MeanFamilySize: 12, MeanLength: 110,
		Divergence: 0.09, IndelRate: 0.004, Subfamilies: 2,
		ContainedFrac: 0.2, Singletons: 5, Seed: 2024,
	})
}

// TestPipelineDeterministic: repeated serial runs must give identical
// results (seeded shingles, ordered data structures).
func TestPipelineDeterministic(t *testing.T) {
	set, _ := integrationSet()
	cfg := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3}
	a, _, err := profam.RunSet(set, 1, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b, _, err := profam.RunSet(set, 1, false, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a.Families) != fmt.Sprint(b.Families) {
			t.Fatal("serial pipeline not deterministic")
		}
	}
}

// TestPipelineTCPMatchesSerial runs the complete pipeline over real
// sockets and requires identical output to the serial reference.
func TestPipelineTCPMatchesSerial(t *testing.T) {
	profam.RegisterWireTypes()
	set, _ := integrationSet()
	cfg := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3}
	want, _, err := profam.RunSet(set, 1, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got *profam.Result
	err = mpi.RunTCP(3, 43200, func(c *mpi.Comm) {
		res, err := profam.RunPipelineOn(c, set, cfg)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 2 {
			got = res
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Families) != fmt.Sprint(want.Families) {
		t.Error("TCP pipeline result differs from serial")
	}
	if got.NumNonRedundant != want.NumNonRedundant {
		t.Errorf("NR differs: %d vs %d", got.NumNonRedundant, want.NumNonRedundant)
	}
}

// TestSimulatedMatchesParallel: the virtual-time transport must produce
// the same clustering as the wall-clock transports at the same rank
// count (it is the same protocol, only time differs).
func TestSimulatedMatchesParallel(t *testing.T) {
	set, _ := integrationSet()
	cfg := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3,
		BatchPairs: 128, BatchTasks: 32}
	var inproc, sim *profam.Result
	err := mpi.Run(4, func(c *mpi.Comm) {
		r, err := profam.RunPipelineOn(c, set, cfg)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			inproc = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = mpi.RunSim(4, mpi.BlueGeneLike(), func(c *mpi.Comm) {
		r, err := profam.RunPipelineOn(c, set, cfg)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			sim = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(inproc.Families) != fmt.Sprint(sim.Families) {
		t.Error("simulated transport clustering differs from inproc at same rank count")
	}
}

// TestFASTAToPipelineFlow exercises the file-facing path end to end:
// generate, serialize, re-read, run.
func TestFASTAToPipelineFlow(t *testing.T) {
	set, _ := integrationSet()
	var buf bytes.Buffer
	if err := seq.WriteFASTA(&buf, set, 60); err != nil {
		t.Fatal(err)
	}
	res, err := profam.RunFASTA(&buf, profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumInput != set.Len() {
		t.Errorf("round trip lost sequences: %d vs %d", res.NumInput, set.Len())
	}
	if len(res.Families) == 0 {
		t.Error("no families from FASTA flow")
	}
}

// TestRedundantSequencesNeverClustered: Keep=false sequences must not
// appear in any component or family.
func TestRedundantSequencesNeverClustered(t *testing.T) {
	set, _ := integrationSet()
	res, _, err := profam.RunSet(set, 1, false, profam.Config{Psi: 6, MinComponentSize: 2, MinFamilySize: 2})
	if err != nil {
		t.Fatal(err)
	}
	dropped := map[int]bool{}
	for id, k := range res.Keep {
		if !k {
			dropped[id] = true
		}
	}
	if len(dropped) == 0 {
		t.Fatal("nothing removed; fragments were planted")
	}
	for _, comp := range res.Components {
		for _, id := range comp {
			if dropped[id] {
				t.Fatalf("dropped sequence %d in a component", id)
			}
		}
	}
	for _, f := range res.Families {
		for _, id := range f.Members {
			if dropped[id] {
				t.Fatalf("dropped sequence %d in a family", id)
			}
		}
	}
}

// TestFamiliesAreWithinComponents: every family must be a subset of one
// connected component (dense subgraphs cannot span components).
func TestFamiliesAreWithinComponents(t *testing.T) {
	set, _ := integrationSet()
	res, _, err := profam.RunSet(set, 1, false, profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3})
	if err != nil {
		t.Fatal(err)
	}
	compOf := map[int]int{}
	for ci, comp := range res.Components {
		for _, id := range comp {
			compOf[id] = ci
		}
	}
	for fi, f := range res.Families {
		first, ok := compOf[f.Members[0]]
		if !ok {
			t.Fatalf("family %d member %d not in any component", fi, f.Members[0])
		}
		for _, id := range f.Members[1:] {
			if compOf[id] != first {
				t.Fatalf("family %d spans components %d and %d", fi, first, compOf[id])
			}
		}
	}
}
