package profam_test

import (
	"errors"
	"fmt"
	"testing"

	"profam"
	"profam/internal/mpi"
	"profam/internal/quality"
	"profam/internal/seq"
	"profam/internal/workload"
)

// shardedSet is the planted corpus for the sharded-vs-unsharded identity
// tests: enough families that LSH banding actually spreads them across
// shards, with containment so the boundary RR replay is exercised.
func shardedSet() (*seq.Set, *workload.Truth) {
	return workload.Generate(workload.Params{
		Families: 8, MeanFamilySize: 9, MeanLength: 100,
		Divergence: 0.08, IndelRate: 0.004, Subfamilies: 2,
		ContainedFrac: 0.25, Singletons: 6, Seed: 7101,
	})
}

// TestShardedMatchesUnsharded: the sharded pipeline must emit families
// byte-identical to the single-master pipeline for every rank count ×
// shard count, because the boundary pass restores exactly the cross-shard
// pairs the single master would have considered (DESIGN.md §7f).
func TestShardedMatchesUnsharded(t *testing.T) {
	profam.RegisterWireTypes()
	set, _ := shardedSet()
	base := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3}
	want, _, err := profam.RunSet(set, 1, false, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 8} {
		for _, shards := range []int{2, 4} {
			t.Run(fmt.Sprintf("p=%d/shards=%d", p, shards), func(t *testing.T) {
				cfg := base
				cfg.Shards = shards
				got, _, err := profam.RunSet(set, p, false, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(got.Families) != fmt.Sprint(want.Families) {
					t.Fatalf("sharded families differ from unsharded reference\n got: %v\nwant: %v",
						got.Families, want.Families)
				}
				if got.NumNonRedundant != want.NumNonRedundant {
					t.Fatalf("non-redundant count differs: %d vs %d",
						got.NumNonRedundant, want.NumNonRedundant)
				}
			})
		}
	}
}

// TestShardedQuality: on a larger generated corpus, sharded families must
// agree with the unsharded partition at ≥99% pairwise F1 (they are exact
// on the corpora above; this guards the property on a corpus with more
// divergence and more singleton noise).
func TestShardedQuality(t *testing.T) {
	profam.RegisterWireTypes()
	set, _ := workload.Generate(workload.Params{
		Families: 12, MeanFamilySize: 10, MeanLength: 120,
		Divergence: 0.12, IndelRate: 0.006, Subfamilies: 3,
		ContainedFrac: 0.15, Singletons: 15, Seed: 9412,
	})
	base := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3}
	want, _, err := profam.RunSet(set, 1, false, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Shards = 4
	got, _, err := profam.RunSet(set, 4, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := quality.Compare(got.FamilyLabels(), want.FamilyLabels())
	if err != nil {
		t.Fatal(err)
	}
	p, r := conf.Precision(), conf.Sensitivity()
	f1 := 0.0
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	if f1 < 0.99 {
		t.Fatalf("sharded vs unsharded pairwise F1 = %.4f < 0.99 (%v)", f1, conf)
	}
}

// TestShardedSimtimeDeterministic: under the virtual-time transport the
// sharded pipeline must reproduce families AND makespan bit-for-bit, and
// match the inproc transport's families at the same rank count.
func TestShardedSimtimeDeterministic(t *testing.T) {
	profam.RegisterWireTypes()
	set, _ := shardedSet()
	cfg := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3,
		Shards: 4, BatchPairs: 128, BatchTasks: 32}
	run := func() (*profam.Result, float64) {
		var res *profam.Result
		mk, err := mpi.RunSim(6, mpi.BlueGeneLike(), func(c *mpi.Comm) {
			r, err := profam.RunPipelineOn(c, set, cfg)
			if err != nil {
				panic(err)
			}
			if c.Rank() == 0 {
				res = r
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, mk
	}
	a, mkA := run()
	b, mkB := run()
	if mkA != mkB {
		t.Fatalf("sharded simtime makespan not deterministic: %v vs %v", mkA, mkB)
	}
	if fmt.Sprint(a.Families) != fmt.Sprint(b.Families) {
		t.Fatal("sharded simtime families not deterministic")
	}
	var inproc *profam.Result
	if err := mpi.Run(6, func(c *mpi.Comm) {
		r, err := profam.RunPipelineOn(c, set, cfg)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			inproc = r
		}
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Families) != fmt.Sprint(inproc.Families) {
		t.Fatal("sharded simtime families differ from inproc at same rank count")
	}
}

// TestShardedScalingWin pins the headline perf claim: on a master-bound
// corpus (many short, highly redundant sequences, so the single master
// serializes on pair filtering and verdict traffic while worker DP stays
// cheap) at 64 simulated BlueGene-class ranks, running 8 rank-group
// masters cuts the virtual-time makespan by at least 3×. Families must
// still match the single-master run exactly.
func TestShardedScalingWin(t *testing.T) {
	if testing.Short() {
		t.Skip("64-rank simulation is slow")
	}
	profam.RegisterWireTypes()
	set, _ := workload.Generate(workload.Params{
		Families: 120, MeanFamilySize: 70, MeanLength: 32,
		Divergence: 0.004, IndelRate: 0.001, Subfamilies: 1,
		ContainedFrac: 0.5, Singletons: 40, Seed: 4242,
	})
	run := func(shards int) (*profam.Result, float64) {
		cfg := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3,
			Shards: shards, BatchPairs: 128, BatchTasks: 32, ThreadsPerRank: 16}
		var res *profam.Result
		mk, err := mpi.RunSim(64, mpi.BlueGeneLike(), func(c *mpi.Comm) {
			r, err := profam.RunPipelineOn(c, set, cfg)
			if err != nil {
				panic(err)
			}
			if c.Rank() == 0 {
				res = r
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, mk
	}
	single, mkSingle := run(1)
	sharded, mkSharded := run(8)
	// This corpus is containment-chain heavy, so redundancy removal is
	// order-sensitive and byte-identity is not guaranteed (DESIGN.md §7f);
	// the partition must still agree at ≥99% pairwise F1.
	conf, err := quality.Compare(sharded.FamilyLabels(), single.FamilyLabels())
	if err != nil {
		t.Fatal(err)
	}
	p, r := conf.Precision(), conf.Sensitivity()
	f1 := 0.0
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	if f1 < 0.99 {
		t.Fatalf("sharded vs single-master pairwise F1 = %.4f < 0.99 on scaling corpus", f1)
	}
	speedup := mkSingle / mkSharded
	t.Logf("simtime makespan: single-master %.4fs, 8 shards %.4fs, speedup %.2fx",
		mkSingle, mkSharded, speedup)
	if speedup < 3.0 {
		t.Fatalf("sharded makespan speedup %.2fx < 3.0x (single=%.4fs sharded=%.4fs)",
			speedup, mkSingle, mkSharded)
	}
}

// TestShardedEpochDrift: the epoch fingerprint carries the shard knobs,
// so changing the shard count mid-service must reject the incremental
// epoch instead of silently mixing placements.
func TestShardedEpochDrift(t *testing.T) {
	profam.RegisterWireTypes()
	set, _ := shardedSet()
	names, seqs := setStrings(set)
	base := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3, Shards: 2}
	_, st, err := profam.RunEpoch(nil, names[:20], seqs[:20], 2, base)
	if err != nil {
		t.Fatal(err)
	}
	drift := base
	drift.Shards = 4
	_, next, err := profam.RunEpoch(st, names[20:30], seqs[20:30], 2, drift)
	if !errors.Is(err, profam.ErrConfigChanged) {
		t.Fatalf("err = %v, want profam.ErrConfigChanged on shard-count drift", err)
	}
	if next != st {
		t.Error("rejected epoch did not return the prior state unchanged")
	}
}

// TestShardedEpochsMatchCold: a sharded service ingesting in waves must
// serve exactly what a cold sharded run over the union corpus computes.
// Sharded epochs always recluster from scratch (no incremental reuse),
// so this is the determinism contract the profamd ledger digest relies
// on.
func TestShardedEpochsMatchCold(t *testing.T) {
	profam.RegisterWireTypes()
	set, _ := shardedSet()
	names, seqs := setStrings(set)
	cfg := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3, Shards: 2}
	half := len(seqs) / 2
	_, st, err := profam.RunEpoch(nil, names[:half], seqs[:half], 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := profam.RunEpoch(st, names[half:], seqs[half:], 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := profam.RunSet(set, 2, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Families) != fmt.Sprint(want.Families) {
		t.Fatal("sharded incremental epochs differ from cold sharded run on the union corpus")
	}
}

// TestShardedTCP: the sharded pipeline over real sockets (split
// communicators included) must match the serial unsharded reference.
func TestShardedTCP(t *testing.T) {
	profam.RegisterWireTypes()
	set, _ := shardedSet()
	base := profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3}
	want, _, err := profam.RunSet(set, 1, false, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Shards = 2
	got, _, err := profam.RunSet(set, 4, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Families) != fmt.Sprint(want.Families) {
		t.Fatal("sharded TCP families differ from unsharded serial reference")
	}
}
