package profam_test

import (
	"fmt"

	"profam"
)

// ExampleRun clusters six sequences into two families with the one-call
// API.
func ExampleRun() {
	names := []string{"kinA", "kinB", "traA", "traB", "traC", "orphan"}
	seqs := []string{
		"MKLVINGKTLKGEITVEAPKSGWHHHQELVKWAKEGAELTSGGSNRWTQDYLLK",
		"MKLVINGKSLKGEITVRAPRSGWHAHQELIKWAKEGAELTSGGANKWTQDYLIK",
		"GWEIRDTHKSEIAHRFNDLGEEHFKGLVLVAFSQYLQQCPFDEHVKLAKEVTEF",
		"GWEIRDTHRSEIAHRFNDLGEEHYKGLVLVAFSQYLQQCPFDEHVRLVKEVSEF",
		"GWEVRDTHKSEIAHRYNDLGEEHFKGLVLVAYSQYLQECPFDEHIKLAKEVTEF",
		"PPGFSPEEAYVIKSGARICNLDNAWDAGEGQNTIPGMKKYWPLLL",
	}
	res, err := profam.Run(names, seqs, profam.Config{
		Psi: 6, MinComponentSize: 2, MinFamilySize: 2,
	})
	if err != nil {
		panic(err)
	}
	for fi, fam := range res.Families {
		fmt.Printf("family %d:", fi)
		for _, id := range fam.Members {
			fmt.Printf(" %s", names[id])
		}
		fmt.Println()
	}
	// Output:
	// family 0: traA traB traC
	// family 1: kinA kinB
}
