package profam

import (
	"bytes"
	"fmt"
	"log/slog"
	"sort"
	"strconv"

	"profam/internal/metrics"
	"profam/internal/minhash"
	"profam/internal/mpi"
	"profam/internal/pace"
	"profam/internal/seq"
	"profam/internal/trace"
	"profam/internal/unionfind"
)

// LSH similarity sharding (DESIGN.md §7f): phases 1+2 run as Config.Shards
// independent sub-problems, each driven by its own master inside a rank
// group carved out of the world communicator with mpi.Comm.Split, plus a
// masterless cross-shard boundary pass. The flow:
//
//  1. Signature phase (world comm, striped): every sequence gets a MinHash
//     signature over its distinct ψ-mer hashes under a fingerprint-seeded
//     permutation family, folded by LSH banding into band buckets.
//     Sequences colliding in any band cluster together and whole clusters
//     are placed greedily on shards (rank 0 places, broadcasts the
//     assignment). The ψ-mer postings are exchanged all-to-all by hash
//     partition — no rank ever holds the full posting table.
//  2. Boundary candidates (world comm, hash-partitioned): each rank owns
//     the ψ-mer hash classes equal to its rank mod p and enumerates the
//     cross-shard pairs sharing a ψ-mer there, extending one shared
//     occurrence to a maximal match as the cascade seed. Any promising
//     pair (maximal match ≥ ψ) shares a ψ-mer, so cross-shard candidate
//     recall is exact — LSH banding only decides placement, never recall.
//  3. Per-shard RR, then CCD (rank groups): group g = ranks ≡ g (mod G)
//     serves shards ≡ g (mod G) sequentially, each shard an unchanged
//     master–worker phase (any pair backend) over the shard's subset.
//  4. Boundary merge (world comm): cross-shard candidates surviving a
//     static filter against the per-shard verdicts are aligned in place
//     on each owning rank; positive verdicts gather on rank 0, where RR
//     marks replay in a canonical order and CCD edges fold into a global
//     union–find (merges commute), followed by a global renumber.

// shardSig carries one rank's stripe of LSH band buckets (ShardBands
// per sequence, flattened) to the placement on rank 0.
type shardSig struct {
	Seqs  []int32
	Bands []uint64
}

// WireSize implements mpi.Sized.
func (s shardSig) WireSize() int { return 24 + 4*len(s.Seqs) + 8*len(s.Bands) }

// shardPost is one slice of the ψ-mer posting table in the all-to-all
// hash-partition exchange: parallel (sequence, offset, hash) triples.
type shardPost struct {
	Seq  []int32
	Off  []int32
	Hash []uint64
}

// WireSize implements mpi.Sized.
func (s shardPost) WireSize() int { return 32 + 4*(len(s.Seq)+len(s.Off)) + 8*len(s.Hash) }

// tagShardPost carries the posting-partition exchange, tagShardCtl the
// leader hops of tree broadcasts; both distinct from the master–worker
// tags so a stray phase message can never match them.
const (
	tagShardPost = 13
	tagShardCtl  = 14
)

// treeBcast broadcasts rank 0's data in two hops: world sends to the G
// group leaders (parent ranks 1..G-1; leader g is sub rank 0 of group g
// because sub ranks renumber by ascending parent rank), then concurrent
// sub-group broadcasts. Rank 0's link carries the payload G-1 times
// instead of p-1 — the difference between milliseconds and tens of
// milliseconds for corpus-sized arrays on a 64-rank job. Sequential
// calls share tagShardCtl safely: matching is FIFO per (sender, tag).
func treeBcast(c, sub *mpi.Comm, G int, data any) any {
	if c.Size() == 1 {
		return data
	}
	if c.Rank() == 0 {
		for g := 1; g < G; g++ {
			c.Send(g, tagShardCtl, data)
		}
	} else if c.Rank() < G {
		data = c.Recv(0, tagShardCtl).Data
	}
	return sub.Bcast(0, data)
}

// shardMask is a group leader's per-shard RR contribution: the IDs its
// shards marked redundant plus the summed phase stats.
type shardMask struct {
	Redundant []int32
	Stats     pace.Stats
}

// WireSize implements mpi.Sized.
func (m shardMask) WireSize() int { return 96 + 4*len(m.Redundant) }

// shardEdges is a group leader's per-shard CCD contribution: union edges
// (member → component label) reconstructing its shards' partitions.
type shardEdges struct {
	From, To []int32
	Stats    pace.Stats
}

// WireSize implements mpi.Sized.
func (e shardEdges) WireSize() int { return 96 + 4*(len(e.From)+len(e.To)) }

// shardVerdicts is one rank's boundary-pass result: the positive
// outcomes of its candidate stripe plus the counts feeding the stats.
type shardVerdicts struct {
	Results []pace.AlignOutcome
	Raw     int64 // candidates enumerated before dedup/filtering
	Tasks   int64 // candidates aligned after the static filter
	Cells   int64
}

// WireSize implements mpi.Sized.
func (v shardVerdicts) WireSize() int { return 40 + 29*len(v.Results) }

func registerShardWireTypes() {
	mpi.RegisterType(shardSig{})
	mpi.RegisterType(shardPost{})
	mpi.RegisterType(shardMask{})
	mpi.RegisterType(shardEdges{})
	mpi.RegisterType(shardVerdicts{})
}

func addStats(a, b pace.Stats) pace.Stats {
	a.PairsRaw += b.PairsRaw
	a.PairsGenerated += b.PairsGenerated
	a.PairsDuplicate += b.PairsDuplicate
	a.PairsClosure += b.PairsClosure
	a.PairsAligned += b.PairsAligned
	a.PairsPositive += b.PairsPositive
	a.Cells += b.Cells
	a.Rounds += b.Rounds
	a.TreeTime += b.TreeTime
	return a
}

// shardLabel formats the per-shard metric label value.
func shardLabel(s int) string { return strconv.Itoa(s) }

// shardAssignments runs the signature phase: striped MinHash + banding,
// a gather/broadcast so every rank holds every sequence's band buckets
// and the full posting table, then the deterministic placement. Two
// sequences sharing any band bucket must cluster together (classic LSH
// candidate grouping, closed transitively with a union–find), and whole
// clusters are placed greedily — largest first onto the least-loaded
// shard — so high-similarity groups never straddle shards while shard
// sizes stay balanced. Placement is a pure function of the corpus and
// the shard knobs: the bucket walk, cluster order and tie-breaks are all
// over ascending sequence IDs, never map iteration order.
func shardAssignments(c, sub *mpi.Comm, G int, set *seq.Set, cfg Config, costs pace.CostParams, reg *metrics.Registry) (primary []int32, posts shardPost) {
	n, p := set.Len(), c.Size()
	B := cfg.ShardBands
	fam := minhash.NewFamilyFixed(B*cfg.ShardRows, uint64(cfg.ShardSeed))
	var my shardSig
	parts := make([]shardPost, p)
	var sig, bkt []uint64
	var sigChars, sigOps int64
	for i := c.Rank(); i < n; i += p {
		res := set.Get(i).Res
		ps := minhash.KmerPostings(res, cfg.Psi)
		sigChars += int64(len(res)) * int64(cfg.Psi)
		sigOps += int64(len(ps)) * int64(len(fam.Perms))
		sig = fam.Signature(ps, sig)
		bkt = minhash.BandBuckets(sig, B, cfg.ShardRows, bkt)
		my.Seqs = append(my.Seqs, int32(i))
		my.Bands = append(my.Bands, bkt...)
		for _, po := range ps {
			d := &parts[po.Hash%uint64(p)]
			d.Seq = append(d.Seq, int32(i))
			d.Off = append(d.Off, po.Off)
			d.Hash = append(d.Hash, po.Hash)
		}
	}
	// Hashing cost mirrors the suffix-tree char calibration; permutation
	// evaluations are priced like the dense-subgraph phase's min-hash ops.
	c.Advance(float64(sigChars)*costs.SecPerTreeChar + float64(sigOps)*secPerShingleOp)

	// All-to-all: rank r keeps only the hash classes ≡ r (mod p), so the
	// posting table is partitioned, never replicated. Sends complete
	// asynchronously on every transport; receives match per sender.
	posts = parts[c.Rank()]
	for d := 0; d < p; d++ {
		if d != c.Rank() {
			c.Send(d, tagShardPost, parts[d])
		}
	}
	for s := 0; s < p; s++ {
		if s == c.Rank() {
			continue
		}
		g := c.Recv(s, tagShardPost).Data.(shardPost)
		posts.Seq = append(posts.Seq, g.Seq...)
		posts.Off = append(posts.Off, g.Off...)
		posts.Hash = append(posts.Hash, g.Hash...)
	}

	// Rank 0 clusters and places; everyone else just learns the result.
	gathered := c.Gather(0, my)
	primary = make([]int32, n)
	if c.Rank() == 0 {
		bands := make([]uint64, n*B)
		for _, g := range gathered {
			gs := g.(shardSig)
			for k, id := range gs.Seqs {
				copy(bands[int(id)*B:int(id)*B+B], gs.Bands[k*B:(k+1)*B])
			}
		}
		placeShards(bands, n, B, cfg.Shards, primary)
		c.Advance(float64(n*B) * secPerShingleOp)
		sizes := make([]int64, cfg.Shards)
		for _, s := range primary {
			sizes[s]++
		}
		var maxSz int64
		for s, sz := range sizes {
			reg.Counter(metrics.Name("pace_shard_seqs", "shard", shardLabel(s))).Add(sz)
			if sz > maxSz {
				maxSz = sz
			}
		}
		if n > 0 {
			mean := float64(n) / float64(cfg.Shards)
			reg.Gauge("pace_shard_imbalance").Set(float64(maxSz) / mean)
		}
	}
	primary = treeBcast(c, sub, G, primary).([]int32)
	return primary, posts
}

// placeShards writes the shard assignment into primary: sequences
// colliding in any LSH band are unioned into clusters (the key mixes in
// the band index so equal tuples in different bands stay distinct), then
// clusters are placed largest first (ties by smallest member) onto the
// currently lightest shard (ties by lowest index). Every walk is over
// ascending sequence IDs — never map iteration order — so the placement
// is a pure function of the bands.
func placeShards(bands []uint64, n, B, shards int, primary []int32) {
	type bandKey struct {
		t int
		h uint64
	}
	uf := unionfind.New(n)
	firstIn := make(map[bandKey]int, n)
	for i := 0; i < n; i++ {
		for t := 0; t < B; t++ {
			k := bandKey{t, bands[i*B+t]}
			if j, ok := firstIn[k]; ok {
				uf.Union(i, j)
			} else {
				firstIn[k] = i
			}
		}
	}
	var clusters [][]int
	clusterOf := make(map[int]int)
	for i := 0; i < n; i++ {
		r := uf.Find(i)
		ci, ok := clusterOf[r]
		if !ok {
			ci = len(clusters)
			clusterOf[r] = ci
			clusters = append(clusters, nil)
		}
		clusters[ci] = append(clusters[ci], i)
	}
	order := make([]int, len(clusters))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := clusters[order[a]], clusters[order[b]]
		if len(ca) != len(cb) {
			return len(ca) > len(cb)
		}
		return ca[0] < cb[0]
	})
	load := make([]int, shards)
	for _, ci := range order {
		s := 0
		for t := 1; t < shards; t++ {
			if load[t] < load[s] {
				s = t
			}
		}
		load[s] += len(clusters[ci])
		for _, i := range clusters[ci] {
			primary[i] = int32(s)
		}
	}
}

// boundaryCandidates enumerates this rank's stripe of cross-shard
// promising pairs: ψ-mer hash classes with hash ≡ rank (mod p), every
// cross-primary pair inside a class deduplicated and seeded with the
// maximal extension of the shared occurrence (byte-verified, so hash
// collisions cannot seed a bogus pair). The same pair discovered under
// two ψ-mers in different hash classes may be emitted by two ranks;
// verdicts are deterministic, so the downstream merge absorbs duplicates.
func boundaryCandidates(c *mpi.Comm, set *seq.Set, primary []int32, posts shardPost, cfg Config, costs pace.CostParams, reg *metrics.Registry) ([]pace.PairItem, int64) {
	type post struct {
		hash uint64
		seq  int32
		off  int32
	}
	mine := make([]post, len(posts.Hash))
	for k, h := range posts.Hash {
		mine[k] = post{hash: h, seq: posts.Seq[k], off: posts.Off[k]}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].hash != mine[j].hash {
			return mine[i].hash < mine[j].hash
		}
		if mine[i].seq != mine[j].seq {
			return mine[i].seq < mine[j].seq
		}
		return mine[i].off < mine[j].off
	})
	psi := cfg.Psi
	seen := make(map[int64]bool)
	var out []pace.PairItem
	var raw, scanChars int64
	for lo := 0; lo < len(mine); {
		hi := lo + 1
		for hi < len(mine) && mine[hi].hash == mine[lo].hash {
			hi++
		}
		for x := lo; x < hi; x++ {
			for y := x + 1; y < hi; y++ {
				a, b := mine[x], mine[y]
				if a.seq == b.seq || primary[a.seq] == primary[b.seq] {
					continue
				}
				raw++
				if a.seq > b.seq {
					a, b = b, a
				}
				key := int64(a.seq)<<32 | int64(uint32(b.seq))
				if seen[key] {
					continue
				}
				seen[key] = true
				ra, rb := set.Get(int(a.seq)).Res, set.Get(int(b.seq)).Res
				oa, ob := int(a.off), int(b.off)
				if !bytes.Equal(ra[oa:oa+psi], rb[ob:ob+psi]) {
					continue // 64-bit hash collision
				}
				ext := 0
				for oa-ext-1 >= 0 && ob-ext-1 >= 0 && ra[oa-ext-1] == rb[ob-ext-1] {
					ext++
				}
				length := psi
				for oa+length < len(ra) && ob+length < len(rb) && ra[oa+length] == rb[ob+length] {
					length++
				}
				scanChars += int64(ext + length)
				out = append(out, pace.PairItem{
					A: a.seq, B: b.seq,
					OffA: int32(oa - ext), OffB: int32(ob - ext),
					Len: int32(length + ext),
				})
			}
		}
		lo = hi
	}
	// Partition sort priced per posting at comparison width ψ (the sparse
	// backend's calibration); enumeration per raw pair; seed extension per
	// residue compared.
	c.Advance(float64(len(mine))*float64(psi)*costs.SecPerTreeChar +
		float64(raw)*costs.SecPerPairGen + float64(scanChars)*costs.SecPerTreeChar)
	reg.Counter("pace_shard_boundary_pairs").Add(int64(len(out)))
	return out, raw
}

// runShardedPhases executes phases 1+2 of the sharded pipeline and
// returns results shaped exactly like the single-master path: the global
// keep mask, component labels (smallest kept member per component, -1
// otherwise), the rank-0 union–find over the kept subset, and the two
// phases' summed stats. All returns except ccUF are rank-identical.
func runShardedPhases(c *mpi.Comm, set *seq.Set, cfg Config, pcfg pace.Config, reg *metrics.Registry, tracer *trace.Tracer, log *slog.Logger) (keep []bool, comp []int32, ccUF *unionfind.UF, rrStats, ccStats pace.Stats, err error) {
	n := set.Len()
	costs := pcfg.Costs
	if costs == (pace.CostParams{}) {
		costs = pace.DefaultCostParams()
	}

	// Rank groups: group g (ranks ≡ g mod G) serves shards ≡ g (mod G).
	// The split happens before the signature phase — the grouping depends
	// only on rank and shard count, and the sub-communicators double as
	// the second hop of the tree broadcasts below.
	G := cfg.Shards
	if p := c.Size(); G > p {
		G = p
	}
	color := c.Rank() % G
	sub := c.Split(color)
	sub.AttachMetrics(reg)
	if tracer != nil {
		sub.AttachTracer(tracer)
	}

	// Phase 0: signatures, shard assignment, boundary candidates.
	tracer.Instant(trace.CatPipeline, "phase:shard_sig", "shards", int64(cfg.Shards), "", 0)
	sigSpan := reg.StartSpan("shard/sig")
	primary, posts := shardAssignments(c, sub, G, set, cfg, costs, reg)
	sigSpan.End()
	bndSpan := reg.StartSpan("shard/boundary_index")
	candidates, rawBoundary := boundaryCandidates(c, set, primary, posts, cfg, costs, reg)
	bndSpan.End()
	posts = shardPost{} // release the posting partition

	shardIDs := make([][]int, cfg.Shards)
	for i := 0; i < n; i++ {
		s := primary[i]
		shardIDs[s] = append(shardIDs[s], i)
	}

	// Phase 1: per-shard redundancy removal, then the boundary pass.
	tracer.Instant(trace.CatPipeline, "phase:rr", "", 0, "", 0)
	rrStart := c.Time()
	rrSpan := reg.StartSpan("rr")
	var myMask shardMask
	for s := color; s < cfg.Shards; s += G {
		ids := shardIDs[s]
		if len(ids) == 0 {
			continue
		}
		subSet, orig := set.Subset(ids)
		keepSub, st, perr := pace.RedundancyRemovalPhase(sub, subSet, pcfg, fmt.Sprintf("rr@s%d", s))
		if perr != nil {
			return nil, nil, nil, rrStats, ccStats, perr
		}
		if sub.Rank() == 0 {
			for j, k := range keepSub {
				if !k {
					myMask.Redundant = append(myMask.Redundant, int32(orig[j]))
				}
			}
			myMask.Stats = addStats(myMask.Stats, st)
			reg.Counter(metrics.Name("pace_shard_pairs", "shard", shardLabel(s))).Add(st.PairsGenerated)
		}
	}
	redundant := make([]bool, n)
	gatheredM := c.Gather(0, myMask)
	if c.Rank() == 0 {
		for _, g := range gatheredM {
			m := g.(shardMask)
			for _, id := range m.Redundant {
				redundant[id] = true
			}
			rrStats = addStats(rrStats, m.Stats)
		}
	}
	redundant = treeBcast(c, sub, G, redundant).([]bool)

	// Boundary RR: candidates whose sides both survived their shards are
	// aligned in place; positive verdicts replay on rank 0 in a canonical
	// order (container length desc, contained length desc, then IDs) so
	// the final mask is a pure function of the verdict set.
	var rrTasks []pace.PairItem
	for _, t := range candidates {
		if !redundant[t.A] && !redundant[t.B] {
			rrTasks = append(rrTasks, t)
		}
	}
	c.Advance(float64(len(candidates)) * costs.SecPerPairFilter)
	rrOut := pace.AlignContainPairs(c, set, rrTasks, pcfg, "rr@boundary")
	v := shardVerdicts{Raw: rawBoundary, Tasks: int64(len(rrTasks))}
	for _, o := range rrOut {
		v.Cells += o.Cells
		if o.OK {
			v.Results = append(v.Results, o)
		}
	}
	gatheredV := c.Gather(0, v)
	var demoted []int32
	if c.Rank() == 0 {
		var pos []pace.AlignOutcome
		for _, g := range gatheredV {
			gv := g.(shardVerdicts)
			rrStats.PairsRaw += gv.Raw
			rrStats.PairsGenerated += gv.Tasks
			rrStats.PairsAligned += gv.Tasks
			rrStats.PairsPositive += int64(len(gv.Results))
			rrStats.Cells += gv.Cells
			pos = append(pos, gv.Results...)
		}
		sort.Slice(pos, func(i, j int) bool {
			ci, di := containerContained(pos[i])
			cj, dj := containerContained(pos[j])
			li, lj := len(set.Get(int(ci)).Res), len(set.Get(int(cj)).Res)
			if li != lj {
				return li > lj
			}
			mi, mj := len(set.Get(int(di)).Res), len(set.Get(int(dj)).Res)
			if mi != mj {
				return mi > mj
			}
			if ci != cj {
				return ci < cj
			}
			return di < dj
		})
		for _, o := range pos {
			container, contained := containerContained(o)
			if !redundant[container] && !redundant[contained] {
				redundant[contained] = true
				demoted = append(demoted, contained)
			}
		}
	}
	// Every rank already holds the pre-replay mask; only the replay's
	// marks (a handful of IDs) need the wire.
	demoted = treeBcast(c, sub, G, demoted).([]int32)
	keep = make([]bool, n)
	for i := range keep {
		keep[i] = !redundant[i]
	}
	for _, id := range demoted {
		keep[id] = false
	}
	rrSpan.End()
	rrEnd := c.MaxFloat64(c.Time())
	if c.Rank() == 0 {
		rrStats.PhaseTime = rrEnd - rrStart
	}

	// Phase 2: per-shard connected components, then the boundary merge.
	tracer.Instant(trace.CatPipeline, "phase:ccd", "", 0, "", 0)
	ccStart := c.Time()
	ccdSpan := reg.StartSpan("ccd")
	var myEdges shardEdges
	for s := color; s < cfg.Shards; s += G {
		shardKeep := make([]bool, n)
		cnt := 0
		for _, i := range shardIDs[s] {
			if keep[i] {
				shardKeep[i] = true
				cnt++
			}
		}
		if cnt == 0 {
			continue
		}
		compS, _, st, perr := pace.ConnectedComponentsPhase(sub, set, shardKeep, pcfg, fmt.Sprintf("ccd@s%d", s))
		if perr != nil {
			return nil, nil, nil, rrStats, ccStats, perr
		}
		if sub.Rank() == 0 {
			for i, l := range compS {
				if l >= 0 && int32(i) != l {
					myEdges.From = append(myEdges.From, int32(i))
					myEdges.To = append(myEdges.To, l)
				}
			}
			myEdges.Stats = addStats(myEdges.Stats, st)
			reg.Counter(metrics.Name("pace_shard_pairs", "shard", shardLabel(s))).Add(st.PairsGenerated)
		}
	}
	gatheredE := c.Gather(0, myEdges)
	var uf *unionfind.UF
	interim := make([]int32, n)
	if c.Rank() == 0 {
		uf = unionfind.New(n)
		for _, g := range gatheredE {
			ge := g.(shardEdges)
			for k := range ge.From {
				uf.Union(int(ge.From[k]), int(ge.To[k]))
			}
			ccStats = addStats(ccStats, ge.Stats)
		}
		labelComponents(uf, keep, interim)
	}
	interim = treeBcast(c, sub, G, interim).([]int32)

	// Boundary CCD: cross-shard candidates joining two still-distinct
	// components are union edges after a positive overlap alignment.
	// Union–find merges commute, so the gather order cannot matter.
	var ccTasks []pace.PairItem
	for _, t := range candidates {
		if keep[t.A] && keep[t.B] && interim[t.A] != interim[t.B] {
			ccTasks = append(ccTasks, t)
		}
	}
	c.Advance(float64(len(candidates)) * costs.SecPerPairFilter)
	ccOut := pace.AlignOverlapPairs(c, set, ccTasks, pcfg, "ccd@boundary")
	vc := shardVerdicts{Raw: rawBoundary, Tasks: int64(len(ccTasks))}
	for _, o := range ccOut {
		vc.Cells += o.Cells
		if o.OK {
			vc.Results = append(vc.Results, o)
		}
	}
	gatheredV = c.Gather(0, vc)
	comp = make([]int32, n)
	if c.Rank() == 0 {
		for _, g := range gatheredV {
			gv := g.(shardVerdicts)
			ccStats.PairsGenerated += gv.Tasks
			ccStats.PairsAligned += gv.Tasks
			ccStats.PairsPositive += int64(len(gv.Results))
			ccStats.Cells += gv.Cells
			for _, o := range gv.Results {
				uf.Union(int(o.A), int(o.B))
			}
		}
		labelComponents(uf, keep, comp)
	}
	comp = treeBcast(c, sub, G, comp).([]int32)
	ccdSpan.End()
	ccEnd := c.MaxFloat64(c.Time())

	// Commitability: the kept-subset union–find, in the same sub-ID space
	// ConnectedComponentsFrom uses (kept IDs renumbered ascending).
	if c.Rank() == 0 {
		ccStats.PhaseTime = ccEnd - ccStart
		subOf := make(map[int]int, n)
		var kept []int
		for i := 0; i < n; i++ {
			if keep[i] {
				subOf[i] = len(kept)
				kept = append(kept, i)
			}
		}
		ccUF = unionfind.New(len(kept))
		for _, i := range kept {
			ccUF.Union(subOf[i], subOf[int(comp[i])])
		}
	}
	rrStats = c.Bcast(0, rrStats).(pace.Stats)
	ccStats = c.Bcast(0, ccStats).(pace.Stats)
	if c.Rank() == 0 {
		log.Info("sharded phases done",
			"shards", cfg.Shards, "groups", G,
			"boundary_tasks", len(rrTasks)+len(ccTasks), "t", c.Time())
	}
	return keep, comp, ccUF, rrStats, ccStats, nil
}

// containerContained orients an RR outcome: Which == 1 means B was the
// contained side (mirroring rrMaster.absorb).
func containerContained(o pace.AlignOutcome) (container, contained int32) {
	if o.Which == 1 {
		return o.A, o.B
	}
	return o.B, o.A
}

// labelComponents writes the canonical component labeling of uf into
// comp: every kept sequence gets the smallest kept member ID of its
// component (the first visit in ascending order is the smallest), every
// other sequence -1 — the exact labeling ConnectedComponentsFrom emits.
func labelComponents(uf *unionfind.UF, keep []bool, comp []int32) {
	for i := range comp {
		comp[i] = -1
	}
	rootLabel := make(map[int]int32)
	for i := range comp {
		if !keep[i] {
			continue
		}
		r := uf.Find(i)
		if _, ok := rootLabel[r]; !ok {
			rootLabel[r] = int32(i)
		}
		comp[i] = rootLabel[r]
	}
}
