package profam

import (
	"errors"
	"fmt"

	"profam/internal/mpi"
	"profam/internal/seq"
	"profam/internal/unionfind"
)

// ErrAborted is returned by epoch runs cancelled through Config.Abort.
// The failed run's metrics and trace snapshots are stashed via
// metrics.StashFailed / trace.StashFailed, exactly like any other
// pipeline error.
var ErrAborted = errors.New("profam: run aborted")

// ErrConfigChanged rejects an incremental epoch whose configuration
// differs (in any family-affecting knob) from the one the prior state
// was built under. The incremental == cold determinism contract only
// holds when every epoch agrees on those knobs; callers must rebuild
// from scratch after a config change.
var ErrConfigChanged = errors.New("profam: config differs from committed epoch state")

// EpochState is the committed clustering state after some number of
// ingest epochs: the corpus so far plus everything the next epoch needs
// to avoid reclustering it — redundancy verdicts, the kept-subset
// union–find, and the per-component family cache. It is immutable once
// returned: RunEpoch never mutates its input state, so an aborted or
// failed epoch leaves the committed state (and anything serving from it)
// untouched. The zero of the type is not useful; start from
// NewEpochState (epoch 0, empty corpus).
type EpochState struct {
	set         *seq.Set
	redundant   []bool
	uf          *unionfind.UF
	famCache    map[uint64]famEntry
	epoch       int
	fingerprint string
}

// NewEpochState returns the empty starting state (epoch 0).
func NewEpochState() *EpochState {
	return &EpochState{set: seq.NewSet()}
}

// Epoch returns how many epochs have been committed into this state.
func (s *EpochState) Epoch() int { return s.epoch }

// NumSequences returns the corpus size.
func (s *EpochState) NumSequences() int { return s.set.Len() }

// Set exposes the accumulated corpus. Callers must treat it as
// read-only.
func (s *EpochState) Set() *seq.Set { return s.set }

// RunEpoch clusters the union of prior's corpus and the new sequences on
// p in-process ranks, incrementally: only pairs involving at least one
// new sequence are aligned, prior redundancy and component verdicts are
// reused, and components untouched by the new arrivals skip the family
// phases entirely via the prior's family cache. The returned Result is
// byte-identical to a cold run over the union corpus (the determinism
// contract; see DESIGN.md §9) and covers the whole corpus, with sequence
// IDs assigned in arrival order. On success the second return is the
// next committed state; on any error — including ErrAborted — it is
// prior, unchanged. Empty names default to "seq<ID>" by union-corpus
// position, matching Run.
func RunEpoch(prior *EpochState, names, seqs []string, p int, cfg Config) (*Result, *EpochState, error) {
	if prior == nil {
		prior = NewEpochState()
	}
	if names == nil {
		names = make([]string, len(seqs))
	}
	if len(names) != len(seqs) {
		return nil, prior, fmt.Errorf("profam: %d names but %d sequences", len(names), len(seqs))
	}
	fp := cfg.epochFingerprint()
	if prior.epoch > 0 && prior.fingerprint != fp {
		return nil, prior, ErrConfigChanged
	}

	// The union corpus: prior sequences keep their IDs (the Sequence
	// records are immutable, so sharing them with the committed set is
	// safe), new arrivals are appended in submission order.
	union := &seq.Set{Seqs: append(make([]*seq.Sequence, 0, prior.set.Len()+len(seqs)), prior.set.Seqs...)}
	for i := range seqs {
		name := names[i]
		if name == "" {
			name = fmt.Sprintf("seq%d", union.Len())
		}
		if _, err := union.Add(name, seqs[i]); err != nil {
			return nil, prior, err
		}
	}

	var ep *epochPrior
	if prior.epoch > 0 {
		ep = &epochPrior{
			newFrom:   prior.set.Len(),
			redundant: prior.redundant,
			uf:        prior.uf,
			famCache:  prior.famCache,
		}
	}

	cfg = cfg.withAutoThreads(p)
	var res *Result
	var post *epochPost
	var rerr error
	err := mpi.Run(p, func(c *mpi.Comm) {
		r, po, e := runEpochPipeline(c, union, cfg, ep)
		if c.Rank() == 0 {
			res, post, rerr = r, po, e
		}
	})
	if err != nil {
		return nil, prior, err
	}
	if rerr != nil {
		return nil, prior, rerr
	}
	next := &EpochState{
		set:         union,
		redundant:   post.redundant,
		uf:          post.uf,
		famCache:    post.famCache,
		epoch:       prior.epoch + 1,
		fingerprint: fp,
	}
	return res, next, nil
}
