package profam_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"profam"
	"profam/internal/workload"
)

// TestPipelineInvariantsProperty runs the full pipeline on random small
// workloads and checks the structural invariants that must hold for any
// input:
//
//  1. keep ⊆ input; components and families contain only kept sequences;
//  2. families are pairwise disjoint and each lies inside one component;
//  3. family sizes respect MinFamilySize and are sorted descending;
//  4. densities are in [0, 1] (+ epsilon) for the B_d reduction;
//  5. serial and 3-rank parallel runs agree on the keep mask.
func TestPipelineInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set, _ := workload.Generate(workload.Params{
			Families:       1 + rng.Intn(4),
			MeanFamilySize: 3 + rng.Intn(8),
			MeanLength:     50 + rng.Intn(80),
			Divergence:     0.05 + rng.Float64()*0.10,
			IndelRate:      rng.Float64() * 0.01,
			ContainedFrac:  rng.Float64() * 0.3,
			Subfamilies:    1 + rng.Intn(3),
			Singletons:     1 + rng.Intn(4),
			Seed:           seed,
		})
		cfg := profam.Config{
			Psi:              6,
			MinComponentSize: 2,
			MinFamilySize:    2 + rng.Intn(3),
			BatchPairs:       64 + rng.Intn(512),
			BatchTasks:       16 + rng.Intn(128),
		}
		res, _, err := profam.RunSet(set, 1, false, cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}

		if len(res.Keep) != set.Len() || res.NumInput != set.Len() {
			return false
		}
		kept := 0
		for _, k := range res.Keep {
			if k {
				kept++
			}
		}
		if kept != res.NumNonRedundant {
			return false
		}

		compOf := map[int]int{}
		for ci, comp := range res.Components {
			for _, id := range comp {
				if id < 0 || id >= set.Len() || !res.Keep[id] {
					return false
				}
				compOf[id] = ci
			}
		}

		seen := map[int]bool{}
		lastSize := 1 << 30
		for _, fam := range res.Families {
			if fam.Size() < cfg.MinFamilySize || fam.Size() > lastSize {
				return false
			}
			lastSize = fam.Size()
			if fam.Density < 0 || fam.Density > 1.0001 {
				return false
			}
			famComp := -1
			for _, id := range fam.Members {
				if seen[id] || !res.Keep[id] {
					return false
				}
				seen[id] = true
				ci, ok := compOf[id]
				if !ok {
					return false
				}
				if famComp < 0 {
					famComp = ci
				} else if famComp != ci {
					return false
				}
			}
		}

		// Serial and parallel runs may disagree on a few borderline
		// redundancy decisions: the paper's skip-if-already-redundant
		// heuristic makes the outcome of containment *chains* (a⊂b⊂c)
		// depend on result arrival order, and the arrival-order service
		// loop widens the space of orders beyond lockstep's rank cycle.
		// Require the disagreement to stay marginal.
		par, _, err := profam.RunSet(set, 3, false, cfg)
		if err != nil {
			return false
		}
		differs := 0
		for i := range res.Keep {
			if res.Keep[i] != par.Keep[i] {
				differs++
			}
		}
		limit := set.Len()/10 + 3
		if differs > limit {
			t.Logf("seed %d: %d keep decisions differ serial vs parallel (limit %d)", seed, differs, limit)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
