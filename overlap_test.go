package profam_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"profam"
	"profam/internal/experiments"
	"profam/internal/mpi"
)

// TestOverlapProtocolWin pins the PR's headline number: on a simulated
// 4-rank mesh with one straggler link (the regime the lockstep round
// barrier handles worst), the overlapped arrival-order protocol must
// cut the virtual makespan by >= 1.2x and the workers' task-wait share
// by >= 2x. The simulator is deterministic, so these are exact
// reproducible measurements, not flaky wall-clock ones.
func TestOverlapProtocolWin(t *testing.T) {
	const p = 4
	st, err := experiments.OverlapWin(experiments.OverlapCorpus(), experiments.OverlapConfig(), p, experiments.StragglerLink(p))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("makespan %.4fs -> %.4fs (%.2fx), task-wait share %.3f -> %.3f (%.1fx)",
		st.MakespanLockstep, st.MakespanOverlap, st.Speedup(),
		st.TaskWaitShareLockstep, st.TaskWaitShareOverlap, st.WaitReduction())
	if st.Speedup() < 1.2 {
		t.Errorf("overlap speedup %.2fx, want >= 1.2x", st.Speedup())
	}
	if st.WaitReduction() < 2 {
		t.Errorf("task-wait share reduction %.1fx, want >= 2x", st.WaitReduction())
	}
}

// TestFamiliesArrivalOrderInvariant: the arrival-order master serves
// requests in whatever order the network delivers them, so the proof
// obligation is that the *results* cannot depend on that order. Skewing
// per-link latencies permutes arrivals; across all permutations, thread
// counts, and against the lockstep reference, the surviving sequences,
// components and families must be identical.
func TestFamiliesArrivalOrderInvariant(t *testing.T) {
	set := experiments.OverlapCorpus()
	base := experiments.OverlapConfig()

	run := func(p, threads int, lockstep bool, cm mpi.CostModel) *profam.Result {
		t.Helper()
		cfg := base
		cfg.Lockstep = lockstep
		cfg.ThreadsPerRank = threads
		cfg.TraceCapacity = 1 << 16
		var res *profam.Result
		_, err := mpi.RunSim(p, cm, func(c *mpi.Comm) {
			r, e := profam.RunPipelineOn(c, set, cfg)
			if e != nil {
				panic(e)
			}
			if c.Rank() == 0 {
				res = r
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Three deliberately different delivery-order regimes: uniform
	// links, a straggler, and a per-link skew that scrambles arrival
	// interleaving across the whole mesh.
	models := func(p int) []mpi.CostModel {
		uniform := experiments.ClusterLike()
		skew := experiments.ClusterLike()
		baseLat := skew.Latency
		skew.Latency = 0
		skew.RankLatency = func(from, to int) float64 {
			return baseLat * float64(1+(3*from+5*to)%7)
		}
		return []mpi.CostModel{uniform, experiments.StragglerLink(p), skew}
	}

	for _, p := range []int{1, 2, 4} {
		ref := run(p, 1, true, experiments.ClusterLike())
		// At p=2 the single worker's FIFO pins the service order, so the
		// overlapped protocol's canonical metrics and trace must also be
		// timing-invariant: identical across every latency permutation
		// and thread count. (At p>2 the service order — and with it the
		// filter-effectiveness counters — legitimately depends on
		// arrival interleaving; only the results are invariant there.)
		var canonMetrics, canonTrace string
		for _, threads := range []int{1, 4} {
			for mi, cm := range models(p) {
				got := run(p, threads, false, cm)
				tag := fmt.Sprintf("p=%d threads=%d model=%d", p, threads, mi)
				if fmt.Sprint(got.Keep) != fmt.Sprint(ref.Keep) {
					t.Errorf("%s: keep mask differs from lockstep reference", tag)
				}
				if fmt.Sprint(got.Components) != fmt.Sprint(ref.Components) {
					t.Errorf("%s: components differ from lockstep reference", tag)
				}
				if fmt.Sprint(got.Families) != fmt.Sprint(ref.Families) {
					t.Errorf("%s: families differ from lockstep reference", tag)
				}
				if p != 2 {
					continue
				}
				var mbuf bytes.Buffer
				if err := got.Metrics.Canonical().WriteJSON(&mbuf); err != nil {
					t.Fatal(err)
				}
				tbuf, err := json.Marshal(got.Trace.Canonical())
				if err != nil {
					t.Fatal(err)
				}
				if canonMetrics == "" {
					canonMetrics, canonTrace = mbuf.String(), string(tbuf)
					continue
				}
				if mbuf.String() != canonMetrics {
					t.Errorf("%s: canonical metrics differ across timing permutations", tag)
				}
				if string(tbuf) != canonTrace {
					t.Errorf("%s: canonical trace differs across timing permutations", tag)
				}
			}
		}
	}
}
