// Package esa builds the maximal-match index as an enhanced suffix array
// (suffix array + LCP array + bottom-up lcp-interval enumeration,
// Abouelhoda et al. 2004) — an alternative to the generalized suffix
// tree of internal/suffixtree with a flatter memory profile.
//
// The output is the *same structure* (suffixtree.SubTree: DFS-ordered
// leaves plus internal nodes with child bounds), because the suffix
// array order of a bucket's suffixes is a DFS leaf order of the
// corresponding tree, and each lcp-interval of depth d with its
// lcp==d split positions is exactly a tree node with its children.
// Maximal-match pair enumeration therefore produces an identical pair
// set, which the tests verify exhaustively.
//
// One representational difference: suffixes that end exactly at depth d
// sort adjacently with pairwise lcp == d, so they split into singleton
// child intervals instead of one terminator child. Their right-maximal
// pairs are then emitted as ordinary cross-child pairs, making the
// terminator special case (TermChild) unnecessary.
package esa

import (
	"bytes"
	"sort"

	"profam/internal/seq"
	"profam/internal/suffixtree"
)

// BuildBucket constructs the index for one bucket as a
// suffixtree.SubTree ready for pair enumeration.
func BuildBucket(set *seq.Set, b suffixtree.Bucket, opt suffixtree.Options) (*suffixtree.SubTree, error) {
	opt, err := opt.Validate()
	if err != nil {
		return nil, err
	}

	n := len(b.Suffixes)
	t := &suffixtree.SubTree{}
	if n == 0 {
		return t, nil
	}

	suf := func(s suffixtree.Suffix) []byte {
		return set.Seqs[s.Seq].Res[s.Off:]
	}

	// Suffix array: sort the bucket's suffixes lexicographically. A
	// shorter suffix that is a prefix of a longer one sorts first — the
	// terminator-is-least convention of the tree (bytes.Compare gives
	// exactly that order). Every suffix in the bucket shares its first
	// pl residues, so a counting pass on the residue just past the
	// shared prefix splits the sort into independent single-byte groups
	// — suffixes ending at the prefix take key 0, least — and the
	// comparator then only ever runs within a group, starting past the
	// known-equal prefix.
	pl := len(b.Prefix)
	key := func(s suffixtree.Suffix) int {
		r := set.Seqs[s.Seq].Res
		if int(s.Off)+pl >= len(r) {
			return 0
		}
		return int(r[int(s.Off)+pl])
	}
	rest := func(s suffixtree.Suffix) []byte {
		return set.Seqs[s.Seq].Res[int(s.Off)+pl:]
	}
	var bounds [257]int32
	for _, s := range b.Suffixes {
		bounds[key(s)+1]++
	}
	for k := 1; k < len(bounds); k++ {
		bounds[k] += bounds[k-1]
	}
	order := make([]suffixtree.Suffix, n)
	pos := bounds
	for _, s := range b.Suffixes {
		k := key(s)
		order[pos[k]] = s
		pos[k]++
	}
	for k := 0; k < 256; k++ {
		g := order[bounds[k]:bounds[k+1]]
		if len(g) < 2 {
			continue
		}
		sort.Slice(g, func(i, j int) bool {
			if c := bytes.Compare(rest(g[i]), rest(g[j])); c != 0 {
				return c < 0
			}
			// Total order for determinism.
			if g[i].Seq != g[j].Seq {
				return g[i].Seq < g[j].Seq
			}
			return g[i].Off < g[j].Off
		})
	}

	// Leaves in suffix-array order, with left characters.
	t.Leaves = make([]suffixtree.Leaf, n)
	for i, s := range order {
		var left byte
		if s.Off > 0 {
			left = set.Seqs[s.Seq].Res[s.Off-1]
		}
		t.Leaves[i] = suffixtree.Leaf{Seq: s.Seq, Off: s.Off, Left: left}
	}

	// LCP array: lcp[i] = longest common prefix of sorted suffixes i-1
	// and i, for i in 1..n-1.
	lcp := make([]int32, n)
	for i := 1; i < n; i++ {
		a, c := suf(order[i-1]), suf(order[i])
		m := len(a)
		if len(c) < m {
			m = len(c)
		}
		var l int32
		for int(l) < m && a[l] == c[l] {
			l++
		}
		lcp[i] = l
	}

	// Bottom-up lcp-interval enumeration.
	type interval struct {
		depth int32
		lb    int32
	}
	stack := []interval{{depth: 0, lb: 0}}
	emit := func(depth, lb, rb int32) {
		if depth < int32(opt.MinMatch) {
			return
		}
		// Children: split [lb, rb] at inner positions j with lcp[j] ==
		// depth (each j starts a new child).
		bounds := []int32{lb}
		for j := lb + 1; j <= rb; j++ {
			if lcp[j] == depth {
				bounds = append(bounds, j)
			}
		}
		bounds = append(bounds, rb+1)
		if len(bounds) < 3 {
			return // single child: not a branching node
		}
		t.Nodes = append(t.Nodes, suffixtree.Node{
			Depth:     depth,
			Bounds:    bounds,
			TermChild: -1,
		})
	}
	for i := int32(1); i <= int32(n); i++ {
		var l int32
		if int(i) < n {
			l = lcp[i]
		}
		lb := i - 1
		for len(stack) > 1 && stack[len(stack)-1].depth > l {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			emit(top.depth, top.lb, i-1)
			lb = top.lb
		}
		if stack[len(stack)-1].depth < l {
			stack = append(stack, interval{depth: l, lb: lb})
		}
	}

	sort.SliceStable(t.Nodes, func(i, j int) bool { return t.Nodes[i].Depth > t.Nodes[j].Depth })
	return t, nil
}

// Build constructs indexes for all buckets serially, mirroring
// suffixtree.Build.
func Build(set *seq.Set, opt suffixtree.Options) ([]*suffixtree.SubTree, error) {
	buckets, err := suffixtree.Buckets(set, opt)
	if err != nil {
		return nil, err
	}
	out := make([]*suffixtree.SubTree, 0, len(buckets))
	for _, b := range buckets {
		t, err := BuildBucket(set, b, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
