package esa

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"profam/internal/seq"
	"profam/internal/suffixtree"
)

const residues = "ACDEFG"

func randomSet(rng *rand.Rand, nseq, maxLen int) *seq.Set {
	set := seq.NewSet()
	for i := 0; i < nseq; i++ {
		n := 1 + rng.Intn(maxLen)
		b := make([]byte, n)
		for j := range b {
			b[j] = residues[rng.Intn(len(residues))]
		}
		set.MustAdd(fmt.Sprintf("s%d", i), string(b))
	}
	return set
}

func pairSet(trees []*suffixtree.SubTree) map[suffixtree.Pair]bool {
	out := map[suffixtree.Pair]bool{}
	suffixtree.MergedPairs(trees, func(p suffixtree.Pair) bool {
		out[p] = true
		return true
	})
	return out
}

// TestMatchesSuffixTree: the ESA must emit exactly the same maximal-match
// pair set as the suffix tree on the same input.
func TestMatchesSuffixTree(t *testing.T) {
	set := seq.NewSet()
	set.MustAdd("a", "ACDEFGACDEFGAC")
	set.MustAdd("b", "CDEFGACD")
	set.MustAdd("c", "ACDEFG")
	set.MustAdd("d", "ACDEFG") // identical pair exercises end-at-depth handling
	for _, psi := range []int{2, 3, 4, 6} {
		opt := suffixtree.Options{MinMatch: psi}
		want, err := suffixtree.Build(set, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Build(set, opt)
		if err != nil {
			t.Fatal(err)
		}
		w, g := pairSet(want), pairSet(got)
		if len(w) != len(g) {
			t.Errorf("psi=%d: esa %d pairs, tree %d", psi, len(g), len(w))
		}
		for p := range w {
			if !g[p] {
				t.Errorf("psi=%d: esa missing %+v", psi, p)
			}
		}
		for p := range g {
			if !w[p] {
				t.Errorf("psi=%d: esa extra %+v", psi, p)
			}
		}
	}
}

// Property: pair-set equality on random inputs across psi and prefix
// settings.
func TestMatchesSuffixTreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set := randomSet(rng, 2+rng.Intn(6), 50)
		psi := 2 + rng.Intn(4)
		opt := suffixtree.Options{MinMatch: psi, PrefixLen: 1 + rng.Intn(2)}
		if opt.PrefixLen > psi {
			opt.PrefixLen = psi
		}
		want, err := suffixtree.Build(set, opt)
		if err != nil {
			return false
		}
		got, err := Build(set, opt)
		if err != nil {
			return false
		}
		w, g := pairSet(want), pairSet(got)
		if len(w) != len(g) {
			t.Logf("seed %d: esa %d pairs vs tree %d", seed, len(g), len(w))
			return false
		}
		for p := range w {
			if !g[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestDecreasingOrder: per-bucket enumeration must be non-increasing in
// match length (so the pace phases can use either index).
func TestDecreasingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	set := randomSet(rng, 6, 60)
	trees, err := Build(set, suffixtree.Options{MinMatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trees {
		last := int32(1 << 30)
		tr.ForEachPair(func(p suffixtree.Pair) bool {
			if p.Len > last {
				t.Fatal("pair lengths increased within bucket")
			}
			last = p.Len
			return true
		})
	}
}

func TestLowComplexityRuns(t *testing.T) {
	set := seq.NewSet()
	set.MustAdd("a", "AAAAAAAA")
	set.MustAdd("b", "AAAA")
	opt := suffixtree.Options{MinMatch: 2}
	want, _ := suffixtree.Build(set, opt)
	got, err := Build(set, opt)
	if err != nil {
		t.Fatal(err)
	}
	w, g := pairSet(want), pairSet(got)
	if fmt.Sprint(len(w)) != fmt.Sprint(len(g)) {
		t.Fatalf("runs: esa %d pairs vs tree %d", len(g), len(w))
	}
	for p := range w {
		if !g[p] {
			t.Fatalf("missing %+v", p)
		}
	}
}

func TestEmptyBucketAndValidation(t *testing.T) {
	set := seq.NewSet()
	set.MustAdd("a", "ACDEFG")
	tr, err := BuildBucket(set, suffixtree.Bucket{}, suffixtree.Options{MinMatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Leaves) != 0 || len(tr.Nodes) != 0 {
		t.Error("empty bucket produced content")
	}
	if _, err := BuildBucket(set, suffixtree.Bucket{}, suffixtree.Options{}); err == nil {
		t.Error("invalid options accepted")
	}
}

func BenchmarkBuildESA(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	set := randomSet(rng, 200, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(set, suffixtree.Options{MinMatch: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkESABuild stresses the suffix-array sort harder than
// BenchmarkBuildESA: a bigger corpus over a 6-letter alphabet produces
// deep buckets with long shared prefixes, which is where the radix
// presort and bytes.Compare comparator earn their keep.
func BenchmarkESABuild(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	set := randomSet(rng, 400, 300)
	opt := suffixtree.Options{MinMatch: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(set, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildTreeReference(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	set := randomSet(rng, 200, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := suffixtree.Build(set, suffixtree.Options{MinMatch: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
