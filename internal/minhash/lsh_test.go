package minhash

import (
	"testing"
)

func TestNewFamilyFixedDeterministic(t *testing.T) {
	a := NewFamilyFixed(16, 42)
	b := NewFamilyFixed(16, 42)
	if len(a.Perms) != 16 {
		t.Fatalf("got %d perms", len(a.Perms))
	}
	for i := range a.Perms {
		if a.Perms[i] != b.Perms[i] {
			t.Fatalf("perm %d differs across constructions: %v vs %v", i, a.Perms[i], b.Perms[i])
		}
		if a.Perms[i].A == 0 || a.Perms[i].A >= MersennePrime61 {
			t.Fatalf("perm %d coefficient a=%d outside [1, p)", i, a.Perms[i].A)
		}
		if a.Perms[i].B >= MersennePrime61 {
			t.Fatalf("perm %d coefficient b=%d outside [0, p)", i, a.Perms[i].B)
		}
	}
	c := NewFamilyFixed(16, 43)
	same := 0
	for i := range a.Perms {
		if a.Perms[i] == c.Perms[i] {
			same++
		}
	}
	if same == 16 {
		t.Fatal("adjacent seeds produced identical families")
	}
}

func TestKmerPostings(t *testing.T) {
	res := []byte("ABCABCAB")
	ps := KmerPostings(res, 3)
	// Distinct 3-mers: ABC (off 0), BCA (1), CAB (2) — repeats keep the
	// first offset only.
	if len(ps) != 3 {
		t.Fatalf("got %d postings, want 3: %v", len(ps), ps)
	}
	seen := map[uint64]int32{}
	for i, p := range ps {
		if i > 0 && ps[i-1].Hash >= p.Hash {
			t.Fatalf("postings not strictly ascending by hash: %v", ps)
		}
		seen[p.Hash] = p.Off
	}
	if off, ok := seen[KmerHash([]byte("ABC"))]; !ok || off != 0 {
		t.Fatalf("ABC first occurrence: got %d", off)
	}
	if off, ok := seen[KmerHash([]byte("CAB"))]; !ok || off != 2 {
		t.Fatalf("CAB first occurrence: got %d", off)
	}
	if got := KmerPostings([]byte("AB"), 3); got != nil {
		t.Fatalf("short sequence should have no postings, got %v", got)
	}
}

func TestSignatureAndBands(t *testing.T) {
	f := NewFamilyFixed(8, 7)
	pa := KmerPostings([]byte("MKVLATTRWQPLDNSEAGHIKF"), 8)
	pb := KmerPostings([]byte("MKVLATTRWQPLDNSEAGHIKF"), 8)
	sa := f.Signature(pa, nil)
	sb := f.Signature(pb, nil)
	for j := range sa {
		if sa[j] != sb[j] {
			t.Fatalf("identical sequences disagree at row %d", j)
		}
		if sa[j] >= MersennePrime61 {
			t.Fatalf("non-empty signature row %d hit the sentinel", j)
		}
	}
	empty := f.Signature(nil, nil)
	for j := range empty {
		if empty[j] != MersennePrime61 {
			t.Fatalf("empty signature row %d = %d, want sentinel", j, empty[j])
		}
	}
	ba := BandBuckets(sa, 4, 2, nil)
	bb := BandBuckets(sb, 4, 2, nil)
	if len(ba) != 4 {
		t.Fatalf("got %d buckets", len(ba))
	}
	for t2 := range ba {
		if ba[t2] != bb[t2] {
			t.Fatalf("identical signatures bucket differently in band %d", t2)
		}
	}
	// A different sequence must (with these fixed seeds) land elsewhere in
	// at least one band.
	pc := KmerPostings([]byte("GGGGGGGGGGGGGGGGGGGGGG"), 8)
	bc := BandBuckets(f.Signature(pc, nil), 4, 2, nil)
	diff := false
	for t2 := range ba {
		if ba[t2] != bc[t2] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("unrelated sequences collided in every band")
	}
}
