package minhash

import (
	"math/big"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestMulModAgainstBigInt checks the 128-bit modular multiply against
// math/big on random operands.
func TestMulModAgainstBigInt(t *testing.T) {
	p := big.NewInt(MersennePrime61)
	f := func(a, b uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		want := new(big.Int).Mul(big.NewInt(0).SetUint64(a), big.NewInt(0).SetUint64(b))
		want.Mod(want, p)
		return mulMod(a, b) == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestApplyDeterministicAndBounded(t *testing.T) {
	fam := NewFamily(8, 12345)
	fam2 := NewFamily(8, 12345)
	for i, pm := range fam.Perms {
		if pm != fam2.Perms[i] {
			t.Fatal("families with same seed differ")
		}
		for x := uint64(0); x < 100; x++ {
			v := pm.Apply(x)
			if v >= MersennePrime61 {
				t.Fatalf("Apply out of range: %d", v)
			}
			if v != pm.Apply(x) {
				t.Fatal("Apply not deterministic")
			}
		}
	}
}

func TestPermInjectiveOnSmallDomain(t *testing.T) {
	// h(x) = ax+b mod p with a != 0 is a bijection on [0, p); on a small
	// domain there must be no collisions at all.
	fam := NewFamily(4, 7)
	for _, pm := range fam.Perms {
		seen := map[uint64]bool{}
		for x := uint64(0); x < 5000; x++ {
			v := pm.Apply(x)
			if seen[v] {
				t.Fatalf("collision at %d", x)
			}
			seen[v] = true
		}
	}
}

// TestShingleAgainstBruteForce validates that Shingle really returns the s
// smallest permuted values, sorted.
func TestShingleAgainstBruteForce(t *testing.T) {
	f := func(seed int64, raw []uint64) bool {
		if len(raw) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		pm := NewFamily(1, seed).Perms[0]
		s := 1 + rng.Intn(6)
		got := pm.Shingle(raw, s, nil)

		all := make([]uint64, len(raw))
		for i, e := range raw {
			all[i] = pm.Apply(e)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		want := all
		if s < len(all) {
			want = all[:s]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestShingleEmptyAndSmall(t *testing.T) {
	pm := NewFamily(1, 1).Perms[0]
	if got := pm.Shingle(nil, 3, nil); len(got) != 0 {
		t.Errorf("empty input gave %v", got)
	}
	got := pm.Shingle([]uint64{42}, 5, nil)
	if len(got) != 1 || got[0] != pm.Apply(42) {
		t.Errorf("single-element shingle wrong: %v", got)
	}
}

// TestSharedShingleProbability: vertices with near-identical out-link sets
// must share at least one (s, c)-shingle nearly always, while unrelated
// sets should rarely collide. This is the property the Shingle algorithm
// rests on.
func TestSharedShingleProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	fam := NewFamily(20, 5) // c = 20 permutations
	const s = 3

	shingleSet := func(elems []uint64) map[uint64]bool {
		out := map[uint64]bool{}
		var scratch []uint64
		for _, pm := range fam.Perms {
			scratch = pm.Shingle(elems, s, scratch)
			out[HashTuple(scratch)] = true
		}
		return out
	}
	intersects := func(a, b map[uint64]bool) bool {
		for k := range a {
			if b[k] {
				return true
			}
		}
		return false
	}

	similarHits, unrelatedHits := 0, 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		base := make([]uint64, 40)
		for i := range base {
			base[i] = rng.Uint64() % 10000
		}
		// 90 % overlapping variant.
		variant := append([]uint64(nil), base[:36]...)
		for i := 0; i < 4; i++ {
			variant = append(variant, rng.Uint64()%10000+20000)
		}
		other := make([]uint64, 40)
		for i := range other {
			other[i] = rng.Uint64()%10000 + 50000 // disjoint universe
		}
		sa := shingleSet(base)
		if intersects(sa, shingleSet(variant)) {
			similarHits++
		}
		if intersects(sa, shingleSet(other)) {
			unrelatedHits++
		}
	}
	if similarHits < trials*8/10 {
		t.Errorf("similar sets shared shingles in only %d/%d trials", similarHits, trials)
	}
	if unrelatedHits > trials/10 {
		t.Errorf("unrelated sets shared shingles in %d/%d trials", unrelatedHits, trials)
	}
}

func TestHashTuple(t *testing.T) {
	a := HashTuple([]uint64{1, 2, 3})
	if a != HashTuple([]uint64{1, 2, 3}) {
		t.Error("HashTuple not deterministic")
	}
	if a == HashTuple([]uint64{3, 2, 1}) {
		t.Error("HashTuple ignores order (collision on permuted tuple)")
	}
	if HashTuple(nil) == a {
		t.Error("empty tuple collides")
	}
}

func BenchmarkShingle(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	elems := make([]uint64, 200)
	for i := range elems {
		elems[i] = rng.Uint64()
	}
	fam := NewFamily(100, 3)
	var scratch []uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pm := range fam.Perms {
			scratch = pm.Shingle(elems, 5, scratch)
		}
	}
}
