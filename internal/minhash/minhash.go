// Package minhash implements the min-wise independent permutation
// machinery (Broder et al., JCSS 2000) that the Shingle algorithm uses to
// sample (s, c)-shingle sets from adjacency lists.
//
// A permutation is approximated by a member of the 2-universal hash family
// h(x) = (a·x + b) mod p over the Mersenne prime p = 2^61 − 1: for each of
// the c permutations, an element set is "permuted" by hashing every element
// and taking the s smallest hash values. Two vertices whose out-link sets
// overlap substantially then share a shingle with high probability.
package minhash

import (
	"math/bits"
	"math/rand"
	"sort"
)

// MersennePrime61 is the modulus of the hash family.
const MersennePrime61 = (1 << 61) - 1

// Perm is one pseudo-random permutation h(x) = (a·x + b) mod p.
type Perm struct {
	A, B uint64
}

// Apply evaluates the permutation at x. Multiplication is carried out in
// 128 bits (bits.Mul64) so the result is exact mod 2^61−1.
func (pm Perm) Apply(x uint64) uint64 {
	return addMod(mulMod(pm.A, mod61(x)), pm.B%MersennePrime61)
}

// mulMod returns (a*b) mod 2^61-1 for a, b < 2^61.
func mulMod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// 2^64 ≡ 8 (mod 2^61−1), and hi < 2^58 so hi*8 fits in 61 bits.
	return addMod(mod61(hi<<3), mod61(lo))
}

func mod61(x uint64) uint64 {
	x = (x >> 61) + (x & MersennePrime61)
	if x >= MersennePrime61 {
		x -= MersennePrime61
	}
	return x
}

func addMod(a, b uint64) uint64 {
	s := a + b
	if s >= MersennePrime61 {
		s -= MersennePrime61
	}
	return s
}

// Family is a set of c independent permutations drawn from a seeded PRNG,
// so that every rank in a distributed run generates the identical family.
type Family struct {
	Perms []Perm
}

// NewFamily returns c permutations seeded deterministically.
func NewFamily(c int, seed int64) *Family {
	rng := rand.New(rand.NewSource(seed))
	f := &Family{Perms: make([]Perm, c)}
	for i := range f.Perms {
		// a must be nonzero for the map to be a bijection-like spread.
		a := uint64(rng.Int63n(MersennePrime61-1)) + 1
		b := uint64(rng.Int63n(MersennePrime61))
		f.Perms[i] = Perm{A: a, B: b}
	}
	return f
}

// Shingle computes the s minimum elements of the permutation's image of
// elems, returning them sorted ascending. If len(elems) < s the whole
// image is returned (sorted). The scratch slice is reused if large enough.
func (pm Perm) Shingle(elems []uint64, s int, scratch []uint64) []uint64 {
	if len(elems) == 0 {
		return scratch[:0]
	}
	if s > len(elems) {
		s = len(elems)
	}
	scratch = scratch[:0]
	// Keep a bounded max-heap-free approach: s is tiny (≈5), so a simple
	// insertion into a sorted s-slot buffer is fastest.
	for _, e := range elems {
		h := pm.Apply(e)
		if len(scratch) < s {
			scratch = append(scratch, h)
			sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
			continue
		}
		if h >= scratch[s-1] {
			continue
		}
		// Insert h keeping scratch sorted.
		pos := sort.Search(s, func(i int) bool { return scratch[i] > h })
		copy(scratch[pos+1:], scratch[pos:s-1])
		scratch[pos] = h
	}
	return scratch
}

// HashTuple collapses a sorted shingle tuple into a single 64-bit value
// (FNV-1a over the byte representation), which is how shingles are stored
// and compared downstream.
func HashTuple(tuple []uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range tuple {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}
