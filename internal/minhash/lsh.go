package minhash

import "sort"

// LSH support for similarity sharding: per-sequence MinHash signatures
// over ψ-mer shingles, banded into shard buckets (Sunarso et al.'s
// MinHash-bucketed partitioning). The permutation family here is derived
// from a splitmix64 stream rather than math/rand, so the mapping from
// seed to Perm{A,B} is a frozen part of the epoch fingerprint — stable
// across Go releases, ranks, thread counts and reruns by construction.

// splitmix64 advances the state and returns the next value of the
// sequence (Steele et al., "Fast splittable pseudorandom number
// generators"). It is the usual seed-expansion primitive: every output
// is a bijective mix of the state, so even adjacent seeds yield
// unrelated permutation families.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewFamilyFixed returns c permutations derived from seed via splitmix64.
// Unlike NewFamily (which draws from math/rand and is kept for the
// Shingle phase's historical output), the seed→family mapping is defined
// by this package alone and safe to fold into a config fingerprint.
func NewFamilyFixed(c int, seed uint64) *Family {
	st := seed
	f := &Family{Perms: make([]Perm, c)}
	for i := range f.Perms {
		a := splitmix64(&st)%(MersennePrime61-1) + 1
		b := splitmix64(&st) % MersennePrime61
		f.Perms[i] = Perm{A: a, B: b}
	}
	return f
}

// Posting is one distinct ψ-mer of a sequence: the 64-bit FNV-1a hash of
// the window and the offset of its first occurrence.
type Posting struct {
	Hash uint64
	Off  int32
}

// KmerHash is FNV-1a over the window bytes — the shingle hash behind
// both the MinHash signatures and the cross-shard candidate index.
func KmerHash(w []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range w {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// KmerPostings returns the distinct ψ-mers of res as postings sorted by
// ascending hash (ties by offset), each carrying its first-occurrence
// offset. Sequences shorter than psi have no postings.
func KmerPostings(res []byte, psi int) []Posting {
	if len(res) < psi || psi <= 0 {
		return nil
	}
	out := make([]Posting, 0, len(res)-psi+1)
	for i := 0; i+psi <= len(res); i++ {
		out = append(out, Posting{Hash: KmerHash(res[i : i+psi]), Off: int32(i)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hash != out[j].Hash {
			return out[i].Hash < out[j].Hash
		}
		return out[i].Off < out[j].Off
	})
	// Deduplicate, keeping the first (smallest-offset) occurrence.
	w := 0
	for i := range out {
		if i == 0 || out[i].Hash != out[w-1].Hash {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// Signature computes the MinHash signature of a posting set under the
// family: sig[j] is the minimum of Perms[j].Apply over the posting
// hashes, or MersennePrime61 (an unreachable sentinel — Apply is always
// < p) when the set is empty. sig is reused if large enough.
func (f *Family) Signature(postings []Posting, sig []uint64) []uint64 {
	if cap(sig) < len(f.Perms) {
		sig = make([]uint64, len(f.Perms))
	}
	sig = sig[:len(f.Perms)]
	for j, pm := range f.Perms {
		min := uint64(MersennePrime61)
		for _, po := range postings {
			if h := pm.Apply(po.Hash); h < min {
				min = h
			}
		}
		sig[j] = min
	}
	return sig
}

// BandBuckets folds a signature into its LSH band buckets: bucket t is
// HashTuple over rows [t*rows, (t+1)*rows). Two sequences land in the
// same bucket of band t exactly when they agree on all of that band's
// signature rows. len(sig) must be at least bands*rows.
func BandBuckets(sig []uint64, bands, rows int, out []uint64) []uint64 {
	if cap(out) < bands {
		out = make([]uint64, bands)
	}
	out = out[:bands]
	for t := 0; t < bands; t++ {
		out[t] = HashTuple(sig[t*rows : (t+1)*rows])
	}
	return out
}
