// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section V) at container scale. Each experiment is a
// function returning printable results; cmd/benchtab is the CLI front end
// and the repository-root benchmarks wrap them in testing.B.
//
// Scaling: the paper's 160 K / 22 K / 10–160 K CAMERA samples on 32–512
// BlueGene/L nodes become synthetic data sets of ~125–2500 sequences on
// 32–512 *simulated* ranks (virtual-time transport). The reproduction
// target is the shape of each curve — who wins, by what factor, where
// behaviour changes — not absolute seconds.
package experiments

import (
	"fmt"
	"io"
	"time"

	"profam"
	"profam/internal/bipartite"
	"profam/internal/gos"
	"profam/internal/mpi"
	"profam/internal/pace"
	"profam/internal/quality"
	"profam/internal/seq"
	"profam/internal/shingle"
	"profam/internal/workload"
)

// Set160K builds the multi-family data set standing in for the paper's
// 160,000-sequence sample (221 GOS clusters, mean length 163). scale=1
// yields roughly 2,000 sequences across 20 families.
func Set160K(scale float64) (*seq.Set, *workload.Truth) {
	return workload.Generate(workload.Params{
		Families:       max2(1, int(20*scale)),
		MeanFamilySize: 85,
		MeanLength:     130,
		Divergence:     0.10,
		IndelRate:      0.005,
		Subfamilies:    4,    // GOS final clusters merge beyond raw similarity
		DominantFrac:   0.68, // calibrated toward the paper's SE ≈ 57 %
		ContainedFrac:  0.16, // the paper's RR kept 138K/160K ≈ 86 %
		Singletons:     max2(1, int(30*scale)),
		Seed:           160,
	})
}

// Set22K builds the single-large-cluster data set standing in for the
// paper's 22,186-sequence sample (one GOS cluster, mean length 256).
// scale=1 yields one family of roughly 400 members.
func Set22K(scale float64) (*seq.Set, *workload.Truth) {
	return workload.Generate(workload.Params{
		Families:       1,
		MeanFamilySize: max2(10, int(400*scale)),
		MeanLength:     180,
		Divergence:     0.10,
		IndelRate:      0.004,
		Subfamilies:    max2(2, int(34*scale)), // one component, many dense cores
		SubDivergence:  0.24,                   // gentle drift keeps the chain connected
		DominantFrac:   0.45,
		UniformSizes:   true, // the single cluster's size must track scale
		ContainedFrac:  0.05, // 22.2K -> 21.3K ≈ 96 % kept
		Singletons:     1,
		Seed:           22,
	})
}

// SetOfSize builds a data set with approximately n sequences, for the
// input-size sweeps of Figures 6 and 7a.
func SetOfSize(n int, seed int64) (*seq.Set, *workload.Truth) {
	fams := max2(2, n/100)
	return workload.Generate(workload.Params{
		Families:       fams,
		MeanFamilySize: max2(2, n*85/100/fams),
		MeanLength:     130,
		Divergence:     0.10,
		IndelRate:      0.005,
		ContainedFrac:  0.15,
		UniformSizes:   true, // controlled sweep: sizes must track n
		Singletons:     max2(1, n/100),
		Seed:           seed,
	})
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PipelineConfig is the configuration used throughout the experiments:
// the paper's defaults with the dense-subgraph minimum size of 5 and the
// fine-tuned (s, c) = (5, 300).
func PipelineConfig() profam.Config {
	return profam.Config{
		Psi:              7,
		EdgeSimilarity:   0.78, // above the GOS 70 % cutoff, calibrated toward the paper’s ~76 % density
		S1:               5,
		C1:               300,
		MinComponentSize: 5,
		MinFamilySize:    5,
	}
}

func paceConfigOf(cfg profam.Config) pace.Config {
	// Reuse the pipeline's parameter mapping through a tiny shim: the
	// fields below are what the pace phases consume.
	//
	// The simulated scaling studies pin the scalar alignment kernels:
	// the cost model's SecPerCell is calibrated to scalar DP cells, and
	// the word-parallel kernels count 64-cell machine words as their
	// Cells unit, so letting them in would misprice the modeled
	// alignment work (and the paper's Table II shape rests on the
	// paper's own per-pair DP workload, not on our kernel layer).
	return pace.Config{Psi: cfg.Psi, ScalarKernels: true}
}

// --- Table I ------------------------------------------------------------

// Table1Row is one line of the paper's Table I.
type Table1Row struct {
	Name        string
	Input       int
	NonRedund   int
	Components  int
	DenseSub    int
	SeqInDS     int
	MeanDegree  float64
	MeanDensity float64
	LargestDS   int
}

// Table1 reproduces Table I on the 160K-like and 22K-like sets.
func Table1(scale float64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, item := range []struct {
		name string
		set  *seq.Set
	}{
		{"160K-like", first(Set160K(scale))},
		{"22K-like", first(Set22K(scale))},
	} {
		res, _, err := profam.RunSet(item.set, 1, false, PipelineConfig())
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Name:        item.name,
			Input:       res.NumInput,
			NonRedund:   res.NumNonRedundant,
			Components:  len(res.Components),
			DenseSub:    len(res.Families),
			SeqInDS:     res.SeqsInFamilies(),
			MeanDegree:  res.MeanFamilyDegree(),
			MeanDensity: res.MeanFamilyDensity(),
			LargestDS:   res.LargestFamily(),
		})
	}
	return rows, nil
}

func first(s *seq.Set, _ *workload.Truth) *seq.Set { return s }

// PrintTable1 renders rows next to the paper's reference values.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table I — qualitative summary (scaled data)")
	fmt.Fprintln(w, "paper(160K): in=160000 NR=138633 CC=1861 DS=850 seqInDS=66083 meanDeg=26 density=76% largest=13263")
	fmt.Fprintln(w, "paper(22K):  in=22186  NR=21348  CC=1    DS=134 seqInDS=11524 meanDeg=20 density=78% largest=6828")
	fmt.Fprintf(w, "%-10s %7s %7s %5s %5s %8s %8s %8s %8s\n",
		"dataset", "#input", "#NR", "#CC", "#DS", "#seqDS", "meanDeg", "density", "largest")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %7d %7d %5d %5d %8d %8.1f %7.0f%% %8d\n",
			r.Name, r.Input, r.NonRedund, r.Components, r.DenseSub,
			r.SeqInDS, r.MeanDegree, 100*r.MeanDensity, r.LargestDS)
	}
}

// --- GOS-comparison quality ----------------------------------------------

// QualityResult carries the Equation 1–4 metrics of two comparisons: the
// pipeline against the planted truth (the stand-in for the GOS final
// clustering) and the pipeline against the in-repo GOS-style baseline.
type QualityResult struct {
	VsTruth    quality.Confusion
	VsBaseline quality.Confusion
	BaselineN  int // sequences in the baseline comparison subset
}

// Quality reproduces the paper's PR/SE/OQ/CC comparison.
func Quality(scale float64) (QualityResult, error) {
	var out QualityResult

	set, truth := Set160K(scale)
	res, _, err := profam.RunSet(set, 1, false, PipelineConfig())
	if err != nil {
		return out, err
	}
	out.VsTruth, err = quality.Compare(res.FamilyLabels(), truth.Label)
	if err != nil {
		return out, err
	}

	// The baseline is Θ(n²); compare on the (smaller) single-cluster set.
	bset, _ := Set22K(scale)
	out.BaselineN = bset.Len()
	bres := gos.Run(bset, gos.Config{})
	pres, _, err := profam.RunSet(bset, 1, false, PipelineConfig())
	if err != nil {
		return out, err
	}
	benchLabels := quality.LabelsFromClusters(bres.Clusters, bset.Len())
	out.VsBaseline, err = quality.Compare(pres.FamilyLabels(), benchLabels)
	return out, err
}

// PrintQuality renders the comparison next to the paper's numbers.
func PrintQuality(w io.Writer, q QualityResult) {
	fmt.Fprintln(w, "Quality vs benchmark clustering (paper 160K: PR=95.75% SE=56.89% OQ=55.49% CC=73.04%)")
	fmt.Fprintf(w, "vs planted truth:      %s\n", q.VsTruth)
	fmt.Fprintf(w, "vs GOS-style baseline: %s (on %d-seq single-cluster set)\n", q.VsBaseline, q.BaselineN)
}

// --- Table II and the scaling figures -------------------------------------

// RRCCDTimes holds the virtual run-times of the two master–worker phases
// for one (n, p) cell.
type RRCCDTimes struct {
	N, P     int
	RR, CCD  float64
	Makespan float64
}

// runRRCCD executes RR+CCD on p simulated ranks and reports phase times.
func runRRCCD(set *seq.Set, p int, cfg profam.Config) (RRCCDTimes, error) {
	out := RRCCDTimes{N: set.Len(), P: p}
	pcfg := paceConfigOf(cfg)
	mk, err := mpi.RunSim(p, mpi.BlueGeneLike(), func(c *mpi.Comm) {
		keep, rrSt, err := pace.RedundancyRemoval(c, set, pcfg)
		if err != nil {
			panic(err)
		}
		_, ccSt, err := pace.ConnectedComponents(c, set, keep, pcfg)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			out.RR = rrSt.PhaseTime
			out.CCD = ccSt.PhaseTime
		}
	})
	out.Makespan = mk
	return out, err
}

// Table2 reproduces Table II: RR and CCD run-times for the 80K-like input
// at p ∈ {32, 64, 128, 512}.
func Table2(scale float64) ([]RRCCDTimes, error) {
	set, _ := SetOfSize(int(1000*scale), 80)
	var rows []RRCCDTimes
	for _, p := range []int{32, 64, 128, 512} {
		r, err := runRRCCD(set, p, PipelineConfig())
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// PrintTable2 renders the rows next to the paper's reference values.
func PrintTable2(w io.Writer, rows []RRCCDTimes) {
	fmt.Fprintln(w, "Table II — RR and CCD run-times (s) for the 80K-like input (simulated ranks)")
	fmt.Fprintln(w, "paper(80K): RR 17476/10296/4560/2207, CCD 1068/777/528/670 at p=32/64/128/512")
	fmt.Fprintf(w, "%6s %12s %12s %12s\n", "p", "RR(s)", "CCD(s)", "total(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %12.1f %12.1f %12.1f\n", r.P, r.RR, r.CCD, r.RR+r.CCD)
	}
}

// Fig6 sweeps input size × processor count for the RR+CCD phases. The
// same matrix serves Figures 6a (time vs p), 6b (time vs n) and 7a
// (speedup vs p).
func Fig6(scale float64) ([]RRCCDTimes, error) {
	var out []RRCCDTimes
	for _, n := range []int{125, 250, 500, 1000, 2000} {
		n = int(float64(n) * scale)
		if n < 20 {
			n = 20
		}
		set, _ := SetOfSize(n, int64(n))
		for _, p := range []int{32, 64, 128, 512} {
			r, err := runRRCCD(set, p, PipelineConfig())
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// PrintFig6a renders run-time as a function of processor count.
func PrintFig6a(w io.Writer, cells []RRCCDTimes) {
	fmt.Fprintln(w, "Fig 6a — RR+CCD run-time (s) vs processors (paper: monotone decrease, larger n slower)")
	printMatrix(w, cells, false)
}

// PrintFig6b renders run-time as a function of input size.
func PrintFig6b(w io.Writer, cells []RRCCDTimes) {
	fmt.Fprintln(w, "Fig 6b — RR+CCD run-time (s) vs input size (paper: superlinear growth in n)")
	// Transpose: rows are n, columns are p — same matrix, same printer.
	printMatrix(w, cells, false)
}

// PrintFig7a renders speedup relative to the smallest processor count.
func PrintFig7a(w io.Writer, cells []RRCCDTimes) {
	fmt.Fprintln(w, "Fig 7a — speedup vs processors, relative to p=32 (paper: near-linear for large n, flattening for small n)")
	printMatrix(w, cells, true)
}

func printMatrix(w io.Writer, cells []RRCCDTimes, speedup bool) {
	ns := uniqueNs(cells)
	ps := uniquePs(cells)
	fmt.Fprintf(w, "%8s", "n\\p")
	for _, p := range ps {
		fmt.Fprintf(w, "%10d", p)
	}
	fmt.Fprintln(w)
	for _, n := range ns {
		fmt.Fprintf(w, "%8d", n)
		var base float64
		for i, p := range ps {
			t := lookup(cells, n, p)
			if i == 0 {
				base = t
			}
			if speedup {
				if t > 0 {
					fmt.Fprintf(w, "%10.2f", base/t)
				} else {
					fmt.Fprintf(w, "%10s", "-")
				}
			} else {
				fmt.Fprintf(w, "%10.1f", t)
			}
		}
		fmt.Fprintln(w)
	}
}

func uniqueNs(cells []RRCCDTimes) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range cells {
		if !seen[c.N] {
			seen[c.N] = true
			out = append(out, c.N)
		}
	}
	return out
}

func uniquePs(cells []RRCCDTimes) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range cells {
		if !seen[c.P] {
			seen[c.P] = true
			out = append(out, c.P)
		}
	}
	return out
}

func lookup(cells []RRCCDTimes, n, p int) float64 {
	for _, c := range cells {
		if c.N == n && c.P == p {
			return c.RR + c.CCD
		}
	}
	return 0
}

// --- Figure 5 -------------------------------------------------------------

// Fig5 reproduces the dense-subgraph size distribution of the 22K-like
// set (bucket width 5).
func Fig5(scale float64) (bounds, counts []int, err error) {
	set, _ := Set22K(scale)
	res, _, err := profam.RunSet(set, 1, false, PipelineConfig())
	if err != nil {
		return nil, nil, err
	}
	subs := make([]shingle.DenseSubgraph, 0, len(res.Families))
	for _, f := range res.Families {
		m := make([]int32, len(f.Members))
		for i, id := range f.Members {
			m[i] = int32(id)
		}
		subs = append(subs, shingle.DenseSubgraph{Members: m})
	}
	b, c := shingle.SizeHistogram(subs, 5)
	return b, c, nil
}

// PrintFig5 renders the histogram.
func PrintFig5(w io.Writer, bounds, counts []int) {
	fmt.Fprintln(w, "Fig 5 — dense subgraph size distribution, 22K-like set (paper: right-skewed, few large subgraphs)")
	for i, b := range bounds {
		fmt.Fprintf(w, "%4d-%-4d %4d ", b, b+4, counts[i])
		for k := 0; k < counts[i] && k < 60; k++ {
			fmt.Fprint(w, "#")
		}
		fmt.Fprintln(w)
	}
}

// --- Figure 7b -------------------------------------------------------------

// Fig7bCell is one serial DSD measurement.
type Fig7bCell struct {
	N       int // sequences in the component
	C       int // shingle count c
	Seconds float64
}

// Fig7b measures serial dense-subgraph detection wall-clock time as a
// function of component size and the (s, c) parameters, s fixed at 5.
func Fig7b(scale float64) ([]Fig7bCell, error) {
	var out []Fig7bCell
	for _, n := range []int{100, 200, 400, 800} {
		n = int(float64(n) * scale)
		if n < 10 {
			n = 10
		}
		set, _ := workload.Generate(workload.Params{
			Families: 1, MeanFamilySize: n, MeanLength: 130,
			Divergence: 0.10, ContainedFrac: 0.01, Singletons: 1,
			UniformSizes: true, Subfamilies: max2(2, n/40),
			Seed: int64(700 + n),
		})
		members := make([]int, set.Len())
		for i := range members {
			members[i] = i
		}
		g, _, err := bipartite.BuildBd(set, members, bipartite.Config{Psi: 7})
		if err != nil {
			return nil, err
		}
		for _, c := range []int{100, 200, 300, 400} {
			start := time.Now()
			shingle.Detect(g, shingle.Params{S1: 5, C1: c, MinSize: 5})
			out = append(out, Fig7bCell{N: set.Len(), C: c, Seconds: time.Since(start).Seconds()})
		}
	}
	return out, nil
}

// PrintFig7b renders the serial DSD run-time matrix.
func PrintFig7b(w io.Writer, cells []Fig7bCell) {
	fmt.Fprintln(w, "Fig 7b — serial DSD wall-clock (s) vs component size and (s=5, c) (paper: grows with both n and c)")
	cs := []int{100, 200, 300, 400}
	fmt.Fprintf(w, "%8s", "n\\c")
	for _, c := range cs {
		fmt.Fprintf(w, "%10d", c)
	}
	fmt.Fprintln(w)
	ns := map[int]bool{}
	var order []int
	for _, cell := range cells {
		if !ns[cell.N] {
			ns[cell.N] = true
			order = append(order, cell.N)
		}
	}
	for _, n := range order {
		fmt.Fprintf(w, "%8d", n)
		for _, c := range cs {
			for _, cell := range cells {
				if cell.N == n && cell.C == c {
					fmt.Fprintf(w, "%10.4f", cell.Seconds)
				}
			}
		}
		fmt.Fprintln(w)
	}
}

// --- Work-reduction claim ---------------------------------------------------

// WorkRed quantifies the paper's "99 % work reduction" claim on the
// 40K-like input: promising pairs generated vs aligned vs the all-pairs
// count a BLAST-style approach would evaluate.
type WorkRed struct {
	N              int
	AllPairs       int64
	PairsGenerated int64
	PairsAligned   int64
	Reduction      float64 // vs generated
	VsAllPairs     float64 // aligned vs all-pairs
}

// WorkReduction runs CCD serially on a 40K-like (scaled) input.
func WorkReduction(scale float64) (WorkRed, error) {
	set, _ := SetOfSize(int(500*scale), 40)
	cfg := PipelineConfig()
	var out WorkRed
	out.N = set.Len()
	_, err := mpi.RunSim(1, mpi.CostModel{}, func(c *mpi.Comm) {
		_, st, err := pace.ConnectedComponents(c, set, nil, paceConfigOf(cfg))
		if err != nil {
			panic(err)
		}
		out.PairsGenerated = st.PairsGenerated
		out.PairsAligned = st.PairsAligned
	})
	if err != nil {
		return out, err
	}
	n := int64(set.Len())
	out.AllPairs = n * (n - 1) / 2
	if out.PairsGenerated > 0 {
		out.Reduction = 1 - float64(out.PairsAligned)/float64(out.PairsGenerated)
	}
	if out.AllPairs > 0 {
		out.VsAllPairs = 1 - float64(out.PairsAligned)/float64(out.AllPairs)
	}
	return out, nil
}

// PrintWorkRed renders the work-reduction numbers.
func PrintWorkRed(w io.Writer, r WorkRed) {
	fmt.Fprintln(w, "Work reduction, CCD phase (paper 40K: 168M promising pairs, 7M aligned, ~99% vs all-pairs)")
	fmt.Fprintf(w, "n=%d: all-pairs=%d, generated=%d, aligned=%d\n", r.N, r.AllPairs, r.PairsGenerated, r.PairsAligned)
	fmt.Fprintf(w, "reduction vs generated pairs: %.1f%%; vs all-pairs alignment: %.1f%%\n",
		100*r.Reduction, 100*r.VsAllPairs)
}
