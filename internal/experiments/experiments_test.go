package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The experiment harness runs at tiny scale here: these tests assert the
// plumbing and the qualitative shape, not the headline numbers (those
// are cmd/benchtab territory).

func TestDatasetsShape(t *testing.T) {
	set, truth := Set160K(0.15)
	if set.Len() < 100 {
		t.Errorf("160K-like too small: %d", set.Len())
	}
	if truth.NumFamilies < 2 {
		t.Errorf("160K-like has %d families", truth.NumFamilies)
	}
	set22, truth22 := Set22K(0.15)
	if truth22.NumFamilies != 1 {
		t.Errorf("22K-like should be a single family, got %d", truth22.NumFamilies)
	}
	if set22.Len() < 30 {
		t.Errorf("22K-like too small: %d", set22.Len())
	}
	sized, _ := SetOfSize(120, 3)
	if n := sized.Len(); n < 90 || n > 160 {
		t.Errorf("SetOfSize(120) produced %d sequences", n)
	}
}

func TestTable1Tiny(t *testing.T) {
	rows, err := Table1(0.12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.NonRedund >= r.Input {
			t.Errorf("%s: redundancy removal removed nothing", r.Name)
		}
		if r.Components == 0 {
			t.Errorf("%s: no components", r.Name)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "160K-like") {
		t.Error("table print missing dataset name")
	}
}

func TestWorkReductionTiny(t *testing.T) {
	r, err := WorkReduction(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if r.PairsGenerated == 0 || r.PairsAligned == 0 {
		t.Fatalf("no work recorded: %+v", r)
	}
	if r.VsAllPairs < 0.5 {
		t.Errorf("reduction vs all-pairs only %.2f", r.VsAllPairs)
	}
	var buf bytes.Buffer
	PrintWorkRed(&buf, r)
	if !strings.Contains(buf.String(), "all-pairs") {
		t.Error("workred print malformed")
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Run-time must not grow with processors (allowing small jitter).
	if rows[len(rows)-1].RR > rows[0].RR*1.2 {
		t.Errorf("RR slower at 512 ranks: %v vs %v", rows[len(rows)-1].RR, rows[0].RR)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "512") {
		t.Error("table2 print missing p=512 row")
	}
}

func TestFig5Tiny(t *testing.T) {
	bounds, counts, err := Fig5(0.35)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) == 0 || len(bounds) != len(counts) {
		t.Fatalf("histogram malformed: %v %v", bounds, counts)
	}
	var buf bytes.Buffer
	PrintFig5(&buf, bounds, counts)
	if !strings.Contains(buf.String(), "#") {
		t.Error("fig5 print missing bars")
	}
}

func TestFig7bTiny(t *testing.T) {
	cells, err := Fig7b(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 16 {
		t.Fatalf("got %d cells, want 16", len(cells))
	}
	// Serial DSD time must grow with c at fixed n (monotone within each
	// n, allowing tiny jitter on the smallest sizes).
	grow := 0
	for i := 0; i < len(cells); i += 4 {
		if cells[i+3].Seconds > cells[i].Seconds {
			grow++
		}
	}
	if grow < 3 {
		t.Errorf("DSD time does not grow with c in %d/4 size groups", grow)
	}
	var buf bytes.Buffer
	PrintFig7b(&buf, cells)
	if !strings.Contains(buf.String(), "400") {
		t.Error("fig7b print missing c=400 column")
	}
}

func TestPrintMatrixHelpers(t *testing.T) {
	cells := []RRCCDTimes{
		{N: 100, P: 32, RR: 4, CCD: 1},
		{N: 100, P: 64, RR: 2, CCD: 1},
		{N: 200, P: 32, RR: 8, CCD: 2},
		{N: 200, P: 64, RR: 4, CCD: 2},
	}
	var buf bytes.Buffer
	PrintFig6a(&buf, cells)
	PrintFig6b(&buf, cells)
	PrintFig7a(&buf, cells)
	out := buf.String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "5.0") {
		t.Errorf("matrix prints malformed:\n%s", out)
	}
	if lookup(cells, 100, 64) != 3 {
		t.Error("lookup broken")
	}
	if len(uniqueNs(cells)) != 2 || len(uniquePs(cells)) != 2 {
		t.Error("unique extraction broken")
	}
}
