package experiments

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"profam/internal/seq"
	"profam/internal/server"
)

// ObsHandlers boots a resident service over a small committed corpus
// and returns its instrumented and bare (middleware-free) HTTP handlers
// plus a shutdown func. The benchjson observability-overhead benchmark
// drives identical requests through both and pins the ratio — the whole
// telemetry layer must stay within a few percent of the raw handler.
func ObsHandlers(set *seq.Set) (instrumented, bare http.Handler, shutdown func(), err error) {
	s := server.New(server.Config{
		BatchWait: 5 * time.Millisecond,
		// The pipeline config stays default: the benchmark only measures
		// the handler path, not epoch builds.
	})
	names := make([]string, set.Len())
	seqs := make([]string, set.Len())
	for id := 0; id < set.Len(); id++ {
		names[id], seqs[id] = set.Get(id).Name, string(set.Get(id).Res)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := s.Submit(ctx, names, seqs); err != nil {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		_ = s.Shutdown(sctx)
		return nil, nil, nil, fmt.Errorf("seeding service corpus: %w", err)
	}
	shutdown = func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		_ = s.Shutdown(sctx)
	}
	return s.Handler(), s.BareHandler(), shutdown, nil
}
