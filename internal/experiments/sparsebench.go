package experiments

import (
	"profam/internal/esa"
	"profam/internal/seq"
	"profam/internal/spgemm"
	"profam/internal/suffixtree"
)

// PairGenESAKernel is the enhanced-suffix-array pair-generation path in
// isolation: build one ESA subtree per bucket, then drain the merged
// pair stream with first-occurrence dedup — the same enumeration the
// worker-side pair source performs. It returns the deduplicated pair
// count (a work checksum, identical across runs).
func PairGenESAKernel(set *seq.Set, psi int) (int, error) {
	opt := suffixtree.Options{MinMatch: psi}
	buckets, err := suffixtree.Buckets(set, opt)
	if err != nil {
		return 0, err
	}
	trees := make([]*suffixtree.SubTree, 0, len(buckets))
	for _, b := range buckets {
		t, err := esa.BuildBucket(set, b, opt)
		if err != nil {
			return 0, err
		}
		trees = append(trees, t)
	}
	seen := map[int64]bool{}
	suffixtree.MergedPairs(trees, func(p suffixtree.Pair) bool {
		key := int64(p.SeqA)<<32 | int64(uint32(p.SeqB))
		if !seen[key] {
			seen[key] = true
		}
		return true
	})
	return len(seen), nil
}

// PairGenSparseKernel is the sparse-matrix pair-generation path in
// isolation: the blocked k-mer × sequence multiply streamed over the
// same buckets, drained to exhaustion. It returns the emitted pair
// count — identical to PairGenESAKernel's on the same set, since the
// candidate sets coincide.
func PairGenSparseKernel(set *seq.Set, psi int) (int, error) {
	buckets, err := suffixtree.Buckets(set, suffixtree.Options{MinMatch: psi})
	if err != nil {
		return 0, err
	}
	own := make([]int, len(buckets))
	for i := range own {
		own[i] = i
	}
	src, err := spgemm.NewSource(set, buckets, own, spgemm.Options{K: psi}, spgemm.Hooks{})
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		ps, done := src.Next(256)
		n += len(ps)
		if done {
			return n, nil
		}
	}
}

// SparsePeakBytesRatio compares the peak index memory of the ESA and
// sparse backends on one corpus. The ESA (like the GST) holds every
// subtree of the rank's assignment alive for the whole phase, so its
// peak is the sum of all subtree footprints; the sparse backend
// materializes one bucket's CSR block at a time, so its peak is the
// largest single block. Both sides are deterministic arithmetic over
// the same bucket list — no timing involved. Returns the two byte
// counts and their ratio (esa/sparse; > 1 means the sparse backend
// peaks lower).
func SparsePeakBytesRatio(set *seq.Set, psi int) (esaBytes, sparseBytes int64, ratio float64, err error) {
	opt := suffixtree.Options{MinMatch: psi}
	buckets, err := suffixtree.Buckets(set, opt)
	if err != nil {
		return 0, 0, 0, err
	}
	for _, b := range buckets {
		t, err := esa.BuildBucket(set, b, opt)
		if err != nil {
			return 0, 0, 0, err
		}
		esaBytes += t.Stats().ApproxBytes
	}
	sparseBytes, err = spgemm.IndexPeakBytes(set, buckets, spgemm.Options{K: psi})
	if err != nil {
		return 0, 0, 0, err
	}
	if sparseBytes > 0 {
		ratio = float64(esaBytes) / float64(sparseBytes)
	}
	return esaBytes, sparseBytes, ratio, nil
}
