package experiments

import (
	"fmt"
	"io"

	"profam/internal/mpi"
	"profam/internal/pace"
)

// CommRow records the communication volume of one (n, p) RR+CCD run.
type CommRow struct {
	N, P        int
	MasterMsgs  int64
	MasterBytes int64
	TotalMsgs   int64
	TotalBytes  int64
}

// Comm measures message counts and bytes as a function of processor
// count — the master–worker pattern concentrates traffic at rank 0, and
// this experiment quantifies that (the scalability ceiling Figure 7a's
// discussion points at).
func Comm(scale float64) ([]CommRow, error) {
	set, _ := SetOfSize(int(400*scale), 55)
	var rows []CommRow
	for _, p := range []int{4, 16, 64, 256} {
		row := CommRow{N: set.Len(), P: p}
		var masterSent, masterRecv, masterBytes int64
		totals := make([]mpi.CommStats, p)
		_, err := mpi.RunSim(p, mpi.BlueGeneLike(), func(c *mpi.Comm) {
			keep, _, err := pace.RedundancyRemoval(c, set, pace.Config{Psi: 7})
			if err != nil {
				panic(err)
			}
			if _, _, err := pace.ConnectedComponents(c, set, keep, pace.Config{Psi: 7}); err != nil {
				panic(err)
			}
			st := c.Stats()
			totals[c.Rank()] = st
			if c.Rank() == 0 {
				masterSent, masterRecv, masterBytes = st.MsgsSent, st.MsgsRecv, st.BytesSent
			}
		})
		if err != nil {
			return nil, err
		}
		row.MasterMsgs = masterSent + masterRecv
		row.MasterBytes = masterBytes
		for _, st := range totals {
			row.TotalMsgs += st.MsgsSent
			row.TotalBytes += st.BytesSent
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintComm renders the volume table.
func PrintComm(w io.Writer, rows []CommRow) {
	fmt.Fprintln(w, "Communication volume, RR+CCD (master–worker traffic concentrates at rank 0)")
	fmt.Fprintf(w, "%6s %6s %12s %14s %12s %14s %9s\n",
		"n", "p", "masterMsgs", "masterBytes", "totalMsgs", "totalBytes", "master%")
	for _, r := range rows {
		pct := 0.0
		if r.TotalBytes > 0 {
			pct = 100 * float64(r.MasterBytes) / float64(r.TotalBytes)
		}
		fmt.Fprintf(w, "%6d %6d %12d %14d %12d %14d %8.1f%%\n",
			r.N, r.P, r.MasterMsgs, r.MasterBytes, r.TotalMsgs, r.TotalBytes, pct)
	}
}
