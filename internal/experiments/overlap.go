package experiments

import (
	"fmt"
	"math/rand"

	"profam"
	"profam/internal/mpi"
	"profam/internal/pace"
	"profam/internal/seq"
	"profam/internal/trace"
	"profam/internal/workload"
)

// OverlapCorpus is the shared input for the protocol-comparison
// experiments: sized so the RR and CCD master–worker phases carry
// enough batches for lockstep and overlapped timing to genuinely
// diverge, and fixed-seed so the simulated numbers are exactly
// reproducible.
func OverlapCorpus() *seq.Set {
	set, _ := workload.Generate(workload.Params{
		Families: 5, MeanFamilySize: 25, MeanLength: 110,
		Divergence: 0.09, IndelRate: 0.004, Subfamilies: 2,
		ContainedFrac: 0.2, Singletons: 5, Seed: 2024,
	})
	return set
}

// OverlapConfig is the pipeline configuration paired with
// OverlapCorpus in the protocol-comparison experiments.
func OverlapConfig() profam.Config {
	return profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3,
		BatchPairs: 256, BatchTasks: 64}
}

// PipelineTCP runs the full pipeline on a 2-rank loopback TCP mesh —
// the genuine socket path, so the wire format actually matters. The
// caller picks the format with mpi.SetWireFormat and a free port range.
func PipelineTCP(set *seq.Set, cfg profam.Config, basePort int) error {
	profam.RegisterWireTypes()
	return mpi.RunTCP(2, basePort, func(c *mpi.Comm) {
		if _, err := profam.RunPipelineOn(c, set, cfg); err != nil {
			panic(err)
		}
	})
}

// MasterRoundBatches builds deterministic, realistically-shaped
// worker batches (near-monotone pair ids, small offsets — the traffic
// the delta codec is tuned for) for the master-round kernel.
func MasterRoundBatches(n, batch int, seed int64) []pace.WorkerMsg {
	rng := rand.New(rand.NewSource(seed))
	out := make([]pace.WorkerMsg, n)
	for i := range out {
		var m pace.WorkerMsg
		a := int32(rng.Intn(50))
		for j := 0; j < batch; j++ {
			a += int32(rng.Intn(3))
			m.Pairs = append(m.Pairs, pace.PairItem{
				A: a, B: a + 1 + int32(rng.Intn(60)),
				OffA: int32(rng.Intn(300)), OffB: int32(rng.Intn(300)),
				Len: 8 + int32(rng.Intn(50)),
			})
			m.Results = append(m.Results, pace.AlignOutcome{
				A: a, B: a + 1 + int32(rng.Intn(60)),
				OK: rng.Intn(3) > 0, Stage: int8(1 + rng.Intn(3)),
				Cells: int64(rng.Intn(20000)), FullCells: int64(10000 + rng.Intn(90000)),
			})
		}
		out[i] = m
	}
	return out
}

// MasterRoundLatency measures the master–worker exchange in isolation:
// a 2-rank TCP mesh ping-pongs every batch as one WorkerMsg request and
// one MasterMsg reply, exactly the envelope and encode/decode path of a
// protocol round without any alignment work attached.
func MasterRoundLatency(batches []pace.WorkerMsg, basePort int) error {
	pace.RegisterWireTypes()
	return mpi.RunTCP(2, basePort, func(c *mpi.Comm) {
		if c.Rank() == 1 {
			for _, b := range batches {
				c.Send(0, 10, b)
				m := c.Recv(0, 11).Data.(pace.MasterMsg)
				if len(m.Tasks) != len(b.Pairs) {
					panic("master round echo mismatch")
				}
			}
			return
		}
		for range batches {
			m := c.Recv(1, 10).Data.(pace.WorkerMsg)
			c.Send(1, 11, pace.MasterMsg{Tasks: m.Pairs})
		}
	})
}

// WireBytesRatio ships the given batches over a 2-rank loopback TCP
// mesh under gob and then under the binary codec and returns the
// worker→master byte ratio gob/binary — the codec's measured reduction
// of mpi_bytes_sent{transport=tcp}. Uses basePort and basePort+16.
func WireBytesRatio(batches []pace.WorkerMsg, basePort int) (float64, error) {
	pace.RegisterWireTypes()
	defer mpi.SetWireFormat(mpi.WireBinary)
	measure := func(f mpi.WireFormat, port int) (int64, error) {
		mpi.SetWireFormat(f)
		var sent int64
		err := mpi.RunTCP(2, port, func(c *mpi.Comm) {
			if c.Rank() == 1 {
				for _, b := range batches {
					c.Send(0, 10, b)
					c.Recv(0, 11)
				}
				sent = c.Stats().BytesSent
				return
			}
			for range batches {
				m := c.Recv(1, 10).Data.(pace.WorkerMsg)
				c.Send(1, 11, pace.MasterMsg{Tasks: m.Pairs})
			}
		})
		return sent, err
	}
	gob, err := measure(mpi.WireGob, basePort)
	if err != nil {
		return 0, err
	}
	bin, err := measure(mpi.WireBinary, basePort+16)
	if err != nil {
		return 0, err
	}
	if bin == 0 {
		return 0, fmt.Errorf("no bytes measured")
	}
	return float64(gob) / float64(bin), nil
}

// OverlapStats quantifies the overlapped protocol's win over lockstep
// on the virtual machine: makespans, and the share of worker life spent
// blocked waiting for the master's next task batch.
type OverlapStats struct {
	MakespanLockstep float64
	MakespanOverlap  float64
	// TaskWaitShare* is Σ worker task-wait seconds / ((p-1) · makespan)
	// of the respective run — the fraction of aggregate worker capacity
	// burned waiting on the master.
	TaskWaitShareLockstep float64
	TaskWaitShareOverlap  float64
}

// Speedup is the virtual-makespan ratio lockstep/overlap.
func (s OverlapStats) Speedup() float64 {
	if s.MakespanOverlap == 0 {
		return 0
	}
	return s.MakespanLockstep / s.MakespanOverlap
}

// WaitReduction is the factor by which the worker task-wait share fell.
func (s OverlapStats) WaitReduction() float64 {
	if s.TaskWaitShareOverlap == 0 {
		return 0
	}
	return s.TaskWaitShareLockstep / s.TaskWaitShareOverlap
}

// ClusterLike returns a commodity-cluster cost model (tens-of-µs
// message overheads, 100 µs latency, ~100 MB/s links) — the
// communication-dominated regime where the lockstep protocol's
// per-round synchronization actually stalls workers. The BlueGene-like
// torus of the scaling figures has such cheap messaging that the master
// never becomes the bottleneck at simulable rank counts.
func ClusterLike() mpi.CostModel {
	return mpi.CostModel{
		SendOverhead: 2e-5,
		RecvOverhead: 2e-5,
		Latency:      1e-4,
		SecPerByte:   1.0 / 100e6,
	}
}

// StragglerLink returns ClusterLike with every link touching rank
// p-1 slowed to a 10 ms latency — one distant or congested node, the
// regime the lockstep protocol handles worst: its global round barrier
// makes every worker wait out the slow link's round-trip every round,
// while the arrival-order master only ever delays the straggler itself.
// On the paper's torus the same shape appears whenever a partition
// spans distant nodes.
func StragglerLink(p int) mpi.CostModel {
	cm := ClusterLike()
	base := cm.Latency
	slow := p - 1
	cm.Latency = 0
	cm.RankLatency = func(from, to int) float64 {
		if from == slow || to == slow {
			return 1e-2
		}
		return base
	}
	return cm
}

// OverlapWin runs the pipeline twice on p simulated ranks under the
// given cost model — lockstep and overlapped — and derives the
// comparison. Both runs execute the identical workload; only the
// protocol differs.
func OverlapWin(set *seq.Set, cfg profam.Config, p int, cm mpi.CostModel) (OverlapStats, error) {
	var st OverlapStats
	run := func(lockstep bool) (float64, float64, error) {
		c := cfg
		c.Lockstep = lockstep
		c.TraceCapacity = 1 << 17
		if c.ThreadsPerRank == 0 {
			c.ThreadsPerRank = 1
		}
		var res *profam.Result
		var rerr error
		span, err := mpi.RunSim(p, cm, func(comm *mpi.Comm) {
			r, e := profam.RunPipelineOn(comm, set, c)
			if comm.Rank() == 0 {
				res, rerr = r, e
			}
		})
		if err != nil {
			return 0, 0, err
		}
		if rerr != nil {
			return 0, 0, rerr
		}
		an := trace.Analyze(res.Trace)
		var wait float64
		for _, rb := range an.Ranks {
			if rb.Rank != 0 {
				wait += rb.TaskWait
			}
		}
		if span <= 0 || p < 2 {
			return span, 0, fmt.Errorf("overlap comparison needs p >= 2 and a positive makespan")
		}
		return span, wait / (float64(p-1) * span), nil
	}
	var err error
	if st.MakespanLockstep, st.TaskWaitShareLockstep, err = run(true); err != nil {
		return st, err
	}
	if st.MakespanOverlap, st.TaskWaitShareOverlap, err = run(false); err != nil {
		return st, err
	}
	return st, nil
}
