package experiments

import (
	"fmt"
	"io"

	"profam"
	"profam/internal/quality"
)

// This file implements the parameter-sensitivity study the paper lists
// under future work ("the effect of similarity cutoffs and other
// parameters on the quality of the protein family prediction is to be
// studied"): one-at-a-time sweeps of the overlap-similarity cutoff, the
// maximal-match filter length ψ, and the τ post-test, each evaluated
// against the planted ground truth.

// SensitivityRow is one parameter setting's outcome.
type SensitivityRow struct {
	Param        string
	Value        float64
	Families     int
	SeqInDS      int
	Precision    float64
	Sensitivity  float64
	PairsAligned int64
}

// Sensitivity sweeps the three key parameters on a 160K-like (scaled)
// data set.
func Sensitivity(scale float64) ([]SensitivityRow, error) {
	set, truth := Set160K(scale * 0.5) // half-size: 12 settings get run
	base := PipelineConfig()

	var rows []SensitivityRow
	eval := func(param string, value float64, cfg profam.Config) error {
		res, _, err := profam.RunSet(set, 1, false, cfg)
		if err != nil {
			return err
		}
		conf, err := quality.Compare(res.FamilyLabels(), truth.Label)
		if err != nil {
			return err
		}
		rows = append(rows, SensitivityRow{
			Param:        param,
			Value:        value,
			Families:     len(res.Families),
			SeqInDS:      res.SeqsInFamilies(),
			Precision:    conf.Precision(),
			Sensitivity:  conf.Sensitivity(),
			PairsAligned: res.RR.PairsAligned + res.CCD.PairsAligned,
		})
		return nil
	}

	for _, sim := range []float64{0.20, 0.30, 0.40, 0.50} {
		cfg := base
		cfg.OverlapSimilarity = sim
		cfg.EdgeSimilarity = base.EdgeSimilarity // keep the family edge rule fixed
		if err := eval("overlapSim", sim, cfg); err != nil {
			return nil, err
		}
	}
	for _, edge := range []float64{0.60, 0.70, 0.78, 0.85} {
		cfg := base
		cfg.EdgeSimilarity = edge
		if err := eval("edgeSim", edge, cfg); err != nil {
			return nil, err
		}
	}
	for _, psi := range []int{6, 8, 10, 12} {
		cfg := base
		cfg.Psi = psi
		if err := eval("psi", float64(psi), cfg); err != nil {
			return nil, err
		}
	}
	for _, tau := range []float64{0.30, 0.50, 0.70, 0.90} {
		cfg := base
		cfg.Tau = tau
		if err := eval("tau", tau, cfg); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// PrintSensitivity renders the sweep.
func PrintSensitivity(w io.Writer, rows []SensitivityRow) {
	fmt.Fprintln(w, "Parameter sensitivity (paper future work §VI): quality vs cutoffs, planted-truth benchmark")
	fmt.Fprintf(w, "%-12s %8s %6s %8s %8s %8s %10s\n",
		"param", "value", "#DS", "#seqDS", "PR%", "SE%", "aligned")
	last := ""
	for _, r := range rows {
		if r.Param != last {
			last = r.Param
			fmt.Fprintln(w, "---")
		}
		fmt.Fprintf(w, "%-12s %8.2f %6d %8d %8.2f %8.2f %10d\n",
			r.Param, r.Value, r.Families, r.SeqInDS,
			100*r.Precision, 100*r.Sensitivity, r.PairsAligned)
	}
}
