package experiments

import (
	"sort"
	"sync/atomic"

	"profam/internal/align"
	"profam/internal/pool"
	"profam/internal/seq"
	"profam/internal/suffixtree"
)

// BenchPairs returns a deterministic all-vs-all pair list over the set,
// truncated to maxPairs, for the batch-alignment benchmarks.
func BenchPairs(set *seq.Set, maxPairs int) [][2]int {
	var pairs [][2]int
	n := set.Len()
	for i := 0; i < n && len(pairs) < maxPairs; i++ {
		for j := i + 1; j < n && len(pairs) < maxPairs; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return pairs
}

// AlignBatchKernel is the worker-side hot path of the hybrid execution
// model in isolation: align one task batch on a bounded goroutine pool,
// each chunk with a recycled aligner. It returns the total DP cells (a
// work checksum, identical for every thread count).
func AlignBatchKernel(set *seq.Set, pairs [][2]int, threads int) int64 {
	cache := pool.NewAlignerCache(nil)
	params := align.DefaultOverlapParams()
	var cells atomic.Int64
	pool.RunChunked(threads, len(pairs), func(lo, hi int) {
		al := cache.Get()
		before := al.Cells
		for i := lo; i < hi; i++ {
			a, b := set.Get(pairs[i][0]), set.Get(pairs[i][1])
			al.Overlaps(a.Res, b.Res, params)
		}
		cells.Add(al.Cells - before)
		cache.Put(al)
	})
	return cells.Load()
}

// SeedPair is a promising pair together with its maximal-match seed —
// the input shape the alignment cascade consumes.
type SeedPair struct {
	A, B int
	Seed align.SeedMatch
}

// BenchSeedPairs enumerates deduplicated promising pairs (sharing a
// maximal match of length ≥ psi) with their seed coordinates, truncated
// to maxPairs, for the cascade benchmarks.
func BenchSeedPairs(set *seq.Set, psi, maxPairs int) ([]SeedPair, error) {
	trees, err := suffixtree.Build(set, suffixtree.Options{MinMatch: psi})
	if err != nil {
		return nil, err
	}
	seen := map[int64]bool{}
	var out []SeedPair
	suffixtree.MergedPairs(trees, func(p suffixtree.Pair) bool {
		key := int64(p.SeqA)<<32 | int64(uint32(p.SeqB))
		if seen[key] {
			return true
		}
		seen[key] = true
		out = append(out, SeedPair{A: int(p.SeqA), B: int(p.SeqB),
			Seed: align.SeedMatch{PosA: int(p.OffA), PosB: int(p.OffB), Len: int(p.Len)}})
		return len(out) < maxPairs
	})
	return out, nil
}

// AlignCascadeKernel runs the seed-anchored containment cascade (the
// redundancy-removal predicate, the pipeline's dominant aligned-pair
// volume and the stage where the certified rejects fire) over the pair
// batch on a bounded goroutine pool. It returns (cells, fullCells): the
// DP cells actually computed and what the exact full-matrix predicate
// would have cost on the same pairs — fullCells/cells is the
// cells-eliminated ratio.
func AlignCascadeKernel(set *seq.Set, pairs []SeedPair, threads int) (int64, int64) {
	cache := pool.NewAlignerCache(nil)
	params := align.DefaultContainParams()
	var cells, full atomic.Int64
	pool.RunChunked(threads, len(pairs), func(lo, hi int) {
		al := cache.Get()
		before := al.Cells
		var f int64
		for i := lo; i < hi; i++ {
			a, b := set.Get(pairs[i].A), set.Get(pairs[i].B)
			al.EitherContainedCascade(a.Res, b.Res, params, pairs[i].Seed)
			f += int64(len(a.Res)) * int64(len(b.Res))
		}
		cells.Add(al.Cells - before)
		full.Add(f)
		cache.Put(al)
	})
	return cells.Load(), full.Load()
}

// ThreadCounts returns the deduplicated ascending benchmark ladder
// {1, 2, 4, NumCPU} for threads-per-rank sweeps.
func ThreadCounts() []int {
	counts := []int{1, 2, 4, pool.DefaultThreads(1)}
	sort.Ints(counts)
	out := counts[:1]
	for _, c := range counts[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}
