package experiments

import (
	"sort"
	"sync/atomic"

	"profam/internal/align"
	"profam/internal/pool"
	"profam/internal/seq"
	"profam/internal/suffixtree"
)

// BenchPairs returns a deterministic all-vs-all pair list over the set,
// truncated to maxPairs, for the batch-alignment benchmarks.
func BenchPairs(set *seq.Set, maxPairs int) [][2]int {
	var pairs [][2]int
	n := set.Len()
	for i := 0; i < n && len(pairs) < maxPairs; i++ {
		for j := i + 1; j < n && len(pairs) < maxPairs; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return pairs
}

// AlignBatchKernel is the worker-side hot path of the hybrid execution
// model in isolation: align one task batch on a bounded goroutine pool,
// each chunk with a recycled aligner. It returns the total DP cells (a
// work checksum, identical for every thread count).
func AlignBatchKernel(set *seq.Set, pairs [][2]int, threads int) int64 {
	cache := pool.NewAlignerCache(nil)
	params := align.DefaultOverlapParams()
	var cells atomic.Int64
	pool.RunChunked(threads, len(pairs), func(lo, hi int) {
		al := cache.Get()
		before := al.Cells
		for i := lo; i < hi; i++ {
			a, b := set.Get(pairs[i][0]), set.Get(pairs[i][1])
			al.Overlaps(a.Res, b.Res, params)
		}
		cells.Add(al.Cells - before)
		cache.Put(al)
	})
	return cells.Load()
}

// SeedPair is a promising pair together with its maximal-match seed —
// the input shape the alignment cascade consumes.
type SeedPair struct {
	A, B int
	Seed align.SeedMatch
}

// BenchSeedPairs enumerates deduplicated promising pairs (sharing a
// maximal match of length ≥ psi) with their seed coordinates, truncated
// to maxPairs, for the cascade benchmarks.
func BenchSeedPairs(set *seq.Set, psi, maxPairs int) ([]SeedPair, error) {
	trees, err := suffixtree.Build(set, suffixtree.Options{MinMatch: psi})
	if err != nil {
		return nil, err
	}
	seen := map[int64]bool{}
	var out []SeedPair
	suffixtree.MergedPairs(trees, func(p suffixtree.Pair) bool {
		key := int64(p.SeqA)<<32 | int64(uint32(p.SeqB))
		if seen[key] {
			return true
		}
		seen[key] = true
		out = append(out, SeedPair{A: int(p.SeqA), B: int(p.SeqB),
			Seed: align.SeedMatch{PosA: int(p.OffA), PosB: int(p.OffB), Len: int(p.Len)}})
		return len(out) < maxPairs
	})
	return out, nil
}

// AlignCascadeKernel runs the seed-anchored containment cascade (the
// redundancy-removal predicate, the pipeline's dominant aligned-pair
// volume and the stage where the certified rejects fire) over the pair
// batch on a bounded goroutine pool, with the word-parallel kernels and
// batch-level profile reuse of the production worker path. It returns
// (cells, fullCells): the DP cells actually computed and what the exact
// full-matrix predicate would have cost on the same pairs — fullCells/
// cells is the cells-eliminated ratio.
func AlignCascadeKernel(set *seq.Set, pairs []SeedPair, threads int) (int64, int64) {
	return AlignCascadeKernelMode(set, pairs, threads, false)
}

// AlignCascadeKernelMode is AlignCascadeKernel with the kernel mode
// explicit: scalar == true is the -kernels=scalar reference arm (int32
// kernels, no profiles).
func AlignCascadeKernelMode(set *seq.Set, pairs []SeedPair, threads int, scalar bool) (int64, int64) {
	mode := align.KernelAuto
	if scalar {
		mode = align.KernelScalar
	}
	cache := pool.NewAlignerCacheKernels(nil, mode)
	var profs *pool.ProfileSet
	if !scalar {
		profs = pool.NewProfileCache(nil).NewSet()
		defer profs.Release()
	}
	params := align.DefaultContainParams()
	var cells, full atomic.Int64
	pool.RunChunked(threads, len(pairs), func(lo, hi int) {
		al := cache.Get()
		before := al.Cells
		var f int64
		for i := lo; i < hi; i++ {
			a, b := set.Get(pairs[i].A), set.Get(pairs[i].B)
			// Shorter-into-longer orientation, as in the RR worker: the
			// shared profile is fetched for the query (shorter) side.
			q, tg, seed := pairs[i].A, pairs[i].B, pairs[i].Seed
			if len(a.Res) > len(b.Res) {
				q, tg, seed = pairs[i].B, pairs[i].A, seed.Swapped()
			}
			qres, tres := set.Get(q).Res, set.Get(tg).Res
			var prof *align.Profile
			if profs != nil {
				prof = profs.Get(int32(q), qres)
			}
			al.ContainedCascadeProf(qres, tres, params, seed, prof)
			f += int64(len(a.Res)) * int64(len(b.Res))
		}
		cells.Add(al.Cells - before)
		full.Add(f)
		cache.Put(al)
	})
	return cells.Load(), full.Load()
}

// AlignStripedKernel runs the striped int16 local-score kernel over the
// pair batch with batch-level profile reuse, returning a score checksum.
// Against AlignLocalScalarKernel on the same pairs it isolates the
// striped kernel's win over the int32 scalar DP.
func AlignStripedKernel(set *seq.Set, pairs [][2]int, threads int) int64 {
	cache := pool.NewAlignerCacheKernels(nil, align.KernelAuto)
	profs := pool.NewProfileCache(nil).NewSet()
	defer profs.Release()
	var sum atomic.Int64
	pool.RunChunked(threads, len(pairs), func(lo, hi int) {
		al := cache.Get()
		var s int64
		for i := lo; i < hi; i++ {
			a, b := set.Get(pairs[i][0]), set.Get(pairs[i][1])
			prof := profs.Get(int32(pairs[i][0]), a.Res)
			v, ok := al.LocalScoreStripedProf(prof, b.Res)
			if !ok {
				v = al.LocalScore(a.Res, b.Res)
			}
			s += int64(v)
		}
		sum.Add(s)
		cache.Put(al)
	})
	return sum.Load()
}

// AlignLocalScalarKernel is AlignStripedKernel's reference arm: the
// exact int32 Smith–Waterman scores on the same pairs.
func AlignLocalScalarKernel(set *seq.Set, pairs [][2]int, threads int) int64 {
	cache := pool.NewAlignerCacheKernels(nil, align.KernelScalar)
	var sum atomic.Int64
	pool.RunChunked(threads, len(pairs), func(lo, hi int) {
		al := cache.Get()
		var s int64
		for i := lo; i < hi; i++ {
			a, b := set.Get(pairs[i][0]), set.Get(pairs[i][1])
			s += int64(al.LocalScore(a.Res, b.Res))
		}
		sum.Add(s)
		cache.Put(al)
	})
	return sum.Load()
}

// AlignBitParallelKernel runs the bit-parallel semi-global edit-distance
// kernel over the pair batch with batch-level profile reuse, returning a
// distance checksum. It is the cascade's cheapest certified-reject
// bound: ~64 DP cells per word operation.
func AlignBitParallelKernel(set *seq.Set, pairs [][2]int, threads int) int64 {
	cache := pool.NewAlignerCacheKernels(nil, align.KernelAuto)
	profs := pool.NewProfileCache(nil).NewSet()
	defer profs.Release()
	var sum atomic.Int64
	pool.RunChunked(threads, len(pairs), func(lo, hi int) {
		al := cache.Get()
		var s int64
		for i := lo; i < hi; i++ {
			a, b := set.Get(pairs[i][0]), set.Get(pairs[i][1])
			q, t := pairs[i][0], pairs[i][1]
			qres, tres := a.Res, b.Res
			if len(qres) > len(tres) {
				q, qres, tres = t, tres, qres
			}
			prof := profs.Get(int32(q), qres)
			s += int64(al.FitEditDistanceProf(prof, tres))
		}
		sum.Add(s)
		cache.Put(al)
	})
	return sum.Load()
}

// ThreadCounts returns the deduplicated ascending benchmark ladder
// {1, 2, 4, NumCPU} for threads-per-rank sweeps.
func ThreadCounts() []int {
	counts := []int{1, 2, 4, pool.DefaultThreads(1)}
	sort.Ints(counts)
	out := counts[:1]
	for _, c := range counts[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}
