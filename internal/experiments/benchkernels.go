package experiments

import (
	"sort"
	"sync/atomic"

	"profam/internal/align"
	"profam/internal/pool"
	"profam/internal/seq"
)

// BenchPairs returns a deterministic all-vs-all pair list over the set,
// truncated to maxPairs, for the batch-alignment benchmarks.
func BenchPairs(set *seq.Set, maxPairs int) [][2]int {
	var pairs [][2]int
	n := set.Len()
	for i := 0; i < n && len(pairs) < maxPairs; i++ {
		for j := i + 1; j < n && len(pairs) < maxPairs; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return pairs
}

// AlignBatchKernel is the worker-side hot path of the hybrid execution
// model in isolation: align one task batch on a bounded goroutine pool,
// each chunk with a recycled aligner. It returns the total DP cells (a
// work checksum, identical for every thread count).
func AlignBatchKernel(set *seq.Set, pairs [][2]int, threads int) int64 {
	cache := pool.NewAlignerCache(nil)
	params := align.DefaultOverlapParams()
	var cells atomic.Int64
	pool.RunChunked(threads, len(pairs), func(lo, hi int) {
		al := cache.Get()
		before := al.Cells
		for i := lo; i < hi; i++ {
			a, b := set.Get(pairs[i][0]), set.Get(pairs[i][1])
			al.Overlaps(a.Res, b.Res, params)
		}
		cells.Add(al.Cells - before)
		cache.Put(al)
	})
	return cells.Load()
}

// ThreadCounts returns the deduplicated ascending benchmark ladder
// {1, 2, 4, NumCPU} for threads-per-rank sweeps.
func ThreadCounts() []int {
	counts := []int{1, 2, 4, pool.DefaultThreads(1)}
	sort.Ints(counts)
	out := counts[:1]
	for _, c := range counts[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}
