package experiments

import (
	"fmt"
	"io"

	"profam/internal/mpi"
	"profam/internal/pace"
)

// AblateRow is one ablation configuration's outcome on the CCD phase.
type AblateRow struct {
	Name           string
	PairsGenerated int64
	PairsAligned   int64
	PairsClosure   int64
	SimSeconds     float64 // serial virtual time
	SameResult     bool    // components identical to the reference run
}

// Ablate runs the CCD phase under the design-choice ablations DESIGN.md
// calls out: the transitive-closure filter, the decreasing-match-length
// ordering, the ψ filter length, and the index implementation.
func Ablate(scale float64) ([]AblateRow, error) {
	set, _ := SetOfSize(int(500*scale), 77)

	type variant struct {
		name string
		cfg  pace.Config
	}
	variants := []variant{
		{"reference (psi=7, closure on, ordered, GST)", pace.Config{Psi: 7}},
		{"closure filter off", pace.Config{Psi: 7, DisableClosureFilter: true}},
		{"FIFO pair order", pace.Config{Psi: 7, RandomPairOrder: true}},
		{"psi=10", pace.Config{Psi: 10}},
		{"ESA index", pace.Config{Psi: 7, Index: pace.IndexESA}},
	}

	var refComp []int32
	var rows []AblateRow
	for i, v := range variants {
		var st pace.Stats
		var comp []int32
		mk, err := mpi.RunSim(1, mpi.BlueGeneLike(), func(c *mpi.Comm) {
			var err error
			comp, st, err = pace.ConnectedComponents(c, set, nil, v.cfg)
			if err != nil {
				panic(err)
			}
		})
		if err != nil {
			return nil, err
		}
		if i == 0 {
			refComp = comp
		}
		rows = append(rows, AblateRow{
			Name:           v.name,
			PairsGenerated: st.PairsGenerated,
			PairsAligned:   st.PairsAligned,
			PairsClosure:   st.PairsClosure,
			SimSeconds:     mk,
			SameResult:     samePartitionInt32(comp, refComp),
		})
	}
	return rows, nil
}

// samePartitionInt32 checks two component labelings induce the same
// partition.
func samePartitionInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int32]int32{}
	bwd := map[int32]int32{}
	for i := range a {
		if (a[i] < 0) != (b[i] < 0) {
			return false
		}
		if a[i] < 0 {
			continue
		}
		if v, ok := fwd[a[i]]; ok && v != b[i] {
			return false
		}
		if v, ok := bwd[b[i]]; ok && v != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

// PrintAblate renders the ablation table.
func PrintAblate(w io.Writer, rows []AblateRow) {
	fmt.Fprintln(w, "CCD design-choice ablations (serial; SameResult = components match the reference)")
	fmt.Fprintf(w, "%-44s %10s %10s %10s %10s %6s\n",
		"variant", "generated", "aligned", "closure", "simSec", "same")
	for _, r := range rows {
		fmt.Fprintf(w, "%-44s %10d %10d %10d %10.2f %6v\n",
			r.Name, r.PairsGenerated, r.PairsAligned, r.PairsClosure, r.SimSeconds, r.SameResult)
	}
}
