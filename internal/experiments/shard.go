package experiments

import (
	"profam"
	"profam/internal/mpi"
	"profam/internal/seq"
	"profam/internal/workload"
)

// ShardCorpus is the input for the sharding-win experiment: many short,
// highly redundant sequences, so pair filtering and verdict traffic
// serialize on the single master while the per-pair DP stays cheap —
// the regime LSH sharding exists to fix. Fixed-seed, so the simulated
// makespans are exactly reproducible.
func ShardCorpus() *seq.Set {
	set, _ := workload.Generate(workload.Params{
		Families: 120, MeanFamilySize: 70, MeanLength: 32,
		Divergence: 0.004, IndelRate: 0.001, Subfamilies: 1,
		ContainedFrac: 0.5, Singletons: 40, Seed: 4242,
	})
	return set
}

// ShardConfig is the pipeline configuration paired with ShardCorpus:
// small batches keep the master's per-pair handling on the critical
// path, and high thread counts keep worker DP off it.
func ShardConfig() profam.Config {
	return profam.Config{Psi: 6, MinComponentSize: 3, MinFamilySize: 3,
		BatchPairs: 128, BatchTasks: 32, ThreadsPerRank: 16}
}

// ShardSpeedup runs the pipeline on the virtual-time simulator at p
// ranks twice — single-master and sharded — and returns both makespans
// plus their ratio. Deterministic: same inputs always produce the same
// numbers.
func ShardSpeedup(set *seq.Set, cfg profam.Config, p, shards int, cm mpi.CostModel) (single, sharded, speedup float64, err error) {
	profam.RegisterWireTypes()
	run := func(s int) (float64, error) {
		c := cfg
		c.Shards = s
		return mpi.RunSim(p, cm, func(comm *mpi.Comm) {
			if _, e := profam.RunPipelineOn(comm, set, c); e != nil {
				panic(e)
			}
		})
	}
	if single, err = run(1); err != nil {
		return 0, 0, 0, err
	}
	if sharded, err = run(shards); err != nil {
		return 0, 0, 0, err
	}
	return single, sharded, single / sharded, nil
}
