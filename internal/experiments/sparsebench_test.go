package experiments

import "testing"

// The two pair-generation kernels enumerate the same candidate set, so
// their deduplicated pair counts must coincide; and the sparse peak
// must sit below the ESA sum even on a modest corpus.
func TestSparseBenchKernels(t *testing.T) {
	set, _ := SetOfSize(300, 47)
	esaPairs, err := PairGenESAKernel(set, 7)
	if err != nil {
		t.Fatal(err)
	}
	sparsePairs, err := PairGenSparseKernel(set, 7)
	if err != nil {
		t.Fatal(err)
	}
	if esaPairs == 0 || esaPairs != sparsePairs {
		t.Fatalf("pair counts diverge: esa=%d sparse=%d", esaPairs, sparsePairs)
	}
	esaBytes, sparseBytes, ratio, err := SparsePeakBytesRatio(set, 7)
	if err != nil {
		t.Fatal(err)
	}
	if esaBytes <= 0 || sparseBytes <= 0 {
		t.Fatalf("degenerate footprints: esa=%d sparse=%d", esaBytes, sparseBytes)
	}
	if ratio <= 1.0 {
		t.Fatalf("sparse peak (%d) not below ESA (%d): ratio %.2f", sparseBytes, esaBytes, ratio)
	}
}
