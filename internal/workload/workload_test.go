package workload

import (
	"math/rand"
	"strings"
	"testing"

	"profam/internal/align"
)

func TestGenerateShape(t *testing.T) {
	set, truth := Generate(Params{Families: 5, MeanFamilySize: 8, Singletons: 3, Seed: 7})
	if set.Len() != len(truth.Label) || set.Len() != len(truth.Redundant) {
		t.Fatalf("truth arrays out of sync: %d %d %d", set.Len(), len(truth.Label), len(truth.Redundant))
	}
	if truth.NumFamilies != 5 {
		t.Errorf("NumFamilies = %d, want 5", truth.NumFamilies)
	}
	// Every family label 0..4 has >= 2 members; singleton labels unique.
	counts := map[int]int{}
	for _, l := range truth.Label {
		counts[l]++
	}
	for f := 0; f < 5; f++ {
		if counts[f] < 2 {
			t.Errorf("family %d has %d members", f, counts[f])
		}
	}
	singles := 0
	for l, c := range counts {
		if l >= 5 {
			singles++
			if c != 1 {
				t.Errorf("singleton label %d has %d members", l, c)
			}
		}
	}
	if singles != 3 {
		t.Errorf("got %d singleton labels, want 3", singles)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Generate(Params{Seed: 42, Families: 4})
	b, _ := Generate(Params{Seed: 42, Families: 4})
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Seqs {
		if string(a.Get(i).Res) != string(b.Get(i).Res) {
			t.Fatalf("sequence %d differs between same-seed runs", i)
		}
	}
	c, _ := Generate(Params{Seed: 43, Families: 4})
	same := c.Len() == a.Len()
	if same {
		identical := true
		for i := range a.Seqs {
			if string(a.Get(i).Res) != string(c.Get(i).Res) {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical data")
		}
	}
}

func TestFragmentsAreContained(t *testing.T) {
	set, truth := Generate(Params{Families: 6, MeanFamilySize: 10, ContainedFrac: 0.5, Seed: 3})
	al := align.NewAligner(nil)
	p := align.DefaultContainParams()
	checked, contained := 0, 0
	for id, red := range truth.Redundant {
		if !red {
			continue
		}
		// The fragment's source is the immediately preceding sequence.
		src := set.Get(id - 1)
		if !strings.HasPrefix(set.Get(id).Name, src.Name) {
			t.Fatalf("fragment %q does not follow its source %q", set.Get(id).Name, src.Name)
		}
		checked++
		if ok, _ := al.Contained(set.Get(id).Res, src.Res, p); ok {
			contained++
		}
	}
	if checked == 0 {
		t.Fatal("no fragments generated")
	}
	if contained < checked*8/10 {
		t.Errorf("only %d/%d fragments satisfy Definition 1", contained, checked)
	}
}

func TestFamilyMembersOverlap(t *testing.T) {
	set, truth := Generate(Params{Families: 4, MeanFamilySize: 6, Divergence: 0.10, IndelRate: 0.005, Seed: 11})
	al := align.NewAligner(nil)
	p := align.DefaultOverlapParams()
	rng := rand.New(rand.NewSource(5))
	// Sample same-family pairs: most should pass Definition 2.
	byFam := map[int][]int{}
	for id, l := range truth.Label {
		if l < truth.NumFamilies && !truth.Redundant[id] {
			byFam[l] = append(byFam[l], id)
		}
	}
	tested, passed := 0, 0
	for _, ids := range byFam {
		for k := 0; k < 10 && len(ids) >= 2; k++ {
			i, j := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
			if i == j {
				continue
			}
			tested++
			if ok, _ := al.Overlaps(set.Get(i).Res, set.Get(j).Res, p); ok {
				passed++
			}
		}
	}
	if tested == 0 {
		t.Fatal("no pairs tested")
	}
	if passed < tested*7/10 {
		t.Errorf("only %d/%d same-family pairs overlap", passed, tested)
	}
}

func TestCrossFamilyPairsDoNotOverlap(t *testing.T) {
	set, truth := Generate(Params{Families: 6, MeanFamilySize: 5, Seed: 19})
	al := align.NewAligner(nil)
	p := align.DefaultOverlapParams()
	rng := rand.New(rand.NewSource(6))
	tested, passed := 0, 0
	for k := 0; k < 80; k++ {
		i, j := rng.Intn(set.Len()), rng.Intn(set.Len())
		if truth.Label[i] == truth.Label[j] {
			continue
		}
		tested++
		if ok, _ := al.Overlaps(set.Get(i).Res, set.Get(j).Res, p); ok {
			passed++
		}
	}
	if tested == 0 {
		t.Fatal("no cross pairs tested")
	}
	if passed > tested/10 {
		t.Errorf("%d/%d cross-family pairs overlap (too many false relations in generator)", passed, tested)
	}
}

func TestDomainFamiliesShareExactWords(t *testing.T) {
	set, truth := Generate(Params{Families: 1, DomainFamilies: 2, DomainSize: 5, Seed: 23})
	// Members of a domain family must share >= 1 exact 10-mer.
	byFam := map[int][]int{}
	for id, l := range truth.Label {
		if strings.HasPrefix(set.Get(id).Name, "dom") {
			byFam[l] = append(byFam[l], id)
		}
	}
	if len(byFam) != 2 {
		t.Fatalf("expected 2 domain families, got %d", len(byFam))
	}
	for fam, ids := range byFam {
		words := map[string]int{}
		for _, id := range ids {
			res := set.Get(id).Res
			seen := map[string]bool{}
			for o := 0; o+10 <= len(res); o++ {
				w := string(res[o : o+10])
				if !seen[w] {
					seen[w] = true
					words[w]++
				}
			}
		}
		shared := 0
		for _, c := range words {
			if c == len(ids) {
				shared++
			}
		}
		if shared == 0 {
			t.Errorf("domain family %d members share no exact 10-mers", fam)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	total := 0
	const n = 2000
	for i := 0; i < n; i++ {
		total += geometric(rng, 10)
	}
	mean := float64(total) / n
	if mean < 8 || mean > 12 {
		t.Errorf("geometric mean = %v, want ~10", mean)
	}
	if geometric(rng, 1) != 1 {
		t.Error("mean 1 must return 1")
	}
}

func TestMutateNeverEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		out := mutate(rng, []byte("AC"), 0.5, 0.9)
		if len(out) == 0 {
			t.Fatal("mutate produced empty sequence")
		}
	}
}
