// Package workload generates synthetic metagenomic ORF collections with
// known ground truth, standing in for the CAMERA/GOS environmental data
// the paper samples (which is not redistributable and far exceeds a
// single-node budget).
//
// A data set is a union of:
//
//   - global-similarity families: mutated descendants of a random
//     ancestral protein (substitutions + short indels), the structure the
//     paper's B_d reduction detects;
//   - domain families: sequences sharing a few conserved domain blocks
//     embedded in unrelated backbones, the structure the B_m reduction
//     detects;
//   - contained fragments: near-exact substrings of existing members,
//     which redundancy removal must eliminate;
//   - singletons: random sequences unrelated to everything else.
//
// Ground-truth family labels play the role of the GOS benchmark
// clustering in the quality experiments.
package workload

import (
	"fmt"
	"math/rand"

	"profam/internal/seq"
)

// Params configure generation. Zero values select the documented
// defaults.
type Params struct {
	Families       int     // number of global-similarity families (default 20)
	MeanFamilySize int     // geometric mean members per family (default 30)
	MeanLength     int     // mean ancestor length in residues (default 160)
	Divergence     float64 // per-residue substitution rate member vs ancestor (default 0.12)
	// Subfamilies > 1 gives each family hierarchical structure: the
	// family is a chain of subfamilies whose ancestors drift apart by
	// SubDivergence per hop. Members within a subfamily are strongly
	// similar; across subfamilies only weakly — the family forms one
	// connected component that fragments into several dense subgraphs,
	// like the paper's 22K single-cluster data set. Truth labels stay at
	// family granularity (the GOS-style benchmark view).
	Subfamilies   int     // default 1 (flat families)
	SubDivergence float64 // ancestor drift per subfamily hop (default 0.30)
	// DominantFrac is the fraction of a family's members placed in its
	// first subfamily (default 0.6 when Subfamilies > 1): real family
	// size distributions are strongly right-skewed — the paper's largest
	// dense subgraph holds ~60 % of its data set's covered sequences.
	DominantFrac float64
	// UniformSizes makes every family exactly MeanFamilySize members
	// (instead of geometric samples); used by controlled input-size
	// sweeps.
	UniformSizes   bool
	IndelRate      float64 // per-residue indel initiation rate (default 0.01)
	ContainedFrac  float64 // fraction of members that also spawn a contained fragment (default 0.15)
	Singletons     int     // unrelated sequences (default Families)
	DomainFamilies int     // number of domain-sharing families (default 0)
	DomainSize     int     // members per domain family (default 12)
	Seed           int64   // PRNG seed (default 1)
}

func (p Params) withDefaults() Params {
	if p.Families == 0 {
		p.Families = 20
	}
	if p.MeanFamilySize == 0 {
		p.MeanFamilySize = 30
	}
	if p.MeanLength == 0 {
		p.MeanLength = 160
	}
	if p.Divergence == 0 {
		p.Divergence = 0.12
	}
	if p.IndelRate == 0 {
		p.IndelRate = 0.01
	}
	if p.ContainedFrac == 0 {
		p.ContainedFrac = 0.15
	}
	if p.Subfamilies == 0 {
		p.Subfamilies = 1
	}
	if p.SubDivergence == 0 {
		p.SubDivergence = 0.30
	}
	if p.DominantFrac == 0 {
		p.DominantFrac = 0.6
	}
	if p.Singletons == 0 {
		p.Singletons = p.Families
	}
	if p.DomainSize == 0 {
		p.DomainSize = 12
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Truth is the generator's ground truth.
type Truth struct {
	// Label[id] is the family of sequence id. Singletons get unique
	// labels. Contained fragments carry their source's label.
	Label []int
	// Redundant[id] marks sequences emitted as contained fragments; the
	// redundancy-removal phase should eliminate (most of) these.
	Redundant []bool
	// NumFamilies is the number of distinct planted multi-member
	// families (global + domain), not counting singleton labels.
	NumFamilies int
}

// residue background frequencies (approximately the Robinson–Robinson
// amino-acid composition), as cumulative per-mille thresholds.
var background = []struct {
	r   byte
	cum int
}{
	{'A', 78}, {'R', 129}, {'N', 174}, {'D', 227}, {'C', 246},
	{'Q', 288}, {'E', 350}, {'G', 424}, {'H', 447}, {'I', 498},
	{'L', 589}, {'K', 648}, {'M', 671}, {'F', 711}, {'P', 763},
	{'S', 834}, {'T', 892}, {'W', 905}, {'Y', 937}, {'V', 1000},
}

func randResidue(rng *rand.Rand) byte {
	x := rng.Intn(1000)
	for _, b := range background {
		if x < b.cum {
			return b.r
		}
	}
	return 'V'
}

func randProtein(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = randResidue(rng)
	}
	return b
}

// mutate applies substitutions at rate div and short indels at rate
// indel, returning a new sequence.
func mutate(rng *rand.Rand, src []byte, div, indel float64) []byte {
	out := make([]byte, 0, len(src)+8)
	for i := 0; i < len(src); i++ {
		if rng.Float64() < indel {
			if rng.Intn(2) == 0 {
				// Deletion of 1–3 residues.
				i += rng.Intn(3) // loop increment deletes one more
				continue
			}
			// Insertion of 1–3 residues.
			for k := 0; k <= rng.Intn(3); k++ {
				out = append(out, randResidue(rng))
			}
		}
		c := src[i]
		if rng.Float64() < div {
			c = randResidue(rng)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		out = append(out, randResidue(rng))
	}
	return out
}

// geometric returns a sample with the given mean (≥ 1).
func geometric(rng *rand.Rand, mean int) int {
	if mean <= 1 {
		return 1
	}
	p := 1.0 / float64(mean)
	n := 1
	for rng.Float64() > p && n < 50*mean {
		n++
	}
	return n
}

// jitterLen samples a length around mean (±35 %).
func jitterLen(rng *rand.Rand, mean int) int {
	lo := mean * 65 / 100
	span := mean*135/100 - lo
	if span < 1 {
		span = 1
	}
	return lo + rng.Intn(span)
}

// Generate produces the data set and its ground truth.
func Generate(p Params) (*seq.Set, *Truth) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	set := seq.NewSet()
	truth := &Truth{}

	add := func(name string, res []byte, label int, redundant bool) {
		set.MustAdd(name, string(res))
		truth.Label = append(truth.Label, label)
		truth.Redundant = append(truth.Redundant, redundant)
	}

	label := 0
	// Global-similarity families.
	for f := 0; f < p.Families; f++ {
		anc := randProtein(rng, jitterLen(rng, p.MeanLength))
		size := p.MeanFamilySize
		if !p.UniformSizes {
			size = geometric(rng, p.MeanFamilySize)
		}
		if size < 2 {
			size = 2
		}
		subAnc := anc
		// The first subfamily is dominant; the rest split the remainder.
		restMean := 1
		if p.Subfamilies > 1 {
			restMean = int(float64(size)*(1-p.DominantFrac))/(p.Subfamilies-1) + 1
		}
		emitted := 0
		for sf := 0; emitted < size; sf++ {
			if sf > 0 {
				// Drift the subfamily ancestor along a chain so the
				// family stays one connected component while its dense
				// cores separate.
				subAnc = mutate(rng, subAnc, p.SubDivergence, 0)
			}
			var subSize int
			switch {
			case p.Subfamilies == 1:
				subSize = size
			case sf == 0:
				subSize = int(float64(size) * p.DominantFrac)
				if subSize < 1 {
					subSize = 1
				}
			default:
				// Satellite subfamilies stay geometric even under
				// UniformSizes: that flag pins the family total, not the
				// internal size spread (which Figure 5 depends on).
				subSize = geometric(rng, restMean)
			}
			if subSize > size-emitted {
				subSize = size - emitted
			}
			for m := 0; m < subSize; m++ {
				// Per-member divergence jitter (0.5×–1.5×) spreads the
				// within-family similarity distribution, so similarity
				// graphs are dense but not complete — matching the
				// ~76 % observed density the paper reports.
				memDiv := p.Divergence * (0.5 + rng.Float64())
				mem := mutate(rng, subAnc, memDiv, p.IndelRate)
				add(fmt.Sprintf("fam%d_s%d_m%d", f, sf, m), mem, label, false)
				emitted++
				if rng.Float64() < p.ContainedFrac && len(mem) >= 40 {
					// A near-exact fragment covering ≥ 60 % of the member.
					flen := len(mem)*60/100 + rng.Intn(len(mem)*35/100)
					if flen > len(mem) {
						flen = len(mem)
					}
					off := rng.Intn(len(mem) - flen + 1)
					frag := mutate(rng, mem[off:off+flen], 0.01, 0)
					add(fmt.Sprintf("fam%d_s%d_m%d_frag", f, sf, m), frag, label, true)
				}
			}
		}
		label++
	}

	// Domain families: k shared blocks in unrelated backbones.
	for f := 0; f < p.DomainFamilies; f++ {
		ndom := 2 + rng.Intn(2)
		domains := make([][]byte, ndom)
		for d := range domains {
			domains[d] = randProtein(rng, 30+rng.Intn(20))
		}
		for m := 0; m < p.DomainSize; m++ {
			var res []byte
			res = append(res, randProtein(rng, 10+rng.Intn(20))...)
			for _, d := range domains {
				// Domains stay near-exact across members (conserved).
				res = append(res, mutate(rng, d, 0.02, 0)...)
				res = append(res, randProtein(rng, 5+rng.Intn(15))...)
			}
			add(fmt.Sprintf("dom%d_m%d", f, m), res, label, false)
		}
		label++
	}
	truth.NumFamilies = label

	// Singletons.
	for s := 0; s < p.Singletons; s++ {
		add(fmt.Sprintf("sing%d", s), randProtein(rng, jitterLen(rng, p.MeanLength)), label, false)
		label++
	}

	return set, truth
}

// LabelsOf extracts, for a subset of sequence IDs, their truth labels.
func (t *Truth) LabelsOf(ids []int) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = t.Label[id]
	}
	return out
}
