package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTruthRoundTrip(t *testing.T) {
	set, truth := Generate(Params{Families: 3, MeanFamilySize: 5, ContainedFrac: 0.3, Seed: 77})
	var buf bytes.Buffer
	if err := WriteTruth(&buf, set, truth); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTruth(&buf, set)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.Label {
		if got.Label[i] != truth.Label[i] {
			t.Fatalf("label %d: %d != %d", i, got.Label[i], truth.Label[i])
		}
		if got.Redundant[i] != truth.Redundant[i] {
			t.Fatalf("redundant %d mismatch", i)
		}
	}
	if got.NumFamilies == 0 {
		t.Error("NumFamilies not recovered")
	}
}

func TestReadTruthErrors(t *testing.T) {
	set, truth := Generate(Params{Families: 2, MeanFamilySize: 3, Seed: 5})
	_ = truth

	// Missing sequence.
	if _, err := ReadTruth(strings.NewReader("#h\nonly-one\t0\t0\n"), set); err == nil {
		t.Error("missing sequences accepted")
	}
	// Malformed rows.
	for _, bad := range []string{
		"name-without-fields\n",
		"a\tx\t0\n",
		"a\t1\t7\n",
		"a\t1\n",
	} {
		if _, err := ReadTruth(strings.NewReader(bad), set); err == nil {
			t.Errorf("malformed row %q accepted", strings.TrimSpace(bad))
		}
	}
}

func TestReadTruthIgnoresCommentsAndBlanks(t *testing.T) {
	set, truth := Generate(Params{Families: 2, MeanFamilySize: 3, ContainedFrac: 0.01, Seed: 8})
	var buf bytes.Buffer
	buf.WriteString("# leading comment\n\n")
	if err := WriteTruth(&buf, set, truth); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\n# trailing comment\n")
	if _, err := ReadTruth(&buf, set); err != nil {
		t.Fatal(err)
	}
}
