package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"profam/internal/seq"
)

// WriteTruth serialises ground truth as a tab-separated file
// (name, family label, redundant flag), one row per sequence of set, in
// sequence order. cmd/datagen uses it; ReadTruth inverts it.
func WriteTruth(w io.Writer, set *seq.Set, t *Truth) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "#name\tfamily\tredundant"); err != nil {
		return err
	}
	for i, s := range set.Seqs {
		red := 0
		if t.Redundant[i] {
			red = 1
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%d\n", s.Name, t.Label[i], red); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTruth parses a truth TSV and aligns it with set by sequence name.
// Every sequence of set must appear in the file.
func ReadTruth(r io.Reader, set *seq.Set) (*Truth, error) {
	type row struct {
		label     int
		redundant bool
	}
	byName := map[string]row{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineno := 0
	maxLabel := -1
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("workload: truth line %d: want 3 tab-separated fields, got %d", lineno, len(parts))
		}
		label, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("workload: truth line %d: bad label %q", lineno, parts[1])
		}
		red, err := strconv.Atoi(parts[2])
		if err != nil || (red != 0 && red != 1) {
			return nil, fmt.Errorf("workload: truth line %d: bad redundant flag %q", lineno, parts[2])
		}
		byName[parts[0]] = row{label: label, redundant: red == 1}
		if label > maxLabel {
			maxLabel = label
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t := &Truth{
		Label:     make([]int, set.Len()),
		Redundant: make([]bool, set.Len()),
	}
	for i, s := range set.Seqs {
		r, ok := byName[s.Name]
		if !ok {
			return nil, fmt.Errorf("workload: truth file missing sequence %q", s.Name)
		}
		t.Label[i] = r.label
		t.Redundant[i] = r.redundant
	}
	// NumFamilies cannot be recovered exactly (singleton labels are
	// indistinguishable from 1-member families); approximate with the
	// count of labels holding ≥ 2 members.
	counts := map[int]int{}
	for _, l := range t.Label {
		counts[l]++
	}
	for _, c := range counts {
		if c >= 2 {
			t.NumFamilies++
		}
	}
	return t, nil
}

// ReadTruthFile reads a truth TSV from disk.
func ReadTruthFile(path string, set *seq.Set) (*Truth, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTruth(f, set)
}
