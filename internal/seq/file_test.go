package seq

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadFASTAFileTestdata(t *testing.T) {
	set, err := ReadFASTAFile(filepath.Join("testdata", "sample.fasta"))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 4 {
		t.Fatalf("read %d records, want 4", set.Len())
	}
	if set.Get(0).Name != "orf00001 hypothetical protein, contig 12" {
		t.Errorf("name = %q", set.Get(0).Name)
	}
	if set.Get(0).Len() != 83 {
		t.Errorf("wrapped record length = %d, want 83", set.Get(0).Len())
	}
	if set.Get(3).Name != "orf00004" {
		t.Errorf("bare header = %q", set.Get(3).Name)
	}
}

func TestReadFASTAFileMissing(t *testing.T) {
	if _, err := ReadFASTAFile(filepath.Join("testdata", "nope.fasta")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWriteFASTAFileRoundTrip(t *testing.T) {
	set, err := ReadFASTAFile(filepath.Join("testdata", "sample.fasta"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.fasta")
	if err := WriteFASTAFile(path, set, 60); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTAFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != set.Len() {
		t.Fatalf("round trip lost records")
	}
	for i := range set.Seqs {
		if string(back.Get(i).Res) != string(set.Get(i).Res) {
			t.Errorf("record %d changed", i)
		}
	}
	// Write failure path: unwritable directory.
	if err := WriteFASTAFile(filepath.Join(path, "x", "y.fasta"), set, 0); err == nil {
		t.Error("writing under a file path should fail")
	}
	_ = os.Remove(path)
}
