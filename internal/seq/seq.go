// Package seq provides the fundamental sequence types used throughout
// profam: an amino-acid alphabet, the Sequence record, and sets of
// sequences with stable integer identifiers.
//
// All downstream components (suffix tree, aligners, clustering) operate on
// byte slices over the alphabet defined here, so this package is the single
// place where residue encoding decisions live.
package seq

import (
	"fmt"
	"strings"
)

// The 20 standard amino acids plus the ambiguity codes B, Z, X and the
// rare residues U (selenocysteine) and O (pyrrolysine). The terminator
// byte is reserved for suffix-tree sentinels and never appears inside a
// sequence.
const (
	// Residues is the canonical ordering of accepted residue letters.
	Residues = "ACDEFGHIKLMNPQRSTVWYBZXUO"

	// AlphabetSize is the number of distinct residue codes (not counting
	// the terminator).
	AlphabetSize = len(Residues)

	// Terminator is the sentinel byte used by the generalized suffix tree
	// to separate sequences. It compares lower than every residue.
	Terminator byte = 0
)

// codeOf maps an ASCII letter (upper or lower case) to its residue code in
// [1, AlphabetSize], or 0 if the letter is not a valid residue.
var codeOf [256]byte

// letterOf is the inverse of codeOf for valid codes.
var letterOf [AlphabetSize + 1]byte

func init() {
	for i := 0; i < len(Residues); i++ {
		c := Residues[i]
		codeOf[c] = byte(i + 1)
		codeOf[c|0x20] = byte(i + 1) // lower case
		letterOf[i+1] = c
	}
}

// Code returns the residue code of letter r in [1, AlphabetSize], or 0 if
// r is not a valid amino-acid letter.
func Code(r byte) byte { return codeOf[r] }

// Letter returns the upper-case ASCII letter for residue code c.
// It panics if c is not a valid code.
func Letter(c byte) byte {
	if c == 0 || int(c) > AlphabetSize {
		panic(fmt.Sprintf("seq: invalid residue code %d", c))
	}
	return letterOf[c]
}

// Valid reports whether every byte of s is a valid residue letter.
func Valid(s string) bool {
	if len(s) == 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if codeOf[s[i]] == 0 {
			return false
		}
	}
	return true
}

// Clean returns s upper-cased with every invalid residue letter replaced
// by 'X'. It is used when ingesting FASTA records from the wild.
func Clean(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := codeOf[s[i]]
		if c == 0 {
			b.WriteByte('X')
		} else {
			b.WriteByte(letterOf[c])
		}
	}
	return b.String()
}

// Sequence is a single amino-acid sequence with a stable identifier.
// ID is the index of the sequence within its Set and is assigned by the
// Set, not by callers.
type Sequence struct {
	ID   int    // index within the owning Set
	Name string // FASTA header (without '>')
	Res  []byte // residues as ASCII letters (upper case)
}

// Len returns the number of residues.
func (s *Sequence) Len() int { return len(s.Res) }

// String renders the sequence as ">Name\nRES...".
func (s *Sequence) String() string {
	return fmt.Sprintf(">%s\n%s", s.Name, string(s.Res))
}

// Set is an ordered collection of sequences with IDs 0..N-1.
type Set struct {
	Seqs []*Sequence
}

// NewSet returns an empty sequence set.
func NewSet() *Set { return &Set{} }

// Add appends a sequence with the given name and residue string, assigning
// the next free ID. The residue string must be valid (see Valid); invalid
// input is rejected with an error so that parse errors surface early.
func (t *Set) Add(name, residues string) (*Sequence, error) {
	if !Valid(residues) {
		return nil, fmt.Errorf("seq: sequence %q contains invalid residues or is empty", name)
	}
	s := &Sequence{ID: len(t.Seqs), Name: name, Res: []byte(strings.ToUpper(residues))}
	t.Seqs = append(t.Seqs, s)
	return s, nil
}

// MustAdd is Add for programmatic callers with known-good input.
func (t *Set) MustAdd(name, residues string) *Sequence {
	s, err := t.Add(name, residues)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of sequences in the set.
func (t *Set) Len() int { return len(t.Seqs) }

// Get returns the sequence with the given ID.
func (t *Set) Get(id int) *Sequence { return t.Seqs[id] }

// TotalResidues returns the summed length of all sequences.
func (t *Set) TotalResidues() int {
	n := 0
	for _, s := range t.Seqs {
		n += len(s.Res)
	}
	return n
}

// MeanLength returns the average sequence length, or 0 for an empty set.
func (t *Set) MeanLength() float64 {
	if len(t.Seqs) == 0 {
		return 0
	}
	return float64(t.TotalResidues()) / float64(len(t.Seqs))
}

// Subset returns a new Set containing copies of the sequences whose IDs
// are listed in ids, renumbered 0..len(ids)-1. The OrigID mapping is
// returned alongside: orig[i] is the ID in t of the i-th sequence of the
// subset.
func (t *Set) Subset(ids []int) (*Set, []int) {
	sub := NewSet()
	orig := make([]int, 0, len(ids))
	for _, id := range ids {
		src := t.Seqs[id]
		cp := &Sequence{ID: len(sub.Seqs), Name: src.Name, Res: src.Res}
		sub.Seqs = append(sub.Seqs, cp)
		orig = append(orig, id)
	}
	return sub, orig
}
