package seq

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// ReadFASTA parses FASTA-formatted records from r into a new Set.
// Residue letters outside the amino-acid alphabet are replaced by 'X'
// (see Clean); records with empty sequences are rejected.
func ReadFASTA(r io.Reader) (*Set, error) {
	set := NewSet()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)

	var name string
	var body strings.Builder
	haveRecord := false

	flush := func() error {
		if !haveRecord {
			return nil
		}
		if body.Len() == 0 {
			return fmt.Errorf("seq: FASTA record %q has no residues", name)
		}
		if _, err := set.Add(name, Clean(body.String())); err != nil {
			return err
		}
		body.Reset()
		return nil
	}

	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '>' {
			if err := flush(); err != nil {
				return nil, err
			}
			name = strings.TrimSpace(line[1:])
			if name == "" {
				name = fmt.Sprintf("seq%d", set.Len())
			}
			haveRecord = true
			continue
		}
		if !haveRecord {
			return nil, fmt.Errorf("seq: line %d: residue data before first FASTA header", lineno)
		}
		body.WriteString(line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return set, nil
}

// ReadFASTAFile reads a FASTA file from disk.
func ReadFASTAFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFASTA(f)
}

// WriteFASTA writes the set to w in FASTA format, wrapping residue lines
// at width columns (width <= 0 means no wrapping).
func WriteFASTA(w io.Writer, set *Set, width int) error {
	bw := bufio.NewWriter(w)
	for _, s := range set.Seqs {
		if _, err := fmt.Fprintf(bw, ">%s\n", s.Name); err != nil {
			return err
		}
		res := s.Res
		if width <= 0 {
			if _, err := bw.Write(res); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
			continue
		}
		for off := 0; off < len(res); off += width {
			end := off + width
			if end > len(res) {
				end = len(res)
			}
			if _, err := bw.Write(res[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFASTAFile writes the set to a file in FASTA format.
func WriteFASTAFile(path string, set *Set, width int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFASTA(f, set, width); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
