package seq

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestCodeLetterRoundTrip(t *testing.T) {
	for i := 0; i < len(Residues); i++ {
		r := Residues[i]
		c := Code(r)
		if c == 0 {
			t.Fatalf("Code(%q) = 0, want nonzero", r)
		}
		if got := Letter(c); got != r {
			t.Errorf("Letter(Code(%q)) = %q", r, got)
		}
		// Lower case maps to the same code.
		if Code(r|0x20) != c {
			t.Errorf("Code(lower %q) != Code(%q)", r|0x20, r)
		}
	}
}

func TestCodeInvalid(t *testing.T) {
	for _, r := range []byte{'1', ' ', '*', '-', 'J', 'j', 0, '\n'} {
		if Code(r) != 0 {
			t.Errorf("Code(%q) = %d, want 0", r, Code(r))
		}
	}
}

func TestLetterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Letter(0) did not panic")
		}
	}()
	Letter(0)
}

func TestValid(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"ACDEFG", true},
		{"acdefg", true},
		{"", false},
		{"AC-DE", false},
		{"ACJDE", false},
		{"X", true},
	}
	for _, c := range cases {
		if got := Valid(c.in); got != c.want {
			t.Errorf("Valid(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClean(t *testing.T) {
	if got := Clean("ac-De*"); got != "ACXDEX" {
		t.Errorf("Clean = %q, want ACXDEX", got)
	}
}

func TestSetAddAssignsSequentialIDs(t *testing.T) {
	s := NewSet()
	for i := 0; i < 5; i++ {
		sq := s.MustAdd("n", "ACDEF")
		if sq.ID != i {
			t.Fatalf("ID = %d, want %d", sq.ID, i)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSetAddRejectsInvalid(t *testing.T) {
	s := NewSet()
	if _, err := s.Add("bad", "AC DE"); err == nil {
		t.Fatal("Add accepted invalid residues")
	}
	if _, err := s.Add("empty", ""); err == nil {
		t.Fatal("Add accepted empty sequence")
	}
}

func TestSetStats(t *testing.T) {
	s := NewSet()
	s.MustAdd("a", "ACDE")
	s.MustAdd("b", "ACDEFG")
	if got := s.TotalResidues(); got != 10 {
		t.Errorf("TotalResidues = %d, want 10", got)
	}
	if got := s.MeanLength(); got != 5 {
		t.Errorf("MeanLength = %v, want 5", got)
	}
	if got := NewSet().MeanLength(); got != 0 {
		t.Errorf("empty MeanLength = %v, want 0", got)
	}
}

func TestSubset(t *testing.T) {
	s := NewSet()
	s.MustAdd("a", "AAAA")
	s.MustAdd("b", "CCCC")
	s.MustAdd("c", "DDDD")
	sub, orig := s.Subset([]int{2, 0})
	if sub.Len() != 2 {
		t.Fatalf("subset len = %d", sub.Len())
	}
	if string(sub.Get(0).Res) != "DDDD" || string(sub.Get(1).Res) != "AAAA" {
		t.Errorf("subset contents wrong: %v %v", sub.Get(0), sub.Get(1))
	}
	if orig[0] != 2 || orig[1] != 0 {
		t.Errorf("orig mapping = %v", orig)
	}
	if sub.Get(0).ID != 0 || sub.Get(1).ID != 1 {
		t.Errorf("subset IDs not renumbered")
	}
}

func TestFASTARoundTrip(t *testing.T) {
	in := ">alpha desc here\nACDEFGHIKLMNPQRSTVWY\n>beta\nAAAA\nCCCC\n\n>gamma\nwwww\n"
	set, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Fatalf("parsed %d records, want 3", set.Len())
	}
	if set.Get(0).Name != "alpha desc here" {
		t.Errorf("name = %q", set.Get(0).Name)
	}
	if string(set.Get(1).Res) != "AAAACCCC" {
		t.Errorf("beta residues = %q", set.Get(1).Res)
	}
	if string(set.Get(2).Res) != "WWWW" {
		t.Errorf("gamma residues not upper-cased: %q", set.Get(2).Res)
	}

	var buf bytes.Buffer
	if err := WriteFASTA(&buf, set, 7); err != nil {
		t.Fatal(err)
	}
	set2, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if set2.Len() != set.Len() {
		t.Fatalf("round trip lost records: %d != %d", set2.Len(), set.Len())
	}
	for i := range set.Seqs {
		if string(set.Get(i).Res) != string(set2.Get(i).Res) {
			t.Errorf("record %d residues changed", i)
		}
		if set.Get(i).Name != set2.Get(i).Name {
			t.Errorf("record %d name changed", i)
		}
	}
}

func TestFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACDE\n>x\nACDE\n")); err == nil {
		t.Error("accepted residues before header")
	}
	if _, err := ReadFASTA(strings.NewReader(">x\n>y\nACDE\n")); err == nil {
		t.Error("accepted empty record")
	}
	if _, err := ReadFASTA(strings.NewReader(">x\nACDE\n>y\n")); err == nil {
		t.Error("accepted trailing empty record")
	}
}

func TestFASTAUnnamedRecord(t *testing.T) {
	set, err := ReadFASTA(strings.NewReader(">\nACDE\n"))
	if err != nil {
		t.Fatal(err)
	}
	if set.Get(0).Name == "" {
		t.Error("empty header not given a default name")
	}
}

// Property: Clean always produces a Valid string of the same length for
// nonempty input.
func TestCleanProducesValid(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		// Avoid newline-ish bytes turning into something Valid rejects:
		// Clean must handle arbitrary bytes anyway.
		out := Clean(string(raw))
		return len(out) == len(raw) && Valid(out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FASTA write/read round trip preserves any set of valid
// sequences.
func TestFASTARoundTripProperty(t *testing.T) {
	f := func(bodies [][]byte) bool {
		set := NewSet()
		for i, b := range bodies {
			if len(b) == 0 {
				b = []byte{0}
			}
			clean := Clean(string(b))
			set.MustAdd(strings.TrimSpace("s"+string(rune('a'+i%26))), clean)
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, set, 11); err != nil {
			return false
		}
		got, err := ReadFASTA(&buf)
		if err != nil {
			return false
		}
		if got.Len() != set.Len() {
			return false
		}
		for i := range set.Seqs {
			if string(got.Get(i).Res) != string(set.Get(i).Res) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
