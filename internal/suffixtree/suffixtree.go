// Package suffixtree builds generalized suffix trees (GSTs) over sets of
// amino-acid sequences and enumerates maximal exact matches between
// different sequences — the pattern-matching filter at the heart of the
// paper's redundancy-removal and clustering phases.
//
// The tree is built bucket-wise: suffixes are partitioned by their first
// PrefixLen residues, and each bucket becomes an independent subtree. This
// is the same decomposition PaCE uses to distribute the GST across
// processors: a rank builds only the buckets assigned to it, so the whole
// structure never has to exist in one memory.
//
// A match between suffixes (s_a, off_a) and (s_b, off_b) of length L is
// *right-maximal* when the suffixes diverge (or end) after L residues, and
// *left-maximal* when the preceding residues differ (or either suffix
// starts its sequence). Every maximal match of length ≥ MinMatch between
// two different sequences is enumerated exactly once, at the tree node
// whose string depth is the match length.
package suffixtree

import (
	"fmt"
	"sort"

	"profam/internal/seq"
)

// Options configure tree construction.
type Options struct {
	// MinMatch (ψ) is the minimum maximal-match length of interest.
	// Suffixes shorter than MinMatch are skipped entirely (they cannot
	// take part in a qualifying match). Must be ≥ 1.
	MinMatch int
	// PrefixLen is the bucketing granularity: suffixes are grouped by
	// their first PrefixLen residues. Must be in [1, MinMatch]. With the
	// 25-letter alphabet, PrefixLen 2 yields up to 625 buckets — enough
	// to balance hundreds of ranks. Defaults to 2 (or MinMatch if
	// smaller).
	PrefixLen int
}

// Validate checks the options and fills defaults; exposed for
// alternative index builders (internal/esa) that share these options.
func (o Options) Validate() (Options, error) { return o.withDefaults() }

func (o Options) withDefaults() (Options, error) {
	if o.MinMatch < 1 {
		return o, fmt.Errorf("suffixtree: MinMatch must be >= 1, got %d", o.MinMatch)
	}
	if o.PrefixLen == 0 {
		o.PrefixLen = 2
		if o.PrefixLen > o.MinMatch {
			o.PrefixLen = o.MinMatch
		}
	}
	if o.PrefixLen < 1 || o.PrefixLen > o.MinMatch {
		return o, fmt.Errorf("suffixtree: PrefixLen must be in [1, MinMatch], got %d", o.PrefixLen)
	}
	return o, nil
}

// Suffix identifies one suffix of one sequence.
type Suffix struct {
	Seq int32 // sequence ID within the set
	Off int32 // starting offset of the suffix
}

// Bucket is a group of suffixes sharing the same PrefixLen-residue prefix.
// Weight approximates the construction cost (total remaining suffix
// residues) and drives load-balanced assignment of buckets to ranks.
type Bucket struct {
	Prefix   string
	Suffixes []Suffix
	Weight   int64
}

// Buckets partitions the ≥MinMatch-long suffixes of set into buckets,
// sorted by descending weight so a greedy assignment balances well.
func Buckets(set *seq.Set, opt Options) ([]Bucket, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	byPrefix := make(map[string]*Bucket)
	for _, s := range set.Seqs {
		res := s.Res
		for off := 0; off+opt.MinMatch <= len(res); off++ {
			p := string(res[off : off+opt.PrefixLen])
			b := byPrefix[p]
			if b == nil {
				b = &Bucket{Prefix: p}
				byPrefix[p] = b
			}
			b.Suffixes = append(b.Suffixes, Suffix{Seq: int32(s.ID), Off: int32(off)})
			b.Weight += int64(len(res) - off)
		}
	}
	out := make([]Bucket, 0, len(byPrefix))
	for _, b := range byPrefix {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Prefix < out[j].Prefix
	})
	return out, nil
}

// AssignBuckets greedily distributes buckets across p ranks so that total
// weights are balanced (longest-processing-time heuristic over the
// already weight-sorted bucket list). Returns, per rank, the indices into
// buckets owned by that rank.
func AssignBuckets(buckets []Bucket, p int) [][]int {
	own := make([][]int, p)
	load := make([]int64, p)
	for i, b := range buckets {
		best := 0
		for r := 1; r < p; r++ {
			if load[r] < load[best] {
				best = r
			}
		}
		own[best] = append(own[best], i)
		load[best] += b.Weight
	}
	return own
}

// Leaf is one suffix stored in DFS order, annotated with the residue that
// precedes it in its sequence (0 when the suffix starts the sequence).
type Leaf struct {
	Seq  int32
	Off  int32
	Left byte
}

// Node is an internal tree node with string depth ≥ MinMatch. Its leaves
// occupy leaves[Bounds[0]:Bounds[len(Bounds)-1]], and child k's leaves are
// leaves[Bounds[k]:Bounds[k+1]]. TermChild is the index of the child
// holding suffixes that *end* exactly at this node (-1 if none); pairs
// within that child are right-maximal too.
type Node struct {
	Depth     int32
	Bounds    []int32
	TermChild int8
}

// SubTree is the compressed suffix tree of one bucket, reduced to exactly
// what maximal-match enumeration needs: DFS-ordered leaves plus the
// qualifying internal nodes sorted by decreasing string depth.
type SubTree struct {
	set    *seq.Set
	opt    Options
	Leaves []Leaf
	Nodes  []Node // sorted by Depth descending

	boundsArena []int32
}

// BuildBucket constructs the subtree for one bucket.
func BuildBucket(set *seq.Set, b Bucket, opt Options) (*SubTree, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &SubTree{set: set, opt: opt}
	if len(b.Suffixes) > 0 {
		sufs := make([]Suffix, len(b.Suffixes))
		copy(sufs, b.Suffixes)
		t.Leaves = make([]Leaf, 0, len(sufs))
		t.build(sufs, int32(opt.PrefixLen))
	}
	sort.SliceStable(t.Nodes, func(i, j int) bool { return t.Nodes[i].Depth > t.Nodes[j].Depth })
	return t, nil
}

// charAt returns the residue of suffix s at string depth d, or 0 when the
// suffix ends before d (the terminator).
func (t *SubTree) charAt(s Suffix, d int32) byte {
	res := t.set.Seqs[s.Seq].Res
	i := s.Off + d
	if int(i) >= len(res) {
		return 0
	}
	return res[i]
}

func (t *SubTree) leftChar(s Suffix) byte {
	if s.Off == 0 {
		return 0
	}
	return t.set.Seqs[s.Seq].Res[s.Off-1]
}

func (t *SubTree) emitLeaf(s Suffix) {
	t.Leaves = append(t.Leaves, Leaf{Seq: s.Seq, Off: s.Off, Left: t.leftChar(s)})
}

// build processes a group of suffixes sharing a common prefix of length
// depth, extending the shared prefix and recursing on divergence.
func (t *SubTree) build(sufs []Suffix, depth int32) {
	for {
		if len(sufs) == 1 {
			t.emitLeaf(sufs[0])
			return
		}
		// Try to extend the common prefix by one residue.
		c := t.charAt(sufs[0], depth)
		same := c != 0
		if same {
			for _, s := range sufs[1:] {
				if t.charAt(s, depth) != c {
					same = false
					break
				}
			}
		}
		if !same {
			break
		}
		depth++
	}

	// Divergence (or common end) at this depth: partition by next residue.
	var counts [256]int32
	for _, s := range sufs {
		counts[t.charAt(s, depth)]++
	}
	var nchildren int
	for _, n := range counts {
		if n > 0 {
			nchildren++
		}
	}

	record := depth >= int32(t.opt.MinMatch) &&
		(nchildren >= 2 || counts[0] >= 2)

	var node Node
	if record {
		node = Node{Depth: depth, TermChild: -1}
		node.Bounds = t.newBounds(nchildren + 1)
		node.Bounds = node.Bounds[:0]
		node.Bounds = append(node.Bounds, int32(len(t.Leaves)))
	}

	// Stable partition into per-child groups, ordered by byte value
	// (terminator group first).
	var starts [256]int32
	var acc int32
	for ci := 0; ci < 256; ci++ {
		starts[ci] = acc
		acc += counts[ci]
	}
	part := make([]Suffix, len(sufs))
	next := starts
	for _, s := range sufs {
		c := t.charAt(s, depth)
		part[next[c]] = s
		next[c]++
	}

	childIdx := int8(0)
	for ci := 0; ci < 256; ci++ {
		if counts[ci] == 0 {
			continue
		}
		group := part[starts[ci] : starts[ci]+counts[ci]]
		if ci == 0 {
			// Suffixes ending exactly here: leaves of this node.
			for _, s := range group {
				t.emitLeaf(s)
			}
			if record {
				node.TermChild = childIdx
			}
		} else {
			t.build(group, depth+1)
		}
		if record {
			node.Bounds = append(node.Bounds, int32(len(t.Leaves)))
		}
		childIdx++
	}
	if record {
		t.Nodes = append(t.Nodes, node)
	}
}

// newBounds allocates child-boundary storage from a shared arena to avoid
// one tiny allocation per node.
func (t *SubTree) newBounds(n int) []int32 {
	if cap(t.boundsArena)-len(t.boundsArena) < n {
		t.boundsArena = make([]int32, 0, 1<<16)
	}
	lo := len(t.boundsArena)
	t.boundsArena = t.boundsArena[:lo+n]
	return t.boundsArena[lo : lo+n : lo+n]
}

// Pair is one maximal-match occurrence between two different sequences.
// SeqA < SeqB always holds; offsets locate the match start within each.
type Pair struct {
	SeqA, OffA int32
	SeqB, OffB int32
	Len        int32
}

// ForEachPair enumerates every maximal-match pair of length ≥ MinMatch in
// decreasing match-length order. Enumeration stops early if fn returns
// false. Pairs between occurrences in the same sequence are skipped, as
// the pipeline only cares about cross-sequence evidence.
func (t *SubTree) ForEachPair(fn func(Pair) bool) {
	for ni := range t.Nodes {
		if !t.emitNodePairs(&t.Nodes[ni], fn) {
			return
		}
	}
}

func (t *SubTree) emitNodePairs(n *Node, fn func(Pair) bool) bool {
	nc := len(n.Bounds) - 1
	emit := func(a, b Leaf) bool {
		if a.Seq == b.Seq {
			return true
		}
		// Left-maximality: both preceded by the same residue means the
		// match extends left and is reported at the extended position.
		if a.Left != 0 && a.Left == b.Left {
			return true
		}
		p := Pair{SeqA: a.Seq, OffA: a.Off, SeqB: b.Seq, OffB: b.Off, Len: n.Depth}
		if a.Seq > b.Seq {
			p.SeqA, p.OffA, p.SeqB, p.OffB = b.Seq, b.Off, a.Seq, a.Off
		}
		return fn(p)
	}
	// Cross-child pairs: right-maximal because the suffixes diverge here.
	for c1 := 0; c1 < nc; c1++ {
		g1 := t.Leaves[n.Bounds[c1]:n.Bounds[c1+1]]
		for c2 := c1 + 1; c2 < nc; c2++ {
			g2 := t.Leaves[n.Bounds[c2]:n.Bounds[c2+1]]
			for _, a := range g1 {
				for _, b := range g2 {
					if !emit(a, b) {
						return false
					}
				}
			}
		}
	}
	// Pairs within the terminator child: both suffixes end here, so the
	// match cannot extend right either.
	if tc := int(n.TermChild); tc >= 0 {
		g := t.Leaves[n.Bounds[tc]:n.Bounds[tc+1]]
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				if !emit(g[i], g[j]) {
					return false
				}
			}
		}
	}
	return true
}

// TreeStats summarise one subtree's footprint.
type TreeStats struct {
	Leaves   int
	Nodes    int
	MaxDepth int32 // deepest recorded node's string depth
	// ApproxBytes estimates the in-memory size: leaves (9 B packed to
	// 12), node headers, and child-bound entries.
	ApproxBytes int64
}

// Stats computes the subtree's footprint summary.
func (t *SubTree) Stats() TreeStats {
	st := TreeStats{Leaves: len(t.Leaves), Nodes: len(t.Nodes)}
	var bounds int64
	for i := range t.Nodes {
		if t.Nodes[i].Depth > st.MaxDepth {
			st.MaxDepth = t.Nodes[i].Depth
		}
		bounds += int64(len(t.Nodes[i].Bounds))
	}
	st.ApproxBytes = int64(len(t.Leaves))*12 + int64(len(t.Nodes))*32 + bounds*4
	return st
}

// EmitNodePairs enumerates the pairs of node i only (callers drive their
// own node ordering, e.g. a cross-tree merge). Returns false if fn
// stopped the enumeration.
func (t *SubTree) EmitNodePairs(i int, fn func(Pair) bool) bool {
	return t.emitNodePairs(&t.Nodes[i], fn)
}

// CountPairs returns the number of pairs ForEachPair would emit.
func (t *SubTree) CountPairs() int64 {
	var n int64
	t.ForEachPair(func(Pair) bool { n++; return true })
	return n
}

// Build constructs subtrees for all buckets serially. It is the
// single-rank convenience path used by tests, examples and the serial
// pipeline; the distributed path assigns buckets to ranks and calls
// BuildBucket per rank.
func Build(set *seq.Set, opt Options) ([]*SubTree, error) {
	buckets, err := Buckets(set, opt)
	if err != nil {
		return nil, err
	}
	trees := make([]*SubTree, 0, len(buckets))
	for _, b := range buckets {
		st, err := BuildBucket(set, b, opt)
		if err != nil {
			return nil, err
		}
		trees = append(trees, st)
	}
	return trees, nil
}

// MergedPairs enumerates pairs from several subtrees in globally
// decreasing match-length order by merging the per-tree node lists.
// Enumeration stops early if fn returns false.
func MergedPairs(trees []*SubTree, fn func(Pair) bool) {
	type ref struct {
		t *SubTree
		n *Node
	}
	var refs []ref
	for _, t := range trees {
		for ni := range t.Nodes {
			refs = append(refs, ref{t, &t.Nodes[ni]})
		}
	}
	sort.SliceStable(refs, func(i, j int) bool { return refs[i].n.Depth > refs[j].n.Depth })
	for _, r := range refs {
		if !r.t.emitNodePairs(r.n, fn) {
			return
		}
	}
}
