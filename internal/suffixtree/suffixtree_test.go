package suffixtree

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"profam/internal/seq"
)

const residues = "ACDEFG" // small alphabet provokes many matches

func randomSet(rng *rand.Rand, nseq, maxLen int) *seq.Set {
	set := seq.NewSet()
	for i := 0; i < nseq; i++ {
		n := 1 + rng.Intn(maxLen)
		b := make([]byte, n)
		for j := range b {
			b[j] = residues[rng.Intn(len(residues))]
		}
		set.MustAdd(fmt.Sprintf("s%d", i), string(b))
	}
	return set
}

// bruteMaximalPairs enumerates all maximal matches of length >= psi
// between different sequences by direct O(n^2 l^2) scanning.
func bruteMaximalPairs(set *seq.Set, psi int) map[Pair]bool {
	out := map[Pair]bool{}
	for a := 0; a < set.Len(); a++ {
		for b := a + 1; b < set.Len(); b++ {
			x, y := set.Get(a).Res, set.Get(b).Res
			for i := 0; i < len(x); i++ {
				for j := 0; j < len(y); j++ {
					if x[i] != y[j] {
						continue
					}
					if i > 0 && j > 0 && x[i-1] == y[j-1] {
						continue // not left-maximal
					}
					l := 0
					for i+l < len(x) && j+l < len(y) && x[i+l] == y[j+l] {
						l++
					}
					if l >= psi {
						out[Pair{int32(a), int32(i), int32(b), int32(j), int32(l)}] = true
					}
				}
			}
		}
	}
	return out
}

func treePairs(t *testing.T, set *seq.Set, opt Options) map[Pair]bool {
	t.Helper()
	trees, err := Build(set, opt)
	if err != nil {
		t.Fatal(err)
	}
	got := map[Pair]bool{}
	MergedPairs(trees, func(p Pair) bool {
		if got[p] {
			t.Fatalf("pair emitted twice: %+v", p)
		}
		got[p] = true
		return true
	})
	return got
}

func TestPairsMatchBruteForceSmall(t *testing.T) {
	set := seq.NewSet()
	set.MustAdd("a", "ACDEFGACDEFG")
	set.MustAdd("b", "CDEFGAC")
	set.MustAdd("c", "ACDEFG")
	for _, psi := range []int{2, 3, 4, 5} {
		want := bruteMaximalPairs(set, psi)
		got := treePairs(t, set, Options{MinMatch: psi})
		if len(got) != len(want) {
			t.Errorf("psi=%d: got %d pairs, want %d", psi, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Errorf("psi=%d: missing pair %+v", psi, p)
			}
		}
		for p := range got {
			if !want[p] {
				t.Errorf("psi=%d: spurious pair %+v", psi, p)
			}
		}
	}
}

func TestIdenticalSequences(t *testing.T) {
	// Identical sequences share exactly one maximal match: the whole
	// string (suffix pairs within the terminator child).
	set := seq.NewSet()
	set.MustAdd("a", "ACDEFGHIK")
	set.MustAdd("b", "ACDEFGHIK")
	got := treePairs(t, set, Options{MinMatch: 3})
	want := bruteMaximalPairs(set, 3)
	if len(got) != len(want) {
		t.Fatalf("got %d pairs want %d: %v", len(got), len(want), got)
	}
	full := Pair{0, 0, 1, 0, 9}
	if !got[full] {
		t.Errorf("full-length match not reported: %v", got)
	}
}

func TestRepeatRuns(t *testing.T) {
	// Low-complexity runs are the classic suffix-tree stress case.
	set := seq.NewSet()
	set.MustAdd("a", "AAAAAAAA")
	set.MustAdd("b", "AAAA")
	want := bruteMaximalPairs(set, 2)
	got := treePairs(t, set, Options{MinMatch: 2})
	if len(got) != len(want) {
		t.Fatalf("got %d want %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Errorf("missing %+v", p)
		}
	}
}

func TestPairsMatchBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set := randomSet(rng, 2+rng.Intn(5), 40)
		psi := 2 + rng.Intn(4)
		opt := Options{MinMatch: psi, PrefixLen: 1 + rng.Intn(2)}
		if opt.PrefixLen > psi {
			opt.PrefixLen = psi
		}
		want := bruteMaximalPairs(set, psi)
		trees, err := Build(set, opt)
		if err != nil {
			return false
		}
		got := map[Pair]bool{}
		ok := true
		MergedPairs(trees, func(p Pair) bool {
			if got[p] {
				ok = false
			}
			got[p] = true
			return true
		})
		if !ok || len(got) != len(want) {
			t.Logf("seed %d: got %d pairs want %d", seed, len(got), len(want))
			return false
		}
		for p := range want {
			if !got[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDecreasingLengthOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	set := randomSet(rng, 6, 60)
	trees, err := Build(set, Options{MinMatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	last := int32(1 << 30)
	MergedPairs(trees, func(p Pair) bool {
		if p.Len > last {
			t.Fatalf("pair length increased: %d after %d", p.Len, last)
		}
		last = p.Len
		return true
	})
	// Per-tree enumeration must also be non-increasing.
	for _, tr := range trees {
		last = 1 << 30
		tr.ForEachPair(func(p Pair) bool {
			if p.Len > last {
				t.Fatalf("subtree pair length increased")
			}
			last = p.Len
			return true
		})
	}
}

func TestEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	set := randomSet(rng, 5, 50)
	trees, err := Build(set, Options{MinMatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	MergedPairs(trees, func(p Pair) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop delivered %d pairs, want 3", n)
	}
}

func TestShortSuffixesSkipped(t *testing.T) {
	set := seq.NewSet()
	set.MustAdd("a", "AC") // shorter than psi: contributes nothing
	set.MustAdd("b", "ACDEFG")
	set.MustAdd("c", "ACDEFG")
	buckets, err := Buckets(set, Options{MinMatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range buckets {
		for _, s := range b.Suffixes {
			if s.Seq == 0 {
				t.Errorf("suffix of too-short sequence bucketed: %+v", s)
			}
		}
	}
}

func TestBucketsRespectPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	set := randomSet(rng, 4, 30)
	buckets, err := Buckets(set, Options{MinMatch: 4, PrefixLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	total := 0
	for _, b := range buckets {
		if seen[b.Prefix] {
			t.Errorf("duplicate bucket %q", b.Prefix)
		}
		seen[b.Prefix] = true
		for _, s := range b.Suffixes {
			res := set.Get(int(s.Seq)).Res
			if string(res[s.Off:s.Off+2]) != b.Prefix {
				t.Errorf("suffix %+v in wrong bucket %q", s, b.Prefix)
			}
		}
		total += len(b.Suffixes)
	}
	want := 0
	for _, s := range set.Seqs {
		if s.Len() >= 4 {
			want += s.Len() - 3
		}
	}
	if total != want {
		t.Errorf("bucketed %d suffixes, want %d", total, want)
	}
}

func TestAssignBucketsBalance(t *testing.T) {
	buckets := make([]Bucket, 20)
	for i := range buckets {
		buckets[i].Weight = int64(100 - i)
	}
	own := AssignBuckets(buckets, 4)
	covered := map[int]bool{}
	loads := make([]int64, 4)
	for r, idxs := range own {
		for _, i := range idxs {
			if covered[i] {
				t.Fatalf("bucket %d assigned twice", i)
			}
			covered[i] = true
			loads[r] += buckets[i].Weight
		}
	}
	if len(covered) != len(buckets) {
		t.Fatalf("only %d/%d buckets assigned", len(covered), len(buckets))
	}
	var lo, hi = loads[0], loads[0]
	for _, l := range loads {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if hi > 2*lo {
		t.Errorf("poor balance: loads %v", loads)
	}
}

func TestOptionsValidation(t *testing.T) {
	set := seq.NewSet()
	set.MustAdd("a", "ACDEFG")
	if _, err := Buckets(set, Options{MinMatch: 0}); err == nil {
		t.Error("MinMatch 0 accepted")
	}
	if _, err := Buckets(set, Options{MinMatch: 2, PrefixLen: 3}); err == nil {
		t.Error("PrefixLen > MinMatch accepted")
	}
}

func TestCountPairs(t *testing.T) {
	set := seq.NewSet()
	set.MustAdd("a", "ACDEFGHIK")
	set.MustAdd("b", "ACDEFGHIK")
	trees, err := Build(set, Options{MinMatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, tr := range trees {
		total += tr.CountPairs()
	}
	if total != int64(len(bruteMaximalPairs(set, 3))) {
		t.Errorf("CountPairs = %d, want %d", total, len(bruteMaximalPairs(set, 3)))
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	set := randomSet(rng, 200, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(set, Options{MinMatch: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumeratePairs(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	set := randomSet(rng, 200, 150)
	trees, err := Build(set, Options{MinMatch: 6})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		MergedPairs(trees, func(Pair) bool { n++; return true })
	}
}

func TestStats(t *testing.T) {
	set := seq.NewSet()
	set.MustAdd("a", "ACDEFGHIK")
	set.MustAdd("b", "ACDEFGHIK")
	trees, err := Build(set, Options{MinMatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	leaves, nodes := 0, 0
	for _, tr := range trees {
		st := tr.Stats()
		leaves += st.Leaves
		nodes += st.Nodes
		if st.Leaves != len(tr.Leaves) || st.Nodes != len(tr.Nodes) {
			t.Errorf("stats disagree with structure: %+v", st)
		}
		if st.Nodes > 0 && st.MaxDepth < 3 {
			t.Errorf("MaxDepth %d below MinMatch", st.MaxDepth)
		}
		if st.ApproxBytes <= 0 && st.Leaves > 0 {
			t.Errorf("ApproxBytes not computed: %+v", st)
		}
	}
	want := 0
	for _, s := range set.Seqs {
		if s.Len() >= 3 {
			want += s.Len() - 2
		}
	}
	if leaves != want {
		t.Errorf("total leaves %d, want %d", leaves, want)
	}
	if nodes == 0 {
		t.Error("identical sequences should produce nodes")
	}
}
