// Package msa builds multiple sequence alignments of protein families by
// star alignment: the member with the highest summed pairwise similarity
// becomes the center, every other member is aligned to it globally, and
// the pairwise gap structures are merged ("once a gap, always a gap").
//
// The paper's Figure 1 presents a family this way — an aligned block of
// members with conserved columns visible down the page. The pipeline
// itself never needs an MSA; this package serves reporting and the
// family-viewer example.
package msa

import (
	"bytes"
	"fmt"
	"sort"

	"profam/internal/align"
	"profam/internal/seq"
)

// Alignment is a rectangular alignment block: Rows[i] has equal length
// for all i, with '-' for gaps.
type Alignment struct {
	Names  []string
	Rows   [][]byte
	Center int // index of the star center within Rows
}

// Width returns the number of alignment columns.
func (a *Alignment) Width() int {
	if len(a.Rows) == 0 {
		return 0
	}
	return len(a.Rows[0])
}

// Conservation returns, per column, the fraction of rows carrying the
// column's most common residue; gap rows count against the column, so a
// mostly-gap column is never reported as conserved.
func (a *Alignment) Conservation() []float64 {
	w := a.Width()
	out := make([]float64, w)
	for col := 0; col < w; col++ {
		counts := map[byte]int{}
		for _, row := range a.Rows {
			if c := row[col]; c != '-' {
				counts[c]++
			}
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		if len(a.Rows) > 0 {
			out[col] = float64(best) / float64(len(a.Rows))
		}
	}
	return out
}

// Format renders the alignment in blocks of width columns with a
// conservation line ('*' = fully conserved, ':' = ≥ 50 %).
func (a *Alignment) Format(width int) string {
	if width <= 0 {
		width = 60
	}
	cons := a.Conservation()
	nameW := 0
	for _, n := range a.Names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var buf bytes.Buffer
	for off := 0; off < a.Width(); off += width {
		end := off + width
		if end > a.Width() {
			end = a.Width()
		}
		for i, row := range a.Rows {
			fmt.Fprintf(&buf, "%-*s  %s\n", nameW, a.Names[i], row[off:end])
		}
		fmt.Fprintf(&buf, "%-*s  ", nameW, "")
		for col := off; col < end; col++ {
			switch {
			case cons[col] == 1:
				buf.WriteByte('*')
			case cons[col] >= 0.5:
				buf.WriteByte(':')
			default:
				buf.WriteByte(' ')
			}
		}
		buf.WriteString("\n\n")
	}
	return buf.String()
}

// Star aligns the given member sequences of set (IDs) and returns the
// multiple alignment. At least one member is required.
func Star(set *seq.Set, members []int, sc *align.Scoring) (*Alignment, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("msa: no members")
	}
	if sc == nil {
		sc = align.DefaultScoring()
	}
	ids := append([]int(nil), members...)
	sort.Ints(ids)

	out := &Alignment{}
	for _, id := range ids {
		out.Names = append(out.Names, set.Get(id).Name)
	}
	if len(ids) == 1 {
		out.Rows = [][]byte{append([]byte(nil), set.Get(ids[0]).Res...)}
		return out, nil
	}

	al := align.NewAligner(sc)

	// Choose the center: the member with the highest summed local score
	// against all others.
	sums := make([]int64, len(ids))
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			s := int64(al.LocalScore(set.Get(ids[i]).Res, set.Get(ids[j]).Res))
			sums[i] += s
			sums[j] += s
		}
	}
	center := 0
	for i, s := range sums {
		if s > sums[center] {
			center = i
		}
	}
	out.Center = center

	// Align every member to the center globally, collecting per-member
	// gap structures relative to center coordinates.
	centerRes := set.Get(ids[center]).Res
	type pairAln struct {
		ops []align.EditOp
	}
	alns := make([]pairAln, len(ids))
	// gapAfter[k] = maximum insertion length (member residues) opened
	// between center positions k-1 and k (k in 0..len(center)).
	gapAfter := make([]int, len(centerRes)+1)
	for i, id := range ids {
		if i == center {
			continue
		}
		r := al.Align(set.Get(id).Res, centerRes, align.Global)
		alns[i] = pairAln{ops: r.Ops}
		// Track insertions relative to the center.
		cpos := 0
		for _, op := range r.Ops {
			switch op.Op {
			case 'M', 'D': // both consume center residues
				cpos += op.Len
			case 'I':
				if op.Len > gapAfter[cpos] {
					gapAfter[cpos] = op.Len
				}
			}
		}
	}

	// Column layout: before center position k there are gapAfter[k]
	// insertion columns.
	width := len(centerRes)
	for _, g := range gapAfter {
		width += g
	}
	colOf := make([]int, len(centerRes)+1) // first column of center pos k
	col := 0
	for k := 0; k <= len(centerRes); k++ {
		col += gapAfter[k]
		colOf[k] = col
		col++
	}

	blank := func() []byte {
		row := make([]byte, width)
		for i := range row {
			row[i] = '-'
		}
		return row
	}

	out.Rows = make([][]byte, len(ids))
	// Center row.
	crow := blank()
	for k, c := range centerRes {
		crow[colOf[k]] = c
	}
	out.Rows[center] = crow

	// Member rows.
	for i, id := range ids {
		if i == center {
			continue
		}
		row := blank()
		res := set.Get(id).Res
		mpos, cpos := 0, 0
		for _, op := range alns[i].ops {
			switch op.Op {
			case 'M':
				for k := 0; k < op.Len; k++ {
					row[colOf[cpos]] = res[mpos]
					mpos++
					cpos++
				}
			case 'D': // gap in member: center advances
				cpos += op.Len
			case 'I': // member insertion: fill the insertion columns,
				// right-aligned against the following center column for
				// stable-looking blocks.
				start := colOf[cpos] - op.Len
				for k := 0; k < op.Len; k++ {
					row[start+k] = res[mpos]
					mpos++
				}
			}
		}
		out.Rows[i] = row
	}
	return out, nil
}
