package msa

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"profam/internal/seq"
	"profam/internal/workload"
)

func degap(row []byte) string {
	return string(bytes.ReplaceAll(row, []byte("-"), nil))
}

func TestStarIdenticalMembers(t *testing.T) {
	set := seq.NewSet()
	s := "MKWVTFISLLFLFSSAYSRGV"
	for i := 0; i < 4; i++ {
		set.MustAdd("m", s)
	}
	a, err := Star(set, []int{0, 1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Width() != len(s) {
		t.Errorf("width %d, want %d", a.Width(), len(s))
	}
	for _, row := range a.Rows {
		if string(row) != s {
			t.Errorf("row %q, want %q", row, s)
		}
	}
	for _, c := range a.Conservation() {
		if c != 1 {
			t.Errorf("conservation %v, want 1", c)
		}
	}
	if !strings.Contains(a.Format(60), "*") {
		t.Error("format lacks conservation markers")
	}
}

func TestStarWithInsertion(t *testing.T) {
	set := seq.NewSet()
	base := "MKWVTFISLLFLFSSAYSRGVFRRDTHKSE"
	set.MustAdd("a", base)
	set.MustAdd("b", base)
	set.MustAdd("ins", base[:15]+"GGGG"+base[15:])
	a, err := Star(set, []int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Width() < len(base)+4 {
		t.Errorf("width %d too small for the insertion", a.Width())
	}
	// Degapping must reproduce every input sequence exactly.
	for i, row := range a.Rows {
		want := string(set.Get(i).Res)
		if degap(row) != want {
			t.Errorf("row %d degapped = %q, want %q", i, degap(row), want)
		}
	}
}

func TestStarSingleAndEmpty(t *testing.T) {
	set := seq.NewSet()
	set.MustAdd("only", "ACDEFGHIK")
	a, err := Star(set, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Width() != 9 || len(a.Rows) != 1 {
		t.Errorf("single-member MSA wrong: %+v", a)
	}
	if _, err := Star(set, nil, nil); err == nil {
		t.Error("empty member list accepted")
	}
}

// Property: every row of a star alignment degaps to its input sequence
// and all rows have equal width.
func TestStarRoundTripProperty(t *testing.T) {
	f := func(s int64) bool {
		rng := rand.New(rand.NewSource(s))
		set, _ := workload.Generate(workload.Params{
			Families: 1, MeanFamilySize: 3 + rng.Intn(5), MeanLength: 40 + rng.Intn(60),
			Divergence: 0.10, IndelRate: 0.02, ContainedFrac: 0.01,
			Singletons: 1, Seed: s,
		})
		var members []int
		for i := 0; i < set.Len(); i++ {
			if strings.HasPrefix(set.Get(i).Name, "fam0") && !strings.Contains(set.Get(i).Name, "frag") {
				members = append(members, i)
			}
		}
		if len(members) < 2 {
			return true
		}
		a, err := Star(set, members, nil)
		if err != nil {
			return false
		}
		w := a.Width()
		for i, row := range a.Rows {
			if len(row) != w {
				return false
			}
			if degap(row) != string(set.Get(members[i]).Res) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConservationDropsWithDivergence(t *testing.T) {
	set, _ := workload.Generate(workload.Params{
		Families: 1, MeanFamilySize: 6, MeanLength: 80,
		Divergence: 0.15, IndelRate: 0, ContainedFrac: 0.01, Singletons: 1, Seed: 5,
	})
	var members []int
	for i := 0; i < set.Len(); i++ {
		if strings.HasPrefix(set.Get(i).Name, "fam0") {
			members = append(members, i)
		}
	}
	a, err := Star(set, members, nil)
	if err != nil {
		t.Fatal(err)
	}
	cons := a.Conservation()
	perfect := 0
	for _, c := range cons {
		if c > 1.000001 || c < 0 {
			t.Fatalf("conservation out of range: %v", c)
		}
		if c == 1 {
			perfect++
		}
	}
	if perfect == len(cons) {
		t.Error("divergent family shows 100% conservation everywhere")
	}
	if perfect == 0 {
		t.Error("no conserved columns at 15% divergence (suspicious)")
	}
}
