package msa_test

import (
	"fmt"

	"profam/internal/msa"
	"profam/internal/seq"
)

// ExampleStar aligns three family members; the middle one carries an
// insertion, which opens a gap column in the others.
func ExampleStar() {
	set := seq.NewSet()
	set.MustAdd("m0", "MKWVTFISLLFLF")
	set.MustAdd("m1", "MKWVTFGGISLLFLF")
	set.MustAdd("m2", "MKWVTFISLLFLF")
	a, err := msa.Star(set, []int{0, 1, 2}, nil)
	if err != nil {
		panic(err)
	}
	for i, row := range a.Rows {
		fmt.Printf("%s %s\n", a.Names[i], row)
	}
	// Output:
	// m0 MKWVTF--ISLLFLF
	// m1 MKWVTFGGISLLFLF
	// m2 MKWVTF--ISLLFLF
}
