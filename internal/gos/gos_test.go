package gos

import (
	"testing"

	"profam/internal/quality"
	"profam/internal/seq"
	"profam/internal/workload"
)

func TestBaselineRecoversPlantedFamilies(t *testing.T) {
	set, truth := workload.Generate(workload.Params{
		Families: 4, MeanFamilySize: 8, MeanLength: 100,
		Divergence: 0.05, IndelRate: 0.002, ContainedFrac: 0.2,
		Singletons: 3, Seed: 21,
	})
	res := Run(set, Config{})
	if res.Alignments == 0 || res.Cells == 0 {
		t.Fatal("no work recorded")
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters found")
	}
	labels := quality.LabelsFromClusters(res.Clusters, set.Len())
	c, err := quality.Compare(labels, truth.Label)
	if err != nil {
		t.Fatal(err)
	}
	if c.Precision() < 0.8 {
		t.Errorf("baseline precision %.2f too low: %s", c.Precision(), c)
	}
	if c.Sensitivity() < 0.4 {
		t.Errorf("baseline sensitivity %.2f too low: %s", c.Sensitivity(), c)
	}
}

func TestBaselineRemovesFragments(t *testing.T) {
	set, truth := workload.Generate(workload.Params{
		Families: 3, MeanFamilySize: 6, ContainedFrac: 0.4, Seed: 33,
	})
	res := Run(set, Config{})
	planted, removed := 0, 0
	for id, red := range truth.Redundant {
		if red {
			planted++
			if !res.Keep[id] {
				removed++
			}
		}
	}
	if planted == 0 {
		t.Fatal("no fragments planted")
	}
	if removed < planted*7/10 {
		t.Errorf("baseline removed %d/%d fragments", removed, planted)
	}
}

func TestQuadraticCost(t *testing.T) {
	// The baseline must do ~n^2/2 alignments; that is its defining cost.
	gen := func(n int) *seq.Set {
		set, _ := workload.Generate(workload.Params{
			Families: 2, MeanFamilySize: n / 2, MeanLength: 60,
			Singletons: 1, ContainedFrac: 0.01, Seed: 2,
		})
		return set
	}
	set := gen(20)
	res := Run(set, Config{})
	n := int64(set.Len())
	min := n * (n - 1) / 2 // step 2 alone visits all surviving pairs
	if res.Alignments < min/2 {
		t.Errorf("alignments %d suspiciously low for n=%d", res.Alignments, n)
	}
}

func TestClustersDisjointAndSorted(t *testing.T) {
	set, _ := workload.Generate(workload.Params{
		Families: 4, MeanFamilySize: 7, Divergence: 0.05, Seed: 12,
	})
	res := Run(set, Config{})
	seen := map[int]bool{}
	lastSize := 1 << 30
	for _, cl := range res.Clusters {
		if len(cl) > lastSize {
			t.Error("clusters not sorted by size desc")
		}
		lastSize = len(cl)
		for _, id := range cl {
			if seen[id] {
				t.Fatalf("sequence %d in two clusters", id)
			}
			seen[id] = true
			if !res.Keep[id] {
				t.Errorf("redundant sequence %d clustered", id)
			}
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	set := seq.NewSet()
	res := Run(set, Config{})
	if len(res.Clusters) != 0 {
		t.Error("empty set produced clusters")
	}
	set.MustAdd("only", "MKWVTFISLLFLFSSAYS")
	res = Run(set, Config{})
	if len(res.Clusters) != 0 {
		t.Error("single sequence produced clusters")
	}
	if !res.Keep[0] {
		t.Error("single sequence removed")
	}
}
