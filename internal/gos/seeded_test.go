package gos

import (
	"testing"

	"profam/internal/quality"
	"profam/internal/workload"
)

func TestSeededMatchesExhaustiveQuality(t *testing.T) {
	set, truth := workload.Generate(workload.Params{
		Families: 4, MeanFamilySize: 10, MeanLength: 110,
		Divergence: 0.06, ContainedFrac: 0.15, Singletons: 5, Seed: 41,
	})
	exh := Run(set, Config{})
	sdd := Run(set, Config{Seeded: true})

	if sdd.Alignments >= exh.Alignments {
		t.Errorf("seeded mode did not reduce alignments: %d vs %d", sdd.Alignments, exh.Alignments)
	}

	qe, err := quality.Compare(quality.LabelsFromClusters(exh.Clusters, set.Len()), truth.Label)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := quality.Compare(quality.LabelsFromClusters(sdd.Clusters, set.Len()), truth.Label)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Sensitivity() < qe.Sensitivity()-0.1 {
		t.Errorf("seeded sensitivity dropped: %.2f vs %.2f", qs.Sensitivity(), qe.Sensitivity())
	}
	if qs.Precision() < qe.Precision()-0.05 {
		t.Errorf("seeded precision dropped: %.2f vs %.2f", qs.Precision(), qe.Precision())
	}
	t.Logf("exhaustive: %d alignments, %s", exh.Alignments, qe)
	t.Logf("seeded:     %d alignments, %s", sdd.Alignments, qs)
}

func TestSeededRemovesFragmentsToo(t *testing.T) {
	set, truth := workload.Generate(workload.Params{
		Families: 3, MeanFamilySize: 6, ContainedFrac: 0.4, Seed: 33,
	})
	res := Run(set, Config{Seeded: true})
	planted, removed := 0, 0
	for id, red := range truth.Redundant {
		if red {
			planted++
			if !res.Keep[id] {
				removed++
			}
		}
	}
	if planted == 0 {
		t.Fatal("no fragments planted")
	}
	if removed < planted*6/10 {
		t.Errorf("seeded baseline removed %d/%d fragments", removed, planted)
	}
}

func TestSeededBadParamsFallBack(t *testing.T) {
	set, _ := workload.Generate(workload.Params{Families: 2, MeanFamilySize: 4, Seed: 9})
	cfg := Config{Seeded: true}
	cfg.Seed.W = 9 // invalid: falls back to exhaustive rather than failing
	res := Run(set, cfg)
	n := int64(set.Len())
	if res.Alignments < n*(n-1)/2 {
		t.Errorf("fallback to exhaustive did not happen: %d alignments", res.Alignments)
	}
}

func BenchmarkBaselineModes(b *testing.B) {
	set, _ := workload.Generate(workload.Params{
		Families: 4, MeanFamilySize: 15, MeanLength: 120,
		Divergence: 0.08, Singletons: 10, Seed: 3,
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Run(set, Config{})
		}
	})
	b.Run("seeded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Run(set, Config{Seeded: true})
		}
	})
}
