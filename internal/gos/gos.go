// Package gos implements the comparison baseline: the GOS project's
// protein-family methodology as outlined in Section II of the paper
// (Yooseph et al., PLoS Biology 2007), reduced to its sequence-similarity
// core:
//
//  1. Redundancy removal by all-versus-all containment testing
//     (BLASTP stands in for our Smith–Waterman aligner).
//  2. Full similarity-graph construction over all remaining pairs with a
//     strict similarity cutoff (GOS used 70 %).
//  3. Dense-subgraph detection by bounded core-set creation (two vertices
//     join a core when they share at least K neighbours — the paper
//     criticises the fixed K=10), relaxed expansion, and merging of
//     intersecting expanded sets.
//
// The deliberate Θ(n²) structure of steps 1–2 is the cost baseline the
// paper's suffix-tree filter is measured against; the Alignments/Cells
// counters expose it.
package gos

import (
	"sort"

	"profam/internal/align"
	"profam/internal/blastish"
	"profam/internal/seq"
	"profam/internal/unionfind"
)

// Config parameterises the baseline.
type Config struct {
	// Contain is the redundancy-removal rule (default 95 %/95 %).
	Contain align.ContainParams
	// Edge is the similarity-graph cutoff (default: 70 % positives over
	// 80 % of the longer sequence, after GOS).
	Edge align.OverlapParams
	// K is the shared-neighbour threshold for core membership
	// (default 10, the GOS restriction the paper critiques).
	K int
	// CoreMax bounds core-set size (default 100).
	CoreMax int
	// MinSize drops clusters smaller than this (default 2).
	MinSize int
	// Scoring for all alignments (default BLOSUM62 11/1).
	Scoring *align.Scoring
	// Seeded replaces the exhaustive all-versus-all pair enumeration
	// with the BLAST-style cascade (word index → two-hit → ungapped
	// X-drop → banded confirmation), which is how the real GOS pipeline
	// used BLASTP. The exhaustive mode remains the cost reference.
	Seeded bool
	// SeedMinScore is the minimum banded score for a seeded candidate
	// pair (default 35).
	SeedMinScore int32
	// Seed tunes the cascade (zero value = blastish defaults).
	Seed blastish.Params
}

func (c Config) withDefaults() Config {
	if c.Contain == (align.ContainParams{}) {
		c.Contain = align.DefaultContainParams()
	}
	if c.Edge == (align.OverlapParams{}) {
		c.Edge = align.OverlapParams{MinSimilarity: 0.70, MinLongCoverage: 0.80}
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.CoreMax == 0 {
		c.CoreMax = 100
	}
	if c.MinSize == 0 {
		c.MinSize = 2
	}
	if c.Scoring == nil {
		c.Scoring = align.DefaultScoring()
	}
	if c.SeedMinScore == 0 {
		c.SeedMinScore = 35
	}
	return c
}

// Result is the baseline's output.
type Result struct {
	// Keep[id] is false for sequences eliminated as redundant.
	Keep []bool
	// Clusters are the final families (sequence IDs), largest first.
	Clusters [][]int
	// Alignments and Cells count the all-versus-all work performed.
	Alignments int64
	Cells      int64
}

// Run executes the baseline pipeline serially.
func Run(set *seq.Set, cfg Config) Result {
	cfg = cfg.withDefaults()
	al := align.NewAligner(cfg.Scoring)
	n := set.Len()
	res := Result{Keep: make([]bool, n)}
	for i := range res.Keep {
		res.Keep[i] = true
	}

	pairs, seedAligns := candidatePairs(set, cfg)
	res.Alignments += seedAligns

	// Step 1: redundancy removal over the candidate pairs.
	for _, pr := range pairs {
		i, j := pr[0], pr[1]
		if !res.Keep[i] || !res.Keep[j] {
			continue
		}
		res.Alignments++
		ok, which := al.EitherContained(set.Get(i).Res, set.Get(j).Res, cfg.Contain)
		if ok {
			if which == 0 {
				res.Keep[i] = false
			} else {
				res.Keep[j] = false
			}
		}
	}

	// Step 2: similarity graph over surviving sequences.
	adj := make([][]int, n)
	for _, pr := range pairs {
		i, j := pr[0], pr[1]
		if !res.Keep[i] || !res.Keep[j] {
			continue
		}
		res.Alignments++
		if ok, _ := al.Overlaps(set.Get(i).Res, set.Get(j).Res, cfg.Edge); ok {
			adj[i] = append(adj[i], j)
			adj[j] = append(adj[j], i)
		}
	}
	res.Cells = al.Cells

	// Step 3: core sets, expansion, merge.
	res.Clusters = coreSetClusters(adj, res.Keep, cfg)
	return res
}

// candidatePairs enumerates the ordered pairs (i < j) the baseline will
// evaluate: every pair in exhaustive mode, or the seeded cascade's
// survivors. The second return value counts banded alignments the
// cascade itself performed.
func candidatePairs(set *seq.Set, cfg Config) ([][2]int, int64) {
	n := set.Len()
	if !cfg.Seeded {
		pairs := make([][2]int, 0, n*(n-1)/2)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pairs = append(pairs, [2]int{i, j})
			}
		}
		return pairs, 0
	}
	sp := cfg.Seed
	sp.Scoring = cfg.Scoring
	ix, err := blastish.NewIndex(set, sp)
	if err != nil {
		// Parameter errors degrade to exhaustive mode rather than
		// failing the whole baseline.
		cfg.Seeded = false
		return candidatePairs(set, cfg)
	}
	var st blastish.Stats
	seen := map[int64]bool{}
	var pairs [][2]int
	for i := 0; i < n; i++ {
		for _, h := range ix.Search(set.Get(i).Res, int32(i), cfg.SeedMinScore, &st) {
			a, b := i, int(h.Seq)
			if a > b {
				a, b = b, a
			}
			key := int64(a)<<32 | int64(b)
			if !seen[key] {
				seen[key] = true
				pairs = append(pairs, [2]int{a, b})
			}
		}
	}
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x][0] != pairs[y][0] {
			return pairs[x][0] < pairs[y][0]
		}
		return pairs[x][1] < pairs[y][1]
	})
	return pairs, st.Banded
}

// coreSetClusters runs the GOS-style heuristic over an adjacency list.
func coreSetClusters(adj [][]int, keep []bool, cfg Config) [][]int {
	n := len(adj)
	neighbours := make([]map[int]bool, n)
	for i, a := range adj {
		m := make(map[int]bool, len(a))
		for _, j := range a {
			m[j] = true
		}
		neighbours[i] = m
	}
	sharedCount := func(a, b int) int {
		x, y := neighbours[a], neighbours[b]
		if len(y) < len(x) {
			x, y = y, x
		}
		c := 0
		for v := range x {
			if y[v] {
				c++
			}
		}
		return c
	}
	// kFor adapts the fixed K to small graphs: two vertices can share at
	// most min(deg)-ish neighbours, so tiny families still form cores.
	kFor := func(a, b int) int {
		lim := len(neighbours[a])
		if len(neighbours[b]) < lim {
			lim = len(neighbours[b])
		}
		k := cfg.K
		if lim < k {
			k = lim - 1
		}
		if k < 1 {
			k = 1
		}
		return k
	}

	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if keep[i] && len(adj[i]) > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if len(adj[order[a]]) != len(adj[order[b]]) {
			return len(adj[order[a]]) > len(adj[order[b]])
		}
		return order[a] < order[b]
	})

	inCore := make([]bool, n)
	var cores [][]int
	for _, v := range order {
		if inCore[v] {
			continue
		}
		core := []int{v}
		inCore[v] = true
		for _, u := range adj[v] {
			if inCore[u] || len(core) >= cfg.CoreMax {
				continue
			}
			if sharedCount(v, u) >= kFor(v, u) || neighbours[v][u] && len(core) < 3 {
				core = append(core, u)
				inCore[u] = true
			}
		}
		cores = append(cores, core)
	}

	// Expansion: attach vertices adjacent to at least half a core.
	expanded := make([][]int, len(cores))
	for ci, core := range cores {
		members := map[int]bool{}
		for _, v := range core {
			members[v] = true
		}
		for u := 0; u < n; u++ {
			if members[u] || !keep[u] {
				continue
			}
			links := 0
			for _, v := range core {
				if neighbours[u][v] {
					links++
				}
			}
			if links*2 >= len(core) && links > 0 {
				members[u] = true
			}
		}
		lst := make([]int, 0, len(members))
		for v := range members {
			lst = append(lst, v)
		}
		sort.Ints(lst)
		expanded[ci] = lst
	}

	// Merge intersecting expanded sets.
	uf := unionfind.New(len(expanded))
	owner := map[int]int{}
	for ci, lst := range expanded {
		for _, v := range lst {
			if prev, ok := owner[v]; ok {
				uf.Union(prev, ci)
			} else {
				owner[v] = ci
			}
		}
	}
	merged := map[int]map[int]bool{}
	for ci, lst := range expanded {
		r := uf.Find(ci)
		if merged[r] == nil {
			merged[r] = map[int]bool{}
		}
		for _, v := range lst {
			merged[r][v] = true
		}
	}

	var out [][]int
	for _, m := range merged {
		if len(m) < cfg.MinSize {
			continue
		}
		lst := make([]int, 0, len(m))
		for v := range m {
			lst = append(lst, v)
		}
		sort.Ints(lst)
		out = append(out, lst)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}
