package pace

import (
	"profam/internal/metrics"
	"profam/internal/mpi"
	"profam/internal/pool"
	"profam/internal/seq"
)

// Masterless batch alignment for the cross-shard boundary passes: each
// rank aligns a statically assigned task list on its goroutine pool, with
// no pair exchange and no closure filtering — the caller pre-filters and
// merges verdicts itself. Outcomes land at the same index as their task,
// so results are identical for every thread count, and the DP work is
// charged to the rank's virtual clock exactly like a worker batch.

// AlignContainPairs runs the redundancy-removal predicate (Definition 1,
// seed-anchored cascade unless cfg.ExactAlign) over tasks on the calling
// rank. Outcome i corresponds to tasks[i]; Which identifies the
// contained side as in the master–worker phase.
func AlignContainPairs(c *mpi.Comm, set *seq.Set, tasks []PairItem, cfg Config, phase string) []AlignOutcome {
	cfg = cfg.withDefaults()
	return alignStriped(c, set, rrWorker{params: cfg.Contain, exact: cfg.ExactAlign}, tasks, cfg, phase)
}

// AlignOverlapPairs runs the component-overlap predicate (Definition 2)
// over tasks on the calling rank; OK outcomes are union edges.
func AlignOverlapPairs(c *mpi.Comm, set *seq.Set, tasks []PairItem, cfg Config, phase string) []AlignOutcome {
	cfg = cfg.withDefaults()
	return alignStriped(c, set, ccWorker{params: cfg.Overlap, exact: cfg.ExactAlign}, tasks, cfg, phase)
}

func alignStriped(c *mpi.Comm, set *seq.Set, wl workerLogic, tasks []PairItem, cfg Config, phase string) []AlignOutcome {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New(c.Rank(), c.Time)
	}
	if len(tasks) == 0 {
		return nil
	}
	threads := max(1, cfg.Threads)
	cache, profs := workerCaches(cfg)
	obs := poolObserver(cfg.Metrics, phase, "align")
	out, cells := alignBatch(cache, profs, threads, set, wl, tasks, nil, obs)
	c.Advance(float64(pool.CeilDiv(cells, threads)) * cfg.Costs.SecPerCell)
	l := func(n string) string { return metrics.Name(n, "phase", phase) }
	cfg.Metrics.Counter(l("pace_pairs_aligned")).Add(int64(len(out)))
	cfg.Metrics.Counter(l("pace_align_cells")).Add(cells)
	var pos int64
	for i := range out {
		if out[i].OK {
			pos++
		}
	}
	cfg.Metrics.Counter(l("pace_pairs_positive")).Add(pos)
	return out
}
