package pace

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"profam/internal/align"
	"profam/internal/mpi"
	"profam/internal/seq"
	"profam/internal/suffixtree"
	"profam/internal/unionfind"
	"profam/internal/workload"
)

// runRR executes redundancy removal on p simulated ranks.
func runRR(t *testing.T, set *seq.Set, cfg Config, p int) ([]bool, Stats) {
	t.Helper()
	var keep []bool
	var st Stats
	_, err := mpi.RunSim(p, mpi.BlueGeneLike(), func(c *mpi.Comm) {
		k, s, err := RedundancyRemoval(c, set, cfg)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			keep, st = k, s
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return keep, st
}

// runCCD executes connected-component detection on p simulated ranks.
func runCCD(t *testing.T, set *seq.Set, keep []bool, cfg Config, p int) ([]int32, Stats) {
	t.Helper()
	var comp []int32
	var st Stats
	_, err := mpi.RunSim(p, mpi.BlueGeneLike(), func(c *mpi.Comm) {
		cp, s, err := ConnectedComponents(c, set, keep, cfg)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			comp, st = cp, s
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return comp, st
}

// bruteComponents computes the reference CCD answer: the connected
// components of the graph whose edges are pairs that share a maximal
// match >= psi AND satisfy Definition 2.
func bruteComponents(set *seq.Set, keep []bool, cfg Config) []int32 {
	cfg = cfg.withDefaults()
	al := align.NewAligner(cfg.Scoring)
	uf := unionfind.New(set.Len())
	trees, err := suffixtree.Build(set, suffixtree.Options{MinMatch: cfg.Psi, PrefixLen: cfg.PrefixLen})
	if err != nil {
		panic(err)
	}
	seen := map[int64]bool{}
	suffixtree.MergedPairs(trees, func(p suffixtree.Pair) bool {
		if keep != nil && (!keep[p.SeqA] || !keep[p.SeqB]) {
			return true
		}
		key := pairKey(p.SeqA, p.SeqB)
		if seen[key] {
			return true
		}
		seen[key] = true
		if ok, _ := al.Overlaps(set.Get(int(p.SeqA)).Res, set.Get(int(p.SeqB)).Res, cfg.Overlap); ok {
			uf.Union(int(p.SeqA), int(p.SeqB))
		}
		return true
	})
	comp := make([]int32, set.Len())
	label := map[int]int32{}
	for i := range comp {
		if keep != nil && !keep[i] {
			comp[i] = -1
			continue
		}
		r := uf.Find(i)
		if _, ok := label[r]; !ok {
			label[r] = int32(i)
		}
		comp[i] = label[r]
	}
	return comp
}

func famSet(t *testing.T) (*seq.Set, *workload.Truth) {
	t.Helper()
	set, truth := workload.Generate(workload.Params{
		Families: 5, MeanFamilySize: 8, MeanLength: 120,
		Divergence: 0.10, IndelRate: 0.005, ContainedFrac: 0.3,
		Singletons: 4, Seed: 17,
	})
	return set, truth
}

func TestRRRemovesPlantedFragments(t *testing.T) {
	set, truth := famSet(t)
	keep, st := runRR(t, set, Config{Psi: 6}, 1)
	planted, removed := 0, 0
	for id, red := range truth.Redundant {
		if red {
			planted++
			if !keep[id] {
				removed++
			}
		}
	}
	if planted == 0 {
		t.Fatal("no planted fragments")
	}
	if removed < planted*8/10 {
		t.Errorf("removed %d/%d planted fragments", removed, planted)
	}
	// Non-redundant sequences should mostly survive.
	lost := 0
	for id, red := range truth.Redundant {
		if !red && !keep[id] {
			lost++
		}
	}
	if lost > set.Len()/20 {
		t.Errorf("%d non-redundant sequences wrongly removed", lost)
	}
	if st.PairsAligned == 0 || st.PairsGenerated == 0 {
		t.Errorf("stats empty: %+v", st)
	}
	if st.PairsRaw < st.PairsGenerated {
		t.Errorf("raw pairs %d < generated %d", st.PairsRaw, st.PairsGenerated)
	}
}

func TestRRParallelMatchesSerial(t *testing.T) {
	set, _ := famSet(t)
	cfg := Config{Psi: 6, BatchPairs: 64, BatchTasks: 16}
	keep1, st1 := runRR(t, set, cfg, 1)
	for _, p := range []int{2, 4, 7} {
		keepP, stP := runRR(t, set, cfg, p)
		for i := range keep1 {
			if keep1[i] != keepP[i] {
				t.Fatalf("p=%d: keep[%d] differs (serial %v, parallel %v)", p, i, keep1[i], keepP[i])
			}
		}
		// Raw enumeration is partition-invariant (each maximal-match
		// occurrence lives in exactly one bucket); the shipped-pair
		// count is not, because worker-local dedup sees only one
		// worker's buckets.
		if st1.PairsRaw != stP.PairsRaw {
			t.Errorf("p=%d: raw pairs %d vs serial %d", p, stP.PairsRaw, st1.PairsRaw)
		}
		if stP.PairsGenerated < st1.PairsGenerated {
			t.Errorf("p=%d: generated %d < serial %d", p, stP.PairsGenerated, st1.PairsGenerated)
		}
	}
}

func TestCCDMatchesBruteForce(t *testing.T) {
	set, _ := famSet(t)
	cfg := Config{Psi: 6}
	keep, _ := runRR(t, set, cfg, 1)
	want := bruteComponents(set, keep, cfg)
	for _, p := range []int{1, 3, 6} {
		comp, st := runCCD(t, set, keep, cfg, p)
		if !samePartition(comp, want) {
			t.Errorf("p=%d: components differ from brute force", p)
		}
		if p > 1 && st.PairsAligned == 0 {
			t.Errorf("p=%d: no alignments recorded", p)
		}
	}
}

// samePartition checks two labelings induce the same partition (labels
// may differ, -1 must match exactly).
func samePartition(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int32]int32{}
	bwd := map[int32]int32{}
	for i := range a {
		if (a[i] < 0) != (b[i] < 0) {
			return false
		}
		if a[i] < 0 {
			continue
		}
		if v, ok := fwd[a[i]]; ok && v != b[i] {
			return false
		}
		if v, ok := bwd[b[i]]; ok && v != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

func TestCCDRecoversPlantedFamilies(t *testing.T) {
	set, truth := famSet(t)
	cfg := Config{Psi: 6}
	keep, _ := runRR(t, set, cfg, 1)
	comp, _ := runCCD(t, set, keep, cfg, 1)
	// Count, per planted family, how many distinct components its kept
	// members land in; most families should be mostly intact.
	perFam := map[int]map[int32]int{}
	for id, l := range truth.Label {
		if l >= truth.NumFamilies || comp[id] < 0 {
			continue
		}
		if perFam[l] == nil {
			perFam[l] = map[int32]int{}
		}
		perFam[l][comp[id]]++
	}
	intact := 0
	for fam, comps := range perFam {
		largest, total := 0, 0
		for _, n := range comps {
			total += n
			if n > largest {
				largest = n
			}
		}
		if largest*10 >= total*7 {
			intact++
		} else {
			t.Logf("family %d fragmented: %v", fam, comps)
		}
	}
	if intact < len(perFam)*7/10 {
		t.Errorf("only %d/%d planted families mostly intact", intact, len(perFam))
	}
}

func TestClosureFilterReducesWork(t *testing.T) {
	set, _ := famSet(t)
	cfg := Config{Psi: 6}
	keep, _ := runRR(t, set, cfg, 1)
	_, on := runCCD(t, set, keep, cfg, 1)
	cfgOff := cfg
	cfgOff.DisableClosureFilter = true
	compOff, off := runCCD(t, set, keep, cfgOff, 1)
	compOn, _ := runCCD(t, set, keep, cfg, 1)
	if !samePartition(compOn, compOff) {
		t.Error("closure filter changed the resulting components")
	}
	if on.PairsAligned >= off.PairsAligned {
		t.Errorf("closure filter did not reduce alignments: %d vs %d", on.PairsAligned, off.PairsAligned)
	}
	if on.PairsClosure == 0 {
		t.Error("no pairs eliminated by closure")
	}
}

func TestDecreasingOrderHelps(t *testing.T) {
	// With FIFO (random-ish) ordering the closure filter should fire no
	// more often than with the decreasing-match-length policy.
	set, _ := workload.Generate(workload.Params{
		Families: 3, MeanFamilySize: 15, MeanLength: 150,
		Divergence: 0.08, Singletons: 2, Seed: 31,
	})
	cfg := Config{Psi: 6}
	_, ordered := runCCD(t, set, nil, cfg, 1)
	cfgFifo := cfg
	cfgFifo.RandomPairOrder = true
	_, fifo := runCCD(t, set, nil, cfgFifo, 1)
	if ordered.PairsAligned > fifo.PairsAligned {
		t.Logf("note: ordered=%d fifo=%d aligned", ordered.PairsAligned, fifo.PairsAligned)
	}
	// Both must produce identical counts of generated pairs.
	if ordered.PairsGenerated != fifo.PairsGenerated {
		t.Errorf("pair generation differs: %d vs %d", ordered.PairsGenerated, fifo.PairsGenerated)
	}
}

func TestWorkReductionSubstantial(t *testing.T) {
	// The paper reports ~99% of promising pairs eliminated before
	// alignment on real data; our synthetic families should show a
	// strong (if smaller) reduction too.
	set, _ := workload.Generate(workload.Params{
		Families: 4, MeanFamilySize: 20, MeanLength: 150,
		Divergence: 0.08, Singletons: 2, Seed: 13,
	})
	cfg := Config{Psi: 6}
	_, st := runCCD(t, set, nil, cfg, 1)
	if st.WorkReduction() < 0.5 {
		t.Errorf("work reduction only %.2f (aligned %d of %d)", st.WorkReduction(), st.PairsAligned, st.PairsGenerated)
	}
}

func TestComponentsBySize(t *testing.T) {
	comp := []int32{0, 0, 0, 3, 3, -1, 6}
	got := ComponentsBySize(comp, 2)
	if len(got) != 2 {
		t.Fatalf("got %d components, want 2", len(got))
	}
	if len(got[0]) != 3 || got[0][0] != 0 {
		t.Errorf("largest component wrong: %v", got[0])
	}
	if len(got[1]) != 2 || got[1][0] != 3 {
		t.Errorf("second component wrong: %v", got[1])
	}
	if n := len(ComponentsBySize(comp, 1)); n != 3 {
		t.Errorf("minSize 1 gave %d components, want 3", n)
	}
}

func TestPairSourceOrderAndDedup(t *testing.T) {
	set := seq.NewSet()
	set.MustAdd("a", "ACDEFGHIKLM")
	set.MustAdd("b", "ACDEFGHIKLM")
	set.MustAdd("c", "CDEFGHIKWWWCDEFGHIK") // motif twice: repeated raw pairs
	trees, err := suffixtree.Build(set, suffixtree.Options{MinMatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	src := newPairSource(trees, 0)
	var all []PairItem
	for {
		batch, done := src.next(2)
		all = append(all, batch...)
		if done {
			break
		}
	}
	seen := map[int64]bool{}
	last := int32(1 << 30)
	for _, p := range all {
		key := pairKey(p.A, p.B)
		if seen[key] {
			t.Fatalf("duplicate pair %+v delivered", p)
		}
		seen[key] = true
		if p.Len > last {
			t.Fatalf("pair lengths not non-increasing")
		}
		last = p.Len
	}
	if len(all) != 3 { // (a,b), (a,c), (b,c)
		t.Errorf("got %d pairs, want 3: %v", len(all), all)
	}
	if src.raw <= int64(len(all)) {
		t.Errorf("raw count %d should exceed deduped %d", src.raw, len(all))
	}
}

func TestSimScalingShape(t *testing.T) {
	// More simulated processors must not slow the phase down much, and
	// should speed it up meaningfully from 2 to 16 ranks.
	set, _ := workload.Generate(workload.Params{
		Families: 6, MeanFamilySize: 12, MeanLength: 130,
		Divergence: 0.10, Singletons: 4, Seed: 8,
	})
	cfg := Config{Psi: 6, BatchPairs: 512, BatchTasks: 64}
	times := map[int]float64{}
	for _, p := range []int{2, 16} {
		mk, err := mpi.RunSim(p, mpi.BlueGeneLike(), func(c *mpi.Comm) {
			if _, _, err := RedundancyRemoval(c, set, cfg); err != nil {
				panic(err)
			}
			if _, _, err := ConnectedComponents(c, set, nil, cfg); err != nil {
				panic(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		times[p] = mk
	}
	if times[16] >= times[2] {
		t.Errorf("no speedup: T(2)=%v T(16)=%v", times[2], times[16])
	}
	t.Logf("T(2)=%.3fs T(16)=%.3fs speedup=%.2f", times[2], times[16], times[2]/times[16])
}

func TestRunsOnInprocAndTCP(t *testing.T) {
	RegisterWireTypes()
	set, _ := workload.Generate(workload.Params{
		Families: 3, MeanFamilySize: 5, MeanLength: 80, Singletons: 2, Seed: 4,
	})
	cfg := Config{Psi: 6, BatchPairs: 128, BatchTasks: 32}
	ref, _ := runRR(t, set, cfg, 1)

	var inprocKeep []bool
	err := mpi.Run(3, func(c *mpi.Comm) {
		k, _, err := RedundancyRemoval(c, set, cfg)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 2 {
			inprocKeep = k
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(inprocKeep) != fmt.Sprint(ref) {
		t.Error("inproc result differs from serial")
	}

	var tcpKeep []bool
	err = mpi.RunTCP(3, 43000, func(c *mpi.Comm) {
		k, _, err := RedundancyRemoval(c, set, cfg)
		if err != nil {
			panic(err)
		}
		if c.Rank() == 1 {
			tcpKeep = k
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(tcpKeep) != fmt.Sprint(ref) {
		t.Error("tcp result differs from serial")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{PairsGenerated: 10, PairsAligned: 2}
	if !strings.Contains(s.String(), "10 generated") {
		t.Errorf("stats string: %s", s)
	}
	if s.WorkReduction() != 0.8 {
		t.Errorf("work reduction = %v", s.WorkReduction())
	}
	if (Stats{}).WorkReduction() != 0 {
		t.Error("empty stats work reduction should be 0")
	}
}

func TestTaskHeapOrdering(t *testing.T) {
	h := &taskHeap{}
	items := []PairItem{
		{A: 1, B: 2, Len: 5}, {A: 1, B: 3, Len: 9},
		{A: 2, B: 3, Len: 7}, {A: 2, B: 4, Len: 9},
	}
	for i, it := range items {
		h.entries = append(h.entries, taskEntry{PairItem: it, seq: int64(i)})
	}
	sort.Sort(h)
	// Descending by Len, FIFO within equal lengths.
	wantLens := []int32{9, 9, 7, 5}
	for i, e := range h.entries {
		if e.Len != wantLens[i] {
			t.Fatalf("heap order wrong at %d: %+v", i, h.entries)
		}
	}
	if h.entries[0].seq > h.entries[1].seq {
		t.Error("FIFO tie-break violated")
	}
}
