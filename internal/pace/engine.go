package pace

import (
	"container/heap"
	"fmt"
	"sort"

	"profam/internal/align"
	"profam/internal/esa"
	"profam/internal/metrics"
	"profam/internal/mpi"
	"profam/internal/pool"
	"profam/internal/seq"
	"profam/internal/suffixtree"
	"profam/internal/trace"
	"profam/internal/unionfind"
)

// phaseCounters are the registry handles behind one phase's Stats — the
// registry is the single accumulation path; Stats is a read-out of these
// counters at phase end. All handles are labeled with the phase name
// ("rr" or "ccd") so both phases coexist in one registry. base holds the
// counter values at construction, making the read-out a per-call delta
// even when a caller reuses one registry across phase calls.
type phaseCounters struct {
	raw, generated, duplicate *metrics.Counter
	closure, aligned          *metrics.Counter
	positive, cells, rounds   *metrics.Counter
	batchTasks                *metrics.Histogram // alignment tasks per master→worker batch
	batchPairs                *metrics.Histogram // promising pairs per worker→master batch
	queueDepth                *metrics.Gauge     // high-water mark of the master's pending heap
	quota                     *metrics.Gauge     // high-water adaptive per-worker task quota
	// cascadeStage[s] counts pairs decided by cascade stage s
	// (prefilter/banded/full); cascadeFullCells accumulates what those
	// pairs would have cost under the exact full-matrix predicates, so
	// cells-eliminated = cascadeFullCells − pace_align_cells. The series
	// only appear with the cascade enabled (created lazily on first
	// staged outcome) so an -exact-align run exports an identical
	// metric set to the seed pipeline.
	cascadeStage     map[align.Stage]*metrics.Counter
	cascadeFullCells *metrics.Counter
	// kernelPairs[k] counts cascade-decided pairs whose deciding stage
	// ran on kernel k (bitvec/striped/int32); kernelCells[k] splits the
	// DP cells the same way. Lazily created like cascadeStage, so an
	// -exact-align run exports an unchanged metric set and a
	// -kernels=scalar run never grows bitvec/striped series.
	kernelPairs map[string]*metrics.Counter
	kernelCells map[string]*metrics.Counter
	reg         *metrics.Registry
	phase       string
	base        Stats
}

// rawPairsName labels the raw-pair counter with the enumerating
// backend, so runs are attributable (and comparable) per backend. The
// same name must be used by the worker ranks that own the counter.
func rawPairsName(backend, phase string) string {
	return metrics.Name("pace_pairs_raw", "backend", backend, "phase", phase)
}

func newPhaseCounters(reg *metrics.Registry, phase, backend string) phaseCounters {
	l := func(n string) string { return metrics.Name(n, "phase", phase) }
	pc := phaseCounters{
		raw:          reg.Counter(rawPairsName(backend, phase)),
		generated:    reg.Counter(l("pace_pairs_generated")),
		duplicate:    reg.Counter(l("pace_pairs_duplicate")),
		closure:      reg.Counter(l("pace_pairs_closure")),
		aligned:      reg.Counter(l("pace_pairs_aligned")),
		positive:     reg.Counter(l("pace_pairs_positive")),
		cells:        reg.Counter(l("pace_align_cells")),
		rounds:       reg.Counter(l("pace_rounds")),
		batchTasks:   reg.Histogram(l("pace_batch_tasks")),
		batchPairs:   reg.Histogram(l("pace_batch_pairs")),
		queueDepth:   reg.Gauge(l("pace_queue_depth")),
		quota:        reg.Gauge(l("pace_batch_quota")),
		cascadeStage: make(map[align.Stage]*metrics.Counter),
		kernelPairs:  make(map[string]*metrics.Counter),
		kernelCells:  make(map[string]*metrics.Counter),
		reg:          reg,
		phase:        phase,
	}
	pc.base = pc.read()
	return pc
}

// countStage records one cascade-decided pair.
func (pc *phaseCounters) countStage(stage align.Stage, fullCells int64) {
	c := pc.cascadeStage[stage]
	if c == nil {
		c = pc.reg.Counter(metrics.Name("pace_cascade_pairs",
			"phase", pc.phase, "stage", stage.String()))
		pc.cascadeStage[stage] = c
	}
	c.Inc()
	if pc.cascadeFullCells == nil {
		pc.cascadeFullCells = pc.reg.Counter(metrics.Name("pace_cascade_cells_full", "phase", pc.phase))
	}
	pc.cascadeFullCells.Add(fullCells)
}

// countKernels attributes one cascade-decided pair and its DP cells to
// the kernels that did the work: the pair goes to the deciding stage's
// kernel, the cells split by which kernel computed them.
func (pc *phaseCounters) countKernels(r AlignOutcome) {
	k := align.Stage(r.Stage).Kernel()
	c := pc.kernelPairs[k]
	if c == nil {
		c = pc.reg.Counter(metrics.Name("pace_kernel_pairs", "phase", pc.phase, "kernel", k))
		pc.kernelPairs[k] = c
	}
	c.Inc()
	pc.addKernelCells("bitvec", r.CellsBitvec)
	pc.addKernelCells("striped", r.CellsStriped)
	pc.addKernelCells("int32", r.Cells-r.CellsBitvec-r.CellsStriped)
}

func (pc *phaseCounters) addKernelCells(k string, v int64) {
	if v == 0 {
		return
	}
	c := pc.kernelCells[k]
	if c == nil {
		c = pc.reg.Counter(metrics.Name("pace_kernel_cells", "phase", pc.phase, "kernel", k))
		pc.kernelCells[k] = c
	}
	c.Add(v)
}

// read returns the counters' current absolute values.
func (pc phaseCounters) read() Stats {
	return Stats{
		PairsRaw:       pc.raw.Value(),
		PairsGenerated: pc.generated.Value(),
		PairsDuplicate: pc.duplicate.Value(),
		PairsClosure:   pc.closure.Value(),
		PairsAligned:   pc.aligned.Value(),
		PairsPositive:  pc.positive.Value(),
		Cells:          pc.cells.Value(),
		Rounds:         pc.rounds.Value(),
	}
}

// stats returns the per-call Stats delta accumulated since construction.
func (pc phaseCounters) stats() Stats {
	cur := pc.read()
	return Stats{
		PairsRaw:       cur.PairsRaw - pc.base.PairsRaw,
		PairsGenerated: cur.PairsGenerated - pc.base.PairsGenerated,
		PairsDuplicate: cur.PairsDuplicate - pc.base.PairsDuplicate,
		PairsClosure:   cur.PairsClosure - pc.base.PairsClosure,
		PairsAligned:   cur.PairsAligned - pc.base.PairsAligned,
		PairsPositive:  cur.PairsPositive - pc.base.PairsPositive,
		Cells:          cur.Cells - pc.base.Cells,
		Rounds:         cur.Rounds - pc.base.Rounds,
	}
}

// poolObserver records a pool run's queue depth into a site-labeled
// histogram and high-water gauge. The thread bound is deliberately not
// recorded: it is configuration, and keeping it out preserves metric
// determinism across thread counts.
func poolObserver(reg *metrics.Registry, phase, site string) pool.Observer {
	if reg == nil {
		return nil
	}
	h := reg.Histogram(metrics.Name("pool_queue_depth", "phase", phase, "site", site))
	return func(queued, threads int) { h.Observe(int64(queued)) }
}

// pairSource pulls promising pairs out of a worker's subtrees in
// decreasing match-length order, deduplicating locally (the first — and
// therefore longest — occurrence of each sequence pair wins).
type pairSource struct {
	refs []nodeRef
	cur  int
	buf  []PairItem
	pos  int
	seen map[int64]bool
	raw  int64 // pairs enumerated before local dedup
	// newFrom > 0 is the incremental-epoch filter: pairs whose sequences
	// both predate it are settled by the prior state and are skipped at
	// enumeration (counted in prior), before local dedup.
	newFrom int32
	prior   int64
}

type nodeRef struct {
	t *suffixtree.SubTree
	i int
}

func newPairSource(trees []*suffixtree.SubTree, newFrom int32) *pairSource {
	s := &pairSource{seen: make(map[int64]bool), newFrom: newFrom}
	for _, t := range trees {
		for i := range t.Nodes {
			s.refs = append(s.refs, nodeRef{t, i})
		}
	}
	sort.SliceStable(s.refs, func(a, b int) bool {
		return s.refs[a].t.Nodes[s.refs[a].i].Depth > s.refs[b].t.Nodes[s.refs[b].i].Depth
	})
	return s
}

// next returns up to k pairs and whether the source is now exhausted.
func (s *pairSource) next(k int) ([]PairItem, bool) {
	out := make([]PairItem, 0, k)
	for len(out) < k {
		if s.pos >= len(s.buf) {
			if s.cur >= len(s.refs) {
				return out, true
			}
			r := s.refs[s.cur]
			s.cur++
			s.buf = s.buf[:0]
			s.pos = 0
			r.t.EmitNodePairs(r.i, func(p suffixtree.Pair) bool {
				s.raw++
				if s.newFrom > 0 && p.SeqA < s.newFrom && p.SeqB < s.newFrom {
					s.prior++
					return true
				}
				key := pairKey(p.SeqA, p.SeqB)
				if !s.seen[key] {
					s.seen[key] = true
					s.buf = append(s.buf, PairItem{A: p.SeqA, B: p.SeqB,
						OffA: p.OffA, OffB: p.OffB, Len: p.Len})
				}
				return true
			})
			continue
		}
		out = append(out, s.buf[s.pos])
		s.pos++
	}
	exhausted := s.pos >= len(s.buf) && s.cur >= len(s.refs)
	return out, exhausted
}

// buildTrees constructs the per-bucket indexes owned by this rank (GST
// or ESA per cfg.Index), charging construction work to the virtual
// clock. Buckets are independent, so they build on the rank's goroutine
// pool; the result slice is indexed by bucket position, keeping the
// tree order — and therefore the pair stream — identical for every
// thread count.
func buildTrees(c *mpi.Comm, set *seq.Set, bucketIdx []int, buckets []suffixtree.Bucket, cfg Config, phase string) ([]*suffixtree.SubTree, error) {
	sp := cfg.Metrics.StartSpan(phase + "/index")
	defer sp.End()
	opt := suffixtree.Options{MinMatch: cfg.Psi, PrefixLen: cfg.PrefixLen}
	build := suffixtree.BuildBucket
	if cfg.Index == IndexESA {
		build = esa.BuildBucket
	}
	threads := max(1, cfg.Threads)
	trees := make([]*suffixtree.SubTree, len(bucketIdx))
	errs := make([]error, len(bucketIdx))
	pool.RunObserved(threads, len(bucketIdx), poolObserver(cfg.Metrics, phase, "index"), func(i int) {
		trees[i], errs[i] = build(set, buckets[bucketIdx[i]], opt)
	})
	var weight int64
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		weight += buckets[bucketIdx[i]].Weight
	}
	c.Advance(float64(pool.CeilDiv(weight, threads)) * cfg.Costs.SecPerTreeChar)
	cfg.Metrics.Counter(metrics.Name("pace_index_chars", "phase", phase)).Add(weight)
	return trees, nil
}

// masterState is the generic master-side round bookkeeping. All of its
// counting goes straight to the metrics registry through ctr; the Stats
// a phase returns are read back out of the registry when it ends.
type masterState struct {
	pending taskHeap
	seen    map[int64]bool
	seqno   int64
	merges  int64 // positive outcomes absorbed (union-find merges / redundancy marks)
	ctr     phaseCounters
	logic   masterLogic
	cfg     Config
}

func newMasterState(logic masterLogic, cfg Config, phase string) *masterState {
	return &masterState{
		pending: taskHeap{fifo: cfg.RandomPairOrder},
		seen:    make(map[int64]bool),
		ctr:     newPhaseCounters(cfg.Metrics, phase, cfg.Index.String()),
		logic:   logic,
		cfg:     cfg,
	}
}

// ingestPairs filters a batch of incoming promising pairs into the
// pending queue. Returns the number of filter operations performed.
func (ms *masterState) ingestPairs(pairs []PairItem) int {
	for _, pr := range pairs {
		key := pairKey(pr.A, pr.B)
		if ms.seen[key] {
			ms.ctr.duplicate.Inc()
			continue
		}
		ms.seen[key] = true
		enq, closure := ms.logic.filter(pr)
		if closure {
			ms.ctr.closure.Inc()
			continue
		}
		if enq {
			ms.seqno++
			heap.Push(&ms.pending, taskEntry{PairItem: pr, seq: ms.seqno})
		}
	}
	ms.ctr.queueDepth.SetMax(float64(ms.pending.Len()))
	return len(pairs)
}

// absorbResults integrates worker alignment outcomes.
func (ms *masterState) absorbResults(results []AlignOutcome) {
	for _, r := range results {
		ms.ctr.aligned.Inc()
		ms.ctr.cells.Add(r.Cells)
		if r.OK {
			ms.ctr.positive.Inc()
			ms.merges++
		}
		if r.Stage != 0 {
			ms.ctr.countStage(align.Stage(r.Stage), r.FullCells)
			ms.ctr.countKernels(r)
		}
		ms.logic.absorb(r)
	}
}

// popTasks extracts up to k still-relevant tasks, re-filtering against
// the current clustering state (clusters may have merged since enqueue).
func (ms *masterState) popTasks(k int) []PairItem {
	var tasks []PairItem
	for len(tasks) < k && ms.pending.Len() > 0 {
		e := heap.Pop(&ms.pending).(taskEntry)
		enq, closure := ms.logic.filter(e.PairItem)
		if closure {
			ms.ctr.closure.Inc()
			continue
		}
		if enq {
			tasks = append(tasks, e.PairItem)
		}
	}
	return tasks
}

// runMaster drives the lockstep master loop on rank 0.
func runMaster(c *mpi.Comm, ms *masterState) {
	p := c.Size()
	tr := ms.cfg.Trace
	phase := ms.ctr.phase
	exhausted := make([]bool, p)
	var round int64
	for {
		round++
		ms.ctr.rounds.Inc()
		roundStart := tr.Now()
		for w := 1; w < p; w++ {
			msg := c.Recv(w, tagWorker).Data.(WorkerMsg)
			tr.Instant(trace.CatMaster, phase+"/collect",
				"pairs", int64(len(msg.Pairs)), "results", int64(len(msg.Results)))
			ms.absorbResults(msg.Results)
			if msg.Exhausted {
				exhausted[w] = true
			}
			ms.ctr.generated.Add(int64(len(msg.Pairs)))
			if len(msg.Pairs) > 0 {
				ms.ctr.batchPairs.Observe(int64(len(msg.Pairs)))
			}
			nops := ms.ingestPairs(msg.Pairs)
			c.Advance(float64(nops+len(msg.Results)) * ms.cfg.Costs.SecPerPairFilter)
		}
		done := ms.pending.Len() == 0
		for w := 1; w < p; w++ {
			if !exhausted[w] {
				done = false
			}
		}
		// Spread the pending work evenly over the workers this round:
		// handing the first workers full batches would leave the rest
		// idle and serialize the round on the loaded few.
		quota := ms.cfg.BatchTasks
		if p > 1 {
			fair := ms.pending.Len()/(p-1) + 1
			if fair < quota {
				quota = fair
			}
		}
		for w := 1; w < p; w++ {
			var tasks []PairItem
			if !done {
				tasks = ms.popTasks(quota)
			}
			if len(tasks) > 0 {
				ms.ctr.batchTasks.Observe(int64(len(tasks)))
			}
			tr.Instant(trace.CatMaster, phase+"/dispatch",
				"to", int64(w), "tasks", int64(len(tasks)))
			c.Send(w, tagMaster, MasterMsg{Tasks: tasks, Done: done})
		}
		tr.Count(trace.CatMaster, phase+"/queue", int64(ms.pending.Len()))
		tr.Count(trace.CatMaster, phase+"/merges", ms.merges)
		tr.Span(trace.CatMaster, phase+"/round", roundStart, tr.Now(),
			"round", round, "queue", int64(ms.pending.Len()))
		ms.cfg.Log.Debug("master round",
			"phase", phase, "round", round,
			"queue", ms.pending.Len(), "merges", ms.merges, "t", c.Time())
		if done {
			return
		}
	}
}

// overlapWorker is the master's per-worker protocol bookkeeping for the
// event-driven loop.
type overlapWorker struct {
	exhausted   bool // the worker's pair source is drained
	outstanding int  // tasks dispatched whose outcomes have not come back
	owed        int  // requests received and not yet answered (parked)
	quota       int  // adaptive task quota: slow-start, doubles per productive dispatch
	expect      int  // requests this worker will send in total (grows per non-Done reply)
	received    int  // requests received so far
}

// runMasterOverlap drives the event-driven master loop on rank 0: it
// serves worker messages strictly in arrival order (RecvAny) and answers
// each request individually, so a fast worker is never stalled behind a
// slow one the way the lockstep global round stalls it.
//
// Protocol: each worker keeps PrefetchDepth requests in flight; every
// non-Done reply provokes exactly one further request (carrying the
// next pair batch and the outcomes of the batch the worker just
// finished), which is the accounting behind expect/received — the
// master knows precisely how many requests remain, so the phase
// terminates with zero messages left in flight even though tags are
// reused by the next phase.
//
// A request is answered immediately unless the worker is a pure task
// sink with an empty queue (exhausted, nothing to dispatch): answering
// it with an empty batch would spin an idle request/reply loop, so it
// parks until new tasks arrive or the phase completes. Parking a worker
// with outstanding tasks is safe: each of the replies it already holds
// provokes one results-bearing request, so the outcomes the termination
// condition waits for arrive without any further prompting.
func runMasterOverlap(c *mpi.Comm, ms *masterState) {
	p := c.Size()
	tr := ms.cfg.Trace
	phase := ms.ctr.phase
	depth := ms.cfg.PrefetchDepth
	// With depth requests in flight per worker, a per-dispatch quota of
	// BatchTasks/depth keeps each worker's undispatchable window (tasks
	// the closure filter can no longer recall) at BatchTasks — the same
	// window the lockstep protocol exposes. A larger quota overlaps no
	// better and measurably inflates the aligned-pair count: stale tasks
	// connecting already-merged clusters slip past the filter.
	maxQuota := ms.cfg.BatchTasks / max(1, depth)
	if maxQuota < 1 {
		maxQuota = 1
	}
	initialQuota := maxQuota / 8
	if initialQuota < 1 {
		initialQuota = 1
	}
	ws := make([]overlapWorker, p)
	for w := 1; w < p; w++ {
		ws[w] = overlapWorker{quota: initialQuota, expect: depth}
	}
	done := false

	reply := func(w int) {
		s := &ws[w]
		var tasks []PairItem
		if !done {
			quota := s.quota
			if fair := ms.pending.Len()/(p-1) + 1; fair < quota {
				quota = fair
			}
			tasks = ms.popTasks(quota)
			if len(tasks) > 0 {
				ms.ctr.batchTasks.Observe(int64(len(tasks)))
				s.outstanding += len(tasks)
				if s.quota < maxQuota {
					s.quota *= 2
					if s.quota > maxQuota {
						s.quota = maxQuota
					}
				}
				ms.ctr.quota.SetMax(float64(s.quota))
			}
			s.expect++ // one more request will answer this reply
		}
		s.owed--
		tr.Instant(trace.CatMaster, phase+"/dispatch",
			"to", int64(w), "tasks", int64(len(tasks)))
		c.Send(w, tagMaster, MasterMsg{Tasks: tasks, Done: done})
	}

	var served int64
	for {
		if done {
			finished := true
			for w := 1; w < p; w++ {
				if ws[w].received < ws[w].expect || ws[w].owed > 0 {
					finished = false
					break
				}
			}
			if finished {
				return
			}
		}
		t0 := tr.Now()
		in := c.RecvAny(tagWorker)
		msg := in.Data.(WorkerMsg)
		w := in.From
		s := &ws[w]
		if msg.Request {
			s.received++
			s.owed++
		}
		served++
		ms.ctr.rounds.Inc()
		tr.Instant(trace.CatMaster, phase+"/collect",
			"pairs", int64(len(msg.Pairs)), "results", int64(len(msg.Results)))
		ms.absorbResults(msg.Results)
		s.outstanding -= len(msg.Results)
		if msg.Exhausted {
			s.exhausted = true
		}
		ms.ctr.generated.Add(int64(len(msg.Pairs)))
		if len(msg.Pairs) > 0 {
			ms.ctr.batchPairs.Observe(int64(len(msg.Pairs)))
		}
		nops := ms.ingestPairs(msg.Pairs)
		c.Advance(float64(nops+len(msg.Results)) * ms.cfg.Costs.SecPerPairFilter)

		if !done {
			done = ms.pending.Len() == 0
			for v := 1; v < p && done; v++ {
				if !ws[v].exhausted || ws[v].outstanding > 0 {
					done = false
				}
			}
		}
		if done {
			// The clustering state is final (absorbing: no pending tasks,
			// no outcomes in flight, no pairs to come). Answer everything
			// owed with Done; later arrivals get theirs on receipt.
			for v := 1; v < p; v++ {
				for ws[v].owed > 0 {
					reply(v)
				}
			}
		} else {
			if msg.Request && !(s.exhausted && ms.pending.Len() == 0) {
				reply(w)
			}
			// New pairs may have unparked idle workers: feed them while
			// tasks remain.
			for v := 1; v < p && ms.pending.Len() > 0; v++ {
				for ws[v].owed > 0 && ms.pending.Len() > 0 {
					reply(v)
				}
			}
		}
		tr.Count(trace.CatMaster, phase+"/queue", int64(ms.pending.Len()))
		tr.Count(trace.CatMaster, phase+"/merges", ms.merges)
		tr.Span(trace.CatMaster, phase+"/round", t0, tr.Now(),
			"round", served, "queue", int64(ms.pending.Len()))
		ms.cfg.Log.Debug("master service",
			"phase", phase, "served", served, "from", w,
			"queue", ms.pending.Len(), "merges", ms.merges, "t", c.Time())
	}
}

// alignBatch computes the outcomes for one assigned task batch on the
// rank's goroutine pool. Outcomes land at the same index as their task,
// so the result order — and everything the master derives from it — is
// identical for every thread count. Each chunk checks an aligner out of
// the cache, recycling DP row and trace buffers across chunks and
// rounds; a non-nil profile cache opens a batch-scoped ProfileSet so the
// word-parallel kernels build each sequence's query profile once per
// batch instead of once per pair. The summed DP cells are returned so
// the caller can charge the virtual clock ceil(cells/threads), the
// perfect-speedup model.
func alignBatch(cache *pool.AlignerCache, profs *pool.ProfileCache, threads int, set *seq.Set, wl workerLogic, tasks []PairItem, out []AlignOutcome, obs pool.Observer) ([]AlignOutcome, int64) {
	if cap(out) < len(tasks) {
		out = make([]AlignOutcome, len(tasks))
	} else {
		out = out[:len(tasks)]
	}
	var ps *pool.ProfileSet
	if profs != nil {
		ps = profs.NewSet()
	}
	pool.RunChunkedObserved(threads, len(tasks), obs, func(lo, hi int) {
		al := cache.Get()
		for i := lo; i < hi; i++ {
			out[i] = wl.alignPair(al, ps, set, tasks[i])
		}
		cache.Put(al)
	})
	if ps != nil {
		ps.Release()
	}
	var cells int64
	for i := range out {
		cells += out[i].Cells
	}
	return out, cells
}

// workerCaches builds the per-worker aligner and profile caches from the
// phase config: aligners carry the configured kernel mode, and the
// profile cache exists only when the word-parallel kernels will consume
// profiles (it would be dead weight under -kernels=scalar or
// -exact-align).
func workerCaches(cfg Config) (*pool.AlignerCache, *pool.ProfileCache) {
	mode := align.KernelAuto
	if cfg.ScalarKernels {
		mode = align.KernelScalar
	}
	cache := pool.NewAlignerCacheKernels(cfg.Scoring, mode)
	var profs *pool.ProfileCache
	if !cfg.ScalarKernels && !cfg.ExactAlign {
		profs = pool.NewProfileCache(cfg.Scoring)
	}
	return cache, profs
}

// runWorker drives the lockstep worker loop on ranks 1..p-1.
func runWorker(c *mpi.Comm, set *seq.Set, wl workerLogic, src pairProvider, cfg Config, phase string) {
	sp := cfg.Metrics.StartSpan(phase + "/exchange")
	defer sp.End()
	tr := cfg.Trace
	threads := max(1, cfg.Threads)
	cache, profs := workerCaches(cfg)
	obs := poolObserver(cfg.Metrics, phase, "align")
	var results []AlignOutcome
	exhausted := false
	for {
		var pairs []PairItem
		if !exhausted {
			pairs, exhausted = src.next(cfg.BatchPairs)
			c.Advance(float64(len(pairs)) * cfg.Costs.SecPerPairGen)
			var ex int64
			if exhausted {
				ex = 1
			}
			tr.Instant(trace.CatWorker, phase+"/pairgen",
				"pairs", int64(len(pairs)), "exhausted", ex)
		}
		c.Send(0, tagWorker, WorkerMsg{Pairs: pairs, Exhausted: exhausted, Results: results, Request: true})
		w0 := tr.Now()
		msg := c.Recv(0, tagMaster).Data.(MasterMsg)
		// The full master round-trip is dead time in lockstep: the worker
		// holds no other work. Recording it as an explicit task-wait span
		// is what lets trace.Analyze show the overlapped protocol's win.
		tr.Span(trace.CatComm, "task-wait", w0, tr.Now(), "from", 0, "inflight", 0)
		if msg.Done {
			return
		}
		t0 := tr.Now()
		var cells int64
		results, cells = alignBatch(cache, profs, threads, set, wl, msg.Tasks, results, obs)
		c.Advance(float64(pool.CeilDiv(cells, threads)) * cfg.Costs.SecPerCell)
		// The span closes after Advance, so under simtime its duration is
		// the batch's charged virtual compute.
		tr.Span(trace.CatWorker, phase+"/align", t0, tr.Now(),
			"tasks", int64(len(msg.Tasks)), "cells", cells)
	}
}

// runWorkerOverlap drives the double-buffered worker loop on ranks
// 1..p-1. The worker opens PrefetchDepth requests up front and, from
// then on, answers every non-Done reply with the next request *before*
// aligning the batch it just received, so the master's reply to the
// prefetched request is (ideally) already queued when the current batch
// finishes, hiding the round-trip behind alignment compute.
//
// Task outcomes ship on the request sent right *after* the batch
// completes — not on the one sent before it. The distinction matters: a
// stale master is an expensive master (every outcome it hasn't absorbed
// yet is a cluster merge its closure filter can't use, so late reports
// directly inflate the number of pairs the whole mesh aligns), and with
// depth ≥ 2 the previously posted request already keeps the master busy
// through the compute window, so deferring the next request to after
// the alignment costs no overlap while making its piggybacked outcomes
// as fresh as a dedicated report message would be — without doubling
// the phase's message count.
func runWorkerOverlap(c *mpi.Comm, set *seq.Set, wl workerLogic, src pairProvider, cfg Config, phase string) {
	sp := cfg.Metrics.StartSpan(phase + "/exchange")
	defer sp.End()
	tr := cfg.Trace
	threads := max(1, cfg.Threads)
	cache, profs := workerCaches(cfg)
	obs := poolObserver(cfg.Metrics, phase, "align")
	exhausted := false
	sent, recvd := 0, 0
	request := func(results []AlignOutcome) {
		var pairs []PairItem
		if !exhausted {
			pairs, exhausted = src.next(cfg.BatchPairs)
			c.Advance(float64(len(pairs)) * cfg.Costs.SecPerPairGen)
			var ex int64
			if exhausted {
				ex = 1
			}
			tr.Instant(trace.CatWorker, phase+"/pairgen",
				"pairs", int64(len(pairs)), "exhausted", ex)
		}
		sent++
		c.Send(0, tagWorker, WorkerMsg{Pairs: pairs, Exhausted: exhausted, Results: results, Request: true})
	}
	for i := 0; i < cfg.PrefetchDepth; i++ {
		request(nil)
	}
	for {
		w0 := tr.Now()
		msg := c.Recv(0, tagMaster).Data.(MasterMsg)
		recvd++
		tr.Span(trace.CatComm, "task-wait", w0, tr.Now(),
			"from", 0, "inflight", int64(sent-recvd))
		if msg.Done {
			// Done implies the master saw every outcome (its outstanding
			// count for this worker was zero), so nothing is unreported.
			// Every request gets exactly one reply and the stragglers are
			// all Done; drain them so the phase leaves nothing in flight.
			for recvd < sent {
				c.Recv(0, tagMaster)
				recvd++
			}
			return
		}
		t0 := tr.Now()
		results, cells := alignBatch(cache, profs, threads, set, wl, msg.Tasks, nil, obs)
		c.Advance(float64(pool.CeilDiv(cells, threads)) * cfg.Costs.SecPerCell)
		tr.Span(trace.CatWorker, phase+"/align", t0, tr.Now(),
			"tasks", int64(len(msg.Tasks)), "cells", cells)
		// Ship the finished batch's outcomes with the next request. The
		// in-process transports hand the slice over by reference and the
		// master absorbs it asynchronously, so ownership transfers on
		// send — each batch allocates fresh (nil above) instead of
		// reusing the buffer.
		request(results)
	}
}

// runSerial executes a whole phase on a single rank: pairs are consumed
// in decreasing match-length order with the same filtering policy.
func runSerial(c *mpi.Comm, set *seq.Set, ms *masterState, wl workerLogic, src pairProvider, cfg Config) {
	al := align.NewAligner(cfg.Scoring)
	if cfg.ScalarKernels {
		al.Kernels = align.KernelScalar
	}
	tr := cfg.Trace
	phase := ms.ctr.phase
	var round int64
	for {
		round++
		ms.ctr.rounds.Inc()
		roundStart := tr.Now()
		pairs, exhausted := src.next(cfg.BatchPairs)
		c.Advance(float64(len(pairs)) * cfg.Costs.SecPerPairGen)
		ms.ctr.generated.Add(int64(len(pairs)))
		if len(pairs) > 0 {
			ms.ctr.batchPairs.Observe(int64(len(pairs)))
		}
		nops := ms.ingestPairs(pairs)
		c.Advance(float64(nops) * cfg.Costs.SecPerPairFilter)
		// One task at a time so each alignment outcome can eliminate
		// later pending pairs via the closure filter — the serial
		// reference semantics the parallel rounds approximate.
		for ms.pending.Len() > 0 {
			for _, t := range ms.popTasks(1) {
				out := wl.alignPair(al, nil, set, t)
				c.Advance(float64(out.Cells) * cfg.Costs.SecPerCell)
				ms.absorbResults([]AlignOutcome{out})
			}
		}
		tr.Count(trace.CatMaster, phase+"/merges", ms.merges)
		tr.Span(trace.CatMaster, phase+"/round", roundStart, tr.Now(),
			"round", round, "pairs", int64(len(pairs)))
		ms.cfg.Log.Debug("serial round",
			"phase", phase, "round", round, "merges", ms.merges, "t", c.Time())
		if exhausted {
			raw, _ := src.counts()
			ms.ctr.raw.Add(raw)
			return
		}
	}
}

// runPhase wires buckets, trees, and the master/worker/serial loops
// together for one phase over the given sequence set. It returns the
// master's stats on rank 0 (zero Stats elsewhere; callers broadcast what
// they need). Stats are a read-out of the phase's registry counters —
// the registry is the one accumulation path.
func runPhase(c *mpi.Comm, set *seq.Set, ml masterLogic, wl workerLogic, cfg Config, phase string) (Stats, error) {
	if cfg.Metrics == nil {
		// Private registry so the counter-backed Stats still work for
		// direct API callers that don't collect metrics.
		cfg.Metrics = metrics.New(c.Rank(), c.Time)
	}
	start := c.Time()
	buckets, err := suffixtree.Buckets(set, suffixtree.Options{MinMatch: cfg.Psi, PrefixLen: cfg.PrefixLen})
	if err != nil {
		return Stats{}, err
	}
	p := c.Size()
	ms := newMasterState(ml, cfg, phase)

	if p == 1 {
		own := make([]int, len(buckets))
		for i := range own {
			own[i] = i
		}
		src, err := newSource(c, set, own, buckets, cfg, phase)
		if err != nil {
			return Stats{}, err
		}
		// The sparse backend builds its blocks lazily inside the
		// exchange, so its TreeTime stays ~0 — index cost shows up in
		// PhaseTime and the pace_index_chars counter instead.
		treeDone := c.Time()
		sp := cfg.Metrics.StartSpan(phase + "/exchange")
		runSerial(c, set, ms, wl, src, cfg)
		sp.End()
		countPriorPairs(cfg, phase, src)
		st := ms.ctr.stats()
		st.TreeTime = treeDone - start
		st.PhaseTime = c.Time() - start
		return st, nil
	}

	// Workers own the buckets; the master owns the clustering state.
	assign := suffixtree.AssignBuckets(buckets, p-1)
	if c.Rank() == 0 {
		sp := cfg.Metrics.StartSpan(phase + "/exchange")
		if cfg.Lockstep {
			runMaster(c, ms)
		} else {
			runMasterOverlap(c, ms)
		}
		sp.End()
		raw := c.ReduceInt64(0, 0, addInt64)
		st := ms.ctr.stats()
		st.PairsRaw = raw
		st.PhaseTime = c.MaxFloat64(c.Time()) - start
		return st, nil
	}
	src, err := newSource(c, set, assign[c.Rank()-1], buckets, cfg, phase)
	if err != nil {
		return Stats{}, err
	}
	if cfg.Lockstep {
		runWorker(c, set, wl, src, cfg, phase)
	} else {
		runWorkerOverlap(c, set, wl, src, cfg, phase)
	}
	// The enumerating ranks own the raw-pair counter; the master's Stats
	// read-out gets the total via the reduction below.
	raw, _ := src.counts()
	cfg.Metrics.Counter(rawPairsName(cfg.Index.String(), phase)).Add(raw)
	countPriorPairs(cfg, phase, src)
	c.ReduceInt64(0, raw, addInt64)
	c.MaxFloat64(c.Time())
	return Stats{}, nil
}

func addInt64(a, b int64) int64 { return a + b }

// countPriorPairs records how many promising pairs the NewFrom filter
// suppressed because both sides predate the current epoch. The counter is
// created lazily so cold runs (NewFrom == 0) export an unchanged metric
// set.
func countPriorPairs(cfg Config, phase string, src pairProvider) {
	if _, prior := src.counts(); prior > 0 {
		cfg.Metrics.Counter(metrics.Name("pace_pairs_prior", "phase", phase)).Add(prior)
	}
}

// --- public phase entry points -------------------------------------------

// RedundancyRemoval executes the paper's RR phase collectively: every
// rank calls it with the same set and config, and every rank returns the
// same keep mask (keep[id] == false means sequence id is contained in
// another sequence and should be dropped). Stats are likewise identical
// on all ranks.
func RedundancyRemoval(c *mpi.Comm, set *seq.Set, cfg Config) ([]bool, Stats, error) {
	return RedundancyRemovalFrom(c, set, nil, 0, cfg)
}

// RedundancyRemovalFrom is the incremental form of RedundancyRemoval:
// prior (may be nil) is the redundancy verdict from the previous epoch
// over sequences 0..newFrom-1, and only pairs with at least one side ≥
// newFrom are aligned. Old-vs-old containment was settled last epoch, so
// the combined mask matches a cold run whenever no containment chains
// cross the epoch boundary (see DESIGN.md §9). The returned keep mask
// covers the whole set on all ranks.
func RedundancyRemovalFrom(c *mpi.Comm, set *seq.Set, prior []bool, newFrom int, cfg Config) ([]bool, Stats, error) {
	return redundancyRemoval(c, set, prior, newFrom, cfg, "rr")
}

// RedundancyRemovalPhase is RedundancyRemoval under a caller-chosen phase
// label: every counter and span the phase emits carries the label instead
// of "rr", which is how sharded runs keep per-shard series ("rr@s3")
// apart in one registry and attribute stragglers to shards in the trace.
func RedundancyRemovalPhase(c *mpi.Comm, set *seq.Set, cfg Config, phase string) ([]bool, Stats, error) {
	return redundancyRemoval(c, set, nil, 0, cfg, phase)
}

func redundancyRemoval(c *mpi.Comm, set *seq.Set, prior []bool, newFrom int, cfg Config, phase string) ([]bool, Stats, error) {
	cfg = cfg.withDefaults()
	cfg.NewFrom = newFrom
	ml := &rrMaster{redundant: make([]bool, set.Len())}
	if prior != nil {
		copy(ml.redundant, prior)
	}
	st, err := runPhase(c, set, ml, rrWorker{params: cfg.Contain, exact: cfg.ExactAlign}, cfg, phase)
	if err != nil {
		return nil, Stats{}, err
	}
	keep := make([]bool, set.Len())
	if c.Rank() == 0 {
		for i := range keep {
			keep[i] = !ml.redundant[i]
		}
	}
	keep = c.Bcast(0, keep).([]bool)
	st = broadcastStats(c, st)
	return keep, st, nil
}

// ConnectedComponents executes the paper's CCD phase collectively over
// the sequences with keep[id] == true (pass nil to cluster everything).
// It returns comp, where comp[id] is the component label of sequence id
// (labels are the smallest member ID in the component) or -1 for dropped
// sequences. All ranks return identical results.
func ConnectedComponents(c *mpi.Comm, set *seq.Set, keep []bool, cfg Config) ([]int32, Stats, error) {
	comp, _, st, err := ConnectedComponentsFrom(c, set, keep, nil, 0, cfg)
	return comp, st, err
}

// ConnectedComponentsFrom is the incremental form of ConnectedComponents:
// prior (may be nil) is the committed union–find over the kept subset of
// sequences 0..newFrom-1, and only pairs with at least one side ≥ newFrom
// are aligned — old-vs-old merges are already encoded in prior. Because a
// connected-component partition is the transitive closure of its positive
// pairs and closure is order-invariant, seeding a clone of prior and
// merging only epoch-crossing pairs yields exactly the cold partition.
// Alongside comp it returns, on rank 0 only, the resulting union–find
// over the kept subset (nil on other ranks) so the caller can commit it
// as the next epoch's prior.
func ConnectedComponentsFrom(c *mpi.Comm, set *seq.Set, keep []bool, prior *unionfind.UF, newFrom int, cfg Config) ([]int32, *unionfind.UF, Stats, error) {
	return connectedComponents(c, set, keep, prior, newFrom, cfg, "ccd")
}

// ConnectedComponentsPhase is ConnectedComponents under a caller-chosen
// phase label (see RedundancyRemovalPhase), returning the rank-0
// union–find alongside the labels like ConnectedComponentsFrom.
func ConnectedComponentsPhase(c *mpi.Comm, set *seq.Set, keep []bool, cfg Config, phase string) ([]int32, *unionfind.UF, Stats, error) {
	return connectedComponents(c, set, keep, nil, 0, cfg, phase)
}

func connectedComponents(c *mpi.Comm, set *seq.Set, keep []bool, prior *unionfind.UF, newFrom int, cfg Config, phase string) ([]int32, *unionfind.UF, Stats, error) {
	cfg = cfg.withDefaults()
	// Build the kept-subset view identically on every rank.
	var ids []int
	subNew := 0 // sub-space ID that the first new sequence maps to
	for i := 0; i < set.Len(); i++ {
		if keep == nil || keep[i] {
			ids = append(ids, i)
			if i < newFrom {
				subNew++
			}
		}
	}
	sub, orig := set.Subset(ids)
	// The pair filter operates in the subset's ID space: kept sequences
	// are renumbered in ascending original order, so IDs < subNew are
	// exactly the kept prior-epoch sequences. Computed on every rank so
	// the collective phase sees identical configs.
	cfg.NewFrom = subNew

	uf := unionfind.New(sub.Len())
	if prior != nil {
		if prior.Len() != subNew {
			return nil, nil, Stats{}, fmt.Errorf("pace: prior union-find covers %d sequences, kept prior subset has %d", prior.Len(), subNew)
		}
		uf = prior.Clone()
		uf.Extend(sub.Len())
	}
	ml := &ccMaster{uf: uf, disableFilter: cfg.DisableClosureFilter}
	st, err := runPhase(c, sub, ml, ccWorker{params: cfg.Overlap, exact: cfg.ExactAlign}, cfg, phase)
	if err != nil {
		return nil, nil, Stats{}, err
	}

	comp := make([]int32, set.Len())
	if c.Rank() == 0 {
		for i := range comp {
			comp[i] = -1
		}
		// Label components by their smallest original member ID.
		rootLabel := make(map[int]int32)
		for subID := 0; subID < sub.Len(); subID++ {
			r := ml.uf.Find(subID)
			if _, ok := rootLabel[r]; !ok {
				rootLabel[r] = int32(orig[subID]) // first visit = smallest subID = smallest orig
			}
			comp[orig[subID]] = rootLabel[r]
		}
	}
	comp = c.Bcast(0, comp).([]int32)
	st = broadcastStats(c, st)
	var out *unionfind.UF
	if c.Rank() == 0 {
		out = ml.uf
	}
	return comp, out, st, nil
}

// broadcastStats shares the master's stats with all ranks.
func broadcastStats(c *mpi.Comm, st Stats) Stats {
	if c.Size() == 1 {
		return st
	}
	out := c.Bcast(0, st)
	return out.(Stats)
}

// ComponentsBySize groups sequence IDs by component label (ignoring -1)
// and returns the groups with at least minSize members, largest first
// (ties by label).
func ComponentsBySize(comp []int32, minSize int) [][]int {
	byLabel := map[int32][]int{}
	for id, l := range comp {
		if l >= 0 {
			byLabel[l] = append(byLabel[l], id)
		}
	}
	var out [][]int
	for _, members := range byLabel {
		if len(members) >= minSize {
			out = append(out, members)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}
