package pace

import (
	"encoding/binary"
	"fmt"

	"profam/internal/mpi"
)

// Binary wire codec for the hot master–worker payloads.
//
// Gob spends ~13 bytes per PairItem on field numbers and per-struct
// framing; a phase ships tens of thousands of them. The binary frames
// below delta-encode consecutive rows with zigzag varints — pair streams
// are bursts of near-monotone ids and nearby offsets, so most deltas fit
// one byte — and ride through the TCP transport's rawFrame envelope (see
// mpi/codec.go). The encoding is pure layout: decoded messages are
// byte-for-byte the structs gob would have delivered, so -wire can never
// change results, only mpi_bytes_sent{transport=tcp}.

// Wire kinds identifying the frame payloads (mpi.BinaryPayload).
const (
	wireKindWorkerMsg byte = 'W'
	wireKindMasterMsg byte = 'M'
)

func appendZig(buf []byte, v int64) []byte {
	return binary.AppendUvarint(buf, uint64((v<<1)^(v>>63)))
}

func appendPairs(buf []byte, ps []PairItem) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ps)))
	var prev PairItem
	for _, p := range ps {
		buf = appendZig(buf, int64(p.A-prev.A))
		buf = appendZig(buf, int64(p.B-prev.B))
		buf = appendZig(buf, int64(p.OffA-prev.OffA))
		buf = appendZig(buf, int64(p.OffB-prev.OffB))
		buf = appendZig(buf, int64(p.Len-prev.Len))
		prev = p
	}
	return buf
}

// wireReader is a bounds-checked cursor over a binary frame body.
type wireReader struct {
	b []byte
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("pace: truncated varint in binary frame")
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *wireReader) zig() (int64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

func (r *wireReader) octet() (byte, error) {
	if len(r.b) == 0 {
		return 0, fmt.Errorf("pace: truncated binary frame")
	}
	c := r.b[0]
	r.b = r.b[1:]
	return c, nil
}

// count reads a length prefix and sanity-checks it against the bytes
// remaining (each element needs at least minBytes), so a corrupt frame
// cannot provoke a huge allocation.
func (r *wireReader) count(minBytes int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.b)/minBytes)+1 {
		return 0, fmt.Errorf("pace: binary frame claims %d elements in %d bytes", v, len(r.b))
	}
	return int(v), nil
}

func (r *wireReader) pairs() ([]PairItem, error) {
	n, err := r.count(5)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]PairItem, n)
	var prev PairItem
	for i := range out {
		var d [5]int64
		for j := range d {
			if d[j], err = r.zig(); err != nil {
				return nil, err
			}
		}
		prev = PairItem{
			A: prev.A + int32(d[0]), B: prev.B + int32(d[1]),
			OffA: prev.OffA + int32(d[2]), OffB: prev.OffB + int32(d[3]),
			Len: prev.Len + int32(d[4]),
		}
		out[i] = prev
	}
	return out, nil
}

// WireKind implements mpi.BinaryPayload.
func (m WorkerMsg) WireKind() byte { return wireKindWorkerMsg }

// AppendBinary implements mpi.BinaryPayload.
func (m WorkerMsg) AppendBinary(buf []byte) []byte {
	var flags byte
	if m.Exhausted {
		flags = 1
	}
	if m.Request {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = appendPairs(buf, m.Pairs)
	buf = binary.AppendUvarint(buf, uint64(len(m.Results)))
	var prevA, prevB int32
	for _, r := range m.Results {
		buf = appendZig(buf, int64(r.A-prevA))
		buf = appendZig(buf, int64(r.B-prevB))
		prevA, prevB = r.A, r.B
		var f byte
		if r.OK {
			f = 1
		}
		f |= byte(r.Which) << 1
		// Bit 2 marks a per-kernel cell split; the two counts ride along
		// only then, so scalar-kernel and exact-align traffic keeps the
		// pre-kernel frame layout byte for byte.
		if r.CellsBitvec != 0 || r.CellsStriped != 0 {
			f |= 4
		}
		buf = append(buf, f)
		buf = appendZig(buf, int64(r.Stage))
		buf = binary.AppendUvarint(buf, uint64(r.Cells))
		buf = binary.AppendUvarint(buf, uint64(r.FullCells))
		if f&4 != 0 {
			buf = binary.AppendUvarint(buf, uint64(r.CellsBitvec))
			buf = binary.AppendUvarint(buf, uint64(r.CellsStriped))
		}
	}
	return buf
}

func decodeWorkerMsg(body []byte) (any, error) {
	r := wireReader{b: body}
	flags, err := r.octet()
	if err != nil {
		return nil, err
	}
	var m WorkerMsg
	m.Exhausted = flags&1 != 0
	m.Request = flags&2 != 0
	if m.Pairs, err = r.pairs(); err != nil {
		return nil, err
	}
	n, err := r.count(5)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		m.Results = make([]AlignOutcome, n)
		var prevA, prevB int32
		for i := range m.Results {
			da, err := r.zig()
			if err != nil {
				return nil, err
			}
			db, err := r.zig()
			if err != nil {
				return nil, err
			}
			prevA += int32(da)
			prevB += int32(db)
			f, err := r.octet()
			if err != nil {
				return nil, err
			}
			stage, err := r.zig()
			if err != nil {
				return nil, err
			}
			cells, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			full, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			var bv, st uint64
			if f&4 != 0 {
				if bv, err = r.uvarint(); err != nil {
					return nil, err
				}
				if st, err = r.uvarint(); err != nil {
					return nil, err
				}
			}
			m.Results[i] = AlignOutcome{
				A: prevA, B: prevB,
				OK: f&1 != 0, Which: int8((f >> 1) & 1), Stage: int8(stage),
				Cells: int64(cells), FullCells: int64(full),
				CellsBitvec: int64(bv), CellsStriped: int64(st),
			}
		}
	}
	return m, nil
}

// WireKind implements mpi.BinaryPayload.
func (m MasterMsg) WireKind() byte { return wireKindMasterMsg }

// AppendBinary implements mpi.BinaryPayload.
func (m MasterMsg) AppendBinary(buf []byte) []byte {
	var flags byte
	if m.Done {
		flags = 1
	}
	buf = append(buf, flags)
	return appendPairs(buf, m.Tasks)
}

func decodeMasterMsg(body []byte) (any, error) {
	r := wireReader{b: body}
	flags, err := r.octet()
	if err != nil {
		return nil, err
	}
	var m MasterMsg
	m.Done = flags&1 != 0
	if m.Tasks, err = r.pairs(); err != nil {
		return nil, err
	}
	return m, nil
}

// registerBinaryCodecs hooks the compact frames into the TCP transport;
// called from RegisterWireTypes so every mesh participant that can gob
// these payloads can also decode their binary form.
func registerBinaryCodecs() {
	mpi.RegisterBinaryDecoder(wireKindWorkerMsg, decodeWorkerMsg)
	mpi.RegisterBinaryDecoder(wireKindMasterMsg, decodeMasterMsg)
}
