package pace

import (
	"testing"
)

// TestSparseIndexMatchesGST: the sparse multiply must drive the phases
// to the same clustering results as the tree indexes. Raw pair counts
// are deliberately NOT compared — the tree backends count maximal-match
// occurrences (with a left-maximality skip), the sparse backend counts
// distinct-sequence pairs per k-mer row — but the candidate *set*, and
// therefore every phase outcome, is identical.
func TestSparseIndexMatchesGST(t *testing.T) {
	set, _ := famSet(t)
	gst := Config{Psi: 6}
	sp := Config{Psi: 6, Index: IndexSparse}

	keepG, _ := runRR(t, set, gst, 1)
	keepS, stS := runRR(t, set, sp, 1)
	for i := range keepG {
		if keepG[i] != keepS[i] {
			t.Fatalf("keep[%d] differs between GST and sparse", i)
		}
	}
	if stS.PairsRaw == 0 {
		t.Error("sparse run reported zero raw pairs")
	}

	compG, _ := runCCD(t, set, keepG, gst, 1)
	compS, _ := runCCD(t, set, keepS, sp, 1)
	if !samePartition(compG, compS) {
		t.Error("components differ between GST and sparse")
	}

	// Parallel sparse must agree with serial sparse, and the raw count
	// (per-row arithmetic) must be partition-invariant across ranks.
	for _, p := range []int{2, 4} {
		keepP, stP := runRR(t, set, sp, p)
		for i := range keepS {
			if keepS[i] != keepP[i] {
				t.Fatalf("p=%d sparse keep[%d] differs", p, i)
			}
		}
		if stP.PairsRaw != stS.PairsRaw {
			t.Errorf("p=%d sparse raw count %d, serial %d", p, stP.PairsRaw, stS.PairsRaw)
		}
		compP, _ := runCCD(t, set, keepP, sp, p)
		if !samePartition(compS, compP) {
			t.Errorf("p=%d sparse components differ from serial", p)
		}
	}
}

// TestSparseKnobsStillConverge: a tiny accumulator block and a generous
// occupancy cap must not change the clustering outcome (block bounds
// are batching only; the cap only kicks in above its threshold).
func TestSparseKnobsStillConverge(t *testing.T) {
	set, _ := famSet(t)
	ref := Config{Psi: 6}
	sp := Config{Psi: 6, Index: IndexSparse, SparseBlockNNZ: 64, SparseMaxRowOcc: set.Len()}

	keepG, _ := runRR(t, set, ref, 1)
	keepS, _ := runRR(t, set, sp, 2)
	for i := range keepG {
		if keepG[i] != keepS[i] {
			t.Fatalf("keep[%d] differs under sparse knobs", i)
		}
	}
	compG, _ := runCCD(t, set, keepG, ref, 1)
	compS, _ := runCCD(t, set, keepS, sp, 2)
	if !samePartition(compG, compS) {
		t.Error("components differ under sparse knobs")
	}
}
