package pace

import (
	"bytes"
	"testing"

	"profam/internal/esa"
	"profam/internal/suffixtree"
)

// TestPairSeedsAreMaximalMatches drains the worker pair stream for both
// index backends and asserts the seed coordinates carried on every
// PairItem — the (OffA, OffB, Len) the cascade anchors its banded
// kernels on — locate a genuine maximal match: the substrings are equal
// and the match can extend in neither direction.
func TestPairSeedsAreMaximalMatches(t *testing.T) {
	set, _ := famSet(t)
	opt := suffixtree.Options{MinMatch: 6, PrefixLen: 2}
	buckets, err := suffixtree.Buckets(set, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []struct {
		name  string
		build func(b suffixtree.Bucket) (*suffixtree.SubTree, error)
	}{
		{"gst", func(b suffixtree.Bucket) (*suffixtree.SubTree, error) { return suffixtree.BuildBucket(set, b, opt) }},
		{"esa", func(b suffixtree.Bucket) (*suffixtree.SubTree, error) { return esa.BuildBucket(set, b, opt) }},
	} {
		t.Run(backend.name, func(t *testing.T) {
			var trees []*suffixtree.SubTree
			for _, b := range buckets {
				st, err := backend.build(b)
				if err != nil {
					t.Fatal(err)
				}
				trees = append(trees, st)
			}
			src := newPairSource(trees, 0)
			checked := 0
			for {
				pairs, exhausted := src.next(1024)
				for _, p := range pairs {
					a := set.Get(int(p.A)).Res
					b := set.Get(int(p.B)).Res
					oa, ob, l := int(p.OffA), int(p.OffB), int(p.Len)
					if l < opt.MinMatch {
						t.Fatalf("pair (%d,%d): seed length %d below psi %d", p.A, p.B, l, opt.MinMatch)
					}
					if oa < 0 || ob < 0 || oa+l > len(a) || ob+l > len(b) {
						t.Fatalf("pair (%d,%d): seed (%d,%d,%d) out of range (%d,%d)",
							p.A, p.B, oa, ob, l, len(a), len(b))
					}
					if !bytes.Equal(a[oa:oa+l], b[ob:ob+l]) {
						t.Fatalf("pair (%d,%d): seed substrings differ at (%d,%d,%d)", p.A, p.B, oa, ob, l)
					}
					if oa > 0 && ob > 0 && a[oa-1] == b[ob-1] {
						t.Fatalf("pair (%d,%d): seed (%d,%d,%d) not left-maximal", p.A, p.B, oa, ob, l)
					}
					if oa+l < len(a) && ob+l < len(b) && a[oa+l] == b[ob+l] {
						t.Fatalf("pair (%d,%d): seed (%d,%d,%d) not right-maximal", p.A, p.B, oa, ob, l)
					}
					checked++
				}
				if exhausted {
					break
				}
			}
			if checked == 0 {
				t.Fatal("pair stream was empty; the workload should produce promising pairs")
			}
			t.Logf("%s: verified %d seeds", backend.name, checked)
		})
	}
}
