// Package pace implements the paper's PaCE-style master–worker phases:
// redundancy removal (Problem 1) and connected-component detection
// (Problem 2).
//
// All ranks hold the sequence set (a few MB at the scales involved; the
// paper's distributed structure is the suffix tree, not the sequences).
// Suffix-tree buckets are assigned to worker ranks; each worker builds its
// subtrees locally and generates "promising pairs" — pairs of sequences
// sharing a maximal exact match of length ≥ ψ — in decreasing
// match-length order. The master maintains the global clustering state,
// filters incoming pairs (duplicate elimination plus, for CCD, the
// transitive-closure test that skips pairs already in one cluster), and
// dynamically assigns the surviving alignment workload back to workers.
//
// The same code runs serially (one rank), concurrently (inproc/tcp
// transports), and on the virtual-time simulator, where each rank charges
// its machine-independent work (suffix-tree characters, DP cells,
// per-pair filter operations) to the simulated clock.
package pace

import (
	"fmt"
	"log/slog"

	"profam/internal/align"
	"profam/internal/metrics"
	"profam/internal/mpi"
	"profam/internal/pool"
	"profam/internal/seq"
	"profam/internal/trace"
	"profam/internal/unionfind"
)

// CostParams convert work units into virtual seconds for the simtime
// transport. The defaults are loosely calibrated to the paper's 700 MHz
// PowerPC 440 nodes; only ratios shape the reproduced curves.
type CostParams struct {
	SecPerTreeChar   float64 // suffix-tree construction, per suffix character examined
	SecPerPairGen    float64 // per promising pair generated at a worker
	SecPerCell       float64 // per alignment DP cell
	SecPerPairFilter float64 // master-side per-pair dedup/closure work
}

// DefaultCostParams returns the 2008-era calibration.
func DefaultCostParams() CostParams {
	return CostParams{
		SecPerTreeChar:   1.2e-7,
		SecPerPairGen:    2.5e-7,
		SecPerCell:       4.0e-8,
		SecPerPairFilter: 1.5e-7,
	}
}

// IndexKind selects the maximal-match index implementation.
type IndexKind int

const (
	// IndexGST uses the generalized suffix tree (the paper's structure).
	IndexGST IndexKind = iota
	// IndexESA uses the enhanced suffix array (internal/esa), which
	// produces the identical pair set with a flatter memory profile.
	IndexESA
	// IndexSparse uses the streamed sparse k-mer × sequence multiply
	// (internal/spgemm): the identical candidate pair set at default
	// thresholds, holding only one bucket's CSR block in memory at a
	// time instead of every subtree of the rank's assignment.
	IndexSparse
)

func (k IndexKind) String() string {
	switch k {
	case IndexESA:
		return "esa"
	case IndexSparse:
		return "sparse"
	}
	return "gst"
}

// Config controls both phases.
type Config struct {
	// Psi is ψ, the minimum maximal-match length for a promising pair
	// (default 8).
	Psi int
	// Index selects the maximal-match index (default IndexGST).
	Index IndexKind
	// PrefixLen is the suffix-tree bucketing granularity (default 2).
	PrefixLen int
	// SparseBlockNNZ bounds the postings gathered into one accumulator
	// block of the IndexSparse multiply (default 4096). Block size only
	// affects batching and memory, never the emitted pair set.
	SparseBlockNNZ int
	// SparseMinShared is the IndexSparse shared-k-mer count a pair must
	// reach within one block to become a candidate. The default 1 (any
	// shared ψ-mer) is the setting under which the sparse candidate set
	// equals the GST/ESA maximal-match pair set; higher values trade
	// recall for pair volume.
	SparseMinShared int
	// SparseMaxRowOcc caps the distinct sequences one ψ-mer row of the
	// IndexSparse matrix may touch (low-complexity blowup control).
	// 0 (the default) disables the cap, preserving backend equivalence.
	SparseMaxRowOcc int
	// BatchPairs is how many promising pairs a worker ships to the
	// master per round (default 4096).
	BatchPairs int
	// BatchTasks is how many alignment tasks the master assigns to one
	// worker per round (default 512). Under the overlapped protocol this
	// is the ceiling of the per-worker adaptive quota, which slow-starts
	// at BatchTasks/8 and doubles on every productive dispatch.
	BatchTasks int
	// PrefetchDepth is how many task requests a worker keeps in flight
	// under the overlapped protocol (default 2): the next batch is
	// requested before the current one is aligned, so compute overlaps
	// the master round-trip.
	PrefetchDepth int
	// Lockstep reverts to the global-round protocol: the master collects
	// from every worker in rank order, then dispatches to every worker,
	// once per round. It is the reference arm for the arrival-order
	// invariance tests and for measuring the overlap win; the default is
	// the event-driven arrival-order protocol.
	Lockstep bool
	// Threads bounds the intra-rank goroutine pool used for index
	// construction and batch alignment (the hybrid rank×thread model).
	// 0 or 1 means serial — the host-independent default, so simulated
	// curves reproduce everywhere; the profam layer resolves its
	// NumCPU-based auto default before handing the config down.
	Threads int
	// Scoring is the alignment scheme (default BLOSUM62 11/1).
	Scoring *align.Scoring
	// Contain holds the Definition 1 thresholds (default 95 %/95 %).
	Contain align.ContainParams
	// Overlap holds the Definition 2 thresholds (default 30 %/80 %).
	Overlap align.OverlapParams
	// Costs is the simtime work calibration.
	Costs CostParams
	// DisableClosureFilter turns off the transitive-closure pair
	// elimination in CCD; used by the ablation benchmarks.
	DisableClosureFilter bool
	// RandomPairOrder makes the master process pending alignments in
	// FIFO instead of decreasing match-length order; used by the
	// ablation benchmarks.
	RandomPairOrder bool
	// NewFrom enables the representative-pair generation mode behind
	// incremental epochs: when > 0, pair sources emit only promising
	// pairs with at least one sequence ID ≥ NewFrom. IDs below NewFrom
	// are the previous epoch's sequences — their pairwise outcomes are
	// already folded into the prior clustering state the caller seeds
	// the master with (RedundancyRemovalFrom / ConnectedComponentsFrom),
	// so re-enumerating them would only rediscover settled verdicts. The
	// suppressed enumeration is counted under pace_pairs_prior. 0 (the
	// default) emits every pair — the one-shot batch behavior.
	NewFrom int
	// ExactAlign disables the seed-anchored alignment cascade and runs
	// every assigned pair through the full-matrix predicates. Verdicts
	// are identical either way (the cascade only takes provably-safe
	// shortcuts); this is the escape hatch and the reference for the
	// determinism tests.
	ExactAlign bool
	// ScalarKernels disables the word-parallel alignment kernels (the
	// bit-parallel and striped-int16 cascade stages and the batch-level
	// profile reuse), keeping the cascade on the int32 scalar kernels
	// only. Verdicts are identical either way; this is the reference arm
	// for the kernel determinism tests and benchmarks.
	ScalarKernels bool
	// Metrics receives every phase counter, histogram and span; it is
	// the single accumulation path behind Stats (which is a read-out of
	// the registry taken at phase end). Each rank passes its own
	// registry, built on its Comm clock. nil means a private throwaway
	// registry per phase call — Stats still works, nothing is exported.
	Metrics *metrics.Registry
	// Trace receives protocol-level events: round spans, per-worker
	// dispatch/collect instants, queue-depth and merges-applied counter
	// tracks. Each rank passes its own tracer, built on its Comm clock
	// (the same clock as Metrics). nil disables event recording.
	Trace *trace.Tracer
	// Log receives structured progress records (round milestones at
	// debug level), stamped with the rank clock. nil discards.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Psi == 0 {
		c.Psi = 8
	}
	if c.PrefixLen == 0 {
		c.PrefixLen = 2
		if c.PrefixLen > c.Psi {
			c.PrefixLen = c.Psi
		}
	}
	if c.BatchPairs == 0 {
		c.BatchPairs = 4096
	}
	if c.SparseBlockNNZ == 0 {
		c.SparseBlockNNZ = 4096
	}
	if c.SparseMinShared == 0 {
		c.SparseMinShared = 1
	}
	if c.BatchTasks == 0 {
		c.BatchTasks = 512
	}
	if c.PrefetchDepth == 0 {
		c.PrefetchDepth = 2
	}
	if c.Scoring == nil {
		c.Scoring = align.DefaultScoring()
	}
	if c.Contain == (align.ContainParams{}) {
		c.Contain = align.DefaultContainParams()
	}
	if c.Overlap == (align.OverlapParams{}) {
		c.Overlap = align.DefaultOverlapParams()
	}
	if c.Costs == (CostParams{}) {
		c.Costs = DefaultCostParams()
	}
	if c.Log == nil {
		c.Log = trace.NopLogger()
	}
	return c
}

// Stats summarise one phase's execution across all ranks.
type Stats struct {
	PairsRaw       int64 // maximal-match pairs enumerated before worker-local dedup
	PairsGenerated int64 // promising pairs shipped by workers
	PairsDuplicate int64 // dropped by the master: pair already seen
	PairsClosure   int64 // dropped by the master: already same cluster
	PairsAligned   int64 // alignments actually computed
	PairsPositive  int64 // alignments that passed the phase predicate
	Cells          int64 // total DP cells across workers
	Rounds         int64 // master–worker exchange rounds
	TreeTime       float64
	PhaseTime      float64
}

func (s Stats) String() string {
	return fmt.Sprintf("pairs: %d generated, %d dup, %d closure-skipped, %d aligned (%d positive); cells=%d rounds=%d time=%.1fs",
		s.PairsGenerated, s.PairsDuplicate, s.PairsClosure,
		s.PairsAligned, s.PairsPositive, s.Cells, s.Rounds, s.PhaseTime)
}

// WorkReduction returns the fraction of generated pairs that never needed
// an alignment — the paper's headline heuristic-efficiency number.
func (s Stats) WorkReduction() float64 {
	if s.PairsGenerated == 0 {
		return 0
	}
	return 1 - float64(s.PairsAligned)/float64(s.PairsGenerated)
}

// --- wire types -------------------------------------------------------

// PairItem is one promising pair: sequence IDs plus the coordinates of
// the maximal match that made it promising (the seed). OffA/OffB locate
// the match start within each sequence; the cascade anchors its banded
// kernels on the seed diagonal.
type PairItem struct {
	A, B       int32
	OffA, OffB int32
	Len        int32
}

// AlignOutcome is a worker's verdict on one assigned pair.
type AlignOutcome struct {
	A, B  int32
	OK    bool // predicate passed
	Which int8 // RR only: 0 if A is the contained side, 1 if B
	// Stage records which cascade stage decided the pair (0 when the
	// exact path ran instead; see align.Stage).
	Stage int8
	Cells int64
	// FullCells is what the exact full-matrix predicate would have cost,
	// so the master can report the cells the cascade eliminated.
	FullCells int64
	// CellsBitvec and CellsStriped split Cells by the kernel that
	// computed them (the remainder ran on the int32 scalar kernels), so
	// the master can export per-kernel cell counters.
	CellsBitvec  int64
	CellsStriped int64
}

// WorkerMsg is the worker→master payload: the next pair batch, the
// outcomes of the worker's most recently finished task batch, and the
// Request marker telling the master this message is owed exactly one
// MasterMsg reply. Both protocols currently send only requests; the
// flag exists so a fire-and-forget report (outcomes with no reply debt)
// stays expressible on the wire.
type WorkerMsg struct {
	Pairs     []PairItem
	Exhausted bool // no more pairs will come from this worker
	Results   []AlignOutcome
	Request   bool // this message expects a MasterMsg reply
}

// WireSize implements mpi.Sized.
func (m WorkerMsg) WireSize() int { return 16 + 20*len(m.Pairs) + 29*len(m.Results) }

// MasterMsg is the master→worker round payload.
type MasterMsg struct {
	Tasks []PairItem
	Done  bool
}

// WireSize implements mpi.Sized.
func (m MasterMsg) WireSize() int { return 16 + 20*len(m.Tasks) }

// RegisterWireTypes registers the phase payloads for the TCP transport —
// both their gob form and the compact binary frames the default
// WireBinary format uses for the hot batch messages.
func RegisterWireTypes() {
	registerBinaryCodecs()
	mpi.RegisterType(WorkerMsg{})
	mpi.RegisterType(MasterMsg{})
	mpi.RegisterType([]bool{})
	mpi.RegisterType([]int32{})
	mpi.RegisterType(Stats{})
	mpi.RegisterType(int64(0))
	mpi.RegisterType(float64(0))
}

// message tags.
const (
	tagWorker = 10 // worker → master round message
	tagMaster = 11 // master → worker round message
)

// --- pending-task priority queue ---------------------------------------

// taskHeap orders pending alignments by decreasing match length (the
// paper's on-demand ordering), with FIFO tie-breaking for determinism.
type taskEntry struct {
	PairItem
	seq int64
}

type taskHeap struct {
	entries []taskEntry
	fifo    bool
}

func (h *taskHeap) Len() int { return len(h.entries) }
func (h *taskHeap) Less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if !h.fifo && a.Len != b.Len {
		return a.Len > b.Len
	}
	return a.seq < b.seq
}
func (h *taskHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *taskHeap) Push(x any)    { h.entries = append(h.entries, x.(taskEntry)) }
func (h *taskHeap) Pop() (out any) {
	n := len(h.entries)
	out = h.entries[n-1]
	h.entries = h.entries[:n-1]
	return out
}

// pairKey packs an ordered ID pair for the master's duplicate set.
func pairKey(a, b int32) int64 { return int64(a)<<32 | int64(uint32(b)) }

// --- phase logic interfaces ---------------------------------------------

// masterLogic is the phase-specific policy the generic master loop
// consults.
type masterLogic interface {
	// filter decides whether an incoming promising pair still needs an
	// alignment. Duplicate elimination is handled generically before
	// this is called. Returning closure=true counts the pair as
	// eliminated by clustering state.
	filter(p PairItem) (enqueue, closure bool)
	// absorb integrates one alignment outcome into the master state.
	absorb(r AlignOutcome)
}

// workerLogic computes the phase predicate for one assigned pair. ps
// shares query profiles for the word-parallel kernels across the pairs
// of one batch; nil runs the kernels on scratch profiles (or, with
// scalar kernels, not at all).
type workerLogic interface {
	alignPair(al *align.Aligner, ps *pool.ProfileSet, set *seq.Set, p PairItem) AlignOutcome
}

// --- redundancy removal -------------------------------------------------

type rrMaster struct {
	redundant []bool
}

func (m *rrMaster) filter(p PairItem) (bool, bool) {
	// If either side is already redundant the pair cannot change the
	// outcome: a redundant sequence is dropped regardless, and it is not
	// eligible to serve as a container (its own container still is).
	if m.redundant[p.A] || m.redundant[p.B] {
		return false, true
	}
	return true, false
}

func (m *rrMaster) absorb(r AlignOutcome) {
	if !r.OK {
		return
	}
	contained, container := r.A, r.B
	if r.Which == 1 {
		contained, container = r.B, r.A
	}
	// Never remove both sides of a mutually-contained (near-identical)
	// pair: keep the container if it still stands.
	if !m.redundant[container] {
		m.redundant[contained] = true
	}
}

type rrWorker struct {
	params align.ContainParams
	exact  bool
}

func (w rrWorker) alignPair(al *align.Aligner, ps *pool.ProfileSet, set *seq.Set, p PairItem) AlignOutcome {
	a, b := set.Get(int(p.A)), set.Get(int(p.B))
	before, beforeBv, beforeSt := al.Cells, al.CellsBitvec, al.CellsStriped
	out := AlignOutcome{A: p.A, B: p.B,
		FullCells: int64(len(a.Res)) * int64(len(b.Res))}
	if w.exact {
		ok, which := al.EitherContained(a.Res, b.Res, w.params)
		out.OK, out.Which = ok, int8(which)
	} else {
		seed := align.SeedMatch{PosA: int(p.OffA), PosB: int(p.OffB), Len: int(p.Len)}
		// Replicate EitherContainedCascade's shorter-into-longer
		// orientation here so the shared profile can be fetched for the
		// query (shorter) side — the side the word-parallel kernels
		// profile.
		q, t, qid := p.A, p.B, 0
		if len(a.Res) > len(b.Res) {
			q, t, qid = p.B, p.A, 1
			seed = seed.Swapped()
		}
		var prof *align.Profile
		qres, tres := set.Get(int(q)).Res, set.Get(int(t)).Res
		if ps != nil {
			prof = ps.Get(q, qres)
		}
		ok, stage := al.ContainedCascadeProf(qres, tres, w.params, seed, prof)
		out.OK, out.Which, out.Stage = ok, int8(qid), int8(stage)
	}
	out.Cells = al.Cells - before
	out.CellsBitvec = al.CellsBitvec - beforeBv
	out.CellsStriped = al.CellsStriped - beforeSt
	return out
}

// --- connected component detection ---------------------------------------

type ccMaster struct {
	uf            *unionfind.UF
	disableFilter bool
}

func (m *ccMaster) filter(p PairItem) (bool, bool) {
	if !m.disableFilter && m.uf.Same(int(p.A), int(p.B)) {
		return false, true
	}
	return true, false
}

func (m *ccMaster) absorb(r AlignOutcome) {
	if r.OK {
		m.uf.Union(int(r.A), int(r.B))
	}
}

type ccWorker struct {
	params align.OverlapParams
	exact  bool
}

func (w ccWorker) alignPair(al *align.Aligner, ps *pool.ProfileSet, set *seq.Set, p PairItem) AlignOutcome {
	a, b := set.Get(int(p.A)), set.Get(int(p.B))
	before, beforeBv, beforeSt := al.Cells, al.CellsBitvec, al.CellsStriped
	out := AlignOutcome{A: p.A, B: p.B,
		FullCells: int64(len(a.Res)) * int64(len(b.Res))}
	if w.exact {
		out.OK, _ = al.Overlaps(a.Res, b.Res, w.params)
	} else {
		seed := align.SeedMatch{PosA: int(p.OffA), PosB: int(p.OffB), Len: int(p.Len)}
		var prof *align.Profile
		if ps != nil {
			prof = ps.Get(p.A, a.Res)
		}
		ok, stage := al.OverlapsCascadeProf(a.Res, b.Res, w.params, seed, prof)
		out.OK, out.Stage = ok, int8(stage)
	}
	out.Cells = al.Cells - before
	out.CellsBitvec = al.CellsBitvec - beforeBv
	out.CellsStriped = al.CellsStriped - beforeSt
	return out
}
