package pace

import (
	"testing"
)

// TestESAIndexMatchesGST: both index kinds must drive the phases to the
// same results (they enumerate the same maximal-match pairs).
func TestESAIndexMatchesGST(t *testing.T) {
	set, _ := famSet(t)
	gst := Config{Psi: 6}
	esaCfg := Config{Psi: 6, Index: IndexESA}

	keepG, stG := runRR(t, set, gst, 1)
	keepE, stE := runRR(t, set, esaCfg, 1)
	for i := range keepG {
		if keepG[i] != keepE[i] {
			t.Fatalf("keep[%d] differs between GST and ESA", i)
		}
	}
	if stG.PairsRaw != stE.PairsRaw {
		t.Errorf("raw pair counts differ: gst=%d esa=%d", stG.PairsRaw, stE.PairsRaw)
	}

	compG, _ := runCCD(t, set, keepG, gst, 1)
	compE, _ := runCCD(t, set, keepE, esaCfg, 1)
	if !samePartition(compG, compE) {
		t.Error("components differ between GST and ESA")
	}

	// Parallel run with ESA must agree with serial ESA.
	keepP, _ := runRR(t, set, esaCfg, 4)
	for i := range keepE {
		if keepE[i] != keepP[i] {
			t.Fatalf("parallel ESA keep[%d] differs", i)
		}
	}
}
