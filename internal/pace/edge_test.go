package pace

import (
	"testing"

	"profam/internal/mpi"
	"profam/internal/seq"
)

// TestMoreRanksThanWork: a tiny input on many ranks leaves most workers
// with no buckets; the protocol must still terminate and agree with the
// serial result.
func TestMoreRanksThanWork(t *testing.T) {
	set := seq.NewSet()
	set.MustAdd("a", "MKWVTFISLLFLFSSAYSRGVFRR")
	set.MustAdd("b", "MKWVTFISLLFLFSSAYSRGVFRR")
	set.MustAdd("c", "PPPPGGGGYYYYHHHHKKKKEEEE")
	cfg := Config{Psi: 6}

	serialKeep, _ := runRR(t, set, cfg, 1)
	for _, p := range []int{17, 40} {
		keep, _ := runRR(t, set, cfg, p)
		for i := range serialKeep {
			if keep[i] != serialKeep[i] {
				t.Fatalf("p=%d: keep[%d] differs", p, i)
			}
		}
	}
}

// TestEmptyAndSingletonInputs: degenerate inputs must not wedge the
// master–worker protocol.
func TestEmptyAndSingletonInputs(t *testing.T) {
	empty := seq.NewSet()
	one := seq.NewSet()
	one.MustAdd("only", "MKWVTFISLLFLFSSAYSRGV")

	for _, p := range []int{1, 3} {
		for name, set := range map[string]*seq.Set{"empty": empty, "one": one} {
			_, err := mpi.RunSim(p, mpi.CostModel{}, func(c *mpi.Comm) {
				keep, _, err := RedundancyRemoval(c, set, Config{Psi: 6})
				if err != nil {
					panic(err)
				}
				for _, k := range keep {
					if !k {
						panic("degenerate input lost a sequence")
					}
				}
				comp, _, err := ConnectedComponents(c, set, keep, Config{Psi: 6})
				if err != nil {
					panic(err)
				}
				if len(comp) != set.Len() {
					panic("component labels wrong length")
				}
			})
			if err != nil {
				t.Fatalf("%s input on %d ranks: %v", name, p, err)
			}
		}
	}
}

// TestAllIdenticalSequences: everything is mutually contained; RR must
// keep exactly one.
func TestAllIdenticalSequences(t *testing.T) {
	set := seq.NewSet()
	for i := 0; i < 6; i++ {
		set.MustAdd("dup", "MKWVTFISLLFLFSSAYSRGVFRRDTHKSE")
	}
	keep, st := runRR(t, set, Config{Psi: 6}, 1)
	kept := 0
	for _, k := range keep {
		if k {
			kept++
		}
	}
	if kept != 1 {
		t.Errorf("kept %d of 6 identical sequences, want exactly 1", kept)
	}
	if st.PairsPositive == 0 {
		t.Error("no containments recorded")
	}
}

// TestNoSharedMatches: sequences with no ψ-length shared words generate
// zero pairs; both phases must still finish cleanly.
func TestNoSharedMatches(t *testing.T) {
	set := seq.NewSet()
	set.MustAdd("a", "AAAAAAAAAAAAAAAAAAAA")
	set.MustAdd("b", "CCCCCCCCCCCCCCCCCCCC")
	set.MustAdd("c", "DDDDDDDDDDDDDDDDDDDD")
	keep, st := runRR(t, set, Config{Psi: 6}, 2)
	if st.PairsGenerated != 0 || st.PairsAligned != 0 {
		t.Errorf("unexpected pairs: %+v", st)
	}
	comp, _ := runCCD(t, set, keep, Config{Psi: 6}, 2)
	labels := map[int32]bool{}
	for _, l := range comp {
		labels[l] = true
	}
	if len(labels) != 3 {
		t.Errorf("disjoint sequences should form 3 singleton components, got %d", len(labels))
	}
}
