package pace

import (
	"profam/internal/metrics"
	"profam/internal/mpi"
	"profam/internal/seq"
	"profam/internal/spgemm"
	"profam/internal/suffixtree"
)

// pairProvider abstracts the worker-side promising-pair stream so the
// master/worker/serial loops run unchanged over the tree-backed sources
// (GST/ESA subtrees) and the sparse-matrix multiply.
type pairProvider interface {
	// next returns up to k pairs and whether the provider is exhausted.
	next(k int) ([]PairItem, bool)
	// counts reports raw enumerated pairs and pairs suppressed by the
	// NewFrom epoch filter, for the phase counters.
	counts() (raw, prior int64)
}

func (s *pairSource) counts() (raw, prior int64) { return s.raw, s.prior }

// sparseSource adapts spgemm.Source to the pairProvider contract,
// converting the wire type and tracking the stream for the counters.
type sparseSource struct {
	src *spgemm.Source
}

func (s *sparseSource) next(k int) ([]PairItem, bool) {
	ps, done := s.src.Next(k)
	out := make([]PairItem, len(ps))
	for i, p := range ps {
		out[i] = PairItem{A: p.SeqA, B: p.SeqB, OffA: p.OffA, OffB: p.OffB, Len: p.Len}
	}
	return out, done
}

func (s *sparseSource) counts() (raw, prior int64) {
	st := s.src.Stats()
	return st.Raw, st.Prior
}

// newSource builds the configured backend's pair provider over the
// buckets this rank owns, charging index construction to the virtual
// clock and exporting the per-backend index metrics.
func newSource(c *mpi.Comm, set *seq.Set, own []int, buckets []suffixtree.Bucket, cfg Config, phase string) (pairProvider, error) {
	if cfg.Index != IndexSparse {
		trees, err := buildTrees(c, set, own, buckets, cfg, phase)
		if err != nil {
			return nil, err
		}
		var total int64
		for _, t := range trees {
			total += t.Stats().ApproxBytes
		}
		// The tree backends hold every subtree of the rank's assignment
		// alive for the whole phase, so their peak is the sum.
		indexBytesGauge(cfg, phase).SetMax(float64(total))
		return newPairSource(trees, int32(cfg.NewFrom)), nil
	}
	return newSparseSource(c, set, own, buckets, cfg, phase)
}

func indexBytesGauge(cfg Config, phase string) *metrics.Gauge {
	return cfg.Metrics.Gauge(metrics.Name("pace_index_bytes",
		"backend", cfg.Index.String(), "phase", phase))
}

// newSparseSource wires the spgemm multiply into the phase: the CSR
// build cost is charged per bucket (K residues examined per posting —
// the sort's comparison width) as the blocks stream, and the hooks feed
// the per-backend observability series. Hooks fire inside next(), which
// always runs on the rank's own goroutine, so touching the rank clock
// and registry is safe.
func newSparseSource(c *mpi.Comm, set *seq.Set, own []int, buckets []suffixtree.Bucket, cfg Config, phase string) (*sparseSource, error) {
	indexBytes := indexBytesGauge(cfg, phase)
	chars := cfg.Metrics.Counter(metrics.Name("pace_index_chars", "phase", phase))
	blocks := cfg.Metrics.Counter(metrics.Name("pace_spgemm_blocks", "phase", phase))
	accPeak := cfg.Metrics.Gauge(metrics.Name("pace_spgemm_accum_entries", "phase", phase))
	opt := spgemm.Options{
		K:         cfg.Psi,
		PrefixLen: cfg.PrefixLen,
		BlockNNZ:  cfg.SparseBlockNNZ,
		MinShared: cfg.SparseMinShared,
		MaxRowOcc: cfg.SparseMaxRowOcc,
		NewFrom:   int32(cfg.NewFrom),
	}
	hooks := spgemm.Hooks{
		OnBucket: func(postings, rows int, footprint int64) {
			w := int64(postings) * int64(cfg.Psi)
			c.Advance(float64(w) * cfg.Costs.SecPerTreeChar)
			chars.Add(w)
			indexBytes.SetMax(float64(footprint))
		},
		OnBlock: func(entries int) {
			blocks.Inc()
			accPeak.SetMax(float64(entries))
		},
	}
	src, err := spgemm.NewSource(set, buckets, own, opt, hooks)
	if err != nil {
		return nil, err
	}
	return &sparseSource{src: src}, nil
}
