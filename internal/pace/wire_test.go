package pace

import (
	"math/rand"
	"reflect"
	"testing"

	"profam/internal/mpi"
)

func randomWorkerMsg(rng *rand.Rand) WorkerMsg {
	var m WorkerMsg
	m.Exhausted = rng.Intn(2) == 0
	for i, n := 0, rng.Intn(40); i < n; i++ {
		m.Pairs = append(m.Pairs, PairItem{
			A: rng.Int31n(1 << 20), B: rng.Int31n(1 << 20),
			OffA: rng.Int31n(4096), OffB: rng.Int31n(4096),
			Len: rng.Int31n(512),
		})
	}
	for i, n := 0, rng.Intn(40); i < n; i++ {
		r := AlignOutcome{
			A: rng.Int31n(1 << 20), B: rng.Int31n(1 << 20),
			OK: rng.Intn(2) == 0, Which: int8(rng.Intn(2)), Stage: int8(rng.Intn(6)),
			Cells: rng.Int63n(1 << 30), FullCells: rng.Int63n(1 << 30),
		}
		if rng.Intn(2) == 0 {
			// Kernel cell splits ride an optional frame extension.
			r.CellsBitvec = rng.Int63n(1 << 24)
			r.CellsStriped = rng.Int63n(1 << 24)
		}
		m.Results = append(m.Results, r)
	}
	return m
}

// TestWireRoundTrip: the binary frames must decode back to exactly the
// structs that went in — the codec is pure layout.
func TestWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		w := randomWorkerMsg(rng)
		got, err := decodeWorkerMsg(w.AppendBinary(nil))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(got.(WorkerMsg), w) {
			t.Fatalf("trial %d: WorkerMsg round trip mismatch:\nin:  %+v\nout: %+v", trial, w, got)
		}

		m := MasterMsg{Tasks: randomWorkerMsg(rng).Pairs, Done: rng.Intn(2) == 0}
		gotM, err := decodeMasterMsg(m.AppendBinary(nil))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(gotM.(MasterMsg), m) {
			t.Fatalf("trial %d: MasterMsg round trip mismatch:\nin:  %+v\nout: %+v", trial, m, gotM)
		}
	}
}

// TestWireTruncatedFrames: every truncation of a valid frame must error
// out, never panic or fabricate data.
func TestWireTruncatedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := randomWorkerMsg(rng)
	if len(w.Pairs) == 0 {
		w.Pairs = []PairItem{{A: 1, B: 2, Len: 3}}
	}
	full := w.AppendBinary(nil)
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeWorkerMsg(full[:cut]); err == nil {
			// A truncation can only be silently valid if it still parses
			// to the same message, which a strict prefix never can here.
			t.Fatalf("truncation to %d of %d bytes decoded without error", cut, len(full))
		}
	}
}

// TestWireCorruptCountRejected: a frame claiming an absurd element count
// must be rejected before any large allocation happens.
func TestWireCorruptCountRejected(t *testing.T) {
	var buf []byte
	buf = append(buf, 0) // flags
	// Pairs count: claim 2^40 elements in a 3-byte body.
	buf = append(buf, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20)
	buf = append(buf, 1, 2, 3)
	if _, err := decodeWorkerMsg(buf); err == nil {
		t.Fatal("absurd element count accepted")
	}
}

// realisticWorkerMsg models what the phases actually ship: pair streams
// from the match-length-ordered generator are near-monotone in (A, B)
// with small offsets, and result batches come back in task order. This
// is the traffic shape the delta encoding is designed for.
func realisticWorkerMsg(rng *rand.Rand, batch int) WorkerMsg {
	var m WorkerMsg
	a := int32(rng.Intn(50))
	for i := 0; i < batch; i++ {
		a += int32(rng.Intn(3))
		m.Pairs = append(m.Pairs, PairItem{
			A: a, B: a + 1 + int32(rng.Intn(60)),
			OffA: int32(rng.Intn(300)), OffB: int32(rng.Intn(300)),
			Len: 8 + int32(rng.Intn(50)),
		})
	}
	a = int32(rng.Intn(50))
	for i := 0; i < batch; i++ {
		a += int32(rng.Intn(3))
		r := AlignOutcome{
			A: a, B: a + 1 + int32(rng.Intn(60)),
			OK: rng.Intn(3) > 0, Which: int8(rng.Intn(2)), Stage: int8(1 + rng.Intn(5)),
			Cells: int64(rng.Intn(20000)), FullCells: int64(10000 + rng.Intn(90000)),
		}
		// With the word-parallel kernels on, most cascade rejects charge
		// some bitvec or striped cells.
		switch r.Stage {
		case int8(4):
			r.CellsBitvec = r.Cells
		case int8(5):
			r.CellsStriped = r.Cells
		}
		m.Results = append(m.Results, r)
	}
	return m
}

// TestBinaryWireBytesReduction: on realistic batch traffic the compact
// frames must at least halve mpi_bytes_sent{transport=tcp} relative to
// gob — the ISSUE's codec acceptance bar.
func TestBinaryWireBytesReduction(t *testing.T) {
	RegisterWireTypes()
	defer mpi.SetWireFormat(mpi.WireBinary)

	rng := rand.New(rand.NewSource(11))
	batches := make([]WorkerMsg, 24)
	for i := range batches {
		batches[i] = realisticWorkerMsg(rng, 16+rng.Intn(48))
	}

	measure := func(f mpi.WireFormat, port int) int64 {
		mpi.SetWireFormat(f)
		var sent int64
		err := mpi.RunTCP(2, port, func(c *mpi.Comm) {
			if c.Rank() == 1 {
				for _, b := range batches {
					c.Send(0, 10, b)
					m := c.Recv(0, 11).Data.(MasterMsg)
					if len(m.Tasks) != len(b.Pairs) {
						panic("echo mismatch")
					}
				}
				sent = c.Stats().BytesSent
				return
			}
			for range batches {
				m := c.Recv(1, 10).Data.(WorkerMsg)
				c.Send(1, 11, MasterMsg{Tasks: m.Pairs})
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return sent
	}

	gob := measure(mpi.WireGob, 43400)
	bin := measure(mpi.WireBinary, 43408)
	ratio := float64(gob) / float64(bin)
	t.Logf("worker->master wire bytes: gob=%d binary=%d (%.2fx)", gob, bin, ratio)
	if ratio < 2 {
		t.Errorf("binary codec reduces wire bytes only %.2fx, want >= 2x", ratio)
	}
}
