package bipartite

import (
	"sort"
	"testing"

	"profam/internal/align"
	"profam/internal/seq"
	"profam/internal/workload"
)

func TestBuildBdSymmetricAndLabelled(t *testing.T) {
	set, _ := workload.Generate(workload.Params{
		Families: 1, MeanFamilySize: 8, MeanLength: 100,
		Divergence: 0.08, Singletons: 0, Seed: 5,
	})
	members := make([]int, set.Len())
	for i := range members {
		members[i] = i
	}
	g, bst, err := BuildBd(set, members, Config{Psi: 6})
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != Duplicate || g.NLeft != set.Len() || g.NRight != set.Len() {
		t.Fatalf("graph shape wrong: %s", g)
	}
	if bst.PairsAligned == 0 || bst.Cells == 0 || g.Edges() == 0 {
		t.Fatalf("no edges found in a planted family (stats=%+v)", bst)
	}
	// Symmetry: i in Adj[j] iff j in Adj[i]; no self loops.
	adjSet := func(l int) map[int32]bool {
		m := map[int32]bool{}
		for _, r := range g.Adj[l] {
			m[r] = true
		}
		return m
	}
	for i := 0; i < g.NLeft; i++ {
		if len(g.Adj[i]) > 0 && !adjSet(i)[int32(i)] {
			t.Fatalf("non-isolated vertex %d missing its self edge", i)
		}
		for _, j := range g.Adj[i] {
			if !adjSet(int(j))[int32(i)] {
				t.Fatalf("asymmetric edge %d-%d", i, j)
			}
		}
		if !sort.SliceIsSorted(g.Adj[i], func(a, b int) bool { return g.Adj[i][a] < g.Adj[i][b] }) {
			t.Fatalf("Adj[%d] not sorted", i)
		}
	}
	// LeftSeq == RightSeq for Bd.
	for i := range g.LeftSeq {
		if g.LeftSeq[i] != g.RightSeq[i] {
			t.Fatal("Bd left/right sequence mapping differs")
		}
	}
}

func TestBuildBdEdgesMatchPredicate(t *testing.T) {
	// Hand-built component: three similar sequences plus one distant.
	set := seq.NewSet()
	base := "MKWVTFISLLFLFSSAYSRGVFRRDTHKSEIAHRFKDLGEEHFKGLVLIAFSQYLQ"
	set.MustAdd("a", base)
	set.MustAdd("b", base[:50]+"AAAAAA")
	set.MustAdd("c", "G"+base[1:])
	set.MustAdd("d", "PPPPPPPPPPGGGGGGGGGGYYYYYYYYYYHHHHHHHHHHKKKKKKKKKKLLLLLL")
	g, _, err := BuildBd(set, []int{0, 1, 2, 3}, Config{Psi: 6})
	if err != nil {
		t.Fatal(err)
	}
	al := align.NewAligner(nil)
	p := align.DefaultOverlapParams()
	// Every edge must satisfy the predicate; every predicate-passing pair
	// sharing a >=6 match must be an edge.
	has := func(i, j int) bool {
		for _, r := range g.Adj[i] {
			if int(r) == j {
				return true
			}
		}
		return false
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			ok, _ := al.Overlaps(set.Get(i).Res, set.Get(j).Res, p)
			if has(i, j) && !ok {
				t.Errorf("edge %d-%d fails the overlap predicate", i, j)
			}
			if ok && !has(i, j) {
				t.Errorf("predicate-passing pair %d-%d missing (no >=psi match?)", i, j)
			}
		}
	}
	if len(g.Adj[3]) != 0 {
		t.Error("distant sequence acquired edges")
	}
}

func TestBuildBm(t *testing.T) {
	set := seq.NewSet()
	dom := "WWHKNMEFRW" // exactly w=10
	set.MustAdd("a", "AAAA"+dom+"CCCC")
	set.MustAdd("b", "GGG"+dom+"TTTT")
	set.MustAdd("c", "PPPPPPPPPPPPPP") // no shared words
	g, _, err := BuildBm(set, []int{0, 1, 2}, Config{W: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != Match || g.NRight != 3 {
		t.Fatalf("graph shape: %s", g)
	}
	if g.NLeft != 1 {
		t.Fatalf("expected exactly 1 shared word, got %d (%v)", g.NLeft, g.LeftWord)
	}
	if g.LeftWord[0] != dom {
		t.Errorf("shared word = %q, want %q", g.LeftWord[0], dom)
	}
	if len(g.Adj[0]) != 2 || g.Adj[0][0] != 0 || g.Adj[0][1] != 1 {
		t.Errorf("word adjacency = %v", g.Adj[0])
	}
}

func TestBuildBmRepeatedWordCountedOnce(t *testing.T) {
	set := seq.NewSet()
	dom := "WWHKNMEFRW"
	set.MustAdd("a", dom+"AAAA"+dom) // word appears twice in one sequence
	set.MustAdd("b", dom)
	g, _, err := BuildBm(set, []int{0, 1}, Config{W: 10})
	if err != nil {
		t.Fatal(err)
	}
	for li, w := range g.LeftWord {
		if w == dom {
			if len(g.Adj[li]) != 2 {
				t.Errorf("word %q adjacency = %v, want one entry per sequence", w, g.Adj[li])
			}
		}
	}
}

func TestBuildBmDomainFamily(t *testing.T) {
	set, truth := workload.Generate(workload.Params{
		Families: 1, DomainFamilies: 1, DomainSize: 6, Singletons: 0, Seed: 9,
	})
	var members []int
	for id := range truth.Label {
		if truth.Label[id] == 1 { // the domain family
			members = append(members, id)
		}
	}
	if len(members) != 6 {
		t.Fatalf("expected 6 domain members, got %d", len(members))
	}
	g, _, err := BuildBm(set, members, Config{W: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.NLeft == 0 {
		t.Fatal("domain family produced no shared words")
	}
	// At least one word must be shared by most members.
	best := 0
	for _, a := range g.Adj {
		if len(a) > best {
			best = len(a)
		}
	}
	if best < 4 {
		t.Errorf("most-shared word covers only %d/6 members", best)
	}
}

func TestDistributeComponents(t *testing.T) {
	comps := [][]int{
		make([]int, 100), make([]int, 10), make([]int, 10),
		make([]int, 10), make([]int, 10), make([]int, 10),
	}
	own := DistributeComponents(comps, 3)
	covered := map[int]bool{}
	for _, idxs := range own {
		for _, i := range idxs {
			if covered[i] {
				t.Fatalf("component %d assigned twice", i)
			}
			covered[i] = true
		}
	}
	if len(covered) != len(comps) {
		t.Fatalf("assigned %d/%d components", len(covered), len(comps))
	}
	// The big component must be alone on its rank under w=|C|^2.
	for _, idxs := range own {
		for _, i := range idxs {
			if i == 0 && len(idxs) != 1 {
				t.Errorf("huge component shares a rank: %v", idxs)
			}
		}
	}
}

func TestGraphStats(t *testing.T) {
	g := &Graph{Kind: Match, NLeft: 2, NRight: 3, Adj: [][]int32{{0, 1}, {2}}}
	if g.Edges() != 3 {
		t.Errorf("Edges = %d", g.Edges())
	}
	if g.MeanLeftDegree() != 1.5 {
		t.Errorf("MeanLeftDegree = %v", g.MeanLeftDegree())
	}
	empty := &Graph{}
	if empty.MeanLeftDegree() != 0 {
		t.Error("empty graph degree")
	}
}
