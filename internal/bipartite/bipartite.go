// Package bipartite builds the paper's two bipartite-graph reductions of
// a connected component, the inputs to dense-subgraph detection:
//
//   - B_d ("duplicate", global-similarity): Vl = Vr = the component's
//     sequences; each similarity edge (i,j) of the component graph
//     becomes the two directed entries (i→j) and (j→i). Dense subgraphs
//     (A ⊆ Vl, B ⊆ Vr) are protein families when |A∩B|/|A∪B| ≥ τ.
//   - B_m ("match", domain-based): Vl = the w-length words occurring in
//     at least two member sequences, Vr = the sequences; a word links to
//     every sequence containing it. The right-hand set B of a dense
//     subgraph is reported as the family directly.
//
// Edges for B_d are discovered with the same maximal-match filter the
// clustering phases use (a modified PaCE pass without clustering, per the
// paper): only pairs sharing a ≥ψ maximal match are aligned against the
// edge similarity cutoff.
package bipartite

import (
	"fmt"
	"sort"

	"profam/internal/align"
	"profam/internal/pool"
	"profam/internal/seq"
	"profam/internal/suffixtree"
)

// Kind distinguishes the two reductions.
type Kind int

const (
	// Duplicate is the global-similarity reduction B_d.
	Duplicate Kind = iota
	// Match is the domain-based reduction B_m.
	Match
)

func (k Kind) String() string {
	if k == Duplicate {
		return "Bd"
	}
	return "Bm"
}

// Graph is an undirected bipartite graph in adjacency-list form.
// Left vertices are 0..NLeft-1, right vertices 0..NRight-1; Adj[l] lists
// the right neighbours of left vertex l, sorted ascending.
//
// RightSeq maps right vertices to original sequence IDs. For Duplicate
// graphs LeftSeq does the same for left vertices (and left index i and
// right index i denote the same sequence); for Match graphs LeftWord
// holds the w-mer of each left vertex and LeftSeq is nil.
type Graph struct {
	Kind          Kind
	NLeft, NRight int
	Adj           [][]int32
	LeftSeq       []int32
	LeftWord      []string
	RightSeq      []int32
}

// Edges returns the total number of bipartite edges.
func (g *Graph) Edges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n
}

// Degree statistics over left vertices with at least one edge.
func (g *Graph) MeanLeftDegree() float64 {
	if g.NLeft == 0 {
		return 0
	}
	return float64(g.Edges()) / float64(g.NLeft)
}

func (g *Graph) String() string {
	return fmt.Sprintf("%s graph: %d left, %d right, %d edges", g.Kind, g.NLeft, g.NRight, g.Edges())
}

// Config controls graph construction.
type Config struct {
	// Psi is the maximal-match filter length for B_d edge discovery
	// (default 8).
	Psi int
	// Scoring for edge alignments (default BLOSUM62 11/1).
	Scoring *align.Scoring
	// Edge is the similarity cutoff defining graph edges (the paper's
	// "user-specified similarity cutoff"; default = the CCD overlap
	// definition, 30 % similarity over 80 % of the longer sequence).
	Edge align.OverlapParams
	// W is the word length for B_m (default 10, per the paper's w ≈ 10).
	W int
	// ExactAlign disables the seed-anchored cascade for B_d edge
	// alignments, running every candidate pair through the full-matrix
	// Overlaps predicate. Edges are identical either way.
	ExactAlign bool
	// ScalarKernels keeps the cascade on the int32 scalar kernels,
	// disabling the word-parallel stages and the per-component profile
	// reuse. Edges are identical either way.
	ScalarKernels bool
}

func (c Config) withDefaults() Config {
	if c.Psi == 0 {
		c.Psi = 8
	}
	if c.Scoring == nil {
		c.Scoring = align.DefaultScoring()
	}
	if c.Edge == (align.OverlapParams{}) {
		c.Edge = align.DefaultOverlapParams()
	}
	if c.W == 0 {
		c.W = 10
	}
	return c
}

// BuildStats records the work spent constructing a graph, for the
// virtual-time accounting and metrics of the distributed pipeline.
// PairsAligned and Cells are B_d quantities; Chars and Words are B_m
// quantities (characters scanned for word extraction, shared words kept
// as left vertices).
type BuildStats struct {
	PairsAligned int64
	Cells        int64
	Chars        int64
	Words        int64
}

// BuildBd constructs the global-similarity reduction of one connected
// component. members lists the component's sequence IDs within set.
func BuildBd(set *seq.Set, members []int, cfg Config) (*Graph, BuildStats, error) {
	cfg = cfg.withDefaults()
	m := len(members)
	g := &Graph{
		Kind:     Duplicate,
		NLeft:    m,
		NRight:   m,
		Adj:      make([][]int32, m),
		LeftSeq:  make([]int32, m),
		RightSeq: make([]int32, m),
	}
	sorted := append([]int(nil), members...)
	sort.Ints(sorted)
	for i, id := range sorted {
		g.LeftSeq[i] = int32(id)
		g.RightSeq[i] = int32(id)
	}

	sub, _ := set.Subset(sorted)
	trees, err := suffixtree.Build(sub, suffixtree.Options{MinMatch: cfg.Psi})
	if err != nil {
		return nil, BuildStats{}, err
	}
	al := align.NewAligner(cfg.Scoring)
	if cfg.ScalarKernels {
		al.Kernels = align.KernelScalar
	}
	// A component aligns each member against many partners, so the
	// word-parallel kernels' query profiles are shared across the whole
	// edge-discovery sweep instead of rebuilt per pair.
	var profs *pool.ProfileSet
	if !cfg.ScalarKernels && !cfg.ExactAlign {
		profs = pool.NewProfileCache(cfg.Scoring).NewSet()
		defer profs.Release()
	}
	seen := map[int64]bool{}
	var st BuildStats
	suffixtree.MergedPairs(trees, func(p suffixtree.Pair) bool {
		key := int64(p.SeqA)<<32 | int64(uint32(p.SeqB))
		if seen[key] {
			return true
		}
		seen[key] = true
		st.PairsAligned++
		a, b := sub.Get(int(p.SeqA)).Res, sub.Get(int(p.SeqB)).Res
		var ok bool
		if cfg.ExactAlign {
			ok, _ = al.Overlaps(a, b, cfg.Edge)
		} else {
			seed := align.SeedMatch{PosA: int(p.OffA), PosB: int(p.OffB), Len: int(p.Len)}
			var prof *align.Profile
			if profs != nil {
				prof = profs.Get(p.SeqA, a)
			}
			ok, _ = al.OverlapsCascadeProf(a, b, cfg.Edge, seed, prof)
		}
		if ok {
			g.Adj[p.SeqA] = append(g.Adj[p.SeqA], p.SeqB)
			g.Adj[p.SeqB] = append(g.Adj[p.SeqB], p.SeqA)
		}
		return true
	})
	// Add a self edge to every non-isolated vertex. In B_d the two sides
	// duplicate the same sequences, and without (i,i) the out-link sets
	// of two family members always differ by exactly their own two
	// entries — for families of size ≤ s+1 no shingle can ever be
	// shared, making small dense subgraphs undetectable. With self
	// edges, the members of a k-clique have identical neighbourhoods and
	// collapse onto the same shingles for any k ≥ s.
	for i := range g.Adj {
		if len(g.Adj[i]) > 0 {
			g.Adj[i] = append(g.Adj[i], int32(i))
		}
	}
	for _, a := range g.Adj {
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	}
	st.Cells = al.Cells
	return g, st, nil
}

// BuildBm constructs the domain-based reduction of one connected
// component: left vertices are the W-length words shared by at least two
// member sequences.
func BuildBm(set *seq.Set, members []int, cfg Config) (*Graph, BuildStats, error) {
	cfg = cfg.withDefaults()
	sorted := append([]int(nil), members...)
	sort.Ints(sorted)

	g := &Graph{
		Kind:     Match,
		NRight:   len(sorted),
		RightSeq: make([]int32, len(sorted)),
	}
	for i, id := range sorted {
		g.RightSeq[i] = int32(id)
	}

	// word -> set of right vertices containing it (deduplicated per
	// sequence, kept in ascending right order by construction).
	var st BuildStats
	occ := map[string][]int32{}
	for ri, id := range sorted {
		res := set.Get(id).Res
		st.Chars += int64(len(res))
		if len(res) < cfg.W {
			continue
		}
		lastSeen := map[string]bool{}
		for off := 0; off+cfg.W <= len(res); off++ {
			w := string(res[off : off+cfg.W])
			if lastSeen[w] {
				continue
			}
			lastSeen[w] = true
			occ[w] = append(occ[w], int32(ri))
		}
	}

	words := make([]string, 0, len(occ))
	for w, rs := range occ {
		if len(rs) >= 2 {
			words = append(words, w)
		}
	}
	sort.Strings(words) // deterministic left ordering

	g.NLeft = len(words)
	g.LeftWord = words
	g.Adj = make([][]int32, len(words))
	for li, w := range words {
		g.Adj[li] = occ[w]
	}
	st.Words = int64(len(words))
	return g, st, nil
}

// DistributeComponents greedily assigns components (given as member-ID
// lists) to p ranks balancing the estimated dense-subgraph workload,
// which grows superlinearly with component size; weight |C|^2 mirrors the
// paper's batching of components "of roughly the same size".
// Returns, per rank, the indices of its components.
func DistributeComponents(comps [][]int, p int) [][]int {
	type wc struct {
		idx int
		w   int64
	}
	ws := make([]wc, len(comps))
	for i, c := range comps {
		ws[i] = wc{i, int64(len(c)) * int64(len(c))}
	}
	sort.Slice(ws, func(a, b int) bool {
		if ws[a].w != ws[b].w {
			return ws[a].w > ws[b].w
		}
		return ws[a].idx < ws[b].idx
	})
	own := make([][]int, p)
	load := make([]int64, p)
	for _, c := range ws {
		best := 0
		for r := 1; r < p; r++ {
			if load[r] < load[best] {
				best = r
			}
		}
		own[best] = append(own[best], c.idx)
		load[best] += c.w
	}
	return own
}
