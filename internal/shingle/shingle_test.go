package shingle

import (
	"fmt"
	"math/rand"
	"testing"

	"profam/internal/bipartite"
)

// denseBd builds a B_d-style graph with planted dense blocks: block k has
// blockSize vertices, each connected to every other vertex in the block
// with probability density, plus sparse random cross edges.
func denseBd(rng *rand.Rand, blocks, blockSize int, density, noise float64) *bipartite.Graph {
	n := blocks * blockSize
	adjSet := make([]map[int32]bool, n)
	for i := range adjSet {
		adjSet[i] = map[int32]bool{}
	}
	addEdge := func(i, j int) {
		if i == j {
			return
		}
		adjSet[i][int32(j)] = true
		adjSet[j][int32(i)] = true
	}
	for b := 0; b < blocks; b++ {
		base := b * blockSize
		for i := 0; i < blockSize; i++ {
			for j := i + 1; j < blockSize; j++ {
				if rng.Float64() < density {
					addEdge(base+i, base+j)
				}
			}
		}
	}
	for k := 0; k < int(noise*float64(n)); k++ {
		addEdge(rng.Intn(n), rng.Intn(n))
	}
	g := &bipartite.Graph{
		Kind: bipartite.Duplicate, NLeft: n, NRight: n,
		Adj:      make([][]int32, n),
		LeftSeq:  make([]int32, n),
		RightSeq: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		g.LeftSeq[i] = int32(i)
		g.RightSeq[i] = int32(i)
		for j := range adjSet[i] {
			g.Adj[i] = append(g.Adj[i], j)
		}
		a := g.Adj[i]
		for x := 1; x < len(a); x++ {
			for y := x; y > 0 && a[y] < a[y-1]; y-- {
				a[y], a[y-1] = a[y-1], a[y]
			}
		}
	}
	return g
}

func TestDetectRecoversPlantedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := denseBd(rng, 4, 20, 0.9, 0.1)
	subs, st := Detect(g, Params{S1: 4, C1: 120, S2: 4, C2: 60, Tau: 0.4, MinSize: 5})
	if len(subs) < 3 {
		t.Fatalf("recovered only %d/4 planted blocks (stats %+v)", len(subs), st)
	}
	// Each reported subgraph should be dominated by one block.
	for _, d := range subs {
		blockCount := map[int32]int{}
		for _, id := range d.Members {
			blockCount[id/20]++
		}
		best, total := 0, 0
		for _, c := range blockCount {
			total += c
			if c > best {
				best = c
			}
		}
		if best*10 < total*8 {
			t.Errorf("subgraph mixes blocks: %v", blockCount)
		}
		if d.Density < 0.5 {
			t.Errorf("planted block reported with low density %.2f", d.Density)
		}
	}
	if st.WorkOps == 0 || st.ShinglesPass1 == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}

func TestDetectDisjointOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := denseBd(rng, 3, 15, 0.85, 0.3)
	subs, _ := Detect(g, Params{S1: 3, C1: 80, S2: 3, C2: 40, Tau: 0.3, MinSize: 2})
	seen := map[int32]bool{}
	for _, d := range subs {
		for _, id := range d.Members {
			if seen[id] {
				t.Fatalf("sequence %d reported in two dense subgraphs", id)
			}
			seen[id] = true
		}
	}
}

func TestDetectDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := denseBd(rng, 3, 12, 0.9, 0.2)
	p := Params{S1: 3, C1: 60, S2: 3, C2: 30, MinSize: 3}
	a, _ := Detect(g, p)
	b, _ := Detect(g, p)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("Detect not deterministic for identical input and seed")
	}
	p2 := p
	p2.Seed = 999
	c, _ := Detect(g, p2)
	_ = c // different seed may or may not differ; just must not crash
}

func TestDetectEmptyAndTiny(t *testing.T) {
	empty := &bipartite.Graph{Kind: bipartite.Duplicate}
	subs, st := Detect(empty, Params{})
	if len(subs) != 0 || st.LeftVertices != 0 {
		t.Errorf("empty graph: %v %+v", subs, st)
	}
	// Two isolated vertices: no subgraphs.
	g := &bipartite.Graph{
		Kind: bipartite.Duplicate, NLeft: 2, NRight: 2,
		Adj: [][]int32{{}, {}}, LeftSeq: []int32{0, 1}, RightSeq: []int32{0, 1},
	}
	subs, _ = Detect(g, Params{MinSize: 2})
	if len(subs) != 0 {
		t.Errorf("isolated vertices yielded subgraphs: %v", subs)
	}
}

func TestTauFilter(t *testing.T) {
	// A star: one hub connected to many leaves. A (hub side) and B
	// (leaves) barely intersect, so a high tau must reject it.
	n := 12
	g := &bipartite.Graph{
		Kind: bipartite.Duplicate, NLeft: n, NRight: n,
		Adj: make([][]int32, n), LeftSeq: make([]int32, n), RightSeq: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		g.LeftSeq[i], g.RightSeq[i] = int32(i), int32(i)
	}
	for i := 1; i < n; i++ {
		g.Adj[0] = append(g.Adj[0], int32(i))
		g.Adj[i] = []int32{0}
	}
	strict, _ := Detect(g, Params{S1: 1, C1: 40, S2: 2, C2: 20, Tau: 0.9, MinSize: 2})
	if len(strict) != 0 {
		t.Errorf("tau=0.9 accepted a star: %v", strict)
	}
}

func TestBmReportsRightSide(t *testing.T) {
	// Words 0..4 each link the same 6 sequences: B should be those
	// sequences.
	nw, ns := 5, 6
	g := &bipartite.Graph{
		Kind: bipartite.Match, NLeft: nw, NRight: ns,
		Adj:      make([][]int32, nw),
		LeftWord: make([]string, nw),
		RightSeq: make([]int32, ns),
	}
	for i := 0; i < ns; i++ {
		g.RightSeq[i] = int32(100 + i) // original IDs offset to catch mapping bugs
	}
	for w := 0; w < nw; w++ {
		g.LeftWord[w] = fmt.Sprintf("W%d", w)
		for s := 0; s < ns; s++ {
			g.Adj[w] = append(g.Adj[w], int32(s))
		}
	}
	subs, _ := Detect(g, Params{S1: 3, C1: 40, S2: 2, C2: 20, MinSize: 3})
	if len(subs) != 1 {
		t.Fatalf("got %d subgraphs, want 1: %v", len(subs), subs)
	}
	if subs[0].Size() != ns {
		t.Errorf("family size %d, want %d", subs[0].Size(), ns)
	}
	for i, id := range subs[0].Members {
		if id != int32(100+i) {
			t.Errorf("member %d = %d, want %d (RightSeq mapping)", i, id, 100+i)
		}
	}
	if subs[0].Density != 0 {
		t.Error("Bm subgraph should not report Bd density")
	}
}

func TestSizeHistogram(t *testing.T) {
	subs := []DenseSubgraph{
		{Members: make([]int32, 5)},
		{Members: make([]int32, 7)},
		{Members: make([]int32, 12)},
		{Members: make([]int32, 13)},
	}
	bounds, counts := SizeHistogram(subs, 5)
	if len(bounds) != 2 || bounds[0] != 5 || bounds[1] != 10 {
		t.Fatalf("bounds = %v", bounds)
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	b2, _ := SizeHistogram(subs, 0) // default width
	if len(b2) == 0 {
		t.Error("default width failed")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.S1 != 5 || p.C1 != 300 || p.S2 != 5 || p.C2 != 100 {
		t.Errorf("defaults wrong: %+v", p)
	}
	if p.Tau != 0.5 || p.MinSize != 2 || p.Seed == 0 {
		t.Errorf("defaults wrong: %+v", p)
	}
}

func BenchmarkDetect(b *testing.B) {
	for _, size := range []int{200, 800} {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			g := denseBd(rng, size/20, 20, 0.8, 0.2)
			p := Params{S1: 5, C1: 100, S2: 5, C2: 50, MinSize: 5}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Detect(g, p)
			}
		})
	}
}
