package shingle

import (
	"fmt"
	"math/rand"
	"testing"

	"profam/internal/mpi"
)

func TestDetectParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := denseBd(rng, 4, 18, 0.85, 0.2)
	p := Params{S1: 4, C1: 100, S2: 4, C2: 50, Tau: 0.4, MinSize: 4}
	want, _ := Detect(g, p)

	for _, ranks := range []int{1, 2, 5} {
		var got []DenseSubgraph
		_, err := mpi.RunSim(ranks, mpi.BlueGeneLike(), func(c *mpi.Comm) {
			subs, _ := DetectParallel(c, g, p)
			if c.Rank() == ranks-1 { // check a non-root rank's copy too
				got = subs
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("ranks=%d: parallel result differs from serial\nserial:   %v\nparallel: %v", ranks, want, got)
		}
	}
}

func TestDetectParallelOverTCP(t *testing.T) {
	RegisterWireTypes()
	mpi.RegisterType(uint64(0))
	rng := rand.New(rand.NewSource(4))
	g := denseBd(rng, 3, 12, 0.9, 0.1)
	p := Params{S1: 3, C1: 60, S2: 3, C2: 30, MinSize: 3}
	want, _ := Detect(g, p)
	var got []DenseSubgraph
	err := mpi.RunTCP(3, 43100, func(c *mpi.Comm) {
		subs, _ := DetectParallel(c, g, p)
		if c.Rank() == 1 {
			got = subs
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("tcp parallel result differs from serial")
	}
}

func TestDetectParallelEmptyGraph(t *testing.T) {
	g := denseBd(rand.New(rand.NewSource(1)), 1, 1, 0, 0)
	_, err := mpi.RunSim(3, mpi.CostModel{}, func(c *mpi.Comm) {
		subs, _ := DetectParallel(c, g, Params{})
		if len(subs) != 0 {
			panic("single vertex produced subgraphs")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDetectParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := denseBd(rng, 20, 20, 0.8, 0.2)
	p := Params{S1: 5, C1: 100, S2: 5, C2: 50, MinSize: 5}
	for _, ranks := range []int{1, 4} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mpi.RunSim(ranks, mpi.BlueGeneLike(), func(c *mpi.Comm) {
					DetectParallel(c, g, p)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
