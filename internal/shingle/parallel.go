package shingle

import (
	"sort"

	"profam/internal/bipartite"
	"profam/internal/minhash"
	"profam/internal/mpi"
)

// This file implements the parallelization of the Shingle algorithm that
// the paper lists as future work ("our goal is to parallelize the
// shingle step to address the need for memory"). Pass I dominates both
// memory (O(m·c) first-level shingle tuples) and compute (c permutations
// over every adjacency list), and is embarrassingly parallel over left
// vertices: each rank shingles a contiguous slice of Vl and ships its
// <shingle, vertex> tuples to rank 0, which runs the (much smaller)
// second pass and the union–find reporting. Every rank returns the same
// result.

// shingleTuples is the wire payload of one rank's pass-I output.
type shingleTuples struct {
	Hashes []uint64
	Verts  []int32
}

// WireSize implements mpi.Sized.
func (t shingleTuples) WireSize() int { return 16 + 12*len(t.Hashes) }

// RegisterWireTypes registers the parallel-shingle payloads for the TCP
// transport.
func RegisterWireTypes() {
	mpi.RegisterType(shingleTuples{})
	mpi.RegisterType(wireSubgraphs{})
}

type wireSubgraphs struct {
	Sizes      []int32
	Members    []int32 // concatenated
	MeanDegree []float64
	Density    []float64
}

// WireSize implements mpi.Sized.
func (w wireSubgraphs) WireSize() int {
	return 24 + 4*len(w.Sizes) + 4*len(w.Members) + 16*len(w.MeanDegree)
}

const (
	tagTuples = 40
	tagResult = 41
)

// secPerHashOp is the virtual-clock charge per element hashed, matching
// the serial detector's accounting.
const secPerHashOp = 2.0e-8

// DetectParallel runs the two-pass Shingle algorithm with pass I
// distributed over all ranks of c. The result is identical to
// Detect(g, p) — the permutation family is seeded, so shingles do not
// depend on which rank computes them.
func DetectParallel(c *mpi.Comm, g *bipartite.Graph, p Params) ([]DenseSubgraph, Stats) {
	p = p.withDefaults()
	if c.Size() == 1 {
		return Detect(g, p)
	}

	// Pass I over this rank's slice of left vertices.
	rank, size := c.Rank(), c.Size()
	lo := g.NLeft * rank / size
	hi := g.NLeft * (rank + 1) / size
	fam1 := minhash.NewFamily(p.C1, p.Seed)
	var mine shingleTuples
	var scratch, elems []uint64
	var ops int64
	for v := lo; v < hi; v++ {
		adj := g.Adj[v]
		if len(adj) == 0 {
			continue
		}
		elems = elems[:0]
		for _, r := range adj {
			elems = append(elems, uint64(r))
		}
		seenHere := map[uint64]bool{}
		for _, pm := range fam1.Perms {
			scratch = pm.Shingle(elems, p.S1, scratch)
			h := minhash.HashTuple(scratch)
			ops += int64(len(elems))
			if !seenHere[h] {
				seenHere[h] = true
				mine.Hashes = append(mine.Hashes, h)
				mine.Verts = append(mine.Verts, int32(v))
			}
		}
	}
	c.Advance(float64(ops) * secPerHashOp)

	// Gather tuples at rank 0; it completes the algorithm.
	gathered := c.Gather(0, mine)
	var subs []DenseSubgraph
	var st Stats
	if rank == 0 {
		shingleMembers := map[uint64][]int32{}
		for _, g := range gathered {
			t := g.(shingleTuples)
			for i, h := range t.Hashes {
				shingleMembers[h] = append(shingleMembers[h], t.Verts[i])
			}
		}
		// Tuples arrive in rank order with ascending vertex order within
		// each rank, so member lists are already sorted ascending —
		// identical to the serial pass-I output.
		st.LeftVertices = g.NLeft
		st.WorkOps = ops // rank-0 share; workers' ops are on their clocks
		subs, st = passTwoAndReport(g, p, shingleMembers, st)
	}

	// Broadcast the result so every rank returns the same families.
	var wire wireSubgraphs
	if rank == 0 {
		for _, d := range subs {
			wire.Sizes = append(wire.Sizes, int32(len(d.Members)))
			wire.Members = append(wire.Members, d.Members...)
			wire.MeanDegree = append(wire.MeanDegree, d.MeanDegree)
			wire.Density = append(wire.Density, d.Density)
		}
	}
	wire = c.Bcast(0, wire).(wireSubgraphs)
	if rank != 0 {
		off := 0
		for i, sz := range wire.Sizes {
			subs = append(subs, DenseSubgraph{
				Members:    append([]int32(nil), wire.Members[off:off+int(sz)]...),
				MeanDegree: wire.MeanDegree[i],
				Density:    wire.Density[i],
			})
			off += int(sz)
		}
	}
	return subs, st
}

// passTwoAndReport performs pass II, the union–find component
// enumeration, the disjointness vote, and the τ/size filtering — shared
// verbatim with the serial path via refactoring of Detect.
func passTwoAndReport(g *bipartite.Graph, p Params, shingleMembers map[uint64][]int32, st Stats) ([]DenseSubgraph, Stats) {
	hashes := make([]uint64, 0, len(shingleMembers))
	for h := range shingleMembers {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	st.ShinglesPass1 = len(hashes)
	subs, st2 := reportFromShingles(g, p, hashes, shingleMembers, st)
	return subs, st2
}
