// Package shingle implements the two-pass Shingle dense-subgraph
// detection algorithm of Gibson, Kumar and Tomkins (VLDB 2005), adapted
// to the paper's protein-family setting.
//
// Pass I computes an (s1, c1)-shingle set for every left vertex of a
// bipartite graph using min-wise independent permutations: vertices whose
// out-link sets overlap substantially share first-level shingles with
// high probability. Pass II reverses direction and shingles the
// first-level shingles themselves ((s2, c2)), so that groups of
// first-level shingles with similar vertex memberships collapse together.
// Connected components of the second-level-shingle → first-level-shingle
// relation (tracked with union–find) are the candidate dense subgraphs.
//
// For the global-similarity reduction B_d a candidate (A, B) is reported
// as the family A∪B only when |A∩B| / |A∪B| ≥ τ (the paper's added
// post-test, since in B_d both sides represent the same sequences). For
// the domain reduction B_m the right-hand set B is the family directly.
package shingle

import (
	"fmt"
	"sort"

	"profam/internal/bipartite"
	"profam/internal/minhash"
	"profam/internal/unionfind"
)

// Params are the Shingle algorithm's knobs.
type Params struct {
	S1, C1 int     // pass I shingle size and count (paper default (5, 300))
	S2, C2 int     // pass II shingle size and count (default (5, 100))
	Tau    float64 // B_d post-test threshold (default 0.5)
	// MinSize drops dense subgraphs with fewer member sequences
	// (paper default 5; zero keeps everything of size >= 2).
	MinSize int
	Seed    int64
}

func (p Params) withDefaults() Params {
	if p.S1 == 0 {
		p.S1 = 5
	}
	if p.C1 == 0 {
		p.C1 = 300
	}
	if p.S2 == 0 {
		p.S2 = 5
	}
	if p.C2 == 0 {
		p.C2 = 100
	}
	if p.Tau == 0 {
		p.Tau = 0.5
	}
	if p.Seed == 0 {
		p.Seed = 20080315
	}
	if p.MinSize < 2 {
		p.MinSize = 2
	}
	return p
}

// DenseSubgraph is one detected family.
type DenseSubgraph struct {
	// Members are the original sequence IDs of the family (A∪B for B_d,
	// B for B_m), sorted ascending.
	Members []int32
	// MeanDegree and Density describe the induced similarity subgraph
	// (B_d only; zero for B_m): Density = MeanDegree / (|Members|-1),
	// the paper's observed-density measure.
	MeanDegree float64
	Density    float64
}

func (d DenseSubgraph) Size() int { return len(d.Members) }

func (d DenseSubgraph) String() string {
	return fmt.Sprintf("dense subgraph: %d members, mean degree %.1f, density %.0f%%",
		len(d.Members), d.MeanDegree, 100*d.Density)
}

// Stats accumulates work counters for one Detect call.
type Stats struct {
	LeftVertices  int
	ShinglesPass1 int // distinct first-level shingles
	ShinglesPass2 int // distinct second-level shingles
	Candidates    int // components before τ/size filtering
	Reported      int
	WorkOps       int64 // hash evaluations, the dominant cost
}

// Detect runs the two-pass algorithm on one bipartite graph and returns
// the dense subgraphs, largest first.
func Detect(g *bipartite.Graph, p Params) ([]DenseSubgraph, Stats) {
	p = p.withDefaults()
	var st Stats
	st.LeftVertices = g.NLeft
	if g.NLeft == 0 {
		return nil, st
	}

	fam1 := minhash.NewFamily(p.C1, p.Seed)

	// Pass I: shingle every left vertex's out-link set.
	shingleMembers := map[uint64][]int32{} // first-level shingle -> left vertices
	var scratch []uint64
	elems := make([]uint64, 0, 64)
	for v := 0; v < g.NLeft; v++ {
		adj := g.Adj[v]
		if len(adj) == 0 {
			continue
		}
		elems = elems[:0]
		for _, r := range adj {
			elems = append(elems, uint64(r))
		}
		seenHere := map[uint64]bool{}
		for _, pm := range fam1.Perms {
			scratch = pm.Shingle(elems, p.S1, scratch)
			h := minhash.HashTuple(scratch)
			st.WorkOps += int64(len(elems))
			if !seenHere[h] {
				seenHere[h] = true
				shingleMembers[h] = append(shingleMembers[h], int32(v))
			}
		}
	}

	// Index first-level shingles deterministically.
	hashes := make([]uint64, 0, len(shingleMembers))
	for h := range shingleMembers {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	st.ShinglesPass1 = len(hashes)
	return reportFromShingles(g, p, hashes, shingleMembers, st)
}

// reportFromShingles runs pass II and the reporting stage over the
// pass-I output: the sorted first-level shingle hashes and their member
// vertices. Shared by the serial and parallel detectors.
func reportFromShingles(g *bipartite.Graph, p Params, hashes []uint64, shingleMembers map[uint64][]int32, st Stats) ([]DenseSubgraph, Stats) {
	fam2 := minhash.NewFamily(p.C2, p.Seed+1)
	var scratch []uint64
	elems := make([]uint64, 0, 64)

	// Pass II: shingle each first-level shingle's vertex membership and
	// union first-level shingles sharing a second-level shingle.
	uf := unionfind.New(len(hashes))
	second := map[uint64]int{} // second-level shingle -> first first-level index seen
	for i, h := range hashes {
		members := shingleMembers[h]
		elems = elems[:0]
		for _, v := range members {
			elems = append(elems, uint64(v))
		}
		for _, pm := range fam2.Perms {
			scratch = pm.Shingle(elems, p.S2, scratch)
			h2 := minhash.HashTuple(scratch)
			st.WorkOps += int64(len(elems))
			if first, ok := second[h2]; ok {
				uf.Union(first, i)
			} else {
				second[h2] = i
			}
		}
	}
	st.ShinglesPass2 = len(second)

	// Collect components of first-level shingles; gather their vertices.
	compVerts := map[int]map[int32]bool{}
	for i, h := range hashes {
		r := uf.Find(i)
		vs := compVerts[r]
		if vs == nil {
			vs = map[int32]bool{}
			compVerts[r] = vs
		}
		for _, v := range shingleMembers[h] {
			vs[v] = true
		}
	}
	st.Candidates = len(compVerts)

	// A left vertex can surface in several components (its c1 shingles
	// may scatter); keep the output disjoint by assigning each vertex to
	// the component holding more of its shingles (ties to the smaller
	// root for determinism).
	votes := map[int32]map[int]int{}
	for i, h := range hashes {
		r := uf.Find(i)
		for _, v := range shingleMembers[h] {
			m := votes[v]
			if m == nil {
				m = map[int]int{}
				votes[v] = m
			}
			m[r]++
		}
	}
	assigned := map[int32]int{}
	for v, m := range votes {
		bestRoot, bestVotes := -1, -1
		for r, n := range m {
			if n > bestVotes || (n == bestVotes && r < bestRoot) {
				bestRoot, bestVotes = r, n
			}
		}
		assigned[v] = bestRoot
	}

	// Build candidate (A, B) per component from assigned vertices.
	compA := map[int][]int32{}
	for v, r := range assigned {
		compA[r] = append(compA[r], v)
	}
	roots := make([]int, 0, len(compA))
	for r := range compA {
		roots = append(roots, r)
	}
	// Deterministic order: larger A first, then smaller root.
	sort.Slice(roots, func(i, j int) bool {
		if len(compA[roots[i]]) != len(compA[roots[j]]) {
			return len(compA[roots[i]]) > len(compA[roots[j]])
		}
		return roots[i] < roots[j]
	})

	claimed := map[int32]bool{} // sequence IDs already reported
	var out []DenseSubgraph
	for _, r := range roots {
		A := compA[r]
		sort.Slice(A, func(i, j int) bool { return A[i] < A[j] })
		B := map[int32]bool{}
		for _, v := range A {
			for _, rv := range g.Adj[v] {
				B[rv] = true
			}
		}
		members := assemble(g, A, B, p, claimed)
		if len(members) < p.MinSize {
			continue
		}
		ds := DenseSubgraph{Members: members}
		if g.Kind == bipartite.Duplicate {
			ds.MeanDegree, ds.Density = induceDensity(g, members)
		}
		for _, id := range members {
			claimed[id] = true
		}
		out = append(out, ds)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Members[0] < out[j].Members[0]
	})
	st.Reported = len(out)
	return out, st
}

// assemble turns a candidate (A, B) into the family's sequence-ID list,
// applying the reduction-specific rule and skipping already-claimed
// sequences to keep outputs disjoint.
func assemble(g *bipartite.Graph, A []int32, B map[int32]bool, p Params, claimed map[int32]bool) []int32 {
	switch g.Kind {
	case bipartite.Duplicate:
		// A and B index the same sequence universe; require A ≈ B.
		union := map[int32]bool{}
		inter := 0
		for _, v := range A {
			union[v] = true
			if B[v] {
				inter++
			}
		}
		for v := range B {
			union[v] = true
		}
		if len(union) == 0 || float64(inter)/float64(len(union)) < p.Tau {
			return nil
		}
		out := make([]int32, 0, len(union))
		for v := range union {
			id := g.RightSeq[v] // LeftSeq == RightSeq for B_d
			if !claimed[id] {
				out = append(out, id)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	default: // Match: report B directly.
		out := make([]int32, 0, len(B))
		for v := range B {
			id := g.RightSeq[v]
			if !claimed[id] {
				out = append(out, id)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
}

// induceDensity computes the mean within-family degree and the paper's
// density measure (mean degree / (m-1)) over the similarity edges of a
// B_d graph.
func induceDensity(g *bipartite.Graph, members []int32) (meanDeg, density float64) {
	if len(members) < 2 {
		return 0, 0
	}
	// members hold original sequence IDs; map back to local indices.
	local := map[int32]bool{}
	idToLocal := map[int32]int32{}
	for li, id := range g.RightSeq {
		idToLocal[id] = int32(li)
	}
	for _, id := range members {
		if li, ok := idToLocal[id]; ok {
			local[li] = true
		}
	}
	var degSum int
	for li := range local {
		for _, nb := range g.Adj[li] {
			if nb != li && local[nb] { // ignore B_d self edges
				degSum++
			}
		}
	}
	meanDeg = float64(degSum) / float64(len(local))
	density = meanDeg / float64(len(members)-1)
	return meanDeg, density
}

// SizeHistogram buckets subgraph sizes into [lo, lo+width) bins and
// returns the sorted bucket lower bounds with their counts — the shape of
// the paper's Figure 5.
func SizeHistogram(subs []DenseSubgraph, width int) (bounds []int, counts []int) {
	if width <= 0 {
		width = 5
	}
	m := map[int]int{}
	for _, d := range subs {
		b := (d.Size() / width) * width
		m[b]++
	}
	for b := range m {
		bounds = append(bounds, b)
	}
	sort.Ints(bounds)
	counts = make([]int, len(bounds))
	for i, b := range bounds {
		counts[i] = m[b]
	}
	return bounds, counts
}
