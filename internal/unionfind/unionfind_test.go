package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	u := New(4)
	if u.Sets() != 4 || u.Len() != 4 {
		t.Fatalf("Sets=%d Len=%d", u.Sets(), u.Len())
	}
	for i := 0; i < 4; i++ {
		if u.Find(i) != i {
			t.Errorf("Find(%d) = %d", i, u.Find(i))
		}
	}
}

func TestUnionFind(t *testing.T) {
	u := New(6)
	if !u.Union(0, 1) {
		t.Error("first union returned false")
	}
	if u.Union(1, 0) {
		t.Error("repeated union returned true")
	}
	u.Union(2, 3)
	u.Union(0, 3)
	if !u.Same(1, 2) {
		t.Error("1 and 2 should be connected via 0-1, 2-3, 0-3")
	}
	if u.Same(0, 4) {
		t.Error("0 and 4 should be separate")
	}
	if u.Sets() != 3 { // {0,1,2,3}, {4}, {5}
		t.Errorf("Sets = %d, want 3", u.Sets())
	}
}

func TestComponents(t *testing.T) {
	u := New(5)
	u.Union(0, 2)
	u.Union(3, 4)
	comps := u.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	total := 0
	for _, m := range comps {
		total += len(m)
	}
	if total != 5 {
		t.Errorf("components cover %d elements, want 5", total)
	}
}

func TestComponentsMin(t *testing.T) {
	u := New(7)
	u.Union(1, 5)
	u.Union(5, 6)
	u.Union(2, 3)
	got := u.ComponentsMin(2)
	if len(got) != 2 {
		t.Fatalf("got %d components of size>=2, want 2", len(got))
	}
	// Ordered by smallest member: {1,5,6} before {2,3}.
	if got[0][0] != 1 || got[1][0] != 2 {
		t.Errorf("component order wrong: %v", got)
	}
	if len(u.ComponentsMin(4)) != 0 {
		t.Error("no component has 4 members")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	u := New(6)
	u.Union(0, 1)
	u.Union(2, 3)
	c := u.Clone()
	if c.Len() != 6 || c.Sets() != u.Sets() {
		t.Fatalf("clone shape: Len=%d Sets=%d want 6/%d", c.Len(), c.Sets(), u.Sets())
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if c.Same(i, j) != u.Same(i, j) {
				t.Fatalf("clone partition differs at (%d,%d)", i, j)
			}
		}
	}
	// Mutating the clone must not leak back into the original, and vice
	// versa.
	c.Union(0, 5)
	if u.Same(0, 5) {
		t.Error("clone union leaked into original")
	}
	u.Union(1, 3)
	if c.Same(1, 3) {
		t.Error("original union leaked into clone")
	}
}

func TestExtendAddsSingletons(t *testing.T) {
	u := New(3)
	u.Union(0, 2)
	u.Extend(6)
	if u.Len() != 6 {
		t.Fatalf("Len = %d, want 6", u.Len())
	}
	if u.Sets() != 5 { // {0,2}, {1}, {3}, {4}, {5}
		t.Fatalf("Sets = %d, want 5", u.Sets())
	}
	for i := 3; i < 6; i++ {
		if u.Find(i) != i {
			t.Errorf("new element %d not a singleton root", i)
		}
	}
	if !u.Same(0, 2) {
		t.Error("extend destroyed an existing set")
	}
	u.Extend(2) // shrinking request is a no-op
	if u.Len() != 6 {
		t.Errorf("Extend(2) changed Len to %d", u.Len())
	}
}

// Property: union–find agrees with a naive label-propagation clustering on
// random union sequences.
func TestAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		u := New(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for k := 0; k < 3*n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			merged := u.Union(a, b)
			if merged != (label[a] != label[b]) {
				return false
			}
			if label[a] != label[b] {
				relabel(label[a], label[b])
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if u.Same(i, j) != (label[i] == label[j]) {
					return false
				}
			}
		}
		// Set count must match distinct labels.
		distinct := map[int]bool{}
		for _, l := range label {
			distinct[l] = true
		}
		return u.Sets() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]int, n)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := New(n)
		for _, p := range pairs {
			u.Union(p[0], p[1])
		}
	}
}
