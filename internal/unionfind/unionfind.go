// Package unionfind implements the classic disjoint-set (union–find) data
// structure with union by rank and path compression, giving near-constant
// amortized Find and Union (Tarjan, JACM 1975).
//
// It backs two parts of the pipeline: the PaCE master's incremental
// clustering during connected-component detection, and the final
// connected-component enumeration of the Shingle algorithm.
package unionfind

// UF is a disjoint-set forest over the elements 0..n-1.
// The zero value is not usable; call New.
type UF struct {
	parent []int32
	rank   []int8
	sets   int
}

// New returns a union–find structure with n singleton sets.
func New(n int) *UF {
	u := &UF{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		sets:   n,
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Len returns the number of elements.
func (u *UF) Len() int { return len(u.parent) }

// Sets returns the current number of disjoint sets.
func (u *UF) Sets() int { return u.sets }

// Find returns the representative of x's set, compressing the path.
func (u *UF) Find(x int) int {
	root := int32(x)
	for u.parent[root] != root {
		root = u.parent[root]
	}
	// Path compression: point everything on the walk at the root.
	for int32(x) != root {
		next := u.parent[x]
		u.parent[x] = root
		x = int(next)
	}
	return int(root)
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false if they were already in the same set).
func (u *UF) Union(x, y int) bool {
	rx, ry := int32(u.Find(x)), int32(u.Find(y))
	if rx == ry {
		return false
	}
	switch {
	case u.rank[rx] < u.rank[ry]:
		rx, ry = ry, rx
	case u.rank[rx] == u.rank[ry]:
		u.rank[rx]++
	}
	u.parent[ry] = rx
	u.sets--
	return true
}

// Clone returns an independent deep copy of the structure. The copy is
// taken without path compression (no Find calls), so concurrent Clones
// of a quiescent UF are safe; mutations of the clone never touch the
// original. This is the snapshot primitive behind incremental epochs:
// each epoch merges new pairs into a clone of the committed state, so
// an aborted epoch leaves the published clustering untouched.
func (u *UF) Clone() *UF {
	c := &UF{
		parent: make([]int32, len(u.parent)),
		rank:   make([]int8, len(u.rank)),
		sets:   u.sets,
	}
	copy(c.parent, u.parent)
	copy(c.rank, u.rank)
	return c
}

// Extend grows the structure to n elements, adding n-Len() fresh
// singleton sets at the end. Extending to n ≤ Len() is a no-op. New
// epochs use this to widen a cloned prior union–find over the sequences
// that arrived since it was committed.
func (u *UF) Extend(n int) {
	for i := len(u.parent); i < n; i++ {
		u.parent = append(u.parent, int32(i))
		u.rank = append(u.rank, 0)
		u.sets++
	}
}

// Same reports whether x and y are in the same set.
func (u *UF) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// Components enumerates the sets as a map from representative to the
// sorted-by-insertion members of that set.
func (u *UF) Components() map[int][]int {
	out := make(map[int][]int)
	for i := range u.parent {
		r := u.Find(i)
		out[r] = append(out[r], i)
	}
	return out
}

// ComponentsMin enumerates only the sets with at least minSize members,
// as slices of member element IDs. Order of components follows the lowest
// member ID in each.
func (u *UF) ComponentsMin(minSize int) [][]int {
	byRoot := u.Components()
	// Deterministic order: by smallest member.
	var roots []int
	for r, members := range byRoot {
		if len(members) >= minSize {
			roots = append(roots, r)
		}
	}
	// members lists are in increasing order already (loop order), so the
	// first element is the minimum; sort roots by it.
	for i := 1; i < len(roots); i++ {
		for j := i; j > 0 && byRoot[roots[j]][0] < byRoot[roots[j-1]][0]; j-- {
			roots[j], roots[j-1] = roots[j-1], roots[j]
		}
	}
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}
