package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PhaseStat is the cross-rank summary of one phase (all CatPhase spans
// sharing a name): the straggler view of the paper's Table II.
type PhaseStat struct {
	Name  string  `json:"name"`
	Count int     `json:"count"`       // spans merged
	Ranks int     `json:"ranks"`       // distinct ranks that recorded the phase
	Max   float64 `json:"max_seconds"` // largest per-rank total — the phase's critical path
	Mean  float64 `json:"mean_seconds"`
	Sum   float64 `json:"sum_seconds"` // rank-seconds
	// Imbalance is Max/Mean over participating ranks: 1.0 means a
	// perfectly even spread, 2.0 means the slowest rank carried twice the
	// average load.
	Imbalance float64 `json:"imbalance"`
	// Gini is the Gini coefficient of per-rank totals (0 = perfectly
	// even, →1 = one rank did everything).
	Gini float64 `json:"gini"`
}

// RankBreakdown decomposes one rank's makespan into busy (inside a phase
// span), comm (blocked in recv) and idle (neither) time. TaskWait is the
// subset of a worker's life spent waiting for the master's next task
// batch ("task-wait" spans) — the overlap win of the prefetching
// protocol shows up as this column collapsing. Task-wait spans enclose
// the recv they block on, so they are kept out of Comm rather than
// double-counted.
type RankBreakdown struct {
	Rank     int     `json:"rank"`
	Busy     float64 `json:"busy_seconds"`
	Comm     float64 `json:"comm_seconds"`
	TaskWait float64 `json:"task_wait_seconds"`
	Idle     float64 `json:"idle_seconds"`
	Events   int     `json:"events"`
	Dropped  int64   `json:"dropped"`
}

// Analysis is the derived view of a Timeline: the per-rank breakdown,
// per-phase straggler statistics and the critical-path attribution that
// mirrors the paper's Table II (sum of slowest-rank times over the
// top-level phases).
type Analysis struct {
	NumRanks int     `json:"num_ranks"`
	Events   int     `json:"events"`
	Dropped  int64   `json:"dropped"`
	Makespan float64 `json:"makespan_seconds"`
	// CriticalPath sums Max over the top-level phases (names without a
	// "/"): the serial chain of slowest ranks, the quantity the paper's
	// Table II reports per phase.
	CriticalPath float64         `json:"critical_path_seconds"`
	Phases       []PhaseStat     `json:"phases"`
	Ranks        []RankBreakdown `json:"ranks"`
}

// Analyze derives the straggler report from a merged timeline. Busy time
// is the measure of the interval *union* of a rank's phase spans (nested
// spans such as rr and rr/index overlap; union avoids double-counting);
// comm time is the summed duration of recv-wait spans; idle is the
// remainder of the job makespan.
func Analyze(tl *Timeline) *Analysis {
	a := &Analysis{}
	if tl == nil {
		return a
	}
	a.NumRanks = tl.NumRanks
	a.Dropped = tl.Dropped
	a.Events = tl.NumEvents()

	var t0, t1 float64
	seen := false
	type acc struct {
		count   int
		sum     float64
		perRank map[int]float64
	}
	phases := map[string]*acc{}
	for _, rt := range tl.Ranks {
		var phaseIv []interval
		var comm, taskWait float64
		for _, e := range rt.Events {
			if !seen || e.Ts < t0 {
				t0 = e.Ts
			}
			if !seen || e.End() > t1 {
				t1 = e.End()
			}
			seen = true
			if e.Kind != KindSpan {
				continue
			}
			switch e.Cat {
			case CatPhase:
				phaseIv = append(phaseIv, interval{e.Ts, e.End()})
				p := phases[e.Name]
				if p == nil {
					p = &acc{perRank: map[int]float64{}}
					phases[e.Name] = p
				}
				p.count++
				p.sum += e.Dur
				p.perRank[rt.Rank] += e.Dur
			case CatComm:
				if e.Name == "task-wait" {
					taskWait += e.Dur
				} else {
					comm += e.Dur
				}
			}
		}
		a.Ranks = append(a.Ranks, RankBreakdown{
			Rank:     rt.Rank,
			Busy:     unionMeasure(phaseIv),
			Comm:     comm,
			TaskWait: taskWait,
			Events:   len(rt.Events),
			Dropped:  rt.Dropped,
		})
	}
	if seen {
		a.Makespan = t1 - t0
	}
	for i := range a.Ranks {
		idle := a.Makespan - a.Ranks[i].Busy
		if idle < 0 {
			idle = 0
		}
		a.Ranks[i].Idle = idle
	}

	for name, p := range phases {
		ps := PhaseStat{Name: name, Count: p.count, Ranks: len(p.perRank), Sum: p.sum}
		totals := make([]float64, 0, len(p.perRank))
		for _, d := range p.perRank {
			totals = append(totals, d)
			if d > ps.Max {
				ps.Max = d
			}
		}
		if len(totals) > 0 {
			ps.Mean = p.sum / float64(len(totals))
		}
		if ps.Mean > 0 {
			ps.Imbalance = ps.Max / ps.Mean
		}
		ps.Gini = gini(totals)
		a.Phases = append(a.Phases, ps)
		if !strings.Contains(name, "/") {
			a.CriticalPath += ps.Max
		}
	}
	sort.Slice(a.Phases, func(i, j int) bool { return a.Phases[i].Name < a.Phases[j].Name })
	return a
}

type interval struct{ lo, hi float64 }

// unionMeasure returns the total length covered by the intervals,
// counting overlaps once.
func unionMeasure(ivs []interval) float64 {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	total := 0.0
	cur := ivs[0]
	for _, iv := range ivs[1:] {
		if iv.lo > cur.hi {
			total += cur.hi - cur.lo
			cur = iv
			continue
		}
		if iv.hi > cur.hi {
			cur.hi = iv.hi
		}
	}
	total += cur.hi - cur.lo
	return total
}

// gini computes the Gini coefficient of the values: the mean absolute
// difference between all pairs, normalized by twice the mean.
func gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	var sum, diff float64
	for _, x := range xs {
		sum += x
	}
	if sum == 0 {
		return 0
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := xs[i] - xs[j]
			if d < 0 {
				d = -d
			}
			diff += d
		}
	}
	mean := sum / float64(n)
	return diff / (2 * float64(n) * float64(n) * mean)
}

// PhaseMax returns the analyzed Max (critical-path seconds) for a phase
// name, 0 if absent.
func (a *Analysis) PhaseMax(name string) float64 {
	if a == nil {
		return 0
	}
	for _, p := range a.Phases {
		if p.Name == name {
			return p.Max
		}
	}
	return 0
}

// WriteText renders the straggler report: job shape, per-phase
// max/mean/imbalance/Gini table (Table II analogue) and per-rank
// busy/comm/idle breakdown (Fig. 4 analogue).
func (a *Analysis) WriteText(w io.Writer) error {
	if a == nil {
		return nil
	}
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("== trace: %d ranks, %d events (%d dropped), makespan %.4fs, critical path %.4fs ==\n",
		a.NumRanks, a.Events, a.Dropped, a.Makespan, a.CriticalPath); err != nil {
		return err
	}
	if err := p("== phase stragglers (s) ==\n%-20s %8s %10s %10s %10s %6s %6s\n",
		"phase", "ranks", "max", "mean", "sum", "imbal", "gini"); err != nil {
		return err
	}
	for _, ps := range a.Phases {
		if err := p("%-20s %8d %10.4f %10.4f %10.4f %6.2f %6.3f\n",
			ps.Name, ps.Ranks, ps.Max, ps.Mean, ps.Sum, ps.Imbalance, ps.Gini); err != nil {
			return err
		}
	}
	if err := p("== per-rank breakdown (s) ==\n%-6s %10s %10s %10s %10s %8s %8s\n",
		"rank", "busy", "comm", "taskwait", "idle", "events", "dropped"); err != nil {
		return err
	}
	for _, rb := range a.Ranks {
		if err := p("%-6d %10.4f %10.4f %10.4f %10.4f %8d %8d\n",
			rb.Rank, rb.Busy, rb.Comm, rb.TaskWait, rb.Idle, rb.Events, rb.Dropped); err != nil {
			return err
		}
	}
	return nil
}
