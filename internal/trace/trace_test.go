package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"

	"profam/internal/metrics"
)

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	tr.Instant("cat", "x", "", 0, "", 0)
	tr.Span("cat", "x", 0, 1, "", 0, "", 0)
	tr.Count("cat", "x", 7)
	if got := tr.Now(); got != 0 {
		t.Fatalf("nil Now = %v", got)
	}
	if snap := tr.Snapshot(); len(snap.Events) != 0 || snap.Dropped != 0 {
		t.Fatalf("nil Snapshot = %+v", snap)
	}
	if New(3, 0, nil, nil) != nil {
		t.Fatal("capacity 0 should return the nil (disabled) tracer")
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	reg := metrics.New(0, nil)
	dropped := reg.Counter("trace_dropped")
	now := 0.0
	tr := New(2, 4, func() float64 { now += 1; return now }, dropped)
	for i := 0; i < 10; i++ {
		tr.Instant(CatMaster, "ev", "i", int64(i), "", 0)
	}
	snap := tr.Snapshot()
	if snap.Rank != 2 {
		t.Fatalf("rank = %d", snap.Rank)
	}
	if len(snap.Events) != 4 {
		t.Fatalf("len(events) = %d, want 4", len(snap.Events))
	}
	if snap.Dropped != 6 || dropped.Value() != 6 {
		t.Fatalf("dropped = %d (counter %d), want 6", snap.Dropped, dropped.Value())
	}
	// Oldest-first order: the four survivors are events 6..9.
	for i, e := range snap.Events {
		if e.V1 != int64(6+i) {
			t.Fatalf("event %d: V1 = %d, want %d", i, e.V1, 6+i)
		}
		if e.Rank != 2 {
			t.Fatalf("event %d: rank = %d", i, e.Rank)
		}
	}
}

func TestSnapshotBeforeWrap(t *testing.T) {
	tr := New(0, 8, nil, nil)
	tr.Span(CatPhase, "rr", 1, 3, "", 0, "", 0)
	tr.Count(CatMaster, "queue", 12)
	snap := tr.Snapshot()
	if len(snap.Events) != 2 || snap.Dropped != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Events[0].Kind != KindSpan || snap.Events[0].Dur != 2 {
		t.Fatalf("span event = %+v", snap.Events[0])
	}
	if snap.Events[1].Kind != KindCounter || snap.Events[1].V1 != 12 {
		t.Fatalf("counter event = %+v", snap.Events[1])
	}
}

func TestMergeAndCanonical(t *testing.T) {
	mk := func(rank int) RankTrace {
		tr := New(rank, 16, nil, nil)
		tr.Span(CatPhase, "rr", float64(rank), float64(rank)+2, "", 0, "", 0)
		tr.Span(CatComm, "recv", 0.5, 1.5, "from", int64(1-rank), "bytes", 99)
		tr.Instant(CatMaster, "dispatch", "pairs", 64, "to", int64(rank))
		return tr.Snapshot()
	}
	// Merge must order by rank regardless of input order.
	tl := Merge([]RankTrace{mk(1), mk(0)})
	if tl.NumRanks != 2 || tl.Ranks[0].Rank != 0 || tl.Ranks[1].Rank != 1 {
		t.Fatalf("merge order wrong: %+v", tl.Ranks)
	}
	if tl.NumEvents() != 6 {
		t.Fatalf("NumEvents = %d", tl.NumEvents())
	}

	c := tl.Canonical()
	for _, rt := range c.Ranks {
		for _, e := range rt.Events {
			if e.Ts != 0 || e.Dur != 0 {
				t.Fatalf("canonical kept clock fields: %+v", e)
			}
			if e.Cat == CatComm && (e.V1 != 0 || e.V2 != 0) {
				t.Fatalf("canonical kept comm values: %+v", e)
			}
			if e.Cat == CatMaster && e.V1 != 64 {
				t.Fatalf("canonical dropped protocol values: %+v", e)
			}
		}
	}
	// Canonical must not mutate the original.
	if tl.Ranks[0].Events[0].Dur != 2 {
		t.Fatal("Canonical mutated the source timeline")
	}
	b1, _ := json.Marshal(c)
	b2, _ := json.Marshal(tl.Canonical())
	if !bytes.Equal(b1, b2) {
		t.Fatal("canonical JSON not stable")
	}
}

func TestChromeJSONIsValid(t *testing.T) {
	tr := New(0, 16, nil, nil)
	tr.Span(CatPhase, "rr", 0, 2, "", 0, "", 0)
	tr.Span(CatComm, "recv", 0.25, 0.5, "from", 1, "bytes", 1024)
	tr.Instant(CatPipeline, "phase:ccd", "", 0, "", 0)
	tr.Count(CatMaster, "ccd/queue", 17)
	tl := Merge([]RankTrace{tr.Snapshot()})
	var buf bytes.Buffer
	if err := WriteChromeJSON(&buf, tl); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 4 metadata (process name + 3 lane names) + 4 events.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("traceEvents = %d, want 8", len(doc.TraceEvents))
	}
	kinds := map[string]int{}
	for _, e := range doc.TraceEvents {
		kinds[e.Ph]++
		if e.Ph == "X" && e.Name == "rr" {
			if e.Ts != 0 || e.Dur != 2e6 {
				t.Fatalf("rr span ts/dur = %v/%v µs", e.Ts, e.Dur)
			}
			if e.Tid != tidPhases {
				t.Fatalf("rr span lane = %d", e.Tid)
			}
		}
		if e.Ph == "X" && e.Name == "recv" {
			if e.Tid != tidComm || e.Args["bytes"] != float64(1024) {
				t.Fatalf("recv span = %+v", e)
			}
		}
	}
	if kinds["M"] != 4 || kinds["X"] != 2 || kinds["i"] != 1 || kinds["C"] != 1 {
		t.Fatalf("event kinds = %v", kinds)
	}
}

func TestAnalyze(t *testing.T) {
	mk := func(rank int, rrDur float64) RankTrace {
		tr := New(rank, 32, nil, nil)
		tr.Span(CatPhase, "rr", 0, rrDur, "", 0, "", 0)
		tr.Span(CatPhase, "rr/index", 0, rrDur/2, "", 0, "", 0) // nested: must not double-count
		tr.Span(CatPhase, "ccd", rrDur, rrDur+1, "", 0, "", 0)
		tr.Span(CatComm, "recv", rrDur+1, rrDur+1.25, "from", 0, "bytes", 10)
		return tr.Snapshot()
	}
	a := Analyze(Merge([]RankTrace{mk(0, 2), mk(1, 4)}))
	if a.NumRanks != 2 {
		t.Fatalf("ranks = %d", a.NumRanks)
	}
	// Makespan spans t=0 to the end of rank 1's recv at 5.25.
	if math.Abs(a.Makespan-5.25) > 1e-9 {
		t.Fatalf("makespan = %v", a.Makespan)
	}
	// rr: per-rank totals {2, 4} → max 4, mean 3, imbalance 4/3, Gini 1/6.
	if got := a.PhaseMax("rr"); math.Abs(got-4) > 1e-9 {
		t.Fatalf("rr max = %v", got)
	}
	var rr PhaseStat
	for _, p := range a.Phases {
		if p.Name == "rr" {
			rr = p
		}
	}
	if math.Abs(rr.Mean-3) > 1e-9 || math.Abs(rr.Imbalance-4.0/3) > 1e-9 {
		t.Fatalf("rr stat = %+v", rr)
	}
	if math.Abs(rr.Gini-1.0/6) > 1e-9 {
		t.Fatalf("rr gini = %v", rr.Gini)
	}
	// Critical path = top-level phases only: rr max (4) + ccd max (1).
	if math.Abs(a.CriticalPath-5) > 1e-9 {
		t.Fatalf("critical path = %v", a.CriticalPath)
	}
	// Busy on rank 0: union of [0,2] ∪ [0,1] ∪ [2,3] = 3 (no double count).
	if math.Abs(a.Ranks[0].Busy-3) > 1e-9 {
		t.Fatalf("rank 0 busy = %v", a.Ranks[0].Busy)
	}
	if math.Abs(a.Ranks[0].Comm-0.25) > 1e-9 {
		t.Fatalf("rank 0 comm = %v", a.Ranks[0].Comm)
	}
	if math.Abs(a.Ranks[0].Idle-(5.25-3)) > 1e-9 {
		t.Fatalf("rank 0 idle = %v", a.Ranks[0].Idle)
	}
	var buf bytes.Buffer
	if err := a.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty straggler report")
	}
}

func TestLiveAndFailed(t *testing.T) {
	tr := New(0, 8, nil, nil)
	tr.Instant(CatMaster, "x", "", 0, "", 0)
	RegisterLive(tr)
	found := false
	for _, rt := range LiveSnapshots() {
		if rt.Rank == 0 && len(rt.Events) == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("live snapshot missing registered tracer")
	}
	UnregisterLive(tr)
	StashFailed([]RankTrace{tr.Snapshot()})
	got := TakeFailed()
	if len(got) != 1 || len(got[0].Events) != 1 {
		t.Fatalf("failed stash = %+v", got)
	}
	if len(TakeFailed()) != 0 {
		t.Fatal("TakeFailed did not drain")
	}
}

func TestNopLogger(t *testing.T) {
	l := NopLogger()
	l.Info("discarded", "k", 1)
	if l.Enabled(nil, 0) {
		t.Fatal("nop logger claims to be enabled")
	}
}

// TestTracerConcurrent is the -race hammer: many goroutines recording
// past the ring capacity while snapshots are taken concurrently.
func TestTracerConcurrent(t *testing.T) {
	reg := metrics.New(0, nil)
	tr := New(0, 128, nil, reg.Counter("trace_dropped"))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Instant(CatWorker, "ev", "g", int64(g), "i", int64(i))
				tr.Span(CatComm, "recv", 0, 1, "from", 1, "bytes", 64)
				tr.Count(CatMaster, "queue", int64(i))
				if i%100 == 0 {
					_ = tr.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := tr.Snapshot()
	if len(snap.Events) != 128 {
		t.Fatalf("len = %d, want full ring", len(snap.Events))
	}
	want := int64(8*500*3 - 128)
	if snap.Dropped != want {
		t.Fatalf("dropped = %d, want %d", snap.Dropped, want)
	}
}
