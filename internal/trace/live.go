package trace

import (
	"context"
	"log/slog"
	"sync"
)

// The live set mirrors metrics' live-registry mechanism: a running
// pipeline registers each rank's tracer so external observers (the CLI's
// progress ticker, the /metrics endpoint's flush path) can snapshot
// in-flight state, and a bounded graveyard keeps the final snapshots of
// failed runs so cmd/profam can still export a timeline when the
// pipeline errors partway.

var (
	liveMu  sync.Mutex
	live    = map[*Tracer]struct{}{}
	failed  []RankTrace
	maxDead = 64 // graveyard bound: one failed 32-rank job, with slack
)

// RegisterLive adds a tracer to the process-wide live set. Nil tracers
// are ignored.
func RegisterLive(t *Tracer) {
	if t == nil {
		return
	}
	liveMu.Lock()
	live[t] = struct{}{}
	liveMu.Unlock()
}

// UnregisterLive removes a tracer from the live set.
func UnregisterLive(t *Tracer) {
	if t == nil {
		return
	}
	liveMu.Lock()
	delete(live, t)
	liveMu.Unlock()
}

// LiveSnapshots snapshots every registered tracer.
func LiveSnapshots() []RankTrace {
	liveMu.Lock()
	ts := make([]*Tracer, 0, len(live))
	for t := range live {
		ts = append(ts, t)
	}
	liveMu.Unlock()
	out := make([]RankTrace, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.Snapshot())
	}
	return out
}

// StashFailed records the final per-rank traces of a failed run so they
// can still be exported. The graveyard is bounded: older entries are
// evicted first.
func StashFailed(rts []RankTrace) {
	liveMu.Lock()
	failed = append(failed, rts...)
	if len(failed) > maxDead {
		failed = append([]RankTrace(nil), failed[len(failed)-maxDead:]...)
	}
	liveMu.Unlock()
}

// TakeFailed drains and returns the failed-run graveyard.
func TakeFailed() []RankTrace {
	liveMu.Lock()
	out := failed
	failed = nil
	liveMu.Unlock()
	return out
}

// nopHandler is a slog.Handler that discards everything (slog.DiscardHandler
// arrives in go 1.24; the module targets 1.22).
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// NopLogger returns a logger that discards all records — the default
// sink wherever a *slog.Logger is optional.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// ClockAttr returns a slog attribute carrying the tracer-clock reading,
// so structured logs and trace events share a timebase (virtual seconds
// under the simulator).
func ClockAttr(clock Clock) slog.Attr {
	if clock == nil {
		return slog.Float64("t", 0)
	}
	return slog.Float64("t", clock())
}
