package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Thread lanes within each rank's process row in the Chrome trace view.
// Phase spans get lane 0 so the per-rank timeline reads top-down as the
// paper's phase schedule; comm events sit below it; protocol detail
// (rounds, dispatch, merges) below that.
const (
	tidPhases   = 0
	tidComm     = 1
	tidProtocol = 2
)

// WriteChromeJSON exports the timeline in Chrome trace-event format
// (the JSON object form, loadable in Perfetto and chrome://tracing).
// Each rank becomes one process (pid = rank); spans map to complete
// events ("X"), instants to thread-scoped instant events ("i") and
// counters to counter tracks ("C"). Timestamps are converted from the
// tracer's seconds to the format's microseconds. Output is
// deterministic: ranks ascending, events in emission order.
func WriteChromeJSON(w io.Writer, tl *Timeline) error {
	if tl == nil {
		tl = &Timeline{}
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}
	for _, rt := range tl.Ranks {
		emit(fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"rank %d"}}`, rt.Rank, rt.Rank))
		emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"phases"}}`, rt.Rank, tidPhases))
		emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"comm"}}`, rt.Rank, tidComm))
		emit(fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"protocol"}}`, rt.Rank, tidProtocol))
	}
	for _, rt := range tl.Ranks {
		for _, e := range rt.Events {
			emit(chromeEvent(e))
		}
	}
	bw.WriteString("\n]")
	if tl.Epoch > 0 {
		fmt.Fprintf(bw, ",\"otherData\":{\"epoch\":\"%d\"}", tl.Epoch)
	}
	bw.WriteString("}\n")
	return bw.Flush()
}

func chromeLane(cat string) int {
	switch cat {
	case CatPhase, CatPipeline:
		return tidPhases
	case CatComm:
		return tidComm
	default:
		return tidProtocol
	}
}

func chromeEvent(e Event) string {
	var b strings.Builder
	usec := func(s float64) string { return strconv.FormatFloat(s*1e6, 'f', 3, 64) }
	args := func() string {
		var a strings.Builder
		if e.K1 != "" {
			fmt.Fprintf(&a, "%q:%d", e.K1, e.V1)
		}
		if e.K2 != "" {
			if a.Len() > 0 {
				a.WriteByte(',')
			}
			fmt.Fprintf(&a, "%q:%d", e.K2, e.V2)
		}
		return a.String()
	}
	switch e.Kind {
	case KindSpan:
		fmt.Fprintf(&b, `{"ph":"X","name":%q,"cat":%q,"pid":%d,"tid":%d,"ts":%s,"dur":%s`,
			e.Name, e.Cat, e.Rank, chromeLane(e.Cat), usec(e.Ts), usec(e.Dur))
	case KindInstant:
		fmt.Fprintf(&b, `{"ph":"i","s":"t","name":%q,"cat":%q,"pid":%d,"tid":%d,"ts":%s`,
			e.Name, e.Cat, e.Rank, chromeLane(e.Cat), usec(e.Ts))
	case KindCounter:
		fmt.Fprintf(&b, `{"ph":"C","name":%q,"cat":%q,"pid":%d,"tid":%d,"ts":%s`,
			e.Name, e.Cat, e.Rank, chromeLane(e.Cat), usec(e.Ts))
	}
	if a := args(); a != "" {
		fmt.Fprintf(&b, `,"args":{%s}`, a)
	}
	b.WriteByte('}')
	return b.String()
}
