// Package trace is the pipeline's event-level tracing layer: a per-rank,
// bounded ring-buffer recorder of master–worker protocol events (round
// spans, batch dispatch/collect, merges applied, phase transitions) and
// message-level communication events (send, recv-wait, bytes, peer) from
// all three mpi transports.
//
// Each rank of a job owns one Tracer, created with the rank's clock
// (mpi.Comm.Time) — the same clock the metrics registry uses — so event
// timestamps are *virtual* seconds under the simtime transport and
// wall-clock seconds otherwise. The buffer is fixed-size: once full, the
// oldest event is overwritten and a drop is counted (optionally into a
// metrics counter, canonically named trace_dropped), so tracing can stay
// on for arbitrarily long jobs at bounded memory.
//
// At job end each rank takes a Snapshot; rank 0 gathers them and Merges
// them into a job-wide Timeline that exports as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing) and feeds the straggler
// analyzer in this package.
//
// Determinism contract: every event is emitted from rank-level code whose
// behaviour is independent of the intra-rank thread count, so under the
// simulator the per-rank event *sequence* is identical for every
// ThreadsPerRank. Timeline.Canonical strips the clock-derived fields
// (timestamps, durations) and the arrival-order-sensitive values of comm
// events, leaving a representation that is byte-identical across thread
// counts — the trace analogue of metrics.Report.Canonical.
//
// All Tracer methods are nil-safe: a nil *Tracer is the disabled state
// and every call on it is a cheap no-op, so call sites never guard.
package trace

import (
	"sort"
	"sync"

	"profam/internal/metrics"
)

// Clock returns the current time in seconds (virtual under simtime).
type Clock func() float64

// Kind classifies an event for export and analysis.
type Kind uint8

const (
	// KindSpan is a duration event (Chrome phase "X").
	KindSpan Kind = iota
	// KindInstant is a point event (Chrome phase "i").
	KindInstant
	// KindCounter is a sampled running value (Chrome phase "C").
	KindCounter
)

// Event is one trace record. K1/V1 and K2/V2 are two optional labeled
// integer arguments; fixed slots rather than a map keep recording
// allocation-free on the hot comm path.
type Event struct {
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Rank int32   `json:"rank"`
	Kind Kind    `json:"kind"`
	Cat  string  `json:"cat"`
	Name string  `json:"name"`
	K1   string  `json:"k1,omitempty"`
	V1   int64   `json:"v1,omitempty"`
	K2   string  `json:"k2,omitempty"`
	V2   int64   `json:"v2,omitempty"`
}

// End returns the event's end time (start plus duration for spans).
func (e Event) End() float64 { return e.Ts + e.Dur }

// Tracer is one rank's bounded event buffer. Construct with New; nil is
// the valid disabled tracer.
type Tracer struct {
	rank    int
	clock   Clock
	dropped *metrics.Counter

	mu    sync.Mutex
	buf   []Event
	next  int // next write slot
	n     int // events currently held (≤ len(buf))
	drops int64
}

// New returns a tracer for the given rank holding at most capacity
// events; once full, each new event overwrites the oldest and increments
// both the internal drop count and the optional dropped counter (pass the
// registry's trace_dropped handle; nil is fine). capacity ≤ 0 returns a
// nil tracer — the disabled state. A nil clock pins timestamps to 0.
func New(rank, capacity int, clock Clock, dropped *metrics.Counter) *Tracer {
	if capacity <= 0 {
		return nil
	}
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	return &Tracer{rank: rank, clock: clock, dropped: dropped, buf: make([]Event, 0, capacity)}
}

// Now reads the tracer's clock (0 for a nil tracer).
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// record appends one event, overwriting the oldest when full.
func (t *Tracer) record(ev Event) {
	ev.Rank = int32(t.rank)
	var dropped bool
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
		t.n++
		t.next = len(t.buf) % cap(t.buf)
	} else {
		t.buf[t.next] = ev
		t.next = (t.next + 1) % len(t.buf)
		t.drops++
		dropped = true
	}
	t.mu.Unlock()
	if dropped {
		t.dropped.Inc()
	}
}

// Instant records a point event at the current clock reading. Pass "" for
// an unused argument key.
func (t *Tracer) Instant(cat, name, k1 string, v1 int64, k2 string, v2 int64) {
	if t == nil {
		return
	}
	t.record(Event{Ts: t.clock(), Kind: KindInstant, Cat: cat, Name: name, K1: k1, V1: v1, K2: k2, V2: v2})
}

// Span records a completed interval [start, end] on the rank's clock.
func (t *Tracer) Span(cat, name string, start, end float64, k1 string, v1 int64, k2 string, v2 int64) {
	if t == nil {
		return
	}
	t.record(Event{Ts: start, Dur: end - start, Kind: KindSpan, Cat: cat, Name: name, K1: k1, V1: v1, K2: k2, V2: v2})
}

// Count records a sampled running value (rendered as a counter track in
// Perfetto).
func (t *Tracer) Count(cat, name string, v int64) {
	if t == nil {
		return
	}
	t.record(Event{Ts: t.clock(), Kind: KindCounter, Cat: cat, Name: name, K1: "value", V1: v})
}

// RankTrace is an immutable copy of one rank's buffer in emission order
// (oldest surviving event first), suitable for shipping over the mpi
// transports (gob-encodable) and merging at rank 0.
type RankTrace struct {
	Rank    int
	Dropped int64
	Events  []Event
}

// WireSize implements the mpi Sized convention so the simulator charges a
// realistic byte volume for trace gathers.
func (rt RankTrace) WireSize() int {
	n := 24
	for _, e := range rt.Events {
		n += 44 + len(e.Cat) + len(e.Name) + len(e.K1) + len(e.K2)
	}
	return n
}

// Snapshot copies the buffer. Safe to call concurrently with recording.
func (t *Tracer) Snapshot() RankTrace {
	if t == nil {
		return RankTrace{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ev := make([]Event, 0, t.n)
	if t.n == cap(t.buf) && len(t.buf) == cap(t.buf) {
		ev = append(ev, t.buf[t.next:]...)
		ev = append(ev, t.buf[:t.next]...)
	} else {
		ev = append(ev, t.buf...)
	}
	return RankTrace{Rank: t.rank, Dropped: t.drops, Events: ev}
}

// Timeline is the job-wide merge of every rank's trace, ranks in order.
type Timeline struct {
	NumRanks int
	Dropped  int64
	// Epoch tags service timelines with the committed epoch number the
	// events belong to (0 for one-shot CLI jobs). It rides along through
	// Chrome export as trace metadata.
	Epoch int
	Ranks []RankTrace
}

// Merge assembles per-rank snapshots into a Timeline, ordering by rank.
func Merge(rts []RankTrace) *Timeline {
	tl := &Timeline{NumRanks: len(rts), Ranks: append([]RankTrace(nil), rts...)}
	sort.Slice(tl.Ranks, func(i, j int) bool { return tl.Ranks[i].Rank < tl.Ranks[j].Rank })
	for _, rt := range tl.Ranks {
		tl.Dropped += rt.Dropped
	}
	return tl
}

// NumEvents returns the total event count over all ranks.
func (tl *Timeline) NumEvents() int {
	if tl == nil {
		return 0
	}
	n := 0
	for _, rt := range tl.Ranks {
		n += len(rt.Events)
	}
	return n
}

// Canonical returns a deep copy with every clock-derived field zeroed:
// timestamps and durations everywhere, plus the argument values of comm
// events (whose peer/byte attribution follows virtual arrival order
// inside collectives, which legitimately shifts with the per-thread-count
// compute charges). Event kinds, names, categories, per-rank order and
// the protocol-level argument values are all work-derived, so the
// canonical form is byte-identical across thread counts under the
// simulator. Tests compare Canonical() JSON bytes.
func (tl *Timeline) Canonical() *Timeline {
	if tl == nil {
		return nil
	}
	out := &Timeline{NumRanks: tl.NumRanks, Dropped: tl.Dropped, Epoch: tl.Epoch}
	for _, rt := range tl.Ranks {
		crt := RankTrace{Rank: rt.Rank, Dropped: rt.Dropped, Events: make([]Event, len(rt.Events))}
		for i, e := range rt.Events {
			e.Ts, e.Dur = 0, 0
			if e.Cat == CatComm {
				e.V1, e.V2 = 0, 0
			}
			crt.Events[i] = e
		}
		out.Ranks = append(out.Ranks, crt)
	}
	return out
}

// Event categories used across the pipeline. Analysis keys off CatPhase
// (busy intervals) and CatComm (blocked-in-recv intervals).
const (
	CatPhase    = "phase"    // phase spans mirrored from the metrics span tracer
	CatComm     = "comm"     // transport send/recv events
	CatMaster   = "master"   // master-side protocol events
	CatWorker   = "worker"   // worker-side protocol events
	CatPipeline = "pipeline" // pipeline-level transitions
)
