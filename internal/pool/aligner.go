package pool

import (
	"sync"

	"profam/internal/align"
)

// AlignerCache recycles align.Aligner instances across pooled
// goroutines. An Aligner owns six DP rows and a trace matrix that grow
// to the longest pair it has seen; recycling them through a sync.Pool
// means a burst of alignment chunks reuses warm buffers instead of
// reallocating per goroutine, while idle aligners stay reclaimable by
// the GC.
type AlignerCache struct {
	p sync.Pool
}

// NewAlignerCache returns a cache producing aligners with the given
// scoring scheme (align.DefaultScoring() if nil).
func NewAlignerCache(sc *align.Scoring) *AlignerCache {
	c := &AlignerCache{}
	c.p.New = func() any { return align.NewAligner(sc) }
	return c
}

// Get returns a ready aligner; pair with Put when the chunk is done.
func (c *AlignerCache) Get() *align.Aligner { return c.p.Get().(*align.Aligner) }

// Put returns an aligner to the cache for reuse.
func (c *AlignerCache) Put(al *align.Aligner) { c.p.Put(al) }
