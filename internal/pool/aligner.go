package pool

import (
	"sync"

	"profam/internal/align"
)

// AlignerCache recycles align.Aligner instances across pooled
// goroutines. An Aligner owns six DP rows and a trace matrix that grow
// to the longest pair it has seen; recycling them through a sync.Pool
// means a burst of alignment chunks reuses warm buffers instead of
// reallocating per goroutine, while idle aligners stay reclaimable by
// the GC.
type AlignerCache struct {
	p sync.Pool
}

// NewAlignerCache returns a cache producing aligners with the given
// scoring scheme (align.DefaultScoring() if nil) and the default
// (auto) kernel selection.
func NewAlignerCache(sc *align.Scoring) *AlignerCache {
	return NewAlignerCacheKernels(sc, align.KernelAuto)
}

// NewAlignerCacheKernels is NewAlignerCache with an explicit kernel
// mode: every aligner the cache produces carries it, so a worker that
// was configured -kernels=scalar never sees a word-parallel stage.
func NewAlignerCacheKernels(sc *align.Scoring, mode align.KernelMode) *AlignerCache {
	c := &AlignerCache{}
	c.p.New = func() any {
		al := align.NewAligner(sc)
		al.Kernels = mode
		return al
	}
	return c
}

// Get returns a ready aligner; pair with Put when the chunk is done.
func (c *AlignerCache) Get() *align.Aligner { return c.p.Get().(*align.Aligner) }

// Put returns an aligner to the cache for reuse.
func (c *AlignerCache) Put(al *align.Aligner) { c.p.Put(al) }
