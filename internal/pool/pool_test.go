package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllJobsOnce(t *testing.T) {
	for _, threads := range []int{0, 1, 2, 4, 16} {
		for _, n := range []int{0, 1, 3, 100} {
			hits := make([]int32, n)
			Run(threads, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("threads=%d n=%d: job %d ran %d times", threads, n, i, h)
				}
			}
		}
	}
}

func TestRunChunkedCoversRange(t *testing.T) {
	for _, threads := range []int{1, 2, 4} {
		for _, n := range []int{0, 1, 5, 97, 1000} {
			hits := make([]int32, n)
			RunChunked(threads, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("threads=%d n=%d: index %d covered %d times", threads, n, i, h)
				}
			}
		}
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if e := recover(); e != "boom" {
			t.Fatalf("want panic \"boom\", got %v", e)
		}
	}()
	Run(4, 32, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestCeilDiv(t *testing.T) {
	cases := []struct {
		work    int64
		threads int
		want    int64
	}{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {100, 1, 100}, {100, 0, 100}, {7, 2, 4},
	}
	for _, c := range cases {
		if got := CeilDiv(c.work, c.threads); got != c.want {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c.work, c.threads, got, c.want)
		}
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(3, 8); got != 3 {
		t.Errorf("explicit threads: got %d, want 3", got)
	}
	if got := Resolve(0, 1); got != DefaultThreads(1) {
		t.Errorf("auto threads: got %d, want %d", got, DefaultThreads(1))
	}
	if DefaultThreads(1<<20) != 1 {
		t.Error("DefaultThreads must never drop below 1")
	}
}

func TestAlignerCacheReuse(t *testing.T) {
	c := NewAlignerCache(nil)
	al := c.Get()
	a := []byte("ACDEFGHIKLMNPQRSTVWY")
	al.LocalScore(a, a)
	c.Put(al)
	got := c.Get()
	if got.Scoring() == nil {
		t.Fatal("cached aligner lost its scoring scheme")
	}
}

func TestProfileSetSharesAndRecycles(t *testing.T) {
	cache := NewProfileCache(nil)
	set := cache.NewSet()
	a := []byte("ACDEFGHIKLMNPQRSTVWY")
	p1 := set.Get(7, a)
	if p1.Len() != len(a) {
		t.Fatalf("profile length %d, want %d", p1.Len(), len(a))
	}
	if p2 := set.Get(7, a); p2 != p1 {
		t.Error("second Get for the same ID built a new profile")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if p := set.Get(7, a); p != p1 {
				t.Error("concurrent Get returned a different profile")
			}
			set.Get(9, []byte("WWWW"))
		}()
	}
	wg.Wait()
	set.Release()

	// A new set must rebuild (profiles are per-batch), but may reuse the
	// recycled backing buffers.
	set2 := cache.NewSet()
	if p := set2.Get(7, []byte("AAA")); p.Len() != 3 {
		t.Fatalf("recycled profile length %d, want 3", p.Len())
	}
	set2.Release()
}
