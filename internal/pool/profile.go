package pool

import (
	"sync"

	"profam/internal/align"
)

// ProfileCache recycles align.Profile instances the same way
// AlignerCache recycles aligners: a profile owns a bit-vector table and
// an int16 substitution table sized to the longest sequence it has
// profiled, so recycling keeps those buffers warm across batches while
// idle profiles stay reclaimable by the GC.
type ProfileCache struct {
	sc *align.Scoring
	p  sync.Pool
}

// NewProfileCache returns a cache building profiles under the given
// scoring scheme (align.DefaultScoring() if nil).
func NewProfileCache(sc *align.Scoring) *ProfileCache {
	c := &ProfileCache{sc: sc}
	c.p.New = func() any { return new(align.Profile) }
	return c
}

// NewSet opens a ProfileSet backed by this cache for one batch of
// pairs. Close the set with Release when the batch is done.
func (c *ProfileCache) NewSet() *ProfileSet {
	return &ProfileSet{cache: c, byID: make(map[int32]*align.Profile)}
}

// ProfileSet shares built profiles across the pairs of one batch: the
// word-parallel kernels consume a per-sequence query profile, and a
// batch aligns each distinct sequence against many partners, so
// building the profile once per sequence instead of once per pair
// removes the dominant setup cost from the kernel hot path. Get is safe
// for concurrent use by the goroutines aligning one batch.
type ProfileSet struct {
	cache *ProfileCache
	mu    sync.Mutex
	byID  map[int32]*align.Profile
}

// Get returns the profile of the sequence with the given ID, building
// it on first use. The profile is built eagerly in full (bit-vector and
// substitution tables both) under the set's lock, so concurrent kernel
// calls never race on a partially built profile.
func (s *ProfileSet) Get(id int32, res []byte) *align.Profile {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.byID[id]; ok {
		return p
	}
	p := s.cache.p.Get().(*align.Profile)
	p.Build(s.cache.sc, res)
	s.byID[id] = p
	return p
}

// Release returns every profile in the set to the backing cache. The
// set must not be used afterwards.
func (s *ProfileSet) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, p := range s.byID {
		s.cache.p.Put(p)
		delete(s.byID, id)
	}
}
