// Package pool provides the bounded intra-rank goroutine parallelism
// behind the hybrid rank×thread execution model: each mpi rank fans its
// embarrassingly-parallel work units (alignment batches, per-component
// bipartite/shingle jobs, index-bucket construction) out over at most
// ThreadsPerRank goroutines.
//
// Determinism contract: Run and RunChunked only tell the caller *which*
// index (or index range) to process; callers write results into
// pre-sized slices indexed by job position, so the outcome is identical
// for every thread count. Virtual time under the simtime transport is
// charged by the rank goroutine after the join as ceil(work/threads) —
// the model of perfect intra-rank speedup — keeping simulated curves
// reproducible across hosts.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultThreads returns the auto thread count for one rank of a
// p-rank job on this host: max(1, NumCPU/p). Ranks of an in-process job
// share the machine, so the CPUs are divided between them.
func DefaultThreads(ranks int) int {
	if ranks < 1 {
		ranks = 1
	}
	t := runtime.NumCPU() / ranks
	if t < 1 {
		t = 1
	}
	return t
}

// Resolve maps a ThreadsPerRank config value to an effective thread
// count: positive values are used as-is, zero (auto) becomes
// DefaultThreads(ranks).
func Resolve(threads, ranks int) int {
	if threads > 0 {
		return threads
	}
	return DefaultThreads(ranks)
}

// CeilDiv returns ceil(work/threads), the virtual cost of work units
// executed with perfect speedup on `threads` threads.
func CeilDiv(work int64, threads int) int64 {
	if threads <= 1 || work <= 0 {
		return work
	}
	return (work + int64(threads) - 1) / int64(threads)
}

// Observer is notified at the start of a pool run with the number of
// queued work items and the thread bound the run will use. It lets the
// metrics layer record pool queue depth without the pool depending on
// it; a nil Observer is ignored.
type Observer func(queued, threads int)

// Run executes job(0..n-1) on at most `threads` goroutines and waits for
// all of them. With threads <= 1 (or a single job) it runs in the caller
// goroutine. A panic in any job is re-raised in the caller after all
// goroutines have stopped, matching the serial behaviour the mpi
// harnesses expect.
func Run(threads, n int, job func(i int)) {
	RunObserved(threads, n, nil, job)
}

// RunObserved is Run with an Observer notified of the queue depth before
// any job starts.
func RunObserved(threads, n int, obs Observer, job func(i int)) {
	if n <= 0 {
		return
	}
	if obs != nil {
		obs(n, min(threads, n))
	}
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicked atomic.Value
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					panicked.CompareAndSwap(nil, panicValue{e})
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() != nil {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
	if e := panicked.Load(); e != nil {
		panic(e.(panicValue).v)
	}
}

// panicValue wraps a recovered value so nil-interface panics still store
// a non-nil marker in the atomic.Value.
type panicValue struct{ v any }

// RunChunked splits [0, n) into contiguous chunks (a few per thread, for
// load balance without per-item scheduling overhead) and runs
// job(lo, hi) for each chunk on the pool. Chunk boundaries depend only
// on n and threads, never on timing.
func RunChunked(threads, n int, job func(lo, hi int)) {
	RunChunkedObserved(threads, n, nil, job)
}

// RunChunkedObserved is RunChunked with an Observer notified of the
// queue depth — the n work *items*, not the chunk count — before any
// chunk starts.
func RunChunkedObserved(threads, n int, obs Observer, job func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if obs != nil {
		obs(n, min(threads, n))
	}
	if threads <= 1 {
		job(0, n)
		return
	}
	chunks := threads * 4
	if chunks > n {
		chunks = n
	}
	Run(threads, chunks, func(ci int) {
		lo := ci * n / chunks
		hi := (ci + 1) * n / chunks
		if lo < hi {
			job(lo, hi)
		}
	})
}
