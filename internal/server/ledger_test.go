package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"profam"
	"profam/internal/ledger"
	"profam/internal/seq"
)

// TestLedgerMatchesColdRun is the provenance replay contract: every
// committed epoch's ledger record carries a families digest that a cold
// profam run over the recorded union corpus reproduces exactly, across
// rank and thread counts. This is what makes the ledger audit-grade —
// the digests are claims anyone can re-verify offline.
func TestLedgerMatchesColdRun(t *testing.T) {
	set := testCorpus(t, 63)
	names := make([]string, set.Len())
	seqs := make([]string, set.Len())
	for id := 0; id < set.Len(); id++ {
		names[id], seqs[id] = set.Get(id).Name, string(set.Get(id).Res)
	}
	const waves = 3
	per := (set.Len() + waves - 1) / waves

	for _, p := range []int{1, 2} {
		for _, threads := range []int{1, 4} {
			t.Run(fmt.Sprintf("p%d_t%d", p, threads), func(t *testing.T) {
				pcfg := profam.Config{ThreadsPerRank: threads}
				s := New(Config{
					Pipeline:  pcfg,
					Ranks:     p,
					BatchWait: 5 * time.Millisecond,
				})
				defer func() {
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					defer cancel()
					_ = s.Shutdown(ctx)
				}()

				var ends []int
				for from := 0; from < set.Len(); from += per {
					end := min(from+per, set.Len())
					if _, err := s.Submit(context.Background(), names[from:end], seqs[from:end]); err != nil {
						t.Fatalf("wave [%d,%d): %v", from, end, err)
					}
					ends = append(ends, end)
				}

				recs := s.Ledger().Records()
				if len(recs) != len(ends) {
					t.Fatalf("ledger has %d records for %d waves", len(recs), len(ends))
				}
				for i, rec := range recs {
					if rec.Status != ledger.StatusCommitted {
						t.Fatalf("record %d status %q", i, rec.Status)
					}
					if rec.Epoch != i+1 || rec.CorpusSize != ends[i] {
						t.Errorf("record %d: epoch=%d corpus=%d, want %d/%d", i, rec.Epoch, rec.CorpusSize, i+1, ends[i])
					}
					if rec.Fingerprint != pcfg.Fingerprint() {
						t.Errorf("record %d fingerprint %q != config %q", i, rec.Fingerprint, pcfg.Fingerprint())
					}

					// Cold replay over the recorded prefix corpus.
					end := ends[i]
					cold, err := profam.RunParallel(p, names[:end], seqs[:end], pcfg)
					if err != nil {
						t.Fatalf("cold run over %d seqs: %v", end, err)
					}
					coldSet := seq.NewSet()
					for id := 0; id < end; id++ {
						coldSet.MustAdd(names[id], seqs[id])
					}
					coldDigest, err := ledger.FamiliesDigest(coldSet, cold)
					if err != nil {
						t.Fatal(err)
					}
					if rec.FamiliesDigest != coldDigest {
						t.Errorf("epoch %d families digest %s != cold %s", rec.Epoch, rec.FamiliesDigest, coldDigest)
					}
					if rec.InputDigest != ledger.NamesDigest(names[:end]) {
						t.Errorf("epoch %d input digest mismatch", rec.Epoch)
					}
				}
			})
		}
	}
}

// TestEpochEndpointsAndTraces covers the serving side of the tentpole:
// /v1/epochs lists every record, /v1/epochs/{n} fetches one, and
// /debug/epochs/{n}/trace returns Chrome JSON tagged with the epoch.
func TestEpochEndpointsAndTraces(t *testing.T) {
	set := testCorpus(t, 44)
	traceDir := t.TempDir()
	s, ts := newTestServer(t, Config{
		BatchWait:     10 * time.Millisecond,
		TraceCapacity: 1 << 14,
		TraceHistory:  2,
		TraceDir:      traceDir,
	})

	third := set.Len() / 3
	for _, wave := range [][2]int{{0, third}, {third, 2 * third}, {2 * third, set.Len()}} {
		if code, out := post(t, ts.URL+"/v1/sequences", "application/x-fasta", fastaBody(set, wave[0], wave[1])); code != http.StatusOK {
			t.Fatalf("ingest %v = %d (%v)", wave, code, out)
		}
	}

	code, body := get(t, ts.URL+"/v1/epochs")
	if code != http.StatusOK {
		t.Fatalf("/v1/epochs = %d", code)
	}
	var list struct {
		Count  int             `json:"count"`
		Epochs []ledger.Record `json:"epochs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 3 || len(list.Epochs) != 3 {
		t.Fatalf("epochs count = %d (%d records), want 3", list.Count, len(list.Epochs))
	}
	for i, rec := range list.Epochs {
		if rec.Status != ledger.StatusCommitted || rec.FamiliesDigest == "" || rec.InputDigest == "" {
			t.Errorf("record %d incomplete: %+v", i, rec)
		}
		if len(rec.PhaseSeconds) == 0 {
			t.Errorf("record %d has no phase timings", i)
		}
	}

	code, body = get(t, ts.URL+"/v1/epochs/2")
	if code != http.StatusOK {
		t.Fatalf("/v1/epochs/2 = %d", code)
	}
	var rec ledger.Record
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 2 {
		t.Errorf("fetched epoch %d, want 2", rec.Epoch)
	}
	if code, _ := get(t, ts.URL+"/v1/epochs/99"); code != http.StatusNotFound {
		t.Errorf("/v1/epochs/99 = %d, want 404", code)
	}

	// TraceHistory=2: epoch 1 evicted, epochs 2 and 3 retained.
	if code, _ := get(t, ts.URL+"/debug/epochs/1/trace"); code != http.StatusNotFound {
		t.Errorf("evicted epoch trace = %d, want 404", code)
	}
	for _, n := range []int{2, 3} {
		code, body := get(t, ts.URL+fmt.Sprintf("/debug/epochs/%d/trace", n))
		if code != http.StatusOK {
			t.Fatalf("/debug/epochs/%d/trace = %d", n, code)
		}
		if !bytes.Contains(body, []byte("traceEvents")) || !bytes.Contains(body, []byte("phase:start")) {
			t.Errorf("epoch %d trace is not a timeline", n)
		}
		if !bytes.Contains(body, []byte(fmt.Sprintf(`"otherData":{"epoch":"%d"}`, n))) {
			t.Errorf("epoch %d trace missing epoch metadata", n)
		}
		var chrome struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(body, &chrome); err != nil {
			t.Fatalf("epoch %d trace is not valid JSON: %v", n, err)
		}
		if len(chrome.TraceEvents) == 0 {
			t.Errorf("epoch %d trace has no events", n)
		}
	}
	if got := s.TracedEpochs(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("TracedEpochs = %v, want [2 3]", got)
	}

	// -trace-dir persistence: all three epochs on disk, even the evicted one.
	for n := 1; n <= 3; n++ {
		path := filepath.Join(traceDir, fmt.Sprintf("epoch_%04d.trace.json", n))
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("epoch %d trace file: %v", n, err)
		}
		if !bytes.Contains(raw, []byte("traceEvents")) {
			t.Errorf("epoch %d trace file is not Chrome JSON", n)
		}
	}

	// The enriched status payload.
	_, body = get(t, ts.URL+"/v1/status")
	var st struct {
		Epoch            int     `json:"epoch"`
		PendingBatch     int     `json:"pending_batch"`
		UptimeSeconds    float64 `json:"uptime_seconds"`
		PairBackend      string  `json:"pair_backend"`
		LastEpochSeconds float64 `json:"last_epoch_seconds"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 3 || st.UptimeSeconds <= 0 || st.PairBackend != "gst" || st.LastEpochSeconds <= 0 {
		t.Errorf("status incomplete: %+v", st)
	}

	// Telemetry middleware: per-route series visible on /metrics.
	_, body = get(t, ts.URL+"/metrics")
	for _, series := range []string{
		"server_http_latency_us", "server_http_requests",
		"server_queue_wait_us", "runtime_goroutines", "runtime_heap_inuse_bytes",
	} {
		if !bytes.Contains(body, []byte(series)) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}

// TestLedgerRecordsAbortedEpoch pins the failure-path satellite: a
// forced shutdown's aborted epoch still produces a ledger record and an
// outcome-labeled ingest latency observation.
func TestLedgerRecordsAbortedEpoch(t *testing.T) {
	set := testCorpus(t, 91)
	s := New(Config{BatchWait: time.Hour, BatchSize: 1 << 20})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), setNames(set), setSeqs(set))
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.subs) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("forced shutdown err = %v", err)
	}
	if err := <-done; err == nil {
		t.Fatal("aborted submission reported success")
	}

	recs := s.Ledger().Records()
	if len(recs) != 1 {
		t.Fatalf("ledger has %d records after abort, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Status != ledger.StatusAborted || rec.Epoch != 1 || rec.Error == "" {
		t.Errorf("aborted record = %+v", rec)
	}
	snap := s.reg.Snapshot()
	if _, ok := snap.Histograms["server_ingest_to_publish_us{outcome=aborted}"]; !ok {
		names := make([]string, 0, len(snap.Histograms))
		for name := range snap.Histograms {
			names = append(names, name)
		}
		t.Errorf("no outcome-labeled latency for aborted epoch; histograms: %v", names)
	}
}

func setNames(set *seq.Set) []string {
	names := make([]string, set.Len())
	for id := range names {
		names[id] = set.Get(id).Name
	}
	return names
}

func setSeqs(set *seq.Set) []string {
	seqs := make([]string, set.Len())
	for id := range seqs {
		seqs[id] = string(set.Get(id).Res)
	}
	return seqs
}
