package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"profam"
	"profam/internal/ledger"
	"profam/internal/metrics"
	"profam/internal/report"
	"profam/internal/seq"
	"profam/internal/trace"
)

// httpError carries an HTTP status with its message.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// Handler returns the service's HTTP API, every route wrapped in the
// telemetry middleware (per-route request counters and latency
// histograms):
//
//	POST /v1/sequences              ingest (JSON or FASTA body)
//	GET  /v1/families               family list (?format=text for the canonical listing)
//	GET  /v1/families/{id}          one family
//	GET  /v1/sequences/{id}/family  family membership by sequence name or ID
//	GET  /v1/status                 service state
//	GET  /v1/epochs                 epoch provenance ledger records
//	GET  /v1/epochs/{n}             one epoch's provenance record
//	GET  /debug/epochs/{n}/trace    epoch timeline as Chrome trace JSON
//	GET  /healthz                   liveness
//	GET  /readyz                    readiness (503 once shutdown begins)
//	GET  /metrics                   Prometheus text exposition
func (s *Server) Handler() http.Handler {
	return s.handler(true)
}

// BareHandler is Handler without the telemetry middleware. It exists
// for the benchjson observability-overhead benchmark, which compares
// the instrumented and bare handler paths to pin
// service_obs_overhead_ratio.
func (s *Server) BareHandler() http.Handler {
	return s.handler(false)
}

func (s *Server) handler(instrumented bool) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		if instrumented {
			h = s.instrument(route, h)
		}
		mux.HandleFunc(pattern, h)
	}
	handle("POST /v1/sequences", "ingest", s.handleIngest)
	handle("GET /v1/families", "families", s.handleFamilies)
	handle("GET /v1/families/{id}", "family", s.handleFamily)
	handle("GET /v1/sequences/{id}/family", "sequence_family", s.handleSequenceFamily)
	handle("GET /v1/status", "status", s.handleStatus)
	handle("GET /v1/epochs", "epochs", s.handleEpochs)
	handle("GET /v1/epochs/{n}", "epoch", s.handleEpoch)
	handle("GET /debug/epochs/{n}/trace", "epoch_trace", s.handleEpochTrace)
	handle("GET /healthz", "healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	handle("GET /readyz", "readyz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	handle("GET /metrics", "metrics", func(w http.ResponseWriter, r *http.Request) {
		rep := metrics.Merge(metrics.LiveSnapshots())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := rep.WritePrometheus(w); err != nil {
			s.log.Error("metrics endpoint", "err", err)
		}
	})
	return mux
}

// statusWriter captures the response code for the telemetry middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// instrument wraps one route with request/latency telemetry:
// server_http_requests{route,code} counters and a
// server_http_latency_us{route} histogram. Route labels are fixed
// words, never raw paths, so the series set stays bounded.
//
// The histogram and the 200-code counter are resolved once at wrap
// time and other codes are cached after their first request, so the
// steady-state per-request cost is two clock reads and two atomic
// bumps — no name formatting or registry lock on the hot path. That
// is what keeps service_obs_overhead_ratio under its benchjson gate.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	lat := s.reg.Histogram(metrics.Name("server_http_latency_us", "route", route))
	counterFor := func(code int) *metrics.Counter {
		return s.reg.Counter(metrics.Name("server_http_requests",
			"route", route, "code", strconv.Itoa(code)))
	}
	ok200 := counterFor(http.StatusOK)
	var mu sync.Mutex
	rare := make(map[int]*metrics.Counter)
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		lat.Observe(time.Since(t0).Microseconds())
		if sw.code == http.StatusOK {
			ok200.Add(1)
			return
		}
		mu.Lock()
		c := rare[sw.code]
		if c == nil {
			c = counterFor(sw.code)
			rare[sw.code] = c
		}
		mu.Unlock()
		c.Add(1)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if he, ok := err.(*httpError); ok {
		status = he.status
	} else if err == ErrClosed || err == profam.ErrAborted {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// ingestRequest is the JSON ingest body.
type ingestRequest struct {
	Sequences []struct {
		Name     string `json:"name"`
		Residues string `json:"residues"`
	} `json:"sequences"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var names, seqs []string
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		var req ingestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, "bad JSON: " + err.Error()})
			return
		}
		for _, sq := range req.Sequences {
			names = append(names, sq.Name)
			seqs = append(seqs, sq.Residues)
		}
	} else {
		// Anything else is treated as FASTA.
		set, err := seq.ReadFASTA(io.LimitReader(r.Body, 1<<30))
		if err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, "bad FASTA: " + err.Error()})
			return
		}
		for _, sq := range set.Seqs {
			names = append(names, sq.Name)
			seqs = append(seqs, string(sq.Res))
		}
	}
	epoch, err := s.Submit(r.Context(), names, seqs)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"epoch": epoch, "sequences": len(seqs)})
}

// familyJSON is the wire form of one family.
type familyJSON struct {
	ID         int      `json:"id"`
	Size       int      `json:"size"`
	MeanDegree float64  `json:"mean_degree"`
	Density    float64  `json:"density"`
	Members    []string `json:"members"`
}

func familyToJSON(snap *Snapshot, fi int) familyJSON {
	f := snap.Res.Families[fi]
	members := make([]string, len(f.Members))
	for i, id := range f.Members {
		members[i] = snap.Set.Get(id).Name
	}
	return familyJSON{ID: fi, Size: f.Size(), MeanDegree: f.MeanDegree, Density: f.Density, Members: members}
}

func (s *Server) handleFamilies(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if snap == nil {
		writeErr(w, &httpError{http.StatusServiceUnavailable, "no epoch committed yet"})
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := report.Families(w, snap.Set, snap.Res); err != nil {
			s.log.Error("family listing", "err", err)
		}
		return
	}
	out := make([]familyJSON, len(snap.Res.Families))
	for fi := range snap.Res.Families {
		out[fi] = familyToJSON(snap, fi)
	}
	writeJSON(w, http.StatusOK, map[string]any{"epoch": snap.Epoch, "families": out})
}

func (s *Server) handleFamily(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if snap == nil {
		writeErr(w, &httpError{http.StatusServiceUnavailable, "no epoch committed yet"})
		return
	}
	fi, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || fi < 0 || fi >= len(snap.Res.Families) {
		writeErr(w, &httpError{http.StatusNotFound, fmt.Sprintf("no family %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, familyToJSON(snap, fi))
}

func (s *Server) handleSequenceFamily(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if snap == nil {
		writeErr(w, &httpError{http.StatusServiceUnavailable, "no epoch committed yet"})
		return
	}
	key := r.PathValue("id")
	id, ok := snap.IDByName[key]
	if !ok {
		if n, err := strconv.Atoi(key); err == nil && n >= 0 && n < snap.Set.Len() {
			id = n
		} else {
			writeErr(w, &httpError{http.StatusNotFound, fmt.Sprintf("no sequence %q", key)})
			return
		}
	}
	fi := snap.FamilyOf[id]
	resp := map[string]any{
		"sequence": snap.Set.Get(id).Name,
		"id":       id,
		"epoch":    snap.Epoch,
		"family":   fi,
	}
	if fi >= 0 {
		resp["family_detail"] = familyToJSON(snap, fi)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	epoch, sequences, families := 0, 0, 0
	if snap := s.snap.Load(); snap != nil {
		epoch, sequences, families = snap.Epoch, snap.Set.Len(), len(snap.Res.Families)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":              epoch,
		"sequences":          sequences,
		"families":           families,
		"building":           s.building.Load(),
		"queued":             len(s.subs),
		"pending_batch":      s.pendingBatch.Load(),
		"uptime_seconds":     time.Since(s.start).Seconds(),
		"pair_backend":       s.cfg.Pipeline.Pairs.String(),
		"last_epoch_seconds": s.lastEpochSeconds(),
	})
}

// handleEpochs serves the full provenance ledger in append order.
func (s *Server) handleEpochs(w http.ResponseWriter, r *http.Request) {
	recs := s.led.Records()
	if recs == nil {
		recs = []ledger.Record{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(recs), "epochs": recs})
}

// handleEpoch serves one epoch's latest provenance record.
func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		writeErr(w, &httpError{http.StatusBadRequest, "epoch must be an integer"})
		return
	}
	rec, ok := s.led.Epoch(n)
	if !ok {
		writeErr(w, &httpError{http.StatusNotFound, fmt.Sprintf("no ledger record for epoch %d", n)})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleEpochTrace serves one retained epoch timeline as Chrome trace
// JSON (Perfetto-loadable). 404 covers both "tracing disabled" and
// "evicted from the ring".
func (s *Server) handleEpochTrace(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		writeErr(w, &httpError{http.StatusBadRequest, "epoch must be an integer"})
		return
	}
	tl := s.EpochTrace(n)
	if tl == nil {
		writeErr(w, &httpError{http.StatusNotFound,
			fmt.Sprintf("no trace retained for epoch %d (tracing disabled, or evicted; retained: %v)", n, s.TracedEpochs())})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := trace.WriteChromeJSON(w, tl); err != nil {
		s.log.Error("epoch trace", "epoch", n, "err", err)
	}
}
