package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"profam"
	"profam/internal/metrics"
	"profam/internal/report"
	"profam/internal/seq"
)

// httpError carries an HTTP status with its message.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// Handler returns the service's HTTP API:
//
//	POST /v1/sequences              ingest (JSON or FASTA body)
//	GET  /v1/families               family list (?format=text for the canonical listing)
//	GET  /v1/families/{id}          one family
//	GET  /v1/sequences/{id}/family  family membership by sequence name or ID
//	GET  /v1/status                 service state
//	GET  /healthz                   liveness
//	GET  /readyz                    readiness (503 once shutdown begins)
//	GET  /metrics                   Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sequences", s.handleIngest)
	mux.HandleFunc("GET /v1/families", s.handleFamilies)
	mux.HandleFunc("GET /v1/families/{id}", s.handleFamily)
	mux.HandleFunc("GET /v1/sequences/{id}/family", s.handleSequenceFamily)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		rep := metrics.Merge(metrics.LiveSnapshots())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := rep.WritePrometheus(w); err != nil {
			s.log.Error("metrics endpoint", "err", err)
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if he, ok := err.(*httpError); ok {
		status = he.status
	} else if err == ErrClosed || err == profam.ErrAborted {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// ingestRequest is the JSON ingest body.
type ingestRequest struct {
	Sequences []struct {
		Name     string `json:"name"`
		Residues string `json:"residues"`
	} `json:"sequences"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var names, seqs []string
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		var req ingestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, "bad JSON: " + err.Error()})
			return
		}
		for _, sq := range req.Sequences {
			names = append(names, sq.Name)
			seqs = append(seqs, sq.Residues)
		}
	} else {
		// Anything else is treated as FASTA.
		set, err := seq.ReadFASTA(io.LimitReader(r.Body, 1<<30))
		if err != nil {
			writeErr(w, &httpError{http.StatusBadRequest, "bad FASTA: " + err.Error()})
			return
		}
		for _, sq := range set.Seqs {
			names = append(names, sq.Name)
			seqs = append(seqs, string(sq.Res))
		}
	}
	epoch, err := s.Submit(r.Context(), names, seqs)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"epoch": epoch, "sequences": len(seqs)})
}

// familyJSON is the wire form of one family.
type familyJSON struct {
	ID         int      `json:"id"`
	Size       int      `json:"size"`
	MeanDegree float64  `json:"mean_degree"`
	Density    float64  `json:"density"`
	Members    []string `json:"members"`
}

func familyToJSON(snap *Snapshot, fi int) familyJSON {
	f := snap.Res.Families[fi]
	members := make([]string, len(f.Members))
	for i, id := range f.Members {
		members[i] = snap.Set.Get(id).Name
	}
	return familyJSON{ID: fi, Size: f.Size(), MeanDegree: f.MeanDegree, Density: f.Density, Members: members}
}

func (s *Server) handleFamilies(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if snap == nil {
		writeErr(w, &httpError{http.StatusServiceUnavailable, "no epoch committed yet"})
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := report.Families(w, snap.Set, snap.Res); err != nil {
			s.log.Error("family listing", "err", err)
		}
		return
	}
	out := make([]familyJSON, len(snap.Res.Families))
	for fi := range snap.Res.Families {
		out[fi] = familyToJSON(snap, fi)
	}
	writeJSON(w, http.StatusOK, map[string]any{"epoch": snap.Epoch, "families": out})
}

func (s *Server) handleFamily(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if snap == nil {
		writeErr(w, &httpError{http.StatusServiceUnavailable, "no epoch committed yet"})
		return
	}
	fi, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || fi < 0 || fi >= len(snap.Res.Families) {
		writeErr(w, &httpError{http.StatusNotFound, fmt.Sprintf("no family %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, familyToJSON(snap, fi))
}

func (s *Server) handleSequenceFamily(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if snap == nil {
		writeErr(w, &httpError{http.StatusServiceUnavailable, "no epoch committed yet"})
		return
	}
	key := r.PathValue("id")
	id, ok := snap.IDByName[key]
	if !ok {
		if n, err := strconv.Atoi(key); err == nil && n >= 0 && n < snap.Set.Len() {
			id = n
		} else {
			writeErr(w, &httpError{http.StatusNotFound, fmt.Sprintf("no sequence %q", key)})
			return
		}
	}
	fi := snap.FamilyOf[id]
	resp := map[string]any{
		"sequence": snap.Set.Get(id).Name,
		"id":       id,
		"epoch":    snap.Epoch,
		"family":   fi,
	}
	if fi >= 0 {
		resp["family_detail"] = familyToJSON(snap, fi)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	epoch, sequences, families := 0, 0, 0
	if snap := s.snap.Load(); snap != nil {
		epoch, sequences, families = snap.Epoch, snap.Set.Len(), len(snap.Res.Families)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":     epoch,
		"sequences": sequences,
		"families":  families,
		"building":  s.building.Load(),
		"queued":    len(s.subs),
	})
}
