package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"profam"
	"profam/internal/ledger"
	"profam/internal/metrics"
	"profam/internal/seq"
	"profam/internal/trace"
)

// submission is one POST /v1/sequences request: its sequences ride into
// an epoch together and the reply channel resolves when that epoch
// commits (or the submission is rejected). done is buffered so a flush
// never blocks on a caller that gave up waiting.
type submission struct {
	names, seqs []string
	enq         time.Time
	done        chan submitReply
}

type submitReply struct {
	epoch  int
	status int // HTTP status when err != nil
	err    error
}

// Submit queues the sequences and blocks until the epoch containing
// them commits, returning the committed epoch number. The bounded queue
// provides backpressure: when it is full, Submit blocks until the
// batcher catches up (or ctx/shutdown interrupts).
func (s *Server) Submit(ctx context.Context, names, seqs []string) (int, error) {
	if len(seqs) == 0 {
		return 0, &httpError{http.StatusBadRequest, "no sequences in request"}
	}
	if len(names) != len(seqs) {
		return 0, &httpError{http.StatusBadRequest, "names and sequences length mismatch"}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	s.enqWG.Add(1)
	s.mu.Unlock()

	sub := &submission{names: names, seqs: seqs, enq: time.Now(), done: make(chan submitReply, 1)}
	select {
	case s.subs <- sub:
		s.enqWG.Done()
	case <-s.stop:
		s.enqWG.Done()
		return 0, ErrClosed
	case <-ctx.Done():
		s.enqWG.Done()
		return 0, ctx.Err()
	}
	select {
	case r := <-sub.done:
		return r.epoch, r.err
	case <-ctx.Done():
		// The batch may still commit later; the buffered done channel
		// absorbs the orphaned reply.
		return 0, ctx.Err()
	}
}

// loop is the batcher goroutine: it accumulates submissions and flushes
// them into one incremental epoch when BatchSize sequences are pending
// or the oldest submission has waited BatchWait. On shutdown it drains
// whatever is queued through a final flush before exiting.
func (s *Server) loop() {
	defer close(s.loopDone)
	var batch []*submission
	pending := 0
	var timer *time.Timer
	var timeout <-chan time.Time
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timeout = nil, nil
		}
		if len(batch) > 0 {
			s.flush(batch)
			batch, pending = nil, 0
			s.pendingBatch.Store(0)
		}
	}
	for {
		select {
		case sub, ok := <-s.subs:
			if !ok {
				flush()
				return
			}
			// Queue telemetry at the dequeue point: how long the oldest
			// submission sat in the channel, and how deep it still is.
			s.reg.Histogram("server_queue_wait_us").Observe(time.Since(sub.enq).Microseconds())
			s.reg.Gauge("server_queue_depth").Set(float64(len(s.subs)))
			batch = append(batch, sub)
			pending += len(sub.seqs)
			s.pendingBatch.Store(int64(pending))
			if timer == nil {
				timer = time.NewTimer(s.cfg.BatchWait)
				timeout = timer.C
			}
			if pending >= s.cfg.BatchSize {
				flush()
			}
		case <-timeout:
			flush()
		}
	}
}

// flush validates the batch, runs one incremental epoch over the
// accepted submissions, publishes the new snapshot, and resolves every
// reply channel. Rejections (invalid residues, duplicate names) are
// per-submission: one bad request cannot poison its batch-mates. Every
// epoch attempt — committed, failed or aborted — lands one record in
// the ledger and one outcome-labeled ingest-latency observation per
// accepted submission, so provenance and SLO data cover failures too.
func (s *Server) flush(batch []*submission) {
	inBatch := make(map[string]bool)
	var accepted []*submission
	var names, seqs []string
	for _, sub := range batch {
		reject := func(status int, msg string) { sub.done <- submitReply{status: status, err: &httpError{status, msg}} }
		bad := false
		for i, res := range sub.seqs {
			name := sub.names[i]
			if !seq.Valid(res) {
				reject(http.StatusBadRequest, fmt.Sprintf("sequence %q has invalid residues or is empty", name))
				bad = true
				break
			}
			if name != "" && (s.committed[name] || inBatch[name]) {
				reject(http.StatusConflict, fmt.Sprintf("sequence name %q already exists", name))
				bad = true
				break
			}
		}
		if bad {
			continue
		}
		for _, name := range sub.names {
			if name != "" {
				inBatch[name] = true
			}
		}
		accepted = append(accepted, sub)
		names = append(names, sub.names...)
		seqs = append(seqs, sub.seqs...)
	}
	if len(accepted) == 0 {
		return
	}

	s.building.Store(true)
	defer s.building.Store(false)
	pcfg := s.cfg.Pipeline
	pcfg.Abort = s.abort
	pcfg.TraceCapacity = s.cfg.TraceCapacity
	epoch := s.state.Epoch() + 1
	rec := ledger.Record{
		Epoch:        epoch,
		Fingerprint:  pcfg.Fingerprint(),
		PairBackend:  pcfg.Pairs.String(),
		Submissions:  len(accepted),
		NewSequences: len(seqs),
	}
	observeOutcome := func(outcome string) {
		h := s.reg.Histogram(metrics.Name("server_ingest_to_publish_us", "outcome", outcome))
		for _, sub := range accepted {
			h.Observe(time.Since(sub.enq).Microseconds())
		}
	}
	t0 := time.Now()
	res, next, err := profam.RunEpoch(s.state, names, seqs, s.cfg.Ranks, pcfg)
	build := time.Since(t0)
	if err != nil {
		outcome := ledger.StatusFailed
		if errors.Is(err, profam.ErrAborted) {
			outcome = ledger.StatusAborted
		}
		s.reg.Counter("server_epoch_failures").Add(1)
		observeOutcome(outcome)
		rec.Status = outcome
		rec.UnixNanos = time.Now().UnixNano()
		rec.CorpusSize = s.state.NumSequences()
		rec.BuildSeconds = build.Seconds()
		rec.Error = err.Error()
		if lerr := s.led.Append(rec); lerr != nil {
			s.log.Error("ledger append", "epoch", epoch, "err", lerr)
		}
		s.log.Error("epoch failed", "sequences", len(seqs), "outcome", outcome, "err", err)
		for _, sub := range accepted {
			sub.done <- submitReply{status: http.StatusServiceUnavailable, err: err}
		}
		return
	}
	s.state = next
	for name := range inBatch {
		s.committed[name] = true
	}
	s.snap.Store(newSnapshot(next, res, build.Seconds()))
	s.lastEpochSec.Store(math.Float64bits(build.Seconds()))
	s.recordCommit(&rec, res, next, build)

	s.reg.Counter("server_epochs").Add(1)
	s.reg.Counter("server_sequences_ingested").Add(int64(len(seqs)))
	s.reg.Histogram("server_batch_size").Observe(int64(len(seqs)))
	s.reg.Histogram("server_batch_submissions").Observe(int64(len(accepted)))
	s.reg.Gauge("server_epoch").Set(float64(next.Epoch()))
	s.reg.Gauge("server_corpus_size").Set(float64(next.NumSequences()))
	s.reg.Gauge("server_families").Set(float64(len(res.Families)))
	observeOutcome(ledger.StatusCommitted)
	for _, sub := range accepted {
		sub.done <- submitReply{epoch: next.Epoch()}
	}
	s.log.Info("epoch committed",
		"epoch", next.Epoch(), "new", len(seqs), "corpus", next.NumSequences(),
		"families", len(res.Families), "build", build.Round(time.Millisecond))
}

// recordCommit finalizes and appends the committed epoch's provenance
// record and retains/persists its trace timeline. Runs on the batcher
// goroutine after the snapshot swap, so the ledger record is visible no
// later than the families it describes.
func (s *Server) recordCommit(rec *ledger.Record, res *profam.Result, next *profam.EpochState, build time.Duration) {
	rec.Status = ledger.StatusCommitted
	rec.UnixNanos = time.Now().UnixNano()
	rec.CorpusSize = next.NumSequences()
	rec.Families = len(res.Families)
	rec.BuildSeconds = build.Seconds()

	set := next.Set()
	inputNames := make([]string, set.Len())
	for _, sq := range set.Seqs {
		inputNames[sq.ID] = sq.Name
	}
	rec.InputDigest = ledger.NamesDigest(inputNames)
	if digest, err := ledger.FamiliesDigest(set, res); err != nil {
		s.log.Error("families digest", "epoch", rec.Epoch, "err", err)
	} else {
		rec.FamiliesDigest = digest
	}

	if m := res.Metrics; m != nil {
		rec.Demotions = m.CounterValue("pipeline_epoch_demotions")
		rec.ComponentsCached = m.CounterValue("pipeline_components_cached")
		rec.HeapPeakBytes = int64(m.GaugeValue(metrics.HeapPeakGauge))
		if len(m.Phases) > 0 {
			rec.PhaseSeconds = make(map[string]float64, len(m.Phases))
			for _, ph := range m.Phases {
				rec.PhaseSeconds[ph.Name] = ph.MaxSeconds
			}
		}
	}
	if err := s.led.Append(*rec); err != nil {
		s.log.Error("ledger append", "epoch", rec.Epoch, "err", err)
	}

	if res.Trace != nil {
		// Tag a shallow copy with the epoch so the shared Result keeps
		// its untagged timeline.
		tl := *res.Trace
		tl.Epoch = rec.Epoch
		s.retainTrace(rec.Epoch, &tl)
		if s.cfg.TraceDir != "" {
			path := filepath.Join(s.cfg.TraceDir, fmt.Sprintf("epoch_%04d.trace.json", rec.Epoch))
			if err := writeTraceFile(path, &tl); err != nil {
				s.log.Error("trace persist", "epoch", rec.Epoch, "err", err)
			}
		}
	}
}

func writeTraceFile(path string, tl *trace.Timeline) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeJSON(f, tl); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
