// Package server implements profamd's resident clustering service: an
// HTTP front end over the profam pipeline with batched ingest,
// incremental epochs, and immutable published snapshots.
//
// Submissions to POST /v1/sequences land in a batcher and coalesce into
// one incremental pipeline epoch per flush (flush on batch size or max
// wait, backpressure through a bounded queue). Each epoch clusters only
// the new arrivals against the committed state and publishes a fresh
// Snapshot by atomic pointer swap; queries keep answering from the old
// snapshot while the next epoch builds. The determinism contract of
// profam.RunEpoch guarantees the served families are byte-identical to a
// cold profam run over the union corpus.
//
// Observability is first-class: every epoch attempt appends a
// provenance record to the ledger (GET /v1/epochs), each epoch's merged
// trace timeline is retained in a bounded ring (GET
// /debug/epochs/{n}/trace) and optionally persisted to TraceDir, and a
// middleware + runtime sampler feed per-route HTTP series and process
// health into the registry behind GET /metrics.
package server

import (
	"context"
	"errors"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"profam"
	"profam/internal/ledger"
	"profam/internal/metrics"
	"profam/internal/trace"
)

// ErrClosed is returned for submissions after shutdown began.
var ErrClosed = errors.New("server: shutting down")

// Config holds the service knobs. The zero value is usable.
type Config struct {
	// Pipeline is the clustering configuration shared by every epoch.
	// Family-affecting knobs are fingerprint-locked after the first
	// epoch (see profam.ErrConfigChanged).
	Pipeline profam.Config
	// Ranks is the number of in-process ranks per epoch (default 1).
	Ranks int
	// BatchSize flushes the batcher once this many sequences are
	// pending (default 256).
	BatchSize int
	// BatchWait flushes a non-empty batch after this long even if
	// BatchSize was not reached (default 200ms).
	BatchWait time.Duration
	// QueueCap bounds the submission queue; full-queue submissions
	// block (backpressure) until the batcher catches up (default 64).
	QueueCap int
	// Ledger receives one provenance record per epoch attempt. nil uses
	// a memory-only ledger, so /v1/epochs always works; pass
	// ledger.Open's result for a durable JSONL log.
	Ledger *ledger.Ledger
	// TraceCapacity enables per-epoch event tracing: each rank of every
	// epoch records up to this many events, merged into the epoch's
	// timeline. 0 disables tracing (no ring, 404 from the trace
	// endpoint).
	TraceCapacity int
	// TraceHistory bounds the in-memory ring of recent epoch timelines
	// served at /debug/epochs/{n}/trace (default 8).
	TraceHistory int
	// TraceDir, when non-empty, persists every epoch's timeline as
	// Chrome trace JSON (epoch_NNNN.trace.json) — the daemon-side
	// analogue of profam's -trace-out.
	TraceDir string
	// HealthInterval is the runtime health sampling period — goroutine
	// count, heap gauges, GC pause histogram (default 10s).
	HealthInterval time.Duration
	// Logger receives service logs. nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 200 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Ledger == nil {
		c.Ledger = ledger.NewMemory()
	}
	if c.TraceHistory <= 0 {
		c.TraceHistory = 8
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = trace.NopLogger()
	}
	return c
}

// Server is the resident clustering service. Create with New, serve its
// Handler, stop with Shutdown.
type Server struct {
	cfg   Config
	log   *slog.Logger
	reg   *metrics.Registry
	led   *ledger.Ledger
	start time.Time

	snap atomic.Pointer[Snapshot]

	subs     chan *submission
	stop     chan struct{} // closed when Shutdown begins: unblocks enqueuers
	abort    chan struct{} // closed on forced shutdown: cancels the in-flight epoch
	loopDone chan struct{}

	mu     sync.Mutex
	closed bool
	enqWG  sync.WaitGroup

	building     atomic.Bool
	pendingBatch atomic.Int64  // sequences accumulated toward the next flush
	lastEpochSec atomic.Uint64 // math.Float64bits of the last build's wall seconds

	stopHealth func()

	// traces is the bounded ring of recent epoch timelines, keyed by
	// epoch number; traceOrder tracks insertion for eviction.
	traceMu    sync.RWMutex
	traces     map[int]*trace.Timeline
	traceOrder []int

	// state and committed are owned by the batcher goroutine.
	state     *profam.EpochState
	committed map[string]bool
}

// New starts a Server (its batcher goroutine runs until Shutdown).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	start := time.Now()
	s := &Server{
		cfg:       cfg,
		log:       cfg.Logger,
		reg:       metrics.New(0, func() float64 { return time.Since(start).Seconds() }),
		led:       cfg.Ledger,
		start:     start,
		subs:      make(chan *submission, cfg.QueueCap),
		stop:      make(chan struct{}),
		abort:     make(chan struct{}),
		loopDone:  make(chan struct{}),
		traces:    make(map[int]*trace.Timeline),
		state:     profam.NewEpochState(),
		committed: make(map[string]bool),
	}
	// The service registry joins the live set so /metrics merges it with
	// the per-rank pipeline registries of whatever epoch is in flight.
	metrics.RegisterLive(s.reg)
	s.stopHealth = metrics.StartRuntimeSampler(s.reg, cfg.HealthInterval)
	go s.loop()
	return s
}

// Snapshot returns the currently published snapshot (nil before the
// first epoch commits).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Registry exposes the service metrics registry (for final flushes).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Ledger exposes the epoch provenance ledger.
func (s *Server) Ledger() *ledger.Ledger { return s.led }

// EpochTrace returns epoch n's retained timeline, or nil if tracing is
// off or the epoch has been evicted from the ring.
func (s *Server) EpochTrace(n int) *trace.Timeline {
	s.traceMu.RLock()
	defer s.traceMu.RUnlock()
	return s.traces[n]
}

// TracedEpochs lists the epoch numbers currently in the trace ring,
// oldest first.
func (s *Server) TracedEpochs() []int {
	s.traceMu.RLock()
	defer s.traceMu.RUnlock()
	return append([]int(nil), s.traceOrder...)
}

// retainTrace inserts one epoch's timeline into the ring, evicting the
// oldest beyond TraceHistory.
func (s *Server) retainTrace(epoch int, tl *trace.Timeline) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if _, dup := s.traces[epoch]; !dup {
		s.traceOrder = append(s.traceOrder, epoch)
	}
	s.traces[epoch] = tl
	for len(s.traceOrder) > s.cfg.TraceHistory {
		evict := s.traceOrder[0]
		s.traceOrder = s.traceOrder[1:]
		delete(s.traces, evict)
	}
}

// lastEpochSeconds returns the wall-clock duration of the most recent
// epoch build (0 before the first commit).
func (s *Server) lastEpochSeconds() float64 {
	return math.Float64frombits(s.lastEpochSec.Load())
}

// Shutdown drains the service: no new submissions are accepted, queued
// batches are flushed through their epochs, and the call returns once
// the batcher has exited. If ctx expires first, the in-flight epoch is
// aborted (profam.ErrAborted; its partial observability state lands in
// the metrics/trace failed-run stashes) and remaining batches are
// rejected. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.stop)
		// Every enqueuer either queued its submission or saw stop; after
		// Wait no goroutine can touch s.subs, so closing it is safe.
		s.enqWG.Wait()
		close(s.subs)
	}
	finish := func() {
		s.mu.Lock()
		if s.stopHealth != nil {
			s.stopHealth()
			s.stopHealth = nil
		}
		s.mu.Unlock()
		metrics.UnregisterLive(s.reg)
	}
	select {
	case <-s.loopDone:
		finish()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-s.abort: // already closed by an earlier forced Shutdown
		default:
			close(s.abort)
		}
		s.mu.Unlock()
		<-s.loopDone
		finish()
		return ctx.Err()
	}
}
