// Package server implements profamd's resident clustering service: an
// HTTP front end over the profam pipeline with batched ingest,
// incremental epochs, and immutable published snapshots.
//
// Submissions to POST /v1/sequences land in a batcher and coalesce into
// one incremental pipeline epoch per flush (flush on batch size or max
// wait, backpressure through a bounded queue). Each epoch clusters only
// the new arrivals against the committed state and publishes a fresh
// Snapshot by atomic pointer swap; queries keep answering from the old
// snapshot while the next epoch builds. The determinism contract of
// profam.RunEpoch guarantees the served families are byte-identical to a
// cold profam run over the union corpus.
package server

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"profam"
	"profam/internal/metrics"
	"profam/internal/trace"
)

// ErrClosed is returned for submissions after shutdown began.
var ErrClosed = errors.New("server: shutting down")

// Config holds the service knobs. The zero value is usable.
type Config struct {
	// Pipeline is the clustering configuration shared by every epoch.
	// Family-affecting knobs are fingerprint-locked after the first
	// epoch (see profam.ErrConfigChanged).
	Pipeline profam.Config
	// Ranks is the number of in-process ranks per epoch (default 1).
	Ranks int
	// BatchSize flushes the batcher once this many sequences are
	// pending (default 256).
	BatchSize int
	// BatchWait flushes a non-empty batch after this long even if
	// BatchSize was not reached (default 200ms).
	BatchWait time.Duration
	// QueueCap bounds the submission queue; full-queue submissions
	// block (backpressure) until the batcher catches up (default 64).
	QueueCap int
	// Logger receives service logs. nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 200 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Logger == nil {
		c.Logger = trace.NopLogger()
	}
	return c
}

// Server is the resident clustering service. Create with New, serve its
// Handler, stop with Shutdown.
type Server struct {
	cfg Config
	log *slog.Logger
	reg *metrics.Registry

	snap atomic.Pointer[Snapshot]

	subs     chan *submission
	stop     chan struct{} // closed when Shutdown begins: unblocks enqueuers
	abort    chan struct{} // closed on forced shutdown: cancels the in-flight epoch
	loopDone chan struct{}

	mu     sync.Mutex
	closed bool
	enqWG  sync.WaitGroup

	building atomic.Bool

	// state and committed are owned by the batcher goroutine.
	state     *profam.EpochState
	committed map[string]bool
}

// New starts a Server (its batcher goroutine runs until Shutdown).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	start := time.Now()
	s := &Server{
		cfg:       cfg,
		log:       cfg.Logger,
		reg:       metrics.New(0, func() float64 { return time.Since(start).Seconds() }),
		subs:      make(chan *submission, cfg.QueueCap),
		stop:      make(chan struct{}),
		abort:     make(chan struct{}),
		loopDone:  make(chan struct{}),
		state:     profam.NewEpochState(),
		committed: make(map[string]bool),
	}
	// The service registry joins the live set so /metrics merges it with
	// the per-rank pipeline registries of whatever epoch is in flight.
	metrics.RegisterLive(s.reg)
	go s.loop()
	return s
}

// Snapshot returns the currently published snapshot (nil before the
// first epoch commits).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Registry exposes the service metrics registry (for final flushes).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Shutdown drains the service: no new submissions are accepted, queued
// batches are flushed through their epochs, and the call returns once
// the batcher has exited. If ctx expires first, the in-flight epoch is
// aborted (profam.ErrAborted; its partial observability state lands in
// the metrics/trace failed-run stashes) and remaining batches are
// rejected. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.stop)
		// Every enqueuer either queued its submission or saw stop; after
		// Wait no goroutine can touch s.subs, so closing it is safe.
		s.enqWG.Wait()
		close(s.subs)
	}
	select {
	case <-s.loopDone:
		metrics.UnregisterLive(s.reg)
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-s.abort: // already closed by an earlier forced Shutdown
		default:
			close(s.abort)
		}
		s.mu.Unlock()
		<-s.loopDone
		metrics.UnregisterLive(s.reg)
		return ctx.Err()
	}
}
