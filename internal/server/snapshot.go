package server

import (
	"profam"
	"profam/internal/seq"
)

// Snapshot is one committed epoch's immutable query view. It is
// published by atomic pointer swap when the epoch commits; readers
// holding an older snapshot keep answering from it unperturbed while
// the next epoch builds.
type Snapshot struct {
	// Epoch is the committed epoch number (1 = first flush).
	Epoch int
	// Res is the full pipeline result over the union corpus.
	Res *profam.Result
	// Set is the union corpus the result refers to.
	Set *seq.Set
	// FamilyOf maps sequence ID to its family index in Res.Families, or
	// -1 when the sequence is in no family.
	FamilyOf []int
	// IDByName resolves sequence names to IDs.
	IDByName map[string]int
	// BuildSeconds is the wall-clock duration of the epoch that
	// produced this snapshot.
	BuildSeconds float64
}

func newSnapshot(st *profam.EpochState, res *profam.Result, buildSeconds float64) *Snapshot {
	set := st.Set()
	byName := make(map[string]int, set.Len())
	for _, sq := range set.Seqs {
		byName[sq.Name] = sq.ID
	}
	return &Snapshot{
		Epoch:        st.Epoch(),
		Res:          res,
		Set:          set,
		FamilyOf:     res.FamilyLabels(),
		IDByName:     byName,
		BuildSeconds: buildSeconds,
	}
}
