package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"profam"
	"profam/internal/report"
	"profam/internal/seq"
	"profam/internal/workload"
)

func testCorpus(t *testing.T, seed int64) *seq.Set {
	t.Helper()
	set, _ := workload.Generate(workload.Params{
		Families: 3, MeanFamilySize: 8, MeanLength: 90,
		Divergence: 0.08, ContainedFrac: 0.15, Singletons: 3, Seed: seed,
	})
	return set
}

func fastaBody(set *seq.Set, from, to int) *bytes.Buffer {
	var b bytes.Buffer
	for id := from; id < to; id++ {
		fmt.Fprintf(&b, ">%s\n%s\n", set.Get(id).Name, set.Get(id).Res)
	}
	return &b
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func post(t *testing.T, url, contentType string, body io.Reader) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, contentType, body)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// TestServerIngestAndQuery drives the whole surface: multi-wave FASTA
// ingest, then checks the served text families are byte-identical to a
// cold profam run over the union corpus and that per-sequence and
// per-family queries agree with it.
func TestServerIngestAndQuery(t *testing.T) {
	set := testCorpus(t, 21)
	_, ts := newTestServer(t, Config{BatchWait: 10 * time.Millisecond})

	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d before ingest", code)
	}
	if code, _ := get(t, ts.URL+"/v1/families"); code != http.StatusServiceUnavailable {
		t.Fatalf("families before first epoch = %d, want 503", code)
	}

	mid := set.Len() / 2
	for _, wave := range [][2]int{{0, mid}, {mid, set.Len()}} {
		code, out := post(t, ts.URL+"/v1/sequences", "application/x-fasta", fastaBody(set, wave[0], wave[1]))
		if code != http.StatusOK {
			t.Fatalf("ingest wave %v = %d (%v)", wave, code, out)
		}
	}

	// Cold reference over the union corpus.
	names := make([]string, set.Len())
	seqs := make([]string, set.Len())
	for id := 0; id < set.Len(); id++ {
		names[id], seqs[id] = set.Get(id).Name, string(set.Get(id).Res)
	}
	cold, err := profam.Run(names, seqs, profam.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := report.Families(&want, set, cold); err != nil {
		t.Fatal(err)
	}

	code, got := get(t, ts.URL+"/v1/families?format=text")
	if code != http.StatusOK {
		t.Fatalf("families text = %d", code)
	}
	if string(got) != want.String() {
		t.Errorf("served families differ from cold run:\n--- cold ---\n%s--- served ---\n%s", want.String(), got)
	}

	// Per-sequence queries agree with the cold labels.
	labels := cold.FamilyLabels()
	for id := 0; id < set.Len(); id += 5 {
		code, body := get(t, ts.URL+"/v1/sequences/"+set.Get(id).Name+"/family")
		if code != http.StatusOK {
			t.Fatalf("sequence query %q = %d", set.Get(id).Name, code)
		}
		var resp struct {
			Family int `json:"family"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Family != labels[id] {
			t.Errorf("sequence %d: served family %d, cold %d", id, resp.Family, labels[id])
		}
	}

	// Family-by-ID round trip.
	if len(cold.Families) > 0 {
		code, body := get(t, ts.URL+"/v1/families/0")
		if code != http.StatusOK {
			t.Fatalf("family 0 = %d", code)
		}
		var f familyJSON
		if err := json.Unmarshal(body, &f); err != nil {
			t.Fatal(err)
		}
		if f.Size != cold.Families[0].Size() {
			t.Errorf("family 0 size %d, cold %d", f.Size, cold.Families[0].Size())
		}
	}

	if code, body := get(t, ts.URL+"/metrics"); code != http.StatusOK ||
		!bytes.Contains(body, []byte("server_epochs")) {
		t.Errorf("metrics endpoint missing server_epochs (code %d)", code)
	}
}

// TestServerBatchCoalescing submits many single-sequence requests
// concurrently and checks they coalesce into far fewer epochs.
func TestServerBatchCoalescing(t *testing.T) {
	set := testCorpus(t, 33)
	s, ts := newTestServer(t, Config{BatchWait: 150 * time.Millisecond, BatchSize: 1 << 20})

	n := min(set.Len(), 12)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"sequences":[{"name":%q,"residues":%q}]}`,
				set.Get(id).Name, set.Get(id).Res)
			code, out := post(t, ts.URL+"/v1/sequences", "application/json", strings.NewReader(body))
			if code != http.StatusOK {
				t.Errorf("submission %d = %d (%v)", id, code, out)
			}
		}(id)
	}
	wg.Wait()

	snap := s.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot after ingest")
	}
	if snap.Set.Len() != n {
		t.Errorf("corpus %d, want %d", snap.Set.Len(), n)
	}
	if snap.Epoch >= n {
		t.Errorf("%d submissions took %d epochs; expected coalescing", n, snap.Epoch)
	}
}

// TestServerRejectsBadSubmissions checks per-submission validation:
// invalid residues 400, duplicate names 409, and that batch-mates of a
// rejected submission still commit.
func TestServerRejectsBadSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWait: 10 * time.Millisecond})

	if code, _ := post(t, ts.URL+"/v1/sequences", "application/json",
		strings.NewReader(`{"sequences":[{"name":"bad","residues":"MKV123"}]}`)); code != http.StatusBadRequest {
		t.Errorf("invalid residues = %d, want 400", code)
	}
	if code, _ := post(t, ts.URL+"/v1/sequences", "application/json",
		strings.NewReader(`{"sequences":[{"name":"a","residues":"MKVLWAALLGAGARQWEDD"}]}`)); code != http.StatusOK {
		t.Fatalf("first submission rejected: %d", code)
	}
	if code, _ := post(t, ts.URL+"/v1/sequences", "application/json",
		strings.NewReader(`{"sequences":[{"name":"a","residues":"GHIKNNPQRSTVWYACDEF"}]}`)); code != http.StatusConflict {
		t.Errorf("duplicate name = %d, want 409", code)
	}
	if code, _ := post(t, ts.URL+"/v1/sequences", "application/json",
		strings.NewReader(`{"sequences":[]}`)); code != http.StatusBadRequest {
		t.Errorf("empty submission = %d, want 400", code)
	}
}

// serverHammer is the shared body of the race-hammer tests: writers
// ingest while readers pound every query endpoint.
func serverHammer(t *testing.T, writers, queriesPerReader int) {
	set := testCorpus(t, 77)
	_, ts := newTestServer(t, Config{BatchWait: 5 * time.Millisecond, TraceCapacity: 1 << 12})

	per := (set.Len() + writers - 1) / writers
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		from, to := w*per, min((w+1)*per, set.Len())
		if from >= to {
			continue
		}
		wg.Add(1)
		go func(from, to int) {
			defer wg.Done()
			code, out := post(t, ts.URL+"/v1/sequences", "application/x-fasta", fastaBody(set, from, to))
			if code != http.StatusOK {
				t.Errorf("ingest [%d,%d) = %d (%v)", from, to, code, out)
			}
		}(from, to)
	}
	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			paths := []string{"/v1/families", "/v1/status", "/v1/families/0",
				"/v1/sequences/" + set.Get(0).Name + "/family", "/readyz", "/metrics",
				"/v1/epochs", "/v1/epochs/1", "/debug/epochs/1/trace"}
			for q := 0; q < queriesPerReader; q++ {
				resp, err := http.Get(ts.URL + paths[(q+r)%len(paths)])
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(r)
	}
	wg.Wait()

	// After the dust settles, the served families must equal a cold run
	// over whatever arrived (all waves, arrival order unknown but the
	// corpus content fixed): check corpus size only here; byte identity
	// is covered by the deterministic tests.
	code, body := get(t, ts.URL+"/v1/status")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var st struct {
		Sequences int  `json:"sequences"`
		Building  bool `json:"building"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Sequences != set.Len() {
		t.Errorf("corpus %d after hammer, want %d", st.Sequences, set.Len())
	}
}

// TestServerConcurrentIngestAndQuery is the race hammer: N ingest
// goroutines and M query goroutines running against one server under
// -race in CI.
func TestServerConcurrentIngestAndQuery(t *testing.T) {
	serverHammer(t, 4, 30)
}

// TestServerConcurrentIngestAndQueryLong is the extended hammer.
func TestServerConcurrentIngestAndQueryLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long race hammer skipped in -short mode")
	}
	serverHammer(t, 8, 200)
}

// TestServerGracefulShutdown checks the drain path: submissions queued
// before Shutdown commit their epochs; submissions after it are
// rejected with 503.
func TestServerGracefulShutdown(t *testing.T) {
	set := testCorpus(t, 55)
	s := New(Config{BatchWait: time.Hour, BatchSize: 1 << 20}) // only shutdown can flush
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var code int
	var out map[string]any
	go func() {
		defer wg.Done()
		code, out = post(t, ts.URL+"/v1/sequences", "application/x-fasta", fastaBody(set, 0, set.Len()))
	}()
	// Wait for the submission to be queued, then shut down: the drain
	// must flush the pending batch through a real epoch.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.subs) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if code != http.StatusOK {
		t.Fatalf("queued submission = %d (%v), want commit on drain", code, out)
	}
	snap := s.Snapshot()
	if snap == nil || snap.Set.Len() != set.Len() {
		t.Fatal("drain did not commit the pending batch")
	}

	if _, err := s.Submit(context.Background(), []string{"x"}, []string{"MKVLWAALLGAGARQWEDD"}); err != ErrClosed {
		t.Errorf("submit after shutdown: %v, want ErrClosed", err)
	}
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz after shutdown = %d, want 503", code)
	}
}

// TestServerForcedShutdownAbortsEpoch checks the mid-epoch cancel: an
// already-expired drain context closes the abort channel, the in-flight
// or pending epoch returns ErrAborted, and its submissions get 503. The
// committed snapshot stays whatever it was.
func TestServerForcedShutdownAbortsEpoch(t *testing.T) {
	set := testCorpus(t, 91)
	s := New(Config{BatchWait: time.Hour, BatchSize: 1 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var code int
	go func() {
		defer wg.Done()
		code, _ = post(t, ts.URL+"/v1/sequences", "application/x-fasta", fastaBody(set, 0, set.Len()))
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.subs) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the drain starts: force the abort path
	if err := s.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("forced shutdown err = %v, want context.Canceled", err)
	}
	wg.Wait()
	if code != http.StatusServiceUnavailable {
		t.Errorf("aborted submission = %d, want 503", code)
	}
	if s.Snapshot() != nil {
		t.Error("aborted epoch published a snapshot")
	}
}
