package ledger

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func sampleRecord(epoch int) Record {
	return Record{
		Epoch:            epoch,
		Status:           StatusCommitted,
		UnixNanos:        1700000000000000000 + int64(epoch),
		Fingerprint:      "k=4;q=3",
		PairBackend:      "gst",
		Submissions:      2,
		NewSequences:     10,
		CorpusSize:       10 * epoch,
		InputDigest:      NamesDigest([]string{"a", "b"}),
		Families:         3,
		FamiliesDigest:   FamiliesTextDigest([]byte("# fam\n")),
		Demotions:        1,
		ComponentsCached: 4,
		PhaseSeconds:     map[string]float64{"pace": 0.25, "bgg": 0.5},
		HeapPeakBytes:    1 << 20,
		BuildSeconds:     0.75,
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{sampleRecord(1), sampleRecord(2)}
	want[1].Status = StatusFailed
	want[1].Error = "boom"
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Recovered() {
		t.Fatal("clean file reported as recovered")
	}
	got := l2.Records()
	if len(got) != len(want) {
		t.Fatalf("records = %d, want %d", len(got), len(want))
	}
	for i := range want {
		gj, _ := json.Marshal(got[i])
		wj, _ := json.Marshal(want[i])
		if !bytes.Equal(gj, wj) {
			t.Errorf("record %d round-trip mismatch:\n got %s\nwant %s", i, gj, wj)
		}
	}
	if rec, ok := l2.Epoch(2); !ok || rec.Status != StatusFailed {
		t.Errorf("Epoch(2) = %+v, %v; want failed record", rec, ok)
	}
	if _, ok := l2.Epoch(99); ok {
		t.Error("Epoch(99) unexpectedly found")
	}
}

// TestTruncatedTailRecovered simulates a crash mid-append: the last line
// is torn. Open must keep the complete records, report recovery, and
// leave the file appendable so the retried epoch lands cleanly.
func TestTruncatedTailRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := l.Append(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record roughly in half, losing its newline.
	last := bytes.LastIndexByte(raw[:len(raw)-1], '\n') + 1
	torn := raw[:last+(len(raw)-last)/2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !l2.Recovered() {
		t.Error("torn tail not reported as recovered")
	}
	if l2.Len() != 2 {
		t.Fatalf("after recovery Len = %d, want 2", l2.Len())
	}
	// Re-append the lost epoch; a fresh open must see all three, clean.
	if err := l2.Append(sampleRecord(3)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.Recovered() {
		t.Error("re-appended file reported as recovered")
	}
	if l3.Len() != 3 {
		t.Errorf("after re-append Len = %d, want 3", l3.Len())
	}
	if rec, ok := l3.Epoch(3); !ok || rec.Epoch != 3 {
		t.Errorf("Epoch(3) missing after re-append: %+v, %v", rec, ok)
	}
}

func TestCorruptMidFileDropsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{not json\n")
	f.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !l2.Recovered() || l2.Len() != 1 {
		t.Errorf("corrupt line: recovered=%v len=%d, want true/1", l2.Recovered(), l2.Len())
	}
}

func TestMemoryOnlyLedger(t *testing.T) {
	l, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleRecord(1)); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 || l.Path() != "" {
		t.Errorf("memory ledger: len=%d path=%q", l.Len(), l.Path())
	}
	var nilL *Ledger
	if err := nilL.Append(sampleRecord(1)); err != nil {
		t.Errorf("nil Append: %v", err)
	}
	if nilL.Len() != 0 || nilL.Records() != nil {
		t.Error("nil ledger should be empty")
	}
}

func TestNamesDigest(t *testing.T) {
	a := NamesDigest([]string{"ab", "c"})
	b := NamesDigest([]string{"a", "bc"})
	if a == b {
		t.Error("length prefixing failed: concatenation collision")
	}
	if NamesDigest([]string{"x", "y"}) != NamesDigest([]string{"x", "y"}) {
		t.Error("digest not deterministic")
	}
	if NamesDigest([]string{"x", "y"}) == NamesDigest([]string{"y", "x"}) {
		t.Error("digest must be order-sensitive")
	}
}
