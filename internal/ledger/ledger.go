// Package ledger is profamd's epoch provenance ledger: an append-only,
// crash-safe JSONL log with one record per epoch attempt — committed,
// failed or aborted — carrying everything needed to audit what the
// service published and why it is reproducible.
//
// Each committed record pins the epoch's inputs (submission and
// sequence counts, a digest of the union corpus's sequence names in ID
// order), its configuration (the family-affecting fingerprint and the
// pair backend), its output (family count and a digest of the canonical
// family listing — the exact bytes `profam -out` would write for the
// union corpus), and its execution shape (per-phase critical-path
// durations lifted from the merged metrics report, demotion and
// family-cache counters, the peak-heap probe, wall-clock build time).
// Because served families are byte-identical to a cold run over the
// union corpus (the determinism contract, DESIGN.md §9), the families
// digest of every committed record is *replayable*: a cold `profam` run
// over the same inputs must reproduce it, and `cmd/ledgercheck` plus
// the `./ci.sh e2e` gate enforce exactly that.
//
// Crash safety is on the read side: a process killed mid-append leaves
// at most one truncated trailing line, which Open tolerates — complete
// records are kept, the partial tail is discarded (and reported via
// Recovered), and the file is truncated back to the last good byte so
// subsequent appends produce a valid log again. Every append is
// fsynced; at one record per epoch the cost is noise.
package ledger

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"profam"
	"profam/internal/report"
	"profam/internal/seq"
)

// Epoch outcome values for Record.Status.
const (
	StatusCommitted = "committed"
	StatusFailed    = "failed"
	StatusAborted   = "aborted"
)

// Record is one epoch's provenance entry. All fields are plain data so
// the JSONL encoding round-trips byte-identically (map keys are emitted
// sorted by encoding/json).
type Record struct {
	// Epoch is the epoch number this record describes: the committed
	// epoch for StatusCommitted, the epoch the attempt would have
	// committed for failed/aborted records (so retries repeat a number).
	Epoch int `json:"epoch"`
	// Status is committed, failed or aborted.
	Status string `json:"status"`
	// UnixNanos is the wall-clock commit (or failure) instant.
	UnixNanos int64 `json:"unix_nanos"`
	// Fingerprint is the canonical family-affecting config fingerprint
	// every epoch of one corpus must share (profam.Config.Fingerprint).
	Fingerprint string `json:"config_fingerprint"`
	// PairBackend is the promising-pair backend (gst, esa or sparse).
	PairBackend string `json:"pair_backend"`
	// Submissions and NewSequences count the batch that rode into this
	// epoch; CorpusSize is the union corpus after it.
	Submissions  int `json:"submissions"`
	NewSequences int `json:"new_sequences"`
	CorpusSize   int `json:"corpus_size"`
	// InputDigest is NamesDigest over the union corpus's sequence names
	// in ID (arrival) order — it pins exactly which inputs, in which
	// order, produced the output.
	InputDigest string `json:"input_digest,omitempty"`
	// Families is the number of served families; FamiliesDigest is
	// FamiliesDigest over the canonical family listing, reproducible by
	// a cold profam run over the same corpus.
	Families       int    `json:"families"`
	FamiliesDigest string `json:"families_digest,omitempty"`
	// Demotions and ComponentsCached are the epoch's incremental-path
	// counters (pipeline_epoch_demotions, pipeline_components_cached).
	Demotions        int64 `json:"demotions"`
	ComponentsCached int64 `json:"components_cached"`
	// PhaseSeconds maps phase name to its critical-path duration (the
	// max per-rank total, metrics.PhaseTiming.MaxSeconds).
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
	// HeapPeakBytes is the rank-0 pipeline_heap_peak_bytes probe.
	HeapPeakBytes int64 `json:"heap_peak_bytes,omitempty"`
	// BuildSeconds is the epoch's wall-clock build time.
	BuildSeconds float64 `json:"build_seconds"`
	// Error carries the failure for failed/aborted records.
	Error string `json:"error,omitempty"`
}

// Ledger is the append-only record log. A Ledger opened with an empty
// path is memory-only (the daemon without -ledger still serves
// /v1/epochs); otherwise records persist as one JSON line each.
// All methods are safe for concurrent use: HTTP readers list records
// while the batcher appends.
type Ledger struct {
	mu        sync.RWMutex
	path      string
	f         *os.File
	recs      []Record
	recovered bool
}

// NewMemory returns a memory-only ledger.
func NewMemory() *Ledger { return &Ledger{} }

// Open loads (or creates) the ledger at path, replaying every complete
// record into memory. A truncated trailing line — the signature of a
// crash mid-append — is tolerated: complete records are kept and the
// file is truncated back to the end of the last good line so the next
// Append continues a valid log. An empty path returns a memory-only
// ledger.
func Open(path string) (*Ledger, error) {
	if path == "" {
		return NewMemory(), nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Ledger{path: path, f: f}
	good := int64(0)
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadBytes('\n')
		complete := err == nil
		if len(bytes.TrimSpace(line)) > 0 {
			var rec Record
			if complete && json.Unmarshal(line, &rec) == nil {
				l.recs = append(l.recs, rec)
				good += int64(len(line))
			} else {
				// Partial or corrupt tail: drop it. Anything after a bad
				// line is unreachable state from the same torn write.
				l.recovered = true
				break
			}
		} else if complete {
			good += int64(len(line))
		}
		if err != nil {
			if err != io.EOF {
				f.Close()
				return nil, err
			}
			break
		}
	}
	if l.recovered {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Recovered reports whether Open found (and discarded) a truncated
// trailing line.
func (l *Ledger) Recovered() bool {
	if l == nil {
		return false
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.recovered
}

// Path returns the backing file path ("" for memory-only ledgers).
func (l *Ledger) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// Append writes one record: a single JSON line, fsynced before the
// in-memory view exposes it, so a record visible over /v1/epochs is
// already durable. Append on a nil ledger is a no-op.
func (l *Ledger) Append(rec Record) error {
	if l == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		if _, err := l.f.Write(line); err != nil {
			return err
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	l.recs = append(l.recs, rec)
	return nil
}

// Len returns the number of records.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.recs)
}

// Records returns a copy of every record in append order.
func (l *Ledger) Records() []Record {
	if l == nil {
		return nil
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Record(nil), l.recs...)
}

// Epoch returns the latest record for the given epoch number (a failed
// attempt and its successful retry share a number; the retry wins).
func (l *Ledger) Epoch(n int) (Record, bool) {
	if l == nil {
		return Record{}, false
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	for i := len(l.recs) - 1; i >= 0; i-- {
		if l.recs[i].Epoch == n {
			return l.recs[i], true
		}
	}
	return Record{}, false
}

// Close releases the backing file. Further appends stay memory-only.
func (l *Ledger) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// FamiliesDigest is the replayable output digest: SHA-256 over the
// canonical family listing (the exact bytes report.Families writes —
// the same bytes `profam -out` emits and `GET /v1/families?format=text`
// serves). Byte-identical families ⇒ identical digest, so a ledger
// record's digest must match a cold run over the recorded inputs.
func FamiliesDigest(set *seq.Set, res *profam.Result) (string, error) {
	h := sha256.New()
	if err := report.Families(h, set, res); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// FamiliesTextDigest digests an already-rendered canonical family
// listing (e.g. a served or cold `families.txt` artifact) the same way
// FamiliesDigest does.
func FamiliesTextDigest(text []byte) string {
	sum := sha256.Sum256(text)
	return hex.EncodeToString(sum[:])
}

// NamesDigest digests a sequence-name list in order, length-prefixing
// each name so concatenation cannot collide ("ab","c" ≠ "a","bc").
func NamesDigest(names []string) string {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(names)))
	h.Write(n[:])
	for _, name := range names {
		binary.LittleEndian.PutUint64(n[:], uint64(len(name)))
		h.Write(n[:])
		io.WriteString(h, name)
	}
	return hex.EncodeToString(h.Sum(nil))
}
