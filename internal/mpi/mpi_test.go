package mpi

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

func TestInprocRing(t *testing.T) {
	const p = 5
	err := Run(p, func(c *Comm) {
		next := (c.Rank() + 1) % p
		prev := (c.Rank() + p - 1) % p
		c.Send(next, 7, c.Rank()*10)
		m := c.Recv(prev, 7)
		if m.From != prev || m.Data.(int) != prev*10 {
			panic(fmt.Sprintf("rank %d got %+v", c.Rank(), m))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInprocWildcardAndTagFiltering(t *testing.T) {
	err := Run(3, func(c *Comm) {
		switch c.Rank() {
		case 0:
			// Receive tag 2 first even though tag 1 arrives first.
			a := c.Recv(Any, 2)
			b := c.Recv(Any, 1)
			if a.Data.(string) != "two" || b.Data.(string) != "one" {
				panic(fmt.Sprintf("tag filter broken: %v %v", a, b))
			}
			// Source filter.
			m := c.Recv(2, Any)
			if m.From != 2 {
				panic("source filter broken")
			}
			c.Recv(1, Any)
		case 1:
			c.Send(0, 1, "one")
			c.Send(0, 2, "two")
			c.Send(0, 9, "from1")
		case 2:
			c.Send(0, 9, "from2")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectives(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			err := Run(p, func(c *Comm) {
				c.Barrier()
				got := c.Bcast(0, 42).(int)
				if got != 42 {
					panic("bcast wrong")
				}
				all := c.Gather(0, c.Rank()*2)
				if c.Rank() == 0 {
					for i, v := range all {
						if v.(int) != i*2 {
							panic(fmt.Sprintf("gather[%d] = %v", i, v))
						}
					}
				} else if all != nil {
					panic("non-root gather should be nil")
				}
				sum := c.AllreduceInt64(int64(c.Rank()+1), func(a, b int64) int64 { return a + b })
				want := int64(p * (p + 1) / 2)
				if sum != want {
					panic(fmt.Sprintf("allreduce = %d, want %d", sum, want))
				}
				mx := c.MaxFloat64(float64(c.Rank()))
				if mx != float64(p-1) {
					panic(fmt.Sprintf("max = %v", mx))
				}
				c.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSendToSelf(t *testing.T) {
	// Self-sends must work on every transport (the TCP mesh short-cuts
	// them through the local mailbox).
	check := func(c *Comm) {
		c.Send(c.Rank(), 5, "self")
		m := c.Recv(c.Rank(), 5)
		if m.Data.(string) != "self" || m.From != c.Rank() {
			panic(fmt.Sprintf("self message corrupted: %+v", m))
		}
	}
	if err := Run(2, check); err != nil {
		t.Fatalf("inproc: %v", err)
	}
	if _, err := RunSim(2, BlueGeneLike(), check); err != nil {
		t.Fatalf("simtime: %v", err)
	}
	RegisterType("")
	if err := RunTCP(2, nextPorts(), check); err != nil {
		t.Fatalf("tcp: %v", err)
	}
}

func TestAllGatherAndScatter(t *testing.T) {
	for _, p := range []int{1, 3, 6} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			err := Run(p, func(c *Comm) {
				all := c.AllGather(c.Rank() * 3)
				if len(all) != p {
					panic(fmt.Sprintf("allgather returned %d entries", len(all)))
				}
				for i, v := range all {
					if v.(int) != i*3 {
						panic(fmt.Sprintf("allgather[%d] = %v", i, v))
					}
				}
				var parts []any
				if c.Rank() == 0 {
					for i := 0; i < p; i++ {
						parts = append(parts, fmt.Sprintf("part-%d", i))
					}
				}
				mine := c.Scatter(0, parts)
				if mine.(string) != fmt.Sprintf("part-%d", c.Rank()) {
					panic(fmt.Sprintf("scatter gave %v to rank %d", mine, c.Rank()))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestScatterValidation(t *testing.T) {
	err := Run(1, func(c *Comm) {
		defer func() {
			if recover() == nil {
				panic("Scatter with wrong part count did not panic")
			}
		}()
		c.Scatter(0, []any{1, 2, 3})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInprocPanicPropagates(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			panic("boom")
		}
		c.Recv(Any, 5) // would deadlock without abort propagation
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") && !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("expected panic error, got %v", err)
	}
}

func TestSendValidation(t *testing.T) {
	err := Run(1, func(c *Comm) {
		defer func() {
			if recover() == nil {
				panic("Send to bad rank did not panic")
			}
			// Negative user tag must also panic.
			defer func() {
				if recover() == nil {
					panic("negative tag did not panic")
				}
			}()
			c.Send(0, -3, nil)
		}()
		c.Send(7, 0, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimAdvanceMakespan(t *testing.T) {
	mk, err := RunSim(3, CostModel{}, func(c *Comm) {
		c.Advance(float64(c.Rank()) * 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if mk != 4 {
		t.Errorf("makespan = %v, want 4", mk)
	}
}

func TestSimCommunicationCost(t *testing.T) {
	cm := CostModel{SendOverhead: 1, RecvOverhead: 2, Latency: 10, SecPerByte: 0.5}
	mk, err := RunSim(2, cm, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []byte("abcd")) // 4+8 bytes => 6s bandwidth
		} else {
			m := c.Recv(0, 0)
			if string(m.Data.([]byte)) != "abcd" {
				panic("payload corrupted")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sender clock: 1 (overhead) + 6 (bytes) = 7; arrival 17; receiver
	// clock max(0,17)+2 = 19.
	if mk != 19 {
		t.Errorf("makespan = %v, want 19", mk)
	}
}

func TestSimVirtualTimeOrdering(t *testing.T) {
	// Rank 1 sends "late" after 10s of virtual work; rank 2 sends
	// "early" after 1s. Rank 0 must receive "early" first regardless of
	// real-time interleaving.
	cm := CostModel{Latency: 0.5}
	for trial := 0; trial < 20; trial++ {
		_, err := RunSim(3, cm, func(c *Comm) {
			switch c.Rank() {
			case 0:
				a := c.Recv(Any, 0)
				b := c.Recv(Any, 0)
				if a.Data.(string) != "early" || b.Data.(string) != "late" {
					panic(fmt.Sprintf("wrong order: %v then %v", a.Data, b.Data))
				}
			case 1:
				c.Advance(10)
				c.Send(0, 0, "late")
			case 2:
				c.Advance(1)
				c.Send(0, 0, "early")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		var order int64
		mk, err := RunSim(4, BlueGeneLike(), func(c *Comm) {
			rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
			if c.Rank() == 0 {
				var sig int64
				for i := 0; i < 30; i++ {
					m := c.Recv(Any, 1)
					sig = sig*31 + int64(m.From) + m.Data.(int64)
				}
				atomic.StoreInt64(&order, sig)
			} else {
				for i := 0; i < 10; i++ {
					c.Advance(rng.Float64())
					c.Send(0, 1, int64(i))
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return mk, atomic.LoadInt64(&order)
	}
	mk1, sig1 := run()
	for i := 0; i < 5; i++ {
		mk2, sig2 := run()
		if mk1 != mk2 || sig1 != sig2 {
			t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", mk1, sig1, mk2, sig2)
		}
	}
}

func TestSimDeadlockDetected(t *testing.T) {
	_, err := RunSim(2, CostModel{}, func(c *Comm) {
		c.Recv(Any, 0) // both ranks wait forever
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestSimMasterWorkerScaling(t *testing.T) {
	// 120 independent unit-cost tasks farmed out by rank 0; makespan
	// should shrink roughly linearly with worker count.
	const tasks = 120
	work := func(c *Comm) {
		p := c.Size()
		if c.Rank() == 0 {
			remaining := tasks
			next := 0
			// Seed one task per worker, then hand out on completion.
			for w := 1; w < p && next < tasks; w++ {
				c.Send(w, 0, next)
				next++
			}
			for remaining > 0 {
				m := c.Recv(Any, 1)
				remaining--
				if next < tasks {
					c.Send(m.From, 0, next)
					next++
				} else {
					c.Send(m.From, 0, -1)
				}
			}
			for w := 1; w < p; w++ {
				// Workers with no task yet still need a stop signal? No:
				// every worker got at least one task for p-1 <= tasks.
				_ = w
			}
		} else {
			for {
				m := c.Recv(0, 0)
				if m.Data.(int) < 0 {
					return
				}
				c.Advance(1)
				c.Send(0, 1, m.Data)
			}
		}
	}
	t2, err := RunSim(3, BlueGeneLike(), work) // 2 workers
	if err != nil {
		t.Fatal(err)
	}
	t8, err := RunSim(9, BlueGeneLike(), work) // 8 workers
	if err != nil {
		t.Fatal(err)
	}
	speedup := t2 / t8
	if speedup < 3.5 || speedup > 4.5 {
		t.Errorf("speedup 2->8 workers = %.2f, want ~4", speedup)
	}
}

func TestSimCollectives(t *testing.T) {
	_, err := RunSim(4, BlueGeneLike(), func(c *Comm) {
		v := c.AllreduceInt64(1, func(a, b int64) int64 { return a + b })
		if v != 4 {
			panic("allreduce under sim wrong")
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimSweep(t *testing.T) {
	ts, err := SimSweep([]int{2, 3, 5}, CostModel{}, func(c *Comm) {
		c.Advance(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("got %d results", len(ts))
	}
	for _, v := range ts {
		if v != 1 {
			t.Errorf("sweep makespan = %v, want 1", v)
		}
	}
}

func TestSimPanicPropagates(t *testing.T) {
	_, err := RunSim(2, CostModel{}, func(c *Comm) {
		if c.Rank() == 1 {
			panic("sim boom")
		}
		c.Recv(Any, 0)
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

var tcpPort int32 = 42600

func nextPorts() int { return int(atomic.AddInt32(&tcpPort, 16)) - 16 }

func TestTCPRingAndCollectives(t *testing.T) {
	RegisterType("")
	RegisterType(0)
	RegisterType(int64(0))
	RegisterType(float64(0))
	const p = 3
	err := RunTCP(p, nextPorts(), func(c *Comm) {
		next := (c.Rank() + 1) % p
		prev := (c.Rank() + p - 1) % p
		c.Send(next, 3, fmt.Sprintf("hello-%d", c.Rank()))
		m := c.Recv(prev, 3)
		if m.Data.(string) != fmt.Sprintf("hello-%d", prev) {
			panic(fmt.Sprintf("rank %d ring payload %v", c.Rank(), m))
		}
		sum := c.AllreduceInt64(int64(c.Rank()), func(a, b int64) int64 { return a + b })
		if sum != 3 {
			panic(fmt.Sprintf("tcp allreduce = %d", sum))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPLargerPayloads(t *testing.T) {
	RegisterType([]int32{})
	err := RunTCP(2, nextPorts(), func(c *Comm) {
		if c.Rank() == 0 {
			data := make([]int32, 5000)
			for i := range data {
				data[i] = int32(i)
			}
			c.Send(1, 0, data)
		} else {
			m := c.Recv(0, 0)
			got := m.Data.([]int32)
			if len(got) != 5000 || got[4999] != 4999 {
				panic("large payload corrupted")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPayloadBytes(t *testing.T) {
	if payloadBytes([]byte("abcd")) != 12 {
		t.Error("[]byte size wrong")
	}
	if payloadBytes([]int32{1, 2}) != 16 {
		t.Error("[]int32 size wrong")
	}
	if payloadBytes(nil) != 8 {
		t.Error("nil size wrong")
	}
	if payloadBytes(struct{}{}) != DefaultMsgBytes {
		t.Error("default size wrong")
	}
	if payloadBytes(sizedPayload{}) != 1234 {
		t.Error("Sized interface ignored")
	}
}

type sizedPayload struct{}

func (sizedPayload) WireSize() int { return 1234 }

func BenchmarkInprocPingPong(b *testing.B) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < b.N; i++ {
				c.Send(1, 0, i)
				c.Recv(1, 1)
			}
		} else {
			for i := 0; i < b.N; i++ {
				c.Recv(0, 0)
				c.Send(0, 1, i)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSimPingPong(b *testing.B) {
	_, err := RunSim(2, BlueGeneLike(), func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < b.N; i++ {
				c.Send(1, 0, i)
				c.Recv(1, 1)
			}
		} else {
			for i := 0; i < b.N; i++ {
				c.Recv(0, 0)
				c.Send(0, 1, i)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func TestCommStats(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []byte("abcd")) // 12 bytes
			c.Recv(1, 1)
		} else {
			c.Recv(0, 0)
			c.Send(0, 1, nil)
		}
		c.Barrier()
		st := c.Stats()
		if st.MsgsSent < 2 || st.MsgsRecv < 2 {
			panic(fmt.Sprintf("rank %d stats too low: %+v", c.Rank(), st))
		}
		if c.Rank() == 0 && st.BytesSent < 12 {
			panic(fmt.Sprintf("BytesSent = %d", st.BytesSent))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
