package mpi

import (
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
)

// WireFormat selects how the TCP transport encodes hot payloads. The
// in-memory transports are unaffected (no serialization happens there).
type WireFormat int32

const (
	// WireBinary (the default) sends payloads implementing BinaryPayload
	// as compact length-framed binary blobs riding inside the gob
	// stream; everything else still goes through gob.
	WireBinary WireFormat = iota
	// WireGob forces plain gob encoding for every payload — the escape
	// hatch behind the -wire=gob flag, and the baseline for byte-volume
	// comparisons.
	WireGob
)

var wireFormat atomic.Int32

// SetWireFormat switches the process-wide TCP payload encoding. Both
// formats decode transparently on the receiving side regardless of the
// sender's setting, so mixed meshes interoperate; the choice never
// changes message contents, only their encoded size.
func SetWireFormat(f WireFormat) { wireFormat.Store(int32(f)) }

// CurrentWireFormat returns the active TCP payload encoding.
func CurrentWireFormat() WireFormat { return WireFormat(wireFormat.Load()) }

// BinaryPayload is implemented by hot message payloads that can encode
// themselves into a compact binary frame (varint/delta encoded), letting
// the TCP transport bypass gob's per-field framing. AppendBinary must
// append a self-delimiting encoding to buf and return the extended
// slice; a decoder for the same kind must be registered with
// RegisterBinaryDecoder on every participating process.
type BinaryPayload interface {
	WireKind() byte
	AppendBinary(buf []byte) []byte
}

// rawFrame carries a binary-encoded payload through the gob envelope.
// Wrapping keeps the existing stream framing (gob decoders buffer ahead,
// so raw bytes cannot be interleaved on the same connection) while the
// body bypasses per-field reflection entirely.
type rawFrame struct {
	Kind byte
	Body []byte
}

func init() { gob.Register(rawFrame{}) }

var (
	binDecMu  sync.RWMutex
	binDecode = map[byte]func([]byte) (any, error){}
)

// RegisterBinaryDecoder installs the decoder for a BinaryPayload kind.
// Like gob.Register it is meant for setup time; re-registering a kind
// replaces the decoder.
func RegisterBinaryDecoder(kind byte, dec func([]byte) (any, error)) {
	binDecMu.Lock()
	binDecode[kind] = dec
	binDecMu.Unlock()
}

func decodeBinaryFrame(f rawFrame) (any, error) {
	binDecMu.RLock()
	dec := binDecode[f.Kind]
	binDecMu.RUnlock()
	if dec == nil {
		return nil, fmt.Errorf("mpi: no binary decoder registered for wire kind 0x%02x", f.Kind)
	}
	return dec(f.Body)
}

// wireBufPool recycles encode scratch buffers so steady-state sends do
// not allocate.
var wireBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}
