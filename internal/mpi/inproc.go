package mpi

import (
	"fmt"
	"sync"
	"time"
)

// inprocJob is the shared state of an in-process job: one mailbox per
// rank, each guarded by its own lock/condition.
type inprocJob struct {
	n     int
	start time.Time
	boxes []*mailbox
}

type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []Message
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// match returns the index of the first message matching from/tag, or -1.
func matchIdx(msgs []Message, from, tag int) int {
	for i, m := range msgs {
		if (from == Any || m.From == from) && (tag == Any || m.Tag == tag) {
			return i
		}
	}
	return -1
}

func (b *mailbox) put(m Message) {
	b.mu.Lock()
	b.msgs = append(b.msgs, m)
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *mailbox) take(from, tag int) Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for _, m := range b.msgs {
			if m.Tag == abortTag {
				// A peer rank panicked; propagate so this rank unwinds
				// too instead of blocking forever.
				panic(fmt.Sprintf("mpi: job aborted by rank %d: %v", m.From, m.Data))
			}
		}
		if i := matchIdx(b.msgs, from, tag); i >= 0 {
			m := b.msgs[i]
			b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
			return m
		}
		b.cond.Wait()
	}
}

type inprocTransport struct {
	job *inprocJob
	r   int
}

func (t *inprocTransport) rank() int    { return t.r }
func (t *inprocTransport) size() int    { return t.job.n }
func (t *inprocTransport) name() string { return "inproc" }
func (t *inprocTransport) send(to, tag int, data any) int {
	t.job.boxes[to].put(Message{From: t.r, Tag: tag, Data: data})
	return payloadBytes(data)
}
func (t *inprocTransport) recv(from, tag int) Message {
	return t.job.boxes[t.r].take(from, tag)
}
func (t *inprocTransport) advance(float64) {}
func (t *inprocTransport) time() float64 {
	return time.Since(t.job.start).Seconds()
}

// Run executes f on p ranks as goroutines connected by in-memory
// mailboxes, blocking until all ranks return. A panic in any rank is
// recovered and reported as an error (other ranks may then block forever
// waiting for messages, so Run aborts the job by returning the first
// error once all surviving ranks finish or the job is poisoned; in
// practice rank code should not panic).
func Run(p int, f func(c *Comm)) error {
	if p < 1 {
		return fmt.Errorf("mpi: need at least 1 rank, got %d", p)
	}
	job := &inprocJob{n: p, start: time.Now(), boxes: make([]*mailbox, p)}
	for i := range job.boxes {
		job.boxes[i] = newMailbox()
	}
	errs := make(chan error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					errs <- fmt.Errorf("mpi: rank %d panicked: %v", r, e)
					// Poison every mailbox so blocked ranks wake with a
					// recognizable failure instead of deadlocking.
					for _, b := range job.boxes {
						b.put(Message{From: r, Tag: abortTag, Data: e})
					}
				}
			}()
			f(&Comm{tr: &inprocTransport{job: job, r: r}})
		}(r)
	}
	wg.Wait()
	close(errs)
	return <-errs // nil if empty
}

// abortTag poisons mailboxes after a rank panic. It lives in the
// collective band but below any tag a realistic job would reach.
const abortTag = -1 << 30
