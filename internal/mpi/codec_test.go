package mpi

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// codecPayload is a toy BinaryPayload: a slice of small deltas that gob
// would spend field headers on.
type codecPayload struct {
	Vals []int64
}

func (p codecPayload) WireKind() byte { return 0xC7 }

func (p codecPayload) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p.Vals)))
	for _, v := range p.Vals {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return buf
}

func decodeCodecPayload(body []byte) (any, error) {
	n, k := binary.Uvarint(body)
	if k <= 0 {
		return nil, fmt.Errorf("bad count")
	}
	body = body[k:]
	p := codecPayload{Vals: make([]int64, n)}
	for i := range p.Vals {
		v, k := binary.Uvarint(body)
		if k <= 0 {
			return nil, fmt.Errorf("bad element")
		}
		body = body[k:]
		p.Vals[i] = int64(v)
	}
	return p, nil
}

// TestBinaryFrameTCPRoundTrip: a BinaryPayload sent over TCP under
// WireBinary arrives decoded back to the original value, WireGob
// bypasses the codec entirely, and the binary form is measurably
// smaller on the wire.
func TestBinaryFrameTCPRoundTrip(t *testing.T) {
	RegisterType(codecPayload{})
	RegisterBinaryDecoder(codecPayload{}.WireKind(), decodeCodecPayload)
	defer SetWireFormat(WireBinary)

	vals := make([]int64, 256)
	for i := range vals {
		vals[i] = int64(i % 7)
	}
	want := fmt.Sprint(codecPayload{Vals: vals})

	sent := map[WireFormat]int64{}
	for _, wf := range []WireFormat{WireGob, WireBinary} {
		SetWireFormat(wf)
		var bytesSent int64
		err := RunTCP(2, nextPorts(), func(c *Comm) {
			if c.Rank() == 0 {
				for i := 0; i < 4; i++ {
					c.Send(1, 5, codecPayload{Vals: vals})
				}
				bytesSent = c.Stats().BytesSent
				return
			}
			for i := 0; i < 4; i++ {
				m := c.Recv(0, 5)
				if got := fmt.Sprint(m.Data); got != want {
					panic(fmt.Sprintf("round trip mismatch under format %d: %s", wf, got))
				}
				if m.Data.(codecPayload).Vals == nil {
					panic("payload lost its slice")
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		sent[wf] = bytesSent
	}
	t.Logf("wire bytes: gob=%d binary=%d", sent[WireGob], sent[WireBinary])
	if sent[WireBinary] >= sent[WireGob] {
		t.Errorf("binary frames not smaller: gob=%d binary=%d", sent[WireGob], sent[WireBinary])
	}
}

// TestBinaryFrameUnregisteredKind: a frame with no registered decoder
// must produce a diagnosable error (the readLoop turns it into a
// mailbox poison), never a silent nil payload.
func TestBinaryFrameUnregisteredKind(t *testing.T) {
	if v, err := decodeBinaryFrame(rawFrame{Kind: 0xC9, Body: []byte{1, 2}}); err == nil {
		t.Fatalf("unregistered kind decoded to %v", v)
	}
	RegisterBinaryDecoder(0xC9, func(body []byte) (any, error) {
		return nil, fmt.Errorf("kind 0xC9 refuses %d bytes", len(body))
	})
	if _, err := decodeBinaryFrame(rawFrame{Kind: 0xC9, Body: []byte{1, 2}}); err == nil {
		t.Fatal("decoder error was swallowed")
	}
}
