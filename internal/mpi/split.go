package mpi

import (
	"encoding/gob"
	"fmt"
)

// Sub-communicator support. Split carves a communicator into disjoint
// rank groups that run independent protocols concurrently over the same
// underlying transport — the mechanism behind sharded multi-master
// execution, where each shard group runs its own master-worker phase at
// the same time as every other group.
//
// Isolation is by tag translation rather than separate wires: every
// group owns a reserved negative tag band, a sub-communicator encodes
// each tag (user or collective) into its band before handing it to the
// parent transport, and decodes on receipt. Because message matching on
// all three transports is per (from, tag), messages from one group can
// never satisfy a receive posted in another, including RecvAny.

// splitColors is the membership-exchange payload of Split, indexed by
// parent rank. It is pre-registered for the TCP transport so Split
// works there without caller-side type registration.
type splitColors []int32

func init() { gob.Register(splitColors(nil)) }

// exchangeColors is an AllGather of every rank's color, done with a
// concrete payload type rather than the generic []any collectives (whose
// assembled slice is not gob-transferable over TCP).
func (c *Comm) exchangeColors(color int) splitColors {
	tag := c.nextCollTag()
	p := c.Size()
	if c.Rank() == 0 {
		colors := make(splitColors, p)
		colors[0] = int32(color)
		for i := 1; i < p; i++ {
			m := c.recv(Any, tag)
			colors[m.From] = m.Data.(splitColors)[0]
		}
		for i := 1; i < p; i++ {
			c.send(i, tag, colors)
		}
		return colors
	}
	c.send(0, tag, splitColors{int32(color)})
	return c.recv(0, tag).Data.(splitColors)
}

// splitCtxSpan is the width of one group's tag band. User and collective
// tags must stay within ±splitCtxSpan/2 of zero — far beyond anything a
// realistic protocol consumes.
const splitCtxSpan = 1 << 20

// maxSplitColor keeps every encoded tag above abortTag, so the poison
// tag remains unmistakable.
const maxSplitColor = (1 << 29) / splitCtxSpan

// splitTransport presents a rank group of a parent transport as a
// compact transport of its own: sub-ranks renumbered 0..n-1 in parent
// rank order, tags translated into the group's band.
type splitTransport struct {
	parent transport
	ctx    int         // tag-band context: color + 1
	sub    int         // this rank's position within the group
	group  []int       // sub rank -> parent rank, ascending
	subOf  map[int]int // parent rank -> sub rank
}

// encodeTag maps a sub-communicator tag into the group's reserved band.
// Tags in (-splitCtxSpan/2, splitCtxSpan/2) map to distinct values in
// (-(ctx+1)*splitCtxSpan, -ctx*splitCtxSpan], so bands of different
// groups never overlap each other or the parent's own tags.
func (t *splitTransport) encodeTag(tag int) int {
	if tag <= -splitCtxSpan/2 || tag >= splitCtxSpan/2 {
		panic(fmt.Sprintf("mpi: split tag %d outside ±%d", tag, splitCtxSpan/2))
	}
	return -(t.ctx*splitCtxSpan + splitCtxSpan/2 + tag)
}

func (t *splitTransport) decodeTag(enc int) int {
	return -enc - t.ctx*splitCtxSpan - splitCtxSpan/2
}

func (t *splitTransport) rank() int    { return t.sub }
func (t *splitTransport) size() int    { return len(t.group) }
func (t *splitTransport) name() string { return t.parent.name() }

func (t *splitTransport) send(to, tag int, data any) int {
	return t.parent.send(t.group[to], t.encodeTag(tag), data)
}

func (t *splitTransport) recv(from, tag int) Message {
	if tag == Any {
		panic("mpi: split communicators do not support the tag wildcard; receive on a concrete tag")
	}
	pfrom := Any
	if from != Any {
		pfrom = t.group[from]
	}
	m := t.parent.recv(pfrom, t.encodeTag(tag))
	m.Tag = t.decodeTag(m.Tag)
	sub, ok := t.subOf[m.From]
	if !ok {
		panic(fmt.Sprintf("mpi: split received message from parent rank %d outside its group", m.From))
	}
	m.From = sub
	return m
}

func (t *splitTransport) advance(seconds float64) { t.parent.advance(seconds) }
func (t *splitTransport) time() float64           { return t.parent.time() }

// Split partitions the communicator into disjoint sub-communicators:
// ranks passing the same color land in the same group, renumbered
// 0..n-1 by ascending parent rank. Every rank of c must call Split
// collectively with a color in [0, maxSplitColor).
//
// The returned communicator shares the parent's transport (and, under
// simtime, its virtual clock) but is otherwise independent: its own
// rank/size, its own collective sequence, its own stats, and complete
// message isolation from the parent and from sibling groups — a Recv or
// RecvAny posted on one group can only be satisfied by a Send from the
// same group. Point-to-point and collective traffic on the parent may
// interleave freely with traffic on its children.
//
// Nested splits are not supported; attach metrics and tracers to the
// child explicitly if its traffic should be accounted separately.
func (c *Comm) Split(color int) *Comm {
	if color < 0 || color >= maxSplitColor {
		panic(fmt.Sprintf("mpi: Split color %d outside [0, %d)", color, maxSplitColor))
	}
	if _, nested := c.tr.(*splitTransport); nested {
		panic("mpi: nested Split is not supported")
	}
	colors := c.exchangeColors(color)
	var group []int
	for r, v := range colors {
		if int(v) == color {
			group = append(group, r)
		}
	}
	subOf := make(map[int]int, len(group))
	sub := -1
	for i, r := range group {
		subOf[r] = i
		if r == c.Rank() {
			sub = i
		}
	}
	return &Comm{tr: &splitTransport{
		parent: c.tr,
		ctx:    color + 1,
		sub:    sub,
		group:  group,
		subOf:  subOf,
	}}
}
