package mpi

import (
	"fmt"
	"testing"
)

// TestRecvAnyInprocCausalOrder: on the in-process transport, RecvAny
// serves the merged delivery queue in arrival order. Causality pins the
// order here: rank 2 only sends after receiving rank 1's go-ahead, and
// rank 1 posted its message to rank 0 before that go-ahead, so rank 0
// must see rank 1 first.
func TestRecvAnyInprocCausalOrder(t *testing.T) {
	err := Run(3, func(c *Comm) {
		switch c.Rank() {
		case 0:
			first := c.RecvAny(7)
			second := c.RecvAny(7)
			if first.From != 1 || second.From != 2 {
				panic(fmt.Sprintf("arrival order violated: got %d then %d", first.From, second.From))
			}
		case 1:
			c.Send(0, 7, "early")
			c.Send(2, 9, "go")
		case 2:
			c.Recv(1, 9)
			c.Send(0, 7, "late")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvAnySimEarliestArrival: under the simulator, RecvAny grants the
// message with the earliest virtual arrival, regardless of which rank
// sent first. Rank 1's link is made 5× slower than rank 2's, so even
// though both send at virtual time zero, rank 2's message lands first.
func TestRecvAnySimEarliestArrival(t *testing.T) {
	cm := CostModel{
		SendOverhead: 1e-6,
		RecvOverhead: 1e-6,
		RankLatency: func(from, to int) float64 {
			if from == 1 {
				return 5e-3
			}
			return 1e-3
		},
	}
	_, err := RunSim(3, cm, func(c *Comm) {
		switch c.Rank() {
		case 0:
			first := c.RecvAny(7)
			second := c.RecvAny(7)
			if first.From != 2 || second.From != 1 {
				panic(fmt.Sprintf("virtual arrival order violated: got %d then %d", first.From, second.From))
			}
		default:
			c.Send(0, 7, c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvAnySimTieBreak: equal virtual arrivals are broken by sender
// rank (then send sequence), keeping the simulator deterministic.
func TestRecvAnySimTieBreak(t *testing.T) {
	cm := CostModel{SendOverhead: 1e-6, RecvOverhead: 1e-6, Latency: 1e-3}
	for trial := 0; trial < 5; trial++ {
		_, err := RunSim(4, cm, func(c *Comm) {
			if c.Rank() == 0 {
				for want := 1; want <= 3; want++ {
					m := c.RecvAny(7)
					if m.From != want {
						panic(fmt.Sprintf("tie-break violated: want rank %d, got %d", want, m.From))
					}
				}
				return
			}
			c.Send(0, 7, c.Rank())
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecvAnyTCP: over sockets the cross-sender interleaving is up to
// the network, but RecvAny must still deliver every message exactly once
// with per-sender FIFO order intact.
func TestRecvAnyTCP(t *testing.T) {
	RegisterType(0)
	const p, per = 3, 8
	err := RunTCP(p, nextPorts(), func(c *Comm) {
		if c.Rank() != 0 {
			for i := 0; i < per; i++ {
				c.Send(0, 7, c.Rank()*100+i)
			}
			return
		}
		next := map[int]int{}
		for i := 0; i < (p-1)*per; i++ {
			m := c.RecvAny(7)
			want := m.From*100 + next[m.From]
			if m.Data.(int) != want {
				panic(fmt.Sprintf("per-sender FIFO violated: from %d got %d want %d", m.From, m.Data, want))
			}
			next[m.From]++
		}
		for from, n := range next {
			if n != per {
				panic(fmt.Sprintf("rank %d delivered %d of %d messages", from, n, per))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
