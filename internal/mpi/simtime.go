package mpi

import (
	"fmt"
	"math"
	"sync"
)

// CostModel parameterises the virtual machine's communication costs, in
// the style of the LogP model: a fixed per-message send overhead, a
// per-byte bandwidth term, a network latency added to the arrival time,
// and a fixed receive overhead.
type CostModel struct {
	SendOverhead float64 // seconds charged to the sender per message (o_s)
	RecvOverhead float64 // seconds charged to the receiver per message (o_r)
	Latency      float64 // seconds of network transit (L)
	SecPerByte   float64 // inverse bandwidth (1/G)

	// RankLatency, when non-nil, replaces Latency per (from, to) link.
	// It models heterogeneous networks — e.g. adversarially permuted
	// per-rank delays when testing that results are independent of
	// message arrival order.
	RankLatency func(from, to int) float64
}

// latency returns the transit time for a message from rank `from` to
// rank `to`.
func (cm CostModel) latency(from, to int) float64 {
	if cm.RankLatency != nil {
		return cm.RankLatency(from, to)
	}
	return cm.Latency
}

// BlueGeneLike returns a cost model loosely shaped on a 2008-era
// BlueGene/L torus: several-microsecond message overheads, ~175 MB/s
// per-link bandwidth. Only the ratios matter for curve shapes.
func BlueGeneLike() CostModel {
	return CostModel{
		SendOverhead: 3e-6,
		RecvOverhead: 3e-6,
		Latency:      4e-6,
		SecPerByte:   1.0 / 175e6,
	}
}

const (
	simRunning = iota
	simParked
	simDone
)

type simMsg struct {
	Message
	arrival float64
	seq     uint64 // per-sender sequence, for deterministic tie-breaks
}

// simJob is the discrete-event scheduler shared by all ranks.
//
// Invariant: effects (message receipt) are executed in nondecreasing
// virtual-time order. A parked rank may complete its Recv only when no
// rank is running (so every already-caused send has been delivered) and
// it holds the globally smallest event time among grantable ranks.
//
// Scheduling is centralized in dispatch(), which runs whenever the
// last running rank parks or finishes and wakes exactly one rank (the
// one with the minimum event time) through its private condition
// variable — avoiding the O(p²) thundering herd of a shared broadcast.
type simJob struct {
	mu sync.Mutex
	cm CostModel

	n        int
	clock    []float64
	state    []int
	wantFrom []int
	wantTag  []int
	granted  []bool
	conds    []*sync.Cond
	boxes    [][]simMsg
	sendSeq  []uint64
	running  int
	done     int
	aborted  error
}

func newSimJob(p int, cm CostModel) *simJob {
	j := &simJob{
		cm:       cm,
		n:        p,
		clock:    make([]float64, p),
		state:    make([]int, p),
		wantFrom: make([]int, p),
		wantTag:  make([]int, p),
		granted:  make([]bool, p),
		conds:    make([]*sync.Cond, p),
		boxes:    make([][]simMsg, p),
		sendSeq:  make([]uint64, p),
		running:  p,
	}
	for r := range j.conds {
		j.conds[r] = sync.NewCond(&j.mu)
	}
	return j
}

// bestMatch returns the index of the matching message with the smallest
// (arrival, from, seq) key, or -1.
func (j *simJob) bestMatch(r int) int {
	from, tag := j.wantFrom[r], j.wantTag[r]
	best := -1
	for i, m := range j.boxes[r] {
		if (from != Any && m.From != from) || (tag != Any && m.Tag != tag) {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := j.boxes[r][best]
		if m.arrival < b.arrival ||
			(m.arrival == b.arrival && (m.From < b.From ||
				(m.From == b.From && m.seq < b.seq))) {
			best = i
		}
	}
	return best
}

// eventTime returns rank r's grant time and whether r has a matching
// message.
func (j *simJob) eventTime(r int) (float64, bool) {
	i := j.bestMatch(r)
	if i < 0 {
		return 0, false
	}
	return math.Max(j.clock[r], j.boxes[r][i].arrival), true
}

// dispatch grants the parked rank with the minimum event time, when no
// rank is running. Must be called with j.mu held.
func (j *simJob) dispatch() {
	if j.running > 0 || j.aborted != nil {
		return
	}
	best := -1
	var bestT float64
	anyParked := false
	for r := 0; r < j.n; r++ {
		if j.state[r] != simParked || j.granted[r] {
			continue
		}
		anyParked = true
		t, ok := j.eventTime(r)
		if !ok {
			continue
		}
		if best < 0 || t < bestT {
			best, bestT = r, t
		}
	}
	if best >= 0 {
		j.granted[best] = true
		j.conds[best].Signal()
		return
	}
	if anyParked && j.done < j.n {
		j.aborted = fmt.Errorf("mpi: simtime deadlock: all ranks blocked in Recv with no matching messages")
		j.wakeAll()
	}
}

func (j *simJob) wakeAll() {
	for _, c := range j.conds {
		c.Signal()
	}
}

type simTransport struct {
	job *simJob
	r   int
}

func (t *simTransport) rank() int    { return t.r }
func (t *simTransport) size() int    { return t.job.n }
func (t *simTransport) name() string { return "sim" }

func (t *simTransport) advance(seconds float64) {
	if seconds < 0 {
		panic("mpi: Advance with negative seconds")
	}
	j := t.job
	j.mu.Lock()
	j.clock[t.r] += seconds
	j.mu.Unlock()
}

func (t *simTransport) time() float64 {
	j := t.job
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.clock[t.r]
}

func (t *simTransport) send(to, tag int, data any) int {
	j := t.job
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.aborted != nil {
		panic(j.aborted)
	}
	nb := payloadBytes(data)
	j.clock[t.r] += j.cm.SendOverhead + float64(nb)*j.cm.SecPerByte
	j.sendSeq[t.r]++
	j.boxes[to] = append(j.boxes[to], simMsg{
		Message: Message{From: t.r, Tag: tag, Data: data},
		arrival: j.clock[t.r] + j.cm.latency(t.r, to),
		seq:     j.sendSeq[t.r],
	})
	// The sender keeps running; grants cannot legally happen until it
	// parks, so no dispatch here.
	return nb
}

func (t *simTransport) recv(from, tag int) Message {
	j := t.job
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.aborted != nil {
		panic(j.aborted)
	}
	r := t.r
	j.state[r] = simParked
	j.wantFrom[r], j.wantTag[r] = from, tag
	j.running--
	j.dispatch()
	for !j.granted[r] {
		if j.aborted != nil {
			j.state[r] = simRunning
			j.running++
			panic(j.aborted)
		}
		j.conds[r].Wait()
	}
	j.granted[r] = false
	if j.aborted != nil {
		j.state[r] = simRunning
		j.running++
		panic(j.aborted)
	}
	i := j.bestMatch(r)
	if i < 0 {
		// Cannot happen: dispatch only grants ranks with a match.
		panic("mpi: simtime granted recv without matching message")
	}
	m := j.boxes[r][i]
	j.boxes[r] = append(j.boxes[r][:i], j.boxes[r][i+1:]...)
	j.clock[r] = math.Max(j.clock[r], m.arrival) + j.cm.RecvOverhead
	j.state[r] = simRunning
	j.running++
	return m.Message
}

// finish marks rank r done (or panicked) and reschedules.
func (j *simJob) finish(r int, panicked bool, cause any) {
	j.mu.Lock()
	if panicked && j.aborted == nil {
		j.aborted = fmt.Errorf("mpi: rank %d panicked: %v", r, cause)
		j.wakeAll()
	}
	if j.state[r] == simRunning {
		j.running--
	}
	j.state[r] = simDone
	j.done++
	j.dispatch()
	j.mu.Unlock()
}

// RunSim executes f on p simulated ranks under the given cost model and
// returns the makespan: the maximum virtual clock over all ranks at the
// time they returned. Execution is deterministic for deterministic rank
// code: message effects are totally ordered by virtual time with ties
// broken by rank and send sequence.
func RunSim(p int, cm CostModel, f func(c *Comm)) (makespan float64, err error) {
	if p < 1 {
		return 0, fmt.Errorf("mpi: need at least 1 rank, got %d", p)
	}
	job := newSimJob(p, cm)
	errs := make(chan error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					job.finish(r, true, e)
					errs <- fmt.Errorf("mpi: rank %d: %v", r, e)
					return
				}
				job.finish(r, false, nil)
			}()
			f(&Comm{tr: &simTransport{job: job, r: r}})
		}(r)
	}
	wg.Wait()
	close(errs)
	for _, c := range job.clock {
		if c > makespan {
			makespan = c
		}
	}
	return makespan, <-errs
}

// SimSweep runs f for each processor count in ps and returns the
// makespans in order. It is the driver behind the paper's scaling
// figures.
func SimSweep(ps []int, cm CostModel, f func(c *Comm)) ([]float64, error) {
	out := make([]float64, len(ps))
	for i, p := range ps {
		t, err := RunSim(p, cm, f)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}
