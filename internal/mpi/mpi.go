// Package mpi is a small message-passing runtime with an MPI-like API,
// standing in for the MPI + BlueGene/L substrate of the paper.
//
// Algorithms are written once against *Comm and run unchanged on three
// transports:
//
//   - inproc: ranks are goroutines exchanging messages through in-memory
//     mailboxes. Real concurrent execution, wall-clock Time.
//   - simtime: a deterministic discrete-event simulation of a
//     distributed-memory machine. Compute is charged explicitly via
//     Advance (the caller reports machine-independent work such as DP
//     cells or tree characters) and each message costs
//     overhead + bytes/bandwidth + latency on the virtual clock. This is
//     how the repository reproduces 32–512-node scaling curves on a
//     single-CPU host.
//   - tcp: ranks are OS processes (or test goroutines) exchanging
//     gob-encoded messages over TCP sockets — the "custom RPC" route for
//     genuinely distributed runs.
//
// Fatal transport errors surface as panics inside rank code; the Run
// harnesses recover them and return an error, mirroring MPI's abort
// semantics without threading error returns through every algorithm.
package mpi

import (
	"fmt"

	"profam/internal/metrics"
	"profam/internal/trace"
)

// Any is the wildcard value for Recv's from and tag arguments.
const Any = -1

// Message is a received message.
type Message struct {
	From int
	Tag  int
	Data any

	// wire is the measured on-the-wire size in bytes when the transport
	// knows it (TCP counts the actual encoded stream); 0 means unknown
	// and the estimate from payloadBytes is used for accounting.
	wire int
}

// Sized lets a payload report its approximate wire size in bytes, which
// the simtime transport charges against bandwidth. Payloads that do not
// implement Sized are charged DefaultMsgBytes.
type Sized interface {
	WireSize() int
}

// DefaultMsgBytes is the assumed size of payloads that do not implement
// Sized.
const DefaultMsgBytes = 64

func payloadBytes(data any) int {
	if s, ok := data.(Sized); ok {
		return s.WireSize()
	}
	switch v := data.(type) {
	case nil:
		return 8
	case []byte:
		return len(v) + 8
	case string:
		return len(v) + 8
	case []int32:
		return 4*len(v) + 8
	case []int64:
		return 8*len(v) + 8
	case []uint64:
		return 8*len(v) + 8
	case []float64:
		return 8*len(v) + 8
	case int, int32, int64, uint64, float64, bool:
		return 8
	default:
		return DefaultMsgBytes
	}
}

// transport is the per-rank endpoint each Comm delegates to.
type transport interface {
	rank() int
	size() int
	name() string // transport label for metrics: inproc, sim, tcp
	// send delivers data and returns the number of bytes accounted to
	// the wire: the measured encoded size on TCP, the payloadBytes
	// estimate on the in-memory transports.
	send(to, tag int, data any) int
	recv(from, tag int) Message
	advance(seconds float64)
	time() float64
}

// CommStats counts this rank's communication volume.
type CommStats struct {
	MsgsSent  int64
	BytesSent int64
	MsgsRecv  int64
	BytesRecv int64
}

// Comm is a communicator bound to one rank of a p-rank job.
// It is used by exactly one goroutine at a time.
type Comm struct {
	tr      transport
	collSeq int
	stats   CommStats

	// Optional metric handles attached with AttachMetrics; nil-safe.
	msgsSent, bytesSent *metrics.Counter
	msgsRecv, bytesRecv *metrics.Counter

	// Optional event tracer attached with AttachTracer; nil disables.
	tracer *trace.Tracer
}

// Stats returns the communication counters accumulated so far (messages
// from collectives included).
func (c *Comm) Stats() CommStats { return c.stats }

// AttachMetrics routes this rank's communication volume — messages and
// bytes sent and received, labeled by transport — into reg. Pass the
// registry built on this rank's clock; attaching nil detaches.
func (c *Comm) AttachMetrics(reg *metrics.Registry) {
	tn := c.tr.name()
	c.msgsSent = reg.Counter(metrics.Name("mpi_msgs_sent", "transport", tn))
	c.bytesSent = reg.Counter(metrics.Name("mpi_bytes_sent", "transport", tn))
	c.msgsRecv = reg.Counter(metrics.Name("mpi_msgs_recv", "transport", tn))
	c.bytesRecv = reg.Counter(metrics.Name("mpi_bytes_recv", "transport", tn))
}

// AttachTracer routes this rank's message events — a send instant and a
// recv-wait span per message, carrying peer and byte count — into tr,
// which must be clocked by this rank's Time. Point-to-point traffic and
// collective internals alike pass through; attaching nil detaches.
func (c *Comm) AttachTracer(tr *trace.Tracer) { c.tracer = tr }

// send/recv wrap the transport with volume accounting; every Comm path
// (point-to-point and collectives) goes through them.
func (c *Comm) send(to, tag int, data any) {
	nb := int64(c.tr.send(to, tag, data))
	c.stats.MsgsSent++
	c.stats.BytesSent += nb
	c.msgsSent.Inc()
	c.bytesSent.Add(nb)
	if c.tracer != nil {
		c.tracer.Instant(trace.CatComm, "send", "to", int64(to), "bytes", nb)
	}
}

func (c *Comm) recv(from, tag int) Message {
	var t0 float64
	if c.tracer != nil {
		t0 = c.tr.time()
	}
	m := c.tr.recv(from, tag)
	nb := int64(m.wire)
	if nb == 0 {
		nb = int64(payloadBytes(m.Data))
	}
	c.stats.MsgsRecv++
	c.stats.BytesRecv += nb
	c.msgsRecv.Inc()
	c.bytesRecv.Add(nb)
	if c.tracer != nil {
		// The span covers the blocked-in-recv wait; under simtime the
		// virtual clock only moves while parked, so dur is the stall.
		c.tracer.Span(trace.CatComm, "recv", t0, c.tr.time(), "from", int64(m.From), "bytes", nb)
	}
	return m
}

// Rank returns this endpoint's rank in [0, Size).
func (c *Comm) Rank() int { return c.tr.rank() }

// Size returns the number of ranks in the job.
func (c *Comm) Size() int { return c.tr.size() }

// Send delivers data to rank `to` with the given tag (tag must be ≥ 0 for
// user messages). Ownership of reference payloads transfers to the
// receiver; the sender must not mutate them afterwards.
func (c *Comm) Send(to, tag int, data any) {
	if to < 0 || to >= c.Size() {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d (size %d)", to, c.Size()))
	}
	if tag < 0 {
		panic(fmt.Sprintf("mpi: user tags must be >= 0, got %d", tag))
	}
	c.send(to, tag, data)
}

// Recv blocks until a message matching from and tag (either may be Any)
// is available and returns it. Matching is FIFO per sender.
func (c *Comm) Recv(from, tag int) Message {
	return c.recv(from, tag)
}

// RecvAny blocks until the next message carrying tag arrives from any
// sender and returns it, serving strictly in arrival order:
//
//   - inproc/tcp: ranks share one merged delivery queue per receiver, so
//     the match is the oldest queued message with the tag, regardless of
//     sender — first to land is first served.
//   - simtime: the match is the message with the earliest virtual arrival
//     timestamp, with deterministic (sender rank, send sequence)
//     tie-breaking, so event-driven protocols replay identically.
//
// It is the building block for arrival-order master loops that service
// whichever worker is ready instead of polling ranks in order.
func (c *Comm) RecvAny(tag int) Message {
	return c.recv(Any, tag)
}

// Advance charges seconds of compute time to this rank's clock. It is a
// no-op on wall-clock transports; under simtime it is the only way
// compute becomes visible to the virtual clock.
func (c *Comm) Advance(seconds float64) { c.tr.advance(seconds) }

// Time returns the rank's current time: wall-clock seconds since job
// start for real transports, the virtual clock under simtime.
func (c *Comm) Time() float64 { return c.tr.time() }

// --- Collectives -----------------------------------------------------
//
// Collectives must be called by every rank in the same order. Each call
// consumes one tag from the reserved negative band, derived from a
// per-communicator sequence number so different collectives never
// cross-talk.

func (c *Comm) nextCollTag() int {
	c.collSeq++
	return -1 - c.collSeq // start at -2: -1 is the Any wildcard
}

// Barrier blocks until every rank has entered the barrier.
func (c *Comm) Barrier() {
	tag := c.nextCollTag()
	root := 0
	if c.Rank() == root {
		for i := 1; i < c.Size(); i++ {
			c.recv(Any, tag)
		}
		for i := 1; i < c.Size(); i++ {
			c.send(i, tag, nil)
		}
	} else {
		c.send(root, tag, nil)
		c.recv(root, tag)
	}
}

// Bcast distributes root's data to every rank; every rank returns it.
// Non-root callers pass nil (their argument is ignored).
func (c *Comm) Bcast(root int, data any) any {
	tag := c.nextCollTag()
	if c.Rank() == root {
		for i := 0; i < c.Size(); i++ {
			if i != root {
				c.send(i, tag, data)
			}
		}
		return data
	}
	return c.recv(root, tag).Data
}

// Gather collects each rank's data at root, indexed by rank. Non-root
// callers receive nil.
func (c *Comm) Gather(root int, data any) []any {
	tag := c.nextCollTag()
	if c.Rank() == root {
		out := make([]any, c.Size())
		out[root] = data
		for i := 1; i < c.Size(); i++ {
			m := c.recv(Any, tag)
			out[m.From] = m.Data
		}
		return out
	}
	c.send(root, tag, data)
	return nil
}

// AllGather collects each rank's data on every rank, indexed by rank
// (Gather followed by a broadcast of the assembled slice).
func (c *Comm) AllGather(data any) []any {
	all := c.Gather(0, data)
	out := c.Bcast(0, all)
	if out == nil {
		return nil
	}
	return out.([]any)
}

// Scatter distributes parts[i] from root to rank i and returns this
// rank's part. Only root's parts argument is consulted; it must have
// exactly Size elements.
func (c *Comm) Scatter(root int, parts []any) any {
	tag := c.nextCollTag()
	if c.Rank() == root {
		if len(parts) != c.Size() {
			panic(fmt.Sprintf("mpi: Scatter needs %d parts, got %d", c.Size(), len(parts)))
		}
		for i := 0; i < c.Size(); i++ {
			if i != root {
				c.send(i, tag, parts[i])
			}
		}
		return parts[root]
	}
	return c.recv(root, tag).Data
}

// ReduceInt64 folds every rank's value with op at root (op must be
// associative and commutative); other ranks receive 0.
func (c *Comm) ReduceInt64(root int, v int64, op func(a, b int64) int64) int64 {
	tag := c.nextCollTag()
	if c.Rank() == root {
		acc := v
		for i := 1; i < c.Size(); i++ {
			acc = op(acc, c.recv(Any, tag).Data.(int64))
		}
		return acc
	}
	c.send(root, tag, v)
	return 0
}

// AllreduceInt64 is ReduceInt64 followed by a broadcast of the result.
func (c *Comm) AllreduceInt64(v int64, op func(a, b int64) int64) int64 {
	r := c.ReduceInt64(0, v, op)
	return c.Bcast(0, r).(int64)
}

// ReduceFloat64 folds every rank's value with op at root; other ranks
// receive 0.
func (c *Comm) ReduceFloat64(root int, v float64, op func(a, b float64) float64) float64 {
	tag := c.nextCollTag()
	if c.Rank() == root {
		acc := v
		for i := 1; i < c.Size(); i++ {
			acc = op(acc, c.recv(Any, tag).Data.(float64))
		}
		return acc
	}
	c.send(root, tag, v)
	return 0
}

// MaxFloat64 is a convenience Allreduce-max, used to compute a job's
// makespan (the maximum per-rank finish time).
func (c *Comm) MaxFloat64(v float64) float64 {
	r := c.ReduceFloat64(0, v, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
	return c.Bcast(0, r).(float64)
}
