package mpi_test

import (
	"fmt"

	"profam/internal/mpi"
)

// ExampleRunSim simulates a two-rank exchange on a virtual machine with
// simple unit costs: the sender works 3 virtual seconds, ships a message
// costing 1 s overhead + 2 s latency, and the receiver charges 1 s to
// accept it — a 7-second makespan, deterministically.
func ExampleRunSim() {
	cm := mpi.CostModel{SendOverhead: 1, RecvOverhead: 1, Latency: 2}
	makespan, err := mpi.RunSim(2, cm, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			c.Advance(3)
			c.Send(1, 0, nil)
		} else {
			c.Recv(0, 0)
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("makespan: %.0fs\n", makespan)
	// Output:
	// makespan: 7s
}

// ExampleComm_AllreduceInt64 sums each rank's contribution everywhere.
func ExampleComm_AllreduceInt64() {
	_, err := mpi.RunSim(4, mpi.CostModel{}, func(c *mpi.Comm) {
		total := c.AllreduceInt64(int64(c.Rank()), func(a, b int64) int64 { return a + b })
		if c.Rank() == 0 {
			fmt.Printf("sum of ranks: %d\n", total)
		}
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// sum of ranks: 6
}
