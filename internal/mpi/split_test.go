package mpi

import (
	"fmt"
	"testing"
)

// splitWorkout exercises one Split end-to-end on any transport: rank
// renumbering, collectives inside the group, RecvAny isolation between
// groups, and interleaved parent-communicator traffic on the very same
// user tag the groups use.
func splitWorkout(c *Comm) {
	p, r := c.Size(), c.Rank()
	groups := 2
	if p < 2 {
		groups = 1
	}
	color := r % groups
	sub := c.Split(color)

	// Renumbering: sub-ranks are 0..n-1 in ascending parent rank order.
	wantSize := 0
	wantRank := -1
	for i := 0; i < p; i++ {
		if i%groups == color {
			if i == r {
				wantRank = wantSize
			}
			wantSize++
		}
	}
	if sub.Size() != wantSize || sub.Rank() != wantRank {
		panic(fmt.Sprintf("split rank %d: got (%d of %d), want (%d of %d)",
			r, sub.Rank(), sub.Size(), wantRank, wantSize))
	}

	// Collectives stay inside the group.
	got := sub.Bcast(0, color*100+7).(int)
	if got != color*100+7 {
		panic(fmt.Sprintf("split bcast leaked across groups: got %d in color %d", got, color))
	}
	all := sub.Gather(0, sub.Rank()*3)
	if sub.Rank() == 0 {
		if len(all) != sub.Size() {
			panic(fmt.Sprintf("split gather size %d, want %d", len(all), sub.Size()))
		}
		for i, v := range all {
			if v.(int) != i*3 {
				panic(fmt.Sprintf("split gather[%d] = %v", i, v))
			}
		}
	}
	sum := sub.AllreduceInt64(int64(sub.Rank()+1), func(a, b int64) int64 { return a + b })
	if want := int64(sub.Size() * (sub.Size() + 1) / 2); sum != want {
		panic(fmt.Sprintf("split allreduce = %d, want %d", sum, want))
	}

	// RecvAny isolation: both groups flood tag 5 at once, and the world
	// communicator crosses group boundaries on tag 5 too. Each group
	// leader must see exactly its own members' payloads, and the world
	// message must still be waiting afterwards.
	const tag = 5
	c.Send((r+1)%p, tag, 10_000+r)
	if sub.Rank() == 0 {
		for i := 1; i < sub.Size(); i++ {
			m := sub.RecvAny(tag)
			if v := m.Data.(int); v != color*1000+m.From {
				panic(fmt.Sprintf("group %d leader got %d from sub rank %d", color, v, m.From))
			}
		}
	} else {
		sub.Send(0, tag, color*1000+sub.Rank())
	}
	wm := c.Recv((r+p-1)%p, tag)
	if v := wm.Data.(int); v != 10_000+(r+p-1)%p {
		panic(fmt.Sprintf("world message corrupted by split traffic: %d", v))
	}
	c.Barrier()
}

func TestSplitInproc(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			if err := Run(p, splitWorkout); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSplitSimtime(t *testing.T) {
	for _, p := range []int{2, 5, 8} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			mk1, err := RunSim(p, BlueGeneLike(), splitWorkout)
			if err != nil {
				t.Fatal(err)
			}
			mk2, err := RunSim(p, BlueGeneLike(), splitWorkout)
			if err != nil {
				t.Fatal(err)
			}
			if mk1 != mk2 {
				t.Fatalf("split under simtime nondeterministic: %v vs %v", mk1, mk2)
			}
		})
	}
}

func TestSplitTCP(t *testing.T) {
	RegisterType(0)
	RegisterType(int64(0))
	if err := RunTCP(4, nextPorts(), splitWorkout); err != nil {
		t.Fatal(err)
	}
}

// TestSplitGroupsRunConcurrently pins the point of Split: two groups
// each run a master-worker exchange that would deadlock if one group's
// receives could swallow the other group's messages.
func TestSplitGroupsRunConcurrently(t *testing.T) {
	const p = 6
	err := Run(p, func(c *Comm) {
		color := c.Rank() % 2
		sub := c.Split(color)
		const rounds = 200
		if sub.Rank() == 0 {
			for i := 0; i < rounds*(sub.Size()-1); i++ {
				m := sub.RecvAny(1)
				sub.Send(m.From, 2, m.Data)
			}
		} else {
			for i := 0; i < rounds; i++ {
				sub.Send(0, 1, sub.Rank()*rounds+i)
				m := sub.Recv(0, 2)
				if m.Data.(int) != sub.Rank()*rounds+i {
					panic("echo corrupted across groups")
				}
			}
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitRaceHammer is the -race stressor: many concurrent ranks in
// two groups exchanging on the same tags through the shared mailboxes,
// with world-communicator collectives interleaved.
func TestSplitRaceHammer(t *testing.T) {
	transports := []struct {
		name string
		run  func(p int, f func(c *Comm)) error
	}{
		{"inproc", Run},
		{"sim", func(p int, f func(c *Comm)) error { _, err := RunSim(p, BlueGeneLike(), f); return err }},
		{"tcp", func(p int, f func(c *Comm)) error { return RunTCP(p, nextPorts(), f) }},
	}
	RegisterType(0)
	RegisterType(int64(0))
	for _, tr := range transports {
		tr := tr
		t.Run(tr.name, func(t *testing.T) {
			const p = 8
			err := tr.run(p, func(c *Comm) {
				sub := c.Split(c.Rank() % 2)
				next := (sub.Rank() + 1) % sub.Size()
				prev := (sub.Rank() + sub.Size() - 1) % sub.Size()
				for i := 0; i < 60; i++ {
					sub.Send(next, 3, i)
					if m := sub.Recv(prev, 3); m.Data.(int) != i {
						panic(fmt.Sprintf("ring round %d corrupted", i))
					}
					if i%20 == 0 {
						sub.Barrier()
						c.AllreduceInt64(1, func(a, b int64) int64 { return a + b })
					}
				}
				c.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSplitValidation(t *testing.T) {
	err := Run(1, func(c *Comm) {
		sub := c.Split(0)
		func() {
			defer func() {
				if recover() == nil {
					panic("nested Split did not panic")
				}
			}()
			sub.Split(0)
		}()
		func() {
			defer func() {
				if recover() == nil {
					panic("tag wildcard on split comm did not panic")
				}
			}()
			sub.Send(0, 4, nil)
			sub.Recv(0, Any)
		}()
	})
	if err != nil {
		t.Fatal(err)
	}
}
