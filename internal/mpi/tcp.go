package mpi

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// wireMsg is the gob envelope exchanged over TCP.
type wireMsg struct {
	From int
	Tag  int
	Data any
}

// RegisterType makes a payload type transferable over the TCP transport
// (a thin wrapper over gob.Register so callers need not import
// encoding/gob themselves). Inproc and simtime transports need no
// registration.
func RegisterType(v any) { gob.Register(v) }

// tcpTransport is one rank's endpoint of a fully connected TCP mesh.
type tcpTransport struct {
	r, n  int
	start time.Time
	box   *mailbox

	mu    sync.Mutex // guards encoders
	encs  []*gob.Encoder
	conns []net.Conn
}

func (t *tcpTransport) rank() int    { return t.r }
func (t *tcpTransport) size() int    { return t.n }
func (t *tcpTransport) name() string { return "tcp" }

func (t *tcpTransport) send(to, tag int, data any) {
	if to == t.r {
		t.box.put(Message{From: t.r, Tag: tag, Data: data})
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.encs[to].Encode(wireMsg{From: t.r, Tag: tag, Data: data}); err != nil {
		panic(fmt.Sprintf("mpi: tcp send rank %d -> %d: %v", t.r, to, err))
	}
}

func (t *tcpTransport) recv(from, tag int) Message { return t.box.take(from, tag) }
func (t *tcpTransport) advance(float64)            {}
func (t *tcpTransport) time() float64              { return time.Since(t.start).Seconds() }

// readLoop pumps messages from one peer. It must use the same Decoder
// that read the handshake: gob decoders buffer ahead, so a second decoder
// on the same connection would lose bytes.
func (t *tcpTransport) readLoop(dec *gob.Decoder) {
	for {
		var m wireMsg
		if err := dec.Decode(&m); err != nil {
			return // peer closed; job is ending
		}
		t.box.put(Message{From: m.From, Tag: m.Tag, Data: m.Data})
	}
}

func (t *tcpTransport) close() {
	for _, c := range t.conns {
		if c != nil {
			c.Close()
		}
	}
}

// DialMesh builds a fully connected TCP mesh for rank r of n given the
// listen addresses of all ranks (addrs[i] is rank i's host:port). Each
// rank listens on addrs[r], accepts connections from lower ranks, and
// dials higher ranks. The returned cleanup must be called after the rank
// function finishes.
//
// The handshake is: dialer sends its rank as the first gob value.
func DialMesh(r int, addrs []string) (*Comm, func(), error) {
	n := len(addrs)
	t := &tcpTransport{
		r: r, n: n,
		start: time.Now(),
		box:   newMailbox(),
		encs:  make([]*gob.Encoder, n),
		conns: make([]net.Conn, n),
	}
	decs := make([]*gob.Decoder, n)

	ln, err := net.Listen("tcp", addrs[r])
	if err != nil {
		return nil, nil, fmt.Errorf("mpi: rank %d listen %s: %w", r, addrs[r], err)
	}

	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	setErr := func(e error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = e
		}
		errMu.Unlock()
	}

	// Accept connections from all lower ranks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < r; i++ {
			conn, err := ln.Accept()
			if err != nil {
				setErr(fmt.Errorf("mpi: rank %d accept: %w", r, err))
				return
			}
			dec := gob.NewDecoder(conn)
			var peer int
			if err := dec.Decode(&peer); err != nil {
				setErr(fmt.Errorf("mpi: rank %d handshake: %w", r, err))
				return
			}
			t.conns[peer] = conn
			decs[peer] = dec
		}
	}()

	// Dial all higher ranks (with retries while peers start up).
	for peer := r + 1; peer < n; peer++ {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			var conn net.Conn
			var err error
			for attempt := 0; attempt < 100; attempt++ {
				conn, err = net.Dial("tcp", addrs[peer])
				if err == nil {
					break
				}
				time.Sleep(50 * time.Millisecond)
			}
			if err != nil {
				setErr(fmt.Errorf("mpi: rank %d dial rank %d: %w", r, peer, err))
				return
			}
			enc := gob.NewEncoder(conn)
			if err := enc.Encode(r); err != nil {
				setErr(fmt.Errorf("mpi: rank %d handshake to %d: %w", r, peer, err))
				return
			}
			t.conns[peer] = conn
			t.encs[peer] = enc
		}(peer)
	}
	wg.Wait()
	if firstErr != nil {
		ln.Close()
		t.close()
		return nil, nil, firstErr
	}

	for peer, conn := range t.conns {
		if peer == r || conn == nil {
			continue
		}
		if t.encs[peer] == nil { // accepted connection: writer not yet set up
			t.encs[peer] = gob.NewEncoder(conn)
		}
		if decs[peer] == nil { // dialed connection: reader not yet set up
			decs[peer] = gob.NewDecoder(conn)
		}
		go t.readLoop(decs[peer])
	}

	cleanup := func() {
		ln.Close()
		t.close()
	}
	return &Comm{tr: t}, cleanup, nil
}

// RunTCP executes f on p ranks connected over loopback TCP, one goroutine
// per rank, blocking until all finish. It exercises the genuine
// socket/RPC path inside a single process; multi-process deployments use
// DialMesh directly with one rank per process.
func RunTCP(p int, basePort int, f func(c *Comm)) error {
	addrs := make([]string, p)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
	}
	errs := make(chan error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					errs <- fmt.Errorf("mpi: tcp rank %d panicked: %v", r, e)
				}
			}()
			c, cleanup, err := DialMesh(r, addrs)
			if err != nil {
				errs <- err
				return
			}
			defer cleanup()
			f(c)
			// Drain grace: give in-flight messages to peers time to land
			// before tearing the sockets down.
			c.Barrier()
		}(r)
	}
	wg.Wait()
	close(errs)
	return <-errs
}
