package mpi

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// meshHandshakeTimeout bounds the accept/handshake phase of DialMesh.
// Dial retries exhaust after ~5 s, so a rank whose peer failed to start
// errors out shortly after instead of blocking in Accept forever.
const meshHandshakeTimeout = 15 * time.Second

// wireMsg is the gob envelope exchanged over TCP. Data is either the
// payload itself (gob-encoded) or a rawFrame holding a compact binary
// encoding of it (see codec.go).
type wireMsg struct {
	From int
	Tag  int
	Data any
}

// RegisterType makes a payload type transferable over the TCP transport
// (a thin wrapper over gob.Register so callers need not import
// encoding/gob themselves). Inproc and simtime transports need no
// registration.
func RegisterType(v any) { gob.Register(v) }

// countWriter measures the bytes a gob encoder actually puts on the
// socket, so mpi_bytes_sent{transport=tcp} reports wire truth rather
// than the payloadBytes estimate. Guarded by the owning peer's mutex.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// countReader is the receive-side twin; only the peer's readLoop
// goroutine touches n.
type countReader struct {
	r io.Reader
	n int64
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// tcpPeer is one outgoing edge of the mesh. Each peer owns its encoder
// and lock so concurrent sends to different peers never serialize on a
// shared mutex.
type tcpPeer struct {
	mu   sync.Mutex // guards enc + cw
	enc  *gob.Encoder
	cw   *countWriter
	conn net.Conn
}

// tcpTransport is one rank's endpoint of a fully connected TCP mesh.
type tcpTransport struct {
	r, n  int
	start time.Time
	box   *mailbox
	peers []*tcpPeer
}

func (t *tcpTransport) rank() int    { return t.r }
func (t *tcpTransport) size() int    { return t.n }
func (t *tcpTransport) name() string { return "tcp" }

func (t *tcpTransport) send(to, tag int, data any) int {
	if to == t.r {
		t.box.put(Message{From: t.r, Tag: tag, Data: data})
		return payloadBytes(data)
	}
	payload := data
	var scratch *[]byte
	if CurrentWireFormat() == WireBinary {
		if bp, ok := data.(BinaryPayload); ok {
			scratch = wireBufPool.Get().(*[]byte)
			body := bp.AppendBinary((*scratch)[:0])
			*scratch = body // keep any growth for reuse
			payload = rawFrame{Kind: bp.WireKind(), Body: body}
		}
	}
	p := t.peers[to]
	p.mu.Lock()
	before := p.cw.n
	err := p.enc.Encode(wireMsg{From: t.r, Tag: tag, Data: payload})
	sent := p.cw.n - before
	p.mu.Unlock()
	if scratch != nil {
		wireBufPool.Put(scratch) // Encode has flushed; safe to recycle
	}
	if err != nil {
		panic(fmt.Sprintf("mpi: tcp send rank %d -> %d: %v", t.r, to, err))
	}
	return int(sent)
}

func (t *tcpTransport) recv(from, tag int) Message { return t.box.take(from, tag) }
func (t *tcpTransport) advance(float64)            {}
func (t *tcpTransport) time() float64              { return time.Since(t.start).Seconds() }

// readLoop pumps messages from one peer. It must use the same Decoder
// that read the handshake: gob decoders buffer ahead, so a second decoder
// on the same connection would lose bytes. Binary frames are decoded here
// — off the receiving rank's critical path — and a decode failure poisons
// the mailbox so the rank unwinds instead of hanging.
func (t *tcpTransport) readLoop(dec *gob.Decoder, cr *countReader) {
	for {
		before := cr.n
		var m wireMsg
		if err := dec.Decode(&m); err != nil {
			return // peer closed; job is ending
		}
		data := m.Data
		if f, ok := data.(rawFrame); ok {
			v, err := decodeBinaryFrame(f)
			if err != nil {
				t.box.put(Message{From: m.From, Tag: abortTag, Data: err})
				return
			}
			data = v
		}
		t.box.put(Message{From: m.From, Tag: m.Tag, Data: data, wire: int(cr.n - before)})
	}
}

func (t *tcpTransport) close() {
	for _, p := range t.peers {
		if p != nil && p.conn != nil {
			p.conn.Close()
		}
	}
}

// DialMesh builds a fully connected TCP mesh for rank r of n given the
// listen addresses of all ranks (addrs[i] is rank i's host:port). Each
// rank listens on addrs[r], accepts connections from lower ranks, and
// dials higher ranks. The returned cleanup must be called after the rank
// function finishes.
//
// The handshake is: dialer sends its rank as the first gob value.
func DialMesh(r int, addrs []string) (*Comm, func(), error) {
	n := len(addrs)
	t := &tcpTransport{
		r: r, n: n,
		start: time.Now(),
		box:   newMailbox(),
		peers: make([]*tcpPeer, n),
	}
	decs := make([]*gob.Decoder, n)
	crs := make([]*countReader, n)
	conns := make([]net.Conn, n)

	ln, err := net.Listen("tcp", addrs[r])
	if err != nil {
		return nil, nil, fmt.Errorf("mpi: rank %d listen %s: %w", r, addrs[r], err)
	}

	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	setErr := func(e error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = e
		}
		errMu.Unlock()
	}

	// Accept connections from all lower ranks. The wait is bounded: a
	// peer whose own setup failed (listen collision, dial exhaustion)
	// never connects, and an unbounded Accept would deadlock the whole
	// mesh on one rank's error. Dialers give up after ~5 s of retries,
	// so a deadline comfortably above that converts the deadlock into an
	// error the caller sees.
	wg.Add(1)
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(meshHandshakeTimeout)
		ln.(*net.TCPListener).SetDeadline(deadline)
		defer ln.(*net.TCPListener).SetDeadline(time.Time{})
		for i := 0; i < r; i++ {
			conn, err := ln.Accept()
			if err != nil {
				setErr(fmt.Errorf("mpi: rank %d accept: %w", r, err))
				return
			}
			conn.SetReadDeadline(deadline)
			cr := &countReader{r: conn}
			dec := gob.NewDecoder(cr)
			var peer int
			if err := dec.Decode(&peer); err != nil {
				setErr(fmt.Errorf("mpi: rank %d handshake: %w", r, err))
				return
			}
			conn.SetReadDeadline(time.Time{})
			conns[peer] = conn
			decs[peer] = dec
			crs[peer] = cr
		}
	}()

	// Dial all higher ranks (with retries while peers start up).
	for peer := r + 1; peer < n; peer++ {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			var conn net.Conn
			var err error
			for attempt := 0; attempt < 100; attempt++ {
				conn, err = net.Dial("tcp", addrs[peer])
				if err == nil {
					// TCP simultaneous-open hazard: dialing a port in the
					// kernel's ephemeral range before the peer's listener is
					// up can self-connect (local == remote address). The
					// "connection" looks established but the peer's Accept
					// never fires, deadlocking the mesh handshake — drop it
					// and retry like any refused dial.
					if conn.LocalAddr().String() == conn.RemoteAddr().String() {
						conn.Close()
						conn = nil
						err = fmt.Errorf("mpi: rank %d self-connected dialing %s", r, addrs[peer])
					} else {
						break
					}
				}
				time.Sleep(50 * time.Millisecond)
			}
			if err != nil {
				setErr(fmt.Errorf("mpi: rank %d dial rank %d: %w", r, peer, err))
				return
			}
			cw := &countWriter{w: conn}
			enc := gob.NewEncoder(cw)
			if err := enc.Encode(r); err != nil {
				setErr(fmt.Errorf("mpi: rank %d handshake to %d: %w", r, peer, err))
				return
			}
			conns[peer] = conn
			t.peers[peer] = &tcpPeer{enc: enc, cw: cw, conn: conn}
		}(peer)
	}
	wg.Wait()
	if firstErr != nil {
		ln.Close()
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
		return nil, nil, firstErr
	}

	for peer, conn := range conns {
		if peer == r || conn == nil {
			continue
		}
		if t.peers[peer] == nil { // accepted connection: writer not yet set up
			cw := &countWriter{w: conn}
			t.peers[peer] = &tcpPeer{enc: gob.NewEncoder(cw), cw: cw, conn: conn}
		}
		if decs[peer] == nil { // dialed connection: reader not yet set up
			crs[peer] = &countReader{r: conn}
			decs[peer] = gob.NewDecoder(crs[peer])
		}
		go t.readLoop(decs[peer], crs[peer])
	}

	cleanup := func() {
		ln.Close()
		t.close()
	}
	return &Comm{tr: t}, cleanup, nil
}

// RunTCP executes f on p ranks connected over loopback TCP, one goroutine
// per rank, blocking until all finish. It exercises the genuine
// socket/RPC path inside a single process; multi-process deployments use
// DialMesh directly with one rank per process.
func RunTCP(p int, basePort int, f func(c *Comm)) error {
	addrs := make([]string, p)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", basePort+i)
	}
	errs := make(chan error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					errs <- fmt.Errorf("mpi: tcp rank %d panicked: %v", r, e)
				}
			}()
			c, cleanup, err := DialMesh(r, addrs)
			if err != nil {
				errs <- err
				return
			}
			defer cleanup()
			f(c)
			// Drain grace: give in-flight messages to peers time to land
			// before tearing the sockets down.
			c.Barrier()
		}(r)
	}
	wg.Wait()
	close(errs)
	return <-errs
}
