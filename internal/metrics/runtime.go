package metrics

import (
	"runtime"
	"time"
)

// Runtime health series recorded by StartRuntimeSampler.
const (
	RuntimeGoroutines    = "runtime_goroutines"
	RuntimeHeapInuse     = "runtime_heap_inuse_bytes"
	RuntimeHeapSys       = "runtime_heap_sys_bytes"
	RuntimeGCCycles      = "runtime_gc_cycles"
	RuntimeGCPauseMicros = "runtime_gc_pause_us"
)

// StartRuntimeSampler begins periodic process-health sampling into reg:
// goroutine count and heap gauges, a GC-cycle counter, and a GC pause
// histogram fed from runtime.MemStats' pause ring (every cycle since the
// previous sample is observed individually, so no pause is lost between
// ticks as long as fewer than 256 GCs happen per interval). One sample
// is taken immediately so the series exist before the first tick. The
// returned stop function halts the sampler and waits for it to exit;
// it is safe to call once.
func StartRuntimeSampler(reg *Registry, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	var lastNumGC uint32
	sample := func() {
		reg.Gauge(RuntimeGoroutines).Set(float64(runtime.NumGoroutine()))
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		reg.Gauge(RuntimeHeapInuse).Set(float64(ms.HeapInuse))
		reg.Gauge(RuntimeHeapSys).Set(float64(ms.HeapSys))
		if n := ms.NumGC - lastNumGC; n > 0 {
			reg.Counter(RuntimeGCCycles).Add(int64(n))
			if n > uint32(len(ms.PauseNs)) {
				n = uint32(len(ms.PauseNs))
			}
			h := reg.Histogram(RuntimeGCPauseMicros)
			for i := ms.NumGC - n; i < ms.NumGC; i++ {
				h.Observe(int64(ms.PauseNs[(i+255)%256] / 1000))
			}
			lastNumGC = ms.NumGC
		}
	}
	sample()
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}
