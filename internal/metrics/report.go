package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// HistogramSnapshot is an immutable copy of one histogram. P50/P95/P99
// are quantile estimates interpolated from the log₂ buckets (exact to
// within one bucket's width), refreshed whenever a snapshot is taken or
// merged; they are derived from work-deterministic bucket counts, so
// they survive Canonical.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
	P50     float64
	P95     float64
	P99     float64
	Buckets map[int]int64 // bit-length bucket b counts values in [2^(b-1), 2^b)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the log₂ buckets by
// linear interpolation inside the bucket holding the target rank,
// clamped to the exact observed [Min, Max].
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := q * float64(h.Count)
	if target < 1 {
		target = 1
	}
	bkts := make([]int, 0, len(h.Buckets))
	for b := range h.Buckets {
		bkts = append(bkts, b)
	}
	sort.Ints(bkts)
	cum := 0.0
	est := float64(h.Max)
	for _, b := range bkts {
		n := float64(h.Buckets[b])
		if cum+n >= target {
			var lo, hi float64
			if b == 0 {
				// Bucket 0 holds values ≤ 0; Min is the only bound known.
				lo, hi = float64(h.Min), 0
				if hi < lo {
					hi = lo
				}
			} else {
				lo, hi = math.Ldexp(1, b-1), math.Ldexp(1, b)
			}
			est = lo + (target-cum)/n*(hi-lo)
			break
		}
		cum += n
	}
	if est < float64(h.Min) {
		est = float64(h.Min)
	}
	if est > float64(h.Max) {
		est = float64(h.Max)
	}
	return est
}

// fillQuantiles refreshes the derived P50/P95/P99 fields.
func (h *HistogramSnapshot) fillQuantiles() {
	h.P50 = h.Quantile(0.50)
	h.P95 = h.Quantile(0.95)
	h.P99 = h.Quantile(0.99)
}

// Snapshot is an immutable copy of one rank's registry, suitable for
// shipping over the mpi transports (gob-encodable) and merging at rank 0.
type Snapshot struct {
	Rank       int
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
	Spans      []SpanRecord
}

// WireSize implements the mpi Sized convention so the simulator charges
// a realistic byte volume for metric gathers.
func (s Snapshot) WireSize() int {
	n := 16
	for name := range s.Counters {
		n += len(name) + 8
	}
	for name := range s.Gauges {
		n += len(name) + 8
	}
	for name, h := range s.Histograms {
		n += len(name) + 32 + 16*len(h.Buckets)
	}
	for _, sp := range s.Spans {
		n += len(sp.Name) + 24
	}
	return n
}

// PhaseTiming aggregates all spans sharing one name across ranks.
type PhaseTiming struct {
	Name string
	// Count is the number of spans merged.
	Count int
	// StartSeconds is the earliest span start over all ranks.
	StartSeconds float64
	// MaxSeconds is the largest per-rank total duration — the phase's
	// critical path across the job.
	MaxSeconds float64
	// SumSeconds is the total duration over all ranks (rank-seconds).
	SumSeconds float64
}

// Report is the job-wide merge of every rank's snapshot: counters are
// summed, gauges take the maximum, histograms are merged bucket-wise,
// and spans are folded into per-name phase timings. The raw per-rank
// snapshots are preserved under Ranks so per-rank breakdowns (load
// imbalance, per-transport traffic) stay available.
type Report struct {
	NumRanks   int
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
	Phases     []PhaseTiming
	Ranks      []Snapshot
}

// Merge folds per-rank snapshots into a job-wide report. Phases are
// ordered by earliest start (pipeline order), ties by name.
func Merge(snaps []Snapshot) *Report {
	rep := &Report{
		NumRanks:   len(snaps),
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Ranks:      append([]Snapshot(nil), snaps...),
	}
	type phaseAcc struct {
		count   int
		start   float64
		sum     float64
		perRank map[int]float64
	}
	phases := map[string]*phaseAcc{}
	for _, s := range snaps {
		for n, v := range s.Counters {
			rep.Counters[n] += v
		}
		for n, v := range s.Gauges {
			if cur, ok := rep.Gauges[n]; !ok || v > cur {
				rep.Gauges[n] = v
			}
		}
		for n, h := range s.Histograms {
			rep.Histograms[n] = mergeHist(rep.Histograms[n], h)
		}
		for _, sp := range s.Spans {
			a := phases[sp.Name]
			if a == nil {
				a = &phaseAcc{start: sp.Start, perRank: map[int]float64{}}
				phases[sp.Name] = a
			}
			if sp.Start < a.start {
				a.start = sp.Start
			}
			a.count++
			a.sum += sp.Seconds()
			a.perRank[sp.Rank] += sp.Seconds()
		}
	}
	for name, a := range phases {
		pt := PhaseTiming{Name: name, Count: a.count, StartSeconds: a.start, SumSeconds: a.sum}
		for _, d := range a.perRank {
			if d > pt.MaxSeconds {
				pt.MaxSeconds = d
			}
		}
		rep.Phases = append(rep.Phases, pt)
	}
	sort.Slice(rep.Phases, func(i, j int) bool {
		if rep.Phases[i].StartSeconds != rep.Phases[j].StartSeconds {
			return rep.Phases[i].StartSeconds < rep.Phases[j].StartSeconds
		}
		return rep.Phases[i].Name < rep.Phases[j].Name
	})
	return rep
}

func mergeHist(a, b HistogramSnapshot) HistogramSnapshot {
	if a.Count == 0 {
		out := b
		out.Buckets = make(map[int]int64, len(b.Buckets))
		for k, v := range b.Buckets {
			out.Buckets[k] = v
		}
		out.fillQuantiles()
		return out
	}
	out := a
	if b.Count > 0 {
		if b.Min < out.Min {
			out.Min = b.Min
		}
		if b.Max > out.Max {
			out.Max = b.Max
		}
		out.Count += b.Count
		out.Sum += b.Sum
	}
	for k, v := range b.Buckets {
		out.Buckets[k] += v
	}
	out.fillQuantiles()
	return out
}

// CounterValue returns the merged value of a counter (0 if absent).
func (r *Report) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	return r.Counters[name]
}

// GaugeValue returns the merged value of a gauge (0 if absent).
func (r *Report) GaugeValue(name string) float64 {
	if r == nil {
		return 0
	}
	return r.Gauges[name]
}

// HeapPeakGauge is the pipeline's phase-boundary runtime.MemStats probe.
// Unlike every other gauge it is machine-derived (GC timing, allocator
// state) rather than work-derived, so Canonical strips it.
const HeapPeakGauge = "pipeline_heap_peak_bytes"

// Canonical returns a deep copy with every clock-derived field zeroed
// and phases re-sorted by name — the representation that is identical
// across thread counts under the simulator (work counters and shapes
// are deterministic; only time is not, because each thread count charges
// different virtual compute). Tests compare Canonical() JSON bytes.
func (r *Report) Canonical() *Report {
	if r == nil {
		return nil
	}
	out := &Report{
		NumRanks:   r.NumRanks,
		Counters:   copyMap(r.Counters),
		Gauges:     copyMap(r.Gauges),
		Histograms: map[string]HistogramSnapshot{},
	}
	delete(out.Gauges, HeapPeakGauge)
	for n, h := range r.Histograms {
		out.Histograms[n] = mergeHist(HistogramSnapshot{}, h)
	}
	for _, p := range r.Phases {
		out.Phases = append(out.Phases, PhaseTiming{Name: p.Name, Count: p.Count})
	}
	sort.Slice(out.Phases, func(i, j int) bool { return out.Phases[i].Name < out.Phases[j].Name })
	for _, s := range r.Ranks {
		cs := Snapshot{
			Rank:       s.Rank,
			Counters:   copyMap(s.Counters),
			Gauges:     copyMap(s.Gauges),
			Histograms: map[string]HistogramSnapshot{},
		}
		delete(cs.Gauges, HeapPeakGauge)
		for n, h := range s.Histograms {
			cs.Histograms[n] = mergeHist(HistogramSnapshot{}, h)
		}
		for _, sp := range s.Spans {
			cs.Spans = append(cs.Spans, SpanRecord{Name: sp.Name, Rank: sp.Rank})
		}
		sort.Slice(cs.Spans, func(i, j int) bool { return cs.Spans[i].Name < cs.Spans[j].Name })
		out.Ranks = append(out.Ranks, cs)
	}
	return out
}

func copyMap[V int64 | float64](m map[string]V) map[string]V {
	out := make(map[string]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// WriteJSON writes the report as indented JSON. Map keys are emitted in
// sorted order by encoding/json, so serialization is deterministic.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Table renders a compact human-readable summary: phase timings first
// (in pipeline order), then counters, gauges and histograms sorted by
// name.
func (r *Report) Table(w io.Writer) error {
	if r == nil {
		return nil
	}
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("== phase timings (s, max over ranks) ==\n"); err != nil {
		return err
	}
	for _, ph := range r.Phases {
		if err := p("%-18s %10.4f  (sum %.4f over %d spans)\n",
			ph.Name, ph.MaxSeconds, ph.SumSeconds, ph.Count); err != nil {
			return err
		}
	}
	if err := p("== counters (sum over %d ranks) ==\n", r.NumRanks); err != nil {
		return err
	}
	for _, n := range sortedKeys(r.Counters) {
		if err := p("%-46s %14d\n", n, r.Counters[n]); err != nil {
			return err
		}
	}
	if len(r.Gauges) > 0 {
		if err := p("== gauges (max over ranks) ==\n"); err != nil {
			return err
		}
		for _, n := range sortedKeys(r.Gauges) {
			if err := p("%-46s %14.4f\n", n, r.Gauges[n]); err != nil {
				return err
			}
		}
	}
	if len(r.Histograms) > 0 {
		if err := p("== histograms ==\n"); err != nil {
			return err
		}
		for _, n := range sortedKeys(r.Histograms) {
			h := r.Histograms[n]
			mean := 0.0
			if h.Count > 0 {
				mean = float64(h.Sum) / float64(h.Count)
			}
			if err := p("%-46s n=%-8d mean=%-10.1f p50=%-8.0f p95=%-8.0f p99=%-8.0f min=%-8d max=%d\n",
				n, h.Count, mean, h.P50, h.P95, h.P99, h.Min, h.Max); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
