package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpanSink(t *testing.T) {
	r := New(1, fixedClock())
	var got []SpanRecord
	r.SetSpanSink(func(sp SpanRecord) { got = append(got, sp) })
	r.RecordSpan("rr", 0, 2)
	r.StartSpan("ccd").End()
	if len(got) != 2 {
		t.Fatalf("sink saw %d spans", len(got))
	}
	if got[0].Name != "rr" || got[0].Rank != 1 || got[0].Seconds() != 2 {
		t.Fatalf("sink span 0 = %+v", got[0])
	}
	if got[1].Name != "ccd" {
		t.Fatalf("sink span 1 = %+v", got[1])
	}
	// The registry must also keep its own copy.
	if snap := r.Snapshot(); len(snap.Spans) != 2 {
		t.Fatalf("registry kept %d spans", len(snap.Spans))
	}
	r.SetSpanSink(nil)
	r.RecordSpan("bgg", 0, 1)
	if len(got) != 2 {
		t.Fatal("detached sink still called")
	}
	var nilReg *Registry
	nilReg.SetSpanSink(func(SpanRecord) {}) // must not panic
}

func TestQuantiles(t *testing.T) {
	h := &Histogram{}
	// 100 observations of value 7 (bucket 3 = [4,8)): every quantile must
	// land inside the bucket and clamp to min=max=7.
	for i := 0; i < 100; i++ {
		h.Observe(7)
	}
	s := h.snapshot()
	if s.P50 != 7 || s.P95 != 7 || s.P99 != 7 {
		t.Fatalf("constant histogram quantiles = %v/%v/%v", s.P50, s.P95, s.P99)
	}

	// 90 small values (=2) and 10 large (=1000): p50 must stay small,
	// p95/p99 must land in the large bucket (512,1024].
	h2 := &Histogram{}
	for i := 0; i < 90; i++ {
		h2.Observe(2)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(1000)
	}
	s2 := h2.snapshot()
	if s2.P50 < 2 || s2.P50 >= 4 {
		t.Fatalf("p50 = %v, want inside the [2,4) bucket", s2.P50)
	}
	if s2.P95 <= 512 || s2.P95 > 1000 {
		t.Fatalf("p95 = %v, want in (512, 1000]", s2.P95)
	}
	if s2.P99 < s2.P95 || s2.P99 > 1000 {
		t.Fatalf("p99 = %v (p95 %v)", s2.P99, s2.P95)
	}

	// Quantiles survive a merge and reflect the combined distribution.
	m := mergeHist(s, s2)
	if m.Count != 200 {
		t.Fatalf("merged count = %d", m.Count)
	}
	if m.P50 < 2 || m.P50 > 8 {
		t.Fatalf("merged p50 = %v, want within small buckets", m.P50)
	}
	if m.P99 <= 512 {
		t.Fatalf("merged p99 = %v, want in the large bucket", m.P99)
	}

	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestQuantilesInReportOutputs(t *testing.T) {
	r := New(0, nil)
	for i := int64(1); i <= 64; i++ {
		r.Histogram("batch_size").Observe(i)
	}
	rep := Merge([]Snapshot{r.Snapshot()})
	h := rep.Histograms["batch_size"]
	if h.P50 < 16 || h.P50 > 64 {
		t.Fatalf("report p50 = %v", h.P50)
	}
	var buf bytes.Buffer
	if err := rep.Table(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "p50=") || !strings.Contains(buf.String(), "p99=") {
		t.Fatalf("table missing quantile columns:\n%s", buf.String())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New(0, fixedClock())
	r.Counter(Name("pace_pairs_aligned", "phase", "rr")).Add(42)
	r.Counter(Name("pace_pairs_aligned", "phase", "ccd")).Add(8)
	r.Gauge("mpi_queue_depth").Set(3.5)
	for i := int64(1); i <= 10; i++ {
		r.Histogram(Name("pace_batch_pairs", "phase", "rr")).Observe(i * 100)
	}
	rep := Merge([]Snapshot{r.Snapshot()})
	var buf bytes.Buffer
	if err := rep.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pace_pairs_aligned counter",
		`pace_pairs_aligned{phase="rr"} 42`,
		`pace_pairs_aligned{phase="ccd"} 8`,
		"# TYPE mpi_queue_depth gauge",
		"mpi_queue_depth 3.5",
		"# TYPE pace_batch_pairs summary",
		`pace_batch_pairs{phase="rr",quantile="0.5"}`,
		`pace_batch_pairs{phase="rr",quantile="0.99"}`,
		`pace_batch_pairs_sum{phase="rr"} 5500`,
		`pace_batch_pairs_count{phase="rr"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// TYPE lines must not repeat per label set.
	if strings.Count(out, "# TYPE pace_pairs_aligned counter") != 1 {
		t.Errorf("duplicated TYPE line:\n%s", out)
	}
	if err := (*Report)(nil).WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestLiveAndFailedRegistries(t *testing.T) {
	r := New(5, nil)
	r.Counter("x").Add(9)
	RegisterLive(r)
	found := false
	for _, s := range LiveSnapshots() {
		if s.Rank == 5 && s.Counters["x"] == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("live snapshot missing registered registry")
	}
	UnregisterLive(r)
	for _, s := range LiveSnapshots() {
		if s.Rank == 5 {
			t.Fatal("unregistered registry still live")
		}
	}
	StashFailed([]Snapshot{r.Snapshot()})
	got := TakeFailed()
	if len(got) != 1 || got[0].Counters["x"] != 9 {
		t.Fatalf("failed stash = %+v", got)
	}
	if len(TakeFailed()) != 0 {
		t.Fatal("TakeFailed did not drain")
	}
	RegisterLive(nil) // nil-safe
	UnregisterLive(nil)
}
