// Package metrics is the pipeline's observability layer: a
// dependency-free, race-safe registry of counters, gauges and log-scale
// histograms with per-rank labels, plus a lightweight span tracer.
//
// Every rank of a job owns one Registry, created with the rank's clock
// (mpi.Comm.Time) so that span timestamps are *virtual* seconds under the
// simtime transport — and therefore deterministic in tests — and
// wall-clock seconds otherwise. At the end of a run each rank takes a
// Snapshot, rank 0 gathers and Merges them into a Report, and the report
// travels with the pipeline Result.
//
// Handles returned by Counter/Gauge/Histogram are cheap to hold and safe
// to use from many goroutines (the hybrid rank×thread pools hammer them
// concurrently); all methods are nil-safe, so call sites never need to
// guard against a missing registry.
//
// Metric names carry labels in a fixed "name{k=v,...}" form built with
// Name, e.g. pace_pairs_aligned{phase=ccd}. The label every consumer can
// rely on is the rank, which is kept out of the name: snapshots are
// per-rank and the merged report preserves them under Ranks.
package metrics

import (
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Clock returns the current time in seconds. Registries built from an
// mpi rank use the rank's Comm.Time, which is the virtual clock under
// the simulator and wall clock otherwise.
type Clock func() float64

// Name composes a metric name with label key/value pairs in
// deterministic "name{k1=v1,k2=v2}" form. kv must alternate keys and
// values; pairs are emitted in the order given.
func Name(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Registry is one rank's metric store. The zero value is not usable;
// construct with New. A nil *Registry is a valid no-op sink: every
// method returns nil handles whose methods do nothing.
type Registry struct {
	rank  int
	clock Clock

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []SpanRecord
	sink     func(SpanRecord)
}

// New returns an empty registry for the given rank. A nil clock pins
// every span timestamp to 0 (useful for pure counting).
func New(rank int, clock Clock) *Registry {
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	return &Registry{
		rank:     rank,
		clock:    clock,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Rank returns the rank label this registry was created with.
func (r *Registry) Rank() int {
	if r == nil {
		return 0
	}
	return r.rank
}

// Now reads the registry's clock.
func (r *Registry) Now() float64 {
	if r == nil {
		return 0
	}
	return r.clock()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing int64. All methods are nil-safe
// and goroutine-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 sampled value. All methods are nil-safe and
// goroutine-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetMax stores v only if it exceeds the current value — the idiom for
// high-water marks such as queue depth.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates int64 observations into log-scale (power-of-two)
// buckets: bucket b counts values in [2^(b-1), 2^b); bucket 0 counts
// values ≤ 0 together with the value 0 never occurring above. The exact
// count, sum, min and max are kept alongside, so coarse buckets lose no
// aggregate precision. All methods are nil-safe and goroutine-safe.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      int64
	min, max int64
	buckets  map[int]int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.mu.Lock()
	if h.buckets == nil {
		h.buckets = map[int]int64{}
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[b]++
	h.mu.Unlock()
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Buckets: make(map[int]int64, len(h.buckets)),
	}
	for b, n := range h.buckets {
		s.Buckets[b] = n
	}
	s.fillQuantiles()
	return s
}

// SpanRecord is one completed span: a named interval on the owning
// rank's clock. Under the simtime transport Start and End are virtual
// seconds.
type SpanRecord struct {
	Name  string
	Rank  int
	Start float64
	End   float64
}

// Seconds returns the span's duration.
func (s SpanRecord) Seconds() float64 { return s.End - s.Start }

// Span is an open interval returned by StartSpan. The zero Span (from a
// nil registry) is a valid no-op.
type Span struct {
	reg   *Registry
	name  string
	start float64
}

// StartSpan opens a named span at the current clock reading.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{reg: r, name: name, start: r.clock()}
}

// End closes the span at the current clock reading and records it.
func (s Span) End() {
	if s.reg == nil {
		return
	}
	s.reg.RecordSpan(s.name, s.start, s.reg.clock())
}

// RecordSpan records an explicit interval, for phases whose extent is
// modeled (apportioned) rather than directly bracketed by StartSpan/End.
func (r *Registry) RecordSpan(name string, start, end float64) {
	if r == nil {
		return
	}
	rec := SpanRecord{Name: name, Rank: r.rank, Start: start, End: end}
	r.mu.Lock()
	r.spans = append(r.spans, rec)
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		sink(rec)
	}
}

// SetSpanSink installs a callback invoked (outside the registry lock)
// with every span as it is recorded. The event tracer hooks in here so
// its phase timeline carries exactly the spans the merged Report folds
// into phase timings — the two views agree by construction. Pass nil to
// detach.
func (r *Registry) SetSpanSink(sink func(SpanRecord)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = sink
	r.mu.Unlock()
}

// Snapshot returns a copy of every metric in the registry, tagged with
// the rank. It is safe to call concurrently with updates; values are
// read atomically per metric.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g.Value()
	}
	hists := make([]histEntry, 0, len(r.hists))
	for n, h := range r.hists {
		hists = append(hists, histEntry{n, h})
	}
	spans := append([]SpanRecord(nil), r.spans...)
	r.mu.Unlock()

	// Histogram snapshots take the per-histogram lock; do it outside the
	// registry lock to keep Observe contention low.
	hsnaps := make(map[string]HistogramSnapshot, len(hists))
	for _, e := range hists {
		hsnaps[e.name] = e.h.snapshot()
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Name < spans[j].Name
	})
	return Snapshot{
		Rank:       r.rank,
		Counters:   counters,
		Gauges:     gauges,
		Histograms: hsnaps,
		Spans:      spans,
	}
}

type histEntry struct {
	name string
	h    *Histogram
}
