package metrics

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the report in Prometheus text exposition
// format 0.0.4. The registry's canonical "name{k=v,...}" form (built
// with Name) maps directly onto Prometheus label syntax; histograms are
// exported as summaries (quantile series plus _sum and _count). Output
// is sorted by metric name, so exposition is deterministic.
func (r *Report) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	typed := map[string]bool{}
	emitType := func(base, typ string) {
		if !typed[base] {
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, typ)
			typed[base] = true
		}
	}
	for _, n := range sortedKeys(r.Counters) {
		base, labels := promSplit(n)
		emitType(base, "counter")
		fmt.Fprintf(&b, "%s%s %d\n", base, labels, r.Counters[n])
	}
	for _, n := range sortedKeys(r.Gauges) {
		base, labels := promSplit(n)
		emitType(base, "gauge")
		fmt.Fprintf(&b, "%s%s %g\n", base, labels, r.Gauges[n])
	}
	for _, n := range sortedKeys(r.Histograms) {
		h := r.Histograms[n]
		base, labels := promSplit(n)
		emitType(base, "summary")
		for _, q := range [...]struct {
			q string
			v float64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			fmt.Fprintf(&b, "%s%s %g\n", base, promAddLabel(labels, "quantile", q.q), q.v)
		}
		fmt.Fprintf(&b, "%s_sum%s %d\n", base, labels, h.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", base, labels, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promSplit converts the registry's "name{k=v,...}" form into a
// sanitized Prometheus metric name and a quoted label set ("" when the
// name carries no labels).
func promSplit(n string) (base, labels string) {
	base = n
	var inner string
	if i := strings.IndexByte(n, '{'); i >= 0 {
		base = n[:i]
		inner = strings.TrimSuffix(n[i+1:], "}")
	}
	base = promSanitize(base)
	if inner == "" {
		return base, ""
	}
	var lb strings.Builder
	lb.WriteByte('{')
	for i, kv := range strings.Split(inner, ",") {
		k, v, _ := strings.Cut(kv, "=")
		if i > 0 {
			lb.WriteByte(',')
		}
		fmt.Fprintf(&lb, "%s=%q", promSanitize(k), v)
	}
	lb.WriteByte('}')
	return base, lb.String()
}

// promAddLabel appends one label to an already-rendered label set.
func promAddLabel(labels, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + extra + "}"
}

// promSanitize maps a name onto the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promSanitize(s string) string {
	var b strings.Builder
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
