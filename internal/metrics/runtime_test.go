package metrics

import (
	"runtime"
	"testing"
	"time"
)

func TestRuntimeSampler(t *testing.T) {
	reg := New(0, func() float64 { return 0 })
	// Force at least one GC so the pause histogram has material.
	runtime.GC()
	stop := StartRuntimeSampler(reg, time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	stop()

	snap := reg.Snapshot()
	if g := snap.Gauges[RuntimeGoroutines]; g < 1 {
		t.Errorf("%s = %v, want >= 1", RuntimeGoroutines, g)
	}
	if g := snap.Gauges[RuntimeHeapInuse]; g <= 0 {
		t.Errorf("%s = %v, want > 0", RuntimeHeapInuse, g)
	}
	if c := snap.Counters[RuntimeGCCycles]; c < 1 {
		t.Errorf("%s = %v, want >= 1", RuntimeGCCycles, c)
	}
	h, ok := snap.Histograms[RuntimeGCPauseMicros]
	if !ok || h.Count < 1 {
		t.Errorf("%s missing or empty (ok=%v)", RuntimeGCPauseMicros, ok)
	}

	// stop must halt sampling: no new observations after it returns.
	before := reg.Snapshot().Gauges[RuntimeGoroutines]
	_ = before // sampling is already stopped; just ensure no panic on double snapshot
}
