package metrics

import "sync"

// The live set lets external observers — the CLI's /metrics endpoint and
// progress ticker — see the registries of a run that is still in flight:
// the pipeline registers each rank's registry at startup and unregisters
// it on the way out. The failed graveyard keeps the final snapshots of
// runs that errored partway, bounded, so cmd/profam can still flush a
// merged report when it has no Result.

var (
	liveMu   sync.Mutex
	liveRegs = map[*Registry]struct{}{}
	failed   []Snapshot
	maxDead  = 64 // graveyard bound: one failed 32-rank job, with slack
)

// RegisterLive adds a registry to the process-wide live set. Nil
// registries are ignored.
func RegisterLive(r *Registry) {
	if r == nil {
		return
	}
	liveMu.Lock()
	liveRegs[r] = struct{}{}
	liveMu.Unlock()
}

// UnregisterLive removes a registry from the live set.
func UnregisterLive(r *Registry) {
	if r == nil {
		return
	}
	liveMu.Lock()
	delete(liveRegs, r)
	liveMu.Unlock()
}

// LiveSnapshots snapshots every registered registry. Merge the result
// for a job-wide live view.
func LiveSnapshots() []Snapshot {
	liveMu.Lock()
	regs := make([]*Registry, 0, len(liveRegs))
	for r := range liveRegs {
		regs = append(regs, r)
	}
	liveMu.Unlock()
	out := make([]Snapshot, 0, len(regs))
	for _, r := range regs {
		out = append(out, r.Snapshot())
	}
	return out
}

// StashFailed records the final per-rank snapshots of a failed run so
// the report can still be flushed. Older entries are evicted first.
func StashFailed(snaps []Snapshot) {
	liveMu.Lock()
	failed = append(failed, snaps...)
	if len(failed) > maxDead {
		failed = append([]Snapshot(nil), failed[len(failed)-maxDead:]...)
	}
	liveMu.Unlock()
}

// TakeFailed drains and returns the failed-run graveyard.
func TakeFailed() []Snapshot {
	liveMu.Lock()
	out := failed
	failed = nil
	liveMu.Unlock()
	return out
}
