package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// fixedClock returns a Clock that advances by one second per call,
// giving deterministic span timestamps without real time.
func fixedClock() Clock {
	t := 0.0
	var mu sync.Mutex
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		t++
		return t
	}
}

func TestName(t *testing.T) {
	if got := Name("pairs"); got != "pairs" {
		t.Errorf("Name(pairs) = %q", got)
	}
	if got := Name("pairs", "phase", "rr"); got != "pairs{phase=rr}" {
		t.Errorf("got %q", got)
	}
	if got := Name("x", "a", "1", "b", "2"); got != "x{a=1,b=2}" {
		t.Errorf("got %q", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(3)
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Gauge("g").SetMax(2)
	r.Histogram("h").Observe(5)
	r.StartSpan("s").End()
	r.RecordSpan("s", 0, 1)
	if v := r.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	if v := r.Gauge("g").Value(); v != 0 {
		t.Errorf("nil gauge value = %v", v)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := New(0, fixedClock())
	c := r.Counter("pairs")
	c.Add(5)
	c.Inc()
	if c.Value() != 6 {
		t.Errorf("counter = %d, want 6", c.Value())
	}
	if r.Counter("pairs") != c {
		t.Error("Counter not idempotent per name")
	}

	g := r.Gauge("ratio")
	g.Set(0.5)
	g.SetMax(0.3)
	if g.Value() != 0.5 {
		t.Errorf("SetMax lowered the gauge: %v", g.Value())
	}
	g.SetMax(0.9)
	if g.Value() != 0.9 {
		t.Errorf("SetMax did not raise the gauge: %v", g.Value())
	}

	h := r.Histogram("sizes")
	for _, v := range []int64{1, 2, 3, 1000, 0} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 5 || s.Sum != 1006 || s.Min != 0 || s.Max != 1000 {
		t.Errorf("histogram snapshot = %+v", s)
	}
	// v=0 → bucket 0; 1 → 1; 2,3 → 2; 1000 → 10 (2^9 < 1000 ≤ 2^10).
	want := map[int]int64{0: 1, 1: 1, 2: 2, 10: 1}
	if fmt.Sprint(s.Buckets) != fmt.Sprint(want) {
		t.Errorf("buckets = %v, want %v", s.Buckets, want)
	}
}

func TestSpans(t *testing.T) {
	r := New(3, fixedClock())
	sp := r.StartSpan("rr") // start=1
	sp.End()                // end=2
	r.RecordSpan("bgg", 10, 12.5)
	snap := r.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("got %d spans", len(snap.Spans))
	}
	if snap.Spans[0].Name != "rr" || snap.Spans[0].Seconds() != 1 {
		t.Errorf("span 0 = %+v", snap.Spans[0])
	}
	if snap.Spans[1].Name != "bgg" || snap.Spans[1].Seconds() != 2.5 || snap.Spans[1].Rank != 3 {
		t.Errorf("span 1 = %+v", snap.Spans[1])
	}
}

func TestMergeAndCanonical(t *testing.T) {
	mk := func(rank int, pairs int64, ratio float64, spanLen float64) Snapshot {
		r := New(rank, fixedClock())
		r.Counter("pairs").Add(pairs)
		r.Gauge("ratio").SetMax(ratio)
		r.Histogram("sizes").Observe(pairs)
		r.RecordSpan("rr", 0, spanLen)
		return r.Snapshot()
	}
	rep := Merge([]Snapshot{mk(0, 10, 0.5, 1.0), mk(1, 32, 0.9, 4.0)})
	if rep.NumRanks != 2 {
		t.Errorf("NumRanks = %d", rep.NumRanks)
	}
	if v := rep.CounterValue("pairs"); v != 42 {
		t.Errorf("merged counter = %d, want 42", v)
	}
	if v := rep.GaugeValue("ratio"); v != 0.9 {
		t.Errorf("merged gauge = %v, want max 0.9", v)
	}
	if h := rep.Histograms["sizes"]; h.Count != 2 || h.Sum != 42 {
		t.Errorf("merged histogram = %+v", h)
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Name != "rr" || rep.Phases[0].MaxSeconds != 4.0 {
		t.Errorf("phases = %+v", rep.Phases)
	}

	// Same work, different timings → identical Canonical form.
	repSlow := Merge([]Snapshot{mk(0, 10, 0.5, 7.0), mk(1, 32, 0.9, 2.0)})
	a, _ := json.Marshal(rep.Canonical())
	b, _ := json.Marshal(repSlow.Canonical())
	if !bytes.Equal(a, b) {
		t.Errorf("Canonical differs across timings:\n%s\n%s", a, b)
	}
	// ... but differing work must show through.
	repOther := Merge([]Snapshot{mk(0, 11, 0.5, 1.0), mk(1, 32, 0.9, 4.0)})
	c, _ := json.Marshal(repOther.Canonical())
	if bytes.Equal(a, c) {
		t.Error("Canonical hid a counter difference")
	}
}

func TestReportJSONAndTable(t *testing.T) {
	r := New(0, fixedClock())
	r.Counter(Name("pairs", "phase", "rr")).Add(7)
	r.Gauge("ratio").Set(0.25)
	r.Histogram("sizes").Observe(16)
	r.RecordSpan("rr", 1, 3)
	rep := Merge([]Snapshot{r.Snapshot()})

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.CounterValue("pairs{phase=rr}") != 7 {
		t.Errorf("round-tripped counter = %d", back.CounterValue("pairs{phase=rr}"))
	}

	buf.Reset()
	if err := rep.Table(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pairs{phase=rr}", "ratio", "sizes", "rr"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("table output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines the
// way concurrent ranks and their thread pools do; run under -race it is
// the registry's thread-safety proof. Determinism of the totals is
// asserted at the end.
func TestRegistryConcurrent(t *testing.T) {
	r := New(0, fixedClock())
	const workers = 16
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := Name("shared", "mod", fmt.Sprint(w%4))
			for i := 0; i < iters; i++ {
				r.Counter("total").Inc()
				r.Counter(name).Add(2)
				r.Gauge("depth").SetMax(float64(i))
				r.Histogram("obs").Observe(int64(i))
				sp := r.StartSpan("work")
				sp.End()
				if i%100 == 0 {
					_ = r.Snapshot() // concurrent reader
				}
			}
		}(w)
	}
	wg.Wait()

	snap := r.Snapshot()
	if got := snap.Counters["total"]; got != workers*iters {
		t.Errorf("total = %d, want %d", got, workers*iters)
	}
	var shared int64
	for name, v := range snap.Counters {
		if name != "total" {
			shared += v
		}
	}
	if shared != 2*workers*iters {
		t.Errorf("sharded counters sum = %d, want %d", shared, 2*workers*iters)
	}
	if snap.Gauges["depth"] != iters-1 {
		t.Errorf("depth = %v, want %d", snap.Gauges["depth"], iters-1)
	}
	if h := snap.Histograms["obs"]; h.Count != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*iters)
	}
	if len(snap.Spans) != workers*iters {
		t.Errorf("spans = %d, want %d", len(snap.Spans), workers*iters)
	}
}
