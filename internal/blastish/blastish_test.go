package blastish

import (
	"math/rand"
	"testing"
	"testing/quick"

	"profam/internal/align"
	"profam/internal/seq"
	"profam/internal/workload"
)

func TestWordCode(t *testing.T) {
	a, ok := wordCode([]byte("ACD"))
	if !ok {
		t.Fatal("valid word rejected")
	}
	b, _ := wordCode([]byte("ACE"))
	if a == b {
		t.Error("distinct words collide")
	}
	if _, ok := wordCode([]byte("A D")); ok {
		t.Error("invalid residue accepted")
	}
	// Order matters.
	c, _ := wordCode([]byte("DCA"))
	if a == c {
		t.Error("reversed word collides")
	}
}

// bruteUngappedBest computes the best ungapped segment score containing
// the seed by exhaustive scan (no X-drop cut), an upper bound on the
// X-drop result; with a huge xdrop the two must agree.
func bruteUngappedBest(sc *align.Scoring, q, d []byte, qOff, dOff, w int) int32 {
	var seed int32
	for k := 0; k < w; k++ {
		seed += sc.Score(q[qOff+k], d[dOff+k])
	}
	bestR := int32(0)
	run := int32(0)
	for qi, di := qOff+w, dOff+w; qi < len(q) && di < len(d); qi, di = qi+1, di+1 {
		run += sc.Score(q[qi], d[di])
		if run > bestR {
			bestR = run
		}
	}
	bestL := int32(0)
	run = 0
	for qi, di := qOff-1, dOff-1; qi >= 0 && di >= 0; qi, di = qi-1, di-1 {
		run += sc.Score(q[qi], d[di])
		if run > bestL {
			bestL = run
		}
	}
	return seed + bestR + bestL
}

func TestUngappedXDropMatchesBruteWithLargeXDrop(t *testing.T) {
	sc := align.DefaultScoring()
	f := func(s int64) bool {
		rng := rand.New(rand.NewSource(s))
		q := randProt(rng, 10+rng.Intn(60))
		d := randProt(rng, 10+rng.Intn(60))
		w := 3
		qOff := rng.Intn(len(q) - w)
		dOff := rng.Intn(len(d) - w)
		got := ungappedXDrop(sc, q, d, qOff, dOff, w, 1<<28)
		want := bruteUngappedBest(sc, q, d, qOff, dOff, w)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUngappedXDropNeverExceedsBrute(t *testing.T) {
	sc := align.DefaultScoring()
	f := func(s int64) bool {
		rng := rand.New(rand.NewSource(s))
		q := randProt(rng, 10+rng.Intn(60))
		d := randProt(rng, 10+rng.Intn(60))
		qOff := rng.Intn(len(q) - 3)
		dOff := rng.Intn(len(d) - 3)
		return ungappedXDrop(sc, q, d, qOff, dOff, 3, 5) <= bruteUngappedBest(sc, q, d, qOff, dOff, 3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randProt(rng *rand.Rand, n int) []byte {
	const res = "ACDEFGHIKLMNPQRSTVWY"
	b := make([]byte, n)
	for i := range b {
		b[i] = res[rng.Intn(len(res))]
	}
	return b
}

func TestSearchFindsHomologsSkipsUnrelated(t *testing.T) {
	set, truth := workload.Generate(workload.Params{
		Families: 3, MeanFamilySize: 8, MeanLength: 120,
		Divergence: 0.10, ContainedFrac: 0.01, Singletons: 6, Seed: 12,
	})
	ix, err := NewIndex(set, Params{})
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	foundSame, missedSame, falseCross := 0, 0, 0
	for id := 0; id < set.Len(); id++ {
		hits := ix.Search(set.Get(id).Res, int32(id), 60, &st)
		got := map[int32]bool{}
		for _, h := range hits {
			got[h.Seq] = true
			if truth.Label[h.Seq] != truth.Label[id] {
				falseCross++
			}
		}
		for other := 0; other < set.Len(); other++ {
			if other == id || truth.Label[other] != truth.Label[id] || truth.Redundant[other] || truth.Redundant[id] {
				continue
			}
			if got[int32(other)] {
				foundSame++
			} else {
				missedSame++
			}
		}
	}
	if foundSame == 0 {
		t.Fatal("no same-family hits at all")
	}
	if missedSame > foundSame/5 {
		t.Errorf("missed %d same-family pairs vs %d found", missedSame, foundSame)
	}
	if falseCross > foundSame/10 {
		t.Errorf("%d cross-family hits vs %d true hits", falseCross, foundSame)
	}
	if st.WordHits == 0 || st.Extensions == 0 || st.Banded == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	// The cascade must prune: banded alignments << two-hit diagonals is
	// not guaranteed, but banded << all-pairs must hold.
	allPairs := int64(set.Len()) * int64(set.Len()-1)
	if st.Banded >= allPairs/2 {
		t.Errorf("cascade did not prune: %d banded alignments for %d ordered pairs", st.Banded, allPairs)
	}
}

func TestSearchSelfExclusion(t *testing.T) {
	set := seq.NewSet()
	set.MustAdd("a", "MKWVTFISLLFLFSSAYSRGVFRRDTHKSEIAHRFKDLGE")
	set.MustAdd("b", "MKWVTFISLLFLFSSAYSRGVFRRDTHKSEIAHRFKDLGE")
	ix, err := NewIndex(set, Params{})
	if err != nil {
		t.Fatal(err)
	}
	hits := ix.Search(set.Get(0).Res, 0, 50, nil)
	if len(hits) != 1 || hits[0].Seq != 1 {
		t.Fatalf("expected only the twin sequence, got %v", hits)
	}
	withSelf := ix.Search(set.Get(0).Res, -1, 50, nil)
	if len(withSelf) != 2 {
		t.Fatalf("selfID=-1 should keep self match, got %v", withSelf)
	}
}

func TestSearchOrdering(t *testing.T) {
	set := seq.NewSet()
	base := "MKWVTFISLLFLFSSAYSRGVFRRDTHKSEIAHRFKDLGEEHFKGLVLIA"
	set.MustAdd("query-like", base)
	set.MustAdd("close", base[:46]+"AAAA")
	set.MustAdd("far", "G"+base[1:20]+"PPPPPPPPPPPPPPPPPPPPPPPPPPPPPP")
	ix, err := NewIndex(set, Params{})
	if err != nil {
		t.Fatal(err)
	}
	hits := ix.Search([]byte(base), 0, 1, nil)
	if len(hits) < 2 {
		t.Fatalf("expected 2 hits, got %v", hits)
	}
	if hits[0].Seq != 1 {
		t.Errorf("closest sequence not ranked first: %v", hits)
	}
	if hits[0].Banded < hits[1].Banded {
		t.Errorf("hits not sorted by banded score: %v", hits)
	}
}

func TestIndexValidation(t *testing.T) {
	set := seq.NewSet()
	set.MustAdd("a", "ACDEFG")
	if _, err := NewIndex(set, Params{W: 9}); err == nil {
		t.Error("oversized word length accepted")
	}
	if _, err := NewIndex(set, Params{W: 1}); err == nil {
		t.Error("undersized word length accepted")
	}
}

func BenchmarkSearch(b *testing.B) {
	set, _ := workload.Generate(workload.Params{
		Families: 5, MeanFamilySize: 20, MeanLength: 140,
		Divergence: 0.10, Singletons: 10, Seed: 5,
	})
	ix, err := NewIndex(set, Params{})
	if err != nil {
		b.Fatal(err)
	}
	q := set.Get(0).Res
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(q, 0, 60, nil)
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	set, _ := workload.Generate(workload.Params{
		Families: 5, MeanFamilySize: 20, MeanLength: 140, Seed: 5,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewIndex(set, Params{}); err != nil {
			b.Fatal(err)
		}
	}
}
