// Package blastish implements a BLAST-flavoured seeded search cascade,
// standing in for the BLASTP program the GOS baseline (and the paper's
// Section II) relies on:
//
//  1. an inverted word index over the database (exact w-mers, w = 3);
//  2. the two-hit rule: a diagonal is interesting once two word hits
//     land on it within a bounded window;
//  3. ungapped X-drop extension around the triggering hit;
//  4. banded Smith–Waterman confirmation of survivors.
//
// Unlike classic BLASTP we seed on exact words rather than
// T-neighbourhood words — at metagenomic identity levels (≥30 %
// positives over most of the sequence) a 3-residue exact match occurs in
// essentially every true pair, and exact seeding keeps the index pure
// hashing. The cascade's purpose here is the same as BLAST's: avoid the
// full O(nm) dynamic program for the vast majority of unrelated pairs.
package blastish

import (
	"fmt"
	"sort"

	"profam/internal/align"
	"profam/internal/seq"
)

// Params tune the cascade.
type Params struct {
	// W is the seed word length (default 3).
	W int
	// TwoHitWindow is the maximum distance between two hits on one
	// diagonal for the second to trigger extension (default 40).
	TwoHitWindow int
	// XDrop stops ungapped extension once the running score falls this
	// far below the best seen (default 16).
	XDrop int32
	// UngappedThreshold is the minimum ungapped score that forwards a
	// candidate to banded alignment (default 25).
	UngappedThreshold int32
	// Band is the half-width of the confirming banded Smith–Waterman
	// (default 24).
	Band int
	// Scoring defaults to BLOSUM62 11/1.
	Scoring *align.Scoring
}

func (p Params) withDefaults() Params {
	if p.W == 0 {
		p.W = 3
	}
	if p.TwoHitWindow == 0 {
		p.TwoHitWindow = 40
	}
	if p.XDrop == 0 {
		p.XDrop = 16
	}
	if p.UngappedThreshold == 0 {
		p.UngappedThreshold = 25
	}
	if p.Band == 0 {
		p.Band = 24
	}
	if p.Scoring == nil {
		p.Scoring = align.DefaultScoring()
	}
	return p
}

// Hit is one database sequence reaching the final cascade stage.
type Hit struct {
	Seq      int32 // database sequence ID
	Ungapped int32 // best ungapped X-drop score
	Banded   int32 // banded Smith–Waterman score
}

// Stats counts the cascade's work.
type Stats struct {
	WordHits    int64 // raw word-index hits
	TwoHitDiags int64 // diagonals passing the two-hit rule
	Extensions  int64 // ungapped extensions run
	Banded      int64 // banded alignments run
	Cells       int64 // DP cells of banded alignments
}

// Index is an inverted word index over a sequence set.
type Index struct {
	set    *seq.Set
	params Params
	// posting lists: word code -> packed (seq, offset) entries.
	post map[uint32][]packedPos
}

type packedPos struct {
	seq int32
	off int32
}

// wordCode packs w residues into a uint32 (w ≤ 5 with the 25-letter
// alphabet).
func wordCode(res []byte) (uint32, bool) {
	var code uint32
	for _, r := range res {
		c := seq.Code(r)
		if c == 0 {
			return 0, false
		}
		code = code*uint32(seq.AlphabetSize+1) + uint32(c)
	}
	return code, true
}

// NewIndex builds the inverted index over every sequence of set.
func NewIndex(set *seq.Set, p Params) (*Index, error) {
	p = p.withDefaults()
	if p.W < 2 || p.W > 5 {
		return nil, fmt.Errorf("blastish: word length %d out of range [2,5]", p.W)
	}
	ix := &Index{set: set, params: p, post: make(map[uint32][]packedPos)}
	for _, s := range set.Seqs {
		res := s.Res
		for off := 0; off+p.W <= len(res); off++ {
			if code, ok := wordCode(res[off : off+p.W]); ok {
				ix.post[code] = append(ix.post[code], packedPos{seq: int32(s.ID), off: int32(off)})
			}
		}
	}
	return ix, nil
}

// Search runs the cascade for query against the whole database and
// returns hits with banded score ≥ minScore, best first. Self matches
// (database sequence selfID) are skipped; pass -1 to keep them.
func (ix *Index) Search(query []byte, selfID int32, minScore int32, st *Stats) []Hit {
	p := ix.params
	al := align.NewAligner(p.Scoring)
	type diagState struct {
		lastQ     int32
		triggered bool
	}
	// diag key: (seq, qOff - dbOff); track last hit per diagonal.
	diags := map[int64]*diagState{}
	type cand struct {
		seq        int32
		qOff, dOff int32
	}
	var cands []cand

	for q := 0; q+p.W <= len(query); q++ {
		code, ok := wordCode(query[q : q+p.W])
		if !ok {
			continue
		}
		for _, pos := range ix.post[code] {
			if pos.seq == selfID {
				continue
			}
			if st != nil {
				st.WordHits++
			}
			key := int64(pos.seq)<<32 | int64(uint32(int32(q)-pos.off))
			d := diags[key]
			if d == nil {
				d = &diagState{lastQ: -1 << 30}
				diags[key] = d
			}
			if !d.triggered && int32(q)-d.lastQ <= int32(p.TwoHitWindow) && int32(q) != d.lastQ {
				d.triggered = true
				if st != nil {
					st.TwoHitDiags++
				}
				cands = append(cands, cand{seq: pos.seq, qOff: int32(q), dOff: pos.off})
			}
			d.lastQ = int32(q)
		}
	}

	// Ungapped X-drop extension, then banded confirmation; keep the best
	// banded score per database sequence.
	best := map[int32]Hit{}
	for _, c := range cands {
		db := ix.set.Get(int(c.seq)).Res
		if st != nil {
			st.Extensions++
		}
		ung := ungappedXDrop(p.Scoring, query, db, int(c.qOff), int(c.dOff), p.W, p.XDrop)
		if ung < p.UngappedThreshold {
			continue
		}
		h, seen := best[c.seq]
		if seen && h.Banded > 0 {
			// Already confirmed through a different diagonal; keep the
			// stronger ungapped score for reporting.
			if ung > h.Ungapped {
				h.Ungapped = ung
				best[c.seq] = h
			}
			continue
		}
		if st != nil {
			st.Banded++
		}
		before := al.Cells
		banded := al.LocalScoreBanded(query, db, p.Band)
		if st != nil {
			st.Cells += al.Cells - before
		}
		best[c.seq] = Hit{Seq: c.seq, Ungapped: ung, Banded: banded}
	}

	var out []Hit
	for _, h := range best {
		if h.Banded >= minScore {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Banded != out[j].Banded {
			return out[i].Banded > out[j].Banded
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// ungappedXDrop extends a w-length seed at (qOff, dOff) in both
// directions without gaps, stopping when the running score drops more
// than xdrop below the best, and returns the best total score.
func ungappedXDrop(sc *align.Scoring, query, db []byte, qOff, dOff, w int, xdrop int32) int32 {
	var seed int32
	for k := 0; k < w; k++ {
		seed += sc.Score(query[qOff+k], db[dOff+k])
	}
	total := seed

	// Right extension.
	run, bestGain := int32(0), int32(0)
	for qi, di := qOff+w, dOff+w; qi < len(query) && di < len(db); qi, di = qi+1, di+1 {
		run += sc.Score(query[qi], db[di])
		if run > bestGain {
			bestGain = run
		}
		if bestGain-run > xdrop {
			break
		}
	}
	total += bestGain

	// Left extension.
	run, bestGain = 0, 0
	for qi, di := qOff-1, dOff-1; qi >= 0 && di >= 0; qi, di = qi-1, di-1 {
		run += sc.Score(query[qi], db[di])
		if run > bestGain {
			bestGain = run
		}
		if bestGain-run > xdrop {
			break
		}
	}
	total += bestGain
	return total
}
