// Package quality implements the paper's clustering-agreement measures
// (Equations 1–4): a pair of sequences is a true positive when both
// schemes cluster them together, a true negative when both keep them
// apart, and so on. Precision, sensitivity, overlap quality, and the
// correlation coefficient summarise the confusion counts.
//
// Following the paper, only sequences that are included (label ≥ 0) in
// BOTH clusterings participate in the counting.
package quality

import (
	"fmt"
	"math"
)

// Confusion holds pairwise agreement counts between a Test clustering and
// a Benchmark clustering.
type Confusion struct {
	TP, TN, FP, FN int64
	N              int // sequences counted (present in both clusterings)
}

// Compare computes the confusion counts between test and bench labelings.
// Labels are arbitrary non-negative integers; a negative label means the
// sequence is not part of that clustering and excludes it from counting.
// The slices must have equal length (one entry per sequence).
func Compare(test, bench []int) (Confusion, error) {
	if len(test) != len(bench) {
		return Confusion{}, fmt.Errorf("quality: label slices differ in length: %d vs %d", len(test), len(bench))
	}
	// Consider only sequences clustered under both schemes.
	type cell struct{ t, b int }
	cells := map[cell]int64{}
	tCount := map[int]int64{}
	bCount := map[int]int64{}
	var n int64
	for i := range test {
		if test[i] < 0 || bench[i] < 0 {
			continue
		}
		n++
		cells[cell{test[i], bench[i]}]++
		tCount[test[i]]++
		bCount[bench[i]]++
	}
	choose2 := func(x int64) int64 { return x * (x - 1) / 2 }
	var tp int64
	for _, c := range cells {
		tp += choose2(c)
	}
	var sameT, sameB int64
	for _, c := range tCount {
		sameT += choose2(c)
	}
	for _, c := range bCount {
		sameB += choose2(c)
	}
	fp := sameT - tp
	fn := sameB - tp
	tn := choose2(n) - tp - fp - fn
	return Confusion{TP: tp, TN: tn, FP: fp, FN: fn, N: int(n)}, nil
}

// Precision is TP / (TP + FP) — Equation 1.
func (c Confusion) Precision() float64 { return ratio(c.TP, c.TP+c.FP) }

// Sensitivity is TP / (TP + FN) — Equation 2.
func (c Confusion) Sensitivity() float64 { return ratio(c.TP, c.TP+c.FN) }

// OverlapQuality is TP / (TP + FP + FN) — Equation 3.
func (c Confusion) OverlapQuality() float64 { return ratio(c.TP, c.TP+c.FP+c.FN) }

// CorrelationCoefficient is Equation 4 (the Matthews correlation over
// pair counts).
func (c Confusion) CorrelationCoefficient() float64 {
	num := float64(c.TP)*float64(c.TN) - float64(c.FP)*float64(c.FN)
	den := math.Sqrt(float64(c.TP+c.FP)) * math.Sqrt(float64(c.TN+c.FN)) *
		math.Sqrt(float64(c.TP+c.FN)) * math.Sqrt(float64(c.TN+c.FP))
	if den == 0 {
		return 0
	}
	return num / den
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func (c Confusion) String() string {
	return fmt.Sprintf("PR=%.2f%% SE=%.2f%% OQ=%.2f%% CC=%.2f%% (TP=%d TN=%d FP=%d FN=%d over %d seqs)",
		100*c.Precision(), 100*c.Sensitivity(), 100*c.OverlapQuality(),
		100*c.CorrelationCoefficient(), c.TP, c.TN, c.FP, c.FN, c.N)
}

// LabelsFromClusters converts cluster member lists into a label slice of
// length n; sequences in no cluster get -1.
func LabelsFromClusters(clusters [][]int, n int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	for li, members := range clusters {
		for _, id := range members {
			labels[id] = li
		}
	}
	return labels
}

// LabelsFromInt32 widens an []int32 label slice (as produced by the pace
// phases) to []int.
func LabelsFromInt32(in []int32) []int {
	out := make([]int, len(in))
	for i, v := range in {
		out[i] = int(v)
	}
	return out
}
