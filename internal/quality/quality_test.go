package quality

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPerfectAgreement(t *testing.T) {
	test := []int{0, 0, 1, 1, 2}
	c, err := Compare(test, test)
	if err != nil {
		t.Fatal(err)
	}
	if c.FP != 0 || c.FN != 0 {
		t.Errorf("perfect agreement has FP=%d FN=%d", c.FP, c.FN)
	}
	if c.Precision() != 1 || c.Sensitivity() != 1 || c.OverlapQuality() != 1 {
		t.Errorf("perfect agreement metrics: %s", c)
	}
	if cc := c.CorrelationCoefficient(); cc < 1-1e-9 || cc > 1+1e-9 {
		t.Errorf("CC = %v, want 1", cc)
	}
}

func TestKnownSmallCase(t *testing.T) {
	// 4 sequences: test {0,1},{2,3}; bench {0,1,2},{3}.
	test := []int{0, 0, 1, 1}
	bench := []int{0, 0, 0, 1}
	c, err := Compare(test, bench)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs: (0,1): together/together TP. (0,2),(1,2): apart/together FN.
	// (2,3): together/apart FP. (0,3),(1,3): apart/apart TN.
	if c.TP != 1 || c.FN != 2 || c.FP != 1 || c.TN != 2 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Precision() != 0.5 {
		t.Errorf("PR = %v", c.Precision())
	}
	if c.Sensitivity() != 1.0/3 {
		t.Errorf("SE = %v", c.Sensitivity())
	}
	if c.OverlapQuality() != 0.25 {
		t.Errorf("OQ = %v", c.OverlapQuality())
	}
}

func TestExclusionOfUnclustered(t *testing.T) {
	test := []int{0, 0, -1, 1}
	bench := []int{0, 0, 0, -1}
	c, err := Compare(test, bench)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 2 {
		t.Errorf("counted %d sequences, want 2", c.N)
	}
	if c.TP != 1 || c.FP+c.FN+c.TN != 0 {
		t.Errorf("confusion = %+v", c)
	}
}

func TestLengthMismatch(t *testing.T) {
	if _, err := Compare([]int{0}, []int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// bruteCompare counts pairs directly.
func bruteCompare(test, bench []int) Confusion {
	var c Confusion
	for i := range test {
		if test[i] < 0 || bench[i] < 0 {
			continue
		}
		c.N++
	}
	for i := range test {
		if test[i] < 0 || bench[i] < 0 {
			continue
		}
		for j := i + 1; j < len(test); j++ {
			if test[j] < 0 || bench[j] < 0 {
				continue
			}
			st := test[i] == test[j]
			sb := bench[i] == bench[j]
			switch {
			case st && sb:
				c.TP++
			case st && !sb:
				c.FP++
			case !st && sb:
				c.FN++
			default:
				c.TN++
			}
		}
	}
	return c
}

func TestAgainstBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		test := make([]int, n)
		bench := make([]int, n)
		for i := range test {
			test[i] = rng.Intn(6) - 1
			bench[i] = rng.Intn(6) - 1
		}
		got, err := Compare(test, bench)
		if err != nil {
			return false
		}
		want := bruteCompare(test, bench)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLabelsFromClusters(t *testing.T) {
	labels := LabelsFromClusters([][]int{{0, 2}, {3}}, 5)
	want := []int{0, -1, 0, 1, -1}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestLabelsFromInt32(t *testing.T) {
	out := LabelsFromInt32([]int32{-1, 3, 7})
	if out[0] != -1 || out[1] != 3 || out[2] != 7 {
		t.Errorf("widened labels = %v", out)
	}
}

func TestStringRendering(t *testing.T) {
	c := Confusion{TP: 1, TN: 1, FP: 1, FN: 1, N: 4}
	if len(c.String()) == 0 {
		t.Error("empty string")
	}
}
