package quality_test

import (
	"fmt"

	"profam/internal/quality"
)

// ExampleCompare scores a test clustering against a benchmark.
func ExampleCompare() {
	test := []int{0, 0, 1, 1, -1} // last sequence unclustered
	bench := []int{0, 0, 0, 1, 1}
	c, err := quality.Compare(test, bench)
	if err != nil {
		panic(err)
	}
	fmt.Printf("PR=%.2f SE=%.2f N=%d\n", c.Precision(), c.Sensitivity(), c.N)
	// Output:
	// PR=0.50 SE=0.33 N=4
}
