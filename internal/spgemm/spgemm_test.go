package spgemm

import (
	"bytes"
	"math/rand"
	"testing"

	"profam/internal/seq"
	"profam/internal/suffixtree"
)

// randomSet builds a corpus with planted shared motifs plus random
// background, so pair structure is non-trivial at small sizes.
func randomSet(t testing.TB, n int, seed int64) *seq.Set {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	motifs := make([]string, 4)
	for m := range motifs {
		motifs[m] = randResidues(rng, 12+rng.Intn(8))
	}
	set := seq.NewSet()
	for i := 0; i < n; i++ {
		s := randResidues(rng, 40+rng.Intn(40))
		// Splice 0–2 motifs into the background.
		for _, m := range motifs {
			if rng.Intn(2) == 0 {
				at := rng.Intn(len(s))
				s = s[:at] + m + s[at:]
			}
		}
		set.MustAdd("", s)
	}
	return set
}

func randResidues(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = seq.Residues[rng.Intn(20)]
	}
	return string(b)
}

func allOwn(buckets []suffixtree.Bucket) []int {
	own := make([]int, len(buckets))
	for i := range own {
		own[i] = i
	}
	return own
}

// drain consumes a source to exhaustion in small chunks, exercising the
// batch boundary logic.
func drain(t *testing.T, s *Source) []suffixtree.Pair {
	t.Helper()
	var out []suffixtree.Pair
	for {
		ps, done := s.Next(7)
		out = append(out, ps...)
		if done {
			return out
		}
	}
}

func pairSet(ps []suffixtree.Pair) map[int64]bool {
	m := make(map[int64]bool, len(ps))
	for _, p := range ps {
		m[pairKey(p.SeqA, p.SeqB)] = true
	}
	return m
}

// gstPairSet is the reference: the deduplicated maximal-match pair set
// of the generalized suffix tree.
func gstPairSet(t *testing.T, set *seq.Set, k, pl int) map[int64]bool {
	t.Helper()
	trees, err := suffixtree.Build(set, suffixtree.Options{MinMatch: k, PrefixLen: pl})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int64]bool)
	suffixtree.MergedPairs(trees, func(p suffixtree.Pair) bool {
		out[pairKey(p.SeqA, p.SeqB)] = true
		return true
	})
	return out
}

func newTestSource(t *testing.T, set *seq.Set, opt Options) *Source {
	t.Helper()
	buckets, err := suffixtree.Buckets(set, suffixtree.Options{MinMatch: opt.K, PrefixLen: opt.PrefixLen})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(set, buckets, allOwn(buckets), opt, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestPairSetMatchesGST is the backend-equivalence core: with the
// default thresholds, the candidate pair set of the sparse multiply
// equals the GST maximal-match pair set ("shares a ψ-mer" ⟺ "shares a
// maximal match ≥ ψ").
func TestPairSetMatchesGST(t *testing.T) {
	for _, n := range []int{5, 20, 60} {
		set := randomSet(t, n, int64(100+n))
		for _, k := range []int{4, 6, 8} {
			opt := Options{K: k, PrefixLen: 2}
			got := pairSet(drain(t, newTestSource(t, set, opt)))
			want := gstPairSet(t, set, k, 2)
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: sparse emitted %d pairs, GST %d", n, k, len(got), len(want))
			}
			for key := range want {
				if !got[key] {
					t.Fatalf("n=%d k=%d: GST pair %d missing from sparse set", n, k, key)
				}
			}
		}
	}
}

// checkSeed asserts that a pair's seed is a genuine shared occurrence,
// at least K long, and maximal on both ends.
func checkSeed(t *testing.T, set *seq.Set, p suffixtree.Pair, k int) {
	t.Helper()
	if p.SeqA >= p.SeqB {
		t.Fatalf("pair not ordered: %+v", p)
	}
	if p.Len < int32(k) {
		t.Fatalf("seed shorter than K: %+v", p)
	}
	ra, rb := set.Seqs[p.SeqA].Res, set.Seqs[p.SeqB].Res
	if p.OffA < 0 || int(p.OffA+p.Len) > len(ra) || p.OffB < 0 || int(p.OffB+p.Len) > len(rb) {
		t.Fatalf("seed out of bounds: %+v (lens %d, %d)", p, len(ra), len(rb))
	}
	if !bytes.Equal(ra[p.OffA:p.OffA+p.Len], rb[p.OffB:p.OffB+p.Len]) {
		t.Fatalf("seed residues differ: %+v", p)
	}
	if p.OffA > 0 && p.OffB > 0 && ra[p.OffA-1] == rb[p.OffB-1] {
		t.Fatalf("seed not left-maximal: %+v", p)
	}
	ea, eb := p.OffA+p.Len, p.OffB+p.Len
	if int(ea) < len(ra) && int(eb) < len(rb) && ra[ea] == rb[eb] {
		t.Fatalf("seed not right-maximal: %+v", p)
	}
}

func TestSeedsAreSharedMatches(t *testing.T) {
	set := randomSet(t, 40, 7)
	const k = 6
	for _, p := range drain(t, newTestSource(t, set, Options{K: k, PrefixLen: 2})) {
		checkSeed(t, set, p, k)
	}
}

// TestPartitionInvariance: splitting the buckets across "ranks" must
// not change the union pair set or the summed arithmetic counters —
// the property the rank-distributed backend relies on.
func TestPartitionInvariance(t *testing.T) {
	set := randomSet(t, 50, 11)
	opt := Options{K: 6, PrefixLen: 2}
	buckets, err := suffixtree.Buckets(set, suffixtree.Options{MinMatch: opt.K, PrefixLen: opt.PrefixLen})
	if err != nil {
		t.Fatal(err)
	}
	whole, err := NewSource(set, buckets, allOwn(buckets), opt, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	wholePairs := pairSet(drain(t, whole))
	wholeStats := whole.Stats()

	for _, parts := range []int{2, 3} {
		assign := suffixtree.AssignBuckets(buckets, parts)
		union := make(map[int64]bool)
		var raw, blocks int64
		for _, own := range assign {
			src, err := NewSource(set, buckets, own, opt, Hooks{})
			if err != nil {
				t.Fatal(err)
			}
			for key := range pairSet(drain(t, src)) {
				union[key] = true
			}
			st := src.Stats()
			raw += st.Raw
			blocks += st.Blocks
		}
		if raw != wholeStats.Raw {
			t.Fatalf("parts=%d: raw %d, whole %d", parts, raw, wholeStats.Raw)
		}
		if blocks != wholeStats.Blocks {
			t.Fatalf("parts=%d: blocks %d, whole %d", parts, blocks, wholeStats.Blocks)
		}
		if len(union) != len(wholePairs) {
			t.Fatalf("parts=%d: union %d pairs, whole %d", parts, len(union), len(wholePairs))
		}
		for key := range wholePairs {
			if !union[key] {
				t.Fatalf("parts=%d: pair %d missing from union", parts, key)
			}
		}
	}
}

// TestBlockSizeInvariance: the emitted pair set must not depend on the
// accumulator block bound (block boundaries only affect batching).
func TestBlockSizeInvariance(t *testing.T) {
	set := randomSet(t, 40, 13)
	ref := pairSet(drain(t, newTestSource(t, set, Options{K: 6, PrefixLen: 2})))
	for _, nnz := range []int{1, 7, 64, 1 << 20} {
		got := pairSet(drain(t, newTestSource(t, set, Options{K: 6, PrefixLen: 2, BlockNNZ: nnz})))
		if len(got) != len(ref) {
			t.Fatalf("BlockNNZ=%d: %d pairs, want %d", nnz, len(got), len(ref))
		}
		for key := range ref {
			if !got[key] {
				t.Fatalf("BlockNNZ=%d: pair %d missing", nnz, key)
			}
		}
	}
}

// TestNewFromFilter: with the epoch filter on, both-old pairs are
// suppressed and counted, and everything else matches a manual filter
// of the unfiltered set.
func TestNewFromFilter(t *testing.T) {
	set := randomSet(t, 50, 17)
	const newFrom = 30
	full := newTestSource(t, set, Options{K: 6, PrefixLen: 2})
	fullPairs := pairSet(drain(t, full))

	filt := newTestSource(t, set, Options{K: 6, PrefixLen: 2, NewFrom: newFrom})
	got := drain(t, filt)
	for _, p := range got {
		if p.SeqB < newFrom {
			t.Fatalf("both-old pair emitted: %+v", p)
		}
	}
	want := 0
	for key := range fullPairs {
		if int32(uint32(key)) >= newFrom { // SeqB is the low word
			want++
		}
	}
	if len(pairSet(got)) != want {
		t.Fatalf("filtered set has %d pairs, want %d", len(pairSet(got)), want)
	}
	st := filt.Stats()
	if st.Raw != full.Stats().Raw {
		t.Fatalf("raw changed under NewFrom: %d vs %d", st.Raw, full.Stats().Raw)
	}
	if st.Prior == 0 {
		t.Fatal("expected suppressed prior pairs")
	}
}

// TestMaxRowOcc: capping high-occupancy rows drops pairs but never
// invents them, and the cap is counted.
func TestMaxRowOcc(t *testing.T) {
	set := seq.NewSet()
	// Every sequence shares one low-complexity run plus a unique tail.
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 12; i++ {
		set.MustAdd("", "AAAAAAAAAA"+randResidues(rng, 30))
	}
	ref := pairSet(drain(t, newTestSource(t, set, Options{K: 6, PrefixLen: 2})))
	capped := newTestSource(t, set, Options{K: 6, PrefixLen: 2, MaxRowOcc: 4})
	got := pairSet(drain(t, capped))
	if capped.Stats().CappedRows == 0 {
		t.Fatal("expected capped rows on the poly-A corpus")
	}
	for key := range got {
		if !ref[key] {
			t.Fatalf("capped run invented pair %d", key)
		}
	}
}

// TestMinShared: requiring more shared k-mers per block only shrinks
// the candidate set.
func TestMinShared(t *testing.T) {
	set := randomSet(t, 40, 29)
	ref := pairSet(drain(t, newTestSource(t, set, Options{K: 6, PrefixLen: 2})))
	got := pairSet(drain(t, newTestSource(t, set, Options{K: 6, PrefixLen: 2, MinShared: 3})))
	if len(got) >= len(ref) {
		t.Fatalf("MinShared=3 did not shrink the set: %d vs %d", len(got), len(ref))
	}
	for key := range got {
		if !ref[key] {
			t.Fatalf("MinShared run invented pair %d", key)
		}
	}
}

func TestIndexPeakBytes(t *testing.T) {
	set := randomSet(t, 50, 31)
	buckets, err := suffixtree.Buckets(set, suffixtree.Options{MinMatch: 6, PrefixLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	peak, err := IndexPeakBytes(set, buckets, Options{K: 6, PrefixLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	var largest int64
	for _, b := range buckets {
		if fp := int64(len(b.Suffixes)) * 8; fp > largest {
			largest = fp
		}
	}
	if peak < largest {
		t.Fatalf("peak %d below largest bucket's posting bytes %d", peak, largest)
	}
	src, err := NewSource(set, buckets, allOwn(buckets), Options{K: 6, PrefixLen: 2}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, src)
	if got := src.Stats().PeakBytes; got != peak {
		t.Fatalf("streaming peak %d != measured peak %d", got, peak)
	}
}

func TestOptionValidation(t *testing.T) {
	set := randomSet(t, 5, 37)
	buckets, err := suffixtree.Buckets(set, suffixtree.Options{MinMatch: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Options{
		{K: 0},
		{K: 4, PrefixLen: 5},
		{K: 4, BlockNNZ: -1},
		{K: 4, MinShared: -2},
		{K: 4, MaxRowOcc: -1},
	} {
		if _, err := NewSource(set, buckets, nil, opt, Hooks{}); err == nil {
			t.Fatalf("options %+v accepted", opt)
		}
	}
}

// FuzzSeedValidity drives the seed invariants from arbitrary corpora:
// every emitted seed must be a real shared k-mer occurrence extended to
// a maximal match.
func FuzzSeedValidity(f *testing.F) {
	f.Add("ACDEFGHIKLMNPQRST", "CDEFGHIKLMNPQ", "GGGACDEFGHIKW")
	f.Add("AAAAAAAAAAAA", "AAAAAAAA", "AAAAAAAAAA")
	f.Add("MKVLATTLLLG", "MKVLATTQQQG", "WWMKVLATT")
	f.Fuzz(func(t *testing.T, s1, s2, s3 string) {
		set := seq.NewSet()
		for _, raw := range []string{s1, s2, s3} {
			if len(raw) < 8 {
				t.Skip()
			}
			// Map arbitrary bytes onto the residue alphabet.
			b := make([]byte, len(raw))
			for i := 0; i < len(raw); i++ {
				b[i] = seq.Residues[int(raw[i])%20]
			}
			set.MustAdd("", string(b))
		}
		const k = 5
		buckets, err := suffixtree.Buckets(set, suffixtree.Options{MinMatch: k, PrefixLen: 2})
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewSource(set, buckets, allOwn(buckets), Options{K: k, PrefixLen: 2}, Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		seenPairs := make(map[int64]bool)
		for {
			ps, done := src.Next(16)
			for _, p := range ps {
				checkSeed(t, set, p, k)
				key := pairKey(p.SeqA, p.SeqB)
				if seenPairs[key] {
					t.Fatalf("pair %d emitted twice", key)
				}
				seenPairs[key] = true
			}
			if done {
				break
			}
		}
		want := gstPairSet(t, set, k, 2)
		if len(seenPairs) != len(want) {
			t.Fatalf("sparse %d pairs, GST %d", len(seenPairs), len(want))
		}
	})
}
