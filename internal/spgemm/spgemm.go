// Package spgemm generates promising candidate pairs from a sparse
// k-mer × sequence matrix instead of a maximal-match index — the
// PASTIS-style formulation of the promising-pairs problem as a blocked,
// streamed A·Aᵀ overlap multiply.
//
// The matrix A has one row per distinct ψ-mer of the corpus and one
// column per sequence; a stored entry A[r][s] packs the offset of an
// occurrence of ψ-mer r in sequence s. The candidate set of the
// multiply — the sequence pairs sharing at least one row — is exactly
// the GST/ESA promising-pair set: a shared ψ-mer extends to a maximal
// match of length ≥ ψ, and conversely any maximal match of length ≥ ψ
// contains a shared ψ-mer at its start. Each emitted pair carries the
// coordinates of a genuine shared ψ-mer occurrence, extended to its
// maximal match, so the alignment cascade seeds on it unchanged.
//
// Memory is the point. The suffix-tree and suffix-array backends hold
// every subtree of their bucket assignment alive for the whole phase;
// this backend materializes one bucket's CSR block at a time (8 bytes
// per posting plus 4 bytes per row boundary) and streams the product
// through a bounded per-block accumulator, so peak index memory is the
// largest single bucket rather than the sum of all of them.
//
// Determinism: buckets arrive in the caller's (weight-sorted, rank-
// assigned) order, rows within a bucket are sorted by k-mer bytes, the
// accumulator flushes in insertion order re-sorted by descending seed
// length with stable ties — every step is a total order independent of
// thread count and rank layout, and all counters are computed by
// per-row arithmetic so they are invariant under any partition of the
// buckets across ranks.
package spgemm

import (
	"bytes"
	"fmt"
	"sort"

	"profam/internal/seq"
	"profam/internal/suffixtree"
)

// Options configure a Source.
type Options struct {
	// K is ψ — the k-mer width, which must equal the pipeline's minimum
	// maximal-match length for the backend-equivalence argument to hold.
	K int
	// PrefixLen is the bucketing granularity the caller's buckets were
	// built with; rows of a bucket share this prefix, so only the
	// remaining K−PrefixLen residues are compared when sorting rows.
	PrefixLen int
	// BlockNNZ bounds the postings gathered into one accumulator block
	// (default 4096). A block always contains at least one full row.
	BlockNNZ int
	// MinShared is the shared-k-mer count a pair must reach within one
	// block to be emitted (default 1). Values above 1 trade recall for
	// pair volume and break exact backend equivalence; the count is
	// per block, not global, so a pair spread thinly across blocks may
	// be suppressed entirely.
	MinShared int
	// MaxRowOcc caps the distinct sequences a single k-mer row may
	// touch; rows above the cap (low-complexity repeats) count their
	// raw pairs but contribute nothing to the accumulator. 0 disables
	// the cap, preserving backend equivalence.
	MaxRowOcc int
	// NewFrom > 0 is the incremental-epoch filter: pairs whose
	// sequences both predate it are counted under Prior and skipped at
	// expansion, mirroring the GST/ESA enumeration filter.
	NewFrom int32
}

func (o Options) withDefaults() (Options, error) {
	if o.K < 1 {
		return o, fmt.Errorf("spgemm: K must be >= 1, got %d", o.K)
	}
	if o.PrefixLen == 0 {
		o.PrefixLen = 2
		if o.PrefixLen > o.K {
			o.PrefixLen = o.K
		}
	}
	if o.PrefixLen < 1 || o.PrefixLen > o.K {
		return o, fmt.Errorf("spgemm: PrefixLen must be in [1, K], got %d", o.PrefixLen)
	}
	if o.BlockNNZ == 0 {
		o.BlockNNZ = 4096
	}
	if o.BlockNNZ < 1 {
		return o, fmt.Errorf("spgemm: BlockNNZ must be >= 1, got %d", o.BlockNNZ)
	}
	if o.MinShared == 0 {
		o.MinShared = 1
	}
	if o.MinShared < 1 {
		return o, fmt.Errorf("spgemm: MinShared must be >= 1, got %d", o.MinShared)
	}
	if o.MaxRowOcc < 0 {
		return o, fmt.Errorf("spgemm: MaxRowOcc must be >= 0, got %d", o.MaxRowOcc)
	}
	return o, nil
}

// Hooks observe the streaming multiply; either may be nil. They fire on
// the goroutine driving Next.
type Hooks struct {
	// OnBucket fires after one bucket's CSR block is built: postings
	// stored, distinct k-mer rows, and the block's resident footprint
	// in bytes.
	OnBucket func(postings, rows int, footprint int64)
	// OnBlock fires after one accumulator block flushes, with the
	// number of distinct pair entries the accumulator held.
	OnBlock func(entries int)
}

// Stats are the multiply's running totals. Raw, Prior, Blocks and
// CappedRows are per-row arithmetic, invariant under bucket
// partitioning; AccumPeak and PeakBytes are per-rank high-water marks.
type Stats struct {
	Raw        int64 // distinct-sequence pairs over all rows, before dedup
	Prior      int64 // raw pairs suppressed by the NewFrom epoch filter
	Blocks     int64 // accumulator blocks flushed
	CappedRows int64 // rows dropped by MaxRowOcc
	AccumPeak  int   // high-water distinct entries in one accumulator block
	PeakBytes  int64 // largest single CSR block footprint
}

// csr is one bucket's slice of the k-mer × sequence matrix: postings
// sorted by (k-mer bytes, sequence, offset) with rowStart[i] marking
// where row i begins (len(rowStart) == rows+1).
type csr struct {
	postings []suffixtree.Suffix
	rowStart []int32
}

func (m *csr) rows() int { return len(m.rowStart) - 1 }

// footprint is the block's resident size: 8 bytes per posting plus 4
// per row boundary.
func (m *csr) footprint() int64 {
	return int64(len(m.postings))*8 + int64(len(m.rowStart))*4
}

// accEnt is one accumulator entry: a candidate pair, the seed
// coordinates of the first shared k-mer that created it, and how many
// distinct k-mer rows of the current block the pair shares.
type accEnt struct {
	a, b       int32
	offA, offB int32
	count      int32
}

// Source streams candidate pairs from the blocked multiply over the
// buckets this rank owns. It is single-goroutine, like the GST/ESA
// pair sources.
type Source struct {
	set     *seq.Set
	buckets []suffixtree.Bucket
	own     []int
	opt     Options
	hooks   Hooks

	bi   int // next index into own
	cur  csr // current bucket's CSR block
	row  int // next row of cur
	seen map[int64]bool

	buf []suffixtree.Pair
	pos int

	ents []accEnt
	idx  map[int64]int32
	dseq []suffixtree.Suffix // per-row distinct-sequence scratch

	st Stats
}

// NewSource builds a streaming pair source over the given buckets (the
// caller's weight-sorted bucket list, typically from
// suffixtree.Buckets) restricted to the indices in own — the same
// ownership lists suffixtree.AssignBuckets hands each rank, so the
// sparse backend partitions work identically to the tree backends.
func NewSource(set *seq.Set, buckets []suffixtree.Bucket, own []int, opt Options, hooks Hooks) (*Source, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Source{
		set:     set,
		buckets: buckets,
		own:     own,
		opt:     opt,
		hooks:   hooks,
		seen:    make(map[int64]bool),
		idx:     make(map[int64]int32),
	}, nil
}

// Stats returns the multiply's totals so far.
func (s *Source) Stats() Stats { return s.st }

func pairKey(a, b int32) int64 { return int64(a)<<32 | int64(uint32(b)) }

// kmer returns the row-distinguishing residues of a posting: the k-mer
// minus the bucket-shared prefix.
func (s *Source) kmer(sf suffixtree.Suffix) []byte {
	res := s.set.Seqs[sf.Seq].Res
	return res[int(sf.Off)+s.opt.PrefixLen : int(sf.Off)+s.opt.K]
}

// buildBucket materializes one bucket's CSR block. Sorting by k-mer
// bytes then (sequence, offset) is a total order, so the row layout is
// identical regardless of the bucket's input suffix order.
func (s *Source) buildBucket(b suffixtree.Bucket) {
	s.cur.postings = append(s.cur.postings[:0], b.Suffixes...)
	p := s.cur.postings
	sort.Slice(p, func(i, j int) bool {
		if c := bytes.Compare(s.kmer(p[i]), s.kmer(p[j])); c != 0 {
			return c < 0
		}
		if p[i].Seq != p[j].Seq {
			return p[i].Seq < p[j].Seq
		}
		return p[i].Off < p[j].Off
	})
	s.cur.rowStart = s.cur.rowStart[:0]
	for i := 0; i < len(p); {
		s.cur.rowStart = append(s.cur.rowStart, int32(i))
		j := i + 1
		for j < len(p) && bytes.Equal(s.kmer(p[i]), s.kmer(p[j])) {
			j++
		}
		i = j
	}
	s.cur.rowStart = append(s.cur.rowStart, int32(len(p)))
	s.row = 0
	fp := s.cur.footprint()
	if fp > s.st.PeakBytes {
		s.st.PeakBytes = fp
	}
	if s.hooks.OnBucket != nil {
		s.hooks.OnBucket(len(p), s.cur.rows(), fp)
	}
}

// expandRow feeds one k-mer row's distinct-sequence occurrence list
// into the accumulator. Counting is arithmetic over the distinct count
// so Raw/Prior are partition-invariant; only the accumulator inserts
// depend on the seen/dedup state.
func (s *Source) expandRow(r int) {
	p := s.cur.postings[s.cur.rowStart[r]:s.cur.rowStart[r+1]]
	// Postings within a row are sorted by (sequence, offset): compress
	// to one representative occurrence — the lowest offset — per
	// sequence.
	d := s.dseq[:0]
	for i := 0; i < len(p); {
		d = append(d, p[i])
		sid := p[i].Seq
		for i < len(p) && p[i].Seq == sid {
			i++
		}
	}
	s.dseq = d
	n := len(d)
	if n < 2 {
		return
	}
	s.st.Raw += int64(n) * int64(n-1) / 2
	firstNew := 0
	if s.opt.NewFrom > 0 {
		firstNew = sort.Search(n, func(i int) bool { return d[i].Seq >= s.opt.NewFrom })
		s.st.Prior += int64(firstNew) * int64(firstNew-1) / 2
	}
	if s.opt.MaxRowOcc > 0 && n > s.opt.MaxRowOcc {
		s.st.CappedRows++
		return
	}
	for i := 0; i < n; i++ {
		jStart := i + 1
		if i < firstNew && jStart < firstNew {
			jStart = firstNew // both-old pairs are settled by the prior epoch
		}
		for j := jStart; j < n; j++ {
			key := pairKey(d[i].Seq, d[j].Seq)
			if s.seen[key] {
				continue
			}
			if ei, ok := s.idx[key]; ok {
				s.ents[ei].count++
				continue
			}
			s.idx[key] = int32(len(s.ents))
			s.ents = append(s.ents, accEnt{
				a: d[i].Seq, b: d[j].Seq,
				offA: d[i].Off, offB: d[j].Off,
				count: 1,
			})
		}
	}
}

// extend grows a shared k-mer occurrence to its maximal match, so the
// emitted seed matches what the tree backends would have anchored the
// cascade on (the cascade's verdicts do not depend on which seed is
// chosen — see DESIGN.md §7e — but a longer seed is a better anchor).
func (s *Source) extend(a, b, offA, offB int32) (int32, int32, int32) {
	ra, rb := s.set.Seqs[a].Res, s.set.Seqs[b].Res
	endA, endB := offA+int32(s.opt.K), offB+int32(s.opt.K)
	for offA > 0 && offB > 0 && ra[offA-1] == rb[offB-1] {
		offA--
		offB--
	}
	for int(endA) < len(ra) && int(endB) < len(rb) && ra[endA] == rb[endB] {
		endA++
		endB++
	}
	return offA, offB, endA - offA
}

// processBlock gathers rows into one accumulator block (bounded by
// BlockNNZ postings, always at least one row), then flushes the
// surviving entries into buf in descending seed-length order.
func (s *Source) processBlock() {
	nnz := 0
	rows := s.cur.rows()
	for s.row < rows {
		lo, hi := s.cur.rowStart[s.row], s.cur.rowStart[s.row+1]
		if nnz > 0 && nnz+int(hi-lo) > s.opt.BlockNNZ {
			break
		}
		s.expandRow(s.row)
		s.row++
		nnz += int(hi - lo)
	}
	if len(s.ents) > s.st.AccumPeak {
		s.st.AccumPeak = len(s.ents)
	}
	blockStart := len(s.buf)
	for i := range s.ents {
		e := &s.ents[i]
		if int(e.count) < s.opt.MinShared {
			continue
		}
		s.seen[pairKey(e.a, e.b)] = true
		offA, offB, ln := s.extend(e.a, e.b, e.offA, e.offB)
		s.buf = append(s.buf, suffixtree.Pair{
			SeqA: e.a, OffA: offA,
			SeqB: e.b, OffB: offB,
			Len: ln,
		})
	}
	blk := s.buf[blockStart:]
	sort.SliceStable(blk, func(i, j int) bool { return blk[i].Len > blk[j].Len })
	s.st.Blocks++
	if s.hooks.OnBlock != nil {
		s.hooks.OnBlock(len(s.ents))
	}
	clear(s.idx)
	s.ents = s.ents[:0]
}

// advance refills buf from the next non-empty block, loading further
// buckets as the current one drains. Returns false when every owned
// bucket is exhausted.
func (s *Source) advance() bool {
	s.buf = s.buf[:0]
	s.pos = 0
	for {
		if s.row >= s.cur.rows() {
			if s.bi >= len(s.own) {
				return false
			}
			s.buildBucket(s.buckets[s.own[s.bi]])
			s.bi++
			continue
		}
		s.processBlock()
		if len(s.buf) > 0 {
			return true
		}
	}
}

// Next returns up to max candidate pairs and whether the source is now
// exhausted — the same contract as the tree-backed pair sources.
func (s *Source) Next(max int) ([]suffixtree.Pair, bool) {
	out := make([]suffixtree.Pair, 0, max)
	for len(out) < max {
		if s.pos >= len(s.buf) {
			if !s.advance() {
				return out, true
			}
		}
		out = append(out, s.buf[s.pos])
		s.pos++
	}
	exhausted := s.pos >= len(s.buf) && s.row >= s.cur.rows() && s.bi >= len(s.own)
	return out, exhausted
}

// IndexPeakBytes measures the backend's peak resident index footprint
// over the given buckets without running the multiply: each CSR block
// is built and discarded in turn, exactly as a streaming run would hold
// them. It is the sparse side of the benchjson sparse_peak_bytes_ratio
// scalar.
func IndexPeakBytes(set *seq.Set, buckets []suffixtree.Bucket, opt Options) (int64, error) {
	own := make([]int, len(buckets))
	for i := range own {
		own[i] = i
	}
	s, err := NewSource(set, buckets, own, opt, Hooks{})
	if err != nil {
		return 0, err
	}
	for s.bi < len(s.own) {
		s.buildBucket(s.buckets[s.own[s.bi]])
		s.bi++
	}
	return s.st.PeakBytes, nil
}
