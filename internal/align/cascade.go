package align

import "math"

// This file implements the seed-anchored alignment cascade: cheap,
// *provable* accept/reject stages that run before the full O(n·m)
// dynamic program. Every decision a cascade stage makes is certified —
// backed by a bound that holds for all alignments, not a heuristic — so
// the cascade predicates return exactly the same verdicts as the exact
// predicates in predicates.go, byte for byte, while computing a small
// fraction of the DP cells on typical promising-pair workloads.
//
// The stages, in order of increasing cost:
//
//  1. Prefilters (zero DP cells): residue-composition match bounds,
//     length-ratio bounds, forced-gap score ceilings against a seed-run
//     score floor.
//  2. Banded DP (O(band·n) cells): a max-matches DP over the diagonal
//     band that any accepting Definition-1 alignment provably occupies,
//     or a seed-anchored banded local score exceeding the accepting
//     ceiling for Definition 2.
//  3. The unchanged exact DP from predicates.go, for every pair the
//     first two stages cannot decide — in particular every positive.
//
// thresholdSlack absorbs the float rounding of the predicates' ratio
// comparisons when thresholds are turned into integer bounds. It only
// ever loosens a bound, so a slackened stage can fail to reject (falling
// through to the exact DP) but can never reject a pair the exact
// predicate would accept.
const thresholdSlack = 1e-9

// SeedMatch is the maximal exact match that made a sequence pair
// "promising": a[PosA : PosA+Len] equals b[PosB : PosB+Len], and the
// match extends in neither direction. The pair-generation phase (suffix
// tree or ESA) carries it down to the aligner so cascade kernels can
// anchor their band on the seed diagonal. The zero SeedMatch is valid —
// it merely provides no anchor, and every kernel stays correct (just
// potentially slower) under arbitrary, even bogus, seed coordinates.
type SeedMatch struct {
	PosA, PosB int
	Len        int
}

// Diag returns the seed's DP diagonal d = j − i.
func (s SeedMatch) Diag() int { return s.PosB - s.PosA }

// Swapped returns the seed as seen with the two sequences exchanged.
func (s SeedMatch) Swapped() SeedMatch { return SeedMatch{PosA: s.PosB, PosB: s.PosA, Len: s.Len} }

// Stage identifies which cascade stage decided a pair's verdict.
type Stage uint8

const (
	// StageNone means the cascade was not involved (exact path).
	StageNone Stage = iota
	// StagePrefilter is a zero-DP provable decision.
	StagePrefilter
	// StageBanded is a banded-DP certified decision.
	StageBanded
	// StageFull means the cascade fell through to the exact full DP.
	StageFull
	// StageBitvec is a bit-parallel certified reject: the exact fit
	// edit distance exceeds the Definition-1 identity ceiling
	// (bitparallel.go). Numbered after StageFull so the wire encoding
	// of the pre-kernel stages is unchanged.
	StageBitvec
	// StageStriped is a striped-int16 certified reject: a true local
	// alignment score exceeds the Definition-2 forced-gap ceiling
	// (striped.go).
	StageStriped
)

func (s Stage) String() string {
	switch s {
	case StagePrefilter:
		return "prefilter"
	case StageBanded:
		return "banded"
	case StageFull:
		return "full"
	case StageBitvec:
		return "bitvec"
	case StageStriped:
		return "striped"
	}
	return "none"
}

// Kernel names the kernel that computed a stage's deciding bound, for
// the pace_kernel_* observability counters: the bit-parallel and
// striped stages are decided by their namesake kernels, everything else
// by the int32 scalar kernels.
func (s Stage) Kernel() string {
	switch s {
	case StageBitvec:
		return "bitvec"
	case StageStriped:
		return "striped"
	}
	return "int32"
}

// minGapCost lower-bounds the affine penalty of any alignment containing
// k gap columns, however they split into runs: a single run is cheapest
// when opening costs at least extending, otherwise k runs of one.
func (al *Aligner) minGapCost(k int) int32 {
	if k <= 0 {
		return 0
	}
	open, ext := al.sc.GapOpen, al.sc.GapExtend
	if open >= ext {
		return open + int32(k-1)*ext
	}
	return int32(k) * open
}

// maxSubScore returns max(0, the largest substitution score in the
// matrix), cached per aligner.
func (al *Aligner) maxSubScore() int32 {
	if !al.maxSubSet {
		best := int32(0)
		for i := 0; i < 26; i++ {
			for j := 0; j < 26; j++ {
				if v := int32(al.sc.Sub[i][j]); v > best {
					best = v
				}
			}
		}
		al.maxSub, al.maxSubSet = best, true
	}
	return al.maxSub
}

// matchUpperBound is the residue-composition bound on match columns: an
// alignment cannot match more copies of a letter than both sequences
// hold, whatever the path, so Matches ≤ Σ_c min(count_a(c), count_b(c)).
func matchUpperBound(a, b []byte) int {
	var ca, cb [26]int32
	for _, c := range a {
		ca[c-'A']++
	}
	for _, c := range b {
		cb[c-'A']++
	}
	n := int32(0)
	for r := 0; r < 26; r++ {
		if ca[r] < cb[r] {
			n += ca[r]
		} else {
			n += cb[r]
		}
	}
	return int(n)
}

// fitScoreUpperBound is a zero-DP upper bound on the fit score: an M
// column consuming residue r of a scores at most r's best substitution
// against any letter present in b (clamped at 0), each row of a is
// consumed by at most one M column, and every gap column only
// subtracts. So Σ_i max over b of Sub[a_i][·], clamped per row at 0,
// dominates every fit alignment's score.
func (al *Aligner) fitScoreUpperBound(a, b []byte) int32 {
	var present [26]bool
	for _, c := range b {
		present[c-'A'] = true
	}
	var tab [26]int32
	var have [26]bool
	var u int32
	for _, c := range a {
		r := c - 'A'
		if !have[r] {
			have[r] = true
			best := int32(0)
			for q := 0; q < 26; q++ {
				if present[q] {
					if v := int32(al.sc.Sub[r][q]); v > best {
						best = v
					}
				}
			}
			tab[r] = best
		}
		u += tab[r]
	}
	return u
}

// seedRunScore is a zero-DP local-score lower bound: the best-scoring
// contiguous sub-run of the seed's diagonal (Kadane). Any such run is
// itself a valid gapless local alignment, so its score never exceeds the
// optimal LocalScore. An out-of-range seed is clamped and, at worst,
// yields 0 — the empty local alignment, always available.
func (al *Aligner) seedRunScore(a, b []byte, seed SeedMatch) int32 {
	pa, pb, l := seed.PosA, seed.PosB, seed.Len
	if pa < 0 || pb < 0 {
		return 0
	}
	if rest := len(a) - pa; l > rest {
		l = rest
	}
	if rest := len(b) - pb; l > rest {
		l = rest
	}
	var best, run int32
	for k := 0; k < l; k++ {
		run += int32(al.sc.Sub[a[pa+k]-'A'][b[pb+k]-'A'])
		if run < 0 {
			run = 0
		}
		if run > best {
			best = run
		}
	}
	return best
}

// fitScoreBand computes the best fit-alignment score over paths whose
// every cell lies on a diagonal d = j−i within [dlo, dhi]; cells outside
// the band are unreachable. It mirrors the Fit recurrence of Align
// exactly, so with full coverage (dlo ≤ −n, dhi ≥ m) it equals FitScore.
// When no in-band path exists the result is an impossibly low negative.
func (al *Aligner) fitScoreBand(a, b []byte, dlo, dhi int) int32 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0
	}
	al.growRows(m)
	open, ext := al.sc.GapOpen, al.sc.GapExtend
	mPrev, mCur := al.m0, al.m1
	xPrev, xCur := al.x0, al.x1
	yPrev, yCur := al.y0, al.y1
	// Both row sets start unreachable: the band advances one column per
	// row, so a cell first entering the band reads its out-of-band
	// neighbours as the initialization value, which must be -inf.
	for j := 0; j <= m; j++ {
		mPrev[j], xPrev[j], yPrev[j] = negInf, negInf, negInf
		mCur[j], xCur[j], yCur[j] = negInf, negInf, negInf
	}
	best := negInf
	for i := 1; i <= n; i++ {
		// Column-0 border: cell (i, 0) lies on diagonal −i.
		if dlo <= -i && -i <= dhi {
			mCur[0], yCur[0] = negInf, negInf
			if i == 1 {
				xCur[0] = -open
			} else {
				xCur[0] = xPrev[0] - ext
			}
		} else {
			mCur[0], xCur[0], yCur[0] = negInf, negInf, negInf
		}
		lo, hi := i+dlo, i+dhi
		if lo < 1 {
			lo = 1
		}
		if hi > m {
			hi = m
		}
		if lo <= hi {
			al.Cells += int64(hi - lo + 1)
			row := al.sc.Sub[a[i-1]-'A']
			fresh := i == 1
			// Same-row carries start at the in-band (or border) value of
			// column lo−1: the border slot when lo == 1, unreachable
			// otherwise.
			mLeft, yRun := negInf, negInf
			if lo == 1 {
				mLeft, yRun = mCur[0], yCur[0]
			}
			for j := lo; j <= hi; j++ {
				bm := mPrev[j-1]
				if xPrev[j-1] > bm {
					bm = xPrev[j-1]
				}
				if yPrev[j-1] > bm {
					bm = yPrev[j-1]
				}
				if fresh && 0 >= bm {
					bm = 0
				}
				mv := bm + int32(row[b[j-1]-'A'])

				bx := mPrev[j] - open
				if v := xPrev[j] - ext; v > bx {
					bx = v
				}
				if v := yPrev[j] - open; v > bx {
					bx = v
				}
				if fresh && -open > bx {
					bx = -open
				}

				by := mLeft - open
				if v := yRun - ext; v > by {
					by = v
				}

				mCur[j], xCur[j], yCur[j] = mv, bx, by
				mLeft, yRun = mv, by
			}
			if i == n {
				for j := lo; j <= hi; j++ {
					if mCur[j] > best {
						best = mCur[j]
					}
					if xCur[j] > best {
						best = xCur[j]
					}
				}
			}
		}
		if i == n {
			if mCur[0] > best {
				best = mCur[0]
			}
			if xCur[0] > best {
				best = xCur[0]
			}
		}
		mPrev, mCur = mCur, mPrev
		xPrev, xCur = xCur, xPrev
		yPrev, yCur = yCur, yPrev
	}
	return best
}

// FitScoreCertified returns Align(a, b, Fit).Score — provably, not
// heuristically — by running the seed-anchored banded fit DP with an
// adaptive band. A band of slack g always contains every fit path with
// at most g gap columns (a fit path starts on diagonal d ≥ 0 and ends on
// d ≤ m−n, and each gap column moves it one diagonal), so a path outside
// the band pays more than minGapCost(g+1) in gap penalties and scores at
// most fitScoreUpperBound − minGapCost(g+1). Once the banded score
// reaches that ceiling, no outside path can beat it and the banded score
// is certified equal to the full DP; otherwise the band doubles, at the
// latest terminating on full-matrix coverage.
func (al *Aligner) FitScoreCertified(a, b []byte, seed SeedMatch) int32 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0
	}
	d0 := seed.Diag()
	if d0 < -n {
		d0 = -n
	}
	if d0 > m {
		d0 = m
	}
	u := al.fitScoreUpperBound(a, b)
	for g := 16; ; g *= 2 {
		dlo := -g
		if d0-g < dlo {
			dlo = d0 - g
		}
		dhi := (m - n) + g
		if d0+g > dhi {
			dhi = d0 + g
		}
		if dlo <= -n && dhi >= m {
			// Full coverage: exact by construction. The striped int16
			// kernel computes the same score at half the memory traffic
			// whenever its certified window applies.
			if al.Kernels == KernelAuto {
				if s, ok := al.FitScoreStriped(a, b); ok {
					return s
				}
			}
			return al.fitScoreBand(a, b, -n, m)
		}
		s := al.fitScoreBand(a, b, dlo, dhi)
		if int64(s) >= int64(u)-int64(al.minGapCost(g+1)) {
			return s
		}
	}
}

// fitMatchesPossible reports whether any monotone fit path confined to
// the diagonal band d ∈ [dlo, dhi] can contain at least req match
// columns. The DP value is the maximum number of matches on any in-band
// path from row 0 to the cell; gaps are free — the bound is about match
// counts only, and free gaps only loosen it. A row aborts the whole scan
// early once even a perfect remainder (one match per remaining row)
// cannot reach req.
func (al *Aligner) fitMatchesPossible(a, b []byte, dlo, dhi, req int) bool {
	n, m := len(a), len(b)
	if req <= 0 {
		return true
	}
	if n == 0 || m == 0 {
		return false
	}
	al.growRows(m)
	const unreach = int32(-1) << 28
	prev, cur := al.m0, al.m1
	for j := 0; j <= m; j++ {
		prev[j], cur[j] = unreach, unreach
	}
	lo0, hi0 := dlo, dhi // row 0: cell (0, j) lies on diagonal j
	if lo0 < 0 {
		lo0 = 0
	}
	if hi0 > m {
		hi0 = m
	}
	for j := lo0; j <= hi0; j++ {
		prev[j] = 0
	}
	for i := 1; i <= n; i++ {
		if dlo <= -i && -i <= dhi {
			cur[0] = prev[0] // vertical step down the border, no match
		} else {
			cur[0] = unreach
		}
		rowBest := cur[0]
		lo, hi := i+dlo, i+dhi
		if lo < 1 {
			lo = 1
		}
		if hi > m {
			hi = m
		}
		if lo <= hi {
			al.Cells += int64(hi - lo + 1)
			ca := a[i-1]
			left := unreach
			if lo == 1 {
				left = cur[0]
			}
			for j := lo; j <= hi; j++ {
				d := prev[j-1]
				if ca == b[j-1] {
					d++
				}
				if prev[j] > d {
					d = prev[j]
				}
				if left > d {
					d = left
				}
				cur[j] = d
				if d > rowBest {
					rowBest = d
				}
				left = d
			}
		}
		if int(rowBest)+(n-i) < req {
			return false
		}
		prev, cur = cur, prev
	}
	return true
}

// ContainedCascade computes Contained(a, b, p)'s verdict through the
// cascade: zero-DP prefilters, then a certified banded reject, then —
// only when no cheap stage can prove the verdict — the exact Align that
// Contained itself runs. The verdict is always identical to Contained's;
// only the amount of DP work differs. The returned Stage reports which
// stage decided. The seed is accepted for interface symmetry; the
// Definition-1 band is pinned by the fit geometry itself (lengths and
// the identity threshold), which is tighter than any seed anchor.
func (al *Aligner) ContainedCascade(a, b []byte, p ContainParams, seed SeedMatch) (bool, Stage) {
	return al.ContainedCascadeProf(a, b, p, seed, nil)
}

// ContainedCascadeProf is ContainedCascade with an optional prebuilt
// profile of a (see Profile.Build; pool.ProfileSet shares profiles
// across a batch). A nil profile is built on demand into the aligner's
// scratch, so the two forms are interchangeable.
func (al *Aligner) ContainedCascadeProf(a, b []byte, p ContainParams, seed SeedMatch, pa *Profile) (bool, Stage) {
	_ = seed
	n, m := len(a), len(b)
	if n > m || n == 0 || m == 0 {
		// Contained rejects these without DP (longer-into-shorter guard;
		// empty alignment has zero columns).
		return false, StagePrefilter
	}
	// Any accepting alignment has Identity ≥ MinIdentity over Cols ≥ n
	// columns (fit consumes every residue of a), so its integer match
	// count is at least req. The slack absorbs the predicate's float
	// division; it can only weaken the bound, never flip an accept.
	req := int(math.Ceil((p.MinIdentity - thresholdSlack) * float64(n)))
	if req > 0 {
		if matchUpperBound(a, b) < req {
			return false, StagePrefilter
		}
		// Bit-parallel stage: the exact fit edit distance at ~m·n/64
		// word operations, against the identity ceiling derived in
		// bitparallel.go. Runs before the banded DP because it is an
		// order of magnitude cheaper than even a narrow band.
		if al.Kernels == KernelAuto {
			if emax := fitEditThreshold(n, p.MinIdentity-thresholdSlack); emax >= 0 {
				prof := pa
				if prof == nil {
					al.prof.buildBits(al.sc, a)
					prof = &al.prof
				}
				if al.FitEditDistanceProf(prof, b) > emax {
					return false, StageBitvec
				}
			}
		}
		// Matches ≥ req also pins the geometry: at most imax = n − req
		// gap-in-B columns, and a fit path starts on diagonal ≥ 0 and
		// ends on diagonal ≤ m−n, so every cell of an accepting path lies
		// on a diagonal in [−imax, (m−n)+imax]. If no in-band path
		// reaches req matches, the optimal alignment either leaves the
		// band (then it is not accepting) or stays inside with too few
		// matches (not accepting either): a certified reject.
		imax := n - req
		if width := (m - n) + 2*imax + 1; width*3 <= m {
			// Only spend the banded DP when the band is actually narrow;
			// otherwise the full DP would cost about the same.
			if !al.fitMatchesPossible(a, b, -imax, (m-n)+imax, req) {
				return false, StageBanded
			}
		}
	}
	ok, _ := al.Contained(a, b, p)
	return ok, StageFull
}

// EitherContainedCascade is the cascade form of EitherContained: same
// verdict and `which` side, plus the deciding stage.
func (al *Aligner) EitherContainedCascade(a, b []byte, p ContainParams, seed SeedMatch) (contained bool, which int, stage Stage) {
	if len(a) <= len(b) {
		ok, st := al.ContainedCascade(a, b, p, seed)
		return ok, 0, st
	}
	ok, st := al.ContainedCascade(b, a, p, seed.Swapped())
	return ok, 1, st
}

// cascadeLocalBand is the half-width of the seed-anchored banded local
// score used as a lower bound in OverlapsCascade's banded stage.
const cascadeLocalBand = 8

// OverlapsCascade computes Overlaps(a, b, p)'s verdict through the
// cascade, identically to Overlaps but cheaper when a stage can prove
// the reject. The seed anchors the banded local score and the seed-run
// score floor; arbitrary (even wrong) seeds only weaken the bounds.
func (al *Aligner) OverlapsCascade(a, b []byte, p OverlapParams, seed SeedMatch) (bool, Stage) {
	return al.OverlapsCascadeProf(a, b, p, seed, nil)
}

// OverlapsCascadeProf is OverlapsCascade with an optional prebuilt
// profile of a (nil: built on demand into the aligner's scratch).
func (al *Aligner) OverlapsCascadeProf(a, b []byte, p OverlapParams, seed SeedMatch, pa *Profile) (bool, Stage) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return false, StagePrefilter // Overlaps sees zero columns
	}
	short, long := n, m
	if short > long {
		short, long = long, short
	}
	minSim := p.MinSimilarity - thresholdSlack
	minCov := p.MinLongCoverage - thresholdSlack
	// Positives ≤ short (each positive column consumes one residue of
	// each sequence), while accepting needs Positives ≥ MinSimilarity ·
	// Cols ≥ MinSimilarity · span ≥ MinSimilarity · MinLongCoverage · long.
	if minSim > 0 && minCov > 0 && float64(short) < minSim*minCov*float64(long) {
		return false, StagePrefilter
	}
	// Forced-gap ceiling: spanning w ≥ ⌈minCov·long⌉ columns of the
	// longer sequence with at most `short` substitution columns forces
	// ≥ w−short gap columns, so every accepting alignment scores at most
	// ub. Any valid local alignment scoring above ub — the seed run for
	// free, the anchored banded score for O(band·n) — proves the optimal
	// local alignment is not an accepting one: a certified reject.
	if minCov > 0 {
		if w := int(math.Ceil(minCov * float64(long))); w > short {
			ub := int64(short)*int64(al.maxSubScore()) - int64(al.minGapCost(w-short))
			if int64(al.seedRunScore(a, b, seed)) > ub {
				return false, StagePrefilter
			}
			if int64(al.LocalScoreBandedAnchored(a, b, seed.Diag(), cascadeLocalBand)) > ub {
				return false, StageBanded
			}
			// Striped stage: the full local score in int16 state. The
			// kernel's score is a true local-alignment score — exact
			// when ok, a saturated lower bound otherwise — so exceeding
			// ub certifies the reject either way.
			if al.Kernels == KernelAuto {
				prof := pa
				if prof == nil {
					al.prof.buildCols(al.sc, a)
					prof = &al.prof
				}
				if s, _ := al.LocalScoreStripedProf(prof, b); int64(s) > ub {
					return false, StageStriped
				}
			}
		}
	}
	ok, _ := al.Overlaps(a, b, p)
	return ok, StageFull
}
