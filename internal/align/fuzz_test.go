package align

import "testing"

// fuzzResidues maps arbitrary bytes onto the A–Z residue alphabet the
// scoring matrix indexes, preserving the input's length and structure.
func fuzzResidues(s string) []byte {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = 'A' + s[i]%26
	}
	return out
}

// FuzzAlignCascade cross-checks every score-only/banded/certified kernel
// and both cascade predicates against the exact full-matrix reference on
// arbitrary residue strings and arbitrary (possibly bogus) seeds.
func FuzzAlignCascade(f *testing.F) {
	f.Add("ACDEFGHIK", "ACDEFGWIK", 0, 0, 5)
	f.Add("MKWVTFISLLFLFSSAYS", "KWVTFISLL", 1, 0, 9)
	f.Add("", "WWWW", 3, 1, 2)
	f.Add("AAAAAAAAAA", "CCCCCCCCCCCC", -7, 40, 0)
	f.Add("WHKNMEFRWCYHH", "TTTTWHKNMEFRWCYHH", 0, 4, 13)
	f.Fuzz(func(t *testing.T, as, bs string, pa, pb, ln int) {
		if len(as) > 256 || len(bs) > 256 {
			t.Skip()
		}
		a, b := fuzzResidues(as), fuzzResidues(bs)
		seed := SeedMatch{PosA: pa % 512, PosB: pb % 512, Len: ln % 512}
		al := NewAligner(Blosum62(11, 1))
		exact := NewAligner(Blosum62(11, 1))

		fitFull := exact.Align(a, b, Fit).Score
		if got := al.FitScore(a, b); got != fitFull {
			t.Fatalf("FitScore=%d, Align(Fit).Score=%d", got, fitFull)
		}
		if got := al.FitScoreCertified(a, b, seed); got != fitFull {
			t.Fatalf("FitScoreCertified=%d with seed %+v, want %d", got, seed, fitFull)
		}

		localFull := exact.LocalScore(a, b)
		wide := len(a) + len(b) + abs(seed.Diag()) + 1
		if got := al.LocalScoreBandedAnchored(a, b, seed.Diag(), wide); got != localFull {
			t.Fatalf("wide anchored band=%d, LocalScore=%d", got, localFull)
		}
		if got := al.LocalScoreBandedAnchored(a, b, seed.Diag(), 4); got < 0 || got > localFull {
			t.Fatalf("narrow anchored band=%d escapes [0,%d]", got, localFull)
		}

		cp := DefaultContainParams()
		wantC, wantWhich := exact.EitherContained(a, b, cp)
		gotC, gotWhich, _ := al.EitherContainedCascade(a, b, cp, seed)
		if wantC != gotC || wantWhich != gotWhich {
			t.Fatalf("EitherContainedCascade=(%v,%d), exact=(%v,%d)", gotC, gotWhich, wantC, wantWhich)
		}

		op := DefaultOverlapParams()
		wantO, _ := exact.Overlaps(a, b, op)
		gotO, _ := al.OverlapsCascade(a, b, op, seed)
		if wantO != gotO {
			t.Fatalf("OverlapsCascade=%v, exact=%v", gotO, wantO)
		}
	})
}

// FuzzKernelEquivalence cross-checks the word-parallel kernels against
// their exact int32 references on arbitrary residue strings, including a
// hot scoring scale chosen to force int16 saturation so the fallthrough
// contract is exercised: a saturated local score must stay a valid lower
// bound, and a refused fit kernel must never have returned at all.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add("ACDEFGHIK", "ACDEFGWIK", false)
	f.Add("MKWVTFISLLFLFSSAYS", "KWVTFISLL", true)
	f.Add("", "WWWW", false)
	f.Add("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA", "AAAA", true)
	f.Add("WHKNMEFRWCYHH", "TTTTWHKNMEFRWCYHH", false)
	f.Fuzz(func(t *testing.T, as, bs string, hot bool) {
		if len(as) > 256 || len(bs) > 256 {
			t.Skip()
		}
		a, b := fuzzResidues(as), fuzzResidues(bs)

		// Bit-parallel semi-global edit distance vs the scalar reference.
		al := NewAligner(nil)
		if got, want := al.FitEditDistance(a, b), refFitEditDistance(a, b); got != want {
			t.Fatalf("FitEditDistance=%d, reference=%d", got, want)
		}

		sc := Blosum62(11, 1)
		if hot {
			// 1000 per match keeps a 33-residue run inside int16 but a
			// 34th saturates, forcing the fallthrough path.
			sc = Identity(1000, -2, 11, 1)
		}
		al = NewAligner(sc)
		exact := NewAligner(sc)

		localFull := exact.LocalScore(a, b)
		if s, ok := al.LocalScoreStriped(a, b); ok {
			if s != localFull {
				t.Fatalf("LocalScoreStriped=%d claims exact, LocalScore=%d", s, localFull)
			}
		} else if int64(s) > int64(localFull) {
			t.Fatalf("saturated LocalScoreStriped=%d exceeds LocalScore=%d", s, localFull)
		}

		if s, ok := al.FitScoreStriped(a, b); ok {
			if want := exact.FitScore(a, b); s != want {
				t.Fatalf("FitScoreStriped=%d claims exact, FitScore=%d", s, want)
			}
		}
	})
}
