package align

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteGlobal exhaustively computes the optimal affine-gap global
// alignment score by recursion over (i, j, state), memoized. It is the
// gold standard the DP is checked against on tiny inputs.
func bruteGlobal(sc *Scoring, a, b []byte) int32 {
	type key struct {
		i, j, st int
	}
	memo := map[key]int32{}
	var rec func(i, j, st int) int32
	const (
		inM = iota
		inX // gap run consuming a
		inY // gap run consuming b
	)
	rec = func(i, j, st int) int32 {
		if i == len(a) && j == len(b) {
			return 0
		}
		k := key{i, j, st}
		if v, ok := memo[k]; ok {
			return v
		}
		best := negInf
		if i < len(a) && j < len(b) {
			v := sc.Score(a[i], b[j]) + rec(i+1, j+1, inM)
			if v > best {
				best = v
			}
		}
		if i < len(a) {
			cost := sc.GapOpen
			if st == inX {
				cost = sc.GapExtend
			}
			v := -cost + rec(i+1, j, inX)
			if v > best {
				best = v
			}
		}
		if j < len(b) {
			cost := sc.GapOpen
			if st == inY {
				cost = sc.GapExtend
			}
			v := -cost + rec(i, j+1, inY)
			if v > best {
				best = v
			}
		}
		memo[k] = best
		return best
	}
	return rec(0, 0, inM)
}

// bruteLocal derives the optimal local score from bruteGlobal over all
// substring pairs.
func bruteLocal(sc *Scoring, a, b []byte) int32 {
	best := int32(0)
	for i0 := 0; i0 <= len(a); i0++ {
		for i1 := i0; i1 <= len(a); i1++ {
			for j0 := 0; j0 <= len(b); j0++ {
				for j1 := j0; j1 <= len(b); j1++ {
					if i1 == i0 || j1 == j0 {
						continue
					}
					if v := bruteGlobal(sc, a[i0:i1], b[j0:j1]); v > best {
						best = v
					}
				}
			}
		}
	}
	return best
}

func TestGlobalMatchesBruteForce(t *testing.T) {
	sc := Blosum62(11, 1)
	al := NewAligner(sc)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, rng.Intn(8))
		b := randSeq(rng, rng.Intn(8))
		if len(a) == 0 && len(b) == 0 {
			return true
		}
		got := al.Align(a, b, Global).Score
		want := bruteGlobal(sc, a, b)
		if got != want {
			t.Logf("seed %d: a=%q b=%q got %d want %d", seed, a, b, got, want)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGlobalMatchesBruteForceCheapGaps(t *testing.T) {
	// Cheap gaps stress the state transitions (X after Y etc.).
	sc := Identity(3, -2, 1, 1)
	al := NewAligner(sc)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, 1+rng.Intn(7))
		b := randSeq(rng, 1+rng.Intn(7))
		return al.Align(a, b, Global).Score == bruteGlobal(sc, a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLocalMatchesBruteForce(t *testing.T) {
	sc := Blosum62(5, 2)
	al := NewAligner(sc)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, 1+rng.Intn(6))
		b := randSeq(rng, 1+rng.Intn(6))
		got := al.Align(a, b, Local).Score
		if got < 0 {
			got = 0
		}
		want := bruteLocal(sc, a, b)
		if got != want {
			t.Logf("seed %d: a=%q b=%q got %d want %d", seed, a, b, got, want)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFitMatchesBruteForce(t *testing.T) {
	// Fit(a into b) = max over b substrings of global(a, substring).
	sc := Blosum62(5, 2)
	al := NewAligner(sc)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, 1+rng.Intn(5))
		b := randSeq(rng, 1+rng.Intn(8))
		got := al.Align(a, b, Fit).Score
		want := negInf
		for j0 := 0; j0 <= len(b); j0++ {
			for j1 := j0; j1 <= len(b); j1++ {
				if v := bruteGlobal(sc, a, b[j0:j1]); v > want {
					want = v
				}
			}
		}
		if got != want {
			t.Logf("seed %d: a=%q b=%q got %d want %d", seed, a, b, got, want)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
