package align

import (
	"bytes"
	"math/rand"
	"testing"
)

func randomResidues(rng *rand.Rand, n int) []byte {
	const alpha = "ACDEFGHIKLMNPQRSTVWY"
	out := make([]byte, n)
	for i := range out {
		out[i] = alpha[rng.Intn(len(alpha))]
	}
	return out
}

// TestGrowGeometric drives grow through steadily increasing widths and
// requires O(log) reallocations, not one per width.
func TestGrowGeometric(t *testing.T) {
	al := NewAligner(nil)
	rowReallocs, traceReallocs := 0, 0
	prevRow, prevTrace := 0, 0
	const maxM = 4000
	for m := 1; m <= maxM; m++ {
		al.grow(10, m)
		if cap(al.m0) != prevRow {
			rowReallocs++
			prevRow = cap(al.m0)
		}
		if cap(al.trace) != prevTrace {
			traceReallocs++
			prevTrace = cap(al.trace)
		}
	}
	// log1.5(4000) ≈ 20.5; leave headroom for the initial allocations.
	if rowReallocs > 25 {
		t.Errorf("DP rows reallocated %d times over %d widths; growth is not geometric", rowReallocs, maxM)
	}
	if traceReallocs > 45 {
		t.Errorf("trace reallocated %d times over %d widths; growth is not geometric", traceReallocs, maxM)
	}
}

// TestLocalScoreAllocs: once the scratch rows are warm, the scoring fast
// path must not allocate at all.
func TestLocalScoreAllocs(t *testing.T) {
	al := NewAligner(nil)
	rng := rand.New(rand.NewSource(42))
	a, b := randomResidues(rng, 200), randomResidues(rng, 180)
	al.LocalScore(a, b) // warm the buffers
	if n := testing.AllocsPerRun(50, func() { al.LocalScore(a, b) }); n > 0 {
		t.Errorf("warm LocalScore allocates %.1f objects per call, want 0", n)
	}
}

// TestAlignAllocsSteadyState: warm full alignments may allocate only the
// returned edit-op path, never DP rows or the trace matrix.
func TestAlignAllocsSteadyState(t *testing.T) {
	al := NewAligner(nil)
	a := bytes.Repeat([]byte("ACDEFGHIKL"), 20)
	b := bytes.Repeat([]byte("ACDEFGHIKL"), 18)
	al.Align(a, b, Global) // warm the buffers
	n := testing.AllocsPerRun(50, func() { al.Align(a, b, Global) })
	// The identical-repeat pair tracebacks into a handful of EditOp runs:
	// a few slice growth steps, nothing proportional to the DP size.
	if n > 6 {
		t.Errorf("warm Align allocates %.1f objects per call, want only the small Ops path", n)
	}
}

// TestScoreKernelsLazyTrace: the score-only kernels must never touch the
// O(n·m) trace matrix — a rejected pair costs O(m) scratch, not a full
// traceback allocation. Only Align is allowed to materialize the trace.
func TestScoreKernelsLazyTrace(t *testing.T) {
	al := NewAligner(nil)
	rng := rand.New(rand.NewSource(7))
	a, b := randomResidues(rng, 150), randomResidues(rng, 170)
	al.LocalScore(a, b)
	al.FitScore(a, b)
	al.LocalScoreBanded(a, b, 8)
	al.LocalScoreBandedAnchored(a, b, 5, 8)
	al.FitScoreCertified(a, b, SeedMatch{PosA: 3, PosB: 3, Len: 10})
	al.fitMatchesPossible(a, b, -10, 30, 140)
	al.FitEditDistance(a, b)
	al.LocalScoreStriped(a, b)
	al.FitScoreStriped(a, b)
	if cap(al.trace) != 0 {
		t.Errorf("score-only kernels allocated the trace matrix (cap %d), want lazy allocation", cap(al.trace))
	}
	if n := testing.AllocsPerRun(50, func() { al.FitScore(a, b) }); n > 0 {
		t.Errorf("warm FitScore allocates %.1f objects per call, want 0", n)
	}
	al.Align(a, b, Local)
	if cap(al.trace) == 0 {
		t.Error("Align must allocate the trace for traceback")
	}
}

// TestCascadeWarmAllocs: the cascade's certified kernels — including the
// FitScoreCertified band-doubling path, which runs fitScoreBand several
// times per pair, and every word-parallel kernel with its scratch
// profile — must be allocation-free once the aligner's buffers are warm.
// This is what makes profile reuse across a worker batch pay: the only
// per-pair memory traffic is the DP itself.
func TestCascadeWarmAllocs(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	rng := rand.New(rand.NewSource(99))
	// len(b) ≫ len(a): the initial band does not cover the matrix, so
	// FitScoreCertified exercises the doubling loop, not the
	// full-coverage shortcut.
	a, b := randomResidues(rng, 150), randomResidues(rng, 400)
	seed := SeedMatch{PosA: 3, PosB: 3, Len: 10}
	warm := map[string]func(){
		"FitScoreCertified": func() { al.FitScoreCertified(a, b, seed) },
		"FitEditDistance":   func() { al.FitEditDistance(a, b) },
		"LocalScoreStriped": func() { al.LocalScoreStriped(a, b) },
		"FitScoreStriped":   func() { al.FitScoreStriped(a, b) },
	}
	for name, fn := range warm {
		fn() // warm the scratch buffers
		if n := testing.AllocsPerRun(50, fn); n > 0 {
			t.Errorf("warm %s allocates %.1f objects per call, want 0", name, n)
		}
	}

	var p Profile
	p.Build(al.Scoring(), a)
	if n := testing.AllocsPerRun(50, func() { p.Build(al.Scoring(), a) }); n > 0 {
		t.Errorf("warm Profile.Build allocates %.1f objects per call, want 0", n)
	}
}

// TestShrinkThenGrowReusesTrace: a wide pair after a narrow one must not
// lose the trace capacity bought earlier.
func TestShrinkThenGrowReusesTrace(t *testing.T) {
	al := NewAligner(nil)
	al.grow(100, 100) // (101)*(101) trace
	traceCap := cap(al.trace)
	al.grow(2, 2) // shrink: no reallocation
	if cap(al.trace) != traceCap {
		t.Fatalf("shrinking realloced the trace: cap %d -> %d", traceCap, cap(al.trace))
	}
	al.grow(50, 50) // refits in the existing capacity
	if cap(al.trace) != traceCap {
		t.Errorf("regrow within capacity realloced the trace: cap %d -> %d", traceCap, cap(al.trace))
	}
}
