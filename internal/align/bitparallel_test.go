package align

import (
	"math/rand"
	"testing"
)

// refFitEditDistance is the O(n·m) scalar reference for the bit-parallel
// kernel: semi-global unit-cost edit distance with free text prefix and
// suffix.
func refFitEditDistance(a, b []byte) int {
	n, m := len(a), len(b)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	// Row 0 is free: the alignment may start after any text prefix.
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			c := prev[j-1]
			if a[i-1] != b[j-1] {
				c++
			}
			if v := prev[j] + 1; v < c {
				c = v
			}
			if v := cur[j-1] + 1; v < c {
				c = v
			}
			cur[j] = c
		}
		prev, cur = cur, prev
	}
	best := prev[0]
	for j := 1; j <= m; j++ {
		if prev[j] < best {
			best = prev[j]
		}
	}
	return best
}

func TestFitEditDistanceBasics(t *testing.T) {
	al := NewAligner(nil)
	cases := []struct {
		a, b string
		want int
	}{
		{"", "ACDEF", 0},
		{"ACD", "", 3},
		{"ACD", "ACD", 0},
		{"ACD", "WWACDWW", 0},
		{"ACD", "WWAXDWW", 1},
		{"ACD", "WWWW", 3},
		{"AAAA", "AA", 2},
		{"KWVTF", "KWTF", 1},
	}
	for _, c := range cases {
		if got := al.FitEditDistance([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("FitEditDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestFitEditDistanceMatchesReference drives the blocked kernel across
// the block-boundary lengths (≤64, 64, 65, multi-block) against the
// scalar reference.
func TestFitEditDistanceMatchesReference(t *testing.T) {
	al := NewAligner(nil)
	rng := rand.New(rand.NewSource(7))
	lengths := []int{1, 3, 17, 63, 64, 65, 100, 127, 128, 129, 200, 300}
	for trial := 0; trial < 300; trial++ {
		n := lengths[rng.Intn(len(lengths))]
		m := lengths[rng.Intn(len(lengths))]
		a := randSeq(rng, n)
		var b []byte
		switch trial % 3 {
		case 0:
			b = randSeq(rng, m)
		case 1:
			b = mutate(rng, a, 0.1)
		default:
			// Embed a mutated copy of a inside random flanks.
			core := mutate(rng, a, 0.05)
			b = append(append(randSeq(rng, rng.Intn(40)), core...), randSeq(rng, rng.Intn(40))...)
		}
		want := refFitEditDistance(a, b)
		if got := al.FitEditDistance(a, b); got != want {
			t.Fatalf("trial %d: FitEditDistance(|a|=%d, |b|=%d) = %d, want %d", trial, len(a), len(b), got, want)
		}
	}
}

// TestFitEditDistanceCharges: the kernel must charge its word operations
// to Cells and CellsBitvec.
func TestFitEditDistanceCharges(t *testing.T) {
	al := NewAligner(nil)
	a, b := randSeq(rand.New(rand.NewSource(1)), 130), randSeq(rand.New(rand.NewSource(2)), 90)
	al.FitEditDistance(a, b)
	want := int64(90) * 3 // ⌈130/64⌉ = 3 blocks
	if al.Cells != want || al.CellsBitvec != want {
		t.Fatalf("Cells = %d, CellsBitvec = %d, want %d", al.Cells, al.CellsBitvec, want)
	}
}

func TestFitEditThreshold(t *testing.T) {
	// t = 0.95, n = 100: any accepting alignment has at most
	// ⌊0.05/0.95·100⌋ = 5 edits.
	if got := fitEditThreshold(100, 0.95); got != 5 {
		t.Fatalf("fitEditThreshold(100, .95) = %d, want 5", got)
	}
	// Thresholds at or below 1/2 admit n edits: the stage cannot reject.
	if got := fitEditThreshold(100, 0.5); got != -1 {
		t.Fatalf("fitEditThreshold(100, .5) = %d, want -1", got)
	}
	if got := fitEditThreshold(100, 0); got != -1 {
		t.Fatalf("fitEditThreshold(100, 0) = %d, want -1", got)
	}
}
