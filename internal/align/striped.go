package align

import "math"

// Striped int16 scoring kernels in the style of Farrar's query-profile
// design. Go has no portable SIMD intrinsics, so these kernels keep the
// two halves of that design that pay off in scalar code: the letter-major
// query profile (Profile.cols) turns the inner loop's substitution lookup
// into one sequential int16 stream per text column, and the rolling DP
// state lives in int16 arrays — half the memory traffic of the int32
// rows. Exactness is preserved by the same contract that certifies the
// cascade: every range hazard is either excluded up front or detected
// per cell, and the kernel returns ok == false, letting the caller fall
// through to the int32 scalar path. DESIGN.md §7d gives the argument.

const (
	// stripedGapMax bounds the gap penalties the int16 kernels accept:
	// it keeps −open above the −inf sentinel the gap carries start from,
	// so an unreachable carry can never win a max against a real one.
	stripedGapMax = 16000
	// stripedFloor is the absorbing "unreachable" floor of the fit
	// kernel. Values clamped up to it can gain at most n·maxSub along
	// any later path; fitStripedApplies admits only inputs where that
	// ceiling stays below every true fit score, so a floored value can
	// never influence the result.
	stripedFloor = -28000
)

// LocalScoreStriped computes LocalScore(a, b) through the int16 profile
// kernel, building a scratch profile for a. See LocalScoreStripedProf.
func (al *Aligner) LocalScoreStriped(a, b []byte) (int32, bool) {
	al.prof.buildCols(al.sc, a)
	return al.LocalScoreStripedProf(&al.prof, b)
}

// LocalScoreStripedProf computes the Smith–Waterman score of the
// profiled query against b in int16 state. The returned score is always
// a true local-alignment score of the pair: the optimum when ok is
// true, and a saturated lower bound when ok is false (the kernel bailed
// on the first DP value above the int16 range — that value is itself an
// exact, achievable score). Callers needing the optimum must fall back
// to LocalScore when ok is false; callers comparing against a ceiling
// may use the score either way.
func (al *Aligner) LocalScoreStripedProf(p *Profile, b []byte) (int32, bool) {
	n, m := p.n, len(b)
	if n == 0 || m == 0 {
		return 0, true
	}
	open, ext := int(al.sc.GapOpen), int(al.sc.GapExtend)
	if open > stripedGapMax || ext > stripedGapMax {
		return 0, false
	}
	al.grow16(n)
	al.Cells += int64(n) * int64(m)
	al.CellsStriped += int64(n) * int64(m)
	h, f := al.m16, al.y16
	const carryInit = -1 << 14 // below any reachable carry, above int16 min after −ext
	for i := 0; i <= n; i++ {
		h[i] = 0
		f[i] = carryInit
	}
	best := 0
	// Row 0 is constant (H == 0, F == carryInit), so the DP rows 1..n live
	// in equal-length slices the compiler can bounds-check once per column.
	hr, fr := h[1:n+1], f[1:n+1]
	for j := 0; j < m; j++ {
		base := int(b[j]-'A') * n
		prof := p.cols[base : base+n]
		diag := 0      // H[i−1][j−1]
		e := carryInit // E[i−1][j]: vertical carry down the column
		hAbove := 0    // H[i−1][j]: this column's previous row
		for i := 0; i < n; i++ {
			// E[i][j] = max(H[i−1][j]−open, E[i−1][j]−ext).
			ev := hAbove - open
			if t := e - ext; t > ev {
				ev = t
			}
			e = ev
			// F[i][j] = max(H[i][j−1]−open, F[i][j−1]−ext); hr[i] and
			// fr[i] still hold the previous column.
			left := int(hr[i])
			fv := left - open
			if t := int(fr[i]) - ext; t > fv {
				fv = t
			}
			hv := diag + int(prof[i])
			if ev > hv {
				hv = ev
			}
			if fv > hv {
				hv = fv
			}
			if hv < 0 {
				hv = 0
			}
			if hv > math.MaxInt16 {
				return int32(hv), false
			}
			diag = left
			hr[i] = int16(hv)
			fr[i] = int16(fv)
			hAbove = hv
			if hv > best {
				best = hv
			}
		}
	}
	return int32(best), true
}

// fitStripedApplies reports whether the int16 fit kernel is certified
// for an n-row query under the aligner's scoring: the absorbing floor
// plus the largest possible gain along any path (n substitution columns
// at maxSub each) must stay below the all-gap fit score −(open+(n−1)·ext),
// which every true fit score dominates. Inside that window no clamped
// value can ever win a max that reaches the result, and no genuine
// value can leave the int16 range upward (true fit scores are ≤ n·maxSub).
func (al *Aligner) fitStripedApplies(n int) bool {
	open, ext := int64(al.sc.GapOpen), int64(al.sc.GapExtend)
	if open > stripedGapMax || ext > stripedGapMax {
		return false
	}
	gain := int64(n) * int64(al.maxSubScore())
	return gain+open+int64(n-1)*ext < -stripedFloor
}

// FitScoreStriped computes FitScore(a, b) through the int16 profile
// kernel, building a scratch profile for a. See FitScoreStripedProf.
func (al *Aligner) FitScoreStriped(a, b []byte) (int32, bool) {
	al.prof.buildCols(al.sc, a)
	return al.FitScoreStripedProf(&al.prof, b)
}

// FitScoreStripedProf computes the exact fit score of the profiled
// query against b — equal to FitScore — in int16 state, or ok == false
// when the scoring scale and query length fall outside the certified
// int16 window (the caller must use the scalar kernel). It mirrors the
// three-state Fit recurrence of Align exactly, including the X↛Y
// transition asymmetry and the i==1 fresh starts, evaluated text-major
// so the profile streams sequentially.
func (al *Aligner) FitScoreStripedProf(p *Profile, b []byte) (int32, bool) {
	n, m := p.n, len(b)
	if n == 0 || m == 0 {
		return 0, true
	}
	if !al.fitStripedApplies(n) {
		return 0, false
	}
	open, ext := int(al.sc.GapOpen), int(al.sc.GapExtend)
	al.grow16(n)
	al.Cells += int64(n) * int64(m)
	al.CellsStriped += int64(n) * int64(m)
	ms, xs, ys := al.m16, al.x16, al.y16
	// Column j == 0 border: M and Y unreachable, X is the leading
	// gap-in-B chain (its true values, all above the floor inside the
	// certified window).
	ms[0], xs[0], ys[0] = stripedFloor, stripedFloor, stripedFloor
	for i := 1; i <= n; i++ {
		ms[i], ys[i] = stripedFloor, stripedFloor
		xs[i] = int16(-open - (i-1)*ext)
	}
	// FitScore's answer scans the last row's M and X states including
	// the j == 0 border.
	best := int(xs[n])
	if v := int(ms[n]); v > best {
		best = v
	}
	for j := 0; j < m; j++ {
		prof := p.cols[int(b[j]-'A')*n:]
		// Diagonal registers: previous column's row i−1.
		dm, dx, dy := int(ms[0]), int(xs[0]), int(ys[0])
		// Current column's row i−1 (row 0 is the unreachable border).
		cm, cx, cy := stripedFloor, stripedFloor, stripedFloor
		for i := 1; i <= n; i++ {
			// M: best diagonal predecessor, fresh start on row 1.
			bm := dm
			if dx > bm {
				bm = dx
			}
			if dy > bm {
				bm = dy
			}
			if i == 1 && 0 >= bm {
				bm = 0
			}
			mv := bm + int(prof[i-1])

			// X: vertical, may leave Y but Y may not leave X.
			bx := cm - open
			if t := cx - ext; t > bx {
				bx = t
			}
			if t := cy - open; t > bx {
				bx = t
			}
			if i == 1 && -open > bx {
				bx = -open
			}

			// Y: horizontal, from the previous column's same row.
			by := int(ms[i]) - open
			if t := int(ys[i]) - ext; t > by {
				by = t
			}

			if mv < stripedFloor {
				mv = stripedFloor
			}
			if bx < stripedFloor {
				bx = stripedFloor
			}
			if by < stripedFloor {
				by = stripedFloor
			}

			dm, dx, dy = int(ms[i]), int(xs[i]), int(ys[i])
			ms[i], xs[i], ys[i] = int16(mv), int16(bx), int16(by)
			cm, cx, cy = mv, bx, by
			if i == n {
				if mv > best {
					best = mv
				}
				if bx > best {
					best = bx
				}
			}
		}
	}
	return int32(best), true
}

// grow16 sizes the three int16 DP column buffers for an n-row query.
func (al *Aligner) grow16(n int) {
	if cap(al.m16) < n+1 {
		c := geomCap(n+1, cap(al.m16))
		al.m16 = make([]int16, c)
		al.x16 = make([]int16, c)
		al.y16 = make([]int16, c)
	}
	al.m16 = al.m16[:n+1]
	al.x16 = al.x16[:n+1]
	al.y16 = al.y16[:n+1]
}
