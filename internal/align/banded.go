package align

// LocalScoreBanded computes a banded Smith–Waterman score: the DP is
// evaluated only on the diagonal band |i−j| ≤ band. Out-of-band H cells
// are treated as 0 (the local fresh-start floor) and out-of-band gap
// carries as unreachable, so the result is sandwiched between the
// strictly-banded score and the full LocalScore — in particular it never
// exceeds LocalScore, and equals it once the band covers the whole
// matrix. It is the cheap first stage of a filter cascade: sequence
// pairs whose promising maximal match pins them near one diagonal can be
// rejected in O(band·n) instead of O(n·m).
func (al *Aligner) LocalScoreBanded(a, b []byte, band int) int32 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0
	}
	if band < 1 {
		band = 1
	}
	if band >= n || band >= m {
		return al.LocalScore(a, b)
	}
	al.grow(0, m)
	open, ext := al.sc.GapOpen, al.sc.GapExtend
	h, e := al.m0, al.x0
	for j := 0; j <= m; j++ {
		h[j], e[j] = 0, negInf
	}
	best := int32(0)
	for i := 1; i <= n; i++ {
		lo, hi := i-band, i+band
		if lo < 1 {
			lo = 1
		}
		if hi > m {
			hi = m
		}
		if lo > m {
			break
		}
		al.Cells += int64(hi - lo + 1)
		row := al.sc.Sub[a[i-1]-'A']
		f := negInf
		diag := h[lo-1]
		for j := lo; j <= hi; j++ {
			e[j] = max32(h[j]-open, e[j]-ext)
			f = max32(h[j-1]-open, f-ext)
			hv := diag + int32(row[b[j-1]-'A'])
			if e[j] > hv {
				hv = e[j]
			}
			if f > hv {
				hv = f
			}
			if hv < 0 {
				hv = 0
			}
			diag = h[j]
			h[j] = hv
			if hv > best {
				best = hv
			}
		}
	}
	return best
}
