package align

// LocalScoreBanded computes a banded Smith–Waterman score: the DP is
// evaluated only on the diagonal band |i−j| ≤ band. Out-of-band H cells
// are treated as 0 (the local fresh-start floor) and out-of-band gap
// carries as unreachable, so the result is sandwiched between the
// strictly-banded score and the full LocalScore — in particular it never
// exceeds LocalScore, and equals it once the band covers the whole
// matrix. It is the cheap first stage of a filter cascade: sequence
// pairs whose promising maximal match pins them near one diagonal can be
// rejected in O(band·n) instead of O(n·m).
func (al *Aligner) LocalScoreBanded(a, b []byte, band int) int32 {
	if band < 1 {
		band = 1
	}
	return al.LocalScoreBandedAnchored(a, b, 0, band)
}

// LocalScoreBandedAnchored is LocalScoreBanded centered on an arbitrary
// diagonal: only cells with j−i ∈ [diag−band, diag+band] are evaluated.
// The natural anchor is the seed diagonal of the maximal match that made
// the pair promising (SeedMatch.Diag). The same sandwich holds: the
// result never exceeds LocalScore and equals it once the band covers the
// whole matrix.
func (al *Aligner) LocalScoreBandedAnchored(a, b []byte, diag, band int) int32 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0
	}
	if band < 0 {
		band = 0
	}
	dlo, dhi := diag-band, diag+band
	if dlo <= -n && dhi >= m {
		return al.LocalScore(a, b)
	}
	al.growRows(m)
	open, ext := al.sc.GapOpen, al.sc.GapExtend
	h, e := al.m0, al.x0
	for j := 0; j <= m; j++ {
		h[j], e[j] = 0, negInf
	}
	best := int32(0)
	for i := 1; i <= n; i++ {
		lo, hi := i+dlo, i+dhi
		if lo < 1 {
			lo = 1
		}
		if hi > m {
			hi = m
		}
		if lo > m {
			break // band moved past the right edge; later rows only more so
		}
		if hi < lo {
			continue // band not yet inside the matrix
		}
		al.Cells += int64(hi - lo + 1)
		row := al.sc.Sub[a[i-1]-'A']
		f := negInf
		diagH := h[lo-1]
		// The horizontal carry must read the CURRENT row's left
		// neighbour. At j == lo that neighbour is out of band (or the
		// j == 0 border) and carries the fresh-start floor 0; reading
		// the stale h[lo-1] there would leak the previous row's H into
		// a diagonal "gap" move no real alignment has, inflating the
		// score above the true local optimum.
		hLeft := int32(0)
		for j := lo; j <= hi; j++ {
			e[j] = max32(h[j]-open, e[j]-ext)
			f = max32(hLeft-open, f-ext)
			hv := diagH + int32(row[b[j-1]-'A'])
			if e[j] > hv {
				hv = e[j]
			}
			if f > hv {
				hv = f
			}
			if hv < 0 {
				hv = 0
			}
			diagH = h[j]
			h[j] = hv
			hLeft = hv
			if hv > best {
				best = hv
			}
		}
	}
	return best
}
