package align

import (
	"bytes"
	"fmt"
	"math"
)

// Mode selects the alignment flavour computed by Aligner.Align.
type Mode int

const (
	// Global aligns both sequences end to end (Needleman–Wunsch).
	Global Mode = iota
	// Local finds the best-scoring pair of substrings (Smith–Waterman).
	Local
	// Fit aligns all of sequence A against a substring of sequence B,
	// with B's unaligned prefix and suffix free of charge. This is the
	// natural shape for containment testing.
	Fit
)

func (m Mode) String() string {
	switch m {
	case Global:
		return "global"
	case Local:
		return "local"
	case Fit:
		return "fit"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// EditOp is one run of identical alignment operations.
// Op is 'M' (residue–residue column), 'I' (gap in B: consumes A), or
// 'D' (gap in A: consumes B).
type EditOp struct {
	Op  byte
	Len int
}

// Result describes one computed alignment.
type Result struct {
	Mode  Mode
	Score int32

	// Half-open aligned ranges within each input.
	StartA, EndA int
	StartB, EndB int

	Cols      int // total alignment columns
	Matches   int // identical residue columns
	Positives int // columns with positive substitution score (incl. matches)
	Gaps      int // gap columns ('I' + 'D')

	Ops []EditOp // alignment path, in A/B order
}

// Identity returns the fraction of alignment columns that are identical
// residues, in [0,1]. Zero-column alignments yield 0.
func (r *Result) Identity() float64 {
	if r.Cols == 0 {
		return 0
	}
	return float64(r.Matches) / float64(r.Cols)
}

// Similarity returns the fraction of alignment columns with a positive
// substitution score (the usual BLAST "positives" notion), in [0,1].
func (r *Result) Similarity() float64 {
	if r.Cols == 0 {
		return 0
	}
	return float64(r.Positives) / float64(r.Cols)
}

// Format renders the alignment as a three-line block (A row, match row,
// B row) for human consumption.
func (r *Result) Format(a, b []byte) string {
	var la, mid, lb bytes.Buffer
	i, j := r.StartA, r.StartB
	for _, op := range r.Ops {
		for k := 0; k < op.Len; k++ {
			switch op.Op {
			case 'M':
				la.WriteByte(a[i])
				lb.WriteByte(b[j])
				if a[i] == b[j] {
					mid.WriteByte('|')
				} else {
					mid.WriteByte(' ')
				}
				i++
				j++
			case 'I':
				la.WriteByte(a[i])
				lb.WriteByte('-')
				mid.WriteByte(' ')
				i++
			case 'D':
				la.WriteByte('-')
				lb.WriteByte(b[j])
				mid.WriteByte(' ')
				j++
			}
		}
	}
	return fmt.Sprintf("A[%d:%d] %s\n        %s\nB[%d:%d] %s",
		r.StartA, r.EndA, la.String(), mid.String(), r.StartB, r.EndB, lb.String())
}

const negInf = int32(math.MinInt32 / 4)

// DP states.
const (
	stM = iota // residue–residue
	stX        // gap in B (consumes A; vertical)
	stY        // gap in A (consumes B; horizontal)
	stStart
)

// trace byte layout: bits 0-1 predecessor of M, 2-3 of X, 4-5 of Y.
func packTrace(pm, px, py uint8) byte { return pm | px<<2 | py<<4 }

// KernelMode selects which alignment kernels the cascade may use.
type KernelMode uint8

const (
	// KernelAuto (the zero value) enables the word-parallel kernels:
	// bit-parallel certified rejects and striped int16 scoring with
	// scalar fallback on saturation. Verdicts are identical to
	// KernelScalar — only the work per verdict differs.
	KernelAuto KernelMode = iota
	// KernelScalar restricts the cascade to the int32 scalar kernels.
	KernelScalar
)

// Aligner computes alignments, reusing internal scratch buffers across
// calls. It is not safe for concurrent use; create one per goroutine.
type Aligner struct {
	sc *Scoring

	// Kernels selects the kernel layer the cascade stages may use.
	// The zero value enables the word-parallel kernels.
	Kernels KernelMode

	// two rolling rows of scores per state
	m0, m1, x0, x1, y0, y1 []int32
	trace                  []byte // (lenA+1) * (lenB+1); allocated lazily by Align only
	stride                 int

	// word-parallel kernel scratch: the bit-vector vertical deltas, the
	// striped int16 column state, and the profile built when a caller
	// supplies none.
	pv, mv        []uint64
	m16, x16, y16 []int16
	prof          Profile

	// cached max(0, largest substitution score), for cascade bounds
	maxSub    int32
	maxSubSet bool

	// Stats counts DP cells computed across the Aligner's lifetime; the
	// pipeline uses it as the machine-independent work measure that the
	// virtual-time scheduler charges for. CellsBitvec and CellsStriped
	// are the subsets of Cells computed by the bit-parallel kernel (one
	// cell per 64-row word advanced) and the striped int16 kernels.
	Cells        int64
	CellsBitvec  int64
	CellsStriped int64
}

// NewAligner returns an Aligner using the given scoring scheme
// (DefaultScoring() if nil).
func NewAligner(sc *Scoring) *Aligner {
	if sc == nil {
		sc = DefaultScoring()
	}
	return &Aligner{sc: sc}
}

// Scoring returns the scheme the aligner was built with.
func (al *Aligner) Scoring() *Scoring { return al.sc }

// geomCap grows capacities geometrically (1.5×) so a stream of
// slightly-longer inputs costs O(log) reallocations instead of one per
// call.
func geomCap(need, have int) int {
	if g := have + have/2; g > need {
		return g
	}
	return need
}

// growRows sizes only the six DP row buffers. Score-only kernels use it
// so a stream of rejected pairs never allocates the O(n·m) trace matrix.
func (al *Aligner) growRows(m int) {
	if cap(al.m0) < m+1 {
		c := geomCap(m+1, cap(al.m0))
		al.m0 = make([]int32, c)
		al.m1 = make([]int32, c)
		al.x0 = make([]int32, c)
		al.x1 = make([]int32, c)
		al.y0 = make([]int32, c)
		al.y1 = make([]int32, c)
	}
	al.m0 = al.m0[:m+1]
	al.m1 = al.m1[:m+1]
	al.x0 = al.x0[:m+1]
	al.x1 = al.x1[:m+1]
	al.y0 = al.y0[:m+1]
	al.y1 = al.y1[:m+1]
}

func (al *Aligner) grow(n, m int) {
	al.growRows(m)
	need := (n + 1) * (m + 1)
	if cap(al.trace) < need {
		al.trace = make([]byte, geomCap(need, cap(al.trace)))
	}
	al.trace = al.trace[:need]
	al.stride = m + 1
}

// Align computes the alignment of a and b under the given mode.
// Both sequences are ASCII upper-case residue strings; either may be
// empty, yielding an empty or all-gap alignment depending on mode.
func (al *Aligner) Align(a, b []byte, mode Mode) Result {
	n, m := len(a), len(b)
	if mode == Fit && (n == 0 || m == 0) {
		// Fitting an empty sequence (or fitting into one) is the empty
		// alignment; avoid the degenerate DP.
		return Result{Mode: mode}
	}
	al.grow(n, m)
	al.Cells += int64(n) * int64(m)
	open, ext := al.sc.GapOpen, al.sc.GapExtend

	mPrev, mCur := al.m0, al.m1
	xPrev, xCur := al.x0, al.x1
	yPrev, yCur := al.y0, al.y1

	// Row 0 initialisation.
	for j := 0; j <= m; j++ {
		mPrev[j] = negInf
		xPrev[j] = negInf
		yPrev[j] = negInf
		al.trace[j] = 0
	}
	switch mode {
	case Global:
		mPrev[0] = 0
		for j := 1; j <= m; j++ {
			yPrev[j] = -(open + int32(j-1)*ext)
			py := uint8(stY)
			if j == 1 {
				py = stM
			}
			al.trace[j] = packTrace(0, 0, py)
		}
	case Local, Fit:
		// Fresh starts handled in the recurrence; borders stay -inf.
	}

	bestScore := negInf
	bestI, bestJ, bestState := 0, 0, stM
	if mode == Local {
		bestScore = 0 // empty local alignment always available
	}

	for i := 1; i <= n; i++ {
		ca := a[i-1]
		row := al.sc.Sub[ca-'A']
		tr := al.trace[i*al.stride:]

		// Column 0.
		mCur[0] = negInf
		yCur[0] = negInf
		switch mode {
		case Global:
			xCur[0] = -(open + int32(i-1)*ext)
			px := uint8(stX)
			if i == 1 {
				px = stM
			}
			tr[0] = packTrace(0, px, 0)
		case Fit:
			// A fit alignment may begin with gap-in-B columns (the
			// leading residues of A aligned to nothing inside the
			// chosen substring of B).
			if i == 1 {
				xCur[0] = -open
				tr[0] = packTrace(0, stStart, 0)
			} else {
				xCur[0] = xPrev[0] - ext
				tr[0] = packTrace(0, stX, 0)
			}
		default:
			xCur[0] = negInf
			tr[0] = 0
		}

		for j := 1; j <= m; j++ {
			// M state: diagonal predecessors, optional fresh start.
			s := int32(row[b[j-1]-'A'])
			bm, pm := mPrev[j-1], uint8(stM)
			if xPrev[j-1] > bm {
				bm, pm = xPrev[j-1], stX
			}
			if yPrev[j-1] > bm {
				bm, pm = yPrev[j-1], stY
			}
			freshOK := mode == Local || (mode == Fit && i == 1) ||
				(mode == Global && i == 1 && j == 1)
			// Prefer a fresh start on ties so local/fit tracebacks do not
			// wander through zero-score prefixes.
			if freshOK && 0 >= bm {
				bm, pm = 0, stStart
			}
			mv := bm + s
			mCur[j] = mv

			// X state: vertical (gap in B).
			bx, px := mPrev[j]-open, uint8(stM)
			if v := xPrev[j] - ext; v > bx {
				bx, px = v, stX
			}
			if v := yPrev[j] - open; v > bx {
				bx, px = v, stY
			}
			if mode == Fit && i == 1 && -open > bx {
				// Fresh gap-opening start anywhere in B.
				bx, px = -open, stStart
			}
			xCur[j] = bx

			// Y state: horizontal (gap in A).
			by, py := mCur[j-1]-open, uint8(stM)
			if v := yCur[j-1] - ext; v > by {
				by, py = v, stY
			}
			yCur[j] = by

			tr[j] = packTrace(pm, px, py)

			if mode == Local && mv > bestScore {
				bestScore, bestI, bestJ, bestState = mv, i, j, stM
			}
		}

		if mode == Fit && i == n {
			for j := 0; j <= m; j++ {
				if mCur[j] > bestScore {
					bestScore, bestI, bestJ, bestState = mCur[j], n, j, stM
				}
				if xCur[j] > bestScore {
					bestScore, bestI, bestJ, bestState = xCur[j], n, j, stX
				}
			}
		}
		mPrev, mCur = mCur, mPrev
		xPrev, xCur = xCur, xPrev
		yPrev, yCur = yCur, yPrev
	}

	switch mode {
	case Global:
		// After the loop the final row lives in the "Prev" slices.
		bestScore, bestI, bestJ, bestState = mPrev[m], n, m, stM
		if xPrev[m] > bestScore {
			bestScore, bestState = xPrev[m], stX
		}
		if yPrev[m] > bestScore {
			bestScore, bestState = yPrev[m], stY
		}
	}

	res := Result{Mode: mode, Score: bestScore}
	if mode == Local && bestScore <= 0 {
		return res // empty alignment
	}
	al.traceback(a, b, bestI, bestJ, bestState, &res)
	return res
}

// traceback reconstructs the path ending at (i, j, state).
func (al *Aligner) traceback(a, b []byte, i, j, state int, res *Result) {
	res.EndA, res.EndB = i, j
	var ops []EditOp
	push := func(op byte) {
		if len(ops) > 0 && ops[len(ops)-1].Op == op {
			ops[len(ops)-1].Len++
		} else {
			ops = append(ops, EditOp{Op: op, Len: 1})
		}
	}
	for state != stStart {
		if state == stM && i == 0 && j == 0 {
			break // global-mode origin
		}
		t := al.trace[i*al.stride+j]
		switch state {
		case stM:
			push('M')
			res.Cols++
			if a[i-1] == b[j-1] {
				res.Matches++
			}
			if al.sc.Score(a[i-1], b[j-1]) > 0 {
				res.Positives++
			}
			i--
			j--
			state = int(t & 3)
		case stX:
			push('I')
			res.Cols++
			res.Gaps++
			i--
			state = int(t >> 2 & 3)
		case stY:
			push('D')
			res.Cols++
			res.Gaps++
			j--
			state = int(t >> 4 & 3)
		}
	}
	res.StartA, res.StartB = i, j
	// Reverse ops into A→B order.
	for l, r := 0, len(ops)-1; l < r; l, r = l+1, r-1 {
		ops[l], ops[r] = ops[r], ops[l]
	}
	res.Ops = ops
}

// LocalScore computes only the Smith–Waterman score of a and b, in O(m)
// memory and without traceback. It is the fast path for benchmarks and
// for filters that do not need coordinates.
func (al *Aligner) LocalScore(a, b []byte) int32 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0
	}
	al.growRows(m)
	al.Cells += int64(n) * int64(m)
	open, ext := al.sc.GapOpen, al.sc.GapExtend
	h, e := al.m0, al.x0 // reuse scratch: h = M row, e = Y (horizontal) carry
	f := al.y0           // f = X (vertical) column carry
	for j := 0; j <= m; j++ {
		h[j], e[j], f[j] = 0, negInf, negInf
	}
	best := int32(0)
	for i := 1; i <= n; i++ {
		row := al.sc.Sub[a[i-1]-'A']
		diag := int32(0) // h[i-1][0]
		for j := 1; j <= m; j++ {
			e[j] = max32(h[j]-open, e[j]-ext)     // gap in B arriving from above
			f[j] = max32(h[j-1]-open, f[j-1]-ext) // gap in A arriving from left; note h[j-1] already updated = current row
			hv := diag + int32(row[b[j-1]-'A'])
			if e[j] > hv {
				hv = e[j]
			}
			if f[j] > hv {
				hv = f[j]
			}
			if hv < 0 {
				hv = 0
			}
			diag = h[j]
			h[j] = hv
			if hv > best {
				best = hv
			}
		}
	}
	return best
}

// FitScore computes only the score of Align(a, b, Fit) — all of a
// aligned against a substring of b — in O(m) memory, with no trace
// allocation. It mirrors the Fit recurrence of Align exactly (fresh
// starts at i==1, the gap-only column 0, best over the M and X states of
// the last row), so FitScore(a,b) == Align(a,b,Fit).Score always.
func (al *Aligner) FitScore(a, b []byte) int32 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0
	}
	al.growRows(m)
	al.Cells += int64(n) * int64(m)
	open, ext := al.sc.GapOpen, al.sc.GapExtend

	mPrev, mCur := al.m0, al.m1
	xPrev, xCur := al.x0, al.x1
	yPrev, yCur := al.y0, al.y1
	for j := 0; j <= m; j++ {
		mPrev[j], xPrev[j], yPrev[j] = negInf, negInf, negInf
	}
	best := negInf
	for i := 1; i <= n; i++ {
		row := al.sc.Sub[a[i-1]-'A']
		mCur[0], yCur[0] = negInf, negInf
		if i == 1 {
			xCur[0] = -open
		} else {
			xCur[0] = xPrev[0] - ext
		}
		fresh := i == 1
		for j := 1; j <= m; j++ {
			bm := mPrev[j-1]
			if xPrev[j-1] > bm {
				bm = xPrev[j-1]
			}
			if yPrev[j-1] > bm {
				bm = yPrev[j-1]
			}
			if fresh && 0 >= bm {
				bm = 0
			}
			mCur[j] = bm + int32(row[b[j-1]-'A'])

			bx := mPrev[j] - open
			if v := xPrev[j] - ext; v > bx {
				bx = v
			}
			if v := yPrev[j] - open; v > bx {
				bx = v
			}
			if fresh && -open > bx {
				bx = -open
			}
			xCur[j] = bx

			by := mCur[j-1] - open
			if v := yCur[j-1] - ext; v > by {
				by = v
			}
			yCur[j] = by
		}
		if i == n {
			for j := 0; j <= m; j++ {
				if mCur[j] > best {
					best = mCur[j]
				}
				if xCur[j] > best {
					best = xCur[j]
				}
			}
		}
		mPrev, mCur = mCur, mPrev
		xPrev, xCur = xCur, xPrev
		yPrev, yCur = yCur, yPrev
	}
	return best
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
