package align

import (
	"math/rand"
	"testing"
)

// TestLocalScoreStripedMatchesScalar: the int16 profile kernel must
// reproduce LocalScore exactly whenever it reports ok.
func TestLocalScoreStripedMatchesScalar(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	exact := NewAligner(Blosum62(11, 1))
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 400; trial++ {
		a := randSeq(rng, 1+rng.Intn(180))
		var b []byte
		if trial%2 == 0 {
			b = randSeq(rng, 1+rng.Intn(180))
		} else {
			b = mutate(rng, a, float64(trial%7)*0.05)
		}
		got, ok := al.LocalScoreStriped(a, b)
		if !ok {
			t.Fatalf("trial %d: unexpected saturation on BLOSUM62 inputs", trial)
		}
		if want := exact.LocalScore(a, b); got != want {
			t.Fatalf("trial %d: LocalScoreStriped = %d, LocalScore = %d", trial, got, want)
		}
	}
}

// TestFitScoreStripedMatchesScalar: same contract for the fit kernel.
func TestFitScoreStripedMatchesScalar(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	exact := NewAligner(Blosum62(11, 1))
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 400; trial++ {
		a := randSeq(rng, 1+rng.Intn(150))
		var b []byte
		switch trial % 3 {
		case 0:
			b = randSeq(rng, 1+rng.Intn(200))
		case 1:
			b = mutate(rng, a, 0.08)
		default:
			core := mutate(rng, a, 0.03)
			b = append(append(randSeq(rng, rng.Intn(30)), core...), randSeq(rng, rng.Intn(30))...)
		}
		got, ok := al.FitScoreStriped(a, b)
		if !ok {
			t.Fatalf("trial %d: unexpected saturation on BLOSUM62 inputs", trial)
		}
		if want := exact.FitScore(a, b); got != want {
			t.Fatalf("trial %d: FitScoreStriped = %d, FitScore = %d", trial, got, want)
		}
	}
}

// TestStripedSaturationFallsThrough: scoring scales that can push DP
// values past int16 range must be refused (ok == false), and any score
// returned by a saturated local run must still be a valid lower bound.
func TestStripedSaturationFallsThrough(t *testing.T) {
	// match = 20000: two matched residues already exceed MaxInt16.
	hot := Identity(20000, -2, 11, 1)
	al := NewAligner(hot)
	exact := NewAligner(hot)
	a := []byte("AAAAAAAA")
	b := []byte("AAAAAAAA")

	s, ok := al.LocalScoreStriped(a, b)
	if ok {
		t.Fatal("local kernel claimed exactness past int16 range")
	}
	want := exact.LocalScore(a, b)
	if int64(s) > int64(want) {
		t.Fatalf("saturated local score %d exceeds exact %d", s, want)
	}
	if s <= 32767-20000 {
		t.Fatalf("saturated local score %d should be near the bail point", s)
	}

	if _, ok := al.FitScoreStriped(a, b); ok {
		t.Fatal("fit kernel claimed exactness outside its certified window")
	}

	// Gap penalties beyond the sentinel guard must also fall through.
	wide := Identity(4, -2, 20001, 1)
	al2 := NewAligner(wide)
	if _, ok := al2.LocalScoreStriped(a, b); ok {
		t.Fatal("local kernel accepted out-of-range gap penalties")
	}
	if _, ok := al2.FitScoreStriped(a, b); ok {
		t.Fatal("fit kernel accepted out-of-range gap penalties")
	}
}

// TestFitScoreStripedWindow drives the certified-window precondition:
// a scoring scale where n·maxSub approaches the floor margin must flip
// from exact to refused as n grows, never returning a wrong score.
func TestFitScoreStripedWindow(t *testing.T) {
	sc := Identity(500, -100, 11, 1) // window ends near n ≈ 55
	al := NewAligner(sc)
	exact := NewAligner(sc)
	rng := rand.New(rand.NewSource(17))
	sawExact, sawRefused := false, false
	for n := 40; n <= 80; n += 5 {
		a := randSeq(rng, n)
		b := mutate(rng, a, 0.2)
		got, ok := al.FitScoreStriped(a, b)
		if !ok {
			sawRefused = true
			continue
		}
		sawExact = true
		if want := exact.FitScore(a, b); got != want {
			t.Fatalf("n=%d: FitScoreStriped = %d, FitScore = %d", n, got, want)
		}
	}
	if !sawExact || !sawRefused {
		t.Fatalf("window sweep should cross the precondition boundary (exact=%v refused=%v)", sawExact, sawRefused)
	}
}

// TestProfileReuseAcrossPairs: one profile, many partners — results
// must match the scratch-profile path bit for bit.
func TestProfileReuseAcrossPairs(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	exact := NewAligner(Blosum62(11, 1))
	rng := rand.New(rand.NewSource(19))
	a := randSeq(rng, 120)
	var p Profile
	p.Build(al.Scoring(), a)
	for trial := 0; trial < 50; trial++ {
		b := mutate(rng, a, float64(trial%5)*0.1)
		if got, ok := al.LocalScoreStripedProf(&p, b); !ok || got != exact.LocalScore(a, b) {
			t.Fatalf("trial %d: profile local %d (ok=%v) != scalar %d", trial, got, ok, exact.LocalScore(a, b))
		}
		if got, ok := al.FitScoreStripedProf(&p, b); !ok || got != exact.FitScore(a, b) {
			t.Fatalf("trial %d: profile fit %d (ok=%v) != scalar %d", trial, got, ok, exact.FitScore(a, b))
		}
		if got, want := al.FitEditDistanceProf(&p, b), refFitEditDistance(a, b); got != want {
			t.Fatalf("trial %d: profile edit distance %d != reference %d", trial, got, want)
		}
	}
}

// TestCascadeProfMatchesScratch: the profile-carrying cascade entry
// points must return identical verdicts and stages to the nil-profile
// forms.
func TestCascadeProfMatchesScratch(t *testing.T) {
	al1 := NewAligner(Blosum62(11, 1))
	al2 := NewAligner(Blosum62(11, 1))
	rng := rand.New(rand.NewSource(23))
	cp := DefaultContainParams()
	op := DefaultOverlapParams()
	for trial := 0; trial < 200; trial++ {
		a := randSeq(rng, 20+rng.Intn(100))
		var b []byte
		switch trial % 4 {
		case 0:
			b = randSeq(rng, 20+rng.Intn(150))
		case 1:
			b = mutate(rng, a, 0.04)
		case 2:
			core := mutate(rng, a, 0.02)
			b = append(append(randSeq(rng, rng.Intn(20)), core...), randSeq(rng, rng.Intn(20))...)
		default:
			b = mutate(rng, a, 0.4)
		}
		if len(a) > len(b) {
			a, b = b, a
		}
		seed := SeedMatch{PosA: rng.Intn(len(a)), PosB: rng.Intn(len(b)), Len: rng.Intn(30)}
		var pa Profile
		pa.Build(al1.Scoring(), a)

		ok1, st1 := al1.ContainedCascadeProf(a, b, cp, seed, &pa)
		ok2, st2 := al2.ContainedCascade(a, b, cp, seed)
		if ok1 != ok2 || st1 != st2 {
			t.Fatalf("trial %d: contained prof (%v,%v) != scratch (%v,%v)", trial, ok1, st1, ok2, st2)
		}
		ok1, st1 = al1.OverlapsCascadeProf(a, b, op, seed, &pa)
		ok2, st2 = al2.OverlapsCascade(a, b, op, seed)
		if ok1 != ok2 || st1 != st2 {
			t.Fatalf("trial %d: overlaps prof (%v,%v) != scratch (%v,%v)", trial, ok1, st1, ok2, st2)
		}
	}
}
