package align

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const residues = "ACDEFGHIKLMNPQRSTVWY"

func randSeq(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = residues[rng.Intn(len(residues))]
	}
	return b
}

// scoreFromOps independently recomputes an alignment's score by walking
// its edit operations, charging open + (len-1)*extend per gap run.
func scoreFromOps(sc *Scoring, a, b []byte, r Result) int32 {
	i, j := r.StartA, r.StartB
	var total int32
	for _, op := range r.Ops {
		switch op.Op {
		case 'M':
			for k := 0; k < op.Len; k++ {
				total += sc.Score(a[i], b[j])
				i++
				j++
			}
		case 'I':
			total -= sc.GapOpen + int32(op.Len-1)*sc.GapExtend
			i += op.Len
		case 'D':
			total -= sc.GapOpen + int32(op.Len-1)*sc.GapExtend
			j += op.Len
		}
	}
	if i != r.EndA || j != r.EndB {
		return -1 << 30 // ops inconsistent with coordinates
	}
	return total
}

func TestBlosum62Sanity(t *testing.T) {
	sc := Blosum62(11, 1)
	if sc.Score('A', 'A') != 4 || sc.Score('W', 'W') != 11 || sc.Score('X', 'X') != -1 {
		t.Errorf("diagonal scores wrong: A=%d W=%d X=%d",
			sc.Score('A', 'A'), sc.Score('W', 'W'), sc.Score('X', 'X'))
	}
	if sc.Score('A', 'R') != -1 || sc.Score('I', 'L') != 2 {
		t.Errorf("off-diagonal scores wrong: AR=%d IL=%d", sc.Score('A', 'R'), sc.Score('I', 'L'))
	}
	// Symmetry over the full letter range.
	for a := byte('A'); a <= 'Z'; a++ {
		for b := byte('A'); b <= 'Z'; b++ {
			if sc.Score(a, b) != sc.Score(b, a) {
				t.Fatalf("asymmetric: %c%c", a, b)
			}
		}
	}
	// U behaves like C, O like K.
	if sc.Score('U', 'C') != sc.Score('C', 'C') || sc.Score('O', 'K') != sc.Score('K', 'K') {
		t.Error("U/O mapping broken")
	}
}

func TestGlobalIdentical(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	s := []byte("MKLVINGKTLKGEITVEAP")
	r := al.Align(s, s, Global)
	var want int32
	for _, c := range s {
		want += al.Scoring().Score(c, c)
	}
	if r.Score != want {
		t.Errorf("score = %d, want %d", r.Score, want)
	}
	if r.Identity() != 1 || r.Gaps != 0 || r.Cols != len(s) {
		t.Errorf("stats wrong: id=%v gaps=%d cols=%d", r.Identity(), r.Gaps, r.Cols)
	}
	if r.StartA != 0 || r.EndA != len(s) || r.StartB != 0 || r.EndB != len(s) {
		t.Errorf("coords wrong: %+v", r)
	}
}

func TestGlobalKnownSmall(t *testing.T) {
	// Identity scoring: match 2, mismatch -1, open 2, ext 1.
	sc := Identity(2, -1, 2, 1)
	al := NewAligner(sc)
	// ACGT vs AGT: best is A-C/gap: A C G T
	//                            A - G T  → 3 matches (6) - open(2) = 4
	r := al.Align([]byte("ACGT"), []byte("AGT"), Global)
	if r.Score != 4 {
		t.Errorf("score = %d, want 4", r.Score)
	}
	if got := scoreFromOps(sc, []byte("ACGT"), []byte("AGT"), r); got != r.Score {
		t.Errorf("ops recompute %d != score %d", got, r.Score)
	}
	if r.Matches != 3 || r.Gaps != 1 {
		t.Errorf("matches=%d gaps=%d", r.Matches, r.Gaps)
	}
}

func TestGlobalEmpty(t *testing.T) {
	sc := Identity(2, -1, 3, 1)
	al := NewAligner(sc)
	r := al.Align([]byte("AAAA"), nil, Global)
	if r.Score != -(3 + 3*1) {
		t.Errorf("all-gap score = %d, want -6", r.Score)
	}
	if r.Cols != 4 || r.Gaps != 4 {
		t.Errorf("cols=%d gaps=%d", r.Cols, r.Gaps)
	}
	r = al.Align(nil, []byte("CC"), Global)
	if r.Score != -(3 + 1) {
		t.Errorf("all-gap score = %d, want -4", r.Score)
	}
	r = al.Align(nil, nil, Global)
	if r.Score != 0 || r.Cols != 0 {
		t.Errorf("empty global: %+v", r)
	}
}

func TestLocalEmbeddedMotif(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	motif := "WWHKNMEFRWCY"
	a := []byte("AAAAAAA" + motif + "GGGGG")
	b := []byte("TTT" + motif + "PPPPPPPPP")
	r := al.Align(a, b, Local)
	if r.Identity() != 1 {
		t.Fatalf("expected exact motif match, got identity %v (%s)", r.Identity(), r.Format(a, b))
	}
	if got := string(a[r.StartA:r.EndA]); got != motif {
		t.Errorf("aligned A region = %q, want %q", got, motif)
	}
	if got := string(b[r.StartB:r.EndB]); got != motif {
		t.Errorf("aligned B region = %q, want %q", got, motif)
	}
}

func TestLocalDisjoint(t *testing.T) {
	sc := Identity(1, -2, 5, 2)
	al := NewAligner(sc)
	r := al.Align([]byte("AAAA"), []byte("CCCC"), Local)
	if r.Score > 0 || r.Cols != 0 {
		t.Errorf("disjoint local alignment nonempty: %+v", r)
	}
}

func TestFitContainment(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	inner := "MKWVTFISLLFLFSSAYSRGV"
	outer := []byte("HHHHHHHHHH" + inner + "KKKKKKKKKK")
	r := al.Align([]byte(inner), outer, Fit)
	if r.Identity() != 1 || r.StartA != 0 || r.EndA != len(inner) {
		t.Fatalf("fit failed: %+v", r)
	}
	if r.StartB != 10 || r.EndB != 10+len(inner) {
		t.Errorf("fit located at B[%d:%d], want [10:%d]", r.StartB, r.EndB, 10+len(inner))
	}
}

func TestFitEmpty(t *testing.T) {
	al := NewAligner(nil)
	r := al.Align(nil, []byte("AAAA"), Fit)
	if r.Cols != 0 || r.Score != 0 {
		t.Errorf("fit empty: %+v", r)
	}
	r = al.Align([]byte("AAAA"), nil, Fit)
	if r.Cols != 0 {
		t.Errorf("fit into empty: %+v", r)
	}
}

func TestContainedPredicate(t *testing.T) {
	al := NewAligner(nil)
	p := DefaultContainParams()
	inner := []byte("MKWVTFISLLFLFSSAYSRGVFRRDTHKSEIAHRFKDLGE")
	outer := append(append([]byte("DEGHIKLMNP"), inner...), []byte("QRSTVWYACD")...)
	if ok, _ := al.Contained(inner, outer, p); !ok {
		t.Error("exact substring not detected as contained")
	}
	// One mismatch in 40 residues: 97.5 % identity, still contained.
	mut := append([]byte(nil), inner...)
	mut[20] = 'W'
	if ok, _ := al.Contained(mut, outer, p); !ok {
		t.Error("97.5%-identical substring not detected as contained")
	}
	// Heavily mutated: not contained.
	for i := 0; i < len(mut); i += 3 {
		mut[i] = 'P'
	}
	if ok, _ := al.Contained(mut, outer, p); ok {
		t.Error("heavily mutated sequence wrongly contained")
	}
	// Longer than container: short-circuit false.
	long := append(append([]byte(nil), outer...), 'A')
	if ok, _ := al.Contained(long, outer, p); ok {
		t.Error("longer sequence cannot be contained")
	}
}

func TestOverlapsPredicate(t *testing.T) {
	al := NewAligner(nil)
	p := DefaultOverlapParams()
	a := []byte("MKWVTFISLLFLFSSAYSRGVFRRDTHKSEIAHRFKDLGEEHFKGLVLIA")
	// b = a with sparse mutations → strongly overlapping.
	b := append([]byte(nil), a...)
	for i := 5; i < len(b); i += 10 {
		b[i] = 'G'
	}
	if ok, _ := al.Overlaps(a, b, p); !ok {
		t.Error("near-identical sequences do not overlap")
	}
	// Short common region in long sequences: fails 80 % coverage.
	longA := append(append([]byte(strings.Repeat("K", 60)), a[:20]...), []byte(strings.Repeat("E", 60))...)
	if ok, _ := al.Overlaps(longA, a, p); ok {
		t.Error("short shared region should fail the coverage test")
	}
}

// Property: the reported score always equals the score recomputed from the
// edit operations, for every mode.
func TestScoreMatchesOpsProperty(t *testing.T) {
	sc := Blosum62(11, 1)
	al := NewAligner(sc)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, 1+rng.Intn(60))
		b := randSeq(rng, 1+rng.Intn(60))
		for _, mode := range []Mode{Global, Local, Fit} {
			r := al.Align(a, b, mode)
			if mode == Local && r.Cols == 0 {
				continue
			}
			if got := scoreFromOps(sc, a, b, r); got != r.Score {
				t.Logf("mode=%v seed=%d: ops score %d != %d\n%s", mode, seed, got, r.Score, r.Format(a, b))
				return false
			}
			if r.Matches > r.Positives || r.Positives+r.Gaps > r.Cols {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the traceback-free LocalScore agrees with the full Local DP.
func TestLocalScoreAgreesProperty(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, rng.Intn(80))
		b := randSeq(rng, rng.Intn(80))
		full := al.Align(a, b, Local).Score
		if full < 0 {
			full = 0
		}
		return al.LocalScore(a, b) == full
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: local alignment score is symmetric.
func TestLocalSymmetryProperty(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, 1+rng.Intn(50))
		b := randSeq(rng, 1+rng.Intn(50))
		return al.LocalScore(a, b) == al.LocalScore(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: global self-alignment is a perfect diagonal.
func TestGlobalSelfProperty(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, 1+rng.Intn(100))
		r := al.Align(a, a, Global)
		return r.Identity() == 1 && r.Gaps == 0 && r.Cols == len(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCellsAccounting(t *testing.T) {
	al := NewAligner(nil)
	al.Align([]byte("AAAA"), []byte("CCCCC"), Local)
	if al.Cells != 20 {
		t.Errorf("Cells = %d, want 20", al.Cells)
	}
	al.LocalScore([]byte("AA"), []byte("CC"))
	if al.Cells != 24 {
		t.Errorf("Cells = %d, want 24", al.Cells)
	}
}

func TestFormatShape(t *testing.T) {
	al := NewAligner(Identity(2, -1, 2, 1))
	a, b := []byte("ACGT"), []byte("AGT")
	r := al.Align(a, b, Global)
	out := r.Format(a, b)
	if !strings.Contains(out, "ACGT") || !strings.Contains(out, "A-GT") {
		t.Errorf("unexpected format output:\n%s", out)
	}
}

func BenchmarkLocalFull(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randSeq(rng, 200)
	y := randSeq(rng, 200)
	al := NewAligner(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.Align(x, y, Local)
	}
}

func BenchmarkLocalScoreOnly(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randSeq(rng, 200)
	y := randSeq(rng, 200)
	al := NewAligner(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.LocalScore(x, y)
	}
}
