// Package align implements pairwise amino-acid sequence alignment:
// Needleman–Wunsch global, Smith–Waterman local, and "fit" (containment)
// alignment, all with affine gap penalties (Gotoh's method), plus the two
// similarity predicates the paper builds its pipeline on:
//
//   - Definition 1 (containment): an optimal alignment covering ≥95 % of
//     the shorter sequence at ≥95 % similarity — used by redundancy removal.
//   - Definition 2 (overlap): a local alignment covering ≥80 % of the
//     longer sequence at ≥30 % similarity — used by connected-component
//     detection.
package align

import "fmt"

// Scoring holds a substitution matrix and affine gap penalties.
// Sub is indexed by ASCII letter minus 'A' for both residues; entries for
// letters outside the amino-acid alphabet are the X (unknown) scores.
// GapOpen is the cost of the first residue of a gap, GapExtend of each
// subsequent one; both are positive numbers that get subtracted.
type Scoring struct {
	Name      string
	Sub       [26][26]int16
	GapOpen   int32
	GapExtend int32
}

// Score returns the substitution score for aligning residues a and b
// (ASCII upper-case letters).
func (s *Scoring) Score(a, b byte) int32 { return int32(s.Sub[a-'A'][b-'A']) }

// blosum62 rows/cols in the order published by NCBI.
const blosumOrder = "ARNDCQEGHILKMFPSTWYVBZX"

var blosum62 = [23][23]int16{
	{4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0, -2, -1, 0},
	{-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3, -1, 0, -1},
	{-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3, 3, 0, -1},
	{-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3, 4, 1, -1},
	{0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2},
	{-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2, 0, 3, -1},
	{-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2, 1, 4, -1},
	{0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3, -1, -2, -1},
	{-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3, 0, 0, -1},
	{-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3, -3, -3, -1},
	{-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1, -4, -3, -1},
	{-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2, 0, 1, -1},
	{-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1, -3, -1, -1},
	{-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1, -3, -3, -1},
	{-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2, -2, -1, -2},
	{1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2, 0, 0, 0},
	{0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0, -1, -1, 0},
	{-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3, -4, -3, -2},
	{-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1, -3, -2, -1},
	{0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4, -3, -2, -1},
	{-2, -1, 3, 4, -3, 0, 1, -1, 0, -3, -4, 0, -3, -3, -2, 0, -1, -4, -3, -3, 4, 1, -1},
	{-1, 0, 0, 1, -3, 3, 4, -2, 0, -3, -3, 1, -1, -3, -1, 0, -1, -3, -2, -2, 1, 4, -1},
	{0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2, 0, 0, -2, -1, -1, -1, -1, -1},
}

// Blosum62 returns the standard BLOSUM62 substitution matrix with the
// given affine gap penalties. The rare residues U and O score like C and K
// respectively; any other letter scores like X.
func Blosum62(gapOpen, gapExtend int32) *Scoring {
	s := &Scoring{Name: "BLOSUM62", GapOpen: gapOpen, GapExtend: gapExtend}
	xi := indexOf('X')
	// Default every cell to the X row/col so unexpected letters degrade
	// gracefully instead of scoring 0.
	for i := 0; i < 26; i++ {
		for j := 0; j < 26; j++ {
			s.Sub[i][j] = blosum62[xi][xi]
		}
	}
	letterIdx := func(c byte) int {
		switch c {
		case 'U':
			return indexOf('C')
		case 'O':
			return indexOf('K')
		case 'J': // not a residue, treat as X
			return xi
		default:
			return indexOf(c)
		}
	}
	for a := byte('A'); a <= 'Z'; a++ {
		for b := byte('A'); b <= 'Z'; b++ {
			s.Sub[a-'A'][b-'A'] = blosum62[letterIdx(a)][letterIdx(b)]
		}
	}
	return s
}

func indexOf(c byte) int {
	for i := 0; i < len(blosumOrder); i++ {
		if blosumOrder[i] == c {
			return i
		}
	}
	return len(blosumOrder) - 1 // X
}

// Identity returns a simple match/mismatch scoring scheme, useful for
// tests and for the strict identity cutoffs of redundancy removal.
func Identity(match, mismatch int16, gapOpen, gapExtend int32) *Scoring {
	s := &Scoring{Name: fmt.Sprintf("identity(%d/%d)", match, mismatch), GapOpen: gapOpen, GapExtend: gapExtend}
	for i := 0; i < 26; i++ {
		for j := 0; j < 26; j++ {
			if i == j {
				s.Sub[i][j] = match
			} else {
				s.Sub[i][j] = mismatch
			}
		}
	}
	return s
}

// DefaultScoring is the scheme the pipeline uses when the caller does not
// override it: BLOSUM62 with gap open 11, extend 1 (the BLASTP default).
func DefaultScoring() *Scoring { return Blosum62(11, 1) }
