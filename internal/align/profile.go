package align

// Profile is a per-query preprocessed view of one sequence under a
// scoring scheme, shared by the word-parallel kernels:
//
//   - peq holds the Myers bit-vector match masks — for each alphabet
//     letter, one 64-bit word per block of 64 query rows — consumed by
//     the bit-parallel edit-distance kernel (bitparallel.go).
//   - cols holds the Farrar-style query profile Sub[a_i][c] laid out
//     letter-major, so the striped int16 kernels (striped.go) read one
//     contiguous int16 stream per text column instead of chasing the
//     substitution matrix cell by cell.
//
// A profile is built once per sequence and reused across every pair the
// sequence participates in (see pool.ProfileSet). Build reuses the
// backing arrays geometrically, so a warm Profile never allocates.
// A Profile is immutable between builds and safe for concurrent readers.
type Profile struct {
	n      int      // query length
	blocks int      // ⌈n/64⌉ bit-vector blocks
	peq    []uint64 // 26·blocks; peq[c·blocks+k] masks letter c over rows [64k, 64k+63]
	cols   []int16  // 26·n; cols[c·n+i] = Sub[a_i][c]
}

// Len returns the query length the profile was last built for.
func (p *Profile) Len() int { return p.n }

// Build (re)fills both kernel views of the profile for query a under
// scoring sc (DefaultScoring() if nil).
func (p *Profile) Build(sc *Scoring, a []byte) {
	p.buildBits(sc, a)
	p.buildCols(sc, a)
}

// buildBits fills only the bit-parallel match masks. The single-threaded
// scratch path uses it so a zero-DP reject never pays for the int16
// profile it would not read.
func (p *Profile) buildBits(sc *Scoring, a []byte) {
	_ = sc
	n := len(a)
	blocks := (n + 63) / 64
	p.n, p.blocks = n, blocks
	need := 26 * blocks
	if cap(p.peq) < need {
		p.peq = make([]uint64, geomCap(need, cap(p.peq)))
	}
	p.peq = p.peq[:need]
	for i := range p.peq {
		p.peq[i] = 0
	}
	for i, c := range a {
		p.peq[int(c-'A')*blocks+i/64] |= 1 << (uint(i) & 63)
	}
}

// buildCols fills only the striped int16 query profile.
func (p *Profile) buildCols(sc *Scoring, a []byte) {
	if sc == nil {
		sc = DefaultScoring()
	}
	n := len(a)
	p.n = n
	p.blocks = (n + 63) / 64
	need := 26 * n
	if cap(p.cols) < need {
		p.cols = make([]int16, geomCap(need, cap(p.cols)))
	}
	p.cols = p.cols[:need]
	for c := 0; c < 26; c++ {
		row := p.cols[c*n : (c+1)*n : (c+1)*n]
		for i, ra := range a {
			row[i] = sc.Sub[ra-'A'][c]
		}
	}
}
