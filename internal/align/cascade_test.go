package align

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// mutate returns a copy of s with roughly rate·len substitutions and a
// few indels, producing related-but-divergent pairs.
func mutate(rng *rand.Rand, s []byte, rate float64) []byte {
	const alpha = "ACDEFGHIKLMNPQRSTVWY"
	out := make([]byte, 0, len(s)+4)
	for _, c := range s {
		r := rng.Float64()
		switch {
		case r < rate*0.1: // deletion
		case r < rate*0.2: // insertion
			out = append(out, alpha[rng.Intn(len(alpha))], c)
		case r < rate:
			out = append(out, alpha[rng.Intn(len(alpha))])
		default:
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = append(out, 'A')
	}
	return out
}

// pairKinds generates a spectrum from identical to unrelated so verdict
// tests exercise accepts, near-threshold cases and rejects.
func pairKinds(rng *rand.Rand) ([]byte, []byte) {
	a := randSeq(rng, 20+rng.Intn(120))
	switch rng.Intn(5) {
	case 0: // contained: a inside padding
		pre := randSeq(rng, rng.Intn(30))
		post := randSeq(rng, rng.Intn(30))
		b := append(append(append([]byte(nil), pre...), a...), post...)
		return a, b
	case 1:
		return a, mutate(rng, a, 0.03)
	case 2:
		return a, mutate(rng, a, 0.15)
	case 3:
		return a, mutate(rng, a, 0.5)
	default:
		return a, randSeq(rng, 20+rng.Intn(120))
	}
}

// randSeedFor returns sometimes-genuine, sometimes-bogus seed
// coordinates; cascade verdicts must not depend on seed quality.
func randSeedFor(rng *rand.Rand, a, b []byte) SeedMatch {
	switch rng.Intn(3) {
	case 0:
		return SeedMatch{}
	case 1: // bogus
		return SeedMatch{PosA: rng.Intn(400) - 100, PosB: rng.Intn(400) - 100, Len: rng.Intn(50)}
	default: // in-range diagonal window
		pa := rng.Intn(len(a))
		pb := rng.Intn(len(b))
		l := 1 + rng.Intn(16)
		return SeedMatch{PosA: pa, PosB: pb, Len: l}
	}
}

func TestFitScoreMatchesAlign(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := pairKinds(rng)
		return al.FitScore(a, b) == al.Align(a, b, Fit).Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFitScoreCertifiedEqualsFull(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := pairKinds(rng)
		want := al.FitScore(a, b)
		return al.FitScoreCertified(a, b, randSeedFor(rng, a, b)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFitScoreBandFullCoverage(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := pairKinds(rng)
		full := al.FitScore(a, b)
		banded := al.fitScoreBand(a, b, -len(a), len(b))
		if banded != full {
			return false
		}
		// A narrow band never exceeds the full score.
		return al.fitScoreBand(a, b, -2, len(b)-len(a)+2) <= full
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAnchoredBandFindsShiftedMotif(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	motif := "WWHKNMEFRWCYHH"
	a := []byte(motif + "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAA")
	b := []byte("TTTTTTTTTTTTTTTTTTTTTTTTTTTTTT" + motif)
	full := al.LocalScore(a, b)
	// The motif sits on diagonal 30: a diag-0 band misses it, the
	// anchored band recovers the full score.
	if got := al.LocalScoreBandedAnchored(a, b, 30, 2); got != full {
		t.Errorf("anchored band: %d, want full %d", got, full)
	}
	if got := al.LocalScoreBandedAnchored(a, b, 0, 2); got >= full {
		t.Errorf("unanchored narrow band should miss the motif: %d vs %d", got, full)
	}
}

func TestAnchoredBandSandwich(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := pairKinds(rng)
		full := al.LocalScore(a, b)
		diag := rng.Intn(2*len(b)) - len(b)
		s := al.LocalScoreBandedAnchored(a, b, diag, rng.Intn(20))
		if s < 0 || s > full {
			return false
		}
		wide := len(a) + len(b) + abs(diag) + 1
		return al.LocalScoreBandedAnchored(a, b, diag, wide) == full
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestAnchoredBandLeftEdgeRegression pins the band's left-edge
// horizontal carry: reading the stale previous-row H there used to
// inflate the banded score above the full local optimum (seed found by
// quick.Check), breaking the sandwich the cascade's certificate relies
// on.
func TestAnchoredBandLeftEdgeRegression(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	rng := rand.New(rand.NewSource(3649157941712816913))
	a, b := pairKinds(rng)
	full := al.LocalScore(a, b)
	diag := rng.Intn(2*len(b)) - len(b)
	band := rng.Intn(20)
	if s := al.LocalScoreBandedAnchored(a, b, diag, band); s < 0 || s > full {
		t.Fatalf("banded score %d outside [0, %d]", s, full)
	}
}

func TestFitMatchesPossibleBasics(t *testing.T) {
	al := NewAligner(nil)
	s := []byte("ACDEFGHIKLMNPQRSTVWY")
	if !al.fitMatchesPossible(s, s, 0, 0, len(s)) {
		t.Error("identical sequences must reach a full match on the main diagonal")
	}
	if al.fitMatchesPossible(s, s, -len(s), len(s), len(s)+1) {
		t.Error("more matches than rows is impossible")
	}
	rev := make([]byte, len(s))
	for i, c := range s {
		rev[len(s)-1-i] = c
	}
	if al.fitMatchesPossible(s, rev, -2, 2, len(s)-2) {
		t.Error("a reversed sequence cannot nearly-fully match within a narrow band")
	}
}

func TestContainedCascadeMatchesExact(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	exact := NewAligner(Blosum62(11, 1))
	p := DefaultContainParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := pairKinds(rng)
		wantOK, wantWhich := exact.EitherContained(a, b, p)
		gotOK, gotWhich, _ := al.EitherContainedCascade(a, b, p, randSeedFor(rng, a, b))
		return wantOK == gotOK && wantWhich == gotWhich
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestOverlapsCascadeMatchesExact(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	exact := NewAligner(Blosum62(11, 1))
	p := DefaultOverlapParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := pairKinds(rng)
		want, _ := exact.Overlaps(a, b, p)
		got, _ := al.OverlapsCascade(a, b, p, randSeedFor(rng, a, b))
		return want == got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestCascadeLooseThresholds: degenerate thresholds (0 or >1) must not
// trip the prefilter math; verdicts still match the exact predicates.
func TestCascadeLooseThresholds(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	exact := NewAligner(Blosum62(11, 1))
	rng := rand.New(rand.NewSource(99))
	params := []ContainParams{{}, {MinIdentity: 1.5, MinCoverage: 1}, {MinIdentity: 0.01, MinCoverage: 0.01}}
	oparams := []OverlapParams{{}, {MinSimilarity: 1.5, MinLongCoverage: 1.5}, {MinSimilarity: 0.01, MinLongCoverage: 0.01}}
	for i := 0; i < 50; i++ {
		a, b := pairKinds(rng)
		seed := randSeedFor(rng, a, b)
		for _, p := range params {
			want, wantW := exact.EitherContained(a, b, p)
			got, gotW, _ := al.EitherContainedCascade(a, b, p, seed)
			if want != got || wantW != gotW {
				t.Fatalf("contain params %+v: cascade (%v,%d) != exact (%v,%d)", p, got, gotW, want, wantW)
			}
		}
		for _, p := range oparams {
			want, _ := exact.Overlaps(a, b, p)
			got, _ := al.OverlapsCascade(a, b, p, seed)
			if want != got {
				t.Fatalf("overlap params %+v: cascade %v != exact %v", p, got, want)
			}
		}
	}
}

// TestCascadeStages pins each stage to an input engineered to trigger
// it, and checks the verdict against the exact predicate every time.
func TestCascadeStages(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	exact := NewAligner(Blosum62(11, 1))
	cp := DefaultContainParams()
	op := DefaultOverlapParams()

	check := func(name string, got, want bool, gotStage, wantStage Stage) {
		t.Helper()
		if got != want {
			t.Errorf("%s: verdict %v, exact %v", name, got, want)
		}
		if gotStage != wantStage {
			t.Errorf("%s: stage %v, want %v", name, gotStage, wantStage)
		}
	}

	// Disjoint alphabets: the composition bound rejects with zero DP.
	a := bytes.Repeat([]byte("AC"), 30)
	b := bytes.Repeat([]byte("WY"), 35)
	ok, st := al.ContainedCascade(a, b, cp, SeedMatch{})
	wantOK, _ := exact.Contained(a, b, cp)
	check("contain/prefilter", ok, wantOK, st, StagePrefilter)

	// Same composition, reversed order: composition passes, the
	// bit-parallel edit-distance ceiling proves the identity threshold
	// unreachable before the banded DP even runs.
	a = bytes.Repeat([]byte("ACDEFGHIKLMNPQRSTVWY"), 3)
	rev := make([]byte, len(a))
	for i, c := range a {
		rev[len(a)-1-i] = c
	}
	ok, st = al.ContainedCascade(a, rev, cp, SeedMatch{})
	wantOK, _ = exact.Contained(a, rev, cp)
	check("contain/bitvec", ok, wantOK, st, StageBitvec)

	// With the word-parallel kernels disabled the banded max-matches DP
	// provides the same certificate one stage later.
	scalar := NewAligner(Blosum62(11, 1))
	scalar.Kernels = KernelScalar
	ok, st = scalar.ContainedCascade(a, rev, cp, SeedMatch{})
	check("contain/banded", ok, wantOK, st, StageBanded)

	// A genuinely contained pair must reach the full DP and accept.
	inner := bytes.Repeat([]byte("MKWVTFISLL"), 6)
	outer := append(append([]byte("HHHHH"), inner...), []byte("GGGGG")...)
	ok, st = al.ContainedCascade(inner, outer, cp, SeedMatch{Len: len(inner)})
	wantOK, _ = exact.Contained(inner, outer, cp)
	if !wantOK {
		t.Fatal("test setup: expected exact containment")
	}
	check("contain/full", ok, wantOK, st, StageFull)

	// Length ratio: 10 vs 100 cannot reach 30 % similarity over 80 % of
	// the longer sequence.
	shortSeq := bytes.Repeat([]byte("W"), 10)
	longSeq := bytes.Repeat([]byte("W"), 100)
	ok, st = al.OverlapsCascade(shortSeq, longSeq, op, SeedMatch{Len: 10})
	wantOK, _ = exact.Overlaps(shortSeq, longSeq, op)
	check("overlap/prefilter-ratio", ok, wantOK, st, StagePrefilter)

	// Forced-gap ceiling beaten by the seed run: 60 perfect W·W columns
	// score 660, while any 80-column span with ≥20 gap columns tops out
	// lower.
	a = bytes.Repeat([]byte("W"), 60)
	b = append(bytes.Repeat([]byte("W"), 60), bytes.Repeat([]byte("A"), 40)...)
	ok, st = al.OverlapsCascade(a, b, op, SeedMatch{PosA: 0, PosB: 0, Len: 60})
	wantOK, _ = exact.Overlaps(a, b, op)
	check("overlap/prefilter-seedrun", ok, wantOK, st, StagePrefilter)

	// Same pair with no usable seed: the anchored banded score provides
	// the same certificate one stage later.
	ok, st = al.OverlapsCascade(a, b, op, SeedMatch{})
	check("overlap/banded", ok, wantOK, st, StageBanded)

	// A high-scoring match far off the (unanchored) band: the banded
	// lower bound misses it, but the striped full local score exceeds
	// the forced-gap ceiling and rejects before the exact DP.
	a = bytes.Repeat([]byte("W"), 60)
	b = append(bytes.Repeat([]byte("A"), 40), bytes.Repeat([]byte("W"), 60)...)
	ok, st = al.OverlapsCascade(a, b, op, SeedMatch{})
	wantOK, _ = exact.Overlaps(a, b, op)
	check("overlap/striped", ok, wantOK, st, StageStriped)

	// A same-length overlapping pair falls through to the full DP.
	s := randSeq(rand.New(rand.NewSource(5)), 100)
	ok, st = al.OverlapsCascade(s, s, op, SeedMatch{Len: 100})
	wantOK, _ = exact.Overlaps(s, s, op)
	if !wantOK {
		t.Fatal("test setup: identical sequences must overlap")
	}
	check("overlap/full", ok, wantOK, st, StageFull)
}

// TestCascadeCheaper: on a mixed workload the cascade must compute far
// fewer DP cells than the exact predicates while agreeing on every
// verdict (the cells reduction is asserted end-to-end in the pipeline
// tests; here we just require a strict win).
func TestCascadeCheaper(t *testing.T) {
	casc := NewAligner(Blosum62(11, 1))
	exact := NewAligner(Blosum62(11, 1))
	rng := rand.New(rand.NewSource(2024))
	cp := DefaultContainParams()
	// Comparable-length pairs, matching the redundancy-removal workload
	// (pairs of near-full-length reads sharing a ψ-mer). Wildly unequal
	// lengths are exercised for correctness by pairKinds above; they are
	// not where the cascade's cell savings come from.
	comparablePair := func() ([]byte, []byte) {
		a := randSeq(rng, 80+rng.Intn(60))
		switch rng.Intn(5) {
		case 0:
			pre := randSeq(rng, rng.Intn(8))
			post := randSeq(rng, rng.Intn(8))
			return a, append(append(append([]byte(nil), pre...), a...), post...)
		case 1:
			return a, mutate(rng, a, 0.03)
		case 2:
			return a, mutate(rng, a, 0.15)
		case 3:
			return a, mutate(rng, a, 0.5)
		default:
			return a, randSeq(rng, 80+rng.Intn(60))
		}
	}
	for i := 0; i < 200; i++ {
		a, b := comparablePair()
		wantOK, wantWhich := exact.EitherContained(a, b, cp)
		gotOK, gotWhich, _ := casc.EitherContainedCascade(a, b, cp, randSeedFor(rng, a, b))
		if wantOK != gotOK || wantWhich != gotWhich {
			t.Fatalf("pair %d: cascade (%v,%d) != exact (%v,%d)", i, gotOK, gotWhich, wantOK, wantWhich)
		}
	}
	if casc.Cells*2 >= exact.Cells {
		t.Errorf("cascade computed %d cells vs exact %d; want at least a 2x reduction", casc.Cells, exact.Cells)
	}
}

func BenchmarkFitScore(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randSeq(rng, 200)
	y := randSeq(rng, 220)
	al := NewAligner(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.FitScore(x, y)
	}
}

func BenchmarkFitScoreCertified(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randSeq(rng, 200)
	y := mutate(rng, x, 0.05)
	al := NewAligner(nil)
	seed := SeedMatch{PosA: 10, PosB: 10, Len: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.FitScoreCertified(x, y, seed)
	}
}
