package align

import "math"

// This file implements the Myers bit-parallel edit-distance kernel in
// Hyyrö's blocked formulation: 64 DP cells advance per handful of word
// operations, with a carry chain between 64-row blocks for queries of
// any length. The kernel computes the exact semi-global ("fit")
// unit-cost edit distance — the minimum Levenshtein distance between
// the whole query and any substring of the text — which the cascade
// turns into a certified Definition-1 reject (StageBitvec):
//
// Any accepting fit alignment of query a (|a| = n) at identity
// threshold t satisfies Matches ≥ t·Cols with Cols = n + #D and
// #M + #I = n, so its unit edit cost
//
//	e = #mismatch + #I + #D = n − Matches + #D ≤ (1−t)·(n + #D),
//
// and Matches ≤ n forces #D ≤ n·(1−t)/t, giving e ≤ (1−t)·n/t. The
// exact fit edit distance lower-bounds e, so exceeding ⌊(1−t)·n/t⌋
// proves no accepting alignment exists. The threshold uses the same
// slack-loosened t as every other cascade bound, so rounding can only
// make the stage fall through, never reject a true accept.

// fitEditThreshold returns the largest unit-cost edit distance any
// accepting Definition-1 fit alignment of an n-residue query can have
// under (slack-loosened) identity threshold minID, or −1 when the bound
// cannot reject anything (the fit edit distance never exceeds n).
func fitEditThreshold(n int, minID float64) int {
	if minID <= 0 {
		return -1
	}
	t := (1 - minID) / minID * float64(n)
	if t >= float64(n) {
		return -1
	}
	return int(math.Floor(t))
}

// FitEditDistance returns the exact semi-global ("fit") unit-cost edit
// distance of query a against text b: the minimum, over all substrings
// s of b (including the empty one), of the Levenshtein distance between
// a and s. Leading and trailing residues of b are free, mirroring the
// free prefix/suffix of the Fit alignment mode.
func (al *Aligner) FitEditDistance(a, b []byte) int {
	al.prof.buildBits(al.sc, a)
	return al.FitEditDistanceProf(&al.prof, b)
}

// FitEditDistanceProf is FitEditDistance against a prebuilt profile of
// the query. Work is charged to Cells (and CellsBitvec) as one cell per
// 64-row word advanced — the honest machine-independent measure of the
// word operations performed.
func (al *Aligner) FitEditDistanceProf(p *Profile, b []byte) int {
	n, blocks, m := p.n, p.blocks, len(b)
	if n == 0 {
		return 0
	}
	if m == 0 {
		return n
	}
	if cap(al.pv) < blocks {
		c := geomCap(blocks, cap(al.pv))
		al.pv = make([]uint64, c)
		al.mv = make([]uint64, c)
	}
	pv, mv := al.pv[:blocks], al.mv[:blocks]
	for k := range pv {
		pv[k] = ^uint64(0)
		mv[k] = 0
	}
	al.Cells += int64(m) * int64(blocks)
	al.CellsBitvec += int64(m) * int64(blocks)

	lastBit := uint(n-1) & 63
	// score tracks D[n][j] down the last query row; D[n][0] = n, and the
	// semi-global answer is the minimum over all text positions.
	best, score := n, n
	for j := 0; j < m; j++ {
		eq := p.peq[int(b[j]-'A')*blocks:]
		hin := 0 // row 0 stays 0: free text prefix
		for k := 0; k < blocks; k++ {
			eqk := eq[k]
			pvk, mvk := pv[k], mv[k]
			xv := eqk | mvk
			if hin < 0 {
				eqk |= 1
			}
			xh := (((eqk & pvk) + pvk) ^ pvk) | eqk
			ph := mvk | ^(xh | pvk)
			mh := pvk & xh
			// The horizontal delta leaves a full block at bit 63; the
			// partial last block reads it at the query's true last row.
			// Bits above lastBit are padding: their match masks are zero
			// and the carry chain only propagates upward, so they never
			// corrupt the rows below.
			hb := uint64(1) << 63
			if k == blocks-1 {
				hb = uint64(1) << lastBit
			}
			hout := 0
			if ph&hb != 0 {
				hout = 1
			} else if mh&hb != 0 {
				hout = -1
			}
			ph <<= 1
			mh <<= 1
			if hin < 0 {
				mh |= 1
			} else if hin > 0 {
				ph |= 1
			}
			pv[k] = mh | ^(xv | ph)
			mv[k] = ph & xv
			hin = hout
		}
		score += hin
		if score < best {
			best = score
		}
	}
	return best
}
