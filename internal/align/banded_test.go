package align

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBandedEqualsFullWithWideBand(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, 1+rng.Intn(60))
		b := randSeq(rng, 1+rng.Intn(60))
		want := al.LocalScore(a, b)
		wide := len(a)
		if len(b) > wide {
			wide = len(b)
		}
		return al.LocalScoreBanded(a, b, wide) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBandedNeverExceedsFull(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, 1+rng.Intn(80))
		b := randSeq(rng, 1+rng.Intn(80))
		full := al.LocalScore(a, b)
		for _, band := range []int{1, 3, 8, 20} {
			s := al.LocalScoreBanded(a, b, band)
			if s < 0 || s > full {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBandedFindsDiagonalMatch(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	// Identical sequences: the optimal path lies on the main diagonal,
	// so even band=1 must find the full score.
	s := []byte("MKWVTFISLLFLFSSAYSRGVFRR")
	full := al.LocalScore(s, s)
	if got := al.LocalScoreBanded(s, s, 1); got != full {
		t.Errorf("band=1 on identical sequences: %d, want %d", got, full)
	}
}

func TestBandedMissesOffDiagonalMatch(t *testing.T) {
	al := NewAligner(Blosum62(11, 1))
	motif := "WWHKNMEFRWCYHH"
	a := []byte(motif + "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAA")
	b := []byte("TTTTTTTTTTTTTTTTTTTTTTTTTTTTTT" + motif)
	full := al.LocalScore(a, b)
	narrow := al.LocalScoreBanded(a, b, 2)
	if narrow >= full {
		t.Errorf("narrow band should miss the shifted motif: banded=%d full=%d", narrow, full)
	}
}

func TestBandedEmpty(t *testing.T) {
	al := NewAligner(nil)
	if al.LocalScoreBanded(nil, []byte("AA"), 3) != 0 {
		t.Error("empty a")
	}
	if al.LocalScoreBanded([]byte("AA"), nil, 3) != 0 {
		t.Error("empty b")
	}
	if al.LocalScoreBanded([]byte("AA"), []byte("AA"), 0) < 0 {
		t.Error("band clamping failed")
	}
}

func BenchmarkLocalBanded(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randSeq(rng, 200)
	y := randSeq(rng, 200)
	al := NewAligner(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.LocalScoreBanded(x, y, 16)
	}
}
