package align

// ContainParams are the thresholds of the paper's Definition 1
// (redundancy removal). Both are fractions in (0, 1].
type ContainParams struct {
	// MinIdentity is the minimum identity of the overlapping region
	// (paper default 0.95).
	MinIdentity float64
	// MinCoverage is the minimum fraction of the contained sequence that
	// must lie inside the overlapping region (paper default 0.95).
	MinCoverage float64
}

// DefaultContainParams returns the paper's default (95 % / 95 %) settings.
func DefaultContainParams() ContainParams {
	return ContainParams{MinIdentity: 0.95, MinCoverage: 0.95}
}

// OverlapParams are the thresholds of the paper's Definition 2
// (connected-component detection).
type OverlapParams struct {
	// MinSimilarity is the minimum fraction of positive-scoring columns
	// in the alignment (paper default 0.30).
	MinSimilarity float64
	// MinLongCoverage is the minimum fraction of the longer sequence the
	// alignment must span (paper default 0.80).
	MinLongCoverage float64
}

// DefaultOverlapParams returns the paper's default (30 % / 80 %) settings.
func DefaultOverlapParams() OverlapParams {
	return OverlapParams{MinSimilarity: 0.30, MinLongCoverage: 0.80}
}

// Contained reports whether sequence a is contained in sequence b per
// Definition 1: a fit alignment of a into b whose overlapping region has
// identity ≥ p.MinIdentity and covers ≥ p.MinCoverage of a.
// The returned Result is the alignment that was evaluated.
func (al *Aligner) Contained(a, b []byte, p ContainParams) (bool, Result) {
	if len(a) > len(b) {
		// A longer sequence can never be 95 % covered inside a shorter
		// one (gaps only hurt); skip the DP.
		return false, Result{Mode: Fit}
	}
	r := al.Align(a, b, Fit)
	if r.Cols == 0 {
		return false, r
	}
	coveredA := r.EndA - r.StartA
	cov := float64(coveredA) / float64(len(a))
	return r.Identity() >= p.MinIdentity && cov >= p.MinCoverage, r
}

// EitherContained reports containment in either direction and, when true,
// which sequence is the redundant (contained) one: 0 for a, 1 for b.
func (al *Aligner) EitherContained(a, b []byte, p ContainParams) (contained bool, which int) {
	if len(a) <= len(b) {
		if ok, _ := al.Contained(a, b, p); ok {
			return true, 0
		}
		return false, 0
	}
	if ok, _ := al.Contained(b, a, p); ok {
		return true, 1
	}
	return false, 1
}

// Overlaps reports whether a and b overlap per Definition 2: a local
// alignment with similarity ≥ p.MinSimilarity spanning at least
// p.MinLongCoverage of the longer sequence. The span is measured on the
// longer sequence's aligned range.
func (al *Aligner) Overlaps(a, b []byte, p OverlapParams) (bool, Result) {
	r := al.Align(a, b, Local)
	if r.Cols == 0 {
		return false, r
	}
	longLen := len(a)
	span := r.EndA - r.StartA
	if len(b) > longLen {
		longLen = len(b)
		span = r.EndB - r.StartB
	}
	cov := float64(span) / float64(longLen)
	return r.Similarity() >= p.MinSimilarity && cov >= p.MinLongCoverage, r
}
