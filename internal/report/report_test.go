package report

import (
	"bytes"
	"strings"
	"testing"

	"profam"
	"profam/internal/workload"
)

func TestTextReport(t *testing.T) {
	set, _ := workload.Generate(workload.Params{
		Families: 3, MeanFamilySize: 6, MeanLength: 80,
		Divergence: 0.08, ContainedFrac: 0.1, Singletons: 2, Seed: 14,
	})
	res, _, err := profam.RunSet(set, 1, false, profam.Config{
		Psi: 6, MinComponentSize: 3, MinFamilySize: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Text(&buf, set, res, Options{MSA: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"PROTEIN FAMILY REPORT",
		"non-redundant",
		"FAMILY SIZE DISTRIBUTION",
		"FAMILY 0",
		"work reduction",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// MSA block contains gap-or-residue rows and conservation markers.
	if !strings.Contains(out, "*") {
		t.Error("report missing MSA conservation line")
	}
}

func TestMaxFamiliesLimit(t *testing.T) {
	set, _ := workload.Generate(workload.Params{
		Families: 4, MeanFamilySize: 6, MeanLength: 70,
		Divergence: 0.08, ContainedFrac: 0.05, Singletons: 1, Seed: 19,
	})
	res, _, err := profam.RunSet(set, 1, false, profam.Config{
		Psi: 6, MinComponentSize: 3, MinFamilySize: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Families) < 2 {
		t.Skip("need >= 2 families for the limit test")
	}
	var buf bytes.Buffer
	if err := Text(&buf, set, res, Options{MaxFamilies: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FAMILY 0") {
		t.Error("first family missing")
	}
	if strings.Contains(out, "FAMILY 1 ") {
		t.Error("family limit not applied")
	}
	if !strings.Contains(out, "omitted") {
		t.Error("omission note missing")
	}
}

func TestEmptyResult(t *testing.T) {
	set, _ := workload.Generate(workload.Params{
		Families: 1, MeanFamilySize: 2, MeanLength: 30,
		ContainedFrac: 0.01, Singletons: 1, Seed: 3,
	})
	res := &profam.Result{NumInput: set.Len(), NumNonRedundant: set.Len()}
	var buf bytes.Buffer
	if err := Text(&buf, set, res, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "families               ") {
		t.Error("summary malformed for empty result")
	}
}
