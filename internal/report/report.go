// Package report renders pipeline results as human-readable text
// reports: run summary, phase statistics, a family-size histogram, and
// per-family sections with optional Figure-1-style multiple sequence
// alignments. cmd/profam's -report flag is the main consumer.
package report

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"profam"
	"profam/internal/msa"
	"profam/internal/seq"
	"profam/internal/shingle"
)

// Options control report contents.
type Options struct {
	// MaxFamilies limits the per-family sections (default 20; 0 keeps
	// the default, -1 means all).
	MaxFamilies int
	// MSA renders a star alignment for each reported family.
	MSA bool
	// MSAMaxMembers caps the members aligned per family (default 8).
	MSAMaxMembers int
	// HistogramWidth is the family-size bucket width (default 5).
	HistogramWidth int
}

func (o Options) withDefaults() Options {
	if o.MaxFamilies == 0 {
		o.MaxFamilies = 20
	}
	if o.MSAMaxMembers == 0 {
		o.MSAMaxMembers = 8
	}
	if o.HistogramWidth == 0 {
		o.HistogramWidth = 5
	}
	return o
}

// Families renders the canonical machine-diffable family listing: the
// summary line, then one block per family in rank order with the member
// names. cmd/profam's default output and profamd's text family endpoint
// share this writer, which is what lets the service e2e gate compare the
// two with a plain byte diff.
func Families(w io.Writer, set *seq.Set, res *profam.Result) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", res.Summary())
	for fi, fam := range res.Families {
		fmt.Fprintf(bw, "family %d\tsize=%d\tmean_degree=%.1f\tdensity=%.2f\n",
			fi, fam.Size(), fam.MeanDegree, fam.Density)
		for _, id := range fam.Members {
			fmt.Fprintf(bw, "\t%s\n", set.Get(id).Name)
		}
	}
	return bw.Flush()
}

// Text writes the report.
func Text(w io.Writer, set *seq.Set, res *profam.Result, opts Options) error {
	opts = opts.withDefaults()
	bw := bufio.NewWriter(w)

	fmt.Fprintln(bw, "PROTEIN FAMILY REPORT")
	fmt.Fprintln(bw, strings.Repeat("=", 60))
	fmt.Fprintf(bw, "input sequences        %8d\n", res.NumInput)
	fmt.Fprintf(bw, "non-redundant          %8d (%.1f%%)\n",
		res.NumNonRedundant, pct(res.NumNonRedundant, res.NumInput))
	fmt.Fprintf(bw, "connected components   %8d\n", len(res.Components))
	fmt.Fprintf(bw, "families               %8d covering %d sequences (%.1f%% of NR)\n",
		len(res.Families), res.SeqsInFamilies(), pct(res.SeqsInFamilies(), res.NumNonRedundant))
	fmt.Fprintf(bw, "largest family         %8d\n", res.LargestFamily())
	fmt.Fprintf(bw, "mean density           %7.0f%%\n", 100*res.MeanFamilyDensity())

	fmt.Fprintln(bw, "\nPHASES")
	fmt.Fprintln(bw, strings.Repeat("-", 60))
	fmt.Fprintf(bw, "RR : %d promising pairs, %d aligned (%.1f%% work reduction), %.1fs\n",
		res.RR.PairsGenerated, res.RR.PairsAligned, 100*res.RR.WorkReduction(), res.RR.Time)
	fmt.Fprintf(bw, "CCD: %d promising pairs, %d aligned, %d closure-skipped, %.1fs\n",
		res.CCD.PairsGenerated, res.CCD.PairsAligned, res.CCD.PairsClosure, res.CCD.Time)
	fmt.Fprintf(bw, "BGG: %.1fs   DSD: %.1fs\n", res.BGGTime, res.DSDTime)

	if len(res.Families) > 0 {
		fmt.Fprintln(bw, "\nFAMILY SIZE DISTRIBUTION")
		fmt.Fprintln(bw, strings.Repeat("-", 60))
		subs := make([]shingle.DenseSubgraph, 0, len(res.Families))
		for _, f := range res.Families {
			m := make([]int32, len(f.Members))
			for i, id := range f.Members {
				m[i] = int32(id)
			}
			subs = append(subs, shingle.DenseSubgraph{Members: m})
		}
		bounds, counts := shingle.SizeHistogram(subs, opts.HistogramWidth)
		for i, b := range bounds {
			fmt.Fprintf(bw, "%5d-%-5d %4d %s\n", b, b+opts.HistogramWidth-1,
				counts[i], strings.Repeat("#", min(counts[i], 50)))
		}
	}

	limit := opts.MaxFamilies
	if limit < 0 || limit > len(res.Families) {
		limit = len(res.Families)
	}
	for fi := 0; fi < limit; fi++ {
		f := res.Families[fi]
		fmt.Fprintf(bw, "\nFAMILY %d  (%d members, mean degree %.1f, density %.0f%%)\n",
			fi, f.Size(), f.MeanDegree, 100*f.Density)
		fmt.Fprintln(bw, strings.Repeat("-", 60))
		for _, id := range f.Members {
			fmt.Fprintf(bw, "  %s (%d aa)\n", set.Get(id).Name, set.Get(id).Len())
		}
		if opts.MSA {
			members := f.Members
			if len(members) > opts.MSAMaxMembers {
				members = members[:opts.MSAMaxMembers]
			}
			aln, err := msa.Star(set, members, nil)
			if err != nil {
				return fmt.Errorf("report: family %d alignment: %w", fi, err)
			}
			fmt.Fprintln(bw)
			if _, err := bw.WriteString(aln.Format(72)); err != nil {
				return err
			}
		}
	}
	if limit < len(res.Families) {
		fmt.Fprintf(bw, "\n(%d more families omitted)\n", len(res.Families)-limit)
	}
	return bw.Flush()
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
